module prometheus

go 1.22
