package krylov

import "prometheus/internal/obs"

// Observability events and metrics. Each public solver wraps its body
// in one whole-solve span (the bodies return early on convergence or
// breakdown, so the wrapper keeps spans balanced) and streams the
// per-iteration residual norms into the obs convergence history.
var (
	evPCG   = obs.Register("krylov.pcg")
	evFPCG  = obs.Register("krylov.fpcg")
	evGMRES = obs.Register("krylov.gmres")

	cIterations = obs.NewCounter("krylov.iterations")
)
