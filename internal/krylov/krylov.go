// Package krylov implements the outer iterative solvers: conjugate
// gradients with and without preconditioning (the paper's solver is CG
// preconditioned with one full multigrid cycle) and restarted GMRES (the
// solver family of the Owen et al. comparison [18]). Iteration counts,
// residual histories and flop counts are recorded for the efficiency
// analysis of section 6.
package krylov

import (
	"context"
	"math"

	"prometheus/internal/la"
	"prometheus/internal/obs"
	"prometheus/internal/sparse"
)

// Preconditioner approximately solves A·z = r from a zero initial guess.
type Preconditioner interface {
	Apply(r, z []float64)
}

// Result reports the outcome of a Krylov solve.
type Result struct {
	Iterations int
	Residuals  []float64 // ‖r‖₂ after each iteration (index 0 = initial)
	Flops      int64
	Converged  bool
}

// identity is the trivial preconditioner.
type identity struct{}

func (identity) Apply(r, z []float64) { copy(z, r) }

// CG solves A·x = b with plain conjugate gradients.
func CG(a sparse.Operator, b, x []float64, rtol float64, maxIter int) Result {
	return PCG(a, b, x, identity{}, rtol, maxIter)
}

// PCG solves A·x = b with preconditioned conjugate gradients, starting from
// the given x. Convergence is declared when ‖b - A·x‖₂ ≤ rtol·‖b‖₂ (the
// paper's relative residual criterion).
func PCG(a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int) Result {
	sp := obs.Start(evPCG)
	res := pcg(a, b, x, m, rtol, maxIter)
	sp.EndFlops(res.Flops)
	cIterations.Add(int64(res.Iterations))
	return res
}

func pcg(a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int) Result {
	n := a.Rows()
	if m == nil {
		m = identity{}
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	var res Result

	a.Residual(b, x, r)
	res.Flops += a.MulVecFlops() + int64(n)
	bnorm := la.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rnorm := la.Norm2(r)
	res.Residuals = append(res.Residuals, rnorm)
	obs.RecordResidual(0, rnorm)
	if rnorm <= rtol*bnorm {
		res.Converged = true
		return res
	}
	m.Apply(r, z)
	copy(p, z)
	rz := la.Dot(r, z)
	res.Flops += 2 * int64(n)

	for it := 0; it < maxIter; it++ {
		a.MulVec(p, ap)
		pap := la.Dot(p, ap)
		res.Flops += a.MulVecFlops() + 2*int64(n)
		if pap <= 0 {
			// Indefinite preconditioned operator: abort (caller sees
			// Converged=false).
			break
		}
		alpha := rz / pap
		la.Axpy(alpha, p, x)
		la.Axpy(-alpha, ap, r)
		res.Flops += 4 * int64(n)
		rnorm = la.Norm2(r)
		res.Flops += 2 * int64(n)
		res.Iterations++
		res.Residuals = append(res.Residuals, rnorm)
		obs.RecordResidual(res.Iterations, rnorm)
		if rnorm <= rtol*bnorm {
			res.Converged = true
			return res
		}
		m.Apply(r, z)
		rzNew := la.Dot(r, z)
		res.Flops += 2 * int64(n)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		res.Flops += 2 * int64(n)
	}
	return res
}

// Monitor observes a solve in flight: it is called once with the initial
// residual (iter 0) and once per iteration with the current residual norm.
// Returning false cancels the solve — the iteration stops where it is and
// the Result reports Converged=false with the history so far. A monitor
// must not retain or mutate solver state; it exists so long-running
// callers (the serve streaming path) can forward progress and honor
// context cancellation without polling.
type Monitor func(iter int, rnorm float64) bool

// FPCG solves A·x = b with flexible preconditioned conjugate gradients
// (Polak-Ribière beta), which remains robust when the preconditioner is not
// exactly symmetric — the full-multigrid (FMG) cycle the paper
// preconditions with is such an operator. For a symmetric preconditioner
// FPCG reproduces PCG at the cost of one extra stored vector.
func FPCG(a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int) Result {
	return FPCGMonitored(a, b, x, m, rtol, maxIter, nil)
}

// FPCGMonitored is FPCG with a progress monitor. A nil monitor is exactly
// FPCG: the iteration performs the same floating-point operations in the
// same order, so results are bitwise identical with or without a monitor
// (a monitor only observes norms and may cut the iteration short).
func FPCGMonitored(a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int, mon Monitor) Result {
	return fpcgTask(nil, a, b, x, m, rtol, maxIter, mon)
}

// FPCGCtx is FPCG with request-scoped observability: the obs task
// carried by ctx (if any) is credited with the solve's outer-iteration
// flops and iteration count, in addition to the process-global stats.
// The task only observes — the iteration is bitwise identical to FPCG.
func FPCGCtx(ctx context.Context, a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int) Result {
	return fpcgTask(obs.FromContext(ctx), a, b, x, m, rtol, maxIter, nil)
}

// FPCGMonitoredCtx is FPCGMonitored with request-scoped observability
// (see FPCGCtx).
func FPCGMonitoredCtx(ctx context.Context, a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int, mon Monitor) Result {
	return fpcgTask(obs.FromContext(ctx), a, b, x, m, rtol, maxIter, mon)
}

// fpcgTask runs the flexible PCG iteration under one obs span,
// crediting the outer-iteration work to both the global evFPCG stats
// and, when non-nil, the request task. The span's flop credit covers
// fpcg's own work (matrix-vector products and vector ops), not the
// preconditioner applications — those record under their own events,
// so per-event totals never double count.
func fpcgTask(t *obs.Task, a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int, mon Monitor) Result {
	sp := obs.StartTask(evFPCG, t)
	res := fpcg(a, b, x, m, rtol, maxIter, mon)
	sp.EndFlops(res.Flops)
	cIterations.Add(int64(res.Iterations))
	t.AddIterations(int64(res.Iterations))
	return res
}

func fpcg(a sparse.Operator, b, x []float64, m Preconditioner, rtol float64, maxIter int, mon Monitor) Result {
	n := a.Rows()
	if m == nil {
		m = identity{}
	}
	r := make([]float64, n)
	rPrev := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	var res Result

	a.Residual(b, x, r)
	res.Flops += a.MulVecFlops() + int64(n)
	bnorm := la.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rnorm := la.Norm2(r)
	res.Residuals = append(res.Residuals, rnorm)
	obs.RecordResidual(0, rnorm)
	if mon != nil && !mon(0, rnorm) {
		return res
	}
	if rnorm <= rtol*bnorm {
		res.Converged = true
		return res
	}
	m.Apply(r, z)
	copy(p, z)
	rz := la.Dot(r, z)
	res.Flops += 2 * int64(n)

	for it := 0; it < maxIter; it++ {
		a.MulVec(p, ap)
		pap := la.Dot(p, ap)
		res.Flops += a.MulVecFlops() + 2*int64(n)
		if pap <= 0 {
			break
		}
		alpha := rz / pap
		la.Axpy(alpha, p, x)
		copy(rPrev, r)
		la.Axpy(-alpha, ap, r)
		res.Flops += 4 * int64(n)
		rnorm = la.Norm2(r)
		res.Flops += 2 * int64(n)
		res.Iterations++
		res.Residuals = append(res.Residuals, rnorm)
		obs.RecordResidual(res.Iterations, rnorm)
		if mon != nil && !mon(res.Iterations, rnorm) {
			return res
		}
		if rnorm <= rtol*bnorm {
			res.Converged = true
			return res
		}
		m.Apply(r, z)
		// Polak-Ribière: beta = z·(r - rPrev) / (z_prev·r_prev) = flexible.
		num := 0.0
		for i := 0; i < n; i++ {
			num += z[i] * (r[i] - rPrev[i])
		}
		res.Flops += 3 * int64(n)
		beta := num / rz
		if beta < 0 {
			beta = 0 // restart direction
		}
		rz = la.Dot(r, z)
		res.Flops += 2 * int64(n)
		if rz == 0 {
			break
		}
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		res.Flops += 2 * int64(n)
	}
	return res
}

// GMRES solves A·x = b with restarted GMRES(m) and left preconditioning.
func GMRES(a sparse.Operator, b, x []float64, m Preconditioner, restart int, rtol float64, maxIter int) Result {
	sp := obs.Start(evGMRES)
	res := gmres(a, b, x, m, restart, rtol, maxIter)
	sp.EndFlops(res.Flops)
	cIterations.Add(int64(res.Iterations))
	return res
}

func gmres(a sparse.Operator, b, x []float64, m Preconditioner, restart int, rtol float64, maxIter int) Result {
	n := a.Rows()
	if m == nil {
		m = identity{}
	}
	if restart < 1 {
		restart = 30
	}
	var res Result
	r := make([]float64, n)
	z := make([]float64, n)
	w := make([]float64, n)

	bnorm := la.Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}

	// Krylov basis and Hessenberg (restart+1 columns).
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, restart+1)
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)
	yb := make([]float64, restart) // triangular-solve buffer, reused per cycle

	total := 0
	for total < maxIter {
		a.Residual(b, x, r)
		res.Flops += a.MulVecFlops() + int64(n)
		if len(res.Residuals) == 0 {
			rn := la.Norm2(r)
			res.Residuals = append(res.Residuals, rn)
			obs.RecordResidual(0, rn)
		}
		m.Apply(r, z)
		beta := la.Norm2(z)
		res.Flops += 2 * int64(n)
		if beta == 0 {
			res.Converged = true
			return res
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		copy(v[0], z)
		la.Scal(1/beta, v[0])

		k := 0
		for ; k < restart && total < maxIter; k++ {
			total++
			a.MulVec(v[k], w)
			m.Apply(w, z)
			res.Flops += a.MulVecFlops() + int64(n)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = la.Dot(z, v[i])
				la.Axpy(-h[i][k], v[i], z)
				res.Flops += 4 * int64(n)
			}
			h[k+1][k] = la.Norm2(z)
			res.Flops += 2 * int64(n)
			if h[k+1][k] != 0 {
				copy(v[k+1], z)
				la.Scal(1/h[k+1][k], v[k+1])
			}
			// Apply accumulated Givens rotations.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			den := math.Hypot(h[k][k], h[k+1][k])
			if den == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / den
				sn[k] = h[k+1][k] / den
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			res.Iterations++
			res.Residuals = append(res.Residuals, math.Abs(g[k+1]))
			obs.RecordResidual(res.Iterations, math.Abs(g[k+1]))
			if math.Abs(g[k+1]) <= rtol*bnorm {
				k++
				res.Converged = true
				break
			}
		}
		// Solve the triangular system and update x.
		y := yb[:k]
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			y[i] = s / h[i][i]
		}
		for i := 0; i < k; i++ {
			la.Axpy(y[i], v[i], x)
			res.Flops += 2 * int64(n)
		}
		if res.Converged {
			return res
		}
	}
	return res
}
