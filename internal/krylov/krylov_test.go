package krylov

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/la"
	"prometheus/internal/smooth"
	"prometheus/internal/sparse"
)

func laplace2D(n int) *sparse.CSR {
	id := func(i, j int) int { return i*n + j }
	b := sparse.NewBuilder(n*n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			me := id(i, j)
			b.Add(me, me, 4)
			if i > 0 {
				b.Add(me, id(i-1, j), -1)
			}
			if i < n-1 {
				b.Add(me, id(i+1, j), -1)
			}
			if j > 0 {
				b.Add(me, id(i, j-1), -1)
			}
			if j < n-1 {
				b.Add(me, id(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

func relResidual(a *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.Residual(b, x, r)
	return la.Norm2(r) / la.Norm2(b)
}

func TestCGSolves(t *testing.T) {
	a := laplace2D(12)
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	x := make([]float64, a.NRows)
	res := CG(a, b, x, 1e-8, 1000)
	if !res.Converged {
		t.Fatalf("CG did not converge in %d its", res.Iterations)
	}
	if rr := relResidual(a, x, b); rr > 1e-8 {
		t.Fatalf("relative residual = %v", rr)
	}
	if res.Flops <= 0 || len(res.Residuals) != res.Iterations+1 {
		t.Fatalf("instrumentation wrong: flops=%d len(res)=%d its=%d", res.Flops, len(res.Residuals), res.Iterations)
	}
	// Residual history must be recorded (CG residuals are not monotone in
	// general, but the last must meet the tolerance).
	last := res.Residuals[len(res.Residuals)-1]
	if last > 1e-8*la.Norm2(b) {
		t.Fatalf("recorded final residual %v inconsistent", last)
	}
}

func TestPCGJacobiFasterThanCG(t *testing.T) {
	// On a badly scaled SPD system, Jacobi preconditioning must reduce
	// iterations.
	n := 300
	bld := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, 4*float64(i)/float64(n-1)) // 1..1e4
		bld.Add(i, i, 2*scale)
		if i+1 < n {
			s2 := math.Min(scale, math.Pow(10, 4*float64(i+1)/float64(n-1)))
			bld.Add(i, i+1, -0.9*s2)
			bld.Add(i+1, i, -0.9*s2)
		}
	}
	a := bld.Build()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x1 := make([]float64, n)
	plain := CG(a, b, x1, 1e-8, 10000)
	x2 := make([]float64, n)
	pc := PCG(a, b, x2, smooth.NewJacobi(a, 1), 1e-8, 10000)
	if !plain.Converged || !pc.Converged {
		t.Fatalf("convergence: plain %v pcg %v", plain.Converged, pc.Converged)
	}
	if pc.Iterations >= plain.Iterations {
		t.Fatalf("Jacobi PCG (%d its) should beat CG (%d its)", pc.Iterations, plain.Iterations)
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a := laplace2D(4)
	b := make([]float64, a.NRows)
	x := make([]float64, a.NRows)
	res := CG(a, b, x, 1e-10, 100)
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS should converge immediately: %+v", res)
	}
}

func TestPCGStartsFromNonzeroX(t *testing.T) {
	a := laplace2D(8)
	rng := rand.New(rand.NewSource(2))
	xTrue := make([]float64, a.NRows)
	for i := range xTrue {
		xTrue[i] = rng.Float64()
	}
	b := make([]float64, a.NRows)
	a.MulVec(xTrue, b)
	// Start close to the solution: should converge in few iterations.
	x := append([]float64(nil), xTrue...)
	x[0] += 1e-6
	res := CG(a, b, x, 1e-10, 100)
	if !res.Converged || res.Iterations > 20 {
		t.Fatalf("warm start ignored: %d its", res.Iterations)
	}
}

func TestGMRESSolvesSymmetric(t *testing.T) {
	a := laplace2D(10)
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = rng.Float64()
	}
	x := make([]float64, a.NRows)
	res := GMRES(a, b, x, nil, 30, 1e-8, 2000)
	if !res.Converged {
		t.Fatal("GMRES did not converge")
	}
	if rr := relResidual(a, x, b); rr > 1e-6 {
		t.Fatalf("relative residual = %v", rr)
	}
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	// Convection-diffusion-like nonsymmetric system (CG would fail).
	n := 80
	bld := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bld.Add(i, i, 3)
		if i+1 < n {
			bld.Add(i, i+1, -2) // upwind bias
			bld.Add(i+1, i, -0.5)
		}
	}
	a := bld.Build()
	rng := rand.New(rand.NewSource(4))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.Float64()
	}
	b := make([]float64, n)
	a.MulVec(xTrue, b)
	x := make([]float64, n)
	res := GMRES(a, b, x, nil, 20, 1e-10, 2000)
	if !res.Converged {
		t.Fatal("GMRES did not converge")
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestGMRESWithPreconditioner(t *testing.T) {
	a := laplace2D(12)
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.NRows)
	plain := GMRES(a, b, x, nil, 25, 1e-8, 3000)
	x2 := make([]float64, a.NRows)
	gs := smooth.NewGaussSeidel(a, 1, true)
	pc := GMRES(a, b, x2, gs, 25, 1e-8, 3000)
	if !plain.Converged || !pc.Converged {
		t.Fatal("convergence failure")
	}
	if pc.Iterations >= plain.Iterations {
		t.Fatalf("preconditioned GMRES (%d) should beat plain (%d)", pc.Iterations, plain.Iterations)
	}
	if rr := relResidual(a, x2, b); rr > 1e-6 {
		t.Fatalf("residual = %v", rr)
	}
}

func TestCGIterationsScaleWithCondition(t *testing.T) {
	// CG iteration count grows with grid size on the Laplacian — the
	// baseline multigrid beats (motivation for the paper's solver).
	its := func(n int) int {
		a := laplace2D(n)
		b := make([]float64, a.NRows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.NRows)
		res := CG(a, b, x, 1e-8, 100000)
		if !res.Converged {
			t.Fatal("no convergence")
		}
		return res.Iterations
	}
	if i8, i24 := its(8), its(24); i24 <= i8 {
		t.Fatalf("CG iterations should grow with size: %d vs %d", i8, i24)
	}
}

func TestFPCGMatchesPCGSymmetric(t *testing.T) {
	// With a symmetric fixed preconditioner, flexible CG reproduces PCG.
	a := laplace2D(15)
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	m := smooth.NewJacobi(a, 1)
	x1 := make([]float64, a.NRows)
	r1 := PCG(a, b, x1, m, 1e-10, 5000)
	x2 := make([]float64, a.NRows)
	r2 := FPCG(a, b, x2, m, 1e-10, 5000)
	if !r1.Converged || !r2.Converged {
		t.Fatal("convergence failure")
	}
	if d := r2.Iterations - r1.Iterations; d > 2 || d < -2 {
		t.Fatalf("FPCG %d its vs PCG %d its", r2.Iterations, r1.Iterations)
	}
}

func TestFPCGHandlesVariablePreconditioner(t *testing.T) {
	// A deliberately inconsistent (iteration-dependent) preconditioner:
	// plain PCG loses orthogonality; flexible CG must still converge.
	a := laplace2D(12)
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = 1
	}
	vp := &variablePrecon{d: a.Diag()}
	x := make([]float64, a.NRows)
	res := FPCG(a, b, x, vp, 1e-8, 5000)
	if !res.Converged {
		t.Fatalf("FPCG with variable preconditioner stalled at %v", res.Residuals[len(res.Residuals)-1])
	}
	if rr := relResidual(a, x, b); rr > 1e-8 {
		t.Fatalf("relative residual = %v", rr)
	}
}

// variablePrecon scales the Jacobi preconditioner differently every call.
type variablePrecon struct {
	d     []float64
	calls int
}

func (v *variablePrecon) Apply(r, z []float64) {
	v.calls++
	s := 1.0 + 0.5*float64(v.calls%3)
	for i := range z {
		z[i] = s * r[i] / v.d[i]
	}
}

func TestFPCGZeroRHS(t *testing.T) {
	a := laplace2D(4)
	b := make([]float64, a.NRows)
	x := make([]float64, a.NRows)
	res := FPCG(a, b, x, nil, 1e-10, 10)
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS: %+v", res)
	}
}
