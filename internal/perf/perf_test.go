package perf

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPhaseTime(t *testing.T) {
	m := Machine{FlopRate: 1e6, Latency: 1e-3, Bandwidth: 1e6}
	flops := []int64{1e6, 2e6}
	msgs := []int64{0, 10}
	bytes := []int64{0, 1e6}
	tMax, tAvg := m.PhaseTime(flops, msgs, bytes)
	// Rank 1: 2 + 0.01 + 1 = 3.01 s; rank 0: 1 s.
	if math.Abs(tMax-3.01) > 1e-12 {
		t.Fatalf("tMax = %v", tMax)
	}
	if math.Abs(tAvg-(1+3.01)/2) > 1e-12 {
		t.Fatalf("tAvg = %v", tAvg)
	}
	// Nil comm counters.
	tMax, _ = m.PhaseTime(flops, nil, nil)
	if tMax != 2 {
		t.Fatalf("tMax = %v", tMax)
	}
	if x, y := m.PhaseTime(nil, nil, nil); x != 0 || y != 0 {
		t.Fatal("empty phase should be zero")
	}
}

func TestLoadBalance(t *testing.T) {
	if lb := LoadBalance([]int64{10, 10, 10}); lb != 1 {
		t.Fatalf("perfect balance = %v", lb)
	}
	if lb := LoadBalance([]int64{10, 20}); lb != 0.75 {
		t.Fatalf("lb = %v", lb)
	}
	if lb := LoadBalance(nil); lb != 1 {
		t.Fatal("empty")
	}
	if lb := LoadBalance([]int64{0, 0}); lb != 1 {
		t.Fatal("zero work")
	}
}

func TestDecompose(t *testing.T) {
	// Same iterations, same flops/unknown, same rate: all efficiencies 1.
	e := Decompose(20, 20, 1000, 8000, 100, 800, 1, 8, 34e6, 34e6, 1)
	for _, v := range []float64{e.EIs, e.EFs, e.Ec, e.Total} {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("decompose = %+v", e)
		}
	}
	// Super-linear convergence (fewer iterations at scale) gives EIs > 1,
	// as the paper observes.
	e = Decompose(29, 21, 1000, 8000, 100, 800, 1, 8, 34e6, 20e6, 0.9)
	if e.EIs <= 1 {
		t.Fatalf("EIs = %v", e.EIs)
	}
	if e.Ec >= 1 {
		t.Fatalf("Ec = %v", e.Ec)
	}
	if math.Abs(e.Total-e.EIs*e.EFs*e.Ec) > 1e-12 {
		t.Fatal("total mismatch")
	}
}

func TestUniprocessorEfficiency(t *testing.T) {
	// The paper's numbers: 36 of 664 Mflop/s ≈ 5.4%.
	eu := UniprocessorEfficiency(PaperMatVecMflops, PaperPeakMflops)
	if eu < 0.05 || eu > 0.06 {
		t.Fatalf("e_u = %v", eu)
	}
	if UniprocessorEfficiency(1, 0) != 0 {
		t.Fatal("zero peak")
	}
}

func TestPaperIBM(t *testing.T) {
	m := PaperIBM()
	if m.FlopRate != 34e6 {
		t.Fatalf("solve rate = %v", m.FlopRate)
	}
}

func TestPhases(t *testing.T) {
	p := NewPhases()
	p.Time("solve", func() { time.Sleep(time.Millisecond) })
	p.Add("solve", 2*time.Millisecond)
	p.AddModeled("solve", 0.5)
	p.AddModeled("setup", 1.5)
	if p.Wall["solve"] < 3*time.Millisecond {
		t.Fatalf("wall = %v", p.Wall["solve"])
	}
	if p.Modeled["setup"] != 1.5 {
		t.Fatal("modeled")
	}
	names := p.Names()
	if len(names) != 2 || names[0] != "solve" || names[1] != "setup" {
		t.Fatalf("names = %v", names)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a    long-header") {
		t.Fatalf("header = %q", lines[0])
	}
	// All rows aligned to the same width.
	if len(lines[1]) < len("a    long-header") {
		t.Fatal("separator too short")
	}
}

func TestSum(t *testing.T) {
	if Sum([]int64{1, 2, 3}) != 6 {
		t.Fatal("sum")
	}
}

func TestPaperT3E(t *testing.T) {
	ibm := PaperIBM()
	t3e := PaperT3E()
	// Section 7: the T3E runs at about twice the IBM's Mflop rate.
	if r := t3e.FlopRate / ibm.FlopRate; r < 1.8 || r > 2.2 {
		t.Fatalf("T3E/IBM rate ratio = %v", r)
	}
	// Same workload must run faster on the T3E.
	flops := []int64{1e9, 2e9}
	bytes := []int64{1e6, 2e6}
	msgs := []int64{100, 100}
	ti, _ := ibm.PhaseTime(flops, msgs, bytes)
	tc, _ := t3e.PhaseTime(flops, msgs, bytes)
	if tc >= ti {
		t.Fatalf("T3E (%v) should beat IBM (%v)", tc, ti)
	}
}
