// Package perf implements the performance methodology of section 6: the
// decomposition of parallel efficiency into iteration scale efficiency
// e^I_s, flop scale efficiency e^F_s, communication efficiency e_c and load
// balance, plus a machine model calibrated to the paper's hardware (IBM
// PowerPC 604e cluster) that converts measured per-rank flop counts and
// communication volumes into simulated phase times. The parallel runs
// themselves execute on the goroutine communicator of internal/par; this
// package turns their exact counters into the quantities Figures 10-12 and
// Table 2 report.
package perf

import (
	"fmt"
	"strings"
	"time"
)

// Machine is the performance model of one cluster node-processor.
type Machine struct {
	Name string
	// FlopRate is the sustained flop rate of the sparse kernels
	// (flops/second per processor).
	FlopRate float64
	// Latency is the per-message cost in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes/second.
	Bandwidth float64
}

// PaperIBM returns the machine model of the paper's platform: 332 MHz
// PowerPC 604e processors (664 Mflop/s theoretical peak) sustaining
// 36 Mflop/s in sparse matrix-vector products and 34 Mflop/s in the
// multigrid solve, on an SP-class interconnect.
func PaperIBM() Machine {
	return Machine{
		Name:      "IBM PowerPC 604e cluster (SC99)",
		FlopRate:  34e6,
		Latency:   35e-6,
		Bandwidth: 90e6,
	}
}

// PaperT3E returns the machine model of the paper's second platform: the
// 640-processor Cray T3E on which the same experiments ran at 57% parallel
// efficiency "and about twice the total Mflop rate as the corresponding
// IBM experiment" (section 7).
func PaperT3E() Machine {
	return Machine{
		Name:      "Cray T3E (SC99)",
		FlopRate:  68e6, // ~2x the IBM solve rate
		Latency:   10e-6,
		Bandwidth: 300e6,
	}
}

// PaperPeakMflops is the theoretical peak per processor (section 7).
const PaperPeakMflops = 664.0

// PaperMatVecMflops is the measured uniprocessor MatVec rate (section 7).
const PaperMatVecMflops = 36.0

// UniprocessorEfficiency returns e_u = sustained/peak, the section 6
// uniprocessor efficiency (the paper reports 36/664 ≈ 5.4%).
func UniprocessorEfficiency(sustained, peak float64) float64 {
	if peak == 0 {
		return 0
	}
	return sustained / peak
}

// PhaseTime converts per-rank counters into the modeled execution time of
// one phase: each rank costs flops/rate + msgs·latency + bytes/bandwidth,
// and the phase completes when the slowest rank does. The average rank
// time is also returned (their ratio is the load balance).
func (m Machine) PhaseTime(flops, msgs, bytes []int64) (tMax, tAvg float64) {
	if len(flops) == 0 {
		return 0, 0
	}
	for i := range flops {
		t := float64(flops[i]) / m.FlopRate
		if msgs != nil {
			t += float64(msgs[i]) * m.Latency
		}
		if bytes != nil {
			t += float64(bytes[i]) / m.Bandwidth
		}
		tAvg += t
		if t > tMax {
			tMax = t
		}
	}
	tAvg /= float64(len(flops))
	return
}

// LoadBalance returns the average-to-maximum work ratio e_l (section 6).
func LoadBalance(work []int64) float64 {
	if len(work) == 0 {
		return 1
	}
	var sum, max int64
	for _, w := range work {
		sum += w
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(len(work)) / float64(max)
}

// Sum totals a counter slice.
func Sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// Efficiencies is the section 6 decomposition for one scaled run against
// the base run.
type Efficiencies struct {
	EIs   float64 // iteration scale efficiency: iters(base)/iters(P)
	EFs   float64 // flop scale efficiency: flops/unknown/iteration ratio
	Ec    float64 // communication efficiency: modeled flop-rate ratio
	Load  float64 // load balance of the scaled run
	Total float64 // e ≈ EIs·EFs·Ec
}

// Decompose computes the decomposition. base and run describe the two ends
// of the scaled study: iteration counts, total solve flops, unknown counts,
// and modeled (or measured) flop rates per processor.
func Decompose(baseIters, runIters int, baseFlops, runFlops int64,
	baseN, runN int, baseProcs, runProcs int,
	baseRatePerProc, runRatePerProc float64, load float64) Efficiencies {
	e := Efficiencies{Load: load}
	if runIters > 0 {
		e.EIs = float64(baseIters) / float64(runIters)
	}
	// Flops per unknown per iteration.
	fb := float64(baseFlops) / float64(baseN) / float64(baseIters)
	fr := float64(runFlops) / float64(runN) / float64(runIters)
	if fr > 0 {
		e.EFs = fb / fr
	}
	if baseRatePerProc > 0 {
		e.Ec = runRatePerProc / baseRatePerProc
	}
	e.Total = e.EIs * e.EFs * e.Ec
	return e
}

// Phases accumulates named wall-clock phase timings (the Figure 10
// component breakdown) alongside modeled times.
type Phases struct {
	order   []string
	Wall    map[string]time.Duration
	Modeled map[string]float64
}

// NewPhases returns an empty phase table.
func NewPhases() *Phases {
	return &Phases{Wall: map[string]time.Duration{}, Modeled: map[string]float64{}}
}

// Time runs fn, recording its wall-clock duration under name (accumulates
// across calls).
func (p *Phases) Time(name string, fn func()) {
	start := time.Now()
	fn()
	p.Add(name, time.Since(start))
}

// Add accumulates a duration under name.
func (p *Phases) Add(name string, d time.Duration) {
	if _, ok := p.Wall[name]; !ok {
		p.order = append(p.order, name)
	}
	p.Wall[name] += d
}

// AddModeled accumulates a machine-model time (seconds) under name.
func (p *Phases) AddModeled(name string, sec float64) {
	if _, ok := p.Wall[name]; !ok {
		if _, ok2 := p.Modeled[name]; !ok2 {
			p.order = append(p.order, name)
		}
	}
	p.Modeled[name] += sec
}

// Names returns the phase names in first-use order.
func (p *Phases) Names() []string { return p.order }

// Table renders headers and rows as an aligned text table (the prombench
// output format).
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
