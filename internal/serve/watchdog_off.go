//go:build !promdebug

package serve

// installWatchdog is a no-op in release builds: the par watchdog (and its
// hook) exists only under the promdebug build tag.
func (s *Server) installWatchdog() {}
