// Package serve implements the promserve solver-as-a-service layer: an
// HTTP/JSON front end over the prometheus solver with session tracking,
// semaphore admission control (backpressure instead of queue growth),
// streaming residual progress, and a hierarchy cache keyed by the
// deterministic mesh fingerprint so repeated geometries skip the
// Prometheus mesh-setup and Galerkin-product phases entirely. Served
// results are bitwise identical to direct solver runs of the same spec.
//
// The package is written under the four service-lifecycle lint rules
// (goroutine-lifecycle, ctx-flow, resource-release, bounded-queue) and
// carries zero suppressions: every goroutine has a provable termination
// path, every channel has constant capacity, every request-path channel
// operation is select-guarded, and every acquire is released on all
// paths.
package serve

import (
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"prometheus/internal/obs"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// MaxConcurrent bounds concurrently admitted solves (default 4,
	// clamped to admissionCap). Excess requests get 503 backpressure, or
	// block until a slot frees when they opt into wait=true.
	MaxConcurrent int
	// MaxCacheEntries bounds the hierarchy cache (default 8, clamped to
	// cacheEntryCap). Least-recently-used unreferenced entries are
	// evicted beyond it.
	MaxCacheEntries int
	// SweepInterval is the janitor period for cache eviction and health
	// bookkeeping (default 30s).
	SweepInterval time.Duration
	// Log is the base structured logger (default slog.Default). The
	// server wraps it with the trace-id handler, so request-path lines
	// carry the request's trace id automatically.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxCacheEntries == 0 {
		c.MaxCacheEntries = 8
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 30 * time.Second
	}
	return c
}

// Server is the solver service: construct with New, mount Handler on an
// http.Server, and Close on shutdown (stops the janitor and waits for
// it). The Server itself holds no context — cancellation flows in per
// request via r.Context(), and the janitor stops on the done channel.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	adm      *admission
	sessions *sessionManager
	cache    *hierCache

	log *slog.Logger

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	start     time.Time

	requests  atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64

	watchdogDump atomic.Value // string: last par watchdog dump, if any
}

// New builds the service and starts its janitor goroutine. The obs
// expvar bridge is published so /debug/vars carries the solver profile
// alongside the runtime's expvars.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		adm:      newAdmission(cfg.MaxConcurrent),
		sessions: newSessionManager(),
		cache:    newHierCache(cfg.MaxCacheEntries),
		done:     make(chan struct{}),
		start:    time.Now(),
	}
	s.watchdogDump.Store("")
	s.installWatchdog()
	obs.PublishExpvar()
	base := cfg.Log
	if base == nil {
		base = slog.Default()
	}
	s.log = slog.New(NewTraceHandler(base.Handler()))

	s.mux.HandleFunc("/v1/solve", s.instrument("/v1/solve", s.handleSolve))
	s.mux.HandleFunc("/v1/sessions", s.instrument("/v1/sessions", s.handleSessions))
	s.mux.HandleFunc("/v1/sessions/", s.instrument("/v1/sessions/{id}/trace", s.handleSessionTrace))
	s.mux.HandleFunc("/v1/cache", s.instrument("/v1/cache", s.handleCache))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.wg.Add(1)
	go s.janitor()
	return s
}

// Handler returns the service mux: solve API, session/cache listings,
// health, and the /debug observability endpoints, all on one port.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the janitor and waits for it. Safe to call more than once.
// In-flight requests are the http.Server's to drain (Shutdown).
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// janitor periodically re-applies cache eviction. It terminates when the
// done channel closes; the ticker receive sits in the same select, so the
// goroutine can never block past Close.
func (s *Server) janitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.cache.sweep()
		}
	}
}

// Health is the /healthz JSON document.
type Health struct {
	// Status is "ok", or "stalled" when the promdebug communication
	// watchdog has fired (see WatchdogDump).
	Status string `json:"status"`
	// UptimeNs is time since New.
	UptimeNs int64 `json:"uptime_ns"`
	// ActiveSessions counts solves in flight.
	ActiveSessions int `json:"active_sessions"`
	// TotalSessions counts lifetime solves admitted.
	TotalSessions uint64 `json:"total_sessions"`
	// CacheEntries counts cached hierarchies.
	CacheEntries int `json:"cache_entries"`
	// CacheHits, CacheMisses and CacheEvictions count lifetime cache
	// outcomes.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	// Requests counts solve requests received; Rejected those turned
	// away by admission control; Cancelled those whose client went away
	// mid-solve.
	Requests  int64 `json:"requests"`
	Rejected  int64 `json:"rejected"`
	Cancelled int64 `json:"cancelled"`
	// WatchdogDump is the last promdebug watchdog dump, when one fired
	// (empty in release builds or while healthy).
	WatchdogDump string `json:"watchdog_dump,omitempty"`
}

// health snapshots the service state.
func (s *Server) health() Health {
	live, total, _ := s.sessions.snapshot()
	entries, hits, misses, evictions := s.cache.snapshot()
	dump, _ := s.watchdogDump.Load().(string)
	status := "ok"
	if dump != "" {
		status = "stalled"
	}
	return Health{
		Status:         status,
		UptimeNs:       time.Since(s.start).Nanoseconds(),
		ActiveSessions: len(live),
		TotalSessions:  total,
		CacheEntries:   len(entries),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		Requests:       s.requests.Load(),
		Rejected:       s.rejected.Load(),
		Cancelled:      s.cancelled.Load(),
		WatchdogDump:   dump,
	}
}
