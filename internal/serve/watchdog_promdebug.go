//go:build promdebug

package serve

import "prometheus/internal/par"

// installWatchdog bridges the promdebug communication watchdog into the
// service health endpoint: when a rank stalls past the watchdog
// threshold, the dump lands in /healthz (status "stalled") instead of
// only on stderr.
func (s *Server) installWatchdog() {
	par.SetWatchdogHook(func(dump string) {
		s.watchdogDump.Store(dump)
	})
}
