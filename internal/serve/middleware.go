package serve

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"prometheus/internal/obs"
)

// statusWriter records the response status code. It forwards Flush so
// the streaming solve path keeps flushing NDJSON lines through the
// instrumentation layer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the first status code written.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the status to 200 like net/http does.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the request observability layer:
//
//   - W3C traceparent ingestion — a valid inbound header's trace id is
//     adopted (so external callers correlate their traces with ours),
//     otherwise a fresh id is minted; the response always echoes a
//     traceparent carrying the request's trace id and this service's
//     span id;
//   - one obs.Task per request, attached to the request context, so
//     every layer below (session → multigrid → krylov/smooth →
//     pool/par) attributes its work to this request;
//   - route/status request counters and a latency histogram;
//   - one structured request log line; the trace id attribute is
//     stamped by the TraceHandler from the context.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		traceID, parent, okTP := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !okTP {
			traceID = ""
		}
		task := obs.NewTask(traceID)
		if okTP {
			task.SetParent(parent)
		}
		w.Header().Set("Traceparent", obs.Traceparent(task.TraceID(), obs.NewSpanID()))
		ctx := obs.WithTask(r.Context(), task)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		code := strconv.Itoa(status)
		durNs := time.Since(t0).Nanoseconds()
		mHTTPRequests.With(route, code).Inc()
		mHTTPLatency.With(route, code).Observe(durNs)
		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("route", route),
			slog.String("method", r.Method),
			slog.Int("status", status),
			slog.Int64("dur_ns", durNs),
		)
	}
}
