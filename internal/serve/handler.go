package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"prometheus/internal/krylov"
	"prometheus/internal/obs"
)

// SolveRequest is the POST /v1/solve body. Problem and Size select the
// geometry (see Spec); the rest tune the solve and the response shape.
type SolveRequest struct {
	Spec
	// LoadScale multiplies the problem's reference load (default 1).
	LoadScale float64 `json:"load_scale"`
	// RTol is the relative residual tolerance (default 1e-4).
	RTol float64 `json:"rtol"`
	// MaxIters bounds the Krylov iterations (default 1000).
	MaxIters int `json:"max_iters"`
	// Cycle selects the multigrid cycle: "fmg" (default), "v" or "w".
	Cycle string `json:"cycle"`
	// Storage selects the operator storage mode: "auto" (default — follow
	// the assembled fine matrix), "csr", "bsr", or "mf" (matrix-free
	// element-by-element fine operator; no fine matrix is assembled).
	Storage string `json:"storage"`
	// Precision selects the coarse-level value precision: "f64" (default)
	// or "f32" (float32 Galerkin levels).
	Precision string `json:"precision"`
	// Stream switches the response to newline-delimited JSON: one
	// Progress line per Krylov iteration as it happens, then the final
	// SolveResponse line.
	Stream bool `json:"stream"`
	// ReturnSolution includes the full solution vector in the response
	// (the solution hash is always included).
	ReturnSolution bool `json:"return_solution"`
	// Wait blocks for an admission slot instead of failing fast with
	// 503 when the service is saturated.
	Wait bool `json:"wait"`
}

// withDefaults fills zero request fields.
func (r SolveRequest) withDefaults() SolveRequest {
	if r.LoadScale == 0 {
		r.LoadScale = 1
	}
	if r.RTol == 0 {
		r.RTol = 1e-4
	}
	if r.MaxIters == 0 {
		r.MaxIters = 1000
	}
	if r.Cycle == "" {
		r.Cycle = "fmg"
	}
	return r
}

// Progress is one streamed residual line: the Krylov iteration number and
// the residual 2-norm after it (iteration 0 is the initial residual).
type Progress struct {
	// Iter is the iteration index.
	Iter int `json:"iter"`
	// Residual is the residual 2-norm.
	Residual float64 `json:"residual"`
}

// SolveResponse is the solve result document (the final line of a
// streamed response, or the whole body otherwise).
type SolveResponse struct {
	// Session is the solve's session id (see /v1/sessions).
	Session uint64 `json:"session"`
	// Problem and Size echo the request spec.
	Problem string `json:"problem"`
	Size    int    `json:"size"`
	// Fingerprint is the deterministic mesh fingerprint; Key the full
	// cache key derived from it.
	Fingerprint string `json:"fingerprint"`
	Key         string `json:"key"`
	// CacheHit reports whether the hierarchy cache already held the
	// setup products (warm request: coarsening, assembly and Galerkin
	// products all skipped).
	CacheHit bool `json:"cache_hit"`
	// SetupNs is the cold setup cost paid by this request's cache entry
	// build (0 on warm hits); SolveNs the Krylov solve time.
	SetupNs int64 `json:"setup_ns"`
	SolveNs int64 `json:"solve_ns"`
	// NumDOF and Levels describe the solved system.
	NumDOF int `json:"num_dof"`
	Levels int `json:"levels"`
	// Iterations, Converged and Residuals report the Krylov iteration.
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Residuals  []float64 `json:"residuals"`
	// SolutionHash is the sha256 over the solution's float64 bit
	// patterns (see SolutionHash); Solution is the full vector when
	// return_solution was set.
	SolutionHash string    `json:"solution_hash"`
	Solution     []float64 `json:"solution,omitempty"`
	// TraceID is the request's W3C trace id (also echoed in the
	// response Traceparent header); the Task* fields are this request's
	// own attributed work — flops, modeled messages/bytes and V-cycles
	// credited to exactly this solve, regardless of what other requests
	// ran concurrently. All zero unless the server runs with -obs.
	TraceID     string `json:"trace_id,omitempty"`
	TaskFlops   int64  `json:"task_flops,omitempty"`
	TaskMsgs    int64  `json:"task_msgs,omitempty"`
	TaskBytes   int64  `json:"task_bytes,omitempty"`
	TaskVCycles int64  `json:"task_vcycles,omitempty"`
	// Error is set when the solve finished abnormally (did not
	// converge, or the client cancelled mid-stream).
	Error string `json:"error,omitempty"`
}

// errorBody is the JSON error envelope for non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON writes v as a JSON response. The returned error only means
// the client stopped reading; there is nothing left to do with it but
// stop writing, which every caller does by returning.
func writeJSON(w http.ResponseWriter, status int, v interface{}) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// failJSON writes an error envelope, ignoring client-gone write errors.
func failJSON(w http.ResponseWriter, status int, msg string) {
	if err := writeJSON(w, status, errorBody{Error: msg}); err != nil {
		return
	}
}

// maxRequestBody bounds the solve request body (the API is parametric,
// not mesh-upload, so requests are tiny).
const maxRequestBody = 1 << 20

// handleSolve is POST /v1/solve: admission → session → cache → solve.
// Every acquired resource is released by a defer directly under its
// acquisition, so error returns and panics unwind cleanly.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		failJSON(w, http.StatusMethodNotAllowed, "serve: POST only")
		return
	}
	ctx := r.Context()
	s.requests.Add(1)

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		failJSON(w, http.StatusBadRequest, fmt.Sprintf("serve: bad request body: %v", err))
		return
	}
	req = req.withDefaults()

	g, err := BuildGeometry(req.Spec)
	if err != nil {
		failJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := solverOptions(req.RTol, req.MaxIters, req.Cycle, req.Storage, req.Precision)
	if err != nil {
		failJSON(w, http.StatusBadRequest, err.Error())
		return
	}

	if err := s.adm.Acquire(ctx, req.Wait); err != nil {
		s.rejected.Add(1)
		if errors.Is(err, ErrBusy) {
			mShed.Inc()
			w.Header().Set("Retry-After", "1")
			failJSON(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		failJSON(w, http.StatusServiceUnavailable, fmt.Sprintf("serve: cancelled while waiting for a slot: %v", err))
		return
	}
	defer s.adm.Release()

	task := obs.FromContext(ctx)
	sess := s.sessions.Checkout(req.Problem, req.Size, task)
	defer s.sessions.Checkin(sess)

	fp := g.Fingerprint(opts.Coarsen)
	key := cacheKey(fp, req.Cycle, opts, req.LoadScale)
	sess.setKey(key)

	entry, hit, err := s.cache.Acquire(key, fp, g, req.LoadScale, opts)
	if err != nil {
		failJSON(w, http.StatusInternalServerError, fmt.Sprintf("serve: setup: %v", err))
		return
	}
	defer s.cache.Release(entry)
	if hit {
		task.AddCacheHit()
	} else {
		task.AddCacheMiss()
	}

	mg, err := entry.Checkout()
	if err != nil {
		failJSON(w, http.StatusInternalServerError, fmt.Sprintf("serve: preconditioner: %v", err))
		return
	}
	defer entry.Checkin(mg)
	// The lease is exclusive until Checkin, so attaching the task is
	// race-free; detach before the MG returns to the pool. This defer
	// runs before entry.Checkin's (LIFO), so a pooled MG never carries
	// a stale task.
	mg.SetTask(task)
	defer mg.SetTask(nil)

	resp := SolveResponse{
		Session:     sess.id,
		Problem:     req.Problem,
		Size:        req.Size,
		Fingerprint: fp,
		Key:         key,
		CacheHit:    hit,
		NumDOF:      entry.numDOF,
		Levels:      entry.levels,
		TraceID:     task.TraceID(),
	}
	if !hit {
		resp.SetupNs = entry.setupNs
	}

	var enc *json.Encoder
	var flusher http.Flusher
	if req.Stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
	}
	// The monitor observes every residual: it forwards progress lines on
	// streamed requests and turns client cancellation into an early stop.
	// It only reads the iteration state, so the solve stays bitwise
	// identical to an unmonitored run.
	mon := func(iter int, rnorm float64) bool {
		if ctx.Err() != nil {
			return false
		}
		if enc != nil {
			if err := enc.Encode(Progress{Iter: iter, Residual: rnorm}); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return true
	}

	x := make([]float64, len(entry.fred))
	t0 := time.Now()
	res := krylov.FPCGMonitoredCtx(ctx, entry.kred, entry.fred, x, mg, req.RTol, req.MaxIters, mon)
	resp.SolveNs = time.Since(t0).Nanoseconds()
	resp.Iterations = res.Iterations
	resp.Converged = res.Converged
	resp.Residuals = res.Residuals
	resp.TaskFlops = task.Flops()
	resp.TaskMsgs = task.Msgs()
	resp.TaskBytes = task.Bytes()
	resp.TaskVCycles = task.VCycles()
	mSolves.With(storageLabel(opts.MG.Storage)).Inc()

	if ctx.Err() != nil {
		s.cancelled.Add(1)
		resp.Error = "serve: client cancelled the solve"
		if enc != nil {
			if err := enc.Encode(resp); err != nil {
				return
			}
		}
		return
	}

	u := entry.solver.ExpandSolution(x)
	resp.SolutionHash = SolutionHash(u)
	if req.ReturnSolution {
		resp.Solution = u
	}
	if !res.Converged {
		resp.Error = fmt.Sprintf("serve: did not reach rtol=%g in %d iterations", req.RTol, req.MaxIters)
	}
	if enc != nil {
		if err := enc.Encode(resp); err != nil {
			return
		}
		return
	}
	if err := writeJSON(w, http.StatusOK, resp); err != nil {
		return
	}
}

// sessionsBody is the GET /v1/sessions document.
type sessionsBody struct {
	Active    []SessionInfo `json:"active"`
	Total     uint64        `json:"total"`
	LongestNs int64         `json:"longest_ns"`
}

// handleSessions is GET /v1/sessions: solves in flight plus lifetime
// totals.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		failJSON(w, http.StatusMethodNotAllowed, "serve: GET only")
		return
	}
	live, total, longest := s.sessions.snapshot()
	body := sessionsBody{Active: live, Total: total, LongestNs: longest.Nanoseconds()}
	if body.Active == nil {
		body.Active = []SessionInfo{}
	}
	if err := writeJSON(w, http.StatusOK, body); err != nil {
		return
	}
}

// cacheBody is the GET /v1/cache document.
type cacheBody struct {
	Entries   []EntryInfo `json:"entries"`
	Hits      int64       `json:"hits"`
	Misses    int64       `json:"misses"`
	Evictions int64       `json:"evictions"`
}

// handleCache is GET /v1/cache: the hierarchy cache contents and
// hit/miss totals.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		failJSON(w, http.StatusMethodNotAllowed, "serve: GET only")
		return
	}
	entries, hits, misses, evictions := s.cache.snapshot()
	body := cacheBody{Entries: entries, Hits: hits, Misses: misses, Evictions: evictions}
	if body.Entries == nil {
		body.Entries = []EntryInfo{}
	}
	if err := writeJSON(w, http.StatusOK, body); err != nil {
		return
	}
}

// handleSessionTrace is GET /v1/sessions/{id}/trace: the per-request
// Chrome trace (chrome://tracing / Perfetto JSON) of one solve — the
// spans recorded into that request's task ring, not the global ring, so
// concurrent solves export disjoint traces. Sessions stay fetchable for
// recentSessionsCap completions after they finish.
func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		failJSON(w, http.StatusMethodNotAllowed, "serve: GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	idStr, ok := strings.CutSuffix(rest, "/trace")
	if !ok || idStr == "" || strings.Contains(idStr, "/") {
		failJSON(w, http.StatusNotFound, "serve: want /v1/sessions/{id}/trace")
		return
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		failJSON(w, http.StatusBadRequest, fmt.Sprintf("serve: bad session id %q", idStr))
		return
	}
	sess, found := s.sessions.lookup(id)
	if !found {
		failJSON(w, http.StatusNotFound, fmt.Sprintf("serve: unknown session %d", id))
		return
	}
	if sess.task == nil {
		failJSON(w, http.StatusNotFound, fmt.Sprintf("serve: session %d has no trace", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := sess.task.Profile().WriteChromeTrace(w); err != nil {
		return
	}
}

// handleMetrics is GET /metrics: the whole obs registry — counters,
// gauges, histograms (as cumulative buckets) and per-event totals — in
// Prometheus text exposition format 0.0.4, rendered by stdlib code only.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		failJSON(w, http.StatusMethodNotAllowed, "serve: GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w); err != nil {
		return
	}
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	if err := writeJSON(w, status, h); err != nil {
		return
	}
}
