package serve

import (
	"sync"
	"sync/atomic"
	"time"

	prometheus "prometheus"
	"prometheus/internal/multigrid"
)

// mgPoolCap is the compile-time capacity of each entry's idle-multigrid
// pool. Checked-in preconditioners beyond this are dropped (rebuilt on
// demand), so an entry can never hoard more than mgPoolCap solver states.
const mgPoolCap = 8

// cacheEntryCap is the compile-time ceiling on cached hierarchy entries;
// Config.MaxCacheEntries clamps to it.
const cacheEntryCap = 64

// cacheEntry is one cached setup product: everything a warm request can
// reuse — the solver (hierarchy + restrictions), the reduced operator and
// right-hand side, and a pool of ready multigrid preconditioners. The
// entry is built exactly once (single-flight); concurrent first requests
// for the same key block on the build instead of duplicating it.
type cacheEntry struct {
	key string
	fp  string

	once sync.Once
	err  error

	solver *prometheus.Solver
	// kred is the reduced fine operator: an assembled matrix on the
	// csr/bsr paths, a matrix-free element-by-element operator under
	// storage "mf" — the solve only needs Operator either way.
	kred    prometheus.Operator
	fred    []float64
	numDOF  int
	levels  int
	setupNs int64

	// mgs is the idle preconditioner pool. A multigrid instance carries
	// per-level scratch vectors, so one instance must never serve two
	// concurrent solves; Checkout leases an instance, Checkin returns it.
	mgs    chan *multigrid.MG
	builds atomic.Int64 // lifetime MG constructions (1 = never rebuilt)

	// refs and lastUse are guarded by the owning cache's mutex.
	refs    int
	lastUse uint64
}

// build runs the cold-path setup: coarsening, assembly, constraint
// reduction and the first multigrid construction. It runs to completion
// even if the requesting client goes away — the product is shared state,
// and a half-built entry poisoned by one caller's cancellation would
// break every later request for the key.
func (e *cacheEntry) build(g *Geometry, scale float64, opts prometheus.Options) {
	t0 := time.Now()
	solver, err := prometheus.NewSolver(g.Mesh, g.Cons, opts)
	if err != nil {
		e.err = err
		return
	}
	var kred prometheus.Operator
	var fred []float64
	if opts.MG.Storage == prometheus.StorageMatrixFree {
		// Matrix-free mode: no fine-grid matrix is ever assembled; the
		// cached operator applies element stiffnesses directly.
		kred, fred, err = g.MatrixFreeLinear(solver, scale)
		if err != nil {
			e.err = err
			return
		}
	} else {
		k, f, err := g.AssembleLinear(scale)
		if err != nil {
			e.err = err
			return
		}
		kred, fred = solver.ReduceSystem(k, f)
	}
	mg, err := solver.Preconditioner(kred)
	if err != nil {
		e.err = err
		return
	}
	e.solver = solver
	e.kred = kred
	e.fred = fred
	e.numDOF = g.Mesh.NumDOF()
	e.levels = mg.NumLevels()
	e.setupNs = time.Since(t0).Nanoseconds()
	e.builds.Add(1)
	e.checkinMG(mg)
}

// Checkout leases a multigrid preconditioner from the idle pool, building
// a fresh instance when the pool is empty (concurrent solves on one
// entry). Never blocks. Pair with Checkin on all paths.
func (e *cacheEntry) Checkout() (*multigrid.MG, error) {
	select {
	case mg := <-e.mgs:
		return mg, nil
	default:
	}
	mg, err := e.solver.Preconditioner(e.kred)
	if err != nil {
		return nil, err
	}
	e.builds.Add(1)
	return mg, nil
}

// Checkin returns a leased preconditioner to the idle pool.
func (e *cacheEntry) Checkin(mg *multigrid.MG) { e.checkinMG(mg) }

// checkinMG puts an instance back; a full pool drops it (the next
// checkout past mgPoolCap concurrent solves rebuilds).
func (e *cacheEntry) checkinMG(mg *multigrid.MG) {
	select {
	case e.mgs <- mg:
	default:
	}
}

// EntryInfo is the JSON view of one cache entry for /v1/cache.
type EntryInfo struct {
	// Key is the full cache key
	// (fingerprint/cycle/storage/precision/scale-bits).
	Key string `json:"key"`
	// Fingerprint is the mesh fingerprint component of the key.
	Fingerprint string `json:"fingerprint"`
	// NumDOF is the fine-grid dof count of the cached system.
	NumDOF int `json:"num_dof"`
	// Levels is the multigrid level count.
	Levels int `json:"levels"`
	// SetupNs is the cold setup cost the entry saves per warm hit.
	SetupNs int64 `json:"setup_ns"`
	// IdleMGs is the current idle preconditioner pool depth.
	IdleMGs int `json:"idle_mgs"`
	// Builds counts lifetime multigrid constructions for the entry.
	Builds int64 `json:"builds"`
	// Refs is the number of requests currently using the entry.
	Refs int `json:"refs"`
}

// hierCache maps cache keys to setup products. Lookups are O(1) under
// one mutex; the heavy build runs outside the lock, single-flighted per
// entry. Eviction is LRU over unreferenced entries, by logical clock (no
// wall-time dependence).
type hierCache struct {
	mu        sync.Mutex
	max       int
	clock     uint64
	entries   map[string]*cacheEntry
	hits      int64
	misses    int64
	evictions int64
}

func newHierCache(maxEntries int) *hierCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxEntries > cacheEntryCap {
		maxEntries = cacheEntryCap
	}
	return &hierCache{max: maxEntries, entries: make(map[string]*cacheEntry)}
}

// Acquire returns the entry for key, building it (single-flight) on a
// miss. hit reports whether the setup products already existed. A nil
// error guarantees a usable entry the caller must Release on all paths;
// on error the reference is already released.
func (c *hierCache) Acquire(key, fp string, g *Geometry, scale float64, opts prometheus.Options) (e *cacheEntry, hit bool, err error) {
	c.mu.Lock()
	e, hit = c.entries[key]
	if !hit {
		e = &cacheEntry{key: key, fp: fp, mgs: make(chan *multigrid.MG, mgPoolCap)}
		c.entries[key] = e
		c.misses++
		mCacheMisses.Inc()
	} else {
		c.hits++
		mCacheHits.Inc()
	}
	e.refs++
	c.clock++
	e.lastUse = c.clock
	if !hit {
		// Evict only after the new entry is pinned, so it can never be
		// its own victim.
		c.evictLocked()
	}
	c.mu.Unlock()

	e.once.Do(func() { e.build(g, scale, opts) })
	if e.err != nil {
		err = e.err
		c.Release(e)
		c.dropFailed(e)
		return nil, false, err
	}
	return e, hit, nil
}

// dropFailed removes a failed-build entry from the map once unreferenced,
// so a transient build error does not poison its key forever.
func (c *hierCache) dropFailed(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[e.key]; ok && cur == e && e.refs == 0 {
		delete(c.entries, e.key)
	}
}

// Release drops one reference taken by Acquire.
func (c *hierCache) Release(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.refs < 0 {
		panic("serve: cache release without a matching acquire")
	}
}

// evictLocked removes least-recently-used unreferenced entries while the
// cache exceeds its limit. Entries pinned by in-flight requests are never
// evicted, so the map can transiently exceed max by the admission limit.
func (c *hierCache) evictLocked() {
	for len(c.entries) > c.max {
		var victim *cacheEntry
		for _, e := range c.entries {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.evictions++
		mCacheEvict.Inc()
	}
}

// sweep is the janitor hook: it re-applies the eviction policy (entries
// pinned at insert time may have become evictable since).
func (c *hierCache) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked()
}

// snapshot lists entries (sorted by key) plus hit/miss/eviction totals.
func (c *hierCache) snapshot() (infos []EntryInfo, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		info := EntryInfo{
			Key:         e.key,
			Fingerprint: e.fp,
			NumDOF:      e.numDOF,
			Levels:      e.levels,
			SetupNs:     e.setupNs,
			IdleMGs:     len(e.mgs),
			Builds:      e.builds.Load(),
			Refs:        e.refs,
		}
		infos = append(infos, info)
	}
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Key < infos[j-1].Key; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	return infos, c.hits, c.misses, c.evictions
}
