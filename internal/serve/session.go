package serve

import (
	"sync"
	"time"
)

// SessionInfo is the JSON view of one solve session, live or summarized
// in the /v1/sessions listing.
type SessionInfo struct {
	// ID is the monotonically increasing session id.
	ID uint64 `json:"id"`
	// Problem is the request's problem kind.
	Problem string `json:"problem"`
	// Size is the request's refinement parameter.
	Size int `json:"size"`
	// Key is the cache key (fingerprint + solve variant) the session
	// resolved to; empty until the spec has been fingerprinted.
	Key string `json:"key,omitempty"`
	// StartUnixNs is the wall-clock start of the session.
	StartUnixNs int64 `json:"start_unix_ns"`
	// AgeNs is the session age at snapshot time.
	AgeNs int64 `json:"age_ns"`
}

// session is one checked-out solve in flight.
type session struct {
	id      uint64
	problem string
	size    int
	start   time.Time

	mu  sync.Mutex
	key string
}

// setKey records the resolved cache key once the spec is fingerprinted.
func (s *session) setKey(key string) {
	s.mu.Lock()
	s.key = key
	s.mu.Unlock()
}

// info snapshots the session for the listing endpoint.
func (s *session) info(now time.Time) SessionInfo {
	s.mu.Lock()
	key := s.key
	s.mu.Unlock()
	return SessionInfo{
		ID:          s.id,
		Problem:     s.problem,
		Size:        s.size,
		Key:         key,
		StartUnixNs: s.start.UnixNano(),
		AgeNs:       now.Sub(s.start).Nanoseconds(),
	}
}

// sessionManager tracks solves in flight. Checkout registers a session,
// Checkin retires it; the pair is enforced on all paths by the
// resource-release rule.
type sessionManager struct {
	mu      sync.Mutex
	next    uint64
	active  map[uint64]*session
	total   uint64
	longest time.Duration
}

func newSessionManager() *sessionManager {
	return &sessionManager{active: make(map[uint64]*session)}
}

// Checkout registers a new in-flight session.
func (m *sessionManager) Checkout(problem string, size int) *session {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.next++
	m.total++
	s := &session{id: m.next, problem: problem, size: size, start: time.Now()}
	m.active[s.id] = s
	return s
}

// Checkin retires a session returned by Checkout.
func (m *sessionManager) Checkin(s *session) {
	d := time.Since(s.start)
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, s.id)
	if d > m.longest {
		m.longest = d
	}
}

// snapshot returns the live sessions (ordered by id) plus lifetime stats.
func (m *sessionManager) snapshot() (live []SessionInfo, total uint64, longest time.Duration) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.active {
		live = append(live, s.info(now))
	}
	// Insertion sort by id: the active set is small (≤ admission limit).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].ID < live[j-1].ID; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	return live, m.total, m.longest
}
