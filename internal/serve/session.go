package serve

import (
	"sync"
	"time"

	"prometheus/internal/obs"
)

// SessionInfo is the JSON view of one solve session, live or summarized
// in the /v1/sessions listing.
type SessionInfo struct {
	// ID is the monotonically increasing session id.
	ID uint64 `json:"id"`
	// Problem is the request's problem kind.
	Problem string `json:"problem"`
	// Size is the request's refinement parameter.
	Size int `json:"size"`
	// Key is the cache key (fingerprint + solve variant) the session
	// resolved to; empty until the spec has been fingerprinted.
	Key string `json:"key,omitempty"`
	// StartUnixNs is the wall-clock start of the session.
	StartUnixNs int64 `json:"start_unix_ns"`
	// AgeNs is the session age at snapshot time.
	AgeNs int64 `json:"age_ns"`
	// TraceID is the request's W3C trace id.
	TraceID string `json:"trace_id,omitempty"`
}

// session is one checked-out solve in flight.
type session struct {
	id      uint64
	problem string
	size    int
	start   time.Time
	task    *obs.Task

	mu  sync.Mutex
	key string
}

// setKey records the resolved cache key once the spec is fingerprinted.
func (s *session) setKey(key string) {
	s.mu.Lock()
	s.key = key
	s.mu.Unlock()
}

// info snapshots the session for the listing endpoint.
func (s *session) info(now time.Time) SessionInfo {
	s.mu.Lock()
	key := s.key
	s.mu.Unlock()
	return SessionInfo{
		ID:          s.id,
		Problem:     s.problem,
		Size:        s.size,
		Key:         key,
		StartUnixNs: s.start.UnixNano(),
		AgeNs:       now.Sub(s.start).Nanoseconds(),
		TraceID:     s.task.TraceID(),
	}
}

// sessionManager tracks solves in flight. Checkout registers a session,
// Checkin retires it; the pair is enforced on all paths by the
// resource-release rule.
// recentSessionsCap is the compile-time capacity of the retired-session
// ring kept for the per-request trace endpoint: a completed solve's
// trace stays fetchable until recentSessionsCap later solves retire.
const recentSessionsCap = 64

type sessionManager struct {
	mu        sync.Mutex
	next      uint64
	active    map[uint64]*session
	recent    [recentSessionsCap]*session
	recentPos int
	total     uint64
	longest   time.Duration
}

func newSessionManager() *sessionManager {
	return &sessionManager{active: make(map[uint64]*session)}
}

// Checkout registers a new in-flight session attributed to the given
// request task (may be nil outside the instrumented handler path).
func (m *sessionManager) Checkout(problem string, size int, task *obs.Task) *session {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.next++
	m.total++
	s := &session{id: m.next, problem: problem, size: size, start: time.Now(), task: task}
	m.active[s.id] = s
	return s
}

// Checkin retires a session returned by Checkout.
func (m *sessionManager) Checkin(s *session) {
	d := time.Since(s.start)
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, s.id)
	m.recent[m.recentPos] = s
	m.recentPos = (m.recentPos + 1) % recentSessionsCap
	if d > m.longest {
		m.longest = d
	}
}

// lookup finds a session by id among the in-flight set and the recent
// ring, for the per-request trace endpoint.
func (m *sessionManager) lookup(id uint64) (*session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.active[id]; ok {
		return s, true
	}
	for _, s := range m.recent {
		if s != nil && s.id == id {
			return s, true
		}
	}
	return nil, false
}

// snapshot returns the live sessions (ordered by id) plus lifetime stats.
func (m *sessionManager) snapshot() (live []SessionInfo, total uint64, longest time.Duration) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.active {
		live = append(live, s.info(now))
	}
	// Insertion sort by id: the active set is small (≤ admission limit).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].ID < live[j-1].ID; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	return live, m.total, m.longest
}
