package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// admissionCap is the compile-time upper bound on concurrent admitted
// solves. The semaphore channel is created at this constant capacity (the
// bounded-queue rule requires every service channel to have constant
// capacity); the configured limit only controls how many tokens are
// seeded, so runtime configuration can never grow the queue.
const admissionCap = 256

// ErrBusy is returned by a non-waiting Acquire when every admission slot
// is taken; the handler maps it to 503 + Retry-After (backpressure).
var ErrBusy = errors.New("serve: all solve slots busy")

// admission is a token-pool semaphore bounding concurrent solves. A slot
// is a token in the channel: Acquire receives one, Release puts it back.
// Both sides are select-guarded, so no request-path operation can block
// without a cancellation path.
type admission struct {
	tokens chan struct{}
	// held counts outstanding acquires, so an unpaired Release is caught
	// even when the configured limit sits below the channel capacity.
	held atomic.Int64
	// waiting counts requests blocked in a wait=true Acquire.
	waiting atomic.Int64
}

// newAdmission builds a semaphore with `limit` slots (clamped to
// [1, admissionCap]).
func newAdmission(limit int) *admission {
	if limit < 1 {
		limit = 1
	}
	if limit > admissionCap {
		limit = admissionCap
	}
	a := &admission{tokens: make(chan struct{}, admissionCap)}
	for i := 0; i < limit; i++ {
		select {
		case a.tokens <- struct{}{}:
		default:
			panic("serve: admission seed overflowed the token channel")
		}
	}
	return a
}

// Acquire takes one admission slot. With wait=false it never blocks:
// a full service returns ErrBusy immediately. With wait=true it blocks
// until a slot frees or ctx is cancelled. Every successful Acquire must
// be paired with exactly one Release (the resource-release rule enforces
// this at the call sites).
func (a *admission) Acquire(ctx context.Context, wait bool) error {
	if !wait {
		select {
		case <-a.tokens:
			a.held.Add(1)
			return nil
		default:
			return ErrBusy
		}
	}
	// Waiting depth is a gauge of current value: entering the blocking
	// select raises it, leaving (admitted or cancelled) lowers it.
	gAdmWaiting.Set(a.waiting.Add(1))
	defer func() { gAdmWaiting.Set(a.waiting.Add(-1)) }()
	select {
	case <-a.tokens:
		a.held.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot. The send is select-guarded and asserts it can
// never block: more Releases than Acquires is a pairing bug, and the
// panic surfaces it instead of silently growing capacity.
func (a *admission) Release() {
	if a.held.Add(-1) < 0 {
		panic("serve: admission release without a matching acquire")
	}
	select {
	case a.tokens <- struct{}{}:
	default:
		panic("serve: admission release overflowed the token channel")
	}
}
