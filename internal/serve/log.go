package serve

import (
	"context"
	"log/slog"

	"prometheus/internal/obs"
)

// TraceHandler is a slog.Handler decorator that stamps every record
// whose context carries an obs task with that task's trace id, under
// the constant "trace_id" key. With it installed, request-path code
// never threads trace ids by hand: logging through the *Context slog
// variants (enforced by the log-discipline lint rule) is enough for
// every line to be correlatable with the request's traceparent.
type TraceHandler struct {
	inner slog.Handler
}

// NewTraceHandler wraps a base handler with trace-id stamping. It is
// idempotent: an already-wrapped handler is returned unchanged, so a
// caller-provided logger (promserve wraps its own) composed with the
// server's unconditional wrap stamps trace_id exactly once.
func NewTraceHandler(h slog.Handler) *TraceHandler {
	if th, ok := h.(*TraceHandler); ok {
		return th
	}
	return &TraceHandler{inner: h}
}

// Enabled implements slog.Handler.
func (h *TraceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler: it appends the trace_id attribute
// from the context task, if any, then delegates.
func (h *TraceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if t := obs.FromContext(ctx); t != nil {
		rec.AddAttrs(slog.String("trace_id", t.TraceID()))
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs implements slog.Handler.
func (h *TraceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &TraceHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *TraceHandler) WithGroup(name string) slog.Handler {
	return &TraceHandler{inner: h.inner.WithGroup(name)}
}
