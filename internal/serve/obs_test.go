package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"prometheus/internal/obs"
)

// postSolveHeaders sends a solve request with extra headers and returns
// the decoded response plus the raw http.Response for header checks.
func postSolveHeaders(t *testing.T, ts *httptest.Server, req SolveRequest, hdr map[string]string) (SolveResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer hr.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", hr.StatusCode, err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("solve returned status %d: %+v", hr.StatusCode, out)
	}
	return out, hr
}

// taskEvent reports whether a global obs event is one of the span sites
// that also credit the request task's flop counter: the Krylov solve
// span, the V-cycle apply span, and the smoother sweep spans.
func taskEvent(name string) bool {
	return name == "krylov.fpcg" || name == "mg.apply" || strings.HasPrefix(name, "smooth.")
}

// TestTaskAttribution is the tentpole invariant: two concurrent solves
// each get their own non-zero flop attribution, and because the task
// counters are credited at exactly the same EndFlops sites as the global
// event stats, the per-request totals sum to the global totals over
// those events — nothing double-counted, nothing lost.
func TestTaskAttribution(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	// Prewarm both cache entries (and their pooled MG instances) so the
	// measurement window below contains solve work only — no setup.
	specA := Spec{Problem: "cube", Size: 1}
	specB := Spec{Problem: "cantilever", Size: 1}
	postSolve(t, ts, SolveRequest{Spec: specA})
	postSolve(t, ts, SolveRequest{Spec: specB})

	obs.EnableWith(obs.Config{RingCap: 1 << 15})
	defer obs.Disable()

	var wg sync.WaitGroup
	results := make([]SolveResponse, 2)
	for i, spec := range []Spec{specA, specB} {
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			results[i] = postSolve(t, ts, SolveRequest{Spec: spec})
		}(i, spec)
	}
	wg.Wait()
	snap := obs.Snapshot()

	var taskSum int64
	for i, r := range results {
		if r.TaskFlops <= 0 {
			t.Fatalf("solve %d: TaskFlops = %d, want > 0", i, r.TaskFlops)
		}
		if r.TaskVCycles <= 0 {
			t.Fatalf("solve %d: TaskVCycles = %d, want > 0", i, r.TaskVCycles)
		}
		if r.TraceID == "" {
			t.Fatalf("solve %d: empty TraceID", i)
		}
		taskSum += r.TaskFlops
	}
	if results[0].TraceID == results[1].TraceID {
		t.Fatalf("concurrent solves share trace id %s", results[0].TraceID)
	}
	if results[0].TaskFlops == results[1].TaskFlops && results[0].Key == results[1].Key {
		t.Fatalf("suspicious: distinct problems, identical attribution %d", results[0].TaskFlops)
	}

	var globalSum int64
	for _, e := range snap.Events {
		if taskEvent(e.Name) {
			globalSum += e.Totals().Flops
		}
	}
	if globalSum <= 0 {
		t.Fatalf("global task-event flops = %d, want > 0", globalSum)
	}
	if taskSum != globalSum {
		t.Fatalf("per-task flops sum %d != global task-event flops %d (A=%d B=%d)",
			taskSum, globalSum, results[0].TaskFlops, results[1].TaskFlops)
	}
}

// TestTraceparentPropagation checks W3C trace context handling: a valid
// inbound traceparent's trace id is adopted (response header, response
// body and log line all carry it), while an invalid one is replaced by
// a freshly minted id of valid shape.
func TestTraceparentPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	// Pre-wrap the logger like promserve does: composed with the
	// server's own unconditional wrap this must stamp trace_id exactly
	// once (NewTraceHandler is idempotent).
	log := slog.New(NewTraceHandler(slog.NewJSONHandler(syncWriter{&logMu, &logBuf}, nil)))
	_, ts := newTestServer(t, Config{Log: log})

	const inTrace = "0af7651916cd43dd8448eb211c80319c"
	const inSpan = "b7ad6b7169203331"
	resp, hr := postSolveHeaders(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}},
		map[string]string{"traceparent": "00-" + inTrace + "-" + inSpan + "-01"})

	if resp.TraceID != inTrace {
		t.Fatalf("TraceID = %q, want adopted inbound %q", resp.TraceID, inTrace)
	}
	echo := hr.Header.Get("Traceparent")
	gotTrace, gotSpan, ok := obs.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response Traceparent %q does not parse", echo)
	}
	if gotTrace != inTrace {
		t.Fatalf("response Traceparent trace id %q, want %q", gotTrace, inTrace)
	}
	if gotSpan == inSpan {
		t.Fatalf("response span id %q echoes the inbound span id", gotSpan)
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, `"trace_id":"`+inTrace+`"`) {
		t.Fatalf("request log line lacks trace_id=%s:\n%s", inTrace, logged)
	}
	for _, line := range strings.Split(strings.TrimSpace(logged), "\n") {
		if n := strings.Count(line, `"trace_id":`); n > 1 {
			t.Fatalf("log line stamps trace_id %d times (double-wrapped handler):\n%s", n, line)
		}
	}

	resp2, hr2 := postSolveHeaders(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}},
		map[string]string{"traceparent": "00-" + strings.Repeat("0", 32) + "-" + inSpan + "-01"})
	if resp2.TraceID == "" || resp2.TraceID == strings.Repeat("0", 32) {
		t.Fatalf("invalid traceparent not replaced: TraceID = %q", resp2.TraceID)
	}
	if _, _, ok := obs.ParseTraceparent(hr2.Header.Get("Traceparent")); !ok {
		t.Fatalf("fresh response Traceparent %q does not parse", hr2.Header.Get("Traceparent"))
	}
	if resp2.TraceID == resp.TraceID {
		t.Fatalf("fresh trace id collides with previous request")
	}
}

// syncWriter serializes concurrent log writes in tests.
type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}

// TestServeCacheCounters drives the cache through cold → warm → evict
// and checks the /v1/cache counters: a first solve misses, a repeat
// hits, and a different geometry on a one-entry cache misses and evicts.
func TestServeCacheCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCacheEntries: 1})

	specA := Spec{Problem: "cube", Size: 1}
	specB := Spec{Problem: "cantilever", Size: 1}
	if r := postSolve(t, ts, SolveRequest{Spec: specA}); r.CacheHit {
		t.Fatalf("first solve reported a cache hit")
	}
	if r := postSolve(t, ts, SolveRequest{Spec: specA}); !r.CacheHit {
		t.Fatalf("repeat solve missed the cache")
	}
	if r := postSolve(t, ts, SolveRequest{Spec: specB}); r.CacheHit {
		t.Fatalf("new geometry reported a cache hit")
	}

	hr, err := http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatalf("GET /v1/cache: %v", err)
	}
	defer hr.Body.Close()
	var body cacheBody
	if err := json.NewDecoder(hr.Body).Decode(&body); err != nil {
		t.Fatalf("decode cache body: %v", err)
	}
	if body.Hits != 1 || body.Misses != 2 || body.Evictions != 1 {
		t.Fatalf("cache counters hits=%d misses=%d evictions=%d, want 1/2/1",
			body.Hits, body.Misses, body.Evictions)
	}
	if len(body.Entries) != 1 {
		t.Fatalf("cache holds %d entries, want 1 after eviction", len(body.Entries))
	}
}

// TestServeObsOnOffIdentical checks that turning observability on does
// not perturb the numerics: the solution hash with obs recording every
// span and counter equals both the obs-off served hash and the direct
// solver's.
func TestServeObsOnOffIdentical(t *testing.T) {
	spec := Spec{Problem: "cube", Size: 1}
	uDirect, _, err := DirectSolve(spec, 1, 1e-4, 1000, "fmg", "", "")
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	want := SolutionHash(uDirect)

	obs.Disable()
	_, tsOff := newTestServer(t, Config{})
	off := postSolve(t, tsOff, SolveRequest{Spec: spec})

	obs.EnableWith(obs.Config{})
	defer obs.Disable()
	_, tsOn := newTestServer(t, Config{})
	on := postSolve(t, tsOn, SolveRequest{Spec: spec})

	if off.SolutionHash != want {
		t.Fatalf("obs-off hash %s, direct %s", off.SolutionHash, want)
	}
	if on.SolutionHash != want {
		t.Fatalf("obs-on hash %s, direct %s", on.SolutionHash, want)
	}
	if on.Iterations != off.Iterations {
		t.Fatalf("obs-on %d iterations, obs-off %d", on.Iterations, off.Iterations)
	}
	if on.TaskFlops <= 0 {
		t.Fatalf("obs-on TaskFlops = %d, want > 0", on.TaskFlops)
	}
	if off.TaskFlops != 0 {
		t.Fatalf("obs-off TaskFlops = %d, want 0", off.TaskFlops)
	}
}

// promLine matches one Prometheus text-format sample line:
// name{labels} value — where the value is an integer, float or +Inf.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// TestMetricsEndpoint scrapes /metrics after a request mix and checks
// the exposition: correct content type, every non-comment line in
// sample format, and the request counters present with labels.
func TestMetricsEndpoint(t *testing.T) {
	obs.EnableWith(obs.Config{})
	defer obs.Disable()
	_, ts := newTestServer(t, Config{})
	postSolve(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}})
	postSolve(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}})

	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text/plain; version=0.0.4", ct)
	}
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	text := string(raw)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d is not a valid sample: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"prometheus_obs_enabled 1",
		`prometheus_serve_http_requests_total{route="/v1/solve",status="200"} 2`,
		`prometheus_serve_solve_total{storage=`,
		"prometheus_serve_cache_misses_total 1",
		"prometheus_serve_cache_hits_total 1",
		`prometheus_serve_http_request_ns_bucket{`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, text)
		}
	}
	// Histogram buckets must be cumulative and consistent with _count.
	if !strings.Contains(text, `le="+Inf"`) {
		t.Fatalf("/metrics histogram lacks +Inf bucket")
	}
}

// TestSessionTraceEndpoint checks the per-request Chrome-trace export:
// after an obs-on solve, /v1/sessions/{id}/trace returns that request's
// span events, and unknown ids 404.
func TestSessionTraceEndpoint(t *testing.T) {
	obs.EnableWith(obs.Config{})
	defer obs.Disable()
	_, ts := newTestServer(t, Config{})
	resp := postSolve(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}})

	hr, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/trace", ts.URL, resp.Session))
	if err != nil {
		t.Fatalf("GET session trace: %v", err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("session trace status %d", hr.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&doc); err != nil {
		t.Fatalf("decode chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("session trace has no events")
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	if !seen["krylov.fpcg"] {
		t.Fatalf("session trace lacks the krylov.fpcg span; saw %v", seen)
	}

	if hr2, err := http.Get(ts.URL + "/v1/sessions/999999/trace"); err != nil {
		t.Fatalf("GET unknown session trace: %v", err)
	} else {
		hr2.Body.Close()
		if hr2.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown session trace status %d, want 404", hr2.StatusCode)
		}
	}
}
