package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"

	prometheus "prometheus"
	"prometheus/internal/core"
	"prometheus/internal/multigrid"
	"prometheus/internal/problems"
)

// Spec names one of the bundled parametric problems. It is the part of a
// solve request that determines the geometry, constraints and reference
// load — everything the mesh fingerprint (and so the hierarchy cache key)
// is derived from.
type Spec struct {
	// Problem is the problem kind: "cube" or "cantilever".
	Problem string `json:"problem"`
	// Size is the refinement parameter (same meaning as promsolve -size).
	Size int `json:"size"`
}

// Geometry is a built problem: mesh, Dirichlet set, materials and the
// unit reference load vector. It is cheap relative to hierarchy setup
// (structured generation, no assembly), so the service rebuilds it per
// request to compute the fingerprint before consulting the cache.
type Geometry struct {
	// Mesh is the fine-grid mesh.
	Mesh *prometheus.Mesh
	// Cons is the Dirichlet constraint set.
	Cons *prometheus.Constraints
	// Models are the material models indexed by mesh material id.
	Models []prometheus.Model
	// Load is the reference external force vector (full dof numbering);
	// requests scale it by their load_scale.
	Load []float64
}

// BuildGeometry constructs the named problem exactly as cmd/promsolve
// does, so served solves are comparable (bitwise) to command-line runs of
// the same spec.
func BuildGeometry(spec Spec) (*Geometry, error) {
	if spec.Size < 1 {
		return nil, fmt.Errorf("serve: size must be >= 1, got %d", spec.Size)
	}
	if spec.Size > maxSize {
		return nil, fmt.Errorf("serve: size %d exceeds the service limit %d", spec.Size, maxSize)
	}
	switch spec.Problem {
	case "cube":
		c := problems.NewCube(4*spec.Size, prometheus.LinearElastic{E: 1, Nu: 0.3}, -0.001)
		return &Geometry{Mesh: c.Mesh, Cons: c.Cons, Models: c.Models, Load: c.Load}, nil
	case "cantilever":
		c := problems.NewCantilever(6*spec.Size, spec.Size, spec.Size, 6,
			prometheus.LinearElastic{E: 1, Nu: 0.3}, -0.0001)
		return &Geometry{Mesh: c.Mesh, Cons: c.Cons, Models: c.Models, Load: c.Load}, nil
	default:
		return nil, fmt.Errorf("serve: unknown problem %q (want cube or cantilever)", spec.Problem)
	}
}

// maxSize bounds the refinement parameter a request may ask for: the
// service is memory-bounded by construction, like its queues.
const maxSize = 8

// AssembleLinear assembles the tangent stiffness at zero displacement and
// the scaled load vector — the expensive fine-grid-creation phase, run
// once per cache entry and skipped on warm hits.
func (g *Geometry) AssembleLinear(scale float64) (*prometheus.CSR, []float64, error) {
	p := prometheus.NewProblem(g.Mesh, g.Models, false)
	u := make([]float64, g.Mesh.NumDOF())
	k, _, err := p.AssembleTangent(u)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: assembly: %w", err)
	}
	f := make([]float64, len(g.Load))
	for i, v := range g.Load {
		f[i] = scale * v
	}
	return k, f, nil
}

// MatrixFreeLinear builds the reduced system for the "mf" storage mode:
// an element-by-element operator at zero displacement plus the reduced,
// scaled right-hand side — the matrix-free counterpart of AssembleLinear
// followed by ReduceSystem, with no fine-grid matrix ever assembled.
func (g *Geometry) MatrixFreeLinear(solver *prometheus.Solver, scale float64) (prometheus.Operator, []float64, error) {
	p := prometheus.NewProblem(g.Mesh, g.Models, false)
	f := make([]float64, len(g.Load))
	for i, v := range g.Load {
		f[i] = scale * v
	}
	return solver.MatrixFreeSystem(p, f)
}

// Fingerprint returns the deterministic content hash of the geometry
// under the given coarsening options (core.Fingerprint): the part of the
// cache key that identifies the hierarchy.
func (g *Geometry) Fingerprint(opts prometheus.CoarsenOptions) string {
	return core.Fingerprint(g.Mesh, g.Cons.Fixed, opts)
}

// storageLabel is the canonical cache-key component for a storage mode.
// Derived from the resolved options (not the raw request string), so two
// spellings that configure the same solver can never produce distinct
// keys, and two modes that cache different products can never collide.
func storageLabel(k prometheus.StorageKind) string {
	switch k {
	case prometheus.StorageCSR:
		return "csr"
	case prometheus.StorageBSR:
		return "bsr"
	case prometheus.StorageMatrixFree:
		return "mf"
	default:
		return "auto"
	}
}

// precisionLabel is the canonical cache-key component for the coarse-level
// precision mode.
func precisionLabel(k multigrid.PrecisionKind) string {
	if k == multigrid.PrecisionMixedF32 {
		return "f32"
	}
	return "f64"
}

// cacheKey derives the full cache key: the mesh fingerprint plus the
// solve-variant parameters that change the cached setup products (cycle
// shapes the multigrid built from the hierarchy, storage and coarse
// precision shape the cached operator hierarchy itself, the load scale
// bakes into the cached reduced right-hand side). Float bits, not
// formatted decimals, so distinct scales can never collide. Storage and
// precision come from the resolved options: a "mf" entry caches an
// element-by-element operator and a "f32" entry caches narrowed coarse
// matrices, so sharing an entry across those modes would hand one
// request's variant to another.
func cacheKey(fp string, cycle string, opts prometheus.Options, scale float64) string {
	return fp + "/" + cycle + "/" + storageLabel(opts.MG.Storage) + "/" +
		precisionLabel(opts.MG.CoarsePrecision) + "/" +
		strconv.FormatUint(math.Float64bits(scale), 16)
}

// solverOptions maps request-level solve parameters onto the library
// options. The same mapping is used by the cache build and by
// DirectSolve, so the two paths configure identical solvers.
func solverOptions(rtol float64, maxIters int, cycle, storage, precision string) (prometheus.Options, error) {
	opts := prometheus.Options{RTol: rtol, MaxIters: maxIters}
	switch cycle {
	case "", "fmg":
		// FMG is the default cycle (the paper's preconditioner).
	case "v":
		opts.MG.Cycle = prometheus.VCycle
	case "w":
		opts.MG.Cycle = prometheus.WCycle
	default:
		return opts, fmt.Errorf("serve: unknown cycle %q (want fmg, v or w)", cycle)
	}
	switch storage {
	case "", "auto":
		// Follow the fine operator (assembled CSR on this service).
	case "csr":
		opts.MG.Storage = prometheus.StorageCSR
	case "bsr":
		opts.MG.Storage = prometheus.StorageBSR
	case "mf":
		opts.MG.Storage = prometheus.StorageMatrixFree
	default:
		return opts, fmt.Errorf("serve: unknown storage %q (want auto, csr, bsr or mf)", storage)
	}
	switch precision {
	case "", "f64":
		// Full float64 on every level (the default).
	case "f32":
		opts.MG.CoarsePrecision = multigrid.PrecisionMixedF32
	default:
		return opts, fmt.Errorf("serve: unknown precision %q (want f64 or f32)", precision)
	}
	return opts, nil
}

// DirectSolve runs the promsolve-style pipeline for a spec without any
// service machinery: build, assemble, NewSolver, SolveLinear. It is the
// reference the serve path is verified bitwise-identical against, and the
// cold-path baseline of the servebench experiment.
func DirectSolve(spec Spec, scale, rtol float64, maxIters int, cycle, storage, precision string) ([]float64, *prometheus.Result, error) {
	g, err := BuildGeometry(spec)
	if err != nil {
		return nil, nil, err
	}
	opts, err := solverOptions(rtol, maxIters, cycle, storage, precision)
	if err != nil {
		return nil, nil, err
	}
	solver, err := prometheus.NewSolver(g.Mesh, g.Cons, opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.MG.Storage == prometheus.StorageMatrixFree {
		kred, fred, err := g.MatrixFreeLinear(solver, scale)
		if err != nil {
			return nil, nil, err
		}
		return solver.SolveReduced(kred, fred)
	}
	k, f, err := g.AssembleLinear(scale)
	if err != nil {
		return nil, nil, err
	}
	return solver.SolveLinear(k, f)
}

// SolutionHash returns the hex sha256 over the IEEE-754 bit patterns of a
// solution vector. Two vectors hash equal iff they are bitwise identical,
// so clients (and the CI gate) can verify served results against direct
// runs without shipping the full vector.
func SolutionHash(u []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range u {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:]) // hash.Hash writes never fail
	}
	return hex.EncodeToString(h.Sum(nil))
}
