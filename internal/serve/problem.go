package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"

	prometheus "prometheus"
	"prometheus/internal/core"
	"prometheus/internal/problems"
)

// Spec names one of the bundled parametric problems. It is the part of a
// solve request that determines the geometry, constraints and reference
// load — everything the mesh fingerprint (and so the hierarchy cache key)
// is derived from.
type Spec struct {
	// Problem is the problem kind: "cube" or "cantilever".
	Problem string `json:"problem"`
	// Size is the refinement parameter (same meaning as promsolve -size).
	Size int `json:"size"`
}

// Geometry is a built problem: mesh, Dirichlet set, materials and the
// unit reference load vector. It is cheap relative to hierarchy setup
// (structured generation, no assembly), so the service rebuilds it per
// request to compute the fingerprint before consulting the cache.
type Geometry struct {
	// Mesh is the fine-grid mesh.
	Mesh *prometheus.Mesh
	// Cons is the Dirichlet constraint set.
	Cons *prometheus.Constraints
	// Models are the material models indexed by mesh material id.
	Models []prometheus.Model
	// Load is the reference external force vector (full dof numbering);
	// requests scale it by their load_scale.
	Load []float64
}

// BuildGeometry constructs the named problem exactly as cmd/promsolve
// does, so served solves are comparable (bitwise) to command-line runs of
// the same spec.
func BuildGeometry(spec Spec) (*Geometry, error) {
	if spec.Size < 1 {
		return nil, fmt.Errorf("serve: size must be >= 1, got %d", spec.Size)
	}
	if spec.Size > maxSize {
		return nil, fmt.Errorf("serve: size %d exceeds the service limit %d", spec.Size, maxSize)
	}
	switch spec.Problem {
	case "cube":
		c := problems.NewCube(4*spec.Size, prometheus.LinearElastic{E: 1, Nu: 0.3}, -0.001)
		return &Geometry{Mesh: c.Mesh, Cons: c.Cons, Models: c.Models, Load: c.Load}, nil
	case "cantilever":
		c := problems.NewCantilever(6*spec.Size, spec.Size, spec.Size, 6,
			prometheus.LinearElastic{E: 1, Nu: 0.3}, -0.0001)
		return &Geometry{Mesh: c.Mesh, Cons: c.Cons, Models: c.Models, Load: c.Load}, nil
	default:
		return nil, fmt.Errorf("serve: unknown problem %q (want cube or cantilever)", spec.Problem)
	}
}

// maxSize bounds the refinement parameter a request may ask for: the
// service is memory-bounded by construction, like its queues.
const maxSize = 8

// AssembleLinear assembles the tangent stiffness at zero displacement and
// the scaled load vector — the expensive fine-grid-creation phase, run
// once per cache entry and skipped on warm hits.
func (g *Geometry) AssembleLinear(scale float64) (*prometheus.CSR, []float64, error) {
	p := prometheus.NewProblem(g.Mesh, g.Models, false)
	u := make([]float64, g.Mesh.NumDOF())
	k, _, err := p.AssembleTangent(u)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: assembly: %w", err)
	}
	f := make([]float64, len(g.Load))
	for i, v := range g.Load {
		f[i] = scale * v
	}
	return k, f, nil
}

// Fingerprint returns the deterministic content hash of the geometry
// under the given coarsening options (core.Fingerprint): the part of the
// cache key that identifies the hierarchy.
func (g *Geometry) Fingerprint(opts prometheus.CoarsenOptions) string {
	return core.Fingerprint(g.Mesh, g.Cons.Fixed, opts)
}

// cacheKey derives the full cache key: the mesh fingerprint plus the
// solve-variant parameters that change the cached setup products (cycle
// shapes the multigrid built from the hierarchy, the load scale bakes
// into the cached reduced right-hand side). Float bits, not formatted
// decimals, so distinct scales can never collide.
func cacheKey(fp string, cycle string, scale float64) string {
	return fp + "/" + cycle + "/" + strconv.FormatUint(math.Float64bits(scale), 16)
}

// solverOptions maps request-level solve parameters onto the library
// options. The same mapping is used by the cache build and by
// DirectSolve, so the two paths configure identical solvers.
func solverOptions(rtol float64, maxIters int, cycle string) (prometheus.Options, error) {
	opts := prometheus.Options{RTol: rtol, MaxIters: maxIters}
	switch cycle {
	case "", "fmg":
		// FMG is the default cycle (the paper's preconditioner).
	case "v":
		opts.MG.Cycle = prometheus.VCycle
	case "w":
		opts.MG.Cycle = prometheus.WCycle
	default:
		return opts, fmt.Errorf("serve: unknown cycle %q (want fmg, v or w)", cycle)
	}
	return opts, nil
}

// DirectSolve runs the promsolve-style pipeline for a spec without any
// service machinery: build, assemble, NewSolver, SolveLinear. It is the
// reference the serve path is verified bitwise-identical against, and the
// cold-path baseline of the servebench experiment.
func DirectSolve(spec Spec, scale, rtol float64, maxIters int, cycle string) ([]float64, *prometheus.Result, error) {
	g, err := BuildGeometry(spec)
	if err != nil {
		return nil, nil, err
	}
	opts, err := solverOptions(rtol, maxIters, cycle)
	if err != nil {
		return nil, nil, err
	}
	k, f, err := g.AssembleLinear(scale)
	if err != nil {
		return nil, nil, err
	}
	solver, err := prometheus.NewSolver(g.Mesh, g.Cons, opts)
	if err != nil {
		return nil, nil, err
	}
	return solver.SolveLinear(k, f)
}

// SolutionHash returns the hex sha256 over the IEEE-754 bit patterns of a
// solution vector. Two vectors hash equal iff they are bitwise identical,
// so clients (and the CI gate) can verify served results against direct
// runs without shipping the full vector.
func SolutionHash(u []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range u {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:]) // hash.Hash writes never fail
	}
	return hex.EncodeToString(h.Sum(nil))
}
