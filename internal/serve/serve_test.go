package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"prometheus/internal/obs"
)

// newTestServer spins a service + httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// postSolve sends a solve request and decodes the (non-streamed) response.
func postSolve(t *testing.T, ts *httptest.Server, req SolveRequest) SolveResponse {
	t.Helper()
	resp, status := postSolveStatus(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("solve returned status %d: %+v", status, resp)
	}
	return resp
}

func postSolveStatus(t *testing.T, ts *httptest.Server, req SolveRequest) (SolveResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer hr.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", hr.StatusCode, err)
	}
	return out, hr.StatusCode
}

// TestServeBitwiseIdentical is the end-to-end oracle: a served solve must
// be bitwise identical — solution vector, residual history, iteration
// count — to a direct solver run of the same spec.
func TestServeBitwiseIdentical(t *testing.T) {
	spec := Spec{Problem: "cube", Size: 1}
	uDirect, resDirect, err := DirectSolve(spec, 1, 1e-4, 1000, "fmg", "", "")
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}

	_, ts := newTestServer(t, Config{})
	got := postSolve(t, ts, SolveRequest{Spec: spec, ReturnSolution: true})

	if got.Iterations != resDirect.Iterations {
		t.Fatalf("served %d iterations, direct %d", got.Iterations, resDirect.Iterations)
	}
	if !got.Converged {
		t.Fatalf("served solve did not converge: %+v", got)
	}
	if len(got.Residuals) != len(resDirect.Residuals) {
		t.Fatalf("served %d residuals, direct %d", len(got.Residuals), len(resDirect.Residuals))
	}
	for i := range got.Residuals {
		if got.Residuals[i] != resDirect.Residuals[i] {
			t.Fatalf("residual %d differs: served %v direct %v", i, got.Residuals[i], resDirect.Residuals[i])
		}
	}
	if len(got.Solution) != len(uDirect) {
		t.Fatalf("served solution length %d, direct %d", len(got.Solution), len(uDirect))
	}
	for i := range uDirect {
		if got.Solution[i] != uDirect[i] {
			t.Fatalf("solution dof %d differs: served %v direct %v", i, got.Solution[i], uDirect[i])
		}
	}
	if want := SolutionHash(uDirect); got.SolutionHash != want {
		t.Fatalf("solution hash %s, direct %s", got.SolutionHash, want)
	}
}

// TestServeMatrixFree drives the "mf" storage mode through the full HTTP
// path: the served solve must be bitwise identical to a direct
// matrix-free run, must converge, and must cache under a key distinct
// from the assembled-storage entry for the same spec (two entries after
// the two requests, not one shared one).
func TestServeMatrixFree(t *testing.T) {
	spec := Spec{Problem: "cube", Size: 1}
	uDirect, resDirect, err := DirectSolve(spec, 1, 1e-4, 1000, "fmg", "mf", "")
	if err != nil {
		t.Fatalf("direct matrix-free solve: %v", err)
	}

	_, ts := newTestServer(t, Config{})
	assembled := postSolve(t, ts, SolveRequest{Spec: spec})
	got := postSolve(t, ts, SolveRequest{Spec: spec, Storage: "mf"})

	if !got.Converged {
		t.Fatalf("matrix-free served solve did not converge: %+v", got)
	}
	if got.Iterations != resDirect.Iterations {
		t.Fatalf("served %d iterations, direct %d", got.Iterations, resDirect.Iterations)
	}
	if want := SolutionHash(uDirect); got.SolutionHash != want {
		t.Fatalf("solution hash %s, direct %s", got.SolutionHash, want)
	}
	if got.Key == assembled.Key {
		t.Fatalf("matrix-free request shared cache key %s with the assembled one", got.Key)
	}
	if got.CacheHit {
		t.Fatal("matrix-free request hit the assembled entry")
	}
	var cb cacheBody
	getJSON(t, ts.URL+"/v1/cache", &cb)
	if len(cb.Entries) != 2 {
		t.Fatalf("cache holds %d entries after csr+mf requests, want 2", len(cb.Entries))
	}

	// The solutions agree physically even though the iteration paths (and
	// so the exact bits) differ between assembled and matrix-free applies.
	mf := postSolve(t, ts, SolveRequest{Spec: spec, Storage: "mf", ReturnSolution: true})
	csr := postSolve(t, ts, SolveRequest{Spec: spec, ReturnSolution: true})
	if !mf.CacheHit || !csr.CacheHit {
		t.Fatal("repeat requests missed their cache entries")
	}
	var num, den float64
	for i := range mf.Solution {
		d := mf.Solution[i] - csr.Solution[i]
		num += d * d
		den += csr.Solution[i] * csr.Solution[i]
	}
	if num > 1e-2*1e-2*den {
		t.Fatalf("matrix-free and assembled solutions diverge: rel %g", num/den)
	}
}

// TestServeCacheSkipsSetup asserts the performance heart of the service:
// the second request for a geometry runs zero coarsening and zero
// multigrid setup — the obs phase counters for both must not move.
func TestServeCacheSkipsSetup(t *testing.T) {
	obs.EnableWith(obs.Config{})
	defer obs.Disable()

	_, ts := newTestServer(t, Config{})
	spec := Spec{Problem: "cantilever", Size: 1}

	first := postSolve(t, ts, SolveRequest{Spec: spec})
	if first.CacheHit {
		t.Fatalf("first request reported a cache hit")
	}
	if first.SetupNs <= 0 {
		t.Fatalf("first request reported setup_ns = %d, want > 0", first.SetupNs)
	}

	count := func(p *obs.Profile, name string) int64 {
		e, ok := p.Event(name)
		if !ok {
			return 0
		}
		return e.Totals().Count
	}
	before := obs.Snapshot()
	if count(before, "core.coarsen") == 0 {
		t.Fatalf("oracle broken: no core.coarsen events recorded by the cold request")
	}

	second := postSolve(t, ts, SolveRequest{Spec: spec})
	if !second.CacheHit {
		t.Fatalf("second request missed the cache: %+v", second)
	}
	if second.SetupNs != 0 {
		t.Fatalf("warm request reported setup_ns = %d, want 0", second.SetupNs)
	}
	after := obs.Snapshot()
	for _, ev := range []string{"core.coarsen", "mg.setup", "mg.setup.galerkin"} {
		if b, a := count(before, ev), count(after, ev); a != b {
			t.Fatalf("warm request ran setup phase %s: count %d -> %d", ev, b, a)
		}
	}
	if first.SolutionHash != second.SolutionHash {
		t.Fatalf("warm solution hash %s differs from cold %s", second.SolutionHash, first.SolutionHash)
	}
}

// TestServeStreaming checks the ndjson progress protocol: one line per
// residual, then the final response line, all well-formed.
func TestServeStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, err := json.Marshal(SolveRequest{Spec: Spec{Problem: "cube", Size: 1}, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(hr.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream had %d lines, want progress + final", len(lines))
	}
	var final SolveResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("final line not a SolveResponse: %v", err)
	}
	if !final.Converged || final.Error != "" {
		t.Fatalf("streamed solve failed: %+v", final)
	}
	progress := lines[:len(lines)-1]
	// One progress line per recorded residual (iteration 0 included).
	if len(progress) != len(final.Residuals) {
		t.Fatalf("%d progress lines for %d residuals", len(progress), len(final.Residuals))
	}
	for i, ln := range progress {
		var p Progress
		if err := json.Unmarshal([]byte(ln), &p); err != nil {
			t.Fatalf("progress line %d: %v", i, err)
		}
		if p.Iter != i {
			t.Fatalf("progress line %d has iter %d", i, p.Iter)
		}
		if p.Residual != final.Residuals[i] {
			t.Fatalf("streamed residual %d = %v, final history has %v", i, p.Residual, final.Residuals[i])
		}
	}
}

// TestServeConcurrentSessions races concurrent sessions against one
// cached hierarchy (run under -race in CI): every request must succeed
// and produce the identical solution hash.
func TestServeConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	spec := Spec{Problem: "cube", Size: 1}
	// Warm the cache once so the racing requests share one entry.
	warm := postSolve(t, ts, SolveRequest{Spec: spec})

	const workers = 6
	const perWorker = 2
	hashes := make([][]string, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body, err := json.Marshal(SolveRequest{Spec: spec, Wait: true})
				if err != nil {
					errs <- err
					return
				}
				hr, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var out SolveResponse
				err = json.NewDecoder(hr.Body).Decode(&out)
				if cerr := hr.Body.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					errs <- err
					return
				}
				if hr.StatusCode != http.StatusOK || !out.Converged {
					errs <- fmt.Errorf("worker %d request %d: status %d converged %v", w, i, hr.StatusCode, out.Converged)
					return
				}
				hashes[w] = append(hashes[w], out.SolutionHash)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w, hs := range hashes {
		for i, h := range hs {
			if h != warm.SolutionHash {
				t.Fatalf("worker %d request %d hash %s, want %s", w, i, h, warm.SolutionHash)
			}
		}
	}
}

// TestServeHealthAndDebug smoke-tests the observability surface: healthz,
// session/cache listings and the /debug endpoints all answer on the one
// mux.
func TestServeHealthAndDebug(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_ = postSolve(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}})

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(hr.Body).Decode(&h)
	if cerr := hr.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status %d %+v", hr.StatusCode, h)
	}
	if h.Requests < 1 || h.TotalSessions < 1 || h.CacheEntries < 1 || h.CacheMisses < 1 {
		t.Fatalf("healthz counters not advancing: %+v", h)
	}
	if h.ActiveSessions != 0 {
		t.Fatalf("healthz reports %d active sessions after completion", h.ActiveSessions)
	}

	var sb sessionsBody
	getJSON(t, ts.URL+"/v1/sessions", &sb)
	if sb.Total < 1 || len(sb.Active) != 0 {
		t.Fatalf("sessions listing: %+v", sb)
	}

	var cb cacheBody
	getJSON(t, ts.URL+"/v1/cache", &cb)
	if len(cb.Entries) != 1 || cb.Misses != 1 {
		t.Fatalf("cache listing: %+v", cb)
	}
	if cb.Entries[0].Fingerprint == "" || cb.Entries[0].Levels < 1 {
		t.Fatalf("cache entry missing fields: %+v", cb.Entries[0])
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline"} {
		dr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if cerr := dr.Body.Close(); cerr != nil {
			t.Fatalf("close %s body: %v", path, cerr)
		}
		if dr.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, dr.StatusCode)
		}
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	hr, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(hr.Body).Decode(v)
	if cerr := hr.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestServeRequestValidation covers the 4xx paths.
func TestServeRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if _, status := postSolveStatus(t, ts, SolveRequest{Spec: Spec{Problem: "torus", Size: 1}}); status != http.StatusBadRequest {
		t.Fatalf("unknown problem: status %d, want 400", status)
	}
	if _, status := postSolveStatus(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 99}}); status != http.StatusBadRequest {
		t.Fatalf("oversized problem: status %d, want 400", status)
	}
	if _, status := postSolveStatus(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}, Cycle: "x"}); status != http.StatusBadRequest {
		t.Fatalf("unknown cycle: status %d, want 400", status)
	}
	if _, status := postSolveStatus(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}, Storage: "coo"}); status != http.StatusBadRequest {
		t.Fatalf("unknown storage: status %d, want 400", status)
	}
	if _, status := postSolveStatus(t, ts, SolveRequest{Spec: Spec{Problem: "cube", Size: 1}, Precision: "f16"}); status != http.StatusBadRequest {
		t.Fatalf("unknown precision: status %d, want 400", status)
	}

	hr, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	if cerr := hr.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d, want 405", hr.StatusCode)
	}
}
