package serve

import (
	"context"
	"errors"
	"testing"

	prometheus "prometheus"
)

func TestAdmissionSemaphore(t *testing.T) {
	a := newAdmission(2)
	ctx := context.Background()
	if err := a.Acquire(ctx, false); err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if err := a.Acquire(ctx, false); err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if err := a.Acquire(ctx, false); !errors.Is(err, ErrBusy) {
		t.Fatalf("acquire 3 = %v, want ErrBusy", err)
	}
	a.Release()
	if err := a.Acquire(ctx, false); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := a.Acquire(cctx, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting acquire on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestAdmissionReleaseWithoutAcquirePanics(t *testing.T) {
	a := newAdmission(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unpaired Release did not panic")
		}
	}()
	a.Release()
}

func TestAdmissionClampsToCap(t *testing.T) {
	a := newAdmission(admissionCap + 100)
	ctx := context.Background()
	for i := 0; i < admissionCap; i++ {
		if err := a.Acquire(ctx, false); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := a.Acquire(ctx, false); !errors.Is(err, ErrBusy) {
		t.Fatalf("acquire past cap = %v, want ErrBusy", err)
	}
}

func TestSessionManager(t *testing.T) {
	m := newSessionManager()
	s1 := m.Checkout("cube", 1, nil)
	s2 := m.Checkout("cantilever", 2, nil)
	s1.setKey("k1")
	live, total, _ := m.snapshot()
	if len(live) != 2 || total != 2 {
		t.Fatalf("live %d total %d, want 2/2", len(live), total)
	}
	if live[0].ID != s1.id || live[1].ID != s2.id {
		t.Fatalf("snapshot not id-ordered: %+v", live)
	}
	if live[0].Key != "k1" {
		t.Fatalf("session key not recorded: %+v", live[0])
	}
	m.Checkin(s1)
	m.Checkin(s2)
	live, total, longest := m.snapshot()
	if len(live) != 0 || total != 2 || longest <= 0 {
		t.Fatalf("after checkin: live %d total %d longest %v", len(live), total, longest)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c := newHierCache(2)
	opts := prometheus.Options{}
	specs := []Spec{
		{Problem: "cube", Size: 1},
		{Problem: "cantilever", Size: 1},
		{Problem: "cube", Size: 2},
	}
	keys := make([]string, len(specs))
	for i, sp := range specs {
		g, err := BuildGeometry(sp)
		if err != nil {
			t.Fatal(err)
		}
		fp := g.Fingerprint(opts.Coarsen)
		keys[i] = cacheKey(fp, "fmg", opts, 1)
		e, hit, err := c.Acquire(keys[i], fp, g, 1, opts)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if hit {
			t.Fatalf("acquire %d reported hit on first use", i)
		}
		c.Release(e)
	}
	infos, hits, misses, _ := c.snapshot()
	if len(infos) != 2 {
		t.Fatalf("cache holds %d entries, want 2 after eviction", len(infos))
	}
	if hits != 0 || misses != 3 {
		t.Fatalf("hits %d misses %d, want 0/3", hits, misses)
	}
	// The oldest entry (specs[0]) must be the evicted one.
	for _, info := range infos {
		if info.Key == keys[0] {
			t.Fatalf("LRU entry %s survived eviction", keys[0])
		}
	}
	// Re-acquiring the survivor is a hit.
	g, err := BuildGeometry(specs[1])
	if err != nil {
		t.Fatal(err)
	}
	fp := g.Fingerprint(opts.Coarsen)
	e, hit, err := c.Acquire(keys[1], fp, g, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("survivor entry re-acquire missed")
	}
	c.Release(e)
}

func TestCachePinnedEntryNotEvicted(t *testing.T) {
	c := newHierCache(1)
	opts := prometheus.Options{}
	g1, err := BuildGeometry(Spec{Problem: "cube", Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp1 := g1.Fingerprint(opts.Coarsen)
	e1, _, err := c.Acquire(cacheKey(fp1, "fmg", opts, 1), fp1, g1, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// e1 still referenced: inserting a second entry must not evict it.
	g2, err := BuildGeometry(Spec{Problem: "cantilever", Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp2 := g2.Fingerprint(opts.Coarsen)
	e2, _, err := c.Acquire(cacheKey(fp2, "fmg", opts, 1), fp2, g2, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	infos, _, _, _ := c.snapshot()
	if len(infos) != 2 {
		t.Fatalf("pinned entry evicted: %d entries", len(infos))
	}
	c.Release(e1)
	c.Release(e2)
	c.sweep()
	infos, _, _, _ = c.snapshot()
	if len(infos) != 1 {
		t.Fatalf("sweep kept %d entries, want 1", len(infos))
	}
}

// TestCacheKeyDistinguishesVariants is the cache-correctness regression
// test for the key derivation: every request parameter that changes the
// cached setup products — fingerprint, cycle, load scale, storage mode,
// coarse precision — must land in the key. A shared key across storage
// modes would hand one request a cached matrix-free operator when it
// asked for an assembled one (or vice versa); a shared key across
// precisions would serve float32 coarse grids to a full-precision solve.
func TestCacheKeyDistinguishesVariants(t *testing.T) {
	mustOpts := func(storage, precision string) prometheus.Options {
		t.Helper()
		opts, err := solverOptions(1e-4, 100, "fmg", storage, precision)
		if err != nil {
			t.Fatal(err)
		}
		return opts
	}
	def := mustOpts("", "")
	keys := map[string]bool{
		cacheKey("fp", "fmg", def, 1):                   true,
		cacheKey("fp", "v", def, 1):                     true,
		cacheKey("fp", "fmg", def, 2):                   true,
		cacheKey("fp2", "fmg", def, 1):                  true,
		cacheKey("fp", "fmg", mustOpts("csr", ""), 1):   true,
		cacheKey("fp", "fmg", mustOpts("bsr", ""), 1):   true,
		cacheKey("fp", "fmg", mustOpts("mf", ""), 1):    true,
		cacheKey("fp", "fmg", mustOpts("", "f32"), 1):   true,
		cacheKey("fp", "fmg", mustOpts("mf", "f32"), 1): true,
	}
	if len(keys) != 9 {
		t.Fatalf("cache key variants collide: %v", keys)
	}
	// Equivalent spellings of the defaults must share a key: the label is
	// derived from the resolved options, not the raw request strings.
	if cacheKey("fp", "fmg", mustOpts("auto", "f64"), 1) != cacheKey("fp", "fmg", def, 1) {
		t.Fatal("canonical default spellings produced distinct cache keys")
	}
}

func TestMGLeasePool(t *testing.T) {
	c := newHierCache(1)
	opts := prometheus.Options{}
	g, err := BuildGeometry(Spec{Problem: "cube", Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp := g.Fingerprint(opts.Coarsen)
	e, _, err := c.Acquire(cacheKey(fp, "fmg", opts, 1), fp, g, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(e)

	mg1, err := e.Checkout()
	if err != nil {
		t.Fatal(err)
	}
	if e.builds.Load() != 1 {
		t.Fatalf("builds = %d after pool checkout, want 1 (the build-time instance)", e.builds.Load())
	}
	// Pool empty now: a second checkout constructs a fresh instance.
	mg2, err := e.Checkout()
	if err != nil {
		t.Fatal(err)
	}
	if mg1 == mg2 {
		t.Fatal("concurrent checkouts returned the same multigrid instance")
	}
	if e.builds.Load() != 2 {
		t.Fatalf("builds = %d after empty-pool checkout, want 2", e.builds.Load())
	}
	e.Checkin(mg1)
	e.Checkin(mg2)
	// Both instances idle: the next checkout reuses, no new build.
	mg3, err := e.Checkout()
	if err != nil {
		t.Fatal(err)
	}
	e.Checkin(mg3)
	if e.builds.Load() != 2 {
		t.Fatalf("builds = %d after warm checkout, want 2", e.builds.Load())
	}
}

func TestSolverOptionsValidation(t *testing.T) {
	if _, err := solverOptions(1e-4, 100, "spiral", "", ""); err == nil {
		t.Fatal("unknown cycle accepted")
	}
	if _, err := solverOptions(1e-4, 100, "fmg", "ebe", ""); err == nil {
		t.Fatal("unknown storage accepted")
	}
	if _, err := solverOptions(1e-4, 100, "fmg", "", "f16"); err == nil {
		t.Fatal("unknown precision accepted")
	}
	for _, cyc := range []string{"", "fmg", "v", "w"} {
		if _, err := solverOptions(1e-4, 100, cyc, "", ""); err != nil {
			t.Fatalf("cycle %q rejected: %v", cyc, err)
		}
	}
	for _, st := range []string{"", "auto", "csr", "bsr", "mf"} {
		opts, err := solverOptions(1e-4, 100, "fmg", st, "")
		if err != nil {
			t.Fatalf("storage %q rejected: %v", st, err)
		}
		if st == "mf" && opts.MG.Storage != prometheus.StorageMatrixFree {
			t.Fatalf("storage mf mapped to %v", opts.MG.Storage)
		}
	}
	for _, pr := range []string{"", "f64", "f32"} {
		if _, err := solverOptions(1e-4, 100, "fmg", "", pr); err != nil {
			t.Fatalf("precision %q rejected: %v", pr, err)
		}
	}
}

func TestGeometryFingerprintStable(t *testing.T) {
	spec := Spec{Problem: "cube", Size: 1}
	g1, err := BuildGeometry(spec)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGeometry(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := prometheus.Options{}
	if g1.Fingerprint(opts.Coarsen) != g2.Fingerprint(opts.Coarsen) {
		t.Fatal("two builds of one spec fingerprint differently")
	}
	g3, err := BuildGeometry(Spec{Problem: "cube", Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint(opts.Coarsen) == g3.Fingerprint(opts.Coarsen) {
		t.Fatal("different sizes share a fingerprint")
	}
}
