package serve

import (
	"prometheus/internal/obs"
)

// Service metrics, registered once in the shared obs registry and
// exposed in Prometheus text format by /metrics (obs.WritePrometheus).
// Names are tree-unique string constants (obs-discipline); the labeled
// families carry bounded label sets only — routes are the fixed route
// table, statuses are HTTP codes, storage modes the four storage kinds —
// so series cardinality is bounded by construction.
var (
	// mHTTPRequests counts requests by route and status code.
	mHTTPRequests = obs.NewCounterVec("serve.http.requests", "route", "status")
	// mHTTPLatency distributes request wall time (ns) by route/status.
	mHTTPLatency = obs.NewHistogramVec("serve.http.request_ns", "route", "status")
	// mShed counts requests turned away with 503 by admission control.
	mShed = obs.NewCounter("serve.shed")
	// gAdmWaiting gauges solve requests currently blocked waiting for an
	// admission slot (the wait=true queue depth).
	gAdmWaiting = obs.NewGauge("serve.admission.waiting")
	// Cache outcome counters, fed by the hierarchy cache at the same
	// sites that update its JSON totals.
	mCacheHits   = obs.NewCounter("serve.cache.hits")
	mCacheMisses = obs.NewCounter("serve.cache.misses")
	mCacheEvict  = obs.NewCounter("serve.cache.evictions")
	// mSolves counts completed solves by resolved storage mode.
	mSolves = obs.NewCounterVec("serve.solve.total", "storage")
)
