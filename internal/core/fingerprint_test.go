package core

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"prometheus/internal/mesh"
)

// fpFixture builds a small deterministic mesh + constraint set for the
// fingerprint tests.
func fpFixture() (*mesh.Mesh, map[int]float64, Options) {
	m := mesh.StructuredHex(3, 3, 3, 1, 1, 1, nil)
	fixed := map[int]float64{0: 0, 1: 0, 2: 0, 5: 0.25, 9: -1.5}
	opts := Options{Seed: 42, MaxLevels: 3}
	return m, fixed, opts
}

func TestFingerprintDeterministicInProcess(t *testing.T) {
	m, fixed, opts := fpFixture()
	a := Fingerprint(m, fixed, opts)
	b := Fingerprint(m, fixed, opts)
	if a != b {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", len(a))
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	m, fixed, opts := fpFixture()
	base := Fingerprint(m, fixed, opts)

	t.Run("coordinate", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		m2.Coords[7].X += 1e-9
		if Fingerprint(m2, f2, o2) == base {
			t.Fatal("coordinate perturbation did not change fingerprint")
		}
	})
	t.Run("connectivity", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		m2.Elems[0][0], m2.Elems[0][1] = m2.Elems[0][1], m2.Elems[0][0]
		if Fingerprint(m2, f2, o2) == base {
			t.Fatal("connectivity permutation did not change fingerprint")
		}
	})
	t.Run("material", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		m2.Mat[3] = 7
		if Fingerprint(m2, f2, o2) == base {
			t.Fatal("material change did not change fingerprint")
		}
	})
	t.Run("constraint-value", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		f2[5] = 0.5
		if Fingerprint(m2, f2, o2) == base {
			t.Fatal("constraint value change did not change fingerprint")
		}
	})
	t.Run("constraint-set", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		f2[11] = 0
		if Fingerprint(m2, f2, o2) == base {
			t.Fatal("extra constraint did not change fingerprint")
		}
	})
	t.Run("options", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		o2.Seed = 43
		if Fingerprint(m2, f2, o2) == base {
			t.Fatal("seed change did not change fingerprint")
		}
	})
	t.Run("signed-zero", func(t *testing.T) {
		m2, f2, o2 := fpFixture()
		f2[5] = 0.0
		m3, f3, o3 := fpFixture()
		f3[5] = negZero()
		if Fingerprint(m2, f2, o2) == Fingerprint(m3, f3, o3) {
			t.Fatal("-0.0 vs +0.0 constraint should change the bit-exact fingerprint")
		}
	})
}

// negZero returns -0.0 without tripping the float-equality style of
// constant folding in tests.
func negZero() float64 {
	z := 0.0
	return -z
}

// TestFingerprintCrossProcess pins the hash across two distinct process
// runs: map iteration order and ASLR change between processes, the
// fingerprint must not. The test re-executes the test binary as a helper
// that prints the fixture fingerprint, twice, and compares both outputs
// against the in-process value.
func TestFingerprintCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	m, fixed, opts := fpFixture()
	want := Fingerprint(m, fixed, opts)
	for i := 0; i < 2; i++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestFingerprintHelperProcess", "-test.v")
		cmd.Env = append(os.Environ(), "PROMETHEUS_FP_HELPER=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("helper process run %d: %v\n%s", i, err, out)
		}
		got := ""
		for _, line := range strings.Split(string(out), "\n") {
			if h, ok := strings.CutPrefix(strings.TrimSpace(line), "FP="); ok {
				got = h
			}
		}
		if got == "" {
			t.Fatalf("helper process run %d printed no FP= line:\n%s", i, out)
		}
		if got != want {
			t.Fatalf("cross-process fingerprint mismatch on run %d:\n  in-process: %s\n  subprocess: %s", i, want, got)
		}
	}
}

// TestFingerprintHelperProcess is the subprocess side of the
// cross-process test; it only does work when re-exec'd with the env var.
func TestFingerprintHelperProcess(t *testing.T) {
	if os.Getenv("PROMETHEUS_FP_HELPER") != "1" {
		t.Skip("helper process only")
	}
	m, fixed, opts := fpFixture()
	fmt.Printf("FP=%s\n", Fingerprint(m, fixed, opts))
}
