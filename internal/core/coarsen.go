// Package core is the reproduction of Prometheus proper — the paper's
// contribution (sections 3 and 4): automatic construction of a hierarchy of
// coarse grids and restriction operators from an unstructured fine mesh.
//
// Per level the pipeline is:
//
//  1. classify vertices topologically from identified boundary faces
//     (sections 4.3-4.5), or inherit/reclassify per the section 4.6 policy;
//  2. build the modified MIS graph: delete edges between exterior vertices
//     that share no face, make corners immortal (section 4.6);
//  3. run the (serial or parallel) maximal independent set algorithm with
//     rank ordering and the chosen within-rank orderings (sections 4.1,
//     4.2, 4.7);
//  4. remesh the selected vertices with Delaunay tetrahedra inside a
//     bounding box, dropping box-attached and (optionally) "far" tetrahedra
//     (section 4.8);
//  5. build the restriction operator from linear tetrahedral shape
//     functions evaluated at the fine vertices, with the lost-vertex
//     fallback (section 4.8);
//  6. recurse on the coarse tetrahedral mesh.
//
// Coarse grid operators are formed algebraically by the multigrid package
// (A_coarse = R·A_fine·Rᵀ, section 3).
package core

import (
	"fmt"

	"prometheus/internal/check"
	"prometheus/internal/delaunay"
	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/mesh"
	"prometheus/internal/obs"
	"prometheus/internal/par"
	"prometheus/internal/sortutil"
	"prometheus/internal/sparse"
	"prometheus/internal/topo"
)

// Ordering selects the within-rank vertex traversal order (section 4.7).
type Ordering int

const (
	// Natural visits vertices in mesh order (dense MISs; the paper's
	// suggestion for exterior vertices).
	Natural Ordering = iota
	// Random visits vertices in a deterministic pseudo-random order
	// (sparse MISs; the paper's suggestion for interior vertices).
	Random
)

// Options controls the coarsening.
type Options struct {
	// TOL is the face identification tolerance (cosine); default 0.866.
	TOL float64
	// OrderExterior/OrderInterior are the within-rank orderings.
	OrderExterior Ordering
	OrderInterior Ordering
	// Seed drives the random orderings.
	Seed uint64
	// ReclassifyFrom is the first grid index whose classification is
	// recomputed from its own mesh rather than inherited; the paper
	// reclassifies "the third and subsequent grids", i.e. index 2.
	ReclassifyFrom int
	// MinCoarse stops coarsening once a grid has at most this many
	// vertices (they are then solved directly). Default 64.
	MinCoarse int
	// MaxLevels bounds the total number of grids. Default 16.
	MaxLevels int
	// PruneFar enables the section 4.8 heuristic that drops tetrahedra
	// connecting coarse vertices that were far apart on the fine grid and
	// contain no fine vertex uniquely.
	PruneFar bool
	// GraphDistMax is the fine-graph distance defining "near" for PruneFar
	// (default 3).
	GraphDistMax int
	// Ranks > 1 runs the parallel MIS of section 4.2 on a simulated
	// communicator with an RCB vertex partition.
	Ranks int
	// Eps is the interpolation tolerance: fine vertices accept containing
	// tetrahedra with barycentric weights above -Eps (section 4.8's
	// "interpolates that are all above -epsilon").
	Eps float64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.TOL == 0 {
		o.TOL = topo.DefaultTOL
	}
	if o.ReclassifyFrom == 0 {
		o.ReclassifyFrom = 2
	}
	if o.MinCoarse == 0 {
		o.MinCoarse = 64
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 16
	}
	if o.GraphDistMax == 0 {
		o.GraphDistMax = 3
	}
	if o.Ranks == 0 {
		o.Ranks = 1
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	return o
}

// Grid is one level of the hierarchy. Grid 0 is the input mesh; every
// coarser grid carries the restriction from its parent.
type Grid struct {
	Mesh  *mesh.Mesh // the grid's mesh (input mesh or coarse tet mesh)
	Class *topo.Classification
	// Verts maps this grid's vertices to their parent-grid vertex ids
	// (nil on grid 0).
	Verts []int
	// R restricts parent-grid dof vectors to this grid:
	// (3·nVerts)×(3·nParentVerts); nil on grid 0. Rows are the linear
	// tetrahedral shape functions of section 4.8, replicated per
	// displacement component.
	R *sparse.CSR
	// Lost counts the fine vertices interpolated via the nearest-element
	// fallback on this grid's construction.
	Lost int
}

// Hierarchy is the grid stack, finest first.
type Hierarchy struct {
	Grids []*Grid
	Opts  Options
}

// NumLevels returns the number of grids.
func (h *Hierarchy) NumLevels() int { return len(h.Grids) }

// Coarsen builds the full hierarchy from the input mesh.
func Coarsen(m *mesh.Mesh, opts Options) (*Hierarchy, error) {
	sp := obs.Start(evCoarsen)
	h, err := coarsen(m, opts)
	sp.End()
	return h, err
}

func coarsen(m *mesh.Mesh, opts Options) (*Hierarchy, error) {
	opts = opts.withDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{Opts: opts}
	spc := obs.Start(evClassify)
	cls := topo.Reclassify(m, opts.TOL)
	spc.End()
	h.Grids = append(h.Grids, &Grid{Mesh: m, Class: cls})

	for len(h.Grids) < opts.MaxLevels {
		cur := h.Grids[len(h.Grids)-1]
		if cur.Mesh.NumVerts() <= opts.MinCoarse {
			break
		}
		spl := obs.Start(evLevel)
		next, err := coarsenOnce(cur, len(h.Grids), opts)
		spl.End()
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", len(h.Grids), err)
		}
		if next == nil {
			break // coarsening stalled; solve current level directly
		}
		h.Grids = append(h.Grids, next)
	}
	return h, nil
}

// coarsenOnce builds grid "level" from its parent. Returns nil (no error)
// when coarsening can no longer make useful progress.
func coarsenOnce(parent *Grid, level int, opts Options) (*Grid, error) {
	m := parent.Mesh
	cls := parent.Class
	spm := obs.Start(evMIS)
	g := m.NodeGraph()
	mg := cls.ModifiedGraph(g)

	order := buildOrder(cls, opts)
	var mis []int
	if opts.Ranks > 1 {
		owner := graph.RCB(m.Coords, opts.Ranks)
		mis = par.ParallelMIS(par.NewComm(opts.Ranks), mg, owner, order, cls.Rank, cls.Immortal())
	} else {
		mis = graph.MIS(mg, order, cls.Rank, cls.Immortal())
	}
	spm.End()
	if len(mis) < 5 || len(mis) >= m.NumVerts() {
		return nil, nil // too small to remesh, or no reduction
	}
	if check.Enabled {
		// The selected set must be a valid independent set of the modified
		// MIS graph (independence on mg, not on the raw node graph g, whose
		// exterior-exterior edges section 4.6 deletes).
		check.IndependentSet(mis, mg.N, mg.Neighbors, cls.Immortal(), "core.coarsenOnce")
	}

	// Coarse vertex coordinates. coarseOf and the nearPairs set below are
	// lookup-only maps — every traversal that builds output (restriction
	// rows, coarse elements) runs over slices or sortutil.Keys, so the
	// construction is deterministic; the map-order lint rule enforces this.
	coords := make([]geom.Vec3, len(mis))
	coarseOf := make(map[int]int, len(mis)) // parent vertex -> coarse index
	for i, v := range mis {
		coords[i] = m.Coords[v]
		coarseOf[v] = i
	}

	spr := obs.Start(evRemesh)
	tri, err := delaunay.New(coords)
	spr.End()
	if err != nil {
		// Degenerate coarse point set (deep, tiny grids): stop coarsening
		// here and let the previous level be solved directly.
		return nil, nil
	}
	tets := tri.Tets()
	if len(tets) == 0 {
		return nil, nil
	}

	// Optional far-tet pruning (section 4.8).
	kept := make([]bool, len(tets))
	for i := range kept {
		kept[i] = true
	}
	if opts.PruneFar {
		near := nearPairs(g, mis, opts.GraphDistMax)
		for i, tet := range tets {
			ok := true
			for a := 0; a < 4 && ok; a++ {
				for b := a + 1; b < 4; b++ {
					pa, pb := mis[tet[a]], mis[tet[b]]
					if !near[pairKey{pa, pb}] && !near[pairKey{pb, pa}] {
						ok = false
						break
					}
				}
			}
			kept[i] = ok
		}
		// Tets containing a fine vertex uniquely are resurrected below.
	}

	// Restriction: for every parent vertex, interpolation weights on the
	// coarse vertices. Built node-granularly (one scalar weight per node
	// pair) and expanded to dof form with w·I₃ blocks at the end — the
	// weights never couple displacement components (section 3).
	nf := m.NumVerts()
	nc := len(mis)
	spb := obs.Start(evRestrict)
	defer spb.End()
	rb := sparse.NewBuilder(nc, nf)
	lost := 0
	keptSet := make(map[[4]int]bool, len(tets))
	// Incidence of coarse vertices on kept tets, for the graph-local
	// "find a nearby element" fallback of section 4.8.
	incident := make([][]int, nc)
	for i, tet := range tets {
		if !kept[i] {
			continue
		}
		keptSet[tet] = true
		for _, cv := range tet {
			incident[cv] = append(incident[cv], i)
		}
	}
	// nearbyElement finds the least-violating kept tetrahedron among those
	// incident to the coarse vertices closest (in the parent graph) to v.
	nearbyElement := func(v int) ([4]int, [4]float64, bool) {
		// BFS until the first layer containing MIS vertices, plus one.
		dist := map[int]int{v: 0}
		queue := []int{v}
		var found []int
		foundDepth := -1
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if foundDepth >= 0 && dist[u] > foundDepth+1 {
				break
			}
			if j, ok := coarseOf[u]; ok {
				found = append(found, j)
				if foundDepth < 0 {
					foundDepth = dist[u]
				}
			}
			if foundDepth >= 0 && dist[u] >= foundDepth+1 {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if _, seen := dist[w]; !seen {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		best := -1
		bestMin := -1e300
		var bestW [4]float64
		for _, j := range found {
			for _, ti := range incident[j] {
				tet := tets[ti]
				bw, okB := geom.Barycentric(coords[tet[0]], coords[tet[1]], coords[tet[2]], coords[tet[3]], m.Coords[v])
				if !okB {
					continue
				}
				minw := bw[0]
				for _, x := range bw[1:] {
					if x < minw {
						minw = x
					}
				}
				if minw > bestMin {
					bestMin, best, bestW = minw, ti, bw
				}
			}
		}
		if best < 0 {
			return [4]int{}, [4]float64{}, false
		}
		return tets[best], bestW, true
	}
	for v := 0; v < nf; v++ {
		if j, isCoarse := coarseOf[v]; isCoarse {
			rb.Add(j, v, 1)
			continue
		}
		verts, w, ok := tri.Interpolate(m.Coords[v])
		if ok && !keptSet[verts] {
			ok = false // pruned or box-adjacent tet: treat as lost
		}
		if ok {
			for _, wi := range w {
				if wi < -opts.Eps {
					ok = false
					break
				}
			}
		}
		if !ok {
			verts, w, ok = nearbyElement(v)
			if !ok {
				verts, w, ok = tri.Nearest(m.Coords[v])
				if !ok {
					// Every candidate tetrahedron is degenerate: the coarse
					// vertex set has collapsed (e.g. a thin body whose MIS
					// lost one face, Figure 4). Stop coarsening here.
					return nil, nil
				}
			}
			lost++
		}
		for k := 0; k < 4; k++ {
			if w[k] == 0 {
				continue
			}
			rb.Add(verts[k], v, w[k])
		}
	}

	// Coarse tetrahedral mesh (kept tets only; if pruning emptied the mesh,
	// fall back to all tets).
	var elems [][]int
	for i, tet := range tets {
		if kept[i] {
			elems = append(elems, []int{tet[0], tet[1], tet[2], tet[3]})
		}
	}
	if len(elems) == 0 {
		for _, tet := range tets {
			elems = append(elems, []int{tet[0], tet[1], tet[2], tet[3]})
		}
	}
	// Material: majority of parent vertex materials (only used by the
	// reclassification face heuristics on coarser grids). Ties go to the
	// lower material id: sorted keys with a strict > keep the first (and
	// therefore smallest) maximal id, independent of map order.
	vertMat := vertexMaterials(m)
	mats := make([]int, len(elems))
	for e, conn := range elems {
		count := map[int]int{}
		for _, cv := range conn {
			count[vertMat[mis[cv]]]++
		}
		best, bestN := 0, -1
		for _, mat := range sortutil.Keys(count) {
			if n := count[mat]; n > bestN {
				best, bestN = mat, n
			}
		}
		mats[e] = best
	}
	cm := &mesh.Mesh{Type: mesh.Tet4, Coords: coords, Elems: elems, Mat: mats}

	// Classification for the new grid: inherit below ReclassifyFrom,
	// recompute from the coarse mesh at and beyond it (section 4.6).
	var ncls *topo.Classification
	if level < opts.ReclassifyFrom {
		ncls = &topo.Classification{
			Rank:  make([]int, nc),
			Faces: make([][]int, nc),
		}
		for i, v := range mis {
			ncls.Rank[i] = cls.Rank[v]
			ncls.Faces[i] = append([]int(nil), cls.Faces[v]...)
		}
	} else {
		ncls = topo.Reclassify(cm, opts.TOL)
	}

	return &Grid{
		Mesh:  cm,
		Class: ncls,
		Verts: mis,
		R:     sparse.ExpandBlocks(rb.Build(), 3),
		Lost:  lost,
	}, nil
}

// buildOrder constructs the MIS traversal order: ranks descending, with the
// configured within-rank orderings (natural for exterior / random for
// interior by default — section 4.7).
func buildOrder(cls *topo.Classification, opts Options) []int {
	n := len(cls.Rank)
	within := make([]int, 0, n)
	ext := make([]int, 0)
	inter := make([]int, 0)
	for v := 0; v < n; v++ {
		if cls.Rank[v] == topo.RankInterior {
			inter = append(inter, v)
		} else {
			ext = append(ext, v)
		}
	}
	permute := func(list []int, ord Ordering) []int {
		if ord == Natural {
			return list
		}
		p := graph.RandomOrder(len(list), opts.Seed+uint64(len(list)))
		out := make([]int, len(list))
		for i, k := range p {
			out[i] = list[k]
		}
		return out
	}
	within = append(within, permute(ext, opts.OrderExterior)...)
	within = append(within, permute(inter, opts.OrderInterior)...)
	return graph.RankedOrder(cls.Rank, within)
}

type pairKey [2]int

// nearPairs returns the pairs of MIS vertices within graph distance maxD of
// each other on the parent graph.
func nearPairs(g *graph.Graph, mis []int, maxD int) map[pairKey]bool {
	inMIS := make(map[int]bool, len(mis))
	for _, v := range mis {
		inMIS[v] = true
	}
	near := make(map[pairKey]bool)
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for _, src := range mis {
		// Bounded BFS.
		queue = append(queue[:0], src)
		var touched []int
		dist[src] = 0
		touched = append(touched, src)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v] >= maxD {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					touched = append(touched, w)
					queue = append(queue, w)
					if inMIS[w] {
						near[pairKey{src, w}] = true
					}
				}
			}
		}
		for _, v := range touched {
			dist[v] = -1
		}
	}
	return near
}

// VertexReduction returns the per-level vertex counts and reduction ratios
// (the paper bounds the MIS ratio by 1/2³ and 1/3³ on uniform hexahedral
// meshes, section 4.7).
func (h *Hierarchy) VertexReduction() (counts []int, ratios []float64) {
	for i, g := range h.Grids {
		counts = append(counts, g.Mesh.NumVerts())
		if i > 0 {
			ratios = append(ratios, float64(counts[i])/float64(counts[i-1]))
		}
	}
	return
}

// vertexMaterials assigns each vertex the majority material of its incident
// elements (ties to the lower id).
func vertexMaterials(m *mesh.Mesh) []int {
	counts := make([]map[int]int, m.NumVerts())
	for e, conn := range m.Elems {
		for _, v := range conn {
			if counts[v] == nil {
				counts[v] = map[int]int{}
			}
			counts[v][m.Mat[e]]++
		}
	}
	out := make([]int, m.NumVerts())
	for v, cm := range counts {
		best, bestN := 0, -1
		for _, mat := range sortutil.Keys(cm) {
			if n := cm[mat]; n > bestN {
				best, bestN = mat, n
			}
		}
		out[v] = best
	}
	return out
}
