package core

import "prometheus/internal/obs"

// Observability events for the coarsening pipeline, one per phase of
// the section 4 algorithm: topological classification, the whole
// per-level construction, the modified-graph MIS, the Delaunay remesh,
// and the restriction-operator build.
var (
	evCoarsen  = obs.Register("core.coarsen")
	evClassify = obs.Register("core.coarsen.classify")
	evLevel    = obs.Register("core.coarsen.level")
	evMIS      = obs.Register("core.coarsen.mis")
	evRemesh   = obs.Register("core.coarsen.remesh")
	evRestrict = obs.Register("core.coarsen.restrict")
)
