package core

import (
	"math"
	"testing"

	"prometheus/internal/geom"
	"prometheus/internal/mesh"
	"prometheus/internal/topo"
)

func cubeMesh(n int) *mesh.Mesh {
	return mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
}

func TestCoarsenCube(t *testing.T) {
	m := cubeMesh(6) // 343 vertices
	h, err := Coarsen(m, Options{MinCoarse: 20})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatalf("levels = %d, want >= 2", h.NumLevels())
	}
	counts, ratios := h.VertexReduction()
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("no reduction at level %d: %v", i, counts)
		}
	}
	// The paper bounds the hex-mesh MIS ratio by [1/27, 1/8]; with the
	// boundary-protecting heuristics the top levels run denser, so allow
	// generous slack while still requiring real coarsening.
	if ratios[0] > 0.5 || ratios[0] < 1.0/40 {
		t.Fatalf("first reduction ratio %v outside plausible range", ratios[0])
	}
}

func TestRestrictionPartitionOfUnity(t *testing.T) {
	m := cubeMesh(5)
	h, err := Coarsen(m, Options{MinCoarse: 20})
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		nf := h.Grids[l-1].Mesh.NumVerts()
		// Column sums per fine dof must be 1 (linear shape functions sum
		// to one at every fine vertex): prolongation of the constant is
		// the constant.
		colSum := make([]float64, r.NCols)
		for i := 0; i < r.NRows; i++ {
			cols, vals := r.Row(i)
			for k, j := range cols {
				colSum[j] += vals[k]
			}
		}
		for j := 0; j < 3*nf; j++ {
			if math.Abs(colSum[j]-1) > 1e-6 {
				t.Fatalf("level %d: column %d sums to %v", l, j, colSum[j])
			}
		}
	}
}

func TestRestrictionComponentsDecoupled(t *testing.T) {
	// Displacement components never mix: R entries only connect dof c to
	// dof c.
	m := cubeMesh(4)
	h, err := Coarsen(m, Options{MinCoarse: 20})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Grids[1].R
	for i := 0; i < r.NRows; i++ {
		cols, _ := r.Row(i)
		for _, j := range cols {
			if i%3 != j%3 {
				t.Fatalf("R mixes components: row %d col %d", i, j)
			}
		}
	}
}

func TestCoarseVerticesAreInjected(t *testing.T) {
	m := cubeMesh(4)
	h, err := Coarsen(m, Options{MinCoarse: 10})
	if err != nil {
		t.Fatal(err)
	}
	g1 := h.Grids[1]
	for j, v := range g1.Verts {
		for c := 0; c < 3; c++ {
			if got := g1.R.At(3*j+c, 3*v+c); math.Abs(got-1) > 1e-12 {
				t.Fatalf("coarse vertex %d not injected: R = %v", j, got)
			}
		}
	}
	// Coarse coords must equal the source fine coords.
	for j, v := range g1.Verts {
		if g1.Mesh.Coords[j] != m.Coords[v] {
			t.Fatalf("coarse vertex %d coords mismatch", j)
		}
	}
}

func TestCornersSurvive(t *testing.T) {
	// The 8 cube corners are immortal: they must appear on every grid that
	// the hierarchy builds (their coordinates are preserved).
	m := cubeMesh(5)
	h, err := Coarsen(m, Options{MinCoarse: 12})
	if err != nil {
		t.Fatal(err)
	}
	isCorner := func(p geom.Vec3) bool {
		at := func(x float64) bool { return x == 0 || x == 1 }
		return at(p.X) && at(p.Y) && at(p.Z)
	}
	for l := 1; l < h.NumLevels(); l++ {
		found := 0
		for _, p := range h.Grids[l].Mesh.Coords {
			if isCorner(p) {
				found++
			}
		}
		if found != 8 {
			t.Fatalf("level %d kept %d/8 corners", l, found)
		}
	}
}

func TestInheritThenReclassify(t *testing.T) {
	m := cubeMesh(6)
	h, err := Coarsen(m, Options{MinCoarse: 10, ReclassifyFrom: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 3 {
		t.Skip("hierarchy too shallow for this mesh size")
	}
	// Grid 1 inherits: each coarse vertex rank equals its fine source rank.
	g1 := h.Grids[1]
	for j, v := range g1.Verts {
		if g1.Class.Rank[j] != h.Grids[0].Class.Rank[v] {
			t.Fatalf("grid 1 vertex %d did not inherit rank", j)
		}
	}
	// Grid 2 is reclassified from its own tet mesh: ranks are still valid
	// categories.
	for _, r := range h.Grids[2].Class.Rank {
		if r < topo.RankInterior || r > topo.RankCorner {
			t.Fatalf("invalid rank %d", r)
		}
	}
}

func TestThinBodyCoverage(t *testing.T) {
	// Figures 4-6: a thin slab must keep both faces represented on the
	// coarse grid.
	m := mesh.StructuredHex(10, 10, 1, 10, 10, 0.3, nil)
	h, err := Coarsen(m, Options{MinCoarse: 10, MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatal("no coarse grid built")
	}
	top, bottom := 0, 0
	for _, p := range h.Grids[1].Mesh.Coords {
		if p.Z > 0.29 {
			top++
		}
		if p.Z < 0.01 {
			bottom++
		}
	}
	if top < 4 || bottom < 4 {
		t.Fatalf("thin body lost a face: top=%d bottom=%d", top, bottom)
	}
}

func TestParallelCoarsenMatchesInvariants(t *testing.T) {
	m := cubeMesh(5)
	h, err := Coarsen(m, Options{MinCoarse: 20, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatal("no coarsening")
	}
	// Restriction still a partition of unity.
	r := h.Grids[1].R
	colSum := make([]float64, r.NCols)
	for i := 0; i < r.NRows; i++ {
		cols, vals := r.Row(i)
		for k, j := range cols {
			colSum[j] += vals[k]
		}
	}
	for j, s := range colSum {
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("column %d sums to %v", j, s)
		}
	}
}

func TestPruneFarOption(t *testing.T) {
	m := cubeMesh(5)
	h, err := Coarsen(m, Options{MinCoarse: 20, MaxLevels: 2, PruneFar: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() < 2 {
		t.Fatal("no coarsening")
	}
	// Pruning must not break interpolation: partition of unity still holds.
	r := h.Grids[1].R
	colSum := make([]float64, r.NCols)
	for i := 0; i < r.NRows; i++ {
		cols, vals := r.Row(i)
		for k, j := range cols {
			colSum[j] += vals[k]
		}
	}
	for j, s := range colSum {
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("column %d sums to %v", j, s)
		}
	}
}

func TestOrderingAblation(t *testing.T) {
	// Section 4.7: random interior ordering should give a sparser (or
	// equal) coarse grid than natural ordering.
	m := cubeMesh(8)
	hNat, err := Coarsen(m, Options{MinCoarse: 20, MaxLevels: 2,
		OrderInterior: Natural, OrderExterior: Natural})
	if err != nil {
		t.Fatal(err)
	}
	hRnd, err := Coarsen(m, Options{MinCoarse: 20, MaxLevels: 2,
		OrderInterior: Random, OrderExterior: Natural, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	nNat := hNat.Grids[1].Mesh.NumVerts()
	nRnd := hRnd.Grids[1].Mesh.NumVerts()
	if nRnd > nNat {
		t.Fatalf("random ordering should not be denser: natural %d random %d", nNat, nRnd)
	}
}

func TestCoarsenStopsAtMinCoarse(t *testing.T) {
	m := cubeMesh(3)
	h, err := Coarsen(m, Options{MinCoarse: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 1 {
		t.Fatalf("should not coarsen below MinCoarse: levels = %d", h.NumLevels())
	}
}

func TestCoarsenRejectsInvalidMesh(t *testing.T) {
	m := cubeMesh(2)
	m.Mat = nil
	if _, err := Coarsen(m, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}
