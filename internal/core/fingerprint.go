package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"prometheus/internal/mesh"
	"prometheus/internal/sortutil"
)

// Fingerprint returns a deterministic content hash of everything the
// mesh-setup phase consumes: the mesh (element type, vertex coordinates,
// element connectivity, material ids), the Dirichlet constraint set, and
// the coarsening options. Two inputs with the same fingerprint produce
// bit-identical hierarchies, so the hash is a sound cache key for
// hierarchy reuse (the promserve service keys its hierarchy cache on it).
//
// The hash is position-exact — float64 coordinates and constraint values
// are hashed by their IEEE-754 bit patterns, so even a -0.0 vs +0.0
// difference changes the key (the coarsening is only proven bitwise
// reproducible for bit-identical input). Constraint dofs come from a Go
// map and are hashed in sorted order via sortutil.Keys, so the
// fingerprint never depends on map iteration order; everything else is
// slice data hashed in its natural, already-deterministic order.
func Fingerprint(m *mesh.Mesh, fixed map[int]float64, opts Options) string {
	opts = opts.withDefaults()
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:]) // hash.Hash writes never fail
	}
	wInt := func(v int) { w64(uint64(int64(v))) }
	wF64 := func(v float64) { w64(math.Float64bits(v)) }

	// Mesh section: a leading tag per section keeps field boundaries
	// unambiguous (a vertex count can never collide with an element id).
	wInt(int(m.Type))
	wInt(len(m.Coords))
	for _, p := range m.Coords {
		wF64(p.X)
		wF64(p.Y)
		wF64(p.Z)
	}
	wInt(len(m.Elems))
	for _, conn := range m.Elems {
		for _, v := range conn {
			wInt(v)
		}
	}
	wInt(len(m.Mat))
	for _, id := range m.Mat {
		wInt(id)
	}

	// Constraint section, sorted so the map's iteration order is
	// irrelevant.
	wInt(len(fixed))
	for _, d := range sortutil.Keys(fixed) {
		wInt(d)
		wF64(fixed[d])
	}

	// Options section: every field that steers the coarsening. Hashing
	// the defaulted form makes Options{} and an explicitly-defaulted
	// Options hash identically.
	wF64(opts.TOL)
	wInt(int(opts.OrderExterior))
	wInt(int(opts.OrderInterior))
	w64(opts.Seed)
	wInt(opts.ReclassifyFrom)
	wInt(opts.MinCoarse)
	wInt(opts.MaxLevels)
	if opts.PruneFar {
		wInt(1)
	} else {
		wInt(0)
	}
	wInt(opts.GraphDistMax)
	wInt(opts.Ranks)
	wF64(opts.Eps)

	return hex.EncodeToString(h.Sum(nil))
}
