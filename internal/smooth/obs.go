package smooth

import "prometheus/internal/obs"

// Observability events: one per smoother kind, so the event table
// separates the cost of the smoother actually selected at each level.
var (
	evJacobi      = obs.Register("smooth.jacobi")
	evGaussSeidel = obs.Register("smooth.gauss_seidel")
	evChebyshev   = obs.Register("smooth.chebyshev")
	evDomainBJ    = obs.Register("smooth.domain_block_jacobi")
	evNodeBJ      = obs.Register("smooth.node_block_jacobi")
	evCG          = obs.Register("smooth.cg")
	evParJacobi   = obs.Register("smooth.jacobi.par")
)
