package smooth

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/pool"
	"prometheus/internal/sparse"
)

// spdBlocked builds a random SPD-ish blocked operator in both storages.
func spdBlocked(t *testing.T, nb, b int, rng *rand.Rand) (*sparse.CSR, *sparse.BSR) {
	t.Helper()
	bb := sparse.NewBlockBuilder(nb, nb, b)
	blk := make([]float64, b*b)
	for ib := 0; ib < nb; ib++ {
		for _, jb := range []int{ib, rng.Intn(nb), rng.Intn(nb)} {
			for k := range blk {
				blk[k] = rng.NormFloat64()
			}
			if jb == ib {
				for d := 0; d < b; d++ {
					blk[d*b+d] += 4 * float64(b*b)
				}
			}
			bb.AddBlock(ib, jb, blk)
		}
	}
	bsr := bb.Build()
	return bsr.ToCSR(), bsr
}

// TestParallelJacobiBitwise locks in the acceptance criterion for the
// parallel smoother: iterates bitwise equal to serial Jacobi on both
// storages for every pool size, and matching flop accounting.
func TestParallelJacobiBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	csr, bsr := spdBlocked(t, 53, 3, rng)
	n := csr.NRows
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
		x0[i] = rng.NormFloat64()
	}
	for _, op := range []sparse.Operator{csr, bsr} {
		ref := NewJacobi(op, 2.0/3)
		want := append([]float64(nil), x0...)
		ref.Smooth(want, b, 5)
		for _, nw := range []int{1, 2, 3, 8} {
			p := pool.New(nw)
			par := NewParallelJacobi(op, 2.0/3, p)
			got := append([]float64(nil), x0...)
			par.Smooth(got, b, 5)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%T nw=%d row %d: parallel %v != serial %v", op, nw, i, got[i], want[i])
				}
			}
			if par.Flops() != ref.Flops() {
				t.Fatalf("%T nw=%d: flops %d != serial %d", op, nw, par.Flops(), ref.Flops())
			}
			p.Close()
		}
	}
}

// TestParallelJacobiApplyMatchesJacobi checks the preconditioner form.
func TestParallelJacobiApplyMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	csr, _ := spdBlocked(t, 20, 3, rng)
	p := pool.New(2)
	defer p.Close()
	ref := NewJacobi(csr, 0.8)
	par := NewParallelJacobi(csr, 0.8, p)
	n := csr.NRows
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	zs := make([]float64, n)
	zp := make([]float64, n)
	ref.Apply(r, zs)
	par.Apply(r, zp)
	for i := range zs {
		if math.Float64bits(zs[i]) != math.Float64bits(zp[i]) {
			t.Fatalf("row %d: %v != %v", i, zp[i], zs[i])
		}
	}
}

// TestParallelJacobiZeroAlloc locks in allocation-free steady-state
// sweeps (the pool satellite).
func TestParallelJacobiZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, bsr := spdBlocked(t, 40, 3, rng)
	p := pool.New(4)
	defer p.Close()
	p.Sanitizer().Disable()
	par := NewParallelJacobi(bsr, 2.0/3, p)
	n := bsr.Rows()
	x := make([]float64, n)
	b := make([]float64, n)
	par.Smooth(x, b, 1)
	if a := testing.AllocsPerRun(50, func() { par.Smooth(x, b, 1) }); a != 0 {
		t.Fatalf("ParallelJacobi.Smooth allocates %.1f per sweep, want 0", a)
	}
}
