package smooth

import (
	"fmt"

	"prometheus/internal/obs"
	"prometheus/internal/pool"
	"prometheus/internal/sparse"
)

// ParallelJacobi is damped Jacobi with both phases row-partitioned over a
// real-core worker pool: first work = A·x on each worker's rows, then
// x[i] += ω·invD[i]·(b[i] − work[i]) on the same partition. Each element
// is computed with exactly the arithmetic of the serial Jacobi sweep
// (work[i] holds A·x here instead of b − A·x, and the subtraction moves
// into the update — the float operations and their order per element are
// unchanged), so iterates are bitwise identical to Jacobi for every pool
// size (locked in by TestParallelJacobiBitwise). Sweeps are
// allocation-free in steady state.
type ParallelJacobi struct {
	taskRef
	A     sparse.Operator
	Omega float64
	p     *pool.Pool
	align int
	invD  []float64
	work  []float64
	upd   jacobiUpdate
	flops int64
}

// jacobiUpdate is the second-phase kernel: given r = A·x in the x-arg
// position, it applies x[i] += ω·invD[i]·(b[i] − r[i]) for i in [lo, hi).
// It implements pool.Kernel, writing only its assigned rows of x.
type jacobiUpdate struct {
	b     []float64
	invD  []float64
	omega float64
}

// MulVecRange implements pool.Kernel. The slices are narrowed to the
// assigned window up front, which both eliminates the per-row bounds
// checks and makes the write range explicit.
func (u *jacobiUpdate) MulVecRange(r, x []float64, lo, hi int) {
	r = r[lo:hi]
	x = x[lo:hi]
	b := u.b[lo:hi]
	invD := u.invD[lo:hi]
	for i := range r {
		x[i] += u.omega * invD[i] * (b[i] - r[i])
	}
}

// NewParallelJacobi builds a pool-backed damped Jacobi smoother over a.
// The pool outlives the smoother and may be shared between smoothers —
// dispatches are serialized by the pool.
func NewParallelJacobi(a sparse.Operator, omega float64, p *pool.Pool) *ParallelJacobi {
	if p == nil {
		panic("smooth: NewParallelJacobi needs a worker pool")
	}
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			panic(fmt.Sprintf("smooth: zero diagonal at row %d", i))
		}
		inv[i] = 1 / v
	}
	s := &ParallelJacobi{
		A:     a,
		Omega: omega,
		p:     p,
		align: sparse.DispatchAlign(a),
		invD:  inv,
		work:  make([]float64, a.Rows()),
	}
	s.upd.invD = inv
	s.upd.omega = omega
	return s
}

// Smooth implements Smoother.
func (s *ParallelJacobi) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evParJacobi, s.task)
	f0 := s.flops
	s.upd.b = b
	for it := 0; it < n; it++ {
		s.p.DispatchTask(s.task, s.A, x, s.work, len(x), s.align)
		s.p.DispatchTask(s.task, &s.upd, s.work, x, len(x), 1)
		s.flops += s.A.MulVecFlops() + 3*int64(len(x))
	}
	s.upd.b = nil
	sp.EndFlops(s.flops - f0)
}

// Apply implements Smoother: z = ω·D⁻¹·r, identical to Jacobi.Apply.
func (s *ParallelJacobi) Apply(r, z []float64) {
	d := s.invD[:len(z)]
	rr := r[:len(z)]
	for i := range z {
		z[i] = s.Omega * d[i] * rr[i]
	}
	s.flops += 2 * int64(len(z))
}

// Flops implements Smoother.
func (s *ParallelJacobi) Flops() int64 { return s.flops }
