// Package smooth implements the multigrid smoothers: (damped) Jacobi,
// Gauss-Seidel/SOR and its symmetric variant, Chebyshev polynomial
// smoothing, the paper's domain-decomposed block Jacobi smoother with
// graph-partitioned blocks and dense Cholesky block solves ("block Jacobi
// with 6 blocks for every 1,000 unknowns", section 7.2), and a node-block
// Jacobi smoother that inverts the 3x3 diagonal blocks of vector-valued
// operators. Every smoother is written against sparse.Operator, so CSR and
// BSR storage run through the same algorithms.
package smooth

import (
	"fmt"
	"math"

	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/la"
	"prometheus/internal/obs"
	"prometheus/internal/sparse"
)

// Smoother applies fixed-point iterations to A·x = b in place.
type Smoother interface {
	// Smooth performs n sweeps updating x. r may be nil; when non-nil it is
	// used as scratch of length dim.
	Smooth(x, b []float64, n int)
	// Apply is the preconditioner form: z ≈ A⁻¹·r from a zero initial
	// guess (one sweep).
	Apply(r, z []float64)
	// Flops returns the accumulated floating point work.
	Flops() int64
}

// taskRef carries the request-scoped obs task a smoother attributes
// its sweep work to. Smoothers belong to exactly one MG instance and an
// MG instance is leased to one solve at a time, so the field is set and
// read on the leasing goroutine — no synchronization needed.
type taskRef struct {
	task *obs.Task
}

// SetTask attaches (or, with nil, detaches) the request-scoped obs
// task subsequent sweeps are attributed to. Called by multigrid.SetTask
// while the owner holds exclusive use of the smoother.
func (c *taskRef) SetTask(t *obs.Task) { c.task = t }

// Jacobi is (damped) Jacobi: x += ω·D⁻¹·(b - A·x).
type Jacobi struct {
	taskRef
	A     sparse.Operator
	Omega float64
	invD  []float64
	work  []float64
	flops int64
}

// NewJacobi builds a damped Jacobi smoother. omega = 1 is plain Jacobi;
// 2/3 is the usual multigrid damping.
func NewJacobi(a sparse.Operator, omega float64) *Jacobi {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			panic(fmt.Sprintf("smooth: zero diagonal at row %d", i))
		}
		inv[i] = 1 / v
	}
	return &Jacobi{A: a, Omega: omega, invD: inv, work: make([]float64, a.Rows())}
}

// Smooth implements Smoother.
func (s *Jacobi) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evJacobi, s.task)
	f0 := s.flops
	for it := 0; it < n; it++ {
		s.A.Residual(b, x, s.work)
		for i := range x {
			x[i] += s.Omega * s.invD[i] * s.work[i]
		}
		s.flops += s.A.MulVecFlops() + 3*int64(len(x))
	}
	sp.EndFlops(s.flops - f0)
}

// Apply implements Smoother.
func (s *Jacobi) Apply(r, z []float64) {
	for i := range z {
		z[i] = s.Omega * s.invD[i] * r[i]
	}
	s.flops += 2 * int64(len(z))
}

// Flops implements Smoother.
func (s *Jacobi) Flops() int64 { return s.flops }

// GaussSeidel is SOR with symmetric option: forward sweep then (if Sym)
// backward sweep. The ordered sweep itself is the storage's job (the
// sparse.Sweeper capability): on scalar storage it updates one unknown at
// a time; on blocked storage it runs the paper's nodal variant, solving
// each node's BxB diagonal block exactly per visit (precomputed
// inverses). Operators without the capability (matrix-free) cannot be
// Gauss-Seidel smoothed — use Jacobi or Chebyshev there.
type GaussSeidel struct {
	taskRef
	A     sparse.Operator
	Omega float64
	Sym   bool
	sw    sparse.Sweeper
	// Blocked path: inverted diagonal blocks and a node-sized scratch,
	// both hoisted so sweeps never allocate.
	invBlk []float64
	sum    []float64
	flops  int64
}

// NewGaussSeidel builds an SOR smoother (omega = 1 is Gauss-Seidel).
func NewGaussSeidel(a sparse.Operator, omega float64, sym bool) *GaussSeidel {
	s := &GaussSeidel{A: a, Omega: omega, Sym: sym}
	s.sw, _ = a.(sparse.Sweeper)
	if bd, ok := a.(sparse.BlockDiagonaler); ok && s.sw != nil {
		// For f32 storages the blocks arrive widened and the inverses are
		// computed and held in f64: narrowing touches the operator, never
		// the smoother math.
		if blocks := bd.DiagBlocks(); blocks != nil {
			s.invBlk = invertDiagBlocks(blocks, bd.BlockSize())
			s.sum = make([]float64, bd.BlockSize())
		}
	}
	return s
}

// sweep delegates one SOR sweep to the storage's Sweeper capability,
// accumulating the reported flops.
func (s *GaussSeidel) sweep(x, b []float64, backward bool) {
	if s.sw == nil {
		panic("smooth: GaussSeidel needs the SOR-sweep capability (CSR, BSR, CSR32 or BSR32)")
	}
	s.flops += s.sw.SORSweep(x, b, s.Omega, backward, s.invBlk, s.sum)
}

// Smooth implements Smoother.
func (s *GaussSeidel) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evGaussSeidel, s.task)
	f0 := s.flops
	for it := 0; it < n; it++ {
		s.sweep(x, b, false)
		if s.Sym {
			s.sweep(x, b, true)
		}
	}
	sp.EndFlops(s.flops - f0)
}

// Apply implements Smoother.
func (s *GaussSeidel) Apply(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.Smooth(z, r, 1)
}

// Flops implements Smoother.
func (s *GaussSeidel) Flops() int64 { return s.flops }

// Chebyshev is polynomial smoothing of fixed degree targeting the interval
// [lmax/alpha, lmax] of the spectrum of D⁻¹A.
type Chebyshev struct {
	taskRef
	A      sparse.Operator
	Degree int
	lmin   float64
	lmax   float64
	invD   []float64
	r, d   []float64 // sweep scratch, hoisted so Smooth never allocates
	flops  int64
}

// NewChebyshev estimates the largest eigenvalue of D⁻¹A with power
// iteration and targets [lmax/alpha, lmax]; alpha ≈ 30 is customary.
func NewChebyshev(a sparse.Operator, degree int, alpha float64) *Chebyshev {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			panic("smooth: zero diagonal")
		}
		inv[i] = 1 / v
	}
	// Power iteration on D^-1 A.
	n := a.Rows()
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
		if i%2 == 1 {
			v[i] = -v[i]
		}
	}
	lmax := 1.0
	for it := 0; it < 20; it++ {
		a.MulVec(v, w)
		for i := range w {
			w[i] *= inv[i]
		}
		nrm := la.Norm2(w)
		if nrm == 0 {
			break
		}
		lmax = nrm
		la.Scal(1/nrm, w)
		copy(v, w)
	}
	lmax *= 1.05 // safety factor
	return &Chebyshev{
		A: a, Degree: degree, lmin: lmax / alpha, lmax: lmax, invD: inv,
		r: make([]float64, n), d: make([]float64, n),
	}
}

// Smooth implements Smoother using the standard Chebyshev recurrence on the
// D⁻¹-preconditioned operator.
func (s *Chebyshev) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evChebyshev, s.task)
	f0 := s.flops
	for it := 0; it < n; it++ {
		s.apply(x, b)
	}
	sp.EndFlops(s.flops - f0)
}

func (s *Chebyshev) apply(x, b []float64) {
	nn := s.A.Rows()
	theta := (s.lmax + s.lmin) / 2
	delta := (s.lmax - s.lmin) / 2
	r, d := s.r, s.d
	s.A.Residual(b, x, r)
	sigma := theta / delta
	rho := 1 / sigma
	for i := 0; i < nn; i++ {
		d[i] = s.invD[i] * r[i] / theta
	}
	for k := 0; k < s.Degree; k++ {
		la.Axpy(1, d, x)
		if k == s.Degree-1 {
			break
		}
		s.A.Residual(b, x, r)
		rhoNew := 1 / (2*sigma - rho)
		for i := 0; i < nn; i++ {
			d[i] = rhoNew*rho*d[i] + 2*rhoNew/delta*s.invD[i]*r[i]
		}
		rho = rhoNew
		s.flops += s.A.MulVecFlops() + 6*int64(nn)
	}
	s.flops += s.A.MulVecFlops() + 4*int64(nn)
}

// Apply implements Smoother.
func (s *Chebyshev) Apply(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.apply(z, r)
}

// Flops implements Smoother.
func (s *Chebyshev) Flops() int64 { return s.flops }

// DomainBlockJacobi is the paper's subdomain smoother: the unknowns are
// partitioned into a few large blocks (METIS in the paper, the greedy
// graph partitioner here — "6 blocks for every 1,000 unknowns"), each
// diagonal block is factored with dense Cholesky at setup, and a sweep
// solves every block against the current residual simultaneously. Not to
// be confused with NodeBlockJacobi, whose blocks are the BxB nodal
// diagonal blocks of a vector-valued operator.
type DomainBlockJacobi struct {
	taskRef
	A       sparse.Operator
	blocks  [][]int // dof indices per block
	chols   []*la.Cholesky
	work    []float64
	scratch []float64 // per-block solve buffer
	flops   int64
	// Omega damps the update x += Omega·M⁻¹r. Undamped block Jacobi can
	// diverge on stiff elasticity operators; AutoDamp sets Omega from a
	// power-iteration estimate of λmax(M⁻¹A) so the iteration contracts
	// and the preconditioner stays SPD. Default 1.
	Omega float64
	// SetupFlops records the factorization cost (the paper's "matrix
	// setup" phase includes the subdomain factorizations).
	SetupFlops int64
}

// BlocksPerThousand is the paper's block density for the domain smoother:
// 6 blocks per 1000 unknowns.
const BlocksPerThousand = 6

// NewDomainBlockJacobi factors the diagonal blocks given by part
// (dof -> block). Setup traverses rows through a scalar view of a; the
// steady-state sweeps stay on the Operator interface.
func NewDomainBlockJacobi(a sparse.Operator, part []int, nblocks int) (*DomainBlockJacobi, error) {
	if len(part) != a.Rows() {
		return nil, fmt.Errorf("smooth: partition covers %d of %d dofs", len(part), a.Rows())
	}
	ac := sparse.AsCSR(a)
	s := &DomainBlockJacobi{A: a, blocks: graph.PartMembers(part, nblocks), work: make([]float64, a.Rows()), Omega: 1}
	s.chols = make([]*la.Cholesky, nblocks)
	maxBlock := 0
	for _, dofs := range s.blocks {
		if len(dofs) > maxBlock {
			maxBlock = len(dofs)
		}
	}
	s.scratch = make([]float64, maxBlock)
	for bi, dofs := range s.blocks {
		if len(dofs) == 0 {
			continue
		}
		sub := ac.Submatrix(dofs)
		d := la.NewDense(len(dofs), len(dofs))
		maxDiag := 0.0
		for i := 0; i < sub.NRows; i++ {
			cols, vals := sub.Row(i)
			for k, j := range cols {
				d.Set(i, j, vals[k])
				if i == j && vals[k] > maxDiag {
					maxDiag = vals[k]
				}
			}
		}
		if maxDiag == 0 {
			maxDiag = 1
		}
		// Principal submatrices of an SPD operator are SPD, but aggressive
		// Galerkin coarsening with 1e4 coefficient jumps can leave blocks
		// positive definite only to within roundoff; retry with escalating
		// diagonal shifts before giving up (the shift only weakens the
		// preconditioner slightly).
		var chol *la.Cholesky
		var err error
		for shift := 0.0; ; {
			chol, err = la.NewCholesky(d)
			if err == nil {
				break
			}
			if shift == 0 {
				shift = 1e-12 * maxDiag
			} else {
				shift *= 100
			}
			if shift > 1e-3*maxDiag {
				return nil, fmt.Errorf("smooth: block %d (%d dofs): %w", bi, len(dofs), err)
			}
			for i := 0; i < len(dofs); i++ {
				d.Add(i, i, shift)
			}
		}
		s.chols[bi] = chol
		s.SetupFlops += int64(len(dofs)) * int64(len(dofs)) * int64(len(dofs)) / 3
	}
	return s, nil
}

// DefaultBlockCount returns the paper's 6-blocks-per-1000-unknowns rule
// for the domain smoother (at least one block).
func DefaultBlockCount(n int) int {
	nb := n * BlocksPerThousand / 1000
	if nb < 1 {
		nb = 1
	}
	return nb
}

// AutoDamp estimates λmax(M⁻¹A) with a few power iterations and sets
// Omega = 1/λmax (with a small safety margin) so that every error mode
// contracts. Call once after construction.
func (s *DomainBlockJacobi) AutoDamp() {
	n := s.A.Rows()
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
		if i%3 == 1 {
			v[i] = -v[i]
		}
	}
	lmax := 1.0
	for it := 0; it < 12; it++ {
		s.A.MulVec(v, w)
		s.applyBlocks(w, w)
		nrm := la.Norm2(w)
		if nrm == 0 {
			break
		}
		lmax = nrm
		la.Scal(1/nrm, w)
		copy(v, w)
	}
	s.SetupFlops += int64(12) * (s.A.MulVecFlops() + 3*int64(n))
	s.Omega = 1 / (1.05 * lmax)
	if s.Omega > 1 {
		s.Omega = 1
	}
}

// Smooth implements Smoother: x += Omega·M⁻¹(b - A·x) with M the block
// diagonal.
func (s *DomainBlockJacobi) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evDomainBJ, s.task)
	f0 := s.flops
	for it := 0; it < n; it++ {
		s.A.Residual(b, x, s.work)
		s.applyBlocks(s.work, s.work)
		la.Axpy(s.Omega, s.work, x)
		s.flops += s.A.MulVecFlops() + 3*int64(len(x))
	}
	sp.EndFlops(s.flops - f0)
}

// applyBlocks solves M·z = r block by block (r and z may alias).
func (s *DomainBlockJacobi) applyBlocks(r, z []float64) {
	for bi, dofs := range s.blocks {
		if len(dofs) == 0 {
			continue
		}
		rb := s.scratch[:len(dofs)]
		for k, d := range dofs {
			rb[k] = r[d]
		}
		s.chols[bi].Solve(rb, rb)
		for k, d := range dofs {
			z[d] = rb[k]
		}
		s.flops += 2 * int64(len(dofs)) * int64(len(dofs))
	}
}

// Apply implements Smoother.
func (s *DomainBlockJacobi) Apply(r, z []float64) {
	s.applyBlocks(r, z)
	if !geom.ApproxEq(s.Omega, 1, 1e-15) {
		la.Scal(s.Omega, z)
	}
}

// Flops implements Smoother.
func (s *DomainBlockJacobi) Flops() int64 { return s.flops }

// NumBlocks returns the number of non-empty blocks.
func (s *DomainBlockJacobi) NumBlocks() int {
	n := 0
	for _, b := range s.blocks {
		if len(b) > 0 {
			n++
		}
	}
	return n
}

// NodeBlockJacobi is the paper's "block diagonal" smoother for
// vector-valued problems: M is the BxB nodal diagonal of a BSR operator
// (one 3x3 block per vertex for elasticity), inverted once at setup. A
// sweep is x += ω·M⁻¹·(b - A·x), with the block back-substitution fused
// into a register-resident loop — stronger than scalar Jacobi because it
// couples the components of each node, and allocation-free in steady
// state. Contrast DomainBlockJacobi, whose blocks are large graph-
// partitioned subdomains solved by dense Cholesky.
type NodeBlockJacobi struct {
	taskRef
	A      sparse.Operator // BSR or BSR32 level operator
	Omega  float64
	bs, nb int       // block size and block-row count of A
	invD   []float64 // inverted BxB diagonal blocks, packed row-major
	work   []float64
	flops  int64
}

// NewNodeBlockJacobi inverts the nodal diagonal blocks of an operator
// with the sparse.BlockDiagonaler capability (BSR, BSR32, or the
// matrix-free element operator when node-aligned). omega damps the update
// exactly as in scalar Jacobi (2/3 is customary in multigrid). For f32
// storages the diagonal blocks arrive widened to float64 before
// inversion, so the smoother's update math is identical to the f64
// variant applied to the narrowed operator.
func NewNodeBlockJacobi(a sparse.Operator, omega float64) (*NodeBlockJacobi, error) {
	bd, ok := a.(sparse.BlockDiagonaler)
	if !ok {
		return nil, fmt.Errorf("smooth: NodeBlockJacobi needs the node-block diagonal capability")
	}
	blocks := bd.DiagBlocks()
	if blocks == nil {
		return nil, fmt.Errorf("smooth: NodeBlockJacobi: operator is not node-aligned")
	}
	bs := bd.BlockSize()
	return &NodeBlockJacobi{
		A:     a,
		Omega: omega,
		bs:    bs,
		nb:    a.Rows() / bs,
		invD:  invertDiagBlocks(blocks, bs),
		work:  make([]float64, a.Rows()),
	}, nil
}

// Smooth implements Smoother.
func (s *NodeBlockJacobi) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evNodeBJ, s.task)
	f0 := s.flops
	s.smooth(x, b, n)
	sp.EndFlops(s.flops - f0)
}

func (s *NodeBlockJacobi) smooth(x, b []float64, n int) {
	bs := s.bs
	bb := bs * bs
	nb := s.nb
	for it := 0; it < n; it++ {
		s.A.Residual(b, x, s.work)
		for ib := 0; ib < nb; ib++ {
			inv := s.invD[ib*bb : (ib+1)*bb : (ib+1)*bb]
			r := s.work[ib*bs : ib*bs+bs : ib*bs+bs]
			xr := x[ib*bs : ib*bs+bs : ib*bs+bs]
			for d := 0; d < bs; d++ {
				z := 0.0
				row := inv[d*bs : d*bs+bs]
				for c, vv := range row {
					z += vv * r[c]
				}
				xr[d] += s.Omega * z
			}
		}
		s.flops += s.A.MulVecFlops() + int64(nb)*int64(2*bb+2*bs)
	}
}

// Apply implements Smoother: z = ω·M⁻¹·r.
func (s *NodeBlockJacobi) Apply(r, z []float64) {
	bs := s.bs
	bb := bs * bs
	nb := s.nb
	for ib := 0; ib < nb; ib++ {
		inv := s.invD[ib*bb : (ib+1)*bb : (ib+1)*bb]
		rr := r[ib*bs : ib*bs+bs : ib*bs+bs]
		zr := z[ib*bs : ib*bs+bs : ib*bs+bs]
		for d := 0; d < bs; d++ {
			v := 0.0
			row := inv[d*bs : d*bs+bs]
			for c, vv := range row {
				v += vv * rr[c]
			}
			zr[d] = s.Omega * v
		}
	}
	s.flops += int64(nb) * int64(2*bb+bs)
}

// Flops implements Smoother.
func (s *NodeBlockJacobi) Flops() int64 { return s.flops }

// invertDiagBlocks inverts each packed BxB block in place-order via
// Gauss-Jordan with partial pivoting. Zero (absent) or singular blocks
// panic: a vector-valued operator with a singular nodal diagonal cannot be
// smoothed.
func invertDiagBlocks(blocks []float64, b int) []float64 {
	bb := b * b
	n := len(blocks) / bb
	out := make([]float64, len(blocks))
	m := make([]float64, bb)
	for ib := 0; ib < n; ib++ {
		copy(m, blocks[ib*bb:(ib+1)*bb])
		inv := out[ib*bb : (ib+1)*bb]
		for d := 0; d < b; d++ {
			inv[d*b+d] = 1
		}
		for col := 0; col < b; col++ {
			// Partial pivot.
			piv := col
			for r := col + 1; r < b; r++ {
				if math.Abs(m[r*b+col]) > math.Abs(m[piv*b+col]) {
					piv = r
				}
			}
			if m[piv*b+col] == 0 {
				panic(fmt.Sprintf("smooth: singular diagonal block at node %d", ib))
			}
			if piv != col {
				for c := 0; c < b; c++ {
					m[piv*b+c], m[col*b+c] = m[col*b+c], m[piv*b+c]
					inv[piv*b+c], inv[col*b+c] = inv[col*b+c], inv[piv*b+c]
				}
			}
			p := 1 / m[col*b+col]
			for c := 0; c < b; c++ {
				m[col*b+c] *= p
				inv[col*b+c] *= p
			}
			for r := 0; r < b; r++ {
				if r == col {
					continue
				}
				f := m[r*b+col]
				if f == 0 {
					continue
				}
				for c := 0; c < b; c++ {
					m[r*b+c] -= f * m[col*b+c]
					inv[r*b+c] -= f * inv[col*b+c]
				}
			}
		}
	}
	return out
}

// CGSmoother runs a fixed number of conjugate gradient iterations
// preconditioned by an inner smoother as one smoothing step. This is the
// literal reading of the paper's smoother ("one pre-smoothing and one
// post-smoothing step within multigrid, preconditioned with block Jacobi"):
// each smoothing step is a block-Jacobi-preconditioned CG iteration, which
// is self-scaling (no damping estimate needed) and strictly stronger than a
// stationary sweep. As a preconditioner it is slightly nonlinear, so the
// outer Krylov method must be flexible (krylov.FPCG).
type CGSmoother struct {
	taskRef
	A     sparse.Operator
	Inner Smoother
	Iters int // CG iterations per smoothing step (default 1)
	// CG vectors, hoisted so every smoothing step is allocation-free.
	r, z, p, ap []float64
	flops       int64
}

// NewCGSmoother wraps inner in a CG iteration.
func NewCGSmoother(a sparse.Operator, inner Smoother, iters int) *CGSmoother {
	if iters < 1 {
		iters = 1
	}
	nn := a.Rows()
	return &CGSmoother{
		A: a, Inner: inner, Iters: iters,
		r: make([]float64, nn), z: make([]float64, nn),
		p: make([]float64, nn), ap: make([]float64, nn),
	}
}

// Smooth implements Smoother: n×Iters preconditioned CG iterations
// continuing from the current x.
func (s *CGSmoother) Smooth(x, b []float64, n int) {
	sp := obs.StartTask(evCG, s.task)
	f0 := s.flops
	s.smooth(x, b, n)
	sp.EndFlops(s.flops - f0)
}

// smooth is the span-free body; it returns early on breakdown, so the
// wrapper above keeps the obs span balanced on every path.
func (s *CGSmoother) smooth(x, b []float64, n int) {
	nn := s.A.Rows()
	r, z, p, ap := s.r, s.z, s.p, s.ap
	s.A.Residual(b, x, r)
	s.flops += s.A.MulVecFlops() + int64(nn)
	s.Inner.Apply(r, z)
	copy(p, z)
	rz := la.Dot(r, z)
	for it := 0; it < n*s.Iters; it++ {
		if rz == 0 {
			return
		}
		s.A.MulVec(p, ap)
		pap := la.Dot(p, ap)
		s.flops += s.A.MulVecFlops() + 2*int64(nn)
		if pap <= 0 {
			return
		}
		alpha := rz / pap
		la.Axpy(alpha, p, x)
		la.Axpy(-alpha, ap, r)
		s.flops += 4 * int64(nn)
		if it == n*s.Iters-1 {
			return
		}
		s.Inner.Apply(r, z)
		rzNew := la.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		s.flops += 4 * int64(nn)
	}
}

// Apply implements Smoother.
func (s *CGSmoother) Apply(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.Smooth(z, r, 1)
}

// Flops implements Smoother.
func (s *CGSmoother) Flops() int64 { return s.flops }

// SetTask attaches the request task to the outer iteration and, when
// the inner smoother supports attribution, forwards it there too.
func (s *CGSmoother) SetTask(t *obs.Task) {
	s.taskRef.SetTask(t)
	if ts, ok := s.Inner.(interface{ SetTask(*obs.Task) }); ok {
		ts.SetTask(t)
	}
}
