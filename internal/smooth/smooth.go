// Package smooth implements the multigrid smoothers: (damped) Jacobi,
// Gauss-Seidel/SOR and its symmetric variant, Chebyshev polynomial
// smoothing, and the paper's block Jacobi smoother with graph-partitioned
// blocks and dense Cholesky block solves ("block Jacobi with 6 blocks for
// every 1,000 unknowns", section 7.2).
package smooth

import (
	"fmt"
	"math"

	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/la"
	"prometheus/internal/sparse"
)

// Smoother applies fixed-point iterations to A·x = b in place.
type Smoother interface {
	// Smooth performs n sweeps updating x. r may be nil; when non-nil it is
	// used as scratch of length dim.
	Smooth(x, b []float64, n int)
	// Apply is the preconditioner form: z ≈ A⁻¹·r from a zero initial
	// guess (one sweep).
	Apply(r, z []float64)
	// Flops returns the accumulated floating point work.
	Flops() int64
}

// Jacobi is (damped) Jacobi: x += ω·D⁻¹·(b - A·x).
type Jacobi struct {
	A     *sparse.CSR
	Omega float64
	invD  []float64
	work  []float64
	flops int64
}

// NewJacobi builds a damped Jacobi smoother. omega = 1 is plain Jacobi;
// 2/3 is the usual multigrid damping.
func NewJacobi(a *sparse.CSR, omega float64) *Jacobi {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			panic(fmt.Sprintf("smooth: zero diagonal at row %d", i))
		}
		inv[i] = 1 / v
	}
	return &Jacobi{A: a, Omega: omega, invD: inv, work: make([]float64, a.NRows)}
}

// Smooth implements Smoother.
func (s *Jacobi) Smooth(x, b []float64, n int) {
	for it := 0; it < n; it++ {
		s.A.Residual(b, x, s.work)
		for i := range x {
			x[i] += s.Omega * s.invD[i] * s.work[i]
		}
		s.flops += s.A.MulVecFlops() + 3*int64(len(x))
	}
}

// Apply implements Smoother.
func (s *Jacobi) Apply(r, z []float64) {
	for i := range z {
		z[i] = s.Omega * s.invD[i] * r[i]
	}
	s.flops += 2 * int64(len(z))
}

// Flops implements Smoother.
func (s *Jacobi) Flops() int64 { return s.flops }

// GaussSeidel is SOR with symmetric option: forward sweep then (if Sym)
// backward sweep.
type GaussSeidel struct {
	A     *sparse.CSR
	Omega float64
	Sym   bool
	flops int64
}

// NewGaussSeidel builds an SOR smoother (omega = 1 is Gauss-Seidel).
func NewGaussSeidel(a *sparse.CSR, omega float64, sym bool) *GaussSeidel {
	return &GaussSeidel{A: a, Omega: omega, Sym: sym}
}

func (s *GaussSeidel) sweep(x, b []float64, backward bool) {
	n := s.A.NRows
	for k := 0; k < n; k++ {
		i := k
		if backward {
			i = n - 1 - k
		}
		sum := b[i]
		diag := 0.0
		lo, hi := s.A.RowPtr[i], s.A.RowPtr[i+1]
		cols := s.A.ColIdx[lo:hi]
		vals := s.A.Val[lo:hi:hi]
		vals = vals[:len(cols)] // equal lengths let the compiler drop bounds checks
		for p, j := range cols {
			if j == i {
				diag = vals[p]
				continue
			}
			sum -= vals[p] * x[j]
		}
		if diag == 0 {
			panic(fmt.Sprintf("smooth: zero diagonal at row %d", i))
		}
		x[i] += s.Omega * (sum/diag - x[i])
	}
	s.flops += s.A.MulVecFlops() + 2*int64(n)
}

// Smooth implements Smoother.
func (s *GaussSeidel) Smooth(x, b []float64, n int) {
	for it := 0; it < n; it++ {
		s.sweep(x, b, false)
		if s.Sym {
			s.sweep(x, b, true)
		}
	}
}

// Apply implements Smoother.
func (s *GaussSeidel) Apply(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.Smooth(z, r, 1)
}

// Flops implements Smoother.
func (s *GaussSeidel) Flops() int64 { return s.flops }

// Chebyshev is polynomial smoothing of fixed degree targeting the interval
// [lmax/alpha, lmax] of the spectrum of D⁻¹A.
type Chebyshev struct {
	A      *sparse.CSR
	Degree int
	lmin   float64
	lmax   float64
	invD   []float64
	r, d   []float64 // sweep scratch, hoisted so Smooth never allocates
	flops  int64
}

// NewChebyshev estimates the largest eigenvalue of D⁻¹A with power
// iteration and targets [lmax/alpha, lmax]; alpha ≈ 30 is customary.
func NewChebyshev(a *sparse.CSR, degree int, alpha float64) *Chebyshev {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			panic("smooth: zero diagonal")
		}
		inv[i] = 1 / v
	}
	// Power iteration on D^-1 A.
	n := a.NRows
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
		if i%2 == 1 {
			v[i] = -v[i]
		}
	}
	lmax := 1.0
	for it := 0; it < 20; it++ {
		a.MulVec(v, w)
		for i := range w {
			w[i] *= inv[i]
		}
		nrm := la.Norm2(w)
		if nrm == 0 {
			break
		}
		lmax = nrm
		la.Scal(1/nrm, w)
		copy(v, w)
	}
	lmax *= 1.05 // safety factor
	return &Chebyshev{
		A: a, Degree: degree, lmin: lmax / alpha, lmax: lmax, invD: inv,
		r: make([]float64, n), d: make([]float64, n),
	}
}

// Smooth implements Smoother using the standard Chebyshev recurrence on the
// D⁻¹-preconditioned operator.
func (s *Chebyshev) Smooth(x, b []float64, n int) {
	for it := 0; it < n; it++ {
		s.apply(x, b)
	}
}

func (s *Chebyshev) apply(x, b []float64) {
	nn := s.A.NRows
	theta := (s.lmax + s.lmin) / 2
	delta := (s.lmax - s.lmin) / 2
	r, d := s.r, s.d
	s.A.Residual(b, x, r)
	sigma := theta / delta
	rho := 1 / sigma
	for i := 0; i < nn; i++ {
		d[i] = s.invD[i] * r[i] / theta
	}
	for k := 0; k < s.Degree; k++ {
		la.Axpy(1, d, x)
		if k == s.Degree-1 {
			break
		}
		s.A.Residual(b, x, r)
		rhoNew := 1 / (2*sigma - rho)
		for i := 0; i < nn; i++ {
			d[i] = rhoNew*rho*d[i] + 2*rhoNew/delta*s.invD[i]*r[i]
		}
		rho = rhoNew
		s.flops += s.A.MulVecFlops() + 6*int64(nn)
	}
	s.flops += s.A.MulVecFlops() + 4*int64(nn)
}

// Apply implements Smoother.
func (s *Chebyshev) Apply(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.apply(z, r)
}

// Flops implements Smoother.
func (s *Chebyshev) Flops() int64 { return s.flops }

// BlockJacobi is the paper's smoother: the unknowns are partitioned into
// blocks (METIS in the paper, the greedy graph partitioner here), each
// diagonal block is factored with dense Cholesky at setup, and a sweep
// solves every block against the current residual simultaneously.
type BlockJacobi struct {
	A       *sparse.CSR
	blocks  [][]int // dof indices per block
	chols   []*la.Cholesky
	work    []float64
	scratch []float64 // per-block solve buffer
	flops   int64
	// Omega damps the update x += Omega·M⁻¹r. Undamped block Jacobi can
	// diverge on stiff elasticity operators; AutoDamp sets Omega from a
	// power-iteration estimate of λmax(M⁻¹A) so the iteration contracts
	// and the preconditioner stays SPD. Default 1.
	Omega float64
	// SetupFlops records the factorization cost (the paper's "matrix
	// setup" phase includes the subdomain factorizations).
	SetupFlops int64
}

// BlocksPerThousand is the paper's block density: 6 blocks per 1000
// unknowns.
const BlocksPerThousand = 6

// NewBlockJacobi factors the diagonal blocks given by part (dof -> block).
func NewBlockJacobi(a *sparse.CSR, part []int, nblocks int) (*BlockJacobi, error) {
	if len(part) != a.NRows {
		return nil, fmt.Errorf("smooth: partition covers %d of %d dofs", len(part), a.NRows)
	}
	s := &BlockJacobi{A: a, blocks: graph.PartMembers(part, nblocks), work: make([]float64, a.NRows), Omega: 1}
	s.chols = make([]*la.Cholesky, nblocks)
	maxBlock := 0
	for _, dofs := range s.blocks {
		if len(dofs) > maxBlock {
			maxBlock = len(dofs)
		}
	}
	s.scratch = make([]float64, maxBlock)
	for bi, dofs := range s.blocks {
		if len(dofs) == 0 {
			continue
		}
		sub := a.Submatrix(dofs)
		d := la.NewDense(len(dofs), len(dofs))
		maxDiag := 0.0
		for i := 0; i < sub.NRows; i++ {
			cols, vals := sub.Row(i)
			for k, j := range cols {
				d.Set(i, j, vals[k])
				if i == j && vals[k] > maxDiag {
					maxDiag = vals[k]
				}
			}
		}
		if maxDiag == 0 {
			maxDiag = 1
		}
		// Principal submatrices of an SPD operator are SPD, but aggressive
		// Galerkin coarsening with 1e4 coefficient jumps can leave blocks
		// positive definite only to within roundoff; retry with escalating
		// diagonal shifts before giving up (the shift only weakens the
		// preconditioner slightly).
		var chol *la.Cholesky
		var err error
		for shift := 0.0; ; {
			chol, err = la.NewCholesky(d)
			if err == nil {
				break
			}
			if shift == 0 {
				shift = 1e-12 * maxDiag
			} else {
				shift *= 100
			}
			if shift > 1e-3*maxDiag {
				return nil, fmt.Errorf("smooth: block %d (%d dofs): %w", bi, len(dofs), err)
			}
			for i := 0; i < len(dofs); i++ {
				d.Add(i, i, shift)
			}
		}
		s.chols[bi] = chol
		s.SetupFlops += int64(len(dofs)) * int64(len(dofs)) * int64(len(dofs)) / 3
	}
	return s, nil
}

// DefaultBlockCount returns the paper's 6-blocks-per-1000-unknowns rule
// (at least one block).
func DefaultBlockCount(n int) int {
	nb := n * BlocksPerThousand / 1000
	if nb < 1 {
		nb = 1
	}
	return nb
}

// AutoDamp estimates λmax(M⁻¹A) with a few power iterations and sets
// Omega = 1/λmax (with a small safety margin) so that every error mode
// contracts. Call once after construction.
func (s *BlockJacobi) AutoDamp() {
	n := s.A.NRows
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
		if i%3 == 1 {
			v[i] = -v[i]
		}
	}
	lmax := 1.0
	for it := 0; it < 12; it++ {
		s.A.MulVec(v, w)
		s.applyBlocks(w, w)
		nrm := la.Norm2(w)
		if nrm == 0 {
			break
		}
		lmax = nrm
		la.Scal(1/nrm, w)
		copy(v, w)
	}
	s.SetupFlops += int64(12) * (s.A.MulVecFlops() + 3*int64(n))
	s.Omega = 1 / (1.05 * lmax)
	if s.Omega > 1 {
		s.Omega = 1
	}
}

// Smooth implements Smoother: x += Omega·M⁻¹(b - A·x) with M the block
// diagonal.
func (s *BlockJacobi) Smooth(x, b []float64, n int) {
	for it := 0; it < n; it++ {
		s.A.Residual(b, x, s.work)
		s.applyBlocks(s.work, s.work)
		la.Axpy(s.Omega, s.work, x)
		s.flops += s.A.MulVecFlops() + 3*int64(len(x))
	}
}

// applyBlocks solves M·z = r block by block (r and z may alias).
func (s *BlockJacobi) applyBlocks(r, z []float64) {
	for bi, dofs := range s.blocks {
		if len(dofs) == 0 {
			continue
		}
		rb := s.scratch[:len(dofs)]
		for k, d := range dofs {
			rb[k] = r[d]
		}
		s.chols[bi].Solve(rb, rb)
		for k, d := range dofs {
			z[d] = rb[k]
		}
		s.flops += 2 * int64(len(dofs)) * int64(len(dofs))
	}
}

// Apply implements Smoother.
func (s *BlockJacobi) Apply(r, z []float64) {
	s.applyBlocks(r, z)
	if !geom.ApproxEq(s.Omega, 1, 1e-15) {
		la.Scal(s.Omega, z)
	}
}

// Flops implements Smoother.
func (s *BlockJacobi) Flops() int64 { return s.flops }

// NumBlocks returns the number of non-empty blocks.
func (s *BlockJacobi) NumBlocks() int {
	n := 0
	for _, b := range s.blocks {
		if len(b) > 0 {
			n++
		}
	}
	return n
}

// CGSmoother runs a fixed number of conjugate gradient iterations
// preconditioned by an inner smoother as one smoothing step. This is the
// literal reading of the paper's smoother ("one pre-smoothing and one
// post-smoothing step within multigrid, preconditioned with block Jacobi"):
// each smoothing step is a block-Jacobi-preconditioned CG iteration, which
// is self-scaling (no damping estimate needed) and strictly stronger than a
// stationary sweep. As a preconditioner it is slightly nonlinear, so the
// outer Krylov method must be flexible (krylov.FPCG).
type CGSmoother struct {
	A     *sparse.CSR
	Inner Smoother
	Iters int // CG iterations per smoothing step (default 1)
	// CG vectors, hoisted so every smoothing step is allocation-free.
	r, z, p, ap []float64
	flops       int64
}

// NewCGSmoother wraps inner in a CG iteration.
func NewCGSmoother(a *sparse.CSR, inner Smoother, iters int) *CGSmoother {
	if iters < 1 {
		iters = 1
	}
	nn := a.NRows
	return &CGSmoother{
		A: a, Inner: inner, Iters: iters,
		r: make([]float64, nn), z: make([]float64, nn),
		p: make([]float64, nn), ap: make([]float64, nn),
	}
}

// Smooth implements Smoother: n×Iters preconditioned CG iterations
// continuing from the current x.
func (s *CGSmoother) Smooth(x, b []float64, n int) {
	nn := s.A.NRows
	r, z, p, ap := s.r, s.z, s.p, s.ap
	s.A.Residual(b, x, r)
	s.flops += s.A.MulVecFlops() + int64(nn)
	s.Inner.Apply(r, z)
	copy(p, z)
	rz := la.Dot(r, z)
	for it := 0; it < n*s.Iters; it++ {
		if rz == 0 {
			return
		}
		s.A.MulVec(p, ap)
		pap := la.Dot(p, ap)
		s.flops += s.A.MulVecFlops() + 2*int64(nn)
		if pap <= 0 {
			return
		}
		alpha := rz / pap
		la.Axpy(alpha, p, x)
		la.Axpy(-alpha, ap, r)
		s.flops += 4 * int64(nn)
		if it == n*s.Iters-1 {
			return
		}
		s.Inner.Apply(r, z)
		rzNew := la.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		s.flops += 4 * int64(nn)
	}
}

// Apply implements Smoother.
func (s *CGSmoother) Apply(r, z []float64) {
	for i := range z {
		z[i] = 0
	}
	s.Smooth(z, r, 1)
}

// Flops implements Smoother.
func (s *CGSmoother) Flops() int64 { return s.flops + s.Inner.Flops() }
