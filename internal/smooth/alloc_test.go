package smooth

import (
	"testing"

	"prometheus/internal/graph"
	"prometheus/internal/obs"
	"prometheus/internal/sparse"
)

// TestSmootherSweepsZeroAlloc asserts every smoother's steady-state
// Smooth and Apply paths are allocation-free: all scratch is hoisted
// into the smoother at construction time (enforced statically by the
// hotloop-alloc lint rule, locked in dynamically here).
func TestSmootherSweepsZeroAlloc(t *testing.T) {
	a := laplace3D(6)
	n := a.NRows

	var edges [][2]int
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if i < j {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g := graph.NewGraph(n, edges)
	nb := DefaultBlockCount(n)
	bj, err := NewDomainBlockJacobi(a, graph.GreedyPartition(g, nb), nb)
	if err != nil {
		t.Fatal(err)
	}

	smoothers := []struct {
		name string
		s    Smoother
	}{
		{"Jacobi", NewJacobi(a, 2.0/3)},
		{"GaussSeidel", NewGaussSeidel(a, 1, true)},
		{"Chebyshev", NewChebyshev(a, 3, 30)},
		{"BlockJacobi", bj},
		{"CGSmoother", NewCGSmoother(a, bj, 2)},
	}
	b := make([]float64, n)
	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
		r[i] = float64(i%3) - 1
	}
	for _, tc := range smoothers {
		if got := testing.AllocsPerRun(20, func() { tc.s.Smooth(x, b, 2) }); got != 0 {
			t.Errorf("%s.Smooth allocates %.1f per call, want 0", tc.name, got)
		}
		if got := testing.AllocsPerRun(20, func() { tc.s.Apply(r, z) }); got != 0 {
			t.Errorf("%s.Apply allocates %.1f per call, want 0", tc.name, got)
		}
	}

	// The same sweeps with observability recording: the obs spans the
	// instrumented smoothers open land in preallocated buffers, so the
	// zero-allocation guarantee holds with profiling on too.
	obs.EnableWith(obs.Config{RingCap: 1 << 12})
	defer obs.Disable()
	for _, tc := range smoothers {
		if got := testing.AllocsPerRun(20, func() { tc.s.Smooth(x, b, 2) }); got != 0 {
			t.Errorf("%s.Smooth with obs enabled allocates %.1f per call, want 0", tc.name, got)
		}
	}
}

// TestNodeBlockSweepsZeroAlloc locks in the zero-allocation guarantee for
// the BSR smoother paths: node-block Jacobi and the nodal Gauss-Seidel
// sweep precompute their block inverses at setup and never allocate per
// sweep.
func TestNodeBlockSweepsZeroAlloc(t *testing.T) {
	a := blockLaplace(60)
	n := a.Rows()
	smoothers := []struct {
		name string
		s    Smoother
	}{
		{"NodeBlockJacobi", mustNodeBlockJacobi(t, a, 2.0/3)},
		{"GaussSeidelNodal", NewGaussSeidel(a, 1, true)},
		{"JacobiOnBSR", NewJacobi(a, 2.0/3)},
	}
	b := make([]float64, n)
	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
		r[i] = float64(i%3) - 1
	}
	for _, tc := range smoothers {
		if got := testing.AllocsPerRun(20, func() { tc.s.Smooth(x, b, 2) }); got != 0 {
			t.Errorf("%s.Smooth allocates %.1f per call, want 0", tc.name, got)
		}
		if got := testing.AllocsPerRun(20, func() { tc.s.Apply(r, z) }); got != 0 {
			t.Errorf("%s.Apply allocates %.1f per call, want 0", tc.name, got)
		}
	}
}

// TestF32SweepsZeroAlloc locks in the zero-allocation guarantee for the
// mixed-precision smoother paths: the f32 Gauss-Seidel sweeps (scalar and
// nodal), node-block Jacobi over BSR32, and point Jacobi over CSR32 hoist
// all scratch (including the f64 block inverses widened at setup) into
// the smoother and never allocate per sweep.
func TestF32SweepsZeroAlloc(t *testing.T) {
	a32 := sparse.ToCSR32(laplace3D(6))
	ab32 := sparse.ToBSR32(blockLaplace(60))
	smoothers := []struct {
		name string
		s    Smoother
	}{
		{"GaussSeidelCSR32", NewGaussSeidel(a32, 1, true)},
		{"JacobiCSR32", NewJacobi(a32, 2.0/3)},
		{"GaussSeidelBSR32", NewGaussSeidel(ab32, 1, true)},
		{"NodeBlockJacobi32", mustNodeBlockJacobi(t, ab32, 2.0/3)},
	}
	n := a32.Rows()
	b := make([]float64, n)
	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
		r[i] = float64(i%3) - 1
	}
	nb := ab32.Rows()
	bb := make([]float64, nb)
	xb := make([]float64, nb)
	for _, tc := range smoothers {
		xx, rr, zz, bv := x, r, z, b
		if tc.name == "GaussSeidelBSR32" || tc.name == "NodeBlockJacobi32" {
			xx, rr, zz, bv = xb, bb, xb, bb
		}
		if got := testing.AllocsPerRun(20, func() { tc.s.Smooth(xx, bv, 2) }); got != 0 {
			t.Errorf("%s.Smooth allocates %.1f per call, want 0", tc.name, got)
		}
		if got := testing.AllocsPerRun(20, func() { tc.s.Apply(rr, zz) }); got != 0 {
			t.Errorf("%s.Apply allocates %.1f per call, want 0", tc.name, got)
		}
	}
}
