package smooth

import (
	"math"
	"testing"

	"prometheus/internal/graph"
	"prometheus/internal/la"
	"prometheus/internal/sparse"
)

// laplace1D returns the n×n tridiagonal [-1, 2, -1] matrix.
func laplace1D(n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
	return b.Build()
}

// laplace3D returns the 7-point Laplacian on an n³ grid.
func laplace3D(n int) *sparse.CSR {
	id := func(i, j, k int) int { return (i*n+j)*n + k }
	b := sparse.NewBuilder(n*n*n, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				me := id(i, j, k)
				b.Add(me, me, 6)
				if i > 0 {
					b.Add(me, id(i-1, j, k), -1)
				}
				if i < n-1 {
					b.Add(me, id(i+1, j, k), -1)
				}
				if j > 0 {
					b.Add(me, id(i, j-1, k), -1)
				}
				if j < n-1 {
					b.Add(me, id(i, j+1, k), -1)
				}
				if k > 0 {
					b.Add(me, id(i, j, k-1), -1)
				}
				if k < n-1 {
					b.Add(me, id(i, j, k+1), -1)
				}
			}
		}
	}
	return b.Build()
}

// blockLaplace returns an n-node block-tridiagonal SPD operator with 3x3
// node blocks: coupled diagonal blocks and -I off-diagonal blocks — a toy
// vector-valued elasticity stand-in for the node-block smoothers.
func blockLaplace(n int) *sparse.BSR {
	bb := sparse.NewBlockBuilder(n, n, 3)
	diag := []float64{4, 1, 0, 1, 4, 1, 0, 1, 4}
	off := []float64{-1, 0, 0, 0, -1, 0, 0, 0, -1}
	for i := 0; i < n; i++ {
		bb.AddBlock(i, i, diag)
		if i+1 < n {
			bb.AddBlock(i, i+1, off)
			bb.AddBlock(i+1, i, off)
		}
	}
	return bb.Build()
}

// errorNorm returns ‖b - A·x‖₂.
func errorNorm(a sparse.Operator, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.Residual(b, x, r)
	return la.Norm2(r)
}

// checkReduces verifies that n sweeps reduce the residual monotonically to
// below frac of the initial.
func checkReduces(t *testing.T, s Smoother, a sparse.Operator, sweeps int, frac float64) {
	t.Helper()
	n := a.Rows()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i + 1))
	}
	x := make([]float64, n)
	r0 := errorNorm(a, x, b)
	prev := r0
	for k := 0; k < sweeps; k++ {
		s.Smooth(x, b, 1)
		r := errorNorm(a, x, b)
		if r > prev*(1+1e-12) && r > 1e-12*r0 {
			t.Fatalf("sweep %d increased residual: %v -> %v", k, prev, r)
		}
		prev = r
	}
	if prev > frac*r0 {
		t.Fatalf("residual only reduced to %v of initial after %d sweeps", prev/r0, sweeps)
	}
	if s.Flops() <= 0 {
		t.Fatal("flops not counted")
	}
}

func TestJacobiReduces(t *testing.T) {
	a := laplace1D(50)
	checkReduces(t, NewJacobi(a, 2.0/3), a, 200, 0.5)
}

func TestJacobiApply(t *testing.T) {
	a := laplace1D(10)
	s := NewJacobi(a, 1)
	r := make([]float64, 10)
	z := make([]float64, 10)
	for i := range r {
		r[i] = float64(i)
	}
	s.Apply(r, z)
	for i := range z {
		if math.Abs(z[i]-r[i]/2) > 1e-15 {
			t.Fatalf("z[%d] = %v", i, z[i])
		}
	}
}

func TestGaussSeidelReduces(t *testing.T) {
	a := laplace1D(50)
	checkReduces(t, NewGaussSeidel(a, 1, false), a, 120, 0.2)
	checkReduces(t, NewGaussSeidel(a, 1, true), a, 60, 0.2)
	checkReduces(t, NewGaussSeidel(a, 1.5, false), a, 60, 0.2)
}

// mustNodeBlockJacobi unwraps the capability error for operators the
// tests know are node-aligned.
func mustNodeBlockJacobi(t *testing.T, a sparse.Operator, omega float64) *NodeBlockJacobi {
	t.Helper()
	s, err := NewNodeBlockJacobi(a, omega)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNodeBlockJacobiReduces(t *testing.T) {
	a := blockLaplace(40)
	checkReduces(t, mustNodeBlockJacobi(t, a, 2.0/3), a, 300, 0.5)
}

// TestNodeBlockJacobiApply: one application with omega=1 must solve the
// nodal diagonal exactly — multiplying z back by the diagonal blocks
// recovers r.
func TestNodeBlockJacobiApply(t *testing.T) {
	a := blockLaplace(8)
	s := mustNodeBlockJacobi(t, a, 1)
	n := a.Rows()
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = math.Sin(float64(i + 1))
	}
	s.Apply(r, z)
	db := a.DiagBlocks()
	for ib := 0; ib < a.NBRows; ib++ {
		for d := 0; d < 3; d++ {
			got := 0.0
			for c := 0; c < 3; c++ {
				got += db[ib*9+d*3+c] * z[3*ib+c]
			}
			if math.Abs(got-r[3*ib+d]) > 1e-12 {
				t.Fatalf("D·z != r at node %d component %d: %v vs %v", ib, d, got, r[3*ib+d])
			}
		}
	}
}

func TestGaussSeidelNodalReduces(t *testing.T) {
	a := blockLaplace(40)
	checkReduces(t, NewGaussSeidel(a, 1, false), a, 120, 0.2)
	checkReduces(t, NewGaussSeidel(a, 1, true), a, 60, 0.2)
}

// TestGaussSeidelNodalMatchesScalar: with diagonal nodal blocks the block
// solve degenerates to scalar division, so the nodal sweep on BSR must
// reproduce the scalar sweep on the expanded CSR.
func TestGaussSeidelNodalMatchesScalar(t *testing.T) {
	const n = 12
	bb := sparse.NewBlockBuilder(n, n, 3)
	diag := []float64{5, 0, 0, 0, 6, 0, 0, 0, 7}
	off := []float64{-1, 0, 0, 0, -1, 0, 0, 0, -1}
	for i := 0; i < n; i++ {
		bb.AddBlock(i, i, diag)
		if i+1 < n {
			bb.AddBlock(i, i+1, off)
			bb.AddBlock(i+1, i, off)
		}
	}
	a := bb.Build()
	sb := NewGaussSeidel(a, 1, true)
	sc := NewGaussSeidel(a.ToCSR(), 1, true)
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = math.Cos(float64(i))
	}
	xb := make([]float64, a.Rows())
	xc := make([]float64, a.Rows())
	sb.Smooth(xb, b, 3)
	sc.Smooth(xc, b, 3)
	for i := range xb {
		if math.Abs(xb[i]-xc[i]) > 1e-13 {
			t.Fatalf("nodal and scalar sweeps diverge at dof %d: %v vs %v", i, xb[i], xc[i])
		}
	}
}

func TestChebyshevSmoothsHighFrequency(t *testing.T) {
	// Chebyshev targets the high end of the spectrum: a high-frequency
	// error must decay much faster than a smooth one.
	n := 64
	a := laplace1D(n)
	s := NewChebyshev(a, 4, 30)
	b := make([]float64, n)
	// Error = x_exact - x; start from x = -e so r = A e.
	decay := func(mode int) float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = -math.Sin(math.Pi * float64(mode) * float64(i+1) / float64(n+1))
		}
		r0 := errorNorm(a, x, b)
		s.Smooth(x, b, 1)
		return errorNorm(a, x, b) / r0
	}
	hi := decay(n - 2)
	lo := decay(1)
	if hi > 0.2 {
		t.Fatalf("high-frequency decay = %v, want < 0.2", hi)
	}
	if hi > lo {
		t.Fatalf("smoother should damp high frequency faster: hi %v lo %v", hi, lo)
	}
}

func TestBlockJacobi(t *testing.T) {
	a := laplace3D(6)
	n := a.NRows
	// Graph partition on the matrix pattern, paper block density.
	var edges [][2]int
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if i < j {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g := graph.NewGraph(n, edges)
	nb := DefaultBlockCount(n)
	part := graph.GreedyPartition(g, nb)
	s, err := NewDomainBlockJacobi(a, part, nb)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() < 1 {
		t.Fatal("no blocks")
	}
	if s.SetupFlops <= 0 {
		t.Fatal("setup flops not counted")
	}
	checkReduces(t, s, a, 60, 0.3)
	// Block Jacobi with one block per dof degenerates to Jacobi.
	part1 := make([]int, n)
	for i := range part1 {
		part1[i] = i
	}
	s1, err := NewDomainBlockJacobi(a, part1, n)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJacobi(a, 1)
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	s1.Apply(r, z1)
	j.Apply(r, z2)
	for i := range z1 {
		if math.Abs(z1[i]-z2[i]) > 1e-12 {
			t.Fatalf("pointwise block Jacobi != Jacobi at %d", i)
		}
	}
}

func TestBlockJacobiSingleBlockIsDirect(t *testing.T) {
	// One block covering everything solves the system exactly in one sweep.
	a := laplace1D(20)
	part := make([]int, 20)
	s, err := NewDomainBlockJacobi(a, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = float64(i)
	}
	x := make([]float64, 20)
	s.Smooth(x, b, 1)
	if r := errorNorm(a, x, b); r > 1e-10 {
		t.Fatalf("single-block residual = %v", r)
	}
}

func TestDefaultBlockCount(t *testing.T) {
	if DefaultBlockCount(1000) != 6 {
		t.Fatal("paper rule: 6 blocks per 1000")
	}
	if DefaultBlockCount(10) != 1 {
		t.Fatal("minimum one block")
	}
	if DefaultBlockCount(40000) != 240 {
		t.Fatalf("got %d", DefaultBlockCount(40000))
	}
}

func TestSmootherSymmetryForPCG(t *testing.T) {
	// Apply of Jacobi and BlockJacobi are symmetric operators (M⁻¹ SPD):
	// check ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩.
	a := laplace3D(4)
	n := a.NRows
	part := graph.GreedyPartition(func() *graph.Graph {
		var edges [][2]int
		for i := 0; i < n; i++ {
			cols, _ := a.Row(i)
			for _, j := range cols {
				if i < j {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		return graph.NewGraph(n, edges)
	}(), 5)
	bj, err := NewDomainBlockJacobi(a, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Smoother{NewJacobi(a, 0.8), bj} {
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range u {
			u[i] = math.Sin(float64(3 * i))
			v[i] = math.Cos(float64(2 * i))
		}
		mu := make([]float64, n)
		mv := make([]float64, n)
		s.Apply(u, mu)
		s.Apply(v, mv)
		if d := la.Dot(mu, v) - la.Dot(u, mv); math.Abs(d) > 1e-10 {
			t.Fatalf("preconditioner not symmetric: %v", d)
		}
	}
}

func TestCGSmootherStrongerThanInner(t *testing.T) {
	// One CG-wrapped sweep must reduce the residual at least as much as
	// the optimally damped inner sweep (CG line search is optimal in the
	// A-norm along the preconditioned direction).
	a := laplace3D(5)
	n := a.NRows
	part := graph.GreedyPartition(matrixGraph(a), 4)
	inner, err := NewDomainBlockJacobi(a, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	cg := NewCGSmoother(a, inner, 1)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.7)
	}
	x := make([]float64, n)
	cg.Smooth(x, b, 5)
	rCG := errorNorm(a, x, b)
	r0 := errorNorm(a, make([]float64, n), b)
	if rCG >= r0 {
		t.Fatalf("CG smoother did not reduce residual: %v -> %v", r0, rCG)
	}
	if cg.Flops() <= 0 {
		t.Fatal("flops not counted")
	}
	// Apply form from zero initial guess.
	z := make([]float64, n)
	cg.Apply(b, z)
	if la.Norm2(z) == 0 {
		t.Fatal("Apply produced nothing")
	}
}

// matrixGraph builds the adjacency graph of a matrix pattern.
func matrixGraph(a *sparse.CSR) *graph.Graph {
	var edges [][2]int
	for i := 0; i < a.NRows; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if i < j {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return graph.NewGraph(a.NRows, edges)
}

func TestBlockJacobiAutoDamp(t *testing.T) {
	a := laplace3D(4)
	part := graph.GreedyPartition(matrixGraph(a), 3)
	s, err := NewDomainBlockJacobi(a, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Omega != 1 {
		t.Fatal("default omega should be 1")
	}
	s.AutoDamp()
	if s.Omega <= 0 || s.Omega > 1 {
		t.Fatalf("omega = %v", s.Omega)
	}
	// Damped iteration must contract on an arbitrary error.
	b := make([]float64, a.NRows)
	x := make([]float64, a.NRows)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	r0 := errorNorm(a, x, b)
	s.Smooth(x, b, 10)
	if errorNorm(a, x, b) >= r0 {
		t.Fatal("damped block Jacobi did not contract")
	}
}
