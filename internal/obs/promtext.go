package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric — counters, gauges,
// labeled vec families, log2 histograms (as cumulative buckets), plus
// the per-event span stats — in the Prometheus text exposition format
// (version 0.0.4), the format real scrape fleets consume. Metric names
// are the registered dotted names sanitized into the prometheus_
// namespace (serve.http.requests -> prometheus_serve_http_requests);
// counters gain the conventional _total suffix.
//
// This is a report path: it takes the registry lock and may allocate
// freely. Only recording is allocation-bound.
func WritePrometheus(w io.Writer) error {
	mu.Lock()
	defer mu.Unlock()
	pw := &promWriter{w: w}

	pw.family(promName("obs.enabled"), "gauge")
	enabled := int64(0)
	if on.Load() {
		enabled = 1
	}
	pw.sample(promName("obs.enabled"), "", enabled)

	for _, c := range counters {
		name := promCounterName(c.name)
		pw.family(name, "counter")
		pw.sample(name, "", c.v.Load())
	}
	for _, v := range counterVecs {
		name := promCounterName(v.name)
		pw.family(name, "counter")
		v.mu.RLock()
		for _, k := range sortedChildKeys(v.kids) {
			pw.sample(name, promLabels(v.keys, k, "", ""), v.kids[k].v.Load())
		}
		v.mu.RUnlock()
	}
	for _, g := range gauges {
		name := promName(g.name)
		pw.family(name, "gauge")
		pw.sample(name, "", g.v.Load())
	}
	for _, h := range histograms {
		pw.histogram(promName(h.name), "", nil, "", h)
	}
	for _, v := range histogramVecs {
		name := promName(v.name)
		pw.family(name, "histogram")
		v.mu.RLock()
		for _, k := range sortedChildKeys(v.kids) {
			pw.histogramSeries(name, v.keys, k, v.kids[k])
		}
		v.mu.RUnlock()
	}

	// Per-event span stats, summed across ranks, as labeled counters.
	evTime := promName("obs.event.time.ns") + "_total"
	evCount := promName("obs.event.count") + "_total"
	evFlops := promName("obs.event.flops") + "_total"
	evMsgs := promName("obs.event.msgs") + "_total"
	evBytes := promName("obs.event.bytes") + "_total"
	type evTotals struct {
		name                           string
		timeNs, count, fl, msgs, bytes int64
	}
	var evs []evTotals
	for e, name := range names {
		var t evTotals
		t.name = name
		for r := 0; r < MaxRanks; r++ {
			st := &stats[e][r]
			t.timeNs += st.timeNs.Load()
			t.count += st.count.Load()
			t.fl += st.flops.Load()
			t.msgs += st.msgs.Load()
			t.bytes += st.bytes.Load()
		}
		if t.count != 0 || t.fl != 0 || t.msgs != 0 {
			evs = append(evs, t)
		}
	}
	eventKey := []string{"event"}
	for _, fam := range []struct {
		name string
		get  func(evTotals) int64
	}{
		{evTime, func(t evTotals) int64 { return t.timeNs }},
		{evCount, func(t evTotals) int64 { return t.count }},
		{evFlops, func(t evTotals) int64 { return t.fl }},
		{evMsgs, func(t evTotals) int64 { return t.msgs }},
		{evBytes, func(t evTotals) int64 { return t.bytes }},
	} {
		pw.family(fam.name, "counter")
		for _, t := range evs {
			pw.sample(fam.name, promLabels(eventKey, t.name, "", ""), fam.get(t))
		}
	}

	droppedName := promName("obs.dropped.samples") + "_total"
	pw.family(droppedName, "counter")
	var drops int64
	for r := 0; r < MaxRanks; r++ {
		drops += dropped[r].Load()
	}
	pw.sample(droppedName, "", drops)

	return pw.err
}

// promWriter accumulates exposition lines with a sticky error, so the
// render loop never branches on write failures.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...interface{}) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// family emits the # TYPE header for a metric family.
func (pw *promWriter) family(name, kind string) {
	pw.printf("# TYPE %s %s\n", name, kind)
}

// sample emits one series line. labels is either empty or a rendered
// {k="v",...} block.
func (pw *promWriter) sample(name, labels string, v int64) {
	pw.printf("%s%s %d\n", name, labels, v)
}

// histogram emits a standalone histogram family (TYPE header plus its
// single unlabeled series).
func (pw *promWriter) histogram(name, joined string, keys []string, _ string, h *Histogram) {
	pw.family(name, "histogram")
	pw.histogramSeries(name, keys, joined, h)
}

// histogramSeries renders one histogram's cumulative buckets, sum and
// count. The log2 buckets convert exactly: internal bucket b counts
// integer observations v with bit length b, i.e. v in [2^(b-1), 2^b-1]
// (bucket 0 counts v <= 0), so the cumulative upper bound of bucket b
// is le="2^b - 1" with no sample ever straddling a boundary.
func (pw *promWriter) histogramSeries(name string, keys []string, joined string, h *Histogram) {
	hi := 0
	for b := histBuckets - 1; b > 0; b-- {
		if h.buckets[b].Load() != 0 {
			hi = b
			break
		}
	}
	var cum int64
	for b := 0; b <= hi; b++ {
		cum += h.buckets[b].Load()
		le := "0"
		if b > 0 {
			le = strconv.FormatUint(uint64(1)<<uint(b)-1, 10)
		}
		pw.sample(name+"_bucket", promLabels(keys, joined, "le", le), cum)
	}
	pw.sample(name+"_bucket", promLabels(keys, joined, "le", "+Inf"), h.n.Load())
	pw.sample(name+"_sum", promLabels(keys, joined, "", ""), h.sum.Load())
	pw.sample(name+"_count", promLabels(keys, joined, "", ""), h.n.Load())
}

// promLabels renders a {k="v",...} label block from a vec child's
// joined values plus an optional extra label (the histogram le bound).
// Returns "" when there are no labels at all.
func promLabels(keys []string, joined, extraKey, extraVal string) string {
	var vals []string
	if len(keys) > 0 {
		vals = strings.Split(joined, labelSep)
	}
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelKey(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteString(`"`)
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// promName sanitizes a dotted registry name into the prometheus_
// namespace: [a-zA-Z0-9_:] only, everything else becomes '_'.
func promName(name string) string {
	return "prometheus_" + promSanitize(name)
}

// promLabelKey sanitizes a label key: same character set as metric
// names, but no namespace prefix — label keys stay as declared.
func promLabelKey(k string) string { return promSanitize(k) }

// promSanitize maps a dotted registry name onto [a-zA-Z0-9_:].
func promSanitize(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promCounterName renders a counter's exposition name: sanitized, in
// the prometheus_ namespace, ending in exactly one _total suffix even
// when the registry name already carries one.
func promCounterName(name string) string {
	n := promName(name)
	if strings.HasSuffix(n, "_total") {
		return n
	}
	return n + "_total"
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
