package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// Task is one request-scoped attribution scope: a W3C trace id plus a
// private set of counters and a private span capture buffer. A Task is
// threaded through the solve stack via context.Context (WithTask /
// FromContext) and credited at the same call sites that feed the
// process-global stats, so per-request totals and global totals are two
// views of the same recordings — never a second measurement.
//
// The type follows the package's recording discipline: counters are
// cache-line padded atomics, the span ring is preallocated at task
// creation, every mutation is gated on the global enable flag, and all
// methods are safe on a nil *Task (an uninstrumented call path costs a
// nil check). Overflowing the span ring drops the span from the task
// trace but counts the drop — never silent.
type Task struct {
	traceID string
	parent  string

	ring []traceEvent
	pos  atomic.Int64
	drop atomic.Int64

	ctrs [taskCtrCount]padCounter
}

// padCounter is an atomic counter padded out to its own cache line so
// concurrent rank goroutines crediting different counters of one task
// never false-share.
type padCounter struct {
	v atomic.Int64
	_ [7]int64
}

// Task counter slots. The set mirrors the attribution the paper's
// efficiency decomposition needs per run: arithmetic work, message
// traffic, cycle and iteration counts, and cache behaviour.
const (
	ctrFlops = iota
	ctrMsgs
	ctrBytes
	ctrVCycles
	ctrIterations
	ctrRows
	ctrCacheHits
	ctrCacheMisses
	taskCtrCount
)

// taskRingCap is the per-task span capture capacity. A warm serve-path
// solve records a few hundred spans (outer iterations x cycle spans x
// smoother sweeps), so the default holds complete request traces while
// bounding per-request memory.
const taskRingCap = 4096

// NewTask creates a request scope. traceID is the W3C trace id to
// attribute recordings to; pass "" to mint a fresh random id. The span
// ring is only allocated while recording is enabled, so tasks created
// with obs off are a cheap id holder (trace ids must exist even when
// profiling is off — logging and traceparent echo depend on them).
func NewTask(traceID string) *Task {
	t := &Task{traceID: traceID}
	if t.traceID == "" {
		t.traceID = NewTraceID()
	}
	if on.Load() {
		t.ring = make([]traceEvent, taskRingCap)
	}
	return t
}

// SetParent records the caller's span id from an inbound traceparent
// header, so exported request traces can be stitched under the caller's
// span by external tooling.
func (t *Task) SetParent(spanID string) {
	if t != nil {
		t.parent = spanID
	}
}

// TraceID returns the task's trace id ("" on a nil task).
func (t *Task) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Parent returns the inbound parent span id, if one was set.
func (t *Task) Parent() string {
	if t == nil {
		return ""
	}
	return t.parent
}

// add credits one counter slot, gated exactly like the global stats.
func (t *Task) add(slot int, n int64) {
	if t == nil || n == 0 || !on.Load() {
		return
	}
	t.ctrs[slot].v.Add(n)
}

// AddFlops credits floating point operations to the task.
func (t *Task) AddFlops(n int64) { t.add(ctrFlops, n) }

// AddComm credits message and byte traffic to the task. The par
// communicator calls this at the same Send site that feeds the global
// per-rank comm stats.
func (t *Task) AddComm(msgs, bytes int64) {
	t.add(ctrMsgs, msgs)
	t.add(ctrBytes, bytes)
}

// AddVCycles credits completed multigrid cycle applications.
func (t *Task) AddVCycles(n int64) { t.add(ctrVCycles, n) }

// AddIterations credits outer Krylov iterations.
func (t *Task) AddIterations(n int64) { t.add(ctrIterations, n) }

// AddRows credits worker-pool row assignments executed for the task.
func (t *Task) AddRows(n int64) { t.add(ctrRows, n) }

// AddCacheHit counts one hierarchy-cache hit for the task.
func (t *Task) AddCacheHit() { t.add(ctrCacheHits, 1) }

// AddCacheMiss counts one hierarchy-cache miss for the task.
func (t *Task) AddCacheMiss() { t.add(ctrCacheMisses, 1) }

// Flops returns the task's accumulated flop count.
func (t *Task) Flops() int64 { return t.value(ctrFlops) }

// Msgs returns the task's accumulated message count.
func (t *Task) Msgs() int64 { return t.value(ctrMsgs) }

// Bytes returns the task's accumulated comm byte count.
func (t *Task) Bytes() int64 { return t.value(ctrBytes) }

// VCycles returns the task's multigrid cycle count.
func (t *Task) VCycles() int64 { return t.value(ctrVCycles) }

// Iterations returns the task's outer Krylov iteration count.
func (t *Task) Iterations() int64 { return t.value(ctrIterations) }

// Rows returns the task's worker-pool row count.
func (t *Task) Rows() int64 { return t.value(ctrRows) }

// CacheHits returns the task's hierarchy-cache hit count.
func (t *Task) CacheHits() int64 { return t.value(ctrCacheHits) }

// CacheMisses returns the task's hierarchy-cache miss count.
func (t *Task) CacheMisses() int64 { return t.value(ctrCacheMisses) }

func (t *Task) value(slot int) int64 {
	if t == nil {
		return 0
	}
	return t.ctrs[slot].v.Load()
}

// record appends one completed span to the task's capture buffer and
// credits its flops. Called from Span.end, i.e. only while recording is
// enabled, on a non-nil task.
func (t *Task) record(ev traceEvent, flops int64) {
	if flops != 0 {
		t.ctrs[ctrFlops].v.Add(flops)
	}
	if t.ring == nil {
		t.drop.Add(1)
		return
	}
	p := t.pos.Add(1) - 1
	if p >= int64(len(t.ring)) {
		t.drop.Add(1)
		return
	}
	t.ring[p] = ev
}

// Dropped counts spans lost to a full (or never-allocated) task ring.
func (t *Task) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.drop.Load()
}

// Spans returns the number of spans captured in the task ring.
func (t *Task) Spans() int64 {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n > int64(len(t.ring)) {
		n = int64(len(t.ring))
	}
	return n
}

// Profile renders the task's recordings as a Profile, so PR 5's report
// writers (log view, JSON, Chrome trace) work unchanged on a single
// request: the /v1/sessions/{id}/trace endpoint is Task.Profile piped
// through WriteChromeTrace. Counter names carry a "task." prefix to
// keep them distinct from the process-global metric namespace.
func (t *Task) Profile() *Profile {
	p := &Profile{TotalNs: now(), Ranks: 1}
	if t == nil {
		return p
	}
	taskCounters := [taskCtrCount]string{
		ctrFlops:       "task.flops",
		ctrMsgs:        "task.msgs",
		ctrBytes:       "task.bytes",
		ctrVCycles:     "task.vcycles",
		ctrIterations:  "task.iterations",
		ctrRows:        "task.pool.rows",
		ctrCacheHits:   "task.cache.hits",
		ctrCacheMisses: "task.cache.misses",
	}
	for slot, name := range taskCounters {
		if v := t.ctrs[slot].v.Load(); v != 0 {
			p.Counters = append(p.Counters, MetricValue{Name: name, Value: v})
		}
	}
	n := t.pos.Load()
	if n > int64(len(t.ring)) {
		n = int64(len(t.ring))
	}
	mu.Lock()
	for _, te := range t.ring[:n] {
		p.Spans = append(p.Spans, TraceSpan{
			Name:    names[te.id],
			Rank:    int(te.rank),
			Depth:   int(te.depth),
			StartNs: te.start,
			DurNs:   te.dur,
		})
		if int(te.rank)+1 > p.Ranks {
			p.Ranks = int(te.rank) + 1
		}
	}
	mu.Unlock()
	p.Dropped = t.drop.Load()
	return p
}

// taskKey is the context key type for task propagation.
type taskKey struct{}

// WithTask returns a context carrying the task. The serve handler
// attaches one task per request; every layer below recovers it with
// FromContext.
func WithTask(ctx context.Context, t *Task) context.Context {
	return context.WithValue(ctx, taskKey{}, t)
}

// FromContext returns the task carried by ctx, or nil. All Task
// methods accept the nil result, so callers never branch.
func FromContext(ctx context.Context) *Task {
	if ctx == nil {
		return nil
	}
	t, ok := ctx.Value(taskKey{}).(*Task)
	if !ok {
		return nil
	}
	return t
}

// idFallback derives distinct ids if the system randomness source is
// unavailable (never observed in practice; rand.Read on all supported
// platforms reads an OS source that cannot fail after boot).
var idFallback atomic.Int64

// randomHex returns n random bytes hex-encoded.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		s := strconv.FormatInt(idFallback.Add(1), 16)
		for len(s) < 2*n {
			s = "0" + s
		}
		return s[:2*n]
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a random 16-byte W3C trace id (32 lowercase hex).
func NewTraceID() string { return randomHex(16) }

// NewSpanID mints a random 8-byte W3C span id (16 lowercase hex).
func NewSpanID() string { return randomHex(8) }

// Traceparent formats a version-00 W3C traceparent header with the
// sampled flag set.
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent parses a version-00 W3C traceparent header into its
// trace id and parent span id. ok is false for malformed headers
// (wrong field count or width, non-hex digits, all-zero ids), in which
// case the caller should mint a fresh trace id.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	// Layout: 2 hex version, '-', 32 hex trace id, '-', 16 hex parent
	// span id, '-', 2 hex flags.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	version := h[0:2]
	traceID = h[3:35]
	parentID = h[36:52]
	flags := h[53:55]
	if !isLowerHex(version) || !isLowerHex(traceID) || !isLowerHex(parentID) || !isLowerHex(flags) {
		return "", "", false
	}
	if version == "ff" || allZero(traceID) || allZero(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
