package obs

import "testing"

// Allocation lock-in for the recording fast paths: zero allocations
// per operation both disabled (the production default) and enabled
// (record-at-End into preallocated buffers). These are the primitives
// every instrumented kernel calls, so any regression here shows up as
// allocation churn across the whole solver stack.

var allocEv = Register("obstest.alloc")

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestRecordingAllocFreeDisabled(t *testing.T) {
	Disable()
	Reset()
	c := NewCounter("obstest.alloc.counter")
	h := NewHistogram("obstest.alloc.hist")
	assertZeroAllocs(t, "span disabled", func() {
		sp := Start(allocEv)
		sp.EndFlops(10)
	})
	assertZeroAllocs(t, "deferred span disabled", func() {
		sp := Start(allocEv)
		defer sp.End()
	})
	assertZeroAllocs(t, "counter disabled", func() { c.Add(1) })
	assertZeroAllocs(t, "histogram disabled", func() { h.Observe(7) })
	assertZeroAllocs(t, "addcomm disabled", func() { AddComm(allocEv, 0, 1, 64) })
	assertZeroAllocs(t, "residual disabled", func() { RecordResidual(1, 0.5) })
}

func TestRecordingAllocFreeEnabled(t *testing.T) {
	EnableWith(Config{Ranks: 2, RingCap: 1 << 16, ResidCap: 1 << 16})
	defer Disable()
	c := NewCounter("obstest.alloc.counter")
	h := NewHistogram("obstest.alloc.hist")
	assertZeroAllocs(t, "span enabled", func() {
		sp := StartRank(allocEv, 1)
		sp.EndFlops(10)
	})
	assertZeroAllocs(t, "deferred span enabled", func() {
		sp := Start(allocEv)
		defer sp.End()
	})
	assertZeroAllocs(t, "counter enabled", func() { c.Add(1) })
	assertZeroAllocs(t, "histogram enabled", func() { h.Observe(7) })
	assertZeroAllocs(t, "addcomm enabled", func() { AddComm(allocEv, 0, 1, 64) })
	assertZeroAllocs(t, "residual enabled", func() { RecordResidual(1, 0.5) })
	// Overflowing the ring must stay allocation-free too (drop path).
	Reset()
	for i := 0; i < 1<<16; i++ {
		Start(allocEv).End()
	}
	assertZeroAllocs(t, "span enabled ring full", func() {
		Start(allocEv).End()
	})
}

// TestTaskRecordingAllocFree locks in the tentpole's overhead contract:
// crediting spans and counters to a request task allocates nothing per
// operation, enabled or disabled, so per-request attribution rides the
// same zero-alloc fast path as the global recorder.
func TestTaskRecordingAllocFree(t *testing.T) {
	Disable()
	Reset()
	offTask := NewTask("")
	assertZeroAllocs(t, "task span disabled", func() {
		sp := StartTask(allocEv, offTask)
		sp.EndFlops(10)
	})
	assertZeroAllocs(t, "task counters disabled", func() {
		offTask.AddFlops(3)
		offTask.AddComm(1, 64)
		offTask.AddVCycles(1)
	})

	EnableWith(Config{Ranks: 2, RingCap: 1 << 16})
	defer Disable()
	task := NewTask("")
	assertZeroAllocs(t, "task span enabled", func() {
		sp := StartRankTask(allocEv, 1, task)
		sp.EndFlops(10)
	})
	assertZeroAllocs(t, "task counters enabled", func() {
		task.AddFlops(3)
		task.AddComm(1, 64)
		task.AddVCycles(1)
	})
	// Overflow the task ring: further spans drop (counted), still
	// allocation-free.
	for i := 0; i < taskRingCap+8; i++ {
		StartTask(allocEv, task).End()
	}
	assertZeroAllocs(t, "task span drop path", func() {
		StartTask(allocEv, task).End()
	})
	if task.Dropped() == 0 {
		t.Errorf("task ring overflow not counted")
	}
	// nil task: the untraced production path.
	assertZeroAllocs(t, "nil task span", func() {
		sp := StartTask(allocEv, nil)
		sp.EndFlops(10)
	})
}
