package obs

// RankStats is one event's accumulated totals on one rank.
type RankStats struct {
	TimeNs int64 `json:"time_ns"`
	Count  int64 `json:"count"`
	Flops  int64 `json:"flops"`
	Msgs   int64 `json:"msgs"`
	Bytes  int64 `json:"bytes"`
}

// EventProfile is one event's stats across all active ranks.
// PerRank has one row per rank (length Profile.Ranks).
type EventProfile struct {
	Name    string      `json:"name"`
	PerRank []RankStats `json:"per_rank"`
}

// active reports whether the event recorded anything.
func (e *EventProfile) active() bool {
	for _, r := range e.PerRank {
		if r.Count != 0 || r.Msgs != 0 || r.Flops != 0 {
			return true
		}
	}
	return false
}

// Totals sums the per-rank rows.
func (e *EventProfile) Totals() RankStats {
	var t RankStats
	for _, r := range e.PerRank {
		t.TimeNs += r.TimeNs
		t.Count += r.Count
		t.Flops += r.Flops
		t.Msgs += r.Msgs
		t.Bytes += r.Bytes
	}
	return t
}

// MaxTimeNs returns the slowest rank's accumulated time.
func (e *EventProfile) MaxTimeNs() int64 {
	var m int64
	for _, r := range e.PerRank {
		if r.TimeNs > m {
			m = r.TimeNs
		}
	}
	return m
}

// MetricValue is one counter or gauge reading.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's non-empty buckets. Bucket i counts
// observations with bit length i (v in [2^(i-1), 2^i)).
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// TraceSpan is one completed span in the capture buffer, exported for
// the Chrome trace writer and JSON profiles.
type TraceSpan struct {
	Name    string `json:"name"`
	Rank    int    `json:"rank"`
	Depth   int    `json:"depth"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// Profile is an immutable copy of everything recorded since the last
// Enable/Reset. Reporters and the perf bridge consume it; taking a
// snapshot does not disturb ongoing recording.
type Profile struct {
	// TotalNs is the wall time from the profile epoch to the snapshot.
	TotalNs int64 `json:"total_ns"`
	// Ranks is the number of ranks that recorded anything (min 1).
	Ranks      int              `json:"ranks"`
	Events     []EventProfile   `json:"events"`
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Residuals  []ResidualPoint  `json:"residuals,omitempty"`
	Levels     []LevelInfo      `json:"levels,omitempty"`
	Spans      []TraceSpan      `json:"spans,omitempty"`
	// Dropped counts spans and residual points lost to full capture
	// buffers. Non-zero means the trace is truncated — never silent.
	Dropped int64 `json:"dropped"`
}

// histogramValue copies one histogram's state under the given display
// name, reporting ok=false when it recorded nothing.
func histogramValue(h *Histogram, name string) (HistogramValue, bool) {
	n := h.n.Load()
	if n == 0 {
		return HistogramValue{}, false
	}
	hv := HistogramValue{Name: name, Count: n, Sum: h.sum.Load(), Buckets: map[int]int64{}}
	for b := range h.buckets {
		if c := h.buckets[b].Load(); c != 0 {
			hv.Buckets[b] = c
		}
	}
	return hv, true
}

// Snapshot copies all recorded data into a Profile.
func Snapshot() *Profile {
	mu.Lock()
	defer mu.Unlock()

	p := &Profile{TotalNs: now()}

	// Active rank count: one past the highest rank with any activity.
	nr := 1
	for e := range names {
		for r := 0; r < MaxRanks; r++ {
			st := &stats[e][r]
			if (st.count.Load() != 0 || st.msgs.Load() != 0 || st.flops.Load() != 0) && r+1 > nr {
				nr = r + 1
			}
		}
	}
	p.Ranks = nr

	for e, name := range names {
		ep := EventProfile{Name: name, PerRank: make([]RankStats, nr)}
		for r := 0; r < nr; r++ {
			st := &stats[e][r]
			ep.PerRank[r] = RankStats{
				TimeNs: st.timeNs.Load(),
				Count:  st.count.Load(),
				Flops:  st.flops.Load(),
				Msgs:   st.msgs.Load(),
				Bytes:  st.bytes.Load(),
			}
		}
		if ep.active() {
			p.Events = append(p.Events, ep)
		}
	}

	for _, c := range counters {
		if v := c.Value(); v != 0 {
			p.Counters = append(p.Counters, MetricValue{Name: c.name, Value: v})
		}
	}
	for _, g := range gauges {
		if v := g.Value(); v != 0 {
			p.Gauges = append(p.Gauges, MetricValue{Name: g.name, Value: v})
		}
	}
	for _, h := range histograms {
		if hv, ok := histogramValue(h, h.name); ok {
			p.Histograms = append(p.Histograms, hv)
		}
	}
	for _, v := range counterVecs {
		v.mu.RLock()
		for _, k := range sortedChildKeys(v.kids) {
			if val := v.kids[k].Value(); val != 0 {
				p.Counters = append(p.Counters, MetricValue{Name: labeledName(v.name, v.keys, k), Value: val})
			}
		}
		v.mu.RUnlock()
	}
	for _, v := range histogramVecs {
		v.mu.RLock()
		for _, k := range sortedChildKeys(v.kids) {
			if hv, ok := histogramValue(v.kids[k], labeledName(v.name, v.keys, k)); ok {
				p.Histograms = append(p.Histograms, hv)
			}
		}
		v.mu.RUnlock()
	}

	if n := residPos.Load(); n > 0 {
		if n > int64(len(resid)) {
			n = int64(len(resid))
		}
		p.Residuals = append(p.Residuals, resid[:n]...)
	}
	p.Levels = append(p.Levels, levels...)

	for r := range rings {
		n := ringPos[r].Load()
		if n > int64(len(rings[r])) {
			n = int64(len(rings[r]))
		}
		for _, te := range rings[r][:n] {
			p.Spans = append(p.Spans, TraceSpan{
				Name:    names[te.id],
				Rank:    int(te.rank),
				Depth:   int(te.depth),
				StartNs: te.start,
				DurNs:   te.dur,
			})
		}
	}
	for r := 0; r < MaxRanks; r++ {
		p.Dropped += dropped[r].Load()
	}
	return p
}

// Event returns the named event's profile, if it recorded anything.
func (p *Profile) Event(name string) (*EventProfile, bool) {
	for i := range p.Events {
		if p.Events[i].Name == name {
			return &p.Events[i], true
		}
	}
	return nil, false
}

// PerRank extracts the named event's per-rank flop, message and byte
// counters as plain slices of length p.Ranks — the shape
// internal/perf's efficiency decomposition consumes, so measured runs
// feed the paper's e^I_s/e^F_s/e_c figures directly.
func (p *Profile) PerRank(name string) (flops, msgs, bytes []int64, ok bool) {
	e, ok := p.Event(name)
	if !ok {
		return nil, nil, nil, false
	}
	flops = make([]int64, len(e.PerRank))
	msgs = make([]int64, len(e.PerRank))
	bytes = make([]int64, len(e.PerRank))
	for r, st := range e.PerRank {
		flops[r] = st.Flops
		msgs[r] = st.Msgs
		bytes[r] = st.Bytes
	}
	return flops, msgs, bytes, true
}

// Counter returns the named counter's value from the snapshot.
func (p *Profile) Counter(name string) int64 {
	for _, c := range p.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
