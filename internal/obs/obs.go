// Package obs is the solver's observability subsystem: a span/event
// tracer, a registry of typed metrics, and reporters that render PETSc
// -log_view-style tables, JSON profiles and Chrome trace_event files.
//
// The package is stdlib-only and follows the allocation-free discipline
// of internal/par/trace.go: every hot-path operation (Start/End spans,
// counter updates, comm byte accounting) is a handful of atomic ops on
// preallocated storage. A single atomic enable flag gates all recording,
// so instrumented kernels stay zero-alloc and effectively free when
// profiling is off — there is no build tag to flip and no wrapper to
// swap; obs.Start returns an inert Span when disabled.
//
// Event and metric names are package-unique string constants registered
// once at package init (the obs-discipline lint rule enforces this), so
// recording never formats strings.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// MaxRanks bounds per-rank attribution. Ranks at or above the bound
// still run correctly; their samples are counted as dropped.
const MaxRanks = 64

// maxEvents bounds the registry. Registration panics beyond it; event
// IDs index fixed arrays so recording needs no bounds branching.
const maxEvents = 128

// EventID identifies a registered span/event. IDs are dense indices
// into per-event stat tables.
type EventID int32

// eventStats accumulates one event's totals on one rank. All fields
// are atomics so rank goroutines record concurrently without locks.
type eventStats struct {
	timeNs atomic.Int64
	count  atomic.Int64
	flops  atomic.Int64
	msgs   atomic.Int64
	bytes  atomic.Int64
}

// traceEvent is one completed span in a rank's capture buffer.
type traceEvent struct {
	start int64 // ns since epoch
	dur   int64 // ns
	id    EventID
	rank  int32
	depth int32
}

// Config sizes the capture buffers allocated by EnableWith.
type Config struct {
	// Ranks is the number of ranks to allocate trace buffers for
	// (default 16). Per-event stats always cover MaxRanks.
	Ranks int
	// RingCap is the per-rank trace buffer capacity in events
	// (default 4096). Once full, further spans update stats but are
	// dropped from the trace; drops are counted, never silent.
	RingCap int
	// ResidCap caps the recorded convergence history (default 4096).
	ResidCap int
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 16
	}
	if c.Ranks > MaxRanks {
		c.Ranks = MaxRanks
	}
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	if c.ResidCap <= 0 {
		c.ResidCap = 4096
	}
	return c
}

var (
	on atomic.Bool

	// mu guards registration, enable/disable and the slow aggregation
	// paths (Snapshot, RecordLevel). The record fast paths never take it.
	mu    sync.Mutex
	names []string
	ids   map[string]EventID

	stats [maxEvents][MaxRanks]eventStats

	rings   [][]traceEvent // [rank][slot], allocated by Enable
	ringPos [MaxRanks]atomic.Int64
	dropped [MaxRanks]atomic.Int64
	depth   [MaxRanks]atomic.Int32

	epoch time.Time
)

// now is the monotonic clock: ns since the profile epoch. time.Since
// reads the monotonic reading of epoch, so wall-clock steps never skew
// durations, and the call is allocation-free.
func now() int64 { return int64(time.Since(epoch)) }

// On reports whether recording is enabled. Instrumented kernels may
// use it to skip argument computation; Start/End and the metric types
// already check it internally.
func On() bool { return on.Load() }

// Enable turns recording on with default buffer sizes.
func Enable() { EnableWith(Config{}) }

// EnableWith allocates capture buffers per cfg, resets all recorded
// data and turns recording on. Safe to call again; buffers are
// reallocated only when the requested sizes change.
func EnableWith(cfg Config) {
	cfg = cfg.withDefaults()
	mu.Lock()
	defer mu.Unlock()
	if len(rings) != cfg.Ranks || len(rings[0]) != cfg.RingCap {
		rings = make([][]traceEvent, cfg.Ranks)
		for r := range rings {
			rings[r] = make([]traceEvent, cfg.RingCap)
		}
	}
	if len(resid) != cfg.ResidCap {
		resid = make([]ResidualPoint, cfg.ResidCap)
	}
	resetLocked()
	on.Store(true)
}

// Disable turns recording off. Recorded data stays available to
// Snapshot until the next Enable or Reset.
func Disable() { on.Store(false) }

// Reset clears all recorded data (stats, traces, metrics, residual
// history, level info) and restarts the profile epoch. Registrations
// survive. Callable while enabled, e.g. between benchmark phases.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	resetLocked()
}

func resetLocked() {
	for e := range names {
		for r := 0; r < MaxRanks; r++ {
			st := &stats[e][r]
			st.timeNs.Store(0)
			st.count.Store(0)
			st.flops.Store(0)
			st.msgs.Store(0)
			st.bytes.Store(0)
		}
	}
	for r := 0; r < MaxRanks; r++ {
		ringPos[r].Store(0)
		dropped[r].Store(0)
		depth[r].Store(0)
	}
	residPos.Store(0)
	levels = levels[:0]
	resetMetricsLocked()
	epoch = time.Now()
}

// Register interns an event name and returns its ID. Idempotent:
// re-registering a name returns the existing ID. Call from package
// variable initializers with a string constant; the obs-discipline
// lint rule rejects computed names.
func Register(name string) EventID {
	mu.Lock()
	defer mu.Unlock()
	if ids == nil {
		ids = make(map[string]EventID)
	}
	if id, ok := ids[name]; ok {
		return id
	}
	if len(names) >= maxEvents {
		panic("obs: event registry full (maxEvents)")
	}
	id := EventID(len(names))
	names = append(names, name)
	ids[name] = id
	return id
}

// Span is an open interval returned by Start. It is a value type: no
// allocation, safe to copy. A Span from a disabled Start is inert and
// End on it is a no-op, so callers never branch on On themselves.
type Span struct {
	start int64
	id    EventID
	rank  int32
	depth int32
	task  *Task
}

// Start opens a span for id on rank 0 (the serial/driver rank).
func Start(id EventID) Span { return StartRankTask(id, 0, nil) }

// StartRank opens a span for id attributed to the given rank. Rank
// goroutines (halo exchange, reducers) use this so the trace timeline
// and the per-rank stat rows line up with the SPMD decomposition.
func StartRank(id EventID, rank int) Span { return StartRankTask(id, rank, nil) }

// StartTask opens a span on rank 0 additionally attributed to a
// request task: End credits the global per-rank stats exactly as Start
// does, and also appends the span (and its flops) to the task. A nil
// task makes StartTask identical to Start, so instrumented call sites
// never branch on whether a request scope is present.
func StartTask(id EventID, t *Task) Span { return StartRankTask(id, 0, t) }

// StartRankTask is StartRank with request-task attribution (see
// StartTask).
func StartRankTask(id EventID, rank int, t *Task) Span {
	if !on.Load() || rank < 0 || rank >= MaxRanks {
		return Span{rank: -1}
	}
	d := depth[rank].Add(1) - 1
	return Span{start: now(), id: id, rank: int32(rank), depth: d, task: t}
}

// End closes the span, accumulating its duration and count into the
// event's per-rank stats and appending it to the rank's trace buffer.
func (s Span) End() { s.end(0) }

// EndFlops closes the span and additionally credits flops floating
// point operations to the event on the span's rank.
func (s Span) EndFlops(flops int64) { s.end(flops) }

func (s Span) end(flops int64) {
	if s.rank < 0 {
		return
	}
	dur := now() - s.start
	depth[s.rank].Add(-1)
	st := &stats[s.id][s.rank]
	st.timeNs.Add(dur)
	st.count.Add(1)
	if flops != 0 {
		st.flops.Add(flops)
	}
	ev := traceEvent{start: s.start, dur: dur, id: s.id, rank: s.rank, depth: s.depth}
	if s.task != nil {
		s.task.record(ev, flops)
	}
	r := int(s.rank)
	if r >= len(rings) {
		dropped[r].Add(1)
		return
	}
	ring := rings[r]
	p := ringPos[r].Add(1) - 1
	if p >= int64(len(ring)) {
		dropped[r].Add(1)
		return
	}
	ring[p] = ev
}

// AddFlops credits flops to an event on a rank without a span, for
// call sites that account work outside a timed region.
func AddFlops(id EventID, rank int, flops int64) {
	if !on.Load() || rank < 0 || rank >= MaxRanks {
		return
	}
	stats[id][rank].flops.Add(flops)
}

// AddCount credits n occurrences to an event on a rank without opening
// a span. The worker pool uses it to count rows assigned per worker, so
// the log view exposes partition balance without timing every chunk
// twice.
func AddCount(id EventID, rank int, n int64) {
	if !on.Load() || rank < 0 || rank >= MaxRanks {
		return
	}
	stats[id][rank].count.Add(n)
}

// AddComm credits message and byte counts to an event on a rank. The
// par communicator calls this once per Send, so per-rank traffic is
// measured rather than modeled.
func AddComm(id EventID, rank int, msgs, bytes int64) {
	if !on.Load() || rank < 0 || rank >= MaxRanks {
		return
	}
	st := &stats[id][rank]
	st.msgs.Add(msgs)
	st.bytes.Add(bytes)
}
