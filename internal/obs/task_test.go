package obs

import (
	"context"
	"strings"
	"testing"
)

// TestParseTraceparentRoundTrip checks that minted traceparents parse
// back to their own ids and that each mint is unique.
func TestParseTraceparentRoundTrip(t *testing.T) {
	tr, sp := NewTraceID(), NewSpanID()
	if len(tr) != 32 || len(sp) != 16 {
		t.Fatalf("id lengths %d/%d, want 32/16", len(tr), len(sp))
	}
	h := Traceparent(tr, sp)
	gotTr, gotSp, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("minted traceparent %q does not parse", h)
	}
	if gotTr != tr || gotSp != sp {
		t.Fatalf("round trip (%q, %q) != (%q, %q)", gotTr, gotSp, tr, sp)
	}
	if NewTraceID() == tr {
		t.Fatalf("two minted trace ids collide")
	}
}

// TestParseTraceparentRejects enumerates malformed headers: every one
// must be rejected, never half-parsed.
func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("reference header rejected")
	}
	bad := []string{
		"",
		"garbage",
		valid + "0",            // too long
		valid[:54],             // too short
		strings.ToUpper(valid), // uppercase hex
		"ff" + valid[2:],       // forbidden version
		"00-" + strings.Repeat("0", 32) + valid[35:],              // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + "-01",              // all-zero span id
		strings.Replace(valid, "-", "_", 1),                       // wrong separator
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("malformed header %q accepted", h)
		}
	}
}

// TestNilTaskSafe checks every Task method is a safe no-op on nil —
// the untraced-path contract that lets solver code call task methods
// unconditionally.
func TestNilTaskSafe(t *testing.T) {
	var task *Task
	task.AddFlops(1)
	task.AddComm(1, 2)
	task.AddVCycles(1)
	task.AddIterations(1)
	task.AddRows(1)
	task.AddCacheHit()
	task.AddCacheMiss()
	if task.Flops() != 0 || task.Msgs() != 0 || task.Bytes() != 0 || task.VCycles() != 0 {
		t.Fatalf("nil task reports non-zero counters")
	}
	if task.TraceID() != "" {
		t.Fatalf("nil task reports a trace id")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yields task %v", got)
	}
	if got := FromContext(WithTask(context.Background(), nil)); got != nil {
		t.Fatalf("nil-task context yields task %v", got)
	}
}

// TestTaskGating checks the counters only accumulate while recording is
// on: tasks minted with obs off still carry a trace id (logging and
// traceparent echo need one) but never count.
func TestTaskGating(t *testing.T) {
	Disable()
	off := NewTask("")
	if off.TraceID() == "" {
		t.Fatalf("obs-off task has no trace id")
	}
	off.AddFlops(100)
	if off.Flops() != 0 {
		t.Fatalf("obs-off task counted %d flops", off.Flops())
	}

	EnableWith(Config{})
	defer Disable()
	on := NewTask("deadbeefdeadbeefdeadbeefdeadbeef")
	if on.TraceID() != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("explicit trace id not adopted: %q", on.TraceID())
	}
	on.AddFlops(100)
	on.AddComm(2, 64)
	if on.Flops() != 100 || on.Msgs() != 2 || on.Bytes() != 64 {
		t.Fatalf("obs-on task counters %d/%d/%d", on.Flops(), on.Msgs(), on.Bytes())
	}
}

// TestTaskSpansAndProfile checks that spans started with a task land in
// the task's private ring and surface through its Profile.
func TestTaskSpansAndProfile(t *testing.T) {
	EnableWith(Config{})
	defer Disable()
	ev := Register("obs.test.task_span")
	task := NewTask("")

	sp := StartTask(ev, task)
	sp.EndFlops(42)
	StartRankTask(ev, 1, task).End()

	if got := task.Flops(); got != 42 {
		t.Fatalf("task flops = %d, want 42", got)
	}
	if n := task.Spans(); n != 2 {
		t.Fatalf("task ring holds %d spans, want 2", n)
	}
	p := task.Profile()
	if len(p.Spans) != 2 {
		t.Fatalf("task profile holds %d spans, want 2", len(p.Spans))
	}
	if p.Spans[0].Name != "obs.test.task_span" {
		t.Fatalf("task span name %q", p.Spans[0].Name)
	}
	var flops int64
	for _, c := range p.Counters {
		if c.Name == "task.flops" {
			flops = c.Value
		}
	}
	if flops != 42 {
		t.Fatalf("task profile flops counter = %d, want 42", flops)
	}
	if task.Dropped() != 0 {
		t.Fatalf("task dropped %d spans unexpectedly", task.Dropped())
	}
}

// TestWritePrometheusFormat checks the exposition output shape without
// the HTTP layer: families typed, counters suffixed exactly once,
// histogram buckets cumulative and capped by +Inf == _count.
func TestWritePrometheusFormat(t *testing.T) {
	EnableWith(Config{})
	defer Disable()
	c := NewCounter("obs.test.prom.counter.total")
	c.Add(3)
	h := NewHistogram("obs.test.prom.hist")
	h.Observe(1)
	h.Observe(3)
	h.Observe(300)
	vec := NewCounterVec("obs.test.prom.vec", "kind")
	vec.With(`sp"icy\`).Inc()

	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, w := range []string{
		"# TYPE prometheus_obs_test_prom_counter_total counter",
		"prometheus_obs_test_prom_counter_total 3",
		"# TYPE prometheus_obs_test_prom_hist histogram",
		`prometheus_obs_test_prom_hist_bucket{le="1"} 1`,
		`prometheus_obs_test_prom_hist_bucket{le="3"} 2`,
		`prometheus_obs_test_prom_hist_bucket{le="+Inf"} 3`,
		"prometheus_obs_test_prom_hist_sum 304",
		"prometheus_obs_test_prom_hist_count 3",
		`prometheus_obs_test_prom_vec_total{kind="sp\"icy\\"} 1`,
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition lacks %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "_total_total") {
		t.Fatalf("doubled _total suffix in exposition:\n%s", out)
	}
}
