package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Test events and metrics; names are package-unique constants as the
// obs-discipline lint requires.
var (
	testEvA = Register("obstest.a")
	testEvB = Register("obstest.b")

	testCounter = NewCounter("obstest.counter")
	testGauge   = NewGauge("obstest.gauge")
	testHist    = NewHistogram("obstest.hist")
)

func TestRegisterIdempotent(t *testing.T) {
	if id := Register("obstest.a"); id != testEvA {
		t.Fatalf("re-registering returned %d, want %d", id, testEvA)
	}
	if testEvA == testEvB {
		t.Fatalf("distinct names share ID %d", testEvA)
	}
	if c := NewCounter("obstest.counter"); c != testCounter {
		t.Fatalf("re-registering counter returned a new instance")
	}
}

func TestMetricKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("registering a counter name as a gauge did not panic")
		}
	}()
	NewGauge("obstest.counter")
}

func TestDisabledRecordingIsInert(t *testing.T) {
	Disable()
	Reset()
	sp := Start(testEvA)
	sp.EndFlops(100)
	testCounter.Add(5)
	testHist.Observe(9)
	RecordResidual(0, 1.0)
	Enable()
	defer Disable()
	p := Snapshot()
	if _, ok := p.Event("obstest.a"); ok {
		t.Fatalf("disabled span was recorded")
	}
	if p.Counter("obstest.counter") != 0 {
		t.Fatalf("disabled counter add was recorded")
	}
	if len(p.Residuals) != 0 {
		t.Fatalf("disabled residual was recorded")
	}
}

func TestSpanAccumulation(t *testing.T) {
	EnableWith(Config{Ranks: 4, RingCap: 64})
	defer Disable()

	for i := 0; i < 3; i++ {
		sp := StartRank(testEvA, 1)
		inner := StartRank(testEvB, 1)
		inner.End()
		sp.EndFlops(10)
	}
	AddComm(testEvA, 1, 2, 100)
	AddFlops(testEvA, 3, 7)

	p := Snapshot()
	e, ok := p.Event("obstest.a")
	if !ok {
		t.Fatalf("event obstest.a missing from snapshot")
	}
	if p.Ranks != 4 {
		t.Fatalf("Ranks = %d, want 4 (rank 3 recorded flops)", p.Ranks)
	}
	st := e.PerRank[1]
	if st.Count != 3 || st.Flops != 30 || st.Msgs != 2 || st.Bytes != 100 {
		t.Fatalf("rank 1 stats = %+v, want count 3, flops 30, msgs 2, bytes 100", st)
	}
	if st.TimeNs <= 0 {
		t.Fatalf("rank 1 time = %d, want > 0", st.TimeNs)
	}
	if e.PerRank[3].Flops != 7 {
		t.Fatalf("rank 3 flops = %d, want 7", e.PerRank[3].Flops)
	}
	tot := e.Totals()
	if tot.Flops != 37 {
		t.Fatalf("total flops = %d, want 37", tot.Flops)
	}

	// The nested span must carry depth 1 in the trace.
	foundNested := false
	for _, s := range p.Spans {
		if s.Name == "obstest.b" && s.Depth == 1 && s.Rank == 1 {
			foundNested = true
		}
	}
	if !foundNested {
		t.Fatalf("nested obstest.b span with depth 1 missing from %d spans", len(p.Spans))
	}

	// The perf bridge shape.
	flops, msgs, bytesC, ok := p.PerRank("obstest.a")
	if !ok || len(flops) != 4 {
		t.Fatalf("PerRank: ok=%v len=%d, want 4 ranks", ok, len(flops))
	}
	if flops[1] != 30 || msgs[1] != 2 || bytesC[1] != 100 {
		t.Fatalf("PerRank rank 1 = %d/%d/%d, want 30/2/100", flops[1], msgs[1], bytesC[1])
	}
}

func TestRingOverflowCountsDropped(t *testing.T) {
	EnableWith(Config{Ranks: 1, RingCap: 4})
	defer Disable()
	for i := 0; i < 10; i++ {
		Start(testEvA).End()
	}
	p := Snapshot()
	if len(p.Spans) != 4 {
		t.Fatalf("spans = %d, want ring cap 4", len(p.Spans))
	}
	if p.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", p.Dropped)
	}
	e, _ := p.Event("obstest.a")
	if e.PerRank[0].Count != 10 {
		t.Fatalf("stats count = %d, want all 10 despite ring overflow", e.PerRank[0].Count)
	}
}

func TestMetricsAndResiduals(t *testing.T) {
	EnableWith(Config{ResidCap: 8})
	defer Disable()

	testCounter.Add(3)
	testCounter.Inc()
	testGauge.Set(42)
	testHist.Observe(5) // bit length 3
	testHist.Observe(7) // bit length 3
	RecordResidual(0, 1.0)
	RecordResidual(1, 0.5)
	RecordLevel(0, 100, 1000, "csr")
	RecordLevel(1, 30, 300, "bsr")
	RecordLevel(1, 31, 301, "bsr") // overwrite

	p := Snapshot()
	if p.Counter("obstest.counter") != 4 {
		t.Fatalf("counter = %d, want 4", p.Counter("obstest.counter"))
	}
	var g int64
	for _, m := range p.Gauges {
		if m.Name == "obstest.gauge" {
			g = m.Value
		}
	}
	if g != 42 {
		t.Fatalf("gauge = %d, want 42", g)
	}
	var hv *HistogramValue
	for i := range p.Histograms {
		if p.Histograms[i].Name == "obstest.hist" {
			hv = &p.Histograms[i]
		}
	}
	if hv == nil || hv.Count != 2 || hv.Sum != 12 || hv.Buckets[3] != 2 {
		t.Fatalf("histogram = %+v, want count 2, sum 12, bucket[3]=2", hv)
	}
	if len(p.Residuals) != 2 || p.Residuals[1].Norm != 0.5 {
		t.Fatalf("residuals = %+v", p.Residuals)
	}
	if len(p.Levels) != 2 || p.Levels[1].Rows != 31 {
		t.Fatalf("levels = %+v, want overwrite of level 1", p.Levels)
	}

	// Reset clears everything but keeps registrations.
	Reset()
	p = Snapshot()
	if p.Counter("obstest.counter") != 0 || len(p.Residuals) != 0 || len(p.Levels) != 0 {
		t.Fatalf("reset left data behind: %+v", p)
	}
}

func TestReporters(t *testing.T) {
	EnableWith(Config{})
	defer Disable()
	sp := Start(testEvA)
	sp.EndFlops(1000)
	AddComm(testEvA, 0, 3, 123)
	testCounter.Add(2)
	RecordResidual(0, 1.0)
	RecordResidual(1, 1e-6)
	RecordLevel(0, 10, 50, "csr")
	p := Snapshot()

	var lv bytes.Buffer
	if err := p.WriteLogView(&lv); err != nil {
		t.Fatalf("WriteLogView: %v", err)
	}
	out := lv.String()
	for _, want := range []string{"obstest.a", "Mflop/s", "obstest.counter", "Convergence", "level"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log view missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Profile
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("profile JSON does not round-trip: %v", err)
	}
	if back.Counter("obstest.counter") != 2 {
		t.Fatalf("round-tripped counter = %d, want 2", back.Counter("obstest.counter"))
	}

	var tr bytes.Buffer
	if err := p.WriteChromeTrace(&tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(tr.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" || len(chrome.TraceEvents) == 0 {
		t.Fatalf("chrome trace = unit %q, %d events", chrome.DisplayTimeUnit, len(chrome.TraceEvents))
	}
	if ev := chrome.TraceEvents[0]; ev.Ph != "X" || ev.Name == "" {
		t.Fatalf("chrome event = %+v, want complete-event ph X", ev)
	}
}

func TestOutOfRangeRankIsSafe(t *testing.T) {
	EnableWith(Config{Ranks: 2})
	defer Disable()
	StartRank(testEvA, -1).End()
	StartRank(testEvA, MaxRanks).EndFlops(5)
	AddFlops(testEvA, MaxRanks+3, 5)
	AddComm(testEvA, -2, 1, 1)
	p := Snapshot()
	if e, ok := p.Event("obstest.a"); ok {
		t.Fatalf("out-of-range ranks recorded stats: %+v", e)
	}
}
