package obs

import (
	"expvar"
	"sync"
)

var expvarOnce sync.Once

// PublishExpvar exposes the live profile under the expvar variable
// "prometheus_obs" (served at /debug/vars by net/http once a server
// runs). Each scrape takes a fresh Snapshot, so long-running solves
// can be watched without stopping them. Idempotent.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("prometheus_obs", expvar.Func(func() any {
			return Snapshot()
		}))
	})
}
