package obs

import (
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (V-cycle applies,
// Krylov iterations, halo exchanges). Updates are atomic and only
// recorded while obs is enabled, so an instrumented hot path costs one
// atomic load when profiling is off.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n when recording is enabled.
func (c *Counter) Add(n int64) {
	if on.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one when recording is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a last-value metric (per-level rows, active ranks).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the value when recording is enabled.
func (g *Gauge) Set(v int64) {
	if on.Load() {
		g.v.Store(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations v with bit length i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a log2-bucketed distribution (message sizes). Fixed
// bucket count, atomic updates, no allocation per observation.
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	n       atomic.Int64
}

// Observe records one sample when recording is enabled. Negative
// samples land in bucket 0.
func (h *Histogram) Observe(v int64) {
	if !on.Load() {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// labelSep joins label values into child map keys. Label values on
// this registry are protocol tokens (routes, status codes, storage
// modes), never free text, so the unit separator cannot collide.
const labelSep = "\x1f"

// CounterVec is a family of counters sharing one name and a fixed
// label-key set (request totals by route and status). Children are
// interned on first use; the steady-state update path is one RLock map
// hit plus the child's atomic add.
type CounterVec struct {
	name string
	keys []string
	mu   sync.RWMutex
	kids map[string]*Counter
}

// Name returns the registered family name.
func (v *CounterVec) Name() string { return v.name }

// With returns the child counter for the given label values (one per
// registered key, in key order), creating it on first use. It panics
// on a value-count mismatch: a short label set would silently merge
// distinct series.
func (v *CounterVec) With(vals ...string) *Counter {
	return v.child(strings.Join(checkLabels(v.name, v.keys, vals), labelSep))
}

func (v *CounterVec) child(k string) *Counter {
	v.mu.RLock()
	c, ok := v.kids[k]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[k]; ok {
		return c
	}
	c = &Counter{name: v.name}
	v.kids[k] = c
	return c
}

// HistogramVec is a family of log2 histograms sharing one name and a
// fixed label-key set (request latency by route and status).
type HistogramVec struct {
	name string
	keys []string
	mu   sync.RWMutex
	kids map[string]*Histogram
}

// Name returns the registered family name.
func (v *HistogramVec) Name() string { return v.name }

// With returns the child histogram for the given label values,
// creating it on first use. Panics on a value-count mismatch.
func (v *HistogramVec) With(vals ...string) *Histogram {
	k := strings.Join(checkLabels(v.name, v.keys, vals), labelSep)
	v.mu.RLock()
	h, ok := v.kids[k]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[k]; ok {
		return h
	}
	h = &Histogram{name: v.name}
	v.kids[k] = h
	return h
}

func checkLabels(name string, keys, vals []string) []string {
	if len(vals) != len(keys) {
		panic("obs: label value count mismatch for metric " + name)
	}
	return vals
}

// labeledName renders a vec child's display name from its joined label
// values: name{key1="v1",key2="v2"}.
func labeledName(name string, keys []string, joined string) string {
	vals := strings.Split(joined, labelSep)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(vals[i])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// sortedChildKeys returns map keys in sorted order, so snapshots and
// exposition render vec children deterministically.
func sortedChildKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

var (
	counters      []*Counter
	gauges        []*Gauge
	histograms    []*Histogram
	counterVecs   []*CounterVec
	histogramVecs []*HistogramVec
	metricIdx     map[string]int // name -> kind-local index, kind in high bits
)

const (
	kindCounter = iota << 28
	kindGauge
	kindHistogram
	kindCounterVec
	kindHistogramVec
	metricKindMask = 7 << 28
	metricIdxMask  = 1<<28 - 1
)

// NewCounter registers (or returns the existing) counter under name.
// Names share one namespace with gauges, histograms and events; the
// obs-discipline lint rule keeps them package-unique string constants.
func NewCounter(name string) *Counter {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindCounter {
		return counters[i&metricIdxMask]
	}
	c := &Counter{name: name}
	registerMetricLocked(name, kindCounter|len(counters))
	counters = append(counters, c)
	return c
}

// NewGauge registers (or returns the existing) gauge under name.
func NewGauge(name string) *Gauge {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindGauge {
		return gauges[i&metricIdxMask]
	}
	g := &Gauge{name: name}
	registerMetricLocked(name, kindGauge|len(gauges))
	gauges = append(gauges, g)
	return g
}

// NewHistogram registers (or returns the existing) histogram under name.
func NewHistogram(name string) *Histogram {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindHistogram {
		return histograms[i&metricIdxMask]
	}
	h := &Histogram{name: name}
	registerMetricLocked(name, kindHistogram|len(histograms))
	histograms = append(histograms, h)
	return h
}

// NewCounterVec registers (or returns the existing) labeled counter
// family under name with the given label keys. Children are created on
// first With and live for the registry's lifetime, so a steady-state
// request path costs one map lookup per update — no per-request
// registration and no formatted metric names (the obs-discipline rule
// keeps the family name a tree-unique constant; label values may vary).
func NewCounterVec(name string, keys ...string) *CounterVec {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindCounterVec {
		return counterVecs[i&metricIdxMask]
	}
	v := &CounterVec{name: name, keys: append([]string(nil), keys...), kids: make(map[string]*Counter)}
	registerMetricLocked(name, kindCounterVec|len(counterVecs))
	counterVecs = append(counterVecs, v)
	return v
}

// NewHistogramVec registers (or returns the existing) labeled
// histogram family under name with the given label keys.
func NewHistogramVec(name string, keys ...string) *HistogramVec {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindHistogramVec {
		return histogramVecs[i&metricIdxMask]
	}
	v := &HistogramVec{name: name, keys: append([]string(nil), keys...), kids: make(map[string]*Histogram)}
	registerMetricLocked(name, kindHistogramVec|len(histogramVecs))
	histogramVecs = append(histogramVecs, v)
	return v
}

func registerMetricLocked(name string, idx int) {
	if metricIdx == nil {
		metricIdx = make(map[string]int)
	}
	if _, dup := metricIdx[name]; dup {
		panic("obs: metric name registered with two kinds: " + name)
	}
	metricIdx[name] = idx
}

func resetMetricsLocked() {
	for _, c := range counters {
		c.v.Store(0)
	}
	for _, g := range gauges {
		g.v.Store(0)
	}
	for _, h := range histograms {
		resetHistogram(h)
	}
	for _, v := range counterVecs {
		v.mu.Lock()
		for _, c := range v.kids {
			c.v.Store(0)
		}
		v.mu.Unlock()
	}
	for _, v := range histogramVecs {
		v.mu.Lock()
		for _, h := range v.kids {
			resetHistogram(h)
		}
		v.mu.Unlock()
	}
}

func resetHistogram(h *Histogram) {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.n.Store(0)
}

// ResidualPoint is one entry of the Krylov convergence history.
type ResidualPoint struct {
	Iter int     `json:"iter"`
	Norm float64 `json:"norm"`
	TNs  int64   `json:"t_ns"`
}

var (
	resid    []ResidualPoint // preallocated by Enable
	residPos atomic.Int64
)

// RecordResidual appends one Krylov residual norm to the convergence
// history. Allocation-free: the history buffer is preallocated at
// Enable and overflow is counted as dropped on rank 0.
func RecordResidual(iter int, norm float64) {
	if !on.Load() {
		return
	}
	p := residPos.Add(1) - 1
	if p >= int64(len(resid)) {
		dropped[0].Add(1)
		return
	}
	resid[p] = ResidualPoint{Iter: iter, Norm: norm, TNs: now()}
}

// LevelInfo describes one multigrid level's operator as built.
type LevelInfo struct {
	Level   int    `json:"level"`
	Rows    int    `json:"rows"`
	NNZ     int    `json:"nnz"`
	Storage string `json:"storage"`
}

var levels []LevelInfo

// RecordLevel records a multigrid level's size and storage kind.
// Setup-path only (takes the registry lock); not for hot loops.
func RecordLevel(level, rows, nnz int, storage string) {
	if !on.Load() {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range levels {
		if levels[i].Level == level {
			levels[i] = LevelInfo{Level: level, Rows: rows, NNZ: nnz, Storage: storage}
			return
		}
	}
	levels = append(levels, LevelInfo{Level: level, Rows: rows, NNZ: nnz, Storage: storage})
}
