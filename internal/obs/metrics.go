package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (V-cycle applies,
// Krylov iterations, halo exchanges). Updates are atomic and only
// recorded while obs is enabled, so an instrumented hot path costs one
// atomic load when profiling is off.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n when recording is enabled.
func (c *Counter) Add(n int64) {
	if on.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one when recording is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a last-value metric (per-level rows, active ranks).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the value when recording is enabled.
func (g *Gauge) Set(v int64) {
	if on.Load() {
		g.v.Store(v)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations v with bit length i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a log2-bucketed distribution (message sizes). Fixed
// bucket count, atomic updates, no allocation per observation.
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	n       atomic.Int64
}

// Observe records one sample when recording is enabled. Negative
// samples land in bucket 0.
func (h *Histogram) Observe(v int64) {
	if !on.Load() {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

var (
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	metricIdx  map[string]int // name -> kind-local index, kind in high bits
)

const (
	kindCounter = iota << 28
	kindGauge
	kindHistogram
	metricKindMask = 3 << 28
	metricIdxMask  = 1<<28 - 1
)

// NewCounter registers (or returns the existing) counter under name.
// Names share one namespace with gauges, histograms and events; the
// obs-discipline lint rule keeps them package-unique string constants.
func NewCounter(name string) *Counter {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindCounter {
		return counters[i&metricIdxMask]
	}
	c := &Counter{name: name}
	registerMetricLocked(name, kindCounter|len(counters))
	counters = append(counters, c)
	return c
}

// NewGauge registers (or returns the existing) gauge under name.
func NewGauge(name string) *Gauge {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindGauge {
		return gauges[i&metricIdxMask]
	}
	g := &Gauge{name: name}
	registerMetricLocked(name, kindGauge|len(gauges))
	gauges = append(gauges, g)
	return g
}

// NewHistogram registers (or returns the existing) histogram under name.
func NewHistogram(name string) *Histogram {
	mu.Lock()
	defer mu.Unlock()
	if i, ok := metricIdx[name]; ok && i&metricKindMask == kindHistogram {
		return histograms[i&metricIdxMask]
	}
	h := &Histogram{name: name}
	registerMetricLocked(name, kindHistogram|len(histograms))
	histograms = append(histograms, h)
	return h
}

func registerMetricLocked(name string, idx int) {
	if metricIdx == nil {
		metricIdx = make(map[string]int)
	}
	if _, dup := metricIdx[name]; dup {
		panic("obs: metric name registered with two kinds: " + name)
	}
	metricIdx[name] = idx
}

func resetMetricsLocked() {
	for _, c := range counters {
		c.v.Store(0)
	}
	for _, g := range gauges {
		g.v.Store(0)
	}
	for _, h := range histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
}

// ResidualPoint is one entry of the Krylov convergence history.
type ResidualPoint struct {
	Iter int     `json:"iter"`
	Norm float64 `json:"norm"`
	TNs  int64   `json:"t_ns"`
}

var (
	resid    []ResidualPoint // preallocated by Enable
	residPos atomic.Int64
)

// RecordResidual appends one Krylov residual norm to the convergence
// history. Allocation-free: the history buffer is preallocated at
// Enable and overflow is counted as dropped on rank 0.
func RecordResidual(iter int, norm float64) {
	if !on.Load() {
		return
	}
	p := residPos.Add(1) - 1
	if p >= int64(len(resid)) {
		dropped[0].Add(1)
		return
	}
	resid[p] = ResidualPoint{Iter: iter, Norm: norm, TNs: now()}
}

// LevelInfo describes one multigrid level's operator as built.
type LevelInfo struct {
	Level   int    `json:"level"`
	Rows    int    `json:"rows"`
	NNZ     int    `json:"nnz"`
	Storage string `json:"storage"`
}

var levels []LevelInfo

// RecordLevel records a multigrid level's size and storage kind.
// Setup-path only (takes the registry lock); not for hot loops.
func RecordLevel(level, rows, nnz int, storage string) {
	if !on.Load() {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range levels {
		if levels[i].Level == level {
			levels[i] = LevelInfo{Level: level, Rows: rows, NNZ: nnz, Storage: storage}
			return
		}
	}
	levels = append(levels, LevelInfo{Level: level, Rows: rows, NNZ: nnz, Storage: storage})
}
