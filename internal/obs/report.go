package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteLogView renders the profile as a PETSc -log_view-style event
// table: per event the call count, max and average per-rank time, the
// max/avg load imbalance ratio, total flops and the achieved Mflop/s
// (total flops over the slowest rank's time), message count, bytes,
// and the share of total wall time. Events print in decreasing
// max-time order. Report paths may allocate freely — only recording
// is allocation-bound.
func (p *Profile) WriteLogView(w io.Writer) error {
	evs := make([]EventProfile, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool {
		return evs[i].MaxTimeNs() > evs[j].MaxTimeNs()
	})

	if _, err := fmt.Fprintf(w, "Event log (%d ranks, %.4gs total):\n", p.Ranks, float64(p.TotalNs)/1e9); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-26s %8s %10s %10s %6s %12s %9s %8s %12s %5s\n",
		"Event", "Count", "Max(s)", "Avg(s)", "Ratio", "Flops", "Mflop/s", "Msgs", "Bytes", "%T")
	for i := range evs {
		e := &evs[i]
		t := e.Totals()
		maxNs := e.MaxTimeNs()
		avgNs := float64(t.TimeNs) / float64(len(e.PerRank))
		ratio := 0.0
		if avgNs > 0 {
			ratio = float64(maxNs) / avgNs
		}
		mflops := 0.0
		if maxNs > 0 {
			mflops = float64(t.Flops) / float64(maxNs) * 1e9 / 1e6
		}
		pct := 0.0
		if p.TotalNs > 0 {
			pct = 100 * float64(maxNs) / float64(p.TotalNs)
		}
		fmt.Fprintf(w, "%-26s %8d %10.4g %10.4g %6.2f %12d %9.0f %8d %12d %5.1f\n",
			e.Name, t.Count, float64(maxNs)/1e9, avgNs/1e9, ratio, t.Flops, mflops, t.Msgs, t.Bytes, pct)
	}

	if len(p.Levels) > 0 {
		fmt.Fprintf(w, "\nGrid levels:\n%-6s %10s %12s %8s\n", "level", "rows", "nnz", "storage")
		for _, l := range p.Levels {
			fmt.Fprintf(w, "%-6d %10d %12d %8s\n", l.Level, l.Rows, l.NNZ, l.Storage)
		}
	}
	if len(p.Counters) > 0 || len(p.Gauges) > 0 {
		fmt.Fprintf(w, "\nCounters:\n")
		for _, c := range p.Counters {
			fmt.Fprintf(w, "%-30s %12d\n", c.Name, c.Value)
		}
		for _, g := range p.Gauges {
			fmt.Fprintf(w, "%-30s %12d (gauge)\n", g.Name, g.Value)
		}
	}
	if n := len(p.Residuals); n > 0 {
		first, last := p.Residuals[0], p.Residuals[n-1]
		fmt.Fprintf(w, "\nConvergence: %d recorded iterations, |r| %.3e -> %.3e\n", n, first.Norm, last.Norm)
	}
	if p.Dropped > 0 {
		fmt.Fprintf(w, "\nWARNING: %d trace samples dropped (capture buffers full); stats above remain exact.\n", p.Dropped)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSON writes the full profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// chromeEvent is one trace_event entry: a complete ("X") duration
// event with microsecond timestamps, pid 0, and the rank as tid so
// chrome://tracing (or Perfetto) shows one timeline row per rank.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the captured spans in Chrome trace_event
// JSON format, loadable in chrome://tracing or https://ui.perfetto.dev.
func (p *Profile) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(p.Spans))
	for _, s := range p.Spans {
		evs = append(evs, chromeEvent{
			Name: s.Name,
			Cat:  "obs",
			Ph:   "X",
			Ts:   float64(s.StartNs) / 1e3,
			Dur:  float64(s.DurNs) / 1e3,
			Pid:  0,
			Tid:  s.Rank,
			Args: map[string]any{"depth": s.Depth},
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
