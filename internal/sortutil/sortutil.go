// Package sortutil holds the sanctioned fix for map-iteration
// nondeterminism: Go randomizes map range order per loop, so any map
// iteration whose body writes into an output slice or matrix makes the
// result irreproducible run to run. The promlint map-order rule flags
// such loops in the deterministic packages (core, graph, topo,
// delaunay); rewriting them as
//
//	for _, k := range sortutil.Keys(m) {
//	    v := m[k]
//	    ...
//	}
//
// restores a fixed traversal order and therefore bitwise-reproducible
// coarse grids and iteration counts.
package sortutil

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m in ascending order.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// KeysInto appends m's keys to buf[:0] in ascending order and returns
// the slice, so callers on repeated paths can reuse one buffer.
func KeysInto[M ~map[K]V, K cmp.Ordered, V any](buf []K, m M) []K {
	out := buf[:0]
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
