package sortutil

import (
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c"}
	got := Keys(m)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Keys returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys returned %v, want %v", got, want)
		}
	}
	if out := Keys(map[string]int{}); len(out) != 0 {
		t.Fatalf("Keys of empty map returned %v", out)
	}
}

func TestKeysInto(t *testing.T) {
	m := map[int]bool{9: true, 2: true, 7: true}
	buf := make([]int, 0, 8)
	got := KeysInto(buf, m)
	want := []int{2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KeysInto returned %v, want %v", got, want)
		}
	}
	// The buffer is reused when capacity suffices.
	got2 := KeysInto(got, m)
	if &got2[0] != &got[0] {
		t.Fatalf("KeysInto did not reuse the buffer")
	}
}
