package aggregation

import (
	"math"
	"testing"

	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/krylov"
	"prometheus/internal/la"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/multigrid"
	"prometheus/internal/sparse"
)

func laplace3D(n int) *sparse.CSR {
	id := func(i, j, k int) int { return (i*n+j)*n + k }
	b := sparse.NewBuilder(n*n*n, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				me := id(i, j, k)
				deg := 0
				add := func(o int) {
					b.Add(me, o, -1)
					deg++
				}
				if i > 0 {
					add(id(i-1, j, k))
				}
				if i < n-1 {
					add(id(i+1, j, k))
				}
				if j > 0 {
					add(id(i, j-1, k))
				}
				if j < n-1 {
					add(id(i, j+1, k))
				}
				if k > 0 {
					add(id(i, j, k-1))
				}
				if k < n-1 {
					add(id(i, j, k+1))
				}
				b.Add(me, me, float64(deg)+0.01) // slightly regularized
			}
		}
	}
	return b.Build()
}

func TestAggregateCoversAllRows(t *testing.T) {
	a := laplace3D(5)
	strong := strengthGraph(a, 0.08)
	agg, nAgg := aggregate(strong)
	if nAgg < 2 || nAgg >= a.NRows {
		t.Fatalf("nAgg = %d of %d", nAgg, a.NRows)
	}
	seen := make([]int, nAgg)
	for _, g := range agg {
		if g < 0 || g >= nAgg {
			t.Fatalf("row unaggregated: %d", g)
		}
		seen[g]++
	}
	for g, c := range seen {
		if c == 0 {
			t.Fatalf("empty aggregate %d", g)
		}
	}
}

func TestTentativePreservesNearNullSpace(t *testing.T) {
	// P0 must reproduce B exactly: B = P0·Bc.
	a := laplace3D(4)
	bnn := Constants(a.NRows)
	strong := strengthGraph(a, 0.08)
	agg, nAgg := aggregate(strong)
	p0, bc, err := tentative(agg, nAgg, bnn)
	if err != nil {
		t.Fatal(err)
	}
	if p0.NRows != a.NRows || p0.NCols != bc.Rows {
		t.Fatalf("dims P0 %dx%d Bc %dx%d", p0.NRows, p0.NCols, bc.Rows, bc.Cols)
	}
	// Reconstruct.
	xc := make([]float64, bc.Rows)
	for i := 0; i < bc.Rows; i++ {
		xc[i] = bc.At(i, 0)
	}
	rec := make([]float64, a.NRows)
	p0.MulVec(xc, rec)
	for i := range rec {
		if math.Abs(rec[i]-1) > 1e-10 {
			t.Fatalf("P0·Bc != B at %d: %v", i, rec[i])
		}
	}
	// P0 columns are orthonormal: P0ᵀ·P0 = I.
	ptp := p0.Transpose().Mul(p0)
	for i := 0; i < ptp.NRows; i++ {
		cols, vals := ptp.Row(i)
		for kk, j := range cols {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vals[kk]-want) > 1e-10 {
				t.Fatalf("P0ᵀP0(%d,%d) = %v", i, j, vals[kk])
			}
		}
	}
}

func TestRigidBodyModesInStiffnessKernel(t *testing.T) {
	// K·B = 0 for an unconstrained elasticity operator.
	m := mesh.StructuredHex(2, 2, 2, 1.2, 0.8, 1.1, nil)
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	full2red := make([]int, m.NumDOF())
	for i := range full2red {
		full2red[i] = i
	}
	b := RigidBodyModes(m.Coords, full2red, m.NumDOF())
	if b.Cols != 6 {
		t.Fatal("6 modes expected")
	}
	x := make([]float64, m.NumDOF())
	y := make([]float64, m.NumDOF())
	for mode := 0; mode < 6; mode++ {
		for i := range x {
			x[i] = b.At(i, mode)
		}
		k.MulVec(x, y)
		if la.MaxAbs(y) > 1e-10 {
			t.Fatalf("mode %d not in kernel: |K·b| = %v", mode, la.MaxAbs(y))
		}
	}
}

// buildElasticity returns a reduced cube elasticity system with its rigid
// body modes.
func buildElasticity(t *testing.T, n int) (*sparse.CSR, []float64, *la.Dense) {
	t.Helper()
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	cons := fem.NewConstraints()
	f := make([]float64, m.NumDOF())
	for v, pt := range m.Coords {
		if pt.Z == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if pt.Z == 1 {
			f[3*v+2] = -0.001
		}
	}
	dm := cons.NewDofMap(m.NumDOF())
	kred, fred := cons.Reduce(k, f, dm)
	b := RigidBodyModes(m.Coords, dm.Full2Red, dm.NumFree())
	return kred, fred, b
}

func TestSABuildsWorkingHierarchy(t *testing.T) {
	kred, fred, b := buildElasticity(t, 6)
	rs, err := BuildRestrictions(kred, b, Options{MinCoarse: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 1 {
		t.Fatal("no levels")
	}
	mg, err := multigrid.New(kred, rs, multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, kred.NRows)
	res := krylov.FPCG(kred, fred, x, mg, 1e-8, 300)
	if !res.Converged {
		t.Fatalf("SA-preconditioned CG stalled after %d its", res.Iterations)
	}
	t.Logf("SA: %d levels, %d iterations", mg.NumLevels(), res.Iterations)
	if res.Iterations > 100 {
		t.Fatalf("SA hierarchy too weak: %d its", res.Iterations)
	}
}

func TestSASmoothedBeatsUnsmoothed(t *testing.T) {
	kred, fred, b := buildElasticity(t, 6)
	its := func(unsmoothed bool) int {
		rs, err := BuildRestrictions(kred, b, Options{MinCoarse: 60, Unsmoothed: unsmoothed})
		if err != nil {
			t.Fatal(err)
		}
		mg, err := multigrid.New(kred, rs, multigrid.Options{})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, kred.NRows)
		res := krylov.FPCG(kred, fred, x, mg, 1e-8, 1000)
		if !res.Converged {
			t.Fatalf("unsmoothed=%v stalled", unsmoothed)
		}
		return res.Iterations
	}
	sm, un := its(false), its(true)
	t.Logf("smoothed %d its, unsmoothed %d its", sm, un)
	if sm > un {
		t.Fatalf("prolongator smoothing should help: %d vs %d", sm, un)
	}
}

func TestSAOnScalarProblem(t *testing.T) {
	a := laplace3D(8)
	rs, err := BuildRestrictions(a, Constants(a.NRows), Options{MinCoarse: 40})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := multigrid.New(a, rs, multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, a.NRows)
	for i := range bvec {
		bvec[i] = math.Sin(float64(i))
	}
	x := make([]float64, a.NRows)
	res := krylov.FPCG(a, bvec, x, mg, 1e-8, 200)
	if !res.Converged || res.Iterations > 40 {
		t.Fatalf("scalar SA: converged=%v its=%d", res.Converged, res.Iterations)
	}
}

func TestBuildRestrictionsValidation(t *testing.T) {
	a := laplace3D(3)
	wrong := la.NewDense(5, 1)
	if _, err := BuildRestrictions(a, wrong, Options{}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	// Already coarse enough: no levels -> error.
	small := laplace3D(2)
	if _, err := BuildRestrictions(small, Constants(small.NRows), Options{MinCoarse: 1000}); err == nil {
		t.Fatal("expected no-levels error")
	}
}

func TestRigidBodyModesCentroid(t *testing.T) {
	coords := []geom.Vec3{{X: 1, Y: 2, Z: 3}, {X: 2, Y: 2, Z: 3}}
	full2red := []int{0, 1, 2, 3, 4, 5}
	b := RigidBodyModes(coords, full2red, 6)
	// Translation modes are unit indicator patterns.
	if b.At(0, 0) != 1 || b.At(1, 1) != 1 || b.At(2, 2) != 1 {
		t.Fatal("translations wrong")
	}
	// Rotation about z at vertex 0 (x-cx = -0.5, y-cy = 0): (0, -0.5·? ...)
	// mode 3 (r_z) gives (-y, x, 0) about the centroid: (-0, -0.5, 0).
	if math.Abs(b.At(0, 3)-0) > 1e-15 || math.Abs(b.At(1, 3)+0.5) > 1e-15 {
		t.Fatalf("rotation mode wrong: %v %v", b.At(0, 3), b.At(1, 3))
	}
}
