// Package aggregation implements smoothed aggregation algebraic multigrid
// (Vaněk, Mandel & Brezina — the paper's reference [25]). The paper's
// conclusion names it as the alternative unstructured multigrid algorithm
// to evaluate ("we also plan to explore alternative (effective)
// unstructured multigrid algorithms such as smoothed aggregation"); this
// package provides it as a drop-in restriction-chain builder so the same
// multigrid/Krylov machinery runs either hierarchy and the two can be
// compared head-to-head (prombench -exp amg).
//
// The construction is the standard one: a strength-of-connection graph,
// greedy aggregation, a tentative prolongator whose columns are the
// orthonormalized restriction of the near-null space (rigid body modes for
// elasticity) to each aggregate, and one step of damped Jacobi prolongator
// smoothing P = (I - ω D⁻¹A)·P0.
package aggregation

import (
	"errors"
	"fmt"
	"math"

	"prometheus/internal/geom"
	"prometheus/internal/la"
	"prometheus/internal/sparse"
)

// Options controls the SA setup.
type Options struct {
	// Theta is the strength threshold: i and j are strongly connected when
	// |a_ij| > Theta·sqrt(a_ii·a_jj). Default 0.08.
	Theta float64
	// Omega scales the prolongator smoothing step relative to 1/λmax of
	// D⁻¹A; the classical choice is 4/3. Default 4/3.
	Omega float64
	// MinCoarse stops coarsening at this many dofs. Default 200.
	MinCoarse int
	// MaxLevels bounds the hierarchy depth. Default 16.
	MaxLevels int
	// Unsmoothed disables prolongator smoothing (plain aggregation).
	Unsmoothed bool
}

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 0.08
	}
	if o.Omega == 0 {
		o.Omega = 4.0 / 3.0
	}
	if o.MinCoarse == 0 {
		o.MinCoarse = 200
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 16
	}
	return o
}

// RigidBodyModes returns the 6 rigid body modes of a 3-dof-per-vertex
// elasticity discretization, restricted to the free dofs: three
// translations and three infinitesimal rotations about the centroid.
// full2red maps full dof -> reduced dof (-1 when constrained); nred is the
// reduced dimension.
func RigidBodyModes(coords []geom.Vec3, full2red []int, nred int) *la.Dense {
	b := la.NewDense(nred, 6)
	// Centroid improves the conditioning of the rotational modes.
	var c geom.Vec3
	for _, p := range coords {
		c = c.Add(p)
	}
	if len(coords) > 0 {
		c = c.Scale(1 / float64(len(coords)))
	}
	for v, p := range coords {
		x, y, z := p.X-c.X, p.Y-c.Y, p.Z-c.Z
		// mode values for dof components (ux, uy, uz):
		// t_x, t_y, t_z, r_z = (-y, x, 0), r_y = (z, 0, -x), r_x = (0, -z, y)
		rows := [3][6]float64{
			{1, 0, 0, -y, z, 0},
			{0, 1, 0, x, 0, -z},
			{0, 0, 1, 0, -x, y},
		}
		for comp := 0; comp < 3; comp++ {
			rd := full2red[3*v+comp]
			if rd < 0 {
				continue
			}
			for m := 0; m < 6; m++ {
				b.Set(rd, m, rows[comp][m])
			}
		}
	}
	return b
}

// Constants returns the k=1 near-null space (the constant vector), the
// right choice for scalar problems.
func Constants(n int) *la.Dense {
	b := la.NewDense(n, 1)
	for i := 0; i < n; i++ {
		b.Set(i, 0, 1)
	}
	return b
}

// strengthGraph returns the strongly connected neighbours of every row.
func strengthGraph(a *sparse.CSR, theta float64) [][]int {
	d := a.Diag()
	out := make([][]int, a.NRows)
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j == i {
				continue
			}
			if math.Abs(vals[k]) > theta*math.Sqrt(math.Abs(d[i]*d[j])) {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// aggregate groups the rows into aggregates with the standard two-pass
// greedy scheme; returns agg[i] in [0, nAgg).
func aggregate(strong [][]int) ([]int, int) {
	n := len(strong)
	agg := make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	nAgg := 0
	// Pass 1: roots with fully unaggregated strong neighbourhoods.
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		free := true
		for _, j := range strong[i] {
			if agg[j] >= 0 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[i] = nAgg
		for _, j := range strong[i] {
			agg[j] = nAgg
		}
		nAgg++
	}
	// Pass 2: attach stragglers to a neighbouring aggregate.
	for i := 0; i < n; i++ {
		if agg[i] >= 0 {
			continue
		}
		for _, j := range strong[i] {
			if agg[j] >= 0 {
				agg[i] = agg[j]
				break
			}
		}
	}
	// Pass 3: isolated rows become singleton aggregates.
	for i := 0; i < n; i++ {
		if agg[i] < 0 {
			agg[i] = nAgg
			nAgg++
		}
	}
	return agg, nAgg
}

// tentative builds the tentative prolongator P0 and the coarse near-null
// space: per aggregate, the local rows of B are orthonormalized (modified
// Gram-Schmidt with column dropping); Q becomes the P0 block, R the coarse
// B rows.
func tentative(agg []int, nAgg int, b *la.Dense) (*sparse.CSR, *la.Dense, error) {
	n := b.Rows
	k := b.Cols
	members := make([][]int, nAgg)
	for i, a := range agg {
		members[a] = append(members[a], i)
	}
	// Per-aggregate thin QR of the local near-null space block: B_S = Q·R
	// with Q (m×r) orthonormal and R (r×k); dependent columns are dropped
	// (their projection coefficients still land in R).
	type qrResult struct {
		q [][]float64 // r columns of length m
		r [][]float64 // r rows of length k
	}
	results := make([]qrResult, nAgg)
	offsets := make([]int, nAgg+1)
	for a := 0; a < nAgg; a++ {
		rows := members[a]
		m := len(rows)
		var res qrResult
		for c := 0; c < k; c++ {
			col := make([]float64, m)
			for i, rIdx := range rows {
				col[i] = b.At(rIdx, c)
			}
			norm0 := la.Norm2(col)
			for qi, q := range res.q {
				dot := la.Dot(q, col)
				res.r[qi][c] = dot
				la.Axpy(-dot, q, col)
			}
			nrm := la.Norm2(col)
			if nrm <= 1e-10*(1+norm0) {
				continue // dependent on this aggregate: column dropped
			}
			la.Scal(1/nrm, col)
			row := make([]float64, k)
			row[c] = nrm
			res.q = append(res.q, col)
			res.r = append(res.r, row)
		}
		results[a] = res
		offsets[a+1] = offsets[a] + len(res.q)
	}
	nc := offsets[nAgg]
	if nc == 0 {
		return nil, nil, errors.New("aggregation: empty coarse space")
	}
	pb := sparse.NewBuilder(n, nc)
	bc := la.NewDense(nc, k)
	for a := 0; a < nAgg; a++ {
		res := results[a]
		rows := members[a]
		for qi, q := range res.q {
			cdof := offsets[a] + qi
			for i, rIdx := range rows {
				if q[i] != 0 {
					pb.Add(rIdx, cdof, q[i])
				}
			}
			for c := 0; c < k; c++ {
				bc.Set(cdof, c, res.r[qi][c])
			}
		}
	}
	return pb.Build(), bc, nil
}

// smoothProlongator returns P = (I - omega/λmax · D⁻¹A)·P0.
func smoothProlongator(a *sparse.CSR, p0 *sparse.CSR, omega float64) *sparse.CSR {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		}
	}
	// λmax(D⁻¹A) by power iteration.
	n := a.NRows
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = 1
		if i%2 == 1 {
			v[i] = -1
		}
	}
	lmax := 1.0
	for it := 0; it < 15; it++ {
		a.MulVec(v, w)
		for i := range w {
			w[i] *= inv[i]
		}
		nrm := la.Norm2(w)
		if nrm == 0 {
			break
		}
		lmax = nrm
		la.Scal(1/nrm, w)
		copy(v, w)
	}
	scale := omega / (1.05 * lmax)
	// S = D⁻¹A·P0 (row-scaled product), P = P0 - scale·S.
	s := a.Mul(p0)
	pb := sparse.NewBuilder(p0.NRows, p0.NCols)
	for i := 0; i < p0.NRows; i++ {
		cols, vals := p0.Row(i)
		for kk, j := range cols {
			pb.Add(i, j, vals[kk])
		}
		cols, vals = s.Row(i)
		for kk, j := range cols {
			pb.Add(i, j, -scale*inv[i]*vals[kk])
		}
	}
	return pb.Build()
}

// BuildRestrictions constructs the smoothed aggregation restriction chain
// for operator a with near-null space b (rows = dofs of a, columns = modes).
// The result plugs directly into multigrid.New.
func BuildRestrictions(a *sparse.CSR, b *la.Dense, opts Options) ([]*sparse.CSR, error) {
	opts = opts.withDefaults()
	if b.Rows != a.NRows {
		return nil, fmt.Errorf("aggregation: near-null space has %d rows for a %d-dof operator", b.Rows, a.NRows)
	}
	var rs []*sparse.CSR
	cur := a
	curB := b
	for level := 1; level < opts.MaxLevels; level++ {
		if cur.NRows <= opts.MinCoarse {
			break
		}
		strong := strengthGraph(cur, opts.Theta)
		agg, nAgg := aggregate(strong)
		if nAgg >= cur.NRows {
			break // no coarsening possible
		}
		p0, bc, err := tentative(agg, nAgg, curB)
		if err != nil {
			break
		}
		p := p0
		if !opts.Unsmoothed {
			p = smoothProlongator(cur, p0, opts.Omega)
		}
		r := p.Transpose()
		rs = append(rs, r)
		cur = sparse.Galerkin(r, cur)
		curB = bc
	}
	if len(rs) == 0 {
		return nil, errors.New("aggregation: built no coarse levels")
	}
	return rs, nil
}
