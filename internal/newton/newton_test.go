package newton

import (
	"math"
	"testing"

	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/krylov"
	"prometheus/internal/material"
	"prometheus/internal/multigrid"
	"prometheus/internal/problems"
	"prometheus/internal/sparse"
)

// mgFactory builds the per-matrix multigrid preconditioner from a fixed
// grid hierarchy (the paper's split: mesh setup once, matrix setup per
// Newton iteration).
func mgFactory(t *testing.T, h *core.Hierarchy, dm *fem.DofMap) PreconFactory {
	t.Helper()
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		if l == 1 {
			r = multigrid.CompressCols(r, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, r)
	}
	return func(k sparse.Operator) (krylov.Preconditioner, error) {
		return multigrid.New(k, rs, multigrid.Options{})
	}
}

func setupSpheres(t *testing.T, _ int) (*fem.Problem, *fem.Constraints, PreconFactory) {
	t.Helper()
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	// The reduced 3-layer test geometry has shells 17/3 ≈ 5.7× thicker
	// than the paper's, so shell bending stresses are ~(5.7)² ≈ 32× lower;
	// scale the yield stress to keep the test in the yielding regime the
	// full 17-layer geometry reaches with the true Table 1 value.
	s.Models[material.MatHard] = material.J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-4, H: 0.002}
	p := fem.NewProblem(s.Mesh, s.Models, true)
	h, err := core.Coarsen(s.Mesh, core.Options{MinCoarse: 30})
	if err != nil {
		t.Fatal(err)
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	return p, s.Cons, mgFactory(t, h, dm)
}

func TestNonlinearSpheresSmall(t *testing.T) {
	p, cons, factory := setupSpheres(t, 4)
	cfg := Config{Steps: 3, MaxNewton: 20, MaxPCG: 400}
	u, stats, err := Solve(p, cons, cfg, factory, material.MatHard)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Steps) != 3 {
		t.Fatalf("steps recorded = %d", len(stats.Steps))
	}
	// The top surface must carry the full prescribed displacement.
	for v, pt := range p.M.Coords {
		if pt.Z == problems.OctantSide {
			if math.Abs(u[3*v+2]-problems.TotalCrushUz) > 1e-12 {
				t.Fatalf("top vertex %d u_z = %v", v, u[3*v+2])
			}
		}
		if pt.X == 0 && u[3*v] != 0 {
			t.Fatal("symmetry plane violated")
		}
	}
	// Newton must actually converge: the residual drop per step is tiny.
	for i, ss := range stats.Steps {
		if ss.NewtonIters < 1 {
			t.Fatalf("step %d: no Newton iterations", i)
		}
		if ss.ResidualDrop > 1e-4 {
			t.Fatalf("step %d: residual only dropped to %v", i, ss.ResidualDrop)
		}
		if len(ss.PCGIters) != ss.NewtonIters {
			t.Fatal("PCG iteration record inconsistent")
		}
	}
	// Crushing a shelled sphere by 29%% must drive some hard material
	// plastic by the final step.
	final := stats.Steps[len(stats.Steps)-1].PlasticFrac
	if final <= 0 {
		t.Fatal("no plasticity developed")
	}
	if stats.FirstSolveIters <= 0 || stats.TotalPCG < stats.TotalNewton {
		t.Fatalf("stats implausible: %+v", stats)
	}
}

func TestPlasticFractionMonotoneGrowth(t *testing.T) {
	p, cons, factory := setupSpheres(t, 4)
	cfg := Config{Steps: 4, MaxNewton: 20, MaxPCG: 400}
	_, stats, err := Solve(p, cons, cfg, factory, material.MatHard)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 13 left: the plastic fraction grows over the load schedule
	// (monotone up to small unload effects; require non-decreasing within
	// a tolerance).
	prev := -1.0
	for i, ss := range stats.Steps {
		if ss.PlasticFrac < prev-0.05 {
			t.Fatalf("plastic fraction dropped at step %d: %v -> %v", i, prev, ss.PlasticFrac)
		}
		if ss.PlasticFrac > prev {
			prev = ss.PlasticFrac
		}
	}
	if prev <= 0 {
		t.Fatal("never yielded")
	}
}

func TestDynamicToleranceBounds(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.RTol1 != 1e-4 || cfg.RTolMax != 1e-3 || cfg.RTolFactor != 1e-1 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	if cfg.Steps != 10 || cfg.EnergyTol != 1e-20 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
}

func TestLinearProblemConvergesInOneIteration(t *testing.T) {
	// With a linear material the Newton loop must converge essentially
	// immediately (second iteration residual at linear-solver tolerance).
	c := problems.NewCube(3, material.LinearElastic{E: 1, Nu: 0.3}, 0)
	// Displacement-driven: push the top down.
	for v, pt := range c.Mesh.Coords {
		if pt.Z == 1 {
			c.Cons.FixDof(3*v+2, -0.05)
		}
	}
	p := fem.NewProblem(c.Mesh, c.Models, false)
	h, err := core.Coarsen(c.Mesh, core.Options{MinCoarse: 20})
	if err != nil {
		t.Fatal(err)
	}
	zero := fem.NewConstraints()
	for d := range c.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(c.Mesh.NumDOF())
	factory := mgFactory(t, h, dm)
	_, stats, err := Solve(p, c.Cons, Config{Steps: 1, MaxNewton: 10, EnergyTol: 1e-12}, factory, -1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps[0].NewtonIters > 3 {
		t.Fatalf("linear problem took %d Newton its", stats.Steps[0].NewtonIters)
	}
}

func TestDynamicToleranceSchedule(t *testing.T) {
	// The paper's heuristic: rtol_1 = 1e-4; rtol_m = min(1e-3,
	// 1e-1·‖r_m‖/‖r_{m-1}‖). The first tolerance of every step must be
	// 1e-4 and later ones capped at 1e-3.
	p, cons, factory := setupSpheres(t, 0)
	_, stats, err := Solve(p, cons, Config{Steps: 2, MaxNewton: 15, MaxPCG: 600}, factory, material.MatHard)
	if err != nil {
		t.Fatal(err)
	}
	for si, ss := range stats.Steps {
		if len(ss.RTols) != ss.NewtonIters {
			t.Fatalf("step %d: %d rtols for %d iterations", si, len(ss.RTols), ss.NewtonIters)
		}
		if ss.RTols[0] != 1e-4 {
			t.Fatalf("step %d: first rtol = %v", si, ss.RTols[0])
		}
		for m, r := range ss.RTols[1:] {
			if r > 1e-3 || r <= 0 {
				t.Fatalf("step %d iter %d: rtol = %v", si, m+2, r)
			}
		}
	}
}
