// Package newton implements the paper's nonlinear solution strategy
// (section 7.2): displacement-driven load stepping with a full Newton
// method, the dynamic linear-solve tolerance heuristic
// rtol_1 = 1e-4, rtol_m = min(1e-3, 1e-1·‖r_m‖/‖r_{m-1}‖), and convergence
// declared when the energy norm of the correction falls to EnergyTol times
// that of the first correction.
package newton

import (
	"errors"
	"fmt"
	"math"

	"prometheus/internal/fem"
	"prometheus/internal/krylov"
	"prometheus/internal/la"
	"prometheus/internal/sparse"
)

// Config drives the nonlinear solve.
type Config struct {
	Steps      int     // load steps (paper: 10)
	EnergyTol  float64 // relative energy-norm convergence (paper: 1e-20)
	MaxNewton  int     // Newton iterations per step (safety bound)
	RTol1      float64 // first linear tolerance (paper: 1e-4)
	RTolMax    float64 // cap for later tolerances (paper: 1e-3)
	RTolFactor float64 // residual-ratio factor (paper: 1e-1)
	MaxPCG     int     // PCG iteration bound per linear solve
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 10
	}
	if c.EnergyTol == 0 {
		c.EnergyTol = 1e-20
	}
	if c.MaxNewton == 0 {
		c.MaxNewton = 30
	}
	if c.RTol1 == 0 {
		c.RTol1 = 1e-4
	}
	if c.RTolMax == 0 {
		c.RTolMax = 1e-3
	}
	if c.RTolFactor == 0 {
		c.RTolFactor = 1e-1
	}
	if c.MaxPCG == 0 {
		c.MaxPCG = 500
	}
	return c
}

// PreconFactory builds a preconditioner for a freshly assembled (reduced)
// tangent — the per-matrix "matrix setup" phase of the paper (Galerkin
// products and smoother factorizations). The tangent arrives as a storage-
// agnostic Operator (CSR here; factories may re-block it to BSR before
// building the hierarchy).
type PreconFactory func(k sparse.Operator) (krylov.Preconditioner, error)

// StepStats records one load step.
type StepStats struct {
	NewtonIters  int
	PCGIters     []int     // per Newton iteration
	RTols        []float64 // dynamic linear tolerance per Newton iteration
	PlasticFrac  float64   // fraction of hard-material integration points yielded
	ResidualDrop float64   // ‖r_last‖/‖r_1‖
}

// Stats records the whole nonlinear solve.
type Stats struct {
	Steps           []StepStats
	FirstSolveIters int // PCG iterations of the very first linear solve
	TotalPCG        int
	TotalNewton     int
	LinearFlops     int64
}

// Solve runs the displacement-driven Newton solve: the constraint values of
// cons are ramped linearly over cfg.Steps steps. hardMat identifies the
// material whose plastic fraction is tracked (pass -1 to skip).
// Returns the converged displacement field (full dof numbering).
func Solve(p *fem.Problem, cons *fem.Constraints, cfg Config, factory PreconFactory, hardMat int) ([]float64, *Stats, error) {
	cfg = cfg.withDefaults()
	n := p.M.NumDOF()
	u := make([]float64, n)
	stats := &Stats{}

	// Homogeneous constraints for the Newton increments.
	zeroCons := fem.NewConstraints()
	for d := range cons.Fixed {
		zeroCons.FixDof(d, 0)
	}
	dm := zeroCons.NewDofMap(n)

	for step := 1; step <= cfg.Steps; step++ {
		scale := float64(step) / float64(cfg.Steps)
		cons.Scaled(scale).Apply(u)

		ss := StepStats{}
		var firstEnergy, prevRNorm, firstRNorm float64
		rtol := cfg.RTol1

		for m := 1; m <= cfg.MaxNewton; m++ {
			k, fint, err := p.AssembleTangent(u)
			if err != nil {
				return nil, stats, fmt.Errorf("newton: step %d iter %d: %w", step, m, err)
			}
			// Residual r = -fint on free dofs (no external loads; the
			// drive is the prescribed displacement already in u).
			rFull := make([]float64, n)
			for i := range rFull {
				rFull[i] = -fint[i]
			}
			kred, rred := zeroCons.Reduce(k, rFull, dm)
			rnorm := la.Norm2(rred)
			if m == 1 {
				firstRNorm = rnorm
			} else {
				// Dynamic tolerance heuristic.
				rtol = math.Min(cfg.RTolMax, cfg.RTolFactor*rnorm/prevRNorm)
				if rtol <= 0 || math.IsNaN(rtol) {
					rtol = cfg.RTolMax
				}
			}
			prevRNorm = rnorm

			pre, err := factory(kred)
			if err != nil {
				return nil, stats, fmt.Errorf("newton: preconditioner: %w", err)
			}
			ss.RTols = append(ss.RTols, rtol)
			du := make([]float64, kred.Rows())
			res := krylov.FPCG(kred, rred, du, pre, rtol, cfg.MaxPCG)
			stats.LinearFlops += res.Flops
			ss.PCGIters = append(ss.PCGIters, res.Iterations)
			stats.TotalPCG += res.Iterations
			if stats.FirstSolveIters == 0 {
				stats.FirstSolveIters = res.Iterations
			}
			if !res.Converged && res.Iterations >= cfg.MaxPCG {
				return nil, stats, errors.New("newton: linear solver hit iteration bound")
			}

			// Energy norm |δuᵀ·r| of the correction.
			energy := math.Abs(la.Dot(du, rred))
			if m == 1 {
				firstEnergy = energy
			}
			// Apply the correction.
			for rIdx, d := range dm.Red2Full {
				u[d] += du[rIdx]
			}
			ss.NewtonIters = m
			stats.TotalNewton++
			if firstEnergy == 0 || energy <= cfg.EnergyTol*firstEnergy {
				break
			}
		}
		if firstRNorm > 0 {
			ss.ResidualDrop = prevRNorm / firstRNorm
		}
		if err := p.Commit(u); err != nil {
			return nil, stats, err
		}
		if hardMat >= 0 {
			ss.PlasticFrac = p.PlasticFraction(hardMat)
		}
		stats.Steps = append(stats.Steps, ss)
	}
	return u, stats, nil
}
