package sparse

import (
	"math"
	"sort"

	"prometheus/internal/check"
	"prometheus/internal/la"
	"prometheus/internal/obs"
)

// BSR32 is node-block storage with float32 blocks and int32 block column
// indices — the blocked twin of CSR32 and the most compact coarse-level
// format: for 3-dof elasticity one 4-byte index amortizes over nine 4-byte
// values, 40 bytes per block against BSR's 80. The kernels mirror BSR's
// register-blocked shape exactly — three float64 row accumulators live in
// registers across each block row and every stored value is widened
// through la.W64 on use — so narrowing changes the operator's stored
// values, never the accumulation arithmetic.
type BSR32 struct {
	NBRows, NBCols int // dimensions in blocks
	B              int // block size (3 for elasticity)
	RowPtr         []int
	ColIdx         []int32 // block column indices, sorted within each block row
	Val            []float32
}

// Rows returns the number of scalar rows.
func (a *BSR32) Rows() int { return a.NBRows * a.B }

// Cols returns the number of scalar columns.
func (a *BSR32) Cols() int { return a.NBCols * a.B }

// NNZ returns the number of stored scalar entries.
func (a *BSR32) NNZ() int { return len(a.ColIdx) * a.B * a.B }

// NNZBlocks returns the number of stored blocks.
func (a *BSR32) NNZBlocks() int { return len(a.ColIdx) }

// BlockSize returns the scalar block dimension (the BlockDiagonaler
// capability).
func (a *BSR32) BlockSize() int { return a.B }

// MulVecFlops returns the flop count of one MulVec (2·nnz).
func (a *BSR32) MulVecFlops() int64 { return 2 * int64(a.NNZ()) }

// ToBSR32 narrows blocked storage through the sanctioned la.To32 boundary,
// asserting f32 representability under promdebug exactly like ToCSR32.
func ToBSR32(a *BSR) *BSR32 {
	if check.Enabled {
		check.F32Representable(a.Val, "sparse.ToBSR32")
	}
	colIdx := make([]int32, len(a.ColIdx))
	for k, j := range a.ColIdx {
		if j > math.MaxInt32 {
			panic("sparse: ToBSR32 block column index overflows int32")
		}
		colIdx[k] = int32(j)
	}
	val := make([]float32, len(a.Val))
	la.To32(val, a.Val)
	return &BSR32{
		NBRows: a.NBRows,
		NBCols: a.NBCols,
		B:      a.B,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: colIdx,
		Val:    val,
	}
}

// ToBSR widens the storage back to scalar-valued blocked form (exact).
func (a *BSR32) ToBSR() *BSR {
	colIdx := make([]int, len(a.ColIdx))
	for k, j := range a.ColIdx {
		colIdx[k] = int(j)
	}
	val := make([]float64, len(a.Val))
	la.Wide64(val, a.Val)
	return &BSR{
		NBRows: a.NBRows,
		NBCols: a.NBCols,
		B:      a.B,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: colIdx,
		Val:    val,
	}
}

// ToCSR expands to scalar CSR through the widened BSR (setup-time only).
func (a *BSR32) ToCSR() *CSR { return a.ToBSR().ToCSR() }

// MulVec computes y = A·x with float64 accumulation.
func (a *BSR32) MulVec(x, y []float64) {
	if len(x) != a.Cols() || len(y) != a.Rows() {
		panic("sparse: BSR32.MulVec dimension mismatch")
	}
	sp := obs.Start(evSpMVBSR32)
	if a.B == 3 {
		a.mulVec3(x, y, 0, a.NBRows)
	} else {
		a.mulVecBlocks(x, y, 0, a.NBRows)
	}
	sp.EndFlops(a.MulVecFlops())
}

// mulVec3 is the register-blocked 3x3 micro-kernel for block rows
// [lo, hi): BSR.mulVec3 with each stored value widened on use. The three
// row accumulators are float64 and the addition order is the same
// left-to-right sweep, so the only difference from the f64 kernel is the
// one rounding each value took when it was narrowed into storage.
func (a *BSR32) mulVec3(x, y []float64, lo, hi int) {
	for ib := lo; ib < hi; ib++ {
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		cols := a.ColIdx[p:q]
		vals := a.Val[9*p : 9*q : 9*q]
		vals = vals[:9*len(cols)]
		var y0, y1, y2 float64
		for k, jb := range cols {
			v := vals[9*k : 9*k+9 : 9*k+9]
			x0, x1, x2 := x[3*jb], x[3*jb+1], x[3*jb+2]
			y0 += la.W64(v[0]) * x0
			y0 += la.W64(v[1]) * x1
			y0 += la.W64(v[2]) * x2
			y1 += la.W64(v[3]) * x0
			y1 += la.W64(v[4]) * x1
			y1 += la.W64(v[5]) * x2
			y2 += la.W64(v[6]) * x0
			y2 += la.W64(v[7]) * x1
			y2 += la.W64(v[8]) * x2
		}
		y[3*ib] = y0
		y[3*ib+1] = y1
		y[3*ib+2] = y2
	}
}

// mulVecBlocks is the generic block-size kernel for block rows [lo, hi).
func (a *BSR32) mulVecBlocks(x, y []float64, lo, hi int) {
	b := a.B
	bb := b * b
	for ib := lo; ib < hi; ib++ {
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		yr := y[ib*b : ib*b+b : ib*b+b]
		for d := range yr {
			yr[d] = 0
		}
		for k := p; k < q; k++ {
			jb := int(a.ColIdx[k])
			v := a.Val[k*bb : k*bb+bb : k*bb+bb]
			xr := x[jb*b : jb*b+b : jb*b+b]
			for d := 0; d < b; d++ {
				s := yr[d]
				row := v[d*b : d*b+b]
				for c, vv := range row {
					s += la.W64(vv) * xr[c]
				}
				yr[d] = s
			}
		}
	}
}

// MulVecRange computes y[i] = (A·x)[i] for scalar rows i in [lo, hi) —
// block-aligned ranges take the blocked kernels, ragged edges fall back to
// a per-scalar-row loop, mirroring BSR.MulVecRange so the pool dispatch
// and ownership proof carry over.
func (a *BSR32) MulVecRange(x, y []float64, lo, hi int) {
	b := a.B
	if lo%b == 0 && hi%b == 0 {
		if b == 3 {
			a.mulVec3(x, y, lo/3, hi/3)
		} else {
			a.mulVecBlocks(x, y, lo/b, hi/b)
		}
		return
	}
	bb := b * b
	for i := lo; i < hi; i++ {
		ib, d := i/b, i%b
		s := 0.0
		for k := a.RowPtr[ib]; k < a.RowPtr[ib+1]; k++ {
			jb := int(a.ColIdx[k])
			row := a.Val[k*bb+d*b : k*bb+d*b+b]
			xr := x[jb*b : jb*b+b : jb*b+b]
			for c, vv := range row {
				s += la.W64(vv) * xr[c]
			}
		}
		y[i] = s
	}
}

// Residual computes r = b - A·x.
func (a *BSR32) Residual(b, x, r []float64) {
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// At returns A(i,j) widened to float64 (zero when the block is absent).
func (a *BSR32) At(i, j int) float64 {
	b := a.B
	ib, jb := i/b, j/b
	lo, hi := a.RowPtr[ib], a.RowPtr[ib+1]
	k := lo + sort.Search(hi-lo, func(t int) bool { return int(a.ColIdx[lo+t]) >= jb })
	if k < hi && int(a.ColIdx[k]) == jb {
		return la.W64(a.Val[k*b*b+(i%b)*b+(j%b)])
	}
	return 0
}

// Diag returns the widened scalar diagonal (zeros where the diagonal block
// is absent).
func (a *BSR32) Diag() []float64 {
	b := a.B
	d := make([]float64, a.Rows())
	n := a.NBRows
	if a.NBCols < n {
		n = a.NBCols
	}
	for ib := 0; ib < n; ib++ {
		lo, hi := a.RowPtr[ib], a.RowPtr[ib+1]
		k := lo + sort.Search(hi-lo, func(t int) bool { return int(a.ColIdx[lo+t]) >= ib })
		if k < hi && int(a.ColIdx[k]) == ib {
			blk := a.Val[k*b*b : (k+1)*b*b]
			for dd := 0; dd < b; dd++ {
				d[ib*b+dd] = la.W64(blk[dd*b+dd])
			}
		}
	}
	return d
}

// DiagBlocks returns the BxB diagonal blocks widened to float64, packed
// row-major per block row (zero blocks where absent). The node-block
// smoothers invert these once at setup — the inversion itself runs in
// float64, only the stored operator is narrow.
func (a *BSR32) DiagBlocks() []float64 {
	if a.NBRows != a.NBCols {
		panic("sparse: BSR32.DiagBlocks wants a square matrix")
	}
	b := a.B
	bb := b * b
	out := make([]float64, a.NBRows*bb)
	for ib := 0; ib < a.NBRows; ib++ {
		lo, hi := a.RowPtr[ib], a.RowPtr[ib+1]
		k := lo + sort.Search(hi-lo, func(t int) bool { return int(a.ColIdx[lo+t]) >= ib })
		if k < hi && int(a.ColIdx[k]) == ib {
			la.Wide64(out[ib*bb:(ib+1)*bb], a.Val[k*bb:(k+1)*bb])
		}
	}
	return out
}
