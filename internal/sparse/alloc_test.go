package sparse

import (
	"math/rand"
	"testing"

	"prometheus/internal/obs"
)

// TestSpMVZeroAlloc locks in the zero-allocation guarantee that the
// hotloop-alloc lint rule enforces statically: steady-state SpMV must
// not touch the allocator.
func TestSpMVZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randCSR(rng, 300, 300, 0.05)
	x := make([]float64, a.NCols)
	y := make([]float64, a.NRows)
	r := make([]float64, a.NRows)
	for i := range x {
		x[i] = rng.Float64()
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVec(x, y) }); n != 0 {
		t.Errorf("MulVec allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVecRange(x, y, 0, a.NRows/2) }); n != 0 {
		t.Errorf("MulVecRange allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.Residual(y, x, r) }); n != 0 {
		t.Errorf("Residual allocates %.1f per call, want 0", n)
	}
}

// TestBSRSpMVZeroAlloc locks in the zero-allocation guarantee for the
// blocked kernels: the 3x3 micro-kernel, the ragged-range fallback and the
// blocked residual must not touch the allocator in steady state.
func TestBSRSpMVZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randBSR(rng, 100, 100, 3, 0.05)
	x := make([]float64, a.Cols())
	y := make([]float64, a.Rows())
	r := make([]float64, a.Rows())
	for i := range x {
		x[i] = rng.Float64()
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVec(x, y) }); n != 0 {
		t.Errorf("BSR.MulVec allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVecRange(x, y, 1, a.Rows()-1) }); n != 0 {
		t.Errorf("BSR.MulVecRange allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.Residual(y, x, r) }); n != 0 {
		t.Errorf("BSR.Residual allocates %.1f per call, want 0", n)
	}
}

// TestSpMVZeroAllocObsEnabled locks in the same guarantee with the
// observability subsystem recording: the instrumented MulVec paths
// write spans into preallocated buffers, so enabling obs must not add
// a single allocation to the kernels.
func TestSpMVZeroAllocObsEnabled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randCSR(rng, 300, 300, 0.05)
	ab := randBSR(rng, 100, 100, 3, 0.05)
	x := make([]float64, a.NCols)
	y := make([]float64, a.NRows)
	xb := make([]float64, ab.Cols())
	yb := make([]float64, ab.Rows())
	for i := range x {
		x[i] = rng.Float64()
	}
	obs.EnableWith(obs.Config{RingCap: 1 << 12})
	defer obs.Disable()
	if n := testing.AllocsPerRun(50, func() { a.MulVec(x, y) }); n != 0 {
		t.Errorf("MulVec with obs enabled allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ab.MulVec(xb, yb) }); n != 0 {
		t.Errorf("BSR.MulVec with obs enabled allocates %.1f per call, want 0", n)
	}
}

// TestF32SpMVZeroAlloc extends the lock-in to the narrowed storages: the
// f32 kernels widen per-operand in registers and must not touch the
// allocator either, with or without observability recording.
func TestF32SpMVZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := ToCSR32(randCSR(rng, 300, 300, 0.05))
	ab := ToBSR32(randBSR(rng, 100, 100, 3, 0.05))
	x := make([]float64, a.NCols)
	y := make([]float64, a.NRows)
	r := make([]float64, a.NRows)
	for i := range x {
		x[i] = rng.Float64()
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVec(x, y) }); n != 0 {
		t.Errorf("CSR32.MulVec allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVecRange(x, y, 0, a.NRows/2) }); n != 0 {
		t.Errorf("CSR32.MulVecRange allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.Residual(y, x, r) }); n != 0 {
		t.Errorf("CSR32.Residual allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ab.MulVec(x, y) }); n != 0 {
		t.Errorf("BSR32.MulVec allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ab.MulVecRange(x, y, 1, ab.Rows()-1) }); n != 0 {
		t.Errorf("BSR32.MulVecRange allocates %.1f per call, want 0", n)
	}
	obs.EnableWith(obs.Config{RingCap: 1 << 12})
	defer obs.Disable()
	if n := testing.AllocsPerRun(50, func() { a.MulVec(x, y) }); n != 0 {
		t.Errorf("CSR32.MulVec with obs enabled allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { ab.MulVec(x, y) }); n != 0 {
		t.Errorf("BSR32.MulVec with obs enabled allocates %.1f per call, want 0", n)
	}
}
