package sparse

import (
	"math/rand"
	"testing"
)

// TestSpMVZeroAlloc locks in the zero-allocation guarantee that the
// hotloop-alloc lint rule enforces statically: steady-state SpMV must
// not touch the allocator.
func TestSpMVZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randCSR(rng, 300, 300, 0.05)
	x := make([]float64, a.NCols)
	y := make([]float64, a.NRows)
	r := make([]float64, a.NRows)
	for i := range x {
		x[i] = rng.Float64()
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVec(x, y) }); n != 0 {
		t.Errorf("MulVec allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.MulVecRange(x, y, 0, a.NRows/2) }); n != 0 {
		t.Errorf("MulVecRange allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { a.Residual(y, x, r) }); n != 0 {
		t.Errorf("Residual allocates %.1f per call, want 0", n)
	}
}
