package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: (A·B)·C == A·(B·C) on random sparse triples.
func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		n1 := 2 + int(uint(seed)%8)
		n2 := 2 + int(uint(seed/3)%8)
		n3 := 2 + int(uint(seed/7)%8)
		n4 := 2 + int(uint(seed/11)%8)
		a := randCSR(rng, n1, n2, 0.4)
		b := randCSR(rng, n2, n3, 0.4)
		c := randCSR(rng, n3, n4, 0.4)
		lhs := a.Mul(b).Mul(c)
		rhs := a.Mul(b.Mul(c))
		for i := 0; i < n1; i++ {
			for j := 0; j < n4; j++ {
				if math.Abs(lhs.At(i, j)-rhs.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Aᵀ·x computed via Transpose matches column-wise accumulation.
func TestTransposeMulVecConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := 2 + int(uint(seed)%10)
		c := 2 + int(uint(seed/5)%10)
		a := randCSR(rng, r, c, 0.35)
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		// y1 = Aᵀ·x via explicit transpose.
		y1 := make([]float64, c)
		a.Transpose().MulVec(x, y1)
		// y2 via scatter over A's rows.
		y2 := make([]float64, c)
		for i := 0; i < r; i++ {
			cols, vals := a.Row(i)
			for k, j := range cols {
				y2[j] += vals[k] * x[i]
			}
		}
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a principal submatrix of a symmetric matrix is symmetric.
func TestSubmatrixPreservesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		n := 4 + int(uint(seed)%10)
		b := NewBuilder(n, n)
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.Float64()
			b.Add(i, j, v)
			b.Add(j, i, v)
		}
		a := b.Build()
		idx := []int{0, n / 2, n - 1}
		return a.Submatrix(idx).IsSymmetric(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Galerkin with the identity restriction is the identity map.
func TestGalerkinIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		a := randCSR(rng, n, n, 0.4)
		c := Galerkin(Identity(n), a)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(c.At(i, j)-a.At(i, j)) > 1e-12 {
					t.Fatalf("I·A·Iᵀ != A at (%d,%d)", i, j)
				}
			}
		}
	}
}
