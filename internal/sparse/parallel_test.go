package sparse

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/pool"
)

// randomCSR builds a random sparse square matrix with a guaranteed
// diagonal, nb*b scalar rows, blocked at size b (so it re-blocks to BSR
// without fill).
func randomBlocked(t *testing.T, nb, b int, rng *rand.Rand) (*CSR, *BSR) {
	t.Helper()
	bb := NewBlockBuilder(nb, nb, b)
	blk := make([]float64, b*b)
	for ib := 0; ib < nb; ib++ {
		for _, jb := range []int{ib, rng.Intn(nb), rng.Intn(nb)} {
			for k := range blk {
				blk[k] = rng.NormFloat64()
			}
			if jb == ib {
				for d := 0; d < b; d++ {
					blk[d*b+d] += float64(b * b)
				}
			}
			bb.AddBlock(ib, jb, blk)
		}
	}
	bsr := bb.Build()
	return bsr.ToCSR(), bsr
}

// TestMulVecParallelBitwise locks in the acceptance criterion: the
// pool-partitioned product equals the serial product bit for bit, on both
// storages, for every pool size.
func TestMulVecParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	csr, bsr := randomBlocked(t, 67, 3, rng)
	n := csr.NRows
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	wantC := make([]float64, n)
	csr.MulVec(x, wantC)
	wantB := make([]float64, n)
	bsr.MulVec(x, wantB)

	for _, nw := range []int{1, 2, 3, 4, 8} {
		p := pool.New(nw)
		got := make([]float64, n)
		csr.MulVecParallel(p, x, got)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantC[i]) {
				t.Fatalf("CSR nw=%d row %d: %v != %v", nw, i, got[i], wantC[i])
			}
		}
		bsr.MulVecParallel(p, x, got)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantB[i]) {
				t.Fatalf("BSR nw=%d row %d: %v != %v", nw, i, got[i], wantB[i])
			}
		}
		p.Close()
	}
}

// TestMulVecParallelZeroAlloc locks in the steady-state zero-allocation
// satellite for the parallel SpMV on both storages.
func TestMulVecParallelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	csr, bsr := randomBlocked(t, 64, 3, rng)
	n := csr.NRows
	x := make([]float64, n)
	y := make([]float64, n)
	p := pool.New(4)
	defer p.Close()
	p.Sanitizer().Disable() // promdebug builds: measure the inert path
	csr.MulVecParallel(p, x, y)
	if a := testing.AllocsPerRun(50, func() { csr.MulVecParallel(p, x, y) }); a != 0 {
		t.Fatalf("CSR.MulVecParallel allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { bsr.MulVecParallel(p, x, y) }); a != 0 {
		t.Fatalf("BSR.MulVecParallel allocates %.1f per call, want 0", a)
	}
}

func TestDispatchAlign(t *testing.T) {
	csr, bsr := randomBlocked(t, 8, 3, rand.New(rand.NewSource(1)))
	if got := DispatchAlign(csr); got != 1 {
		t.Fatalf("DispatchAlign(CSR) = %d, want 1", got)
	}
	if got := DispatchAlign(bsr); got != 3 {
		t.Fatalf("DispatchAlign(BSR) = %d, want 3", got)
	}
}
