package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randBSR builds a random nbr x nbc block matrix with block size b and the
// given block density, plus guaranteed diagonal blocks when square.
func randBSR(rng *rand.Rand, nbr, nbc, b int, density float64) *BSR {
	bb := NewBlockBuilder(nbr, nbc, b)
	blk := make([]float64, b*b)
	fill := func(i, j int) {
		for t := range blk {
			blk[t] = rng.Float64()*2 - 1
		}
		bb.AddBlock(i, j, blk)
	}
	for i := 0; i < nbr; i++ {
		for j := 0; j < nbc; j++ {
			if rng.Float64() < density {
				fill(i, j)
			}
		}
		if nbr == nbc {
			fill(i, i)
		}
	}
	return bb.Build()
}

// TestBSRMulVecMatchesCSR is the ulp_equal_csr property from the blocked
// storage design: on a matrix assembled through blocks, the 3x3
// register-blocked kernel must reproduce the scalar CSR product to 0 ULP,
// because both sum the same values in the same left-to-right order. This
// is what makes BSR-by-default safe for the bitwise determinism test.
func TestBSRMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		a := randBSR(rng, n, n, 3, 0.3)
		c := a.ToCSR()
		x := make([]float64, a.Cols())
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		yb := make([]float64, a.Rows())
		yc := make([]float64, a.Rows())
		a.MulVec(x, yb)
		c.MulVec(x, yc)
		for i := range yb {
			if math.Float64bits(yb[i]) != math.Float64bits(yc[i]) {
				t.Fatalf("trial %d: BSR.MulVec differs from CSR at row %d: %x vs %x",
					trial, i, math.Float64bits(yb[i]), math.Float64bits(yc[i]))
			}
		}
		// Ragged scalar ranges must agree bitwise too.
		lo, hi := 1, a.Rows()-1
		if lo < hi {
			yb2 := make([]float64, a.Rows())
			yc2 := make([]float64, a.Rows())
			a.MulVecRange(x, yb2, lo, hi)
			c.MulVecRange(x, yc2, lo, hi)
			for i := lo; i < hi; i++ {
				if math.Float64bits(yb2[i]) != math.Float64bits(yc2[i]) {
					t.Fatalf("trial %d: MulVecRange differs at row %d", trial, i)
				}
			}
		}
	}
}

// TestBSRGenericBlockSize exercises the non-specialized kernel (B != 3)
// against the expanded CSR product.
func TestBSRGenericBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, b := range []int{1, 2, 4} {
		n := 7
		a := randBSR(rng, n, n, b, 0.4)
		c := a.ToCSR()
		x := make([]float64, a.Cols())
		for i := range x {
			x[i] = rng.Float64()
		}
		yb := make([]float64, a.Rows())
		yc := make([]float64, a.Rows())
		a.MulVec(x, yb)
		c.MulVec(x, yc)
		for i := range yb {
			if math.Abs(yb[i]-yc[i]) > 1e-12 {
				t.Fatalf("B=%d: row %d: %g vs %g", b, i, yb[i], yc[i])
			}
		}
	}
}

// TestSharedAssemblyBlocking checks the assembly equivalence that lets fem
// emit blocks: feeding the same per-node-pair contributions to a scalar
// Builder and a BlockBuilder yields bitwise-identical scalar matrices, and
// FromCSR on the scalar result reproduces the blocked one exactly.
func TestSharedAssemblyBlocking(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const nodes, b = 12, 3
	sb := NewBuilder(nodes*b, nodes*b)
	blb := NewBlockBuilder(nodes, nodes, b)
	blk := make([]float64, b*b)
	for e := 0; e < 40; e++ {
		i, j := rng.Intn(nodes), rng.Intn(nodes)
		for t := range blk {
			blk[t] = rng.Float64()*2 - 1
		}
		for d := 0; d < b; d++ {
			for c := 0; c < b; c++ {
				sb.Add(b*i+d, b*j+c, blk[d*b+c])
			}
		}
		blb.AddBlock(i, j, blk)
	}
	scalar := sb.Build()
	blocked := blb.Build()

	exp := blocked.ToCSR()
	if exp.NNZ() != scalar.NNZ() {
		t.Fatalf("pattern mismatch: blocked expands to %d entries, scalar has %d", exp.NNZ(), scalar.NNZ())
	}
	for i := 0; i < scalar.NRows; i++ {
		ce, ve := exp.Row(i)
		cs, vs := scalar.Row(i)
		for k := range ce {
			if ce[k] != cs[k] || math.Float64bits(ve[k]) != math.Float64bits(vs[k]) {
				t.Fatalf("row %d entry %d differs: (%d,%x) vs (%d,%x)",
					i, k, ce[k], math.Float64bits(ve[k]), cs[k], math.Float64bits(vs[k]))
			}
		}
	}

	back, err := FromCSR(scalar, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bsrEqual(back, blocked) {
		t.Fatal("FromCSR(scalar assembly) does not reproduce the BlockBuilder matrix")
	}
}

func bsrEqual(a, b *BSR) bool {
	if a.NBRows != b.NBRows || a.NBCols != b.NBCols || a.B != b.B ||
		len(a.ColIdx) != len(b.ColIdx) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			return false
		}
	}
	return true
}

// TestNodeWeightsExpandBlocks: NodeWeights recognizes exactly the w·I
// restrictions ExpandBlocks produces, and the round trip is bitwise.
func TestNodeWeightsExpandBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	rn := randCSR(rng, 6, 15, 0.3)
	r := ExpandBlocks(rn, 3)
	got, ok := NodeWeights(r, 3)
	if !ok {
		t.Fatal("NodeWeights rejected a conforming expansion")
	}
	if got.NRows != rn.NRows || got.NCols != rn.NCols || got.NNZ() != rn.NNZ() {
		t.Fatalf("round-trip shape mismatch: %dx%d/%d vs %dx%d/%d",
			got.NRows, got.NCols, got.NNZ(), rn.NRows, rn.NCols, rn.NNZ())
	}
	for i := 0; i < rn.NRows; i++ {
		cg, vg := got.Row(i)
		cw, vw := rn.Row(i)
		for k := range cg {
			if cg[k] != cw[k] || math.Float64bits(vg[k]) != math.Float64bits(vw[k]) {
				t.Fatalf("node weight (%d,%d) differs", i, cg[k])
			}
		}
	}

	// A restriction with an off-component entry is not conforming.
	bad := r.Clone()
	bb := NewBuilder(r.NRows, r.NCols)
	for i := 0; i < bad.NRows; i++ {
		cols, vals := bad.Row(i)
		for k := range cols {
			bb.Add(i, cols[k], vals[k])
		}
	}
	bb.Add(0, 1, 0.25) // couples component 0 to component 1
	if _, ok := NodeWeights(bb.Build(), 3); ok {
		t.Fatal("NodeWeights accepted a component-coupling restriction")
	}
}

// TestGalerkinBSRMatchesScalar: the blocked triple product agrees with the
// scalar Galerkin product entrywise to rounding, has the same block-row
// dimensions, and stays in BSR for conforming restrictions.
func TestGalerkinBSRMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const nf, nc, b = 14, 5, 3
	// Symmetric block fine operator.
	bb := NewBlockBuilder(nf, nf, b)
	blk := make([]float64, b*b)
	blkT := make([]float64, b*b)
	for e := 0; e < 50; e++ {
		i, j := rng.Intn(nf), rng.Intn(nf)
		for t := range blk {
			blk[t] = rng.Float64()*2 - 1
		}
		for d := 0; d < b; d++ {
			for c := 0; c < b; c++ {
				blkT[c*b+d] = blk[d*b+c]
			}
		}
		bb.AddBlock(i, j, blk)
		bb.AddBlock(j, i, blkT)
	}
	a := bb.Build()
	rn := randCSR(rng, nc, nf, 0.4)
	r := ExpandBlocks(rn, b)

	coarse := GalerkinBSR(r, a)
	cb, ok := coarse.(*BSR)
	if !ok {
		t.Fatalf("GalerkinBSR fell back to %T on a conforming restriction", coarse)
	}
	want := Galerkin(r, a.ToCSR())
	if cb.Rows() != want.NRows || cb.Cols() != want.NCols {
		t.Fatalf("coarse dims %dx%d, want %dx%d", cb.Rows(), cb.Cols(), want.NRows, want.NCols)
	}
	scale := want.InfNorm() + 1
	for i := 0; i < want.NRows; i++ {
		for j := 0; j < want.NCols; j++ {
			if math.Abs(cb.At(i, j)-want.At(i, j)) > 1e-12*scale {
				t.Fatalf("coarse entry (%d,%d): blocked %g vs scalar %g", i, j, cb.At(i, j), want.At(i, j))
			}
		}
	}

	// Non-conforming restriction: must fall back and still match.
	nb := NewBuilder(r.NRows, r.NCols)
	for i := 0; i < r.NRows; i++ {
		cols, vals := r.Row(i)
		for k := range cols {
			nb.Add(i, cols[k], vals[k])
		}
	}
	nb.Add(0, 1, 0.5)
	rNon := nb.Build()
	coarse2, ok := GalerkinBSR(rNon, a).(interface{ At(i, j int) float64 })
	if !ok {
		t.Fatal("non-conforming fallback returned an operator without At")
	}
	want2 := Galerkin(rNon, a.ToCSR())
	for i := 0; i < want2.NRows; i++ {
		for j := 0; j < want2.NCols; j++ {
			if math.Abs(coarse2.At(i, j)-want2.At(i, j)) > 1e-12*scale {
				t.Fatalf("fallback coarse entry (%d,%d) differs", i, j)
			}
		}
	}
}

// TestAutoBlock: node-aligned square matrices block; misaligned shapes and
// fill-heavy patterns stay CSR.
func TestAutoBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	a := randBSR(rng, 8, 8, 3, 0.3).ToCSR()
	if _, ok := AutoBlock(a, 3).(*BSR); !ok {
		t.Fatal("AutoBlock kept a block-aligned matrix in CSR")
	}
	odd := randCSR(rng, 10, 10, 0.3)
	if _, ok := AutoBlock(odd, 3).(*CSR); !ok {
		t.Fatal("AutoBlock blocked a matrix with indivisible dimensions")
	}
	// A scalar diagonal blocks with 3x fill (one entry per 9-slot block):
	// the fill guard must keep it scalar.
	diag := Identity(30)
	if _, ok := AutoBlock(diag, 3).(*CSR); !ok {
		t.Fatal("AutoBlock accepted a 3x fill blow-up")
	}
}

// TestBSRDiagAndAt: scalar accessors agree with the expansion.
func TestBSRDiagAndAt(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := randBSR(rng, 6, 6, 3, 0.3)
	c := a.ToCSR()
	da, dc := a.Diag(), c.Diag()
	for i := range da {
		if math.Float64bits(da[i]) != math.Float64bits(dc[i]) {
			t.Fatalf("Diag[%d] differs", i)
		}
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(c.At(i, j)) {
				t.Fatalf("At(%d,%d) differs", i, j)
			}
		}
	}
	db := a.DiagBlocks()
	for ib := 0; ib < a.NBRows; ib++ {
		for d := 0; d < 3; d++ {
			for e := 0; e < 3; e++ {
				if math.Float64bits(db[ib*9+d*3+e]) != math.Float64bits(a.At(3*ib+d, 3*ib+e)) {
					t.Fatalf("DiagBlocks[%d](%d,%d) differs from At", ib, d, e)
				}
			}
		}
	}
}
