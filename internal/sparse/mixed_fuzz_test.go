package sparse

import (
	"math"
	"testing"

	"prometheus/internal/la"
)

// decodeSPD turns fuzz bytes into a small symmetric diagonally dominant
// M-matrix (Laplacian-like: negative off-diagonals, diagonal = |row sum|
// + shift) with an even dimension, plus a right-hand side. Such systems
// are SPD, and both weighted Jacobi and the aggregation two-grid cycle
// below provably converge on them.
func decodeSPD(data []byte) (*CSR, []float64) {
	nc := 2
	if len(data) > 0 {
		nc = int(data[0])%10 + 2
	}
	n := 2 * nc
	rowsum := make([]float64, n)
	type edge struct {
		i, j int
		w    float64
	}
	var edges []edge
	for k := 1; k+2 < len(data); k += 3 {
		i := int(data[k]) % n
		j := int(data[k+1]) % n
		if i == j {
			continue
		}
		w := (float64(data[k+2]) + 1) / 64
		edges = append(edges, edge{i, j, w})
		rowsum[i] += w
		rowsum[j] += w
	}
	b := NewBuilder(n, n)
	for _, e := range edges {
		b.Add(e.i, e.j, -e.w)
		b.Add(e.j, e.i, -e.w)
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowsum[i]+1)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		if len(data) > 0 {
			rhs[i] = float64(int(data[i%len(data)])-128) / 32
		} else {
			rhs[i] = 1
		}
	}
	return b.Build(), rhs
}

// aggregateCoarse builds the pairwise-aggregation Galerkin coarse matrix
// A_c(I,J) = sum of A(i,j) over i in {2I,2I+1}, j in {2J,2J+1}.
func aggregateCoarse(a *CSR) *CSR {
	nc := a.NRows / 2
	b := NewBuilder(nc, nc)
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			b.Add(i/2, a.ColIdx[k]/2, a.Val[k])
		}
	}
	return b.Build()
}

// twoGridIters runs a standalone two-grid V-cycle iteration — weighted
// Jacobi smoothing on the f64 fine level, aggregation transfer, weighted
// Jacobi on the (possibly narrowed) coarse operator — until the f64
// residual drops below rtol, and returns the cycle count (maxIt when it
// never converges). The fine level, the residual and both transfers stay
// f64 regardless of the coarse storage, mirroring the mixed-precision
// multigrid design.
func twoGridIters(a *CSR, coarse Operator, b []float64, rtol float64, maxIt int) int {
	const omega = 0.7
	const sweeps = 2
	n := a.NRows
	nc := coarse.Rows()
	d := a.Diag()
	dc := coarse.Diag()
	x := make([]float64, n)
	r := make([]float64, n)
	tmp := make([]float64, n)
	rc := make([]float64, nc)
	ec := make([]float64, nc)
	tc := make([]float64, nc)
	bnorm := la.Norm2(b)
	if bnorm == 0 {
		return 0
	}
	jacobi := func(op Operator, diag, xx, bb, t []float64) {
		for s := 0; s < sweeps; s++ {
			op.MulVec(xx, t)
			for i := range xx {
				xx[i] += omega * (bb[i] - t[i]) / diag[i]
			}
		}
	}
	for it := 1; it <= maxIt; it++ {
		jacobi(a, d, x, b, tmp)
		a.Residual(b, x, r)
		for j := 0; j < nc; j++ {
			rc[j] = r[2*j] + r[2*j+1]
			ec[j] = 0
		}
		// A handful of coarse sweeps stand in for the coarse solve; this
		// is where the f32 operator participates in the mixed variant.
		for s := 0; s < 10; s++ {
			coarse.MulVec(ec, tc)
			for j := range ec {
				ec[j] += omega * (rc[j] - tc[j]) / dc[j]
			}
		}
		for j := 0; j < nc; j++ {
			x[2*j] += ec[j]
			x[2*j+1] += ec[j]
		}
		jacobi(a, d, x, b, tmp)
		a.Residual(b, x, r)
		if la.Norm2(r) <= rtol*bnorm {
			return it
		}
	}
	return maxIt
}

// FuzzMixedParity is the mixed-precision acceptance fuzz target: on
// arbitrary small SPD systems, the two-grid cycle with an f32-narrowed
// coarse operator must still converge to the full f64 tolerance — the
// coarse perturbation can slow the contraction, never cap the attainable
// accuracy — within a bounded extra-iteration budget over the all-f64
// cycle. It also pins the storage round-trip property: narrowing then
// widening moves each entry by at most half a float32 ULP.
func FuzzMixedParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 200, 2, 3, 17, 5, 5, 255})
	f.Add([]byte{9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 250, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeSPD(data)
		a32 := ToCSR32(a)
		for k, v := range a.Val {
			if w := float64(a32.Val[k]); math.Abs(w-v) > math.Abs(v)/(1<<24) {
				t.Fatalf("entry %d: f32 round trip moved %g by %g, beyond half a ULP", k, v, w-v)
			}
		}
		coarse := aggregateCoarse(a)
		const rtol = 1e-10
		const maxIt = 300
		full := twoGridIters(a, coarse, b, rtol, maxIt)
		if full >= maxIt {
			t.Fatalf("f64 two-grid did not converge in %d cycles", maxIt)
		}
		mixed := twoGridIters(a, ToCSR32(coarse), b, rtol, maxIt)
		if mixed >= maxIt {
			t.Fatalf("mixed two-grid did not converge in %d cycles (f64 took %d)", maxIt, full)
		}
		if mixed > full+5 {
			t.Fatalf("mixed cycle needs %d iterations vs %d for f64, beyond the +5 budget", mixed, full)
		}
	})
}
