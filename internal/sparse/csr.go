// Package sparse implements the compressed sparse row (CSR) matrix algebra
// that the solver is built on: assembly from triplets, matrix-vector
// products, transposition, general sparse matrix-matrix products, and the
// Galerkin triple product R·A·Rᵀ used to build coarse-grid operators.
// It is the stand-in for the PETSc Mat layer in the paper's Epimetheus.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"prometheus/internal/check"
	"prometheus/internal/obs"
)

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	NRows, NCols int
	RowPtr       []int     // len NRows+1
	ColIdx       []int     // len nnz, sorted within each row
	Val          []float64 // len nnz
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// Rows returns the number of rows. Part of the Operator interface.
func (a *CSR) Rows() int { return a.NRows }

// Cols returns the number of columns. Part of the Operator interface.
func (a *CSR) Cols() int { return a.NCols }

// Builder accumulates triplets (duplicates are summed) and converts to CSR.
type Builder struct {
	nRows, nCols int
	rows         []map[int]float64
}

// NewBuilder returns a builder for an r×c matrix.
func NewBuilder(r, c int) *Builder {
	return &Builder{nRows: r, nCols: c, rows: make([]map[int]float64, r)}
}

// Add accumulates A(i,j) += v.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.nRows || j < 0 || j >= b.nCols {
		panic(fmt.Sprintf("sparse: Add index (%d,%d) out of range %dx%d", i, j, b.nRows, b.nCols))
	}
	if b.rows[i] == nil {
		b.rows[i] = make(map[int]float64, 8)
	}
	b.rows[i][j] += v
}

// Set assigns A(i,j) = v, replacing any accumulated value.
func (b *Builder) Set(i, j int, v float64) {
	if b.rows[i] == nil {
		b.rows[i] = make(map[int]float64, 8)
	}
	b.rows[i][j] = v
}

// Build converts the accumulated triplets to CSR with sorted column indices.
// Exact zeros created by cancellation are retained (the symbolic pattern is
// what assembly produced), but entries never touched are absent.
func (b *Builder) Build() *CSR {
	rowPtr := make([]int, b.nRows+1)
	nnz := 0
	for i, r := range b.rows {
		rowPtr[i] = nnz
		nnz += len(r)
	}
	rowPtr[b.nRows] = nnz
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	for i, r := range b.rows {
		start := rowPtr[i]
		k := start
		for j := range r {
			colIdx[k] = j
			k++
		}
		cols := colIdx[start:k]
		sort.Ints(cols)
		for kk, j := range cols {
			val[start+kk] = r[j]
		}
	}
	out := &CSR{NRows: b.nRows, NCols: b.nCols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(out.NRows, out.NCols, out.RowPtr, out.ColIdx, len(out.Val), "sparse.Builder.Build")
	}
	return out
}

// At returns A(i,j) (zero when the entry is not stored). O(log row nnz).
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	k := lo + sort.SearchInts(a.ColIdx[lo:hi], j)
	if k < hi && a.ColIdx[k] == j {
		return a.Val[k]
	}
	return 0
}

// MulVec computes y = A·x.
func (a *CSR) MulVec(x, y []float64) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic("sparse: MulVec dimension mismatch")
	}
	sp := obs.Start(evSpMVCSR)
	a.MulVecRange(x, y, 0, a.NRows)
	sp.EndFlops(2 * int64(len(a.ColIdx)))
}

// MulVecRange computes y[i] = (A·x)[i] for i in [lo, hi). It is the kernel
// for row-partitioned parallel products. The inner loop ranges over
// per-row subslices of equal length so the compiler can prove the
// accesses in-bounds and drop the checks (see promlint -bce).
func (a *CSR) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		p, q := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[p:q]
		vals := a.Val[p:q:q]
		vals = vals[:len(cols)]
		s := 0.0
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] = s
	}
}

// MulVecFlops returns the flop count of one MulVec (2·nnz, the standard
// convention used in the paper's Mflop rates).
func (a *CSR) MulVecFlops() int64 { return 2 * int64(a.NNZ()) }

// Residual computes r = b - A·x.
func (a *CSR) Residual(b, x, r []float64) {
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// Diag returns the diagonal of A as a slice (zeros where absent).
func (a *CSR) Diag() []float64 {
	n := a.NRows
	if a.NCols < n {
		n = a.NCols
	}
	d := make([]float64, a.NRows)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// Transpose returns Aᵀ.
func (a *CSR) Transpose() *CSR {
	nnz := a.NNZ()
	rowPtr := make([]int, a.NCols+1)
	for _, j := range a.ColIdx {
		rowPtr[j+1]++
	}
	for j := 0; j < a.NCols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, a.NCols)
	copy(next, rowPtr[:a.NCols])
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			colIdx[p] = i
			val[p] = a.Val[k]
			next[j]++
		}
	}
	// Rows of the transpose come out sorted because we scan i ascending.
	out := &CSR{NRows: a.NCols, NCols: a.NRows, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(out.NRows, out.NCols, out.RowPtr, out.ColIdx, len(out.Val), "sparse.Transpose")
	}
	return out
}

// Mul returns C = A·B using a Gustavson row-merge.
func (a *CSR) Mul(b *CSR) *CSR {
	if a.NCols != b.NRows {
		panic("sparse: Mul dimension mismatch")
	}
	rowPtr := make([]int, a.NRows+1)
	var colIdx []int
	var val []float64
	acc := make([]float64, b.NCols)
	mark := make([]int, b.NCols)
	for i := range mark {
		mark[i] = -1
	}
	pattern := make([]int, 0, 64)
	for i := 0; i < a.NRows; i++ {
		pattern = pattern[:0]
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			j := a.ColIdx[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
				c := b.ColIdx[kb]
				if mark[c] != i {
					mark[c] = i
					acc[c] = 0
					pattern = append(pattern, c)
				}
				acc[c] += av * b.Val[kb]
			}
		}
		sort.Ints(pattern)
		for _, c := range pattern {
			colIdx = append(colIdx, c)
			val = append(val, acc[c])
		}
		rowPtr[i+1] = len(colIdx)
	}
	out := &CSR{NRows: a.NRows, NCols: b.NCols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(out.NRows, out.NCols, out.RowPtr, out.ColIdx, len(out.Val), "sparse.Mul")
	}
	return out
}

// Galerkin returns the coarse-grid operator R·A·Rᵀ (the paper's
// Acoarse = R·Afine·Rᵀ). R is nc×nf, A is nf×nf; the result is nc×nc.
func Galerkin(r, a *CSR) *CSR {
	ra := r.Mul(a)
	out := ra.Mul(r.Transpose())
	if check.Enabled {
		// The triple product must preserve symmetry of the fine operator.
		if a.IsSymmetric(1e-10) {
			check.Assert(out.IsSymmetric(1e-8), "sparse.Galerkin: coarse operator lost symmetry")
		}
	}
	return out
}

// Scale multiplies every stored entry by s.
func (a *CSR) Scale(s float64) {
	for i := range a.Val {
		a.Val[i] *= s
	}
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	c := &CSR{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return c
}

// IsSymmetric reports whether A equals Aᵀ to within tol on every stored
// entry (relative to the largest entry magnitude).
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.NRows != a.NCols {
		return false
	}
	maxAbs := 0.0
	for _, v := range a.Val {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	if maxAbs == 0 {
		return true
	}
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if math.Abs(a.Val[k]-a.At(j, i)) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// Submatrix extracts the principal submatrix A(idx, idx). The returned
// matrix is dense-ordered by the position of each index in idx.
func (a *CSR) Submatrix(idx []int) *CSR {
	pos := make(map[int]int, len(idx))
	for p, i := range idx {
		pos[i] = p
	}
	b := NewBuilder(len(idx), len(idx))
	for p, i := range idx {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if q, ok := pos[a.ColIdx[k]]; ok {
				b.Set(p, q, a.Val[k])
			}
		}
	}
	return b.Build()
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = i
		val[i] = 1
	}
	return &CSR{NRows: n, NCols: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Row returns the column indices and values of row i (shared storage; do
// not modify).
func (a *CSR) Row(i int) ([]int, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// InfNorm returns the maximum absolute row sum.
func (a *CSR) InfNorm() float64 {
	m := 0.0
	for i := 0; i < a.NRows; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += math.Abs(a.Val[k])
		}
		if s > m {
			m = s
		}
	}
	return m
}
