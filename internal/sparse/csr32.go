package sparse

import (
	"math"
	"sort"

	"prometheus/internal/check"
	"prometheus/internal/la"
	"prometheus/internal/obs"
)

// CSR32 is compressed sparse row storage with float32 values and int32
// column indices: 8 bytes per stored entry against scalar CSR's 16. It is
// the coarse-level storage of the mixed-precision multigrid mode — the
// smoothers run on f32 matrix data while every vector, accumulator and
// grid transfer stays float64, so only the operator representation is
// narrowed, never the arithmetic. Kernels widen each value through la.W64
// (one register instruction) and accumulate in float64; the promlint
// accumulation-width rule enforces that discipline mechanically.
type CSR32 struct {
	NRows, NCols int
	RowPtr       []int     // len NRows+1
	ColIdx       []int32   // len nnz, sorted within each row
	Val          []float32 // len nnz
}

// NNZ returns the number of stored entries.
func (a *CSR32) NNZ() int { return len(a.ColIdx) }

// Rows returns the number of rows. Part of the Operator interface.
func (a *CSR32) Rows() int { return a.NRows }

// Cols returns the number of columns. Part of the Operator interface.
func (a *CSR32) Cols() int { return a.NCols }

// MulVecFlops returns the flop count of one MulVec (2·nnz).
func (a *CSR32) MulVecFlops() int64 { return 2 * int64(a.NNZ()) }

// ToCSR32 narrows a scalar matrix into f32 storage through the sanctioned
// la.To32 boundary. Under promdebug it asserts every value is finite and
// within float32 range first, so an unrepresentable coarse operator fails
// at build time, not inside a smoother sweep.
func ToCSR32(a *CSR) *CSR32 {
	if check.Enabled {
		check.F32Representable(a.Val, "sparse.ToCSR32")
	}
	colIdx := make([]int32, len(a.ColIdx))
	for k, j := range a.ColIdx {
		if j > math.MaxInt32 {
			panic("sparse: ToCSR32 column index overflows int32")
		}
		colIdx[k] = int32(j)
	}
	val := make([]float32, len(a.Val))
	la.To32(val, a.Val)
	return &CSR32{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: colIdx,
		Val:    val,
	}
}

// ToCSR widens the storage back to scalar CSR (exact: widening loses
// nothing, so ToCSR32(a).ToCSR() differs from a by at most one f32
// rounding per entry, locked in by FuzzMixedParity).
func (a *CSR32) ToCSR() *CSR {
	colIdx := make([]int, len(a.ColIdx))
	for k, j := range a.ColIdx {
		colIdx[k] = int(j)
	}
	val := make([]float64, len(a.Val))
	la.Wide64(val, a.Val)
	return &CSR{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: colIdx,
		Val:    val,
	}
}

// MulVec computes y = A·x with float64 accumulation.
func (a *CSR32) MulVec(x, y []float64) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic("sparse: CSR32.MulVec dimension mismatch")
	}
	sp := obs.Start(evSpMVCSR32)
	a.MulVecRange(x, y, 0, a.NRows)
	sp.EndFlops(2 * int64(len(a.ColIdx)))
}

// MulVecRange computes y[i] = (A·x)[i] for i in [lo, hi) — the same
// row-partitioned kernel contract as CSR.MulVecRange, so the pool path
// and the shared-write ownership proof carry over unchanged. Each stored
// value is widened in-register; the row sum is a float64.
func (a *CSR32) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		p, q := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[p:q]
		vals := a.Val[p:q:q]
		vals = vals[:len(cols)]
		s := 0.0
		for k, j := range cols {
			s += la.W64(vals[k]) * x[j]
		}
		y[i] = s
	}
}

// Residual computes r = b - A·x.
func (a *CSR32) Residual(b, x, r []float64) {
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// At returns A(i,j) widened to float64 (zero when absent).
func (a *CSR32) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	k := lo + sort.Search(hi-lo, func(t int) bool { return int(a.ColIdx[lo+t]) >= j })
	if k < hi && int(a.ColIdx[k]) == j {
		return la.W64(a.Val[k])
	}
	return 0
}

// Diag returns the widened diagonal (zeros where absent).
func (a *CSR32) Diag() []float64 {
	n := a.NRows
	if a.NCols < n {
		n = a.NCols
	}
	d := make([]float64, a.NRows)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// Row returns the column indices and values of row i (shared storage; do
// not modify). It is the f32 counterpart of CSR.Row for setup-time
// traversal.
func (a *CSR32) Row(i int) ([]int32, []float32) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// StorageBytes reports the bytes one storage format holds resident per
// operator: values, column indices and row pointers. It feeds the
// mixedbench bytes/dof accounting; unsupported operator types count only
// what the Operator interface exposes (8 bytes per stored entry).
func StorageBytes(op Operator) int64 {
	switch a := op.(type) {
	case *CSR:
		return int64(8*len(a.Val) + 8*len(a.ColIdx) + 8*len(a.RowPtr))
	case *CSR32:
		return int64(4*len(a.Val) + 4*len(a.ColIdx) + 8*len(a.RowPtr))
	case *BSR:
		return int64(8*len(a.Val) + 8*len(a.ColIdx) + 8*len(a.RowPtr))
	case *BSR32:
		return int64(4*len(a.Val) + 4*len(a.ColIdx) + 8*len(a.RowPtr))
	default:
		return 8 * int64(op.NNZ())
	}
}
