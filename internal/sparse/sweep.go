package sparse

import (
	"fmt"

	"prometheus/internal/la"
)

// This file implements the Sweeper capability for the four assembled
// storage formats: the ordered SOR sweep each storage provides to the
// Gauss-Seidel smoother. The kernels moved here verbatim from
// internal/smooth when the Operator interface was split into core apply
// plus capabilities — the loop bodies are unchanged so smoother iterates
// stay bitwise identical across the move. On scalar storage the sweep
// updates one unknown at a time; on blocked storage it runs the paper's
// nodal variant, solving each node's BxB diagonal block exactly per visit
// with inverses the smoother precomputes from DiagBlocks.

// Compile-time capability conformance.
var (
	_ Sweeper = (*CSR)(nil)
	_ Sweeper = (*BSR)(nil)
	_ Sweeper = (*CSR32)(nil)
	_ Sweeper = (*BSR32)(nil)
)

// SORSweep implements Sweeper. Scalar CSR ignores invBlk and scratch.
func (a *CSR) SORSweep(x, b []float64, omega float64, backward bool, invBlk, scratch []float64) int64 {
	n := a.NRows
	for k := 0; k < n; k++ {
		i := k
		if backward {
			i = n - 1 - k
		}
		sum := b[i]
		diag := 0.0
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi:hi]
		vals = vals[:len(cols)] // equal lengths let the compiler drop bounds checks
		for p, j := range cols {
			if j == i {
				diag = vals[p]
				continue
			}
			sum -= vals[p] * x[j]
		}
		if diag == 0 {
			panic(fmt.Sprintf("sparse: SORSweep: zero diagonal at row %d", i))
		}
		x[i] += omega * (sum/diag - x[i])
	}
	return a.MulVecFlops() + 2*int64(n)
}

// SORSweep implements Sweeper: the node-block sweep. For each node the
// off-block row contribution is accumulated into scratch, then invBlk (the
// precomputed inverse of the BxB diagonal block) maps it to the exact
// block solution.
func (a *BSR) SORSweep(x, b []float64, omega float64, backward bool, invBlk, scratch []float64) int64 {
	if a.B == 3 {
		return a.sorSweep3(x, b, omega, backward, invBlk)
	}
	nb := a.NBRows
	bs := a.B
	bb := bs * bs
	sum := scratch[:bs]
	for k := 0; k < nb; k++ {
		ib := k
		if backward {
			ib = nb - 1 - k
		}
		br := b[ib*bs : ib*bs+bs : ib*bs+bs]
		for d := range sum {
			sum[d] = br[d]
		}
		for p := a.RowPtr[ib]; p < a.RowPtr[ib+1]; p++ {
			jb := a.ColIdx[p]
			if jb == ib {
				continue
			}
			v := a.Val[p*bb : (p+1)*bb : (p+1)*bb]
			xr := x[jb*bs : jb*bs+bs : jb*bs+bs]
			for d := 0; d < bs; d++ {
				acc := sum[d]
				row := v[d*bs : d*bs+bs]
				for c, vv := range row {
					acc -= vv * xr[c]
				}
				sum[d] = acc
			}
		}
		inv := invBlk[ib*bb : (ib+1)*bb : (ib+1)*bb]
		xr := x[ib*bs : ib*bs+bs : ib*bs+bs]
		for d := 0; d < bs; d++ {
			z := 0.0
			row := inv[d*bs : d*bs+bs]
			for c, vv := range row {
				z += vv * sum[c]
			}
			xr[d] += omega * (z - xr[d])
		}
	}
	return a.MulVecFlops() + int64(nb)*int64(2*bb+3*bs)
}

// sorSweep3 is the register-blocked 3x3 specialization: the three row
// accumulators live in registers across the block row, and the
// accumulation order matches the generic kernel exactly (entries left to
// right within each block row), so both paths produce identical iterates.
func (a *BSR) sorSweep3(x, b []float64, omega float64, backward bool, invBlk []float64) int64 {
	nb := a.NBRows
	for k := 0; k < nb; k++ {
		ib := k
		if backward {
			ib = nb - 1 - k
		}
		s0, s1, s2 := b[3*ib], b[3*ib+1], b[3*ib+2]
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		cols := a.ColIdx[p:q]
		vals := a.Val[9*p : 9*q : 9*q]
		vals = vals[:9*len(cols)]
		for kk, jb := range cols {
			if jb == ib {
				continue
			}
			v := vals[9*kk : 9*kk+9 : 9*kk+9]
			x0, x1, x2 := x[3*jb], x[3*jb+1], x[3*jb+2]
			s0 -= v[0] * x0
			s0 -= v[1] * x1
			s0 -= v[2] * x2
			s1 -= v[3] * x0
			s1 -= v[4] * x1
			s1 -= v[5] * x2
			s2 -= v[6] * x0
			s2 -= v[7] * x1
			s2 -= v[8] * x2
		}
		inv := invBlk[9*ib : 9*ib+9 : 9*ib+9]
		z0 := inv[0] * s0
		z0 += inv[1] * s1
		z0 += inv[2] * s2
		z1 := inv[3] * s0
		z1 += inv[4] * s1
		z1 += inv[5] * s2
		z2 := inv[6] * s0
		z2 += inv[7] * s1
		z2 += inv[8] * s2
		x[3*ib] += omega * (z0 - x[3*ib])
		x[3*ib+1] += omega * (z1 - x[3*ib+1])
		x[3*ib+2] += omega * (z2 - x[3*ib+2])
	}
	return a.MulVecFlops() + int64(nb)*int64(2*9+3*3)
}

// SORSweep implements Sweeper: the f32-storage scalar sweep. The row
// accumulator and the diagonal stay float64 (each stored value widened on
// use through la.W64), so only the matrix representation is narrow.
func (a *CSR32) SORSweep(x, b []float64, omega float64, backward bool, invBlk, scratch []float64) int64 {
	n := a.NRows
	for k := 0; k < n; k++ {
		i := k
		if backward {
			i = n - 1 - k
		}
		sum := b[i]
		diag := 0.0
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi:hi]
		vals = vals[:len(cols)] // equal lengths let the compiler drop bounds checks
		for p, j := range cols {
			if int(j) == i {
				diag = la.W64(vals[p])
				continue
			}
			sum -= la.W64(vals[p]) * x[j]
		}
		if diag == 0 {
			panic(fmt.Sprintf("sparse: SORSweep: zero diagonal at row %d", i))
		}
		x[i] += omega * (sum/diag - x[i])
	}
	return a.MulVecFlops() + 2*int64(n)
}

// SORSweep implements Sweeper: the f32-storage node-block sweep.
// Off-block contributions accumulate in the float64 scratch, and the block
// solve uses the f64 inverses computed at setup.
func (a *BSR32) SORSweep(x, b []float64, omega float64, backward bool, invBlk, scratch []float64) int64 {
	if a.B == 3 {
		return a.sorSweep3(x, b, omega, backward, invBlk)
	}
	nb := a.NBRows
	bs := a.B
	bb := bs * bs
	sum := scratch[:bs]
	for k := 0; k < nb; k++ {
		ib := k
		if backward {
			ib = nb - 1 - k
		}
		br := b[ib*bs : ib*bs+bs : ib*bs+bs]
		for d := range sum {
			sum[d] = br[d]
		}
		for p := a.RowPtr[ib]; p < a.RowPtr[ib+1]; p++ {
			jb := int(a.ColIdx[p])
			if jb == ib {
				continue
			}
			v := a.Val[p*bb : (p+1)*bb : (p+1)*bb]
			xr := x[jb*bs : jb*bs+bs : jb*bs+bs]
			for d := 0; d < bs; d++ {
				acc := sum[d]
				row := v[d*bs : d*bs+bs]
				for c, vv := range row {
					acc -= la.W64(vv) * xr[c]
				}
				sum[d] = acc
			}
		}
		inv := invBlk[ib*bb : (ib+1)*bb : (ib+1)*bb]
		xr := x[ib*bs : ib*bs+bs : ib*bs+bs]
		for d := 0; d < bs; d++ {
			z := 0.0
			row := inv[d*bs : d*bs+bs]
			for c, vv := range row {
				z += vv * sum[c]
			}
			xr[d] += omega * (z - xr[d])
		}
	}
	return a.MulVecFlops() + int64(nb)*int64(2*bb+3*bs)
}

// sorSweep3 is the register-blocked 3x3 specialization of the BSR32
// sweep, mirroring the BSR variant with widened operands and float64
// accumulators.
func (a *BSR32) sorSweep3(x, b []float64, omega float64, backward bool, invBlk []float64) int64 {
	nb := a.NBRows
	for k := 0; k < nb; k++ {
		ib := k
		if backward {
			ib = nb - 1 - k
		}
		s0, s1, s2 := b[3*ib], b[3*ib+1], b[3*ib+2]
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		cols := a.ColIdx[p:q]
		vals := a.Val[9*p : 9*q : 9*q]
		vals = vals[:9*len(cols)]
		for kk, jb := range cols {
			if int(jb) == ib {
				continue
			}
			v := vals[9*kk : 9*kk+9 : 9*kk+9]
			x0, x1, x2 := x[3*jb], x[3*jb+1], x[3*jb+2]
			s0 -= la.W64(v[0]) * x0
			s0 -= la.W64(v[1]) * x1
			s0 -= la.W64(v[2]) * x2
			s1 -= la.W64(v[3]) * x0
			s1 -= la.W64(v[4]) * x1
			s1 -= la.W64(v[5]) * x2
			s2 -= la.W64(v[6]) * x0
			s2 -= la.W64(v[7]) * x1
			s2 -= la.W64(v[8]) * x2
		}
		inv := invBlk[9*ib : 9*ib+9 : 9*ib+9]
		z0 := inv[0] * s0
		z0 += inv[1] * s1
		z0 += inv[2] * s2
		z1 := inv[3] * s0
		z1 += inv[4] * s1
		z1 += inv[5] * s2
		z2 := inv[6] * s0
		z2 += inv[7] * s1
		z2 += inv[8] * s2
		x[3*ib] += omega * (z0 - x[3*ib])
		x[3*ib+1] += omega * (z1 - x[3*ib+1])
		x[3*ib+2] += omega * (z2 - x[3*ib+2])
	}
	return a.MulVecFlops() + int64(nb)*int64(2*9+3*3)
}
