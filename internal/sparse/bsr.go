package sparse

import (
	"fmt"
	"math"
	"sort"

	"prometheus/internal/check"
	"prometheus/internal/obs"
)

// BSR is a block compressed sparse row matrix: the sparsity pattern is
// stored at node-block granularity and every stored block is a dense BxB
// tile. It is the analogue of PETSc's BAIJ format the paper credits for
// much of Prometheus's per-processor Mflop rate: for 3-dof-per-node
// elasticity one column index amortizes over nine matrix entries, so the
// SpMV streams 1/9th of the index traffic of scalar CSR and keeps three
// x-values in registers per block.
//
// Block k (the k-th stored block overall) lives in Val[k*B*B:(k+1)*B*B],
// row-major: entry (d,c) of the block at Val[k*B*B+d*B+c].
type BSR struct {
	NBRows, NBCols int // dimensions in blocks
	B              int // block size (3 for elasticity)
	RowPtr         []int
	ColIdx         []int // block column indices, sorted within each block row
	Val            []float64
}

// Rows returns the number of scalar rows.
func (a *BSR) Rows() int { return a.NBRows * a.B }

// Cols returns the number of scalar columns.
func (a *BSR) Cols() int { return a.NBCols * a.B }

// NNZ returns the number of stored scalar entries (every entry of every
// stored block, explicit zeros included).
func (a *BSR) NNZ() int { return len(a.ColIdx) * a.B * a.B }

// NNZBlocks returns the number of stored blocks.
func (a *BSR) NNZBlocks() int { return len(a.ColIdx) }

// BlockSize returns the scalar block dimension (the BlockDiagonaler
// capability).
func (a *BSR) BlockSize() int { return a.B }

// MulVecFlops returns the flop count of one MulVec (2·nnz).
func (a *BSR) MulVecFlops() int64 { return 2 * int64(a.NNZ()) }

// MulVec computes y = A·x.
func (a *BSR) MulVec(x, y []float64) {
	if len(x) != a.Cols() || len(y) != a.Rows() {
		panic("sparse: BSR.MulVec dimension mismatch")
	}
	sp := obs.Start(evSpMVBSR)
	if a.B == 3 {
		a.mulVec3(x, y, 0, a.NBRows)
	} else {
		a.mulVecBlocks(x, y, 0, a.NBRows)
	}
	sp.EndFlops(a.MulVecFlops())
}

// mulVec3 is the register-blocked 3x3 micro-kernel: y rows [3*lo, 3*hi).
// The three row accumulators live in registers across the whole block row,
// and each block contributes with the same left-to-right addition order as
// the expanded CSR row — y0 += v0*x0; y0 += v1*x1; ... — so the result is
// bitwise identical to CSR.MulVec on the expanded matrix (ulp_equal_csr,
// locked by TestBSRMulVecMatchesCSR).
func (a *BSR) mulVec3(x, y []float64, lo, hi int) {
	for ib := lo; ib < hi; ib++ {
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		cols := a.ColIdx[p:q]
		vals := a.Val[9*p : 9*q : 9*q]
		vals = vals[:9*len(cols)]
		var y0, y1, y2 float64
		for k, jb := range cols {
			v := vals[9*k : 9*k+9 : 9*k+9]
			x0, x1, x2 := x[3*jb], x[3*jb+1], x[3*jb+2]
			y0 += v[0] * x0
			y0 += v[1] * x1
			y0 += v[2] * x2
			y1 += v[3] * x0
			y1 += v[4] * x1
			y1 += v[5] * x2
			y2 += v[6] * x0
			y2 += v[7] * x1
			y2 += v[8] * x2
		}
		y[3*ib] = y0
		y[3*ib+1] = y1
		y[3*ib+2] = y2
	}
}

// mulVecBlocks is the generic block-size kernel for block rows [lo, hi).
func (a *BSR) mulVecBlocks(x, y []float64, lo, hi int) {
	b := a.B
	bb := b * b
	for ib := lo; ib < hi; ib++ {
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		yr := y[ib*b : ib*b+b : ib*b+b]
		for d := range yr {
			yr[d] = 0
		}
		for k := p; k < q; k++ {
			jb := a.ColIdx[k]
			v := a.Val[k*bb : k*bb+bb : k*bb+bb]
			xr := x[jb*b : jb*b+b : jb*b+b]
			for d := 0; d < b; d++ {
				s := yr[d]
				row := v[d*b : d*b+b]
				for c, vv := range row {
					s += vv * xr[c]
				}
				yr[d] = s
			}
		}
	}
}

// MulVecRange computes y[i] = (A·x)[i] for scalar rows i in [lo, hi).
// Block-aligned ranges take the blocked kernel; ragged edges fall back to
// a per-scalar-row loop with the same left-to-right addition order.
func (a *BSR) MulVecRange(x, y []float64, lo, hi int) {
	b := a.B
	if lo%b == 0 && hi%b == 0 {
		if b == 3 {
			a.mulVec3(x, y, lo/3, hi/3)
		} else {
			a.mulVecBlocks(x, y, lo/b, hi/b)
		}
		return
	}
	bb := b * b
	for i := lo; i < hi; i++ {
		ib, d := i/b, i%b
		s := 0.0
		for k := a.RowPtr[ib]; k < a.RowPtr[ib+1]; k++ {
			jb := a.ColIdx[k]
			row := a.Val[k*bb+d*b : k*bb+d*b+b]
			xr := x[jb*b : jb*b+b : jb*b+b]
			for c, vv := range row {
				s += vv * xr[c]
			}
		}
		y[i] = s
	}
}

// Residual computes r = b - A·x.
func (a *BSR) Residual(b, x, r []float64) {
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}

// At returns A(i,j) in scalar coordinates (zero when the block is absent).
func (a *BSR) At(i, j int) float64 {
	b := a.B
	ib, jb := i/b, j/b
	lo, hi := a.RowPtr[ib], a.RowPtr[ib+1]
	k := lo + sort.SearchInts(a.ColIdx[lo:hi], jb)
	if k < hi && a.ColIdx[k] == jb {
		return a.Val[k*b*b+(i%b)*b+(j%b)]
	}
	return 0
}

// Diag returns the scalar diagonal (zeros where the diagonal block is
// absent).
func (a *BSR) Diag() []float64 {
	b := a.B
	d := make([]float64, a.Rows())
	n := a.NBRows
	if a.NBCols < n {
		n = a.NBCols
	}
	for ib := 0; ib < n; ib++ {
		lo, hi := a.RowPtr[ib], a.RowPtr[ib+1]
		k := lo + sort.SearchInts(a.ColIdx[lo:hi], ib)
		if k < hi && a.ColIdx[k] == ib {
			blk := a.Val[k*b*b : (k+1)*b*b]
			for dd := 0; dd < b; dd++ {
				d[ib*b+dd] = blk[dd*b+dd]
			}
		}
	}
	return d
}

// DiagBlocks returns a copy of the BxB diagonal blocks, packed row-major
// per block row (zero blocks where absent). It feeds the node-block
// smoothers, which invert each block once at setup.
func (a *BSR) DiagBlocks() []float64 {
	if a.NBRows != a.NBCols {
		panic("sparse: DiagBlocks wants a square matrix")
	}
	b := a.B
	bb := b * b
	out := make([]float64, a.NBRows*bb)
	for ib := 0; ib < a.NBRows; ib++ {
		lo, hi := a.RowPtr[ib], a.RowPtr[ib+1]
		k := lo + sort.SearchInts(a.ColIdx[lo:hi], ib)
		if k < hi && a.ColIdx[k] == ib {
			copy(out[ib*bb:(ib+1)*bb], a.Val[k*bb:(k+1)*bb])
		}
	}
	return out
}

// FromCSR blocks a scalar matrix with block size b. Every stored scalar
// entry lands in a block; positions never stored in the scalar matrix
// become explicit zeros (fill). Assembly-produced elasticity matrices
// block with zero fill because the element loop touches all b*b entries of
// every node pair. Dimensions must be divisible by b.
func FromCSR(a *CSR, b int) (*BSR, error) {
	if b < 1 {
		return nil, fmt.Errorf("sparse: FromCSR block size %d < 1", b)
	}
	if a.NRows%b != 0 || a.NCols%b != 0 {
		return nil, fmt.Errorf("sparse: FromCSR %dx%d not divisible by block size %d", a.NRows, a.NCols, b)
	}
	nbr, nbc := a.NRows/b, a.NCols/b
	bb := b * b
	rowPtr := make([]int, nbr+1)
	mark := make([]int, nbc)
	for i := range mark {
		mark[i] = -1
	}
	// Pass 1: count distinct block columns per block row.
	for ib := 0; ib < nbr; ib++ {
		n := 0
		for d := 0; d < b; d++ {
			i := ib*b + d
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				jb := a.ColIdx[k] / b
				if mark[jb] != ib {
					mark[jb] = ib
					n++
				}
			}
		}
		rowPtr[ib+1] = rowPtr[ib] + n
	}
	colIdx := make([]int, rowPtr[nbr])
	val := make([]float64, rowPtr[nbr]*bb)
	for i := range mark {
		mark[i] = -1
	}
	pos := make([]int, nbc)
	// Pass 2: collect sorted block columns, then scatter values.
	for ib := 0; ib < nbr; ib++ {
		start := rowPtr[ib]
		n := start
		for d := 0; d < b; d++ {
			i := ib*b + d
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				jb := a.ColIdx[k] / b
				if mark[jb] != ib {
					mark[jb] = ib
					colIdx[n] = jb
					n++
				}
			}
		}
		cols := colIdx[start:n]
		sort.Ints(cols)
		for p, jb := range cols {
			pos[jb] = start + p
		}
		for d := 0; d < b; d++ {
			i := ib*b + d
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				val[pos[j/b]*bb+d*b+j%b] = a.Val[k]
			}
		}
	}
	out := &BSR{NBRows: nbr, NBCols: nbc, B: b, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(nbr, nbc, rowPtr, colIdx, len(colIdx), "sparse.FromCSR")
	}
	return out, nil
}

// ToCSR expands the blocked matrix to scalar CSR, emitting all B*B entries
// of every stored block (explicit zeros included). The expansion of an
// assembled matrix round-trips bitwise through FromCSR.
func (a *BSR) ToCSR() *CSR {
	b := a.B
	bb := b * b
	nnzb := len(a.ColIdx)
	rowPtr := make([]int, a.Rows()+1)
	colIdx := make([]int, nnzb*bb)
	val := make([]float64, nnzb*bb)
	n := 0
	for ib := 0; ib < a.NBRows; ib++ {
		p, q := a.RowPtr[ib], a.RowPtr[ib+1]
		for d := 0; d < b; d++ {
			for k := p; k < q; k++ {
				jb := a.ColIdx[k]
				base := k*bb + d*b
				for c := 0; c < b; c++ {
					colIdx[n] = jb*b + c
					val[n] = a.Val[base+c]
					n++
				}
			}
			rowPtr[ib*b+d+1] = n
		}
	}
	out := &CSR{NRows: a.Rows(), NCols: a.Cols(), RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(out.NRows, out.NCols, out.RowPtr, out.ColIdx, len(out.Val), "sparse.BSR.ToCSR")
	}
	return out
}

// IsSymmetric reports whether the expanded matrix equals its transpose to
// within tol, mirroring CSR.IsSymmetric. Setup-time diagnostic only.
func (a *BSR) IsSymmetric(tol float64) bool {
	if a.NBRows != a.NBCols {
		return false
	}
	maxAbs := 0.0
	for _, v := range a.Val {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	if maxAbs == 0 {
		return true
	}
	b := a.B
	bb := b * b
	for ib := 0; ib < a.NBRows; ib++ {
		for k := a.RowPtr[ib]; k < a.RowPtr[ib+1]; k++ {
			jb := a.ColIdx[k]
			for d := 0; d < b; d++ {
				for c := 0; c < b; c++ {
					if math.Abs(a.Val[k*bb+d*b+c]-a.At(jb*b+c, ib*b+d)) > tol*maxAbs {
						return false
					}
				}
			}
		}
	}
	return true
}

// BlockBuilder accumulates dense BxB blocks (duplicates are summed
// element-wise) and converts to BSR. It is the assembly-facing twin of
// Builder: finite-element code adds one block per node pair instead of b*b
// scalar triplets.
type BlockBuilder struct {
	nbRows, nbCols, b int
	rows              []map[int][]float64
}

// NewBlockBuilder returns a builder for an r x c block matrix with BxB
// blocks (dimensions in blocks, not scalars).
func NewBlockBuilder(r, c, b int) *BlockBuilder {
	if b < 1 {
		panic(fmt.Sprintf("sparse: NewBlockBuilder block size %d < 1", b))
	}
	return &BlockBuilder{nbRows: r, nbCols: c, b: b, rows: make([]map[int][]float64, r)}
}

// BlockSize returns the block size B.
func (bb *BlockBuilder) BlockSize() int { return bb.b }

// AddBlock accumulates A(i,j) += blk, where blk is a row-major BxB dense
// block and i, j are block (node) indices.
func (bb *BlockBuilder) AddBlock(i, j int, blk []float64) {
	if i < 0 || i >= bb.nbRows || j < 0 || j >= bb.nbCols {
		panic(fmt.Sprintf("sparse: AddBlock index (%d,%d) out of range %dx%d", i, j, bb.nbRows, bb.nbCols))
	}
	if len(blk) != bb.b*bb.b {
		panic(fmt.Sprintf("sparse: AddBlock got %d values, want %d", len(blk), bb.b*bb.b))
	}
	if bb.rows[i] == nil {
		bb.rows[i] = make(map[int][]float64, 8)
	}
	dst := bb.rows[i][j]
	if dst == nil {
		dst = make([]float64, bb.b*bb.b)
		bb.rows[i][j] = dst
	}
	for t, v := range blk {
		dst[t] += v
	}
}

// Build converts the accumulated blocks to BSR with sorted block columns.
func (bb *BlockBuilder) Build() *BSR {
	bsq := bb.b * bb.b
	rowPtr := make([]int, bb.nbRows+1)
	nnzb := 0
	for i, r := range bb.rows {
		rowPtr[i] = nnzb
		nnzb += len(r)
	}
	rowPtr[bb.nbRows] = nnzb
	colIdx := make([]int, nnzb)
	val := make([]float64, nnzb*bsq)
	for i, r := range bb.rows {
		start := rowPtr[i]
		k := start
		for j := range r {
			colIdx[k] = j
			k++
		}
		cols := colIdx[start:k]
		sort.Ints(cols)
		for kk, j := range cols {
			copy(val[(start+kk)*bsq:(start+kk+1)*bsq], r[j])
		}
	}
	out := &BSR{NBRows: bb.nbRows, NBCols: bb.nbCols, B: bb.b, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(out.NBRows, out.NBCols, out.RowPtr, out.ColIdx, len(out.ColIdx), "sparse.BlockBuilder.Build")
	}
	return out
}

// NodeWeights recognizes the node-conforming structure of a geometric
// restriction matrix: every block row consists of b scalar rows that are
// component-shifted copies of each other — R[b*i+d, b*j+d] = w for all d,
// nothing off the component diagonal. It returns the node-level weight
// matrix (one scalar per coarse/fine node pair) and true, or nil and false
// when any row deviates (smoothed-aggregation restrictions mix components
// and land here). Value comparison is bitwise: the structure is exact by
// construction, never approximate.
func NodeWeights(r *CSR, b int) (*CSR, bool) {
	if b <= 1 || r.NRows%b != 0 || r.NCols%b != 0 {
		return nil, false
	}
	nbr, nbc := r.NRows/b, r.NCols/b
	rowPtr := make([]int, nbr+1)
	colIdx := make([]int, 0, r.NNZ()/b)
	val := make([]float64, 0, r.NNZ()/b)
	for ib := 0; ib < nbr; ib++ {
		cols0, vals0 := r.Row(ib * b)
		for _, j := range cols0 {
			if j%b != 0 {
				return nil, false
			}
		}
		for d := 1; d < b; d++ {
			cols, vals := r.Row(ib*b + d)
			if len(cols) != len(cols0) {
				return nil, false
			}
			for k := range cols {
				if cols[k] != cols0[k]+d ||
					math.Float64bits(vals[k]) != math.Float64bits(vals0[k]) {
					return nil, false
				}
			}
		}
		for k, j := range cols0 {
			colIdx = append(colIdx, j/b)
			val = append(val, vals0[k])
		}
		rowPtr[ib+1] = len(colIdx)
	}
	return &CSR{NRows: nbr, NCols: nbc, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, true
}

// ExpandBlocks is the inverse of NodeWeights: it replicates each node
// weight w at (i,j) into b component-diagonal scalar entries
// (b*i+d, b*j+d). The expansion is bitwise identical to assembling the
// scalar restriction directly, which keeps the coarsening pipeline
// deterministic across the storage refactor.
func ExpandBlocks(rn *CSR, b int) *CSR {
	nnz := rn.NNZ()
	rowPtr := make([]int, rn.NRows*b+1)
	colIdx := make([]int, nnz*b)
	val := make([]float64, nnz*b)
	n := 0
	for i := 0; i < rn.NRows; i++ {
		cols, vals := rn.Row(i)
		for d := 0; d < b; d++ {
			for k, j := range cols {
				colIdx[n] = b*j + d
				val[n] = vals[k]
				n++
			}
			rowPtr[b*i+d+1] = n
		}
	}
	out := &CSR{NRows: rn.NRows * b, NCols: rn.NCols * b, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if check.Enabled {
		check.CSRWellFormed(out.NRows, out.NCols, out.RowPtr, out.ColIdx, len(out.Val), "sparse.ExpandBlocks")
	}
	return out
}

// GalerkinBSR builds the coarse-grid operator R·A·Rᵀ, staying in blocked
// storage when it can: if A is BSR and R has the node-conforming w·I
// structure of the geometric restrictions, the triple product runs as two
// blocked Gustavson passes over node-level weights and returns BSR. A
// non-conforming R (smoothed aggregation) or a scalar A falls back to the
// scalar Galerkin product, re-blocking the result when it stays
// node-aligned.
func GalerkinBSR(r *CSR, a Operator) Operator {
	ab, ok := a.(*BSR)
	if !ok {
		return Galerkin(r, AsCSR(a))
	}
	rn, conforming := NodeWeights(r, ab.B)
	if !conforming {
		return AutoBlock(Galerkin(r, ab.ToCSR()), ab.B)
	}
	ra := mulScalarBSR(rn, ab)
	out := mulBSRScalar(ra, rn.Transpose())
	if check.Enabled {
		if ab.IsSymmetric(1e-10) {
			check.Assert(out.IsSymmetric(1e-8), "sparse.GalerkinBSR: coarse operator lost symmetry")
		}
	}
	return out
}

// mulScalarBSR returns C = S·A where S is scalar (block-row weights) and A
// is blocked: C[i,j] = sum_k S(i,k)·A[k,j], a Gustavson row merge with
// dense-block accumulators.
func mulScalarBSR(s *CSR, a *BSR) *BSR {
	if s.NCols != a.NBRows {
		panic("sparse: mulScalarBSR dimension mismatch")
	}
	bb := a.B * a.B
	rowPtr := make([]int, s.NRows+1)
	var colIdx []int
	var val []float64
	acc := make([]float64, a.NBCols*bb)
	mark := make([]int, a.NBCols)
	for i := range mark {
		mark[i] = -1
	}
	pattern := make([]int, 0, 64)
	for i := 0; i < s.NRows; i++ {
		pattern = pattern[:0]
		for ks := s.RowPtr[i]; ks < s.RowPtr[i+1]; ks++ {
			k := s.ColIdx[ks]
			sv := s.Val[ks]
			for ka := a.RowPtr[k]; ka < a.RowPtr[k+1]; ka++ {
				jb := a.ColIdx[ka]
				dst := acc[jb*bb : (jb+1)*bb]
				if mark[jb] != i {
					mark[jb] = i
					for t := range dst {
						dst[t] = 0
					}
					pattern = append(pattern, jb)
				}
				src := a.Val[ka*bb : (ka+1)*bb : (ka+1)*bb]
				src = src[:len(dst)]
				for t, v := range src {
					dst[t] += sv * v
				}
			}
		}
		sort.Ints(pattern)
		for _, jb := range pattern {
			colIdx = append(colIdx, jb)
			val = append(val, acc[jb*bb:(jb+1)*bb]...)
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &BSR{NBRows: s.NRows, NBCols: a.NBCols, B: a.B, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// mulBSRScalar returns C = A·S where A is blocked and S scalar:
// C[i,j] = sum_k A[i,k]·S(k,j).
func mulBSRScalar(a *BSR, s *CSR) *BSR {
	if a.NBCols != s.NRows {
		panic("sparse: mulBSRScalar dimension mismatch")
	}
	bb := a.B * a.B
	rowPtr := make([]int, a.NBRows+1)
	var colIdx []int
	var val []float64
	acc := make([]float64, s.NCols*bb)
	mark := make([]int, s.NCols)
	for i := range mark {
		mark[i] = -1
	}
	pattern := make([]int, 0, 64)
	for i := 0; i < a.NBRows; i++ {
		pattern = pattern[:0]
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			k := a.ColIdx[ka]
			src := a.Val[ka*bb : (ka+1)*bb : (ka+1)*bb]
			for ks := s.RowPtr[k]; ks < s.RowPtr[k+1]; ks++ {
				j := s.ColIdx[ks]
				sv := s.Val[ks]
				dst := acc[j*bb : (j+1)*bb]
				if mark[j] != i {
					mark[j] = i
					for t := range dst {
						dst[t] = 0
					}
					pattern = append(pattern, j)
				}
				for t, v := range src {
					dst[t] += v * sv
				}
			}
		}
		sort.Ints(pattern)
		for _, j := range pattern {
			colIdx = append(colIdx, j)
			val = append(val, acc[j*bb:(j+1)*bb]...)
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &BSR{NBRows: a.NBRows, NBCols: s.NCols, B: a.B, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}
