package sparse

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeTriplets turns fuzz bytes into a deterministic triplet stream for
// an r×c builder: each 6-byte chunk is (i, j, raw value). Dimensions are
// derived from the first two bytes so the fuzzer also explores shapes.
func decodeTriplets(data []byte) (r, c int, trip [][3]float64) {
	if len(data) < 2 {
		return 1, 1, nil
	}
	r = int(data[0])%16 + 1
	c = int(data[1])%16 + 1
	data = data[2:]
	for len(data) >= 6 {
		i := int(data[0]) % r
		j := int(data[1]) % c
		raw := binary.LittleEndian.Uint32(data[2:6])
		// Map to a modest range including negatives and exact zeros.
		v := float64(int32(raw)) / (1 << 16)
		trip = append(trip, [3]float64{float64(i), float64(j), v})
		data = data[6:]
	}
	return r, c, trip
}

// FuzzBuilderToCSR checks the structural invariants of Builder.Build on
// arbitrary triplet streams: row-pointer monotonicity, strictly
// increasing in-range column indices, and agreement of every stored entry
// with a map-based accumulation of the same triplets.
func FuzzBuilderToCSR(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 0, 0, 1, 0, 0, 0})
	f.Add([]byte{8, 8, 1, 2, 255, 255, 255, 255, 1, 2, 1, 0, 0, 0, 7, 7, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, c, trip := decodeTriplets(data)
		b := NewBuilder(r, c)
		ref := make(map[[2]int]float64)
		for _, tr := range trip {
			i, j, v := int(tr[0]), int(tr[1]), tr[2]
			b.Add(i, j, v)
			ref[[2]int{i, j}] += v
		}
		a := b.Build()

		if a.NRows != r || a.NCols != c {
			t.Fatalf("dims %dx%d, want %dx%d", a.NRows, a.NCols, r, c)
		}
		if len(a.RowPtr) != r+1 || a.RowPtr[0] != 0 || a.RowPtr[r] != len(a.ColIdx) {
			t.Fatalf("bad RowPtr frame: %v (nnz %d)", a.RowPtr, len(a.ColIdx))
		}
		if len(a.Val) != len(a.ColIdx) {
			t.Fatalf("val/colidx length mismatch: %d vs %d", len(a.Val), len(a.ColIdx))
		}
		for i := 0; i < r; i++ {
			if a.RowPtr[i] > a.RowPtr[i+1] {
				t.Fatalf("RowPtr not monotone at row %d: %v", i, a.RowPtr)
			}
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j < 0 || j >= c {
					t.Fatalf("row %d: column %d out of range [0,%d)", i, j, c)
				}
				if k > a.RowPtr[i] && a.ColIdx[k-1] >= j {
					t.Fatalf("row %d: columns not strictly increasing: %v", i, a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]])
				}
				if got, want := a.Val[k], ref[[2]int{i, j}]; got != want {
					t.Fatalf("entry (%d,%d) = %g, want %g", i, j, got, want)
				}
			}
		}
		// Every accumulated triplet must be stored (pattern completeness).
		if nnz := len(ref); a.NNZ() != nnz {
			t.Fatalf("nnz = %d, want %d", a.NNZ(), nnz)
		}
	})
}

// decodeBlocks turns fuzz bytes into a deterministic block stream for an
// r x c block builder with 3x3 blocks: each chunk is (i, j, 9 raw bytes).
func decodeBlocks(data []byte) (r, c int, blocks [][]float64, idx [][2]int) {
	if len(data) < 2 {
		return 1, 1, nil, nil
	}
	r = int(data[0])%8 + 1
	c = int(data[1])%8 + 1
	data = data[2:]
	for len(data) >= 11 {
		i := int(data[0]) % r
		j := int(data[1]) % c
		blk := make([]float64, 9)
		for t := 0; t < 9; t++ {
			blk[t] = float64(int(data[2+t])-128) / 16
		}
		idx = append(idx, [2]int{i, j})
		blocks = append(blocks, blk)
		data = data[11:]
	}
	return r, c, blocks, idx
}

// FuzzBSRRoundTrip checks that arbitrary block matrices survive the
// ToCSR -> FromCSR round trip with bitwise-equal structure and blocks, and
// that the blocked product matches the expanded scalar product bitwise.
func FuzzBSRRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 3, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{5, 2, 4, 1, 255, 0, 128, 3, 9, 27, 81, 16, 64, 1, 0, 200, 200, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, c, blocks, idx := decodeBlocks(data)
		bb := NewBlockBuilder(r, c, 3)
		for k, ij := range idx {
			bb.AddBlock(ij[0], ij[1], blocks[k])
		}
		a := bb.Build()

		back, err := FromCSR(a.ToCSR(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !bsrEqual(a, back) {
			t.Fatal("BSR -> ToCSR -> FromCSR is not the identity")
		}

		x := make([]float64, a.Cols())
		for j := range x {
			if len(data) > 0 {
				x[j] = float64(int(data[j%len(data)])-128) / 32
			} else {
				x[j] = 1
			}
		}
		yb := make([]float64, a.Rows())
		yc := make([]float64, a.Rows())
		a.MulVec(x, yb)
		a.ToCSR().MulVec(x, yc)
		for i := range yb {
			if math.Float64bits(yb[i]) != math.Float64bits(yc[i]) {
				t.Fatalf("blocked SpMV differs from scalar at row %d: %g vs %g", i, yb[i], yc[i])
			}
		}
	})
}

// FuzzSpMV checks MulVec (and MulVecRange over a split) against a dense
// reference product built from the same triplets.
func FuzzSpMV(f *testing.F) {
	f.Add([]byte{4, 4, 0, 0, 16, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{2, 7, 1, 6, 200, 1, 0, 0, 0, 3, 9, 0, 0, 128, 50, 60})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, c, trip := decodeTriplets(data)
		b := NewBuilder(r, c)
		dense := make([]float64, r*c)
		for _, tr := range trip {
			i, j, v := int(tr[0]), int(tr[1]), tr[2]
			b.Add(i, j, v)
			dense[i*c+j] += v
		}
		a := b.Build()

		// x derived deterministically from the tail of the data.
		x := make([]float64, c)
		for j := range x {
			if len(data) > 0 {
				x[j] = float64(int(data[j%len(data)])-128) / 32
			} else {
				x[j] = 1
			}
		}

		want := make([]float64, r)
		for i := 0; i < r; i++ {
			s := 0.0
			for j := 0; j < c; j++ {
				s += dense[i*c+j] * x[j]
			}
			want[i] = s
		}

		got := make([]float64, r)
		a.MulVec(x, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("MulVec y[%d] = %g, want %g", i, got[i], want[i])
			}
		}

		// The row-partitioned kernel over a two-way split must agree.
		ranged := make([]float64, r)
		mid := r / 2
		a.MulVecRange(x, ranged, 0, mid)
		a.MulVecRange(x, ranged, mid, r)
		for i := range want {
			if ranged[i] != got[i] {
				t.Fatalf("MulVecRange y[%d] = %g, MulVec gave %g", i, ranged[i], got[i])
			}
		}
	})
}
