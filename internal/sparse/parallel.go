package sparse

import (
	"prometheus/internal/obs"
	"prometheus/internal/pool"
)

// This file holds the real-core shared-memory products: MulVec partitioned
// over a worker pool. Both storages dispatch their own MulVecRange, whose
// per-row arithmetic is identical on every partition, so the parallel
// product is bitwise equal to the serial one for any worker count (locked
// in by TestMulVecParallelBitwise). BSR dispatches block-aligned chunks so
// every worker runs the register-blocked fast path; the ragged fallback is
// reached only by a misaligned final clamp, which the aligned partition
// never produces.

// MulVecParallel computes y = A·x with rows partitioned over p's workers.
// The result is bitwise identical to MulVec.
func (a *CSR) MulVecParallel(p *pool.Pool, x, y []float64) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic("sparse: MulVecParallel dimension mismatch")
	}
	sp := obs.Start(evSpMVCSRPar)
	p.Dispatch(a, x, y, a.NRows, 1)
	sp.EndFlops(2 * int64(len(a.ColIdx)))
}

// MulVecParallel computes y = A·x with scalar rows partitioned over p's
// workers in block-aligned chunks. Bitwise identical to MulVec.
func (a *BSR) MulVecParallel(p *pool.Pool, x, y []float64) {
	if len(x) != a.Cols() || len(y) != a.Rows() {
		panic("sparse: BSR.MulVecParallel dimension mismatch")
	}
	sp := obs.Start(evSpMVBSRPar)
	p.Dispatch(a, x, y, a.Rows(), a.B)
	sp.EndFlops(a.MulVecFlops())
}

// MulVecParallel computes y = A·x with rows partitioned over p's workers.
// The f32 kernel runs the same per-row arithmetic on every partition, so
// the parallel product is bitwise identical to the serial CSR32 MulVec.
func (a *CSR32) MulVecParallel(p *pool.Pool, x, y []float64) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic("sparse: CSR32.MulVecParallel dimension mismatch")
	}
	sp := obs.Start(evSpMVCSR32Par)
	p.Dispatch(a, x, y, a.NRows, 1)
	sp.EndFlops(2 * int64(len(a.ColIdx)))
}

// MulVecParallel computes y = A·x with scalar rows partitioned over p's
// workers in block-aligned chunks. Bitwise identical to BSR32.MulVec.
func (a *BSR32) MulVecParallel(p *pool.Pool, x, y []float64) {
	if len(x) != a.Cols() || len(y) != a.Rows() {
		panic("sparse: BSR32.MulVecParallel dimension mismatch")
	}
	sp := obs.Start(evSpMVBSR32Par)
	p.Dispatch(a, x, y, a.Rows(), a.B)
	sp.EndFlops(a.MulVecFlops())
}

// ParallelOperator is implemented by storage formats whose product can
// run on a worker pool. All four storages qualify; algorithms that can
// exploit real cores (the parallel Jacobi smoother) type-switch on it.
type ParallelOperator interface {
	Operator
	MulVecParallel(p *pool.Pool, x, y []float64)
}

// Compile-time conformance for all storage formats.
var (
	_ ParallelOperator = (*CSR)(nil)
	_ ParallelOperator = (*BSR)(nil)
	_ ParallelOperator = (*CSR32)(nil)
	_ ParallelOperator = (*BSR32)(nil)
)

// DispatchAlign returns the partition alignment a row-range dispatch over
// op must respect: the block size for blocked storage (so chunks hit the
// blocked fast path and never split a node), 1 otherwise.
func DispatchAlign(op Operator) int {
	switch ab := op.(type) {
	case *BSR:
		return ab.B
	case *BSR32:
		return ab.B
	}
	return 1
}
