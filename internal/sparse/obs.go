package sparse

import "prometheus/internal/obs"

// Observability events. Separate CSR/BSR SpMV events let the phase
// benchmarks report measured Mflop/s per storage format.
var (
	evSpMVCSR    = obs.Register("sparse.spmv.csr")
	evSpMVBSR    = obs.Register("sparse.spmv.bsr")
	evSpMVCSRPar = obs.Register("sparse.spmv.csr.par")
	evSpMVBSRPar = obs.Register("sparse.spmv.bsr.par")
)
