package sparse

import "prometheus/internal/obs"

// Observability events. Separate CSR/BSR SpMV events let the phase
// benchmarks report measured Mflop/s per storage format.
var (
	evSpMVCSR      = obs.Register("sparse.spmv.csr")
	evSpMVBSR      = obs.Register("sparse.spmv.bsr")
	evSpMVCSRPar   = obs.Register("sparse.spmv.csr.par")
	evSpMVBSRPar   = obs.Register("sparse.spmv.bsr.par")
	evSpMVCSR32    = obs.Register("sparse.spmv.csr32")
	evSpMVBSR32    = obs.Register("sparse.spmv.bsr32")
	evSpMVCSR32Par = obs.Register("sparse.spmv.csr32.par")
	evSpMVBSR32Par = obs.Register("sparse.spmv.bsr32.par")
)
