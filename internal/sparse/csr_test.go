package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prometheus/internal/la"
)

// randCSR returns a random r×c matrix with about density*r*c entries.
func randCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	b := NewBuilder(r, c)
	n := int(density * float64(r*c))
	for k := 0; k < n; k++ {
		b.Add(rng.Intn(r), rng.Intn(c), rng.Float64()*2-1)
	}
	return b.Build()
}

// toDense converts for reference computations.
func toDense(a *CSR) *la.Dense {
	d := la.NewDense(a.NRows, a.NCols)
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			d.Add(i, j, vals[k])
		}
	}
	return d
}

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 2.5)
	b.Add(1, 0, -1)
	b.Set(1, 0, 3)
	a := b.Build()
	if a.At(0, 1) != 4 {
		t.Fatalf("At(0,1) = %v", a.At(0, 1))
	}
	if a.At(1, 0) != 3 {
		t.Fatalf("Set did not replace: %v", a.At(1, 0))
	}
	if a.At(0, 0) != 0 {
		t.Fatal("missing entry should read 0")
	}
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d", a.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestSortedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCSR(rng, 20, 30, 0.2)
	for i := 0; i < a.NRows; i++ {
		cols, _ := a.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Fatalf("row %d not sorted: %v", i, cols)
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randCSR(rng, 15, 12, 0.3)
	d := toDense(a)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.Float64()
	}
	y1 := make([]float64, 15)
	y2 := make([]float64, 15)
	a.MulVec(x, y1)
	d.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
	// Range product over a partition must equal the full product.
	y3 := make([]float64, 15)
	a.MulVecRange(x, y3, 0, 7)
	a.MulVecRange(x, y3, 7, 15)
	for i := range y1 {
		if y3[i] != y1[i] {
			t.Fatalf("MulVecRange mismatch at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := 1 + int(uint(seed)%20)
		c := 1 + int(uint(seed/7)%20)
		a := randCSR(rng, r, c, 0.25)
		att := a.Transpose().Transpose()
		if att.NRows != a.NRows || att.NCols != a.NCols || att.NNZ() != a.NNZ() {
			return false
		}
		for i := 0; i < a.NRows; i++ {
			c1, v1 := a.Row(i)
			c2, v2 := att.Row(i)
			if len(c1) != len(c2) {
				return false
			}
			for k := range c1 {
				if c1[k] != c2[k] || v1[k] != v2[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransposeValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSR(rng, 10, 8, 0.3)
	at := a.Transpose()
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if at.At(j, i) != vals[k] {
				t.Fatalf("Aᵀ(%d,%d) != A(%d,%d)", j, i, i, j)
			}
		}
	}
}

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 9, 14, 0.3)
	b := randCSR(rng, 14, 11, 0.3)
	c := a.Mul(b)
	cd := toDense(a).Mul(toDense(b))
	for i := 0; i < 9; i++ {
		for j := 0; j < 11; j++ {
			if math.Abs(c.At(i, j)-cd.At(i, j)) > 1e-12 {
				t.Fatalf("C(%d,%d) = %v want %v", i, j, c.At(i, j), cd.At(i, j))
			}
		}
	}
}

func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		a := randCSR(rng, 8, 8, 0.4)
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		// A(αx + y) == αAx + Ay
		xy := make([]float64, 8)
		for i := range xy {
			xy[i] = alpha*x[i] + y[i]
		}
		lhs := make([]float64, 8)
		a.MulVec(xy, lhs)
		ax := make([]float64, 8)
		ay := make([]float64, 8)
		a.MulVec(x, ax)
		a.MulVec(y, ay)
		for i := range lhs {
			if math.Abs(lhs[i]-(alpha*ax[i]+ay[i])) > 1e-8*(1+math.Abs(alpha)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGalerkinSymmetryAndValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Symmetric A.
	b := NewBuilder(12, 12)
	for k := 0; k < 40; k++ {
		i, j := rng.Intn(12), rng.Intn(12)
		v := rng.Float64()
		b.Add(i, j, v)
		b.Add(j, i, v)
	}
	a := b.Build()
	if !a.IsSymmetric(1e-12) {
		t.Fatal("setup: A not symmetric")
	}
	r := randCSR(rng, 5, 12, 0.4)
	c := Galerkin(r, a)
	if c.NRows != 5 || c.NCols != 5 {
		t.Fatalf("Galerkin dims %dx%d", c.NRows, c.NCols)
	}
	if !c.IsSymmetric(1e-10) {
		t.Fatal("R·A·Rᵀ not symmetric")
	}
	// Check against dense.
	rd := toDense(r)
	cd := rd.Mul(toDense(a)).Mul(rd.Transpose())
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(c.At(i, j)-cd.At(i, j)) > 1e-10 {
				t.Fatalf("Galerkin(%d,%d) = %v want %v", i, j, c.At(i, j), cd.At(i, j))
			}
		}
	}
}

func TestGalerkinPreservesSPD(t *testing.T) {
	// A SPD and R full row rank => RARᵀ SPD. Use identity-like R picking rows.
	rng := rand.New(rand.NewSource(8))
	n := 10
	bb := la.NewDense(n, n)
	for i := range bb.Data {
		bb.Data[i] = rng.Float64()
	}
	ad := bb.Transpose().Mul(bb)
	for i := 0; i < n; i++ {
		ad.Add(i, i, float64(n))
	}
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(i, j, ad.At(i, j))
		}
	}
	a := b.Build()
	rb := NewBuilder(4, n)
	for p, i := range []int{0, 3, 5, 9} {
		rb.Add(p, i, 1)
		if i+1 < n {
			rb.Add(p, i+1, 0.5)
		}
	}
	r := rb.Build()
	c := Galerkin(r, a)
	if _, err := la.NewCholesky(toDense(c)); err != nil {
		t.Fatalf("coarse operator not SPD: %v", err)
	}
}

func TestResidual(t *testing.T) {
	a := Identity(3)
	a.Scale(2)
	bvec := []float64{2, 4, 6}
	x := []float64{1, 1, 1}
	r := make([]float64, 3)
	a.Residual(bvec, x, r)
	if r[0] != 0 || r[1] != 2 || r[2] != 4 {
		t.Fatalf("r = %v", r)
	}
}

func TestSubmatrix(t *testing.T) {
	b := NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			b.Add(i, j, float64(10*i+j))
		}
	}
	a := b.Build()
	s := a.Submatrix([]int{3, 1})
	if s.At(0, 0) != 33 || s.At(0, 1) != 31 || s.At(1, 0) != 13 || s.At(1, 1) != 11 {
		t.Fatalf("Submatrix wrong: %v %v %v %v", s.At(0, 0), s.At(0, 1), s.At(1, 0), s.At(1, 1))
	}
}

func TestIdentityAndNorms(t *testing.T) {
	a := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(x, y)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity product")
		}
	}
	if a.InfNorm() != 1 {
		t.Fatal("InfNorm")
	}
	d := a.Diag()
	for _, v := range d {
		if v != 1 {
			t.Fatal("Diag")
		}
	}
	if a.MulVecFlops() != 8 {
		t.Fatalf("MulVecFlops = %d", a.MulVecFlops())
	}
	if a.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randCSR(rng, 5, 5, 0.5)
	c := a.Clone()
	if len(c.Val) > 0 {
		c.Val[0] += 100
		if a.Val[0] == c.Val[0] {
			t.Fatal("Clone aliases Val")
		}
	}
}

func TestRectangularGalerkinDims(t *testing.T) {
	// R: 3x7, A: 7x7 -> coarse 3x3.
	rng := rand.New(rand.NewSource(10))
	r := randCSR(rng, 3, 7, 0.5)
	a := randCSR(rng, 7, 7, 0.5)
	c := Galerkin(r, a)
	if c.NRows != 3 || c.NCols != 3 {
		t.Fatalf("dims %dx%d", c.NRows, c.NCols)
	}
}
