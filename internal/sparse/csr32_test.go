package sparse

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/pool"
)

// TestToCSR32RoundTrip checks that narrowing stores exactly the f32
// rounding of every entry (at most half a float32 ULP away from the f64
// source) and that the structure survives bitwise.
func TestToCSR32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randCSR(rng, 120, 90, 0.08)
	a32 := ToCSR32(a)
	if a32.NRows != a.NRows || a32.NCols != a.NCols || a32.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz %d", a32.NRows, a32.NCols, a32.NNZ())
	}
	for k, v := range a.Val {
		if int(a32.ColIdx[k]) != a.ColIdx[k] {
			t.Fatalf("column index %d changed", k)
		}
		if a32.Val[k] != float32(v) {
			t.Fatalf("entry %d: stored %v, want rounding of %g", k, a32.Val[k], v)
		}
		if w := float64(a32.Val[k]); math.Abs(w-v) > math.Abs(v)/(1<<24) {
			t.Fatalf("entry %d: round-trip error %g beyond half a float32 ULP of %g", k, w-v, v)
		}
	}
	back := a32.ToCSR()
	for k := range back.Val {
		if back.Val[k] != float64(a32.Val[k]) {
			t.Fatalf("widening entry %d is not exact", k)
		}
	}
}

// TestCSR32MulVecMatchesWidenedCSR locks in the kernel's arithmetic
// model: the f32 kernel widens each stored operand and accumulates in
// f64, which is exactly what the f64 CSR kernel does on the widened
// matrix — so the two products are bitwise identical.
func TestCSR32MulVecMatchesWidenedCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a32 := ToCSR32(randCSR(rng, 200, 200, 0.05))
	wide := a32.ToCSR()
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, 200)
	want := make([]float64, 200)
	a32.MulVec(x, got)
	wide.MulVec(x, want)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: %v != widened CSR's %v", i, got[i], want[i])
		}
	}
	// The row-partitioned kernel over a three-way split must agree bitwise.
	ranged := make([]float64, 200)
	a32.MulVecRange(x, ranged, 0, 70)
	a32.MulVecRange(x, ranged, 70, 150)
	a32.MulVecRange(x, ranged, 150, 200)
	for i := range ranged {
		if math.Float64bits(ranged[i]) != math.Float64bits(got[i]) {
			t.Fatalf("MulVecRange row %d: %v != %v", i, ranged[i], got[i])
		}
	}
	// Residual consistency: r = b - A·x.
	b := make([]float64, 200)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	r := make([]float64, 200)
	a32.Residual(b, x, r)
	for i := range r {
		if math.Float64bits(r[i]) != math.Float64bits(b[i]-got[i]) {
			t.Fatalf("Residual row %d: %v != %v", i, r[i], b[i]-got[i])
		}
	}
}

// TestBSR32MatchesWidenedBSR checks the blocked f32 kernels (register
// 3x3 fast path and the generic path) bitwise against the f64 BSR kernel
// on the widened matrix, plus the aligned and ragged MulVecRange paths.
func TestBSR32MatchesWidenedBSR(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, b := range []int{3, 4} {
		a32 := ToBSR32(randBSR(rng, 40, 40, b, 0.1))
		wide := a32.ToBSR()
		n := a32.Rows()
		x := make([]float64, a32.Cols())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, n)
		want := make([]float64, n)
		a32.MulVec(x, got)
		wide.MulVec(x, want)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("b=%d row %d: %v != widened BSR's %v", b, i, got[i], want[i])
			}
		}
		// Block-aligned split hits the fast path; the off-block split
		// exercises the ragged per-scalar-row fallback.
		for _, splits := range [][]int{{0, 2 * b, n}, {0, b + 1, n - 1, n}} {
			ranged := make([]float64, n)
			for s := 0; s+1 < len(splits); s++ {
				a32.MulVecRange(x, ranged, splits[s], splits[s+1])
			}
			for i := range ranged {
				if math.Float64bits(ranged[i]) != math.Float64bits(got[i]) {
					t.Fatalf("b=%d splits %v row %d: %v != %v", b, splits, i, ranged[i], got[i])
				}
			}
		}
	}
}

// TestF32At checks At and Diag on both narrowed storages against the
// widened reference.
func TestF32At(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a32 := ToCSR32(randCSR(rng, 50, 50, 0.1))
	ref := a32.ToCSR()
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a32.At(i, j) != ref.At(i, j) {
				t.Fatalf("CSR32.At(%d,%d) = %v, want %v", i, j, a32.At(i, j), ref.At(i, j))
			}
		}
	}
	d, dr := a32.Diag(), ref.Diag()
	for i := range d {
		if d[i] != dr[i] {
			t.Fatalf("CSR32.Diag[%d] = %v, want %v", i, d[i], dr[i])
		}
	}
	b32 := ToBSR32(randBSR(rng, 15, 15, 3, 0.2))
	bref := b32.ToCSR()
	for i := 0; i < b32.Rows(); i++ {
		for j := 0; j < b32.Cols(); j++ {
			if b32.At(i, j) != bref.At(i, j) {
				t.Fatalf("BSR32.At(%d,%d) = %v, want %v", i, j, b32.At(i, j), bref.At(i, j))
			}
		}
	}
}

// TestF32MulVecParallelBitwise extends the PR 6 ownership guarantee to
// the narrowed storages: the pool-partitioned product is bitwise equal to
// the serial one for every worker count.
func TestF32MulVecParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	csr, bsr := randomBlocked(t, 67, 3, rng)
	c32, b32 := ToCSR32(csr), ToBSR32(bsr)
	n := csr.NRows
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	wantC := make([]float64, n)
	c32.MulVec(x, wantC)
	wantB := make([]float64, n)
	b32.MulVec(x, wantB)

	for _, nw := range []int{1, 2, 3, 4, 8} {
		p := pool.New(nw)
		got := make([]float64, n)
		c32.MulVecParallel(p, x, got)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantC[i]) {
				t.Fatalf("CSR32 nw=%d row %d: %v != %v", nw, i, got[i], wantC[i])
			}
		}
		b32.MulVecParallel(p, x, got)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(wantB[i]) {
				t.Fatalf("BSR32 nw=%d row %d: %v != %v", nw, i, got[i], wantB[i])
			}
		}
		p.Close()
	}
}

// TestStorageBytes pins the bytes-per-storage accounting the mixedbench
// experiment reports: f32 storage must halve the per-entry footprint
// (8 -> 4 value bytes, 8 -> 4 index bytes).
func TestStorageBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	a := randCSR(rng, 60, 60, 0.1)
	nnz := int64(a.NNZ())
	rows := int64(a.NRows)
	if got, want := StorageBytes(a), 16*nnz+8*(rows+1); got != want {
		t.Fatalf("StorageBytes(CSR) = %d, want %d", got, want)
	}
	if got, want := StorageBytes(ToCSR32(a)), 8*nnz+8*(rows+1); got != want {
		t.Fatalf("StorageBytes(CSR32) = %d, want %d", got, want)
	}
	bsr := randBSR(rng, 20, 20, 3, 0.2)
	nb := int64(len(bsr.ColIdx))
	if got, want := StorageBytes(bsr), 72*nb+8*nb+8*int64(bsr.NBRows+1); got != want {
		t.Fatalf("StorageBytes(BSR) = %d, want %d", got, want)
	}
	if got, want := StorageBytes(ToBSR32(bsr)), 36*nb+4*nb+8*int64(bsr.NBRows+1); got != want {
		t.Fatalf("StorageBytes(BSR32) = %d, want %d", got, want)
	}
}
