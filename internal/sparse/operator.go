package sparse

// Operator is the storage-agnostic interface every solver algorithm in the
// tree is written against: Krylov methods, smoothers, the multigrid cycle
// and the parallel kernels only need a matrix-vector product, a residual,
// a diagonal and a handful of size queries. CSR and BSR both implement it;
// new storage formats (matrix-free element products, batched backends) slot
// in behind the same interface without touching the algorithms. This is the
// PETSc Mat-object decoupling that let the paper swap AIJ for the blocked
// BAIJ format and collect the per-processor Mflop gains.
type Operator interface {
	// Rows and Cols return the operator's dimensions.
	Rows() int
	Cols() int
	// MulVec computes y = A·x.
	MulVec(x, y []float64)
	// MulVecRange computes y[i] = (A·x)[i] for i in [lo, hi); rows outside
	// the range are left untouched. It is the kernel for row-partitioned
	// parallel products.
	MulVecRange(x, y []float64, lo, hi int)
	// Residual computes r = b - A·x.
	Residual(b, x, r []float64)
	// Diag returns a freshly allocated copy of the diagonal (zeros where
	// absent).
	Diag() []float64
	// At returns A(i,j), zero when the entry is not stored.
	At(i, j int) float64
	// NNZ returns the number of stored scalar entries (explicit zeros
	// included).
	NNZ() int
	// MulVecFlops returns the flop count of one MulVec (2·nnz by the
	// paper's convention).
	MulVecFlops() int64
}

// Compile-time interface conformance for all four storage formats.
var (
	_ Operator = (*CSR)(nil)
	_ Operator = (*BSR)(nil)
	_ Operator = (*CSR32)(nil)
	_ Operator = (*BSR32)(nil)
)

// AsCSR returns a scalar CSR view of op: the identity for *CSR, the
// expanded (and for f32 storage, widened) scalar matrix otherwise. It is
// the escape hatch for setup-time code that genuinely needs row traversal
// (graph partitioning, direct factorization, submatrix extraction);
// steady-state kernels should stay on the Operator interface.
func AsCSR(op Operator) *CSR {
	switch a := op.(type) {
	case *CSR:
		return a
	case *BSR:
		return a.ToCSR()
	case *CSR32:
		return a.ToCSR()
	case *BSR32:
		return a.ToCSR()
	default:
		panic("sparse: AsCSR: unsupported operator type")
	}
}

// AutoBlock returns the preferred storage for a square scalar matrix with b
// dofs per node: the node-blocked BSR when the dimensions are b-divisible
// and blocking does not bloat the pattern (fill beyond 2x the scalar nnz
// means the sparsity is not node-aligned), the original CSR otherwise.
// Matrices assembled per node pair (the elasticity stack) block with zero
// fill; b <= 1 or misaligned patterns fall back to CSR unchanged.
func AutoBlock(a *CSR, b int) Operator {
	if b <= 1 || a.NRows != a.NCols || a.NRows%b != 0 {
		return a
	}
	bsr, err := FromCSR(a, b)
	if err != nil || bsr.NNZ() > 2*a.NNZ() {
		return a
	}
	return bsr
}
