package sparse

// Operator is the storage-agnostic interface every solver algorithm in the
// tree is written against: Krylov methods, smoothers, the multigrid cycle
// and the parallel kernels only need a matrix-vector product, a residual,
// a diagonal and a handful of size queries. CSR, BSR and the matrix-free
// element-by-element operator all implement it; new storage formats slot
// in behind the same interface without touching the algorithms. This is
// the PETSc Mat-object decoupling that let the paper swap AIJ for the
// blocked BAIJ format and collect the per-processor Mflop gains.
//
// Anything beyond the core apply is a capability, not a requirement:
// consumers that need row access, diagonal blocks or a SOR sweep assert
// the corresponding optional interface (RowScanner, BlockDiagonaler,
// Sweeper) and degrade gracefully when the operator does not provide it.
// That split is what lets an assembly-free operator participate in the
// whole stack without faking entry lookups it cannot afford.
type Operator interface {
	// Rows and Cols return the operator's dimensions.
	Rows() int
	Cols() int
	// MulVec computes y = A·x.
	MulVec(x, y []float64)
	// MulVecRange computes y[i] = (A·x)[i] for i in [lo, hi); rows outside
	// the range are left untouched. It is the kernel for row-partitioned
	// parallel products.
	MulVecRange(x, y []float64, lo, hi int)
	// Residual computes r = b - A·x.
	Residual(b, x, r []float64)
	// Diag returns a freshly allocated copy of the diagonal (zeros where
	// absent).
	Diag() []float64
	// NNZ returns the number of stored scalar entries (explicit zeros
	// included).
	NNZ() int
	// MulVecFlops returns the flop count of one MulVec (2·nnz by the
	// paper's convention).
	MulVecFlops() int64
}

// RowScanner is the row-access capability: entry lookup for code that
// genuinely needs to inspect stored values (setup-time graph work, tests,
// diagnostics). Matrix-free operators deliberately do not implement it —
// an entry query would cost a partial element loop — so consumers must
// treat it as optional and fall back to apply-only algorithms.
type RowScanner interface {
	// At returns A(i,j), zero when the entry is not stored.
	At(i, j int) float64
}

// BlockDiagonaler is the node-block diagonal capability: storages that
// know their b-by-b diagonal blocks expose them for block smoothers
// (NodeBlockJacobi) without the smoother asserting a concrete type.
type BlockDiagonaler interface {
	// BlockSize returns the scalar block dimension b.
	BlockSize() int
	// DiagBlocks returns a copy of the BxB diagonal blocks, packed
	// row-major per block in block-row order (widened to float64 for f32
	// storages). Implementations that are not node-aligned return nil.
	DiagBlocks() []float64
}

// Sweeper is the SOR-sweep capability: storages with ordered row
// traversal provide the Gauss-Seidel kernel themselves, so the smoother
// package never reaches into storage internals. Operators without row
// order (matrix-free) do not implement it; smoothing falls back to
// apply-only methods (Jacobi, Chebyshev).
type Sweeper interface {
	// SORSweep performs one forward (backward=false) or backward sweep of
	// x for A·x = b in place and returns the flop count. invBlk holds the
	// inverted diagonal blocks for blocked storages (ignored by scalar
	// storages); scratch is a caller-provided buffer of at least
	// BlockSize() float64s for the per-block right-hand side.
	SORSweep(x, b []float64, omega float64, backward bool, invBlk, scratch []float64) int64
}

// GalerkinAssembler is the coarse-operator capability: operators that can
// form the Galerkin product R·A·Rᵀ directly implement it, so multigrid
// setup on a matrix-free fine level assembles the first coarse matrix
// from element contributions without ever assembling the fine matrix.
type GalerkinAssembler interface {
	// AssembleGalerkin returns R·A·Rᵀ as an assembled CSR for the given
	// restriction R (rows = coarse dofs, cols = fine dofs).
	AssembleGalerkin(r *CSR) *CSR
}

// StorageLabeler is the observability capability: external storage
// formats report the short label ("mf") used in level tables and event
// names, so the multigrid package does not need to know them by type.
type StorageLabeler interface {
	// StorageLabel returns the short storage-mode label.
	StorageLabel() string
}

// ByteAccounter is the memory-accounting capability: external storage
// formats report their resident bytes so StorageBytes covers them
// without a concrete-type switch.
type ByteAccounter interface {
	// StorageBytes returns the resident bytes of the operator's arrays.
	StorageBytes() int64
}

// Compile-time interface conformance for all four assembled storage
// formats, and for the capabilities each provides.
var (
	_ Operator = (*CSR)(nil)
	_ Operator = (*BSR)(nil)
	_ Operator = (*CSR32)(nil)
	_ Operator = (*BSR32)(nil)

	_ RowScanner = (*CSR)(nil)
	_ RowScanner = (*BSR)(nil)
	_ RowScanner = (*CSR32)(nil)
	_ RowScanner = (*BSR32)(nil)

	_ BlockDiagonaler = (*BSR)(nil)
	_ BlockDiagonaler = (*BSR32)(nil)
)

// AsCSR returns a scalar CSR view of op: the identity for *CSR, the
// expanded (and for f32 storage, widened) scalar matrix otherwise. It is
// the escape hatch for setup-time code that genuinely needs row traversal
// (graph partitioning, direct factorization, submatrix extraction);
// steady-state kernels should stay on the Operator interface.
func AsCSR(op Operator) *CSR {
	c, ok := TryCSR(op)
	if !ok {
		panic("sparse: AsCSR: operator has no assembled CSR view")
	}
	return c
}

// TryCSR is AsCSR with a graceful failure: it returns (nil, false) for
// operators without an assembled scalar view (matrix-free storage), so
// setup-time consumers can report a configuration error instead of
// panicking.
func TryCSR(op Operator) (*CSR, bool) {
	switch a := op.(type) {
	case *CSR:
		return a, true
	case *BSR:
		return a.ToCSR(), true
	case *CSR32:
		return a.ToCSR(), true
	case *BSR32:
		return a.ToCSR(), true
	default:
		return nil, false
	}
}

// AutoBlock returns the preferred storage for a square scalar matrix with b
// dofs per node: the node-blocked BSR when the dimensions are b-divisible
// and blocking does not bloat the pattern (fill beyond 2x the scalar nnz
// means the sparsity is not node-aligned), the original CSR otherwise.
// Matrices assembled per node pair (the elasticity stack) block with zero
// fill; b <= 1 or misaligned patterns fall back to CSR unchanged.
func AutoBlock(a *CSR, b int) Operator {
	if b <= 1 || a.NRows != a.NCols || a.NRows%b != 0 {
		return a
	}
	bsr, err := FromCSR(a, b)
	if err != nil || bsr.NNZ() > 2*a.NNZ() {
		return a
	}
	return bsr
}

// AutoBlockOp is AutoBlock lifted to the Operator interface: scalar CSR
// inputs get the blocking heuristic, every other operator (already
// blocked, f32, matrix-free) passes through unchanged. Consumers outside
// the sparse package use it instead of asserting concrete storage types.
func AutoBlockOp(op Operator, b int) Operator {
	if a, ok := op.(*CSR); ok {
		return AutoBlock(a, b)
	}
	return op
}
