package multigrid

import (
	"math"
	"testing"

	"prometheus/internal/core"
	"prometheus/internal/krylov"
	"prometheus/internal/la"
	"prometheus/internal/sparse"
)

// TestMixedNarrowsCoarseLevels checks the structural contract of
// PrecisionMixedF32: the fine level keeps f64 storage (the krylov
// contract), every level at or above CoarseF32Level is narrowed, the
// coarse-level storage footprint drops by at least the 1.3x acceptance
// gate, and the narrowed hierarchy still solves to f64 tolerance.
func TestMixedNarrowsCoarseLevels(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 10})
	if len(rs) < 2 {
		t.Fatal("need an intermediate coarse level so the f32 smoother actually runs")
	}
	mixed, err := New(k, rs, Options{CoarsePrecision: PrecisionMixedF32})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mixed.Levels[0].A.(*sparse.CSR); !ok {
		t.Fatalf("fine level narrowed to %T; level 0 must stay f64", mixed.Levels[0].A)
	}
	var bytes64, bytes32 int64
	for l := 1; l < len(mixed.Levels); l++ {
		if _, ok := mixed.Levels[l].A.(*sparse.CSR32); !ok {
			t.Fatalf("level %d is %T, want *sparse.CSR32", l, mixed.Levels[l].A)
		}
		bytes64 += sparse.StorageBytes(full.Levels[l].A)
		bytes32 += sparse.StorageBytes(mixed.Levels[l].A)
	}
	if ratio := float64(bytes64) / float64(bytes32); ratio < 1.3 {
		t.Fatalf("coarse-level bytes ratio %.2fx, want >= 1.3x (%d -> %d bytes)", ratio, bytes64, bytes32)
	}
	// The f32 coarse grids bound the convergence rate, not the attainable
	// accuracy: the f64 fine-level residual still reaches 1e-10.
	x := make([]float64, k.NRows)
	cycles, rel := mixed.Solve(f, x, 1e-10, 100)
	if rel > 1e-10 {
		t.Fatalf("mixed MG stalled: rel = %v after %d cycles", rel, cycles)
	}
}

// TestMixedCoarseF32LevelThreshold checks that narrowing honors the
// threshold: levels below CoarseF32Level keep f64 storage.
func TestMixedCoarseF32LevelThreshold(t *testing.T) {
	k, _, rs := buildElasticity(t, 4, core.Options{MinCoarse: 10})
	mg, err := New(k, rs, Options{CoarsePrecision: PrecisionMixedF32, CoarseF32Level: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(mg.Levels) < 3 {
		t.Skipf("hierarchy too shallow (%d levels) to exercise the threshold", len(mg.Levels))
	}
	for l, lvl := range mg.Levels {
		_, narrowed := lvl.A.(*sparse.CSR32)
		if want := l >= 2; narrowed != want {
			t.Fatalf("level %d narrowed=%v, want %v (threshold 2)", l, narrowed, want)
		}
	}
}

// TestMixedIterationDelta is the solver-level acceptance criterion: with
// the multigrid preconditioner's coarse levels narrowed to f32, FPCG on
// the elasticity cube must converge to 1e-8 within two extra iterations
// of the all-f64 preconditioner, on both the scalar and blocked
// pipelines (FPCG is flexible, so the slightly perturbed preconditioner
// costs at most a little contraction, never correctness).
func TestMixedIterationDelta(t *testing.T) {
	// MinCoarse 10 forces a 3-level hierarchy (540/81/24 dofs) so level 1
	// smooths on narrowed storage — with only two levels the coarsest f64
	// direct factor hides the narrowing entirely.
	k, f, rs := buildElasticity(t, 5, core.Options{MinCoarse: 10})
	cases := []struct {
		name string
		opts Options
	}{
		{"csr", Options{Storage: StorageCSR}},
		{"bsr", Options{Storage: StorageBSR}},
		{"bsr-nodeblock", Options{Storage: StorageBSR, Smoother: NodeBlockJacobi}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mgFull, err := New(k, rs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			optsMixed := tc.opts
			optsMixed.CoarsePrecision = PrecisionMixedF32
			mgMixed, err := New(k, rs, optsMixed)
			if err != nil {
				t.Fatal(err)
			}
			xFull := make([]float64, k.NRows)
			full := krylov.FPCG(k, f, xFull, mgFull, 1e-8, 200)
			if !full.Converged {
				t.Fatalf("f64 FPCG did not converge in %d its", full.Iterations)
			}
			xMixed := make([]float64, k.NRows)
			mixed := krylov.FPCG(k, f, xMixed, mgMixed, 1e-8, 200)
			if !mixed.Converged {
				t.Fatalf("mixed FPCG did not converge in %d its", mixed.Iterations)
			}
			if mixed.Iterations > full.Iterations+2 {
				t.Fatalf("mixed FPCG took %d its vs %d f64, beyond the +2 budget",
					mixed.Iterations, full.Iterations)
			}
			diff := 0.0
			for i := range xFull {
				if d := math.Abs(xFull[i] - xMixed[i]); d > diff {
					diff = d
				}
			}
			if diff > 1e-6*(1+la.MaxAbs(xFull)) {
				t.Fatalf("solutions diverge: max |x64 - xmixed| = %g", diff)
			}
			t.Logf("%s: f64 %d its, mixed %d its, max diff %.3g", tc.name, full.Iterations, mixed.Iterations, diff)
		})
	}
}

// TestPureF64ConfigBitwiseIdentical locks in the determinism acceptance
// criterion: requesting PrecisionF64 explicitly (at any threshold) is the
// same code path as the default — the preconditioner and therefore every
// FPCG iterate stay bitwise identical.
func TestPureF64ConfigBitwiseIdentical(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	mgDefault, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgExplicit, err := New(k, rs, Options{CoarsePrecision: PrecisionF64, CoarseF32Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, k.NRows)
	r1 := krylov.FPCG(k, f, x1, mgDefault, 1e-8, 200)
	x2 := make([]float64, k.NRows)
	r2 := krylov.FPCG(k, f, x2, mgExplicit, 1e-8, 200)
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("dof %d differs bitwise: %v vs %v", i, x1[i], x2[i])
		}
	}
}
