package multigrid

import (
	"prometheus/internal/obs"
	"prometheus/internal/sparse"
)

// Observability events and metrics for the Epimetheus layer: hierarchy
// setup (with the Galerkin triple products timed separately), the
// preconditioner applies, and the coarsest-grid direct solves.
var (
	evSetup    = obs.Register("mg.setup")
	evGalerkin = obs.Register("mg.setup.galerkin")
	evApply    = obs.Register("mg.apply")
	evCoarse   = obs.Register("mg.coarse_direct")

	cApplies = obs.NewCounter("mg.applies")
)

// storageName labels a level operator for obs.RecordLevel.
func storageName(a sparse.Operator) string {
	switch a.(type) {
	case *sparse.BSR:
		return "bsr"
	case *sparse.CSR:
		return "csr"
	case *sparse.BSR32:
		return "bsr32"
	case *sparse.CSR32:
		return "csr32"
	default:
		if l, ok := a.(sparse.StorageLabeler); ok {
			return l.StorageLabel()
		}
		return "op"
	}
}
