// Package multigrid is the Epimetheus layer of the reproduction: it takes
// the fine-grid operator and the restriction operators built by the core
// coarsening and assembles the algebraic hierarchy (A_{l+1} = R·A_l·Rᵀ,
// section 3), provides the V-cycle of Figure 1 and the full multigrid (FMG)
// cycle used in the experiments, the block-Jacobi smoothers of section 7.2,
// a direct solve on the coarsest grid, and the preconditioner adapter for
// PCG. All phases count flops for the efficiency analysis of section 6.
package multigrid

import (
	"errors"
	"fmt"

	"prometheus/internal/check"
	"prometheus/internal/direct"
	"prometheus/internal/graph"
	"prometheus/internal/la"
	"prometheus/internal/obs"
	"prometheus/internal/smooth"
	"prometheus/internal/sparse"
)

// SmootherKind selects the smoother.
type SmootherKind int

const (
	// DomainBlockJacobiCG (the default) wraps the domain-decomposed block
	// Jacobi in a conjugate gradient iteration — the literal reading of
	// the paper's smoother ("one pre-smoothing and one post-smoothing step
	// within multigrid, preconditioned with block Jacobi with 6 blocks for
	// every 1,000 unknowns"). Slightly nonlinear: the outer Krylov method
	// must be flexible (krylov.FPCG), which the solver uses throughout.
	DomainBlockJacobiCG SmootherKind = iota
	// DomainBlockJacobi is a stationary damped sweep of the same
	// graph-partitioned subdomain smoother.
	DomainBlockJacobi
	// Jacobi is damped pointwise Jacobi.
	Jacobi
	// GaussSeidel is symmetric SOR (nodal block sweeps on BSR storage).
	GaussSeidel
	// Chebyshev is polynomial smoothing.
	Chebyshev
	// NodeBlockJacobi is the paper's "block diagonal" smoother for
	// vector-valued problems: damped Jacobi on the inverted 3x3 nodal
	// diagonal blocks. Requires BSR level operators.
	NodeBlockJacobi
)

// StorageKind selects the per-level matrix storage.
type StorageKind int

const (
	// StorageAuto (the default) follows the fine operator: a BSR fine grid
	// gets BSR coarse grids via the blocked Galerkin product, a CSR fine
	// grid keeps the scalar pipeline.
	StorageAuto StorageKind = iota
	// StorageCSR forces scalar CSR on every level.
	StorageCSR
	// StorageBSR blocks the fine operator (3x3 node blocks) when its
	// dimensions and sparsity allow, then follows the BSR pipeline.
	StorageBSR
	// StorageMatrixFree keeps the fine operator matrix-free: level 0 is the
	// caller's assembly-free operator (fem.EBEOperator) applied element by
	// element, and the first coarse operator is assembled directly from
	// element contributions through the sparse.GalerkinAssembler
	// capability, so no fine-grid matrix ever exists. Coarse levels are
	// assembled Galerkin CSR exactly as in the scalar pipeline (and narrow
	// under PrecisionMixedF32 as usual). Row-traversal smoothers fall back
	// to Chebyshev on the matrix-free level.
	StorageMatrixFree
)

// PrecisionKind selects the per-level value precision of the hierarchy.
type PrecisionKind int

const (
	// PrecisionF64 (the default) keeps float64 storage on every level —
	// bitwise identical to the pre-mixed-precision solver on both storages
	// and at every pool worker count.
	PrecisionF64 PrecisionKind = iota
	// PrecisionMixedF32 narrows the storage of coarse levels (level >=
	// CoarseF32Level) to float32 after the full hierarchy is built in
	// float64: the Galerkin triple products, the coarsest direct
	// factorization and every residual/correction transfer stay f64, and
	// the smoothers on narrowed levels run f32 storage with f64
	// accumulation. The fine level is never narrowed, so the f64-only
	// contract of internal/krylov (enforced by the krylov-precision lint
	// rule) holds structurally. Halves the bytes/dof of CSR coarse levels
	// (CSR32: 8 B per entry vs 16) and matches the ROADMAP's
	// "float32 coarse levels, Krylov stays float64" memory lever.
	PrecisionMixedF32
)

// CycleKind selects the multigrid cycle used per preconditioner apply.
type CycleKind int

const (
	// FMG is one full multigrid cycle (the paper's choice, section 7.2).
	FMG CycleKind = iota
	// VCycle is one V-cycle (Figure 1).
	VCycle
	// WCycle visits each coarse level twice per descent — more robust on
	// hard problems at roughly twice the coarse-grid cost.
	WCycle
)

// Options configures the solver.
type Options struct {
	PreSmooth  int // default 1 (paper)
	PostSmooth int // default 1 (paper)
	Smoother   SmootherKind
	Cycle      CycleKind
	Omega      float64         // damping for Jacobi/SOR (default 1)
	BlockCount func(n int) int // block rule (default: paper's 6/1000)
	ChebDegree int             // default 3
	Storage    StorageKind     // per-level storage (default: follow the fine operator)
	// BlockSize is the node-block size used by StorageBSR (default 3, the
	// elasticity dofs-per-node).
	BlockSize int
	// CoarsePrecision selects f64 (default) or mixed f32 coarse-level
	// storage; see PrecisionKind.
	CoarsePrecision PrecisionKind
	// CoarseF32Level is the first level narrowed by PrecisionMixedF32
	// (default 1: every Galerkin level). Level 0 is never narrowed
	// regardless of the threshold.
	CoarseF32Level int
}

func (o Options) withDefaults() Options {
	if o.PreSmooth == 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth == 0 {
		o.PostSmooth = 1
	}
	if o.Omega == 0 {
		o.Omega = 1
	}
	if o.BlockCount == nil {
		o.BlockCount = smooth.DefaultBlockCount
	}
	if o.ChebDegree == 0 {
		o.ChebDegree = 3
	}
	if o.BlockSize == 0 {
		o.BlockSize = 3
	}
	if o.CoarseF32Level < 1 {
		o.CoarseF32Level = 1
	}
	return o
}

// Level is one grid of the algebraic hierarchy.
type Level struct {
	// A is the level operator — CSR or BSR behind the storage-agnostic
	// interface; the cycles never look behind it.
	A sparse.Operator
	// R restricts residuals from the next finer level to this one; nil on
	// level 0. P = Rᵀ prolongates corrections.
	R, P     *sparse.CSR
	Smoother smooth.Smoother
	Direct   *direct.Cholesky // coarsest level only

	// Work counts the flops attributed to this level by the cycles run so
	// far (matvecs, transfers into the level, direct solves); smoother
	// work is available from Smoother.Flops().
	Work int64

	// scratch
	x, b, res []float64
}

// MG is the multigrid solver/preconditioner.
type MG struct {
	Levels []*Level
	Opts   Options

	// SetupFlops counts the Galerkin triple products and smoother/direct
	// factorizations (the paper's "matrix setup" phase).
	SetupFlops int64
	// CycleFlops counts the work of all cycles applied so far (matvecs,
	// grid transfers, direct solves; smoother flops are tracked by the
	// smoothers and added in Flops()).
	CycleFlops int64
	// Applies counts preconditioner applications.
	Applies int

	// task is the request scope cycles are attributed to (nil outside a
	// served request). An MG instance is leased to exactly one solve at a
	// time (the serve cache's checkout protocol), so the field needs no
	// synchronization: SetTask and Apply run on the leasing goroutine.
	task *obs.Task
}

// taskSetter is implemented by smoothers that can attribute their sweep
// work to a request task.
type taskSetter interface {
	SetTask(t *obs.Task)
}

// SetTask attaches a request-scoped obs task to the preconditioner and
// its level smoothers: every subsequent Apply credits its cycle flops
// (grid transfers and coarse solves) and V-cycle count to the task, and
// the smoothers credit their sweep flops likewise. Pass nil to detach
// before returning a leased instance to its pool. Only valid while the
// caller holds exclusive use of the instance.
func (mg *MG) SetTask(t *obs.Task) {
	mg.task = t
	for _, l := range mg.Levels {
		if s, ok := l.Smoother.(taskSetter); ok {
			s.SetTask(t)
		}
	}
}

// CompressCols removes matrix columns of constrained dofs: full2red maps
// full dof -> reduced dof or -1. Used to align the first restriction
// operator (built on all vertex dofs) with the reduced fine system.
func CompressCols(r *sparse.CSR, full2red []int, nred int) *sparse.CSR {
	b := sparse.NewBuilder(r.NRows, nred)
	for i := 0; i < r.NRows; i++ {
		cols, vals := r.Row(i)
		for k, j := range cols {
			if jr := full2red[j]; jr >= 0 {
				b.Add(i, jr, vals[k])
			}
		}
	}
	return b.Build()
}

// fixEmptyRows pins coarse dofs whose basis functions have no free
// fine-grid support: compressing the first restriction against the
// Dirichlet constraints can zero entire rows of R, which makes the Galerkin
// operator exactly singular there. The restriction never transfers residual
// to (nor prolongs correction from) such dofs, so replacing their zero
// diagonal with the matrix's largest diagonal keeps the operator SPD
// without changing the preconditioner's action.
func fixEmptyRows(a *sparse.CSR) *sparse.CSR {
	d := a.Diag()
	maxd := 0.0
	for _, v := range d {
		if v > maxd {
			maxd = v
		}
	}
	if maxd == 0 {
		maxd = 1
	}
	var bad []int
	for i, v := range d {
		if v <= 1e-13*maxd {
			bad = append(bad, i)
		}
	}
	if len(bad) == 0 {
		return a
	}
	b := sparse.NewBuilder(a.NRows, a.NCols)
	isBad := make(map[int]bool, len(bad))
	for _, i := range bad {
		isBad[i] = true
	}
	for i := 0; i < a.NRows; i++ {
		if isBad[i] {
			b.Set(i, i, maxd)
			continue
		}
		cols, vals := a.Row(i)
		for k, j := range cols {
			if !isBad[j] {
				b.Add(i, j, vals[k])
			}
		}
	}
	return b.Build()
}

// fixEmptyRowsOp is the storage-polymorphic wrapper: the common no-bad-rows
// case is detected from the diagonal without converting storage. A BSR
// operator that does need pinning is repaired through the scalar rebuild
// and *stays* scalar — pinning strips entries out of blocks, and re-blocking
// the ragged pattern would add fill that changes the smoother's partition
// graph relative to the CSR pipeline. Levels below a repaired one follow
// the scalar path, bitwise identical to the pre-refactor hierarchy.
func fixEmptyRowsOp(a sparse.Operator) sparse.Operator {
	ab, ok := a.(*sparse.BSR)
	if !ok {
		return fixEmptyRows(a.(*sparse.CSR))
	}
	d := a.Diag()
	maxd := 0.0
	for _, v := range d {
		if v > maxd {
			maxd = v
		}
	}
	if maxd == 0 {
		maxd = 1
	}
	for _, v := range d {
		if v <= 1e-13*maxd {
			return fixEmptyRows(ab.ToCSR())
		}
	}
	return a
}

// opSymmetric is the storage-polymorphic symmetry diagnostic used by the
// promdebug hierarchy checks.
func opSymmetric(a sparse.Operator, tol float64) bool {
	switch m := a.(type) {
	case *sparse.CSR:
		return m.IsSymmetric(tol)
	case *sparse.BSR:
		return m.IsSymmetric(tol)
	default:
		return true
	}
}

// New assembles the hierarchy: fineA is the (reduced) fine operator and
// restrictions[l] maps level l dofs to level l+1 dofs, already aligned with
// fineA's dof numbering on level 0.
func New(fineA sparse.Operator, restrictions []*sparse.CSR, opts Options) (*MG, error) {
	sp := obs.Start(evSetup)
	mg, err := newMG(fineA, restrictions, opts)
	sp.End()
	if mg != nil {
		for li, lvl := range mg.Levels {
			obs.RecordLevel(li, lvl.A.Rows(), lvl.A.NNZ(), storageName(lvl.A))
		}
	}
	return mg, err
}

func newMG(fineA sparse.Operator, restrictions []*sparse.CSR, opts Options) (*MG, error) {
	opts = opts.withDefaults()
	if fineA.Rows() != fineA.Cols() {
		return nil, errors.New("multigrid: fine operator must be square")
	}
	mg := &MG{Opts: opts}
	a := fineA
	switch opts.Storage {
	case StorageCSR:
		a = sparse.AsCSR(fineA)
	case StorageBSR:
		if _, ok := a.(*sparse.BSR); !ok {
			a = sparse.AutoBlock(sparse.AsCSR(fineA), opts.BlockSize)
		}
	case StorageMatrixFree:
		// The fine operator stays exactly as handed in; the only demands a
		// matrix-free hierarchy makes of it are the Galerkin capability for
		// the first coarsening and at least one coarse level to hand the
		// direct solver an assembled matrix.
		if _, ok := fineA.(sparse.GalerkinAssembler); !ok {
			return nil, errors.New("multigrid: StorageMatrixFree needs a fine operator with the Galerkin-assembly capability (fem.EBEOperator)")
		}
		if len(restrictions) == 0 {
			return nil, errors.New("multigrid: StorageMatrixFree needs at least one coarse level for the direct solve")
		}
	}
	mg.Levels = append(mg.Levels, &Level{A: a})
	for _, r := range restrictions {
		if r.NCols != a.Rows() {
			return nil, fmt.Errorf("multigrid: restriction %dx%d does not match operator %d",
				r.NRows, r.NCols, a.Rows())
		}
		// The blocked Galerkin product accumulates each scalar entry in the
		// same order as the scalar one, so a BSR hierarchy is bitwise equal
		// to the CSR hierarchy it replaces (iteration counts included).
		spg := obs.Start(evGalerkin)
		var ac sparse.Operator
		if ga, ok := a.(sparse.GalerkinAssembler); ok {
			// Matrix-free level: R·A·Rᵀ assembled from element
			// contributions, never from a stored fine matrix. The chain
			// continues as scalar CSR below.
			ac = fixEmptyRows(ga.AssembleGalerkin(r))
		} else if _, blocked := a.(*sparse.BSR); blocked {
			ac = fixEmptyRowsOp(sparse.GalerkinBSR(r, a))
		} else {
			ac = fixEmptyRows(sparse.Galerkin(r, a.(*sparse.CSR)))
		}
		spg.End()
		// Galerkin product cost estimate: ~2 flops per multiply-add over
		// the row-merge; use 4·nnz(A)·avg row of R as a proxy.
		mg.SetupFlops += 4 * int64(ac.NNZ())
		lvl := &Level{A: ac, R: r, P: r.Transpose()}
		mg.Levels = append(mg.Levels, lvl)
		a = ac
	}
	if check.Enabled {
		// The hierarchy the cycles recurse over must strictly shrink, and
		// every Galerkin operator must stay symmetric for the SPD smoothers
		// and the coarsest Cholesky factorization.
		dims := make([]int, len(mg.Levels))
		for i, lvl := range mg.Levels {
			dims[i] = lvl.A.Rows()
			check.Assert(opSymmetric(lvl.A, 1e-8), "multigrid.New: level %d operator not symmetric", i)
		}
		check.StrictlyDecreasing(dims, "multigrid.New level dims")
	}
	// Mixed precision: the whole hierarchy above was built — Galerkin
	// triple products included — and checked in full float64; only now is
	// the *storage* of the coarse levels narrowed, so narrowing perturbs
	// each stored entry by at most one f32 rounding and never compounds
	// through the coarsening products. The smoothers constructed below see
	// the narrowed operators; the coarsest level keeps f64 until its exact
	// direct factorization is taken and is narrowed right after.
	if opts.CoarsePrecision == PrecisionMixedF32 {
		for l := opts.CoarseF32Level; l < len(mg.Levels)-1; l++ {
			mg.Levels[l].A = narrowOp(mg.Levels[l].A)
		}
	}
	// Smoothers on all but the coarsest; direct solve on the coarsest.
	for li, lvl := range mg.Levels {
		lvl.x = make([]float64, lvl.A.Rows())
		lvl.b = make([]float64, lvl.A.Rows())
		lvl.res = make([]float64, lvl.A.Rows())
		if li == len(mg.Levels)-1 {
			ch, err := direct.New(sparse.AsCSR(lvl.A))
			if err != nil {
				return nil, fmt.Errorf("multigrid: coarsest factorization: %w", err)
			}
			lvl.Direct = ch
			mg.SetupFlops += ch.FactorFlops
			if opts.CoarsePrecision == PrecisionMixedF32 && li >= opts.CoarseF32Level {
				// The cycles never apply the coarsest operator once the
				// exact f64 factorization exists, so its storage narrows
				// too — the factor keeps the direct solve full-precision.
				lvl.A = narrowOp(lvl.A)
			}
			continue
		}
		s, err := mg.makeSmoother(lvl.A)
		if err != nil {
			return nil, err
		}
		lvl.Smoother = s
	}
	return mg, nil
}

// narrowOp narrows one level operator into f32 storage, preserving the
// blocked/scalar format. The conversions run through the sanctioned
// la.To32 boundary and assert f32 representability under promdebug.
func narrowOp(a sparse.Operator) sparse.Operator {
	switch m := a.(type) {
	case *sparse.CSR:
		return sparse.ToCSR32(m)
	case *sparse.BSR:
		return sparse.ToBSR32(m)
	default:
		return a
	}
}

// rowTraversable reports whether the level operator exposes stored
// entries (the RowScanner capability). The domain-decomposed smoothers
// need the matrix graph to partition, so on a matrix-free level
// makeSmoother silently substitutes Chebyshev — the natural apply-only
// smoother — instead of failing the whole hierarchy.
func rowTraversable(a sparse.Operator) bool {
	_, ok := a.(sparse.RowScanner)
	return ok
}

func (mg *MG) makeSmoother(a sparse.Operator) (smooth.Smoother, error) {
	switch mg.Opts.Smoother {
	case Jacobi:
		return smooth.NewJacobi(a, 2.0/3), nil
	case GaussSeidel:
		if _, ok := a.(sparse.Sweeper); !ok {
			return nil, errors.New("multigrid: GaussSeidel needs ordered sweeps over stored entries; a matrix-free level cannot provide them (use Chebyshev or NodeBlockJacobi)")
		}
		return smooth.NewGaussSeidel(a, mg.Opts.Omega, true), nil
	case Chebyshev:
		return smooth.NewChebyshev(a, mg.Opts.ChebDegree, 30), nil
	case NodeBlockJacobi:
		s, err := smooth.NewNodeBlockJacobi(a, 2.0/3)
		if err != nil {
			return nil, fmt.Errorf("multigrid: NodeBlockJacobi smoother requires node-blocked storage (set Options.Storage = StorageBSR or use a node-aligned matrix-free operator): %w", err)
		}
		return s, nil
	case DomainBlockJacobi:
		if !rowTraversable(a) {
			return smooth.NewChebyshev(a, mg.Opts.ChebDegree, 30), nil
		}
		bj, err := mg.blockJacobi(a)
		if err != nil {
			return nil, err
		}
		bj.AutoDamp()
		return bj, nil
	default: // DomainBlockJacobiCG
		if !rowTraversable(a) {
			return smooth.NewChebyshev(a, mg.Opts.ChebDegree, 30), nil
		}
		bj, err := mg.blockJacobi(a)
		if err != nil {
			return nil, err
		}
		return smooth.NewCGSmoother(a, bj, 1), nil
	}
}

// blockJacobi builds the paper's subdomain smoother for one level operator.
func (mg *MG) blockJacobi(a sparse.Operator) (*smooth.DomainBlockJacobi, error) {
	{
		ac := sparse.AsCSR(a)
		n := ac.NRows
		nb := mg.Opts.BlockCount(n)
		// Block partition on the matrix graph (the paper uses METIS).
		var edges [][2]int
		for i := 0; i < n; i++ {
			cols, _ := ac.Row(i)
			for _, j := range cols {
				if i < j {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := graph.NewGraph(n, edges)
		part := graph.GreedyPartition(g, nb)
		bj, err := smooth.NewDomainBlockJacobi(a, part, nb)
		if err != nil {
			return nil, fmt.Errorf("multigrid: block smoother: %w", err)
		}
		mg.SetupFlops += bj.SetupFlops
		return bj, nil
	}
}

// NumLevels returns the number of grids.
func (mg *MG) NumLevels() int { return len(mg.Levels) }

// vcycle improves x (initial guess respected) for A_l·x = b. gamma is the
// cycle index: 1 = V-cycle, 2 = W-cycle.
func (mg *MG) vcycle(l int, b, x []float64) { mg.cycle(l, b, x, 1) }

// wcycle is the gamma = 2 variant.
func (mg *MG) wcycle(l int, b, x []float64) { mg.cycle(l, b, x, 2) }

func (mg *MG) cycle(l int, b, x []float64, gamma int) {
	lvl := mg.Levels[l]
	if lvl.Direct != nil {
		spd := obs.Start(evCoarse)
		lvl.Direct.Solve(b, x)
		spd.EndFlops(lvl.Direct.SolveFlops())
		mg.CycleFlops += lvl.Direct.SolveFlops()
		lvl.Work += lvl.Direct.SolveFlops()
		return
	}
	lvl.Smoother.Smooth(x, b, mg.Opts.PreSmooth)
	lvl.A.Residual(b, x, lvl.res)
	mg.CycleFlops += lvl.A.MulVecFlops() + int64(len(b))
	lvl.Work += lvl.A.MulVecFlops() + int64(len(b))
	next := mg.Levels[l+1]
	next.R.MulVec(lvl.res, next.b)
	mg.CycleFlops += next.R.MulVecFlops()
	next.Work += next.R.MulVecFlops()
	for i := range next.x {
		next.x[i] = 0
	}
	for g := 0; g < gamma; g++ {
		mg.cycle(l+1, next.b, next.x, gamma)
		if mg.Levels[l+1].Direct != nil {
			break // the coarsest solve is exact; repeating it is a no-op
		}
	}
	// x += P·xc.
	next.P.MulVec(next.x, lvl.res)
	mg.CycleFlops += next.P.MulVecFlops()
	next.Work += next.P.MulVecFlops()
	la.Axpy(1, lvl.res, x)
	mg.CycleFlops += 2 * int64(len(x))
	lvl.Work += 2 * int64(len(x))
	lvl.Smoother.Smooth(x, b, mg.Opts.PostSmooth)
}

// fmg performs one full multigrid cycle for the fine right-hand side b,
// writing the result to x (overwritten): the residual is restricted to
// every level, the coarsest is solved directly, and each finer level
// receives the prolonged solution as the initial guess of a V-cycle.
func (mg *MG) fmg(b, x []float64) {
	n := len(mg.Levels)
	// Restrict b down the hierarchy.
	copy(mg.Levels[0].b, b)
	for l := 1; l < n; l++ {
		mg.Levels[l].R.MulVec(mg.Levels[l-1].b, mg.Levels[l].b)
		mg.CycleFlops += mg.Levels[l].R.MulVecFlops()
		mg.Levels[l].Work += mg.Levels[l].R.MulVecFlops()
	}
	// Coarsest solve.
	last := mg.Levels[n-1]
	if last.Direct != nil {
		spd := obs.Start(evCoarse)
		last.Direct.Solve(last.b, last.x)
		spd.EndFlops(last.Direct.SolveFlops())
		mg.CycleFlops += last.Direct.SolveFlops()
		last.Work += last.Direct.SolveFlops()
	} else {
		for i := range last.x {
			last.x[i] = 0
		}
		mg.vcycle(n-1, last.b, last.x)
	}
	// Work back up: prolong and V-cycle.
	for l := n - 2; l >= 0; l-- {
		lvl := mg.Levels[l]
		next := mg.Levels[l+1]
		next.P.MulVec(next.x, lvl.x)
		mg.CycleFlops += next.P.MulVecFlops()
		next.Work += next.P.MulVecFlops()
		mg.vcycle(l, lvl.b, lvl.x)
	}
	copy(x, mg.Levels[0].x)
}

// Apply implements krylov.Preconditioner: z approximates A⁻¹·r with one
// multigrid cycle.
func (mg *MG) Apply(r, z []float64) {
	sp := obs.StartTask(evApply, mg.task)
	cApplies.Inc()
	f0 := mg.CycleFlops
	mg.apply(r, z)
	// The cycle-flop delta (transfers, coarse solves, residual matvecs)
	// is credited to the apply event and, through the span, the request
	// task. Smoother sweeps record under their own events, so summing
	// krylov + mg.apply + smooth.* event flops counts each operation
	// exactly once.
	sp.EndFlops(mg.CycleFlops - f0)
	mg.task.AddVCycles(1)
}

func (mg *MG) apply(r, z []float64) {
	mg.Applies++
	switch mg.Opts.Cycle {
	case VCycle:
		for i := range z {
			z[i] = 0
		}
		mg.vcycle(0, r, z)
	case WCycle:
		for i := range z {
			z[i] = 0
		}
		mg.wcycle(0, r, z)
	default:
		mg.fmg(r, z)
	}
}

// Solve runs stationary multigrid cycles until the relative residual drops
// below rtol (or maxCycles is hit), returning the cycle count and final
// relative residual.
func (mg *MG) Solve(b, x []float64, rtol float64, maxCycles int) (int, float64) {
	a := mg.Levels[0].A
	r := make([]float64, len(b))
	z := make([]float64, len(b))
	bn := la.Norm2(b)
	if bn == 0 {
		bn = 1
	}
	for c := 0; c < maxCycles; c++ {
		a.Residual(b, x, r)
		mg.CycleFlops += a.MulVecFlops() + int64(len(b))
		rn := la.Norm2(r)
		if rn <= rtol*bn {
			return c, rn / bn
		}
		mg.Apply(r, z)
		la.Axpy(1, z, x)
	}
	a.Residual(b, x, r)
	return maxCycles, la.Norm2(r) / bn
}

// Flops returns total work: setup excluded, cycles plus smoother work.
func (mg *MG) Flops() int64 {
	f := mg.CycleFlops
	for _, l := range mg.Levels {
		if l.Smoother != nil {
			f += l.Smoother.Flops()
		}
	}
	return f
}

// OperatorComplexity returns sum(nnz(A_l))/nnz(A_0), the standard measure
// of hierarchy cost.
func (mg *MG) OperatorComplexity() float64 {
	total := 0
	for _, l := range mg.Levels {
		total += l.A.NNZ()
	}
	return float64(total) / float64(mg.Levels[0].A.NNZ())
}

// LevelWork returns the total flops attributed to each level so far,
// including smoother work (used by the performance model to distribute
// work across simulated ranks).
func (mg *MG) LevelWork() []int64 {
	out := make([]int64, len(mg.Levels))
	for i, l := range mg.Levels {
		out[i] = l.Work
		if l.Smoother != nil {
			out[i] += l.Smoother.Flops()
		}
	}
	return out
}
