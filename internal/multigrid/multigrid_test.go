package multigrid

import (
	"math"
	"testing"

	"prometheus/internal/core"
	"prometheus/internal/direct"
	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/krylov"
	"prometheus/internal/la"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/sparse"
)

// buildElasticity assembles the reduced system for an n³ cube with the
// bottom face fixed and a downward surface load on top, plus the compressed
// restriction chain.
func buildElasticity(t *testing.T, n int, coarsenOpts core.Options) (*sparse.CSR, []float64, []*sparse.CSR) {
	t.Helper()
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	c := fem.NewConstraints()
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return q.Z == 0 }) {
		c.FixVert(v, 0, 0, 0)
	}
	f := make([]float64, m.NumDOF())
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return q.Z == 1 }) {
		f[3*v+2] = -0.001
	}
	dm := c.NewDofMap(m.NumDOF())
	kr, fr := c.Reduce(k, f, dm)

	h, err := core.Coarsen(m, coarsenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		if l == 1 {
			r = CompressCols(r, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, r)
	}
	return kr, fr, rs
}

func TestCompressCols(t *testing.T) {
	b := sparse.NewBuilder(2, 4)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 3, 3)
	r := b.Build()
	full2red := []int{0, -1, 1, -1}
	cr := CompressCols(r, full2red, 2)
	if cr.NCols != 2 || cr.At(0, 0) != 1 || cr.At(0, 1) != 2 || cr.At(1, 1) != 0 {
		t.Fatalf("compress wrong: %+v", cr)
	}
}

func TestMGSolveMatchesDirect(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	if len(rs) == 0 {
		t.Fatal("no coarse levels")
	}
	mg, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.NRows)
	cycles, rel := mg.Solve(f, x, 1e-10, 100)
	if rel > 1e-10 {
		t.Fatalf("MG stalled: rel = %v after %d cycles", rel, cycles)
	}
	// Compare with the sparse direct solution.
	ch, err := direct.New(k)
	if err != nil {
		t.Fatal(err)
	}
	xd := make([]float64, k.NRows)
	ch.Solve(f, xd)
	diff := 0.0
	for i := range x {
		diff += (x[i] - xd[i]) * (x[i] - xd[i])
	}
	if math.Sqrt(diff) > 1e-7*(1+la.Norm2(xd)) {
		t.Fatalf("MG and direct disagree by %v", math.Sqrt(diff))
	}
	if mg.Flops() <= 0 || mg.SetupFlops <= 0 {
		t.Fatal("flops not counted")
	}
}

func TestPCGWithMGBeatsPlainCG(t *testing.T) {
	k, f, rs := buildElasticity(t, 5, core.Options{MinCoarse: 30})
	mg, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.NRows)
	pcg := krylov.FPCG(k, f, x, mg, 1e-8, 200)
	if !pcg.Converged {
		t.Fatalf("MG-PCG did not converge in %d its", pcg.Iterations)
	}
	x2 := make([]float64, k.NRows)
	plain := krylov.CG(k, f, x2, 1e-8, 20000)
	if !plain.Converged {
		t.Fatal("plain CG did not converge")
	}
	if pcg.Iterations*3 > plain.Iterations {
		t.Fatalf("MG-PCG (%d its) should dominate CG (%d its)", pcg.Iterations, plain.Iterations)
	}
	t.Logf("MG-PCG %d its vs CG %d its", pcg.Iterations, plain.Iterations)
}

func TestIterationCountRoughlyFlat(t *testing.T) {
	// Table 2 shape: MG-PCG iterations stay bounded as the mesh refines.
	var its []int
	for _, n := range []int{3, 4, 6} {
		k, f, rs := buildElasticity(t, n, core.Options{MinCoarse: 30})
		var mg *MG
		var err error
		if len(rs) == 0 {
			t.Fatalf("n=%d: no coarsening", n)
		}
		mg, err = New(k, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, k.NRows)
		res := krylov.FPCG(k, f, x, mg, 1e-6, 300)
		if !res.Converged {
			t.Fatalf("n=%d: not converged", n)
		}
		its = append(its, res.Iterations)
	}
	t.Logf("iterations across sizes: %v", its)
	for _, it := range its {
		if it > 60 {
			t.Fatalf("iteration count blow-up: %v", its)
		}
	}
	// Growth from smallest to largest must be mild (paper actually sees a
	// decrease).
	if float64(its[2]) > 2.5*float64(its[0])+5 {
		t.Fatalf("iterations not flat: %v", its)
	}
}

func TestVCycleAndFMGBothWork(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	for _, cyc := range []CycleKind{VCycle, FMG} {
		mg, err := New(k, rs, Options{Cycle: cyc})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, k.NRows)
		res := krylov.FPCG(k, f, x, mg, 1e-8, 200)
		if !res.Converged {
			t.Fatalf("cycle %v did not converge", cyc)
		}
	}
}

func TestSmootherVariants(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	for _, s := range []SmootherKind{DomainBlockJacobiCG, DomainBlockJacobi, Jacobi, GaussSeidel, Chebyshev} {
		mg, err := New(k, rs, Options{Smoother: s, Cycle: VCycle})
		if err != nil {
			t.Fatalf("smoother %v: %v", s, err)
		}
		x := make([]float64, k.NRows)
		res := krylov.FPCG(k, f, x, mg, 1e-8, 400)
		if !res.Converged {
			t.Fatalf("smoother %v did not converge", s)
		}
	}
}

func TestOperatorComplexityModest(t *testing.T) {
	k, _, rs := buildElasticity(t, 5, core.Options{MinCoarse: 30})
	mg, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oc := mg.OperatorComplexity()
	if oc < 1 || oc > 3.5 {
		t.Fatalf("operator complexity = %v", oc)
	}
	if mg.NumLevels() != len(rs)+1 {
		t.Fatal("level count mismatch")
	}
}

func TestGalerkinOperatorsSymmetric(t *testing.T) {
	k, _, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	mg, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range mg.Levels {
		if !opSymmetric(l.A, 1e-8) {
			t.Fatalf("level %d operator not symmetric", li)
		}
	}
}

// TestStorageParity pins the central refactor invariant: switching the
// hierarchy from scalar CSR to node-block BSR changes only the storage
// layout, never the arithmetic. Galerkin products, smoother sweeps and
// the Krylov iteration must produce bitwise-identical solutions and the
// exact same iteration count.
func TestStorageParity(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	solve := func(st StorageKind) ([]float64, int) {
		mg, err := New(k, rs, Options{Storage: st})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, k.NRows)
		res := krylov.FPCG(k, f, x, mg, 1e-8, 400)
		if !res.Converged {
			t.Fatalf("storage %v did not converge", st)
		}
		return x, res.Iterations
	}
	xc, ic := solve(StorageCSR)
	xb, ib := solve(StorageBSR)
	if ic != ib {
		t.Fatalf("iteration counts differ: CSR %d vs BSR %d", ic, ib)
	}
	for i := range xc {
		if math.Float64bits(xc[i]) != math.Float64bits(xb[i]) {
			t.Fatalf("solutions differ at dof %d: %v vs %v", i, xc[i], xb[i])
		}
	}
	// The BSR hierarchy must actually be blocked on the fine level.
	mg, err := New(k, rs, Options{Storage: StorageBSR})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mg.Levels[0].A.(*sparse.BSR); !ok {
		t.Fatalf("fine level is %T, want *sparse.BSR", mg.Levels[0].A)
	}
}

// TestNodeBlockJacobiSmootherConverges exercises the BSR-only smoother
// end to end: it requires blocked storage and must reject CSR.
func TestNodeBlockJacobiSmootherConverges(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	if _, err := New(k, rs, Options{Smoother: NodeBlockJacobi, Storage: StorageCSR}); err == nil {
		t.Fatal("NodeBlockJacobi on CSR storage should fail")
	}
	mg, err := New(k, rs, Options{Smoother: NodeBlockJacobi, Storage: StorageBSR})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.NRows)
	res := krylov.FPCG(k, f, x, mg, 1e-8, 400)
	if !res.Converged {
		t.Fatal("NodeBlockJacobi-smoothed MG did not converge")
	}
}

func TestMGRejectsBadInput(t *testing.T) {
	b := sparse.NewBuilder(4, 3)
	b.Add(0, 0, 1)
	if _, err := New(b.Build(), nil, Options{}); err == nil {
		t.Fatal("non-square should fail")
	}
	id := sparse.Identity(4)
	rbad := sparse.NewBuilder(2, 7)
	rbad.Add(0, 0, 1)
	if _, err := New(id, []*sparse.CSR{rbad.Build()}, Options{}); err == nil {
		t.Fatal("mismatched restriction should fail")
	}
}

func TestWCycleWorksAndIsStronger(t *testing.T) {
	k, f, rs := buildElasticity(t, 5, core.Options{MinCoarse: 30})
	its := func(c CycleKind) int {
		mg, err := New(k, rs, Options{Cycle: c})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, k.NRows)
		res := krylov.FPCG(k, f, x, mg, 1e-8, 400)
		if !res.Converged {
			t.Fatalf("cycle %v did not converge", c)
		}
		return res.Iterations
	}
	v := its(VCycle)
	w := its(WCycle)
	if w > v {
		t.Fatalf("W-cycle (%d its) should not be weaker than V-cycle (%d its)", w, v)
	}
}

func TestStationaryWCycleConverges(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	mg, err := New(k, rs, Options{Cycle: WCycle})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.NRows)
	cycles, rel := mg.Solve(f, x, 1e-10, 100)
	if rel > 1e-10 {
		t.Fatalf("W-cycle MG stalled: rel = %v after %d cycles", rel, cycles)
	}
}

func TestLevelWorkAccounting(t *testing.T) {
	k, f, rs := buildElasticity(t, 4, core.Options{MinCoarse: 30})
	mg, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, k.NRows)
	res := krylov.FPCG(k, f, x, mg, 1e-8, 200)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	work := mg.LevelWork()
	if len(work) != mg.NumLevels() {
		t.Fatal("level work length")
	}
	var total int64
	for l, w := range work {
		if w <= 0 {
			t.Fatalf("level %d did no work", l)
		}
		total += w
	}
	// Level work must not exceed the overall cycle+smoother accounting.
	if total > mg.Flops() {
		t.Fatalf("level work %d exceeds total %d", total, mg.Flops())
	}
	// Finest level dominates.
	if work[0] < work[mg.NumLevels()-1] {
		t.Fatalf("work distribution implausible: %v", work)
	}
}

func TestApplyCountsApplications(t *testing.T) {
	k, f, rs := buildElasticity(t, 3, core.Options{MinCoarse: 20})
	mg, err := New(k, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, k.NRows)
	mg.Apply(f, z)
	mg.Apply(f, z)
	if mg.Applies != 2 {
		t.Fatalf("applies = %d", mg.Applies)
	}
}

func TestFixEmptyRows(t *testing.T) {
	// A Galerkin operator with an exactly-empty row must be pinned SPD.
	b := sparse.NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(1, 1, 2)
	// Row/col 2 entirely absent.
	a := fixEmptyRows(b.Build())
	if a.At(2, 2) <= 0 {
		t.Fatalf("empty row not pinned: %v", a.At(2, 2))
	}
	if a.At(2, 0) != 0 || a.At(0, 2) != 0 {
		t.Fatal("pinned row must be decoupled")
	}
	// A healthy matrix passes through untouched.
	c := sparse.Identity(4)
	if got := fixEmptyRows(c); got != c {
		t.Fatal("healthy matrix should be returned as-is")
	}
}

// buildElasticityMF builds the same reduced elasticity system as
// buildElasticity in both forms: the assembled reduced CSR and the
// matrix-free element-by-element operator, sharing one restriction chain.
func buildElasticityMF(t *testing.T, n int) (*sparse.CSR, *fem.EBEOperator, []float64, []*sparse.CSR) {
	t.Helper()
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	u := make([]float64, m.NumDOF())
	k, _, err := p.AssembleTangent(u)
	if err != nil {
		t.Fatal(err)
	}
	c := fem.NewConstraints()
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return q.Z == 0 }) {
		c.FixVert(v, 0, 0, 0)
	}
	f := make([]float64, m.NumDOF())
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return q.Z == 1 }) {
		f[3*v+2] = -0.001
	}
	dm := c.NewDofMap(m.NumDOF())
	kr, fr := c.Reduce(k, f, dm)
	op, err := fem.NewEBEOperator(p, u, c, dm)
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.Coarsen(m, core.Options{MinCoarse: 30})
	if err != nil {
		t.Fatal(err)
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		if l == 1 {
			r = CompressCols(r, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, r)
	}
	return kr, op, fr, rs
}

// TestStorageParityMF extends the storage-parity invariant to the third
// mode: a matrix-free fine level preconditions FPCG to the same solution
// with an iteration count within ±1 of assembled CSR under the identical
// (apply-only Chebyshev) smoother. The products differ by ULPs per row —
// different summation association over the same element contributions —
// so bitwise equality is not expected; iteration parity and solution
// agreement to solver tolerance are.
func TestStorageParityMF(t *testing.T) {
	kr, op, f, rs := buildElasticityMF(t, 4)
	if len(rs) == 0 {
		t.Fatal("no coarse levels")
	}
	solve := func(a sparse.Operator, st StorageKind) ([]float64, int) {
		mg, err := New(a, rs, Options{Storage: st, Smoother: Chebyshev})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Rows())
		res := krylov.FPCG(a, f, x, mg, 1e-8, 400)
		if !res.Converged {
			t.Fatalf("storage %v did not converge", st)
		}
		return x, res.Iterations
	}
	xc, ic := solve(kr, StorageCSR)
	xm, im := solve(op, StorageMatrixFree)
	if d := ic - im; d < -1 || d > 1 {
		t.Fatalf("iteration counts differ beyond ±1: CSR %d vs MF %d", ic, im)
	}
	num, den := 0.0, 0.0
	for i := range xc {
		num += (xc[i] - xm[i]) * (xc[i] - xm[i])
		den += xc[i] * xc[i]
	}
	if math.Sqrt(num) > 1e-6*math.Sqrt(den) {
		t.Fatalf("solutions disagree: rel diff %v", math.Sqrt(num/den))
	}
	t.Logf("CSR %d its, MF %d its", ic, im)
}

// TestMatrixFreeHierarchyShape pins the structural claims of the MF
// storage mode: the fine level stays the element-by-element operator
// (no assembled fine matrix anywhere), every coarse level is an
// assembled scalar CSR from the element-Galerkin capability, and the MF
// solve is run-to-run bitwise deterministic.
func TestMatrixFreeHierarchyShape(t *testing.T) {
	_, op, f, rs := buildElasticityMF(t, 4)
	mg, err := New(op, rs, Options{Storage: StorageMatrixFree})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mg.Levels[0].A.(*fem.EBEOperator); !ok {
		t.Fatalf("fine level is %T, want *fem.EBEOperator", mg.Levels[0].A)
	}
	for l := 1; l < len(mg.Levels); l++ {
		if _, ok := mg.Levels[l].A.(*sparse.CSR); !ok {
			t.Fatalf("level %d is %T, want *sparse.CSR", l, mg.Levels[l].A)
		}
	}
	run := func() []float64 {
		mg2, err := New(op, rs, Options{Storage: StorageMatrixFree})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, op.Rows())
		res := krylov.FPCG(op, f, x, mg2, 1e-8, 400)
		if !res.Converged {
			t.Fatal("MF solve did not converge")
		}
		return x
	}
	x1, x2 := run(), run()
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("MF solve not run-to-run deterministic at dof %d", i)
		}
	}
}

// TestMatrixFreeSmootherFallbacks covers the capability seams: the
// node-block Jacobi smoother works on the node-aligned EBE operator, the
// row-traversal smoothers (domain-block Jacobi kinds) silently fall back
// to Chebyshev rather than demanding entry access, and Gauss-Seidel —
// which genuinely needs ordered sweeps — is rejected with a clear error.
func TestMatrixFreeSmootherFallbacks(t *testing.T) {
	_, op, f, rs := buildElasticityMF(t, 4)
	if _, err := New(op, rs, Options{Storage: StorageMatrixFree, Smoother: GaussSeidel}); err == nil {
		t.Fatal("GaussSeidel on a matrix-free level should be rejected")
	}
	for _, sm := range []SmootherKind{NodeBlockJacobi, DomainBlockJacobiCG, DomainBlockJacobi} {
		mg, err := New(op, rs, Options{Storage: StorageMatrixFree, Smoother: sm})
		if err != nil {
			t.Fatalf("smoother %v on MF: %v", sm, err)
		}
		x := make([]float64, op.Rows())
		res := krylov.FPCG(op, f, x, mg, 1e-8, 400)
		if !res.Converged {
			t.Fatalf("smoother %v on MF did not converge", sm)
		}
	}
}

// TestMatrixFreeRejectsBadConfig: MF storage requires the Galerkin
// capability and at least one coarse level.
func TestMatrixFreeRejectsBadConfig(t *testing.T) {
	kr, op, _, rs := buildElasticityMF(t, 3)
	if _, err := New(kr, rs, Options{Storage: StorageMatrixFree}); err == nil {
		t.Fatal("MF storage over an assembled CSR should fail")
	}
	if _, err := New(op, nil, Options{Storage: StorageMatrixFree}); err == nil {
		t.Fatal("MF storage with no coarse levels should fail")
	}
}
