package delaunay

import (
	"prometheus/internal/geom"
)

// Interpolate finds the tetrahedron containing query point q and returns
// its user-point vertex ids with the barycentric weights of q (computed
// from the original, unperturbed coordinates). ok is false when the
// containing tetrahedron touches the bounding box or cannot be found; such
// query points are the paper's "lost" vertices (section 4.8) and must be
// interpolated from a nearby element via Nearest.
func (tr *Triangulation) Interpolate(q geom.Vec3) (verts [4]int, w [4]float64, ok bool) {
	ti := tr.locateAt(q)
	if ti < 0 {
		return verts, w, false
	}
	t := &tr.tets[ti]
	for _, v := range t.v {
		if v >= tr.nUser {
			return verts, w, false // box-attached: lost
		}
	}
	w, okB := geom.Barycentric(tr.pts[t.v[0]], tr.pts[t.v[1]], tr.pts[t.v[2]], tr.pts[t.v[3]], q)
	if !okB {
		return verts, w, false
	}
	return t.v, w, true
}

// locateAt walks to the tet containing the literal coordinates q.
func (tr *Triangulation) locateAt(q geom.Vec3) int {
	cur := tr.lastHit
	if cur < 0 || cur >= len(tr.tets) || !tr.tets[cur].alive {
		cur = tr.anyAlive()
		if cur < 0 {
			return -1
		}
	}
	orient := func(f [3]int) float64 {
		return -geom.Orient3D(tr.ppts[f[0]], tr.ppts[f[1]], tr.ppts[f[2]], q)
	}
	maxSteps := 4 * (len(tr.tets) + 16)
	for step := 0; step < maxSteps; step++ {
		t := &tr.tets[cur]
		moved := false
		for f := 0; f < 4; f++ {
			if orient(t.faceOf(f)) < 0 {
				nb := t.adj[f]
				if nb < 0 || !tr.tets[nb].alive {
					return -1
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			tr.lastHit = cur
			return cur
		}
	}
	// Degenerate walk; linear scan.
	for ti := range tr.tets {
		t := &tr.tets[ti]
		if !t.alive {
			continue
		}
		inside := true
		for f := 0; f < 4; f++ {
			if orient(t.faceOf(f)) < 0 {
				inside = false
				break
			}
		}
		if inside {
			tr.lastHit = ti
			return ti
		}
	}
	return -1
}

// Nearest returns, among the non-box tetrahedra, the one whose barycentric
// coordinates of q have the largest minimum (the least-violating element),
// with those weights. It is the "find a nearby element to use for the
// interpolants" fallback of section 4.8; the weights may be slightly
// negative. ok is false only when no non-box tetrahedron exists.
func (tr *Triangulation) Nearest(q geom.Vec3) (verts [4]int, w [4]float64, ok bool) {
	best := -1
	bestMin := -1e300
	var bestW [4]float64
	for ti := range tr.tets {
		t := &tr.tets[ti]
		if !t.alive {
			continue
		}
		boxTouch := false
		for _, v := range t.v {
			if v >= tr.nUser {
				boxTouch = true
				break
			}
		}
		if boxTouch {
			continue
		}
		bw, okB := geom.Barycentric(tr.pts[t.v[0]], tr.pts[t.v[1]], tr.pts[t.v[2]], tr.pts[t.v[3]], q)
		if !okB {
			continue
		}
		minw := bw[0]
		for _, x := range bw[1:] {
			if x < minw {
				minw = x
			}
		}
		if minw > bestMin {
			bestMin = minw
			best = ti
			bestW = bw
		}
	}
	if best < 0 {
		return verts, w, false
	}
	return tr.tets[best].v, bestW, true
}
