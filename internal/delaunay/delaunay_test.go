package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/geom"
)

func randPoints(rng *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	return pts
}

func gridPoints(n int) []geom.Vec3 {
	var pts []geom.Vec3
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			for k := 0; k <= n; k++ {
				pts = append(pts, geom.Vec3{
					X: float64(i) / float64(n),
					Y: float64(j) / float64(n),
					Z: float64(k) / float64(n),
				})
			}
		}
	}
	return pts
}

// checkDelaunay verifies the empty circumsphere property over all alive
// tets (against the perturbed points, which define the triangulation).
func checkDelaunay(t *testing.T, tr *Triangulation) {
	t.Helper()
	tets := tr.AllTets()
	for _, tet := range tets {
		a, b, c, d := tr.ppts[tet[0]], tr.ppts[tet[1]], tr.ppts[tet[2]], tr.ppts[tet[3]]
		if geom.TetVolume(a, b, c, d) <= 0 {
			t.Fatalf("non-positive tet %v", tet)
		}
		for p := 0; p < tr.NumUserPoints(); p++ {
			if p == tet[0] || p == tet[1] || p == tet[2] || p == tet[3] {
				continue
			}
			// Positive-volume tets flip Shewchuk's InSphere sign.
			if -geom.InSphere(a, b, c, d, tr.ppts[p]) > 0 {
				t.Fatalf("point %d inside circumsphere of tet %v", p, tet)
			}
		}
	}
}

func TestDelaunayRandomSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		pts := randPoints(rng, 30)
		tr, err := New(pts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkDelaunay(t, tr)
	}
}

func TestDelaunayStructuredGrid(t *testing.T) {
	// Structured grids are massively cospherical: the symbolic perturbation
	// must cope.
	pts := gridPoints(4)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	checkDelaunay(t, tr)
	// Interior tets must cover the cube volume: total volume of non-box
	// tets ≈ 1 (the convex hull of the grid).
	vol := 0.0
	for _, tet := range tr.Tets() {
		vol += geom.TetVolume(tr.Point(tet[0]), tr.Point(tet[1]), tr.Point(tet[2]), tr.Point(tet[3]))
	}
	if math.Abs(vol-1) > 0.05 {
		t.Fatalf("hull volume = %v, want ≈ 1", vol)
	}
}

func TestDelaunayCoplanarPoints(t *testing.T) {
	// All points in the z=0.5 plane: the box corners supply the third
	// dimension; insertion must still succeed thanks to perturbation.
	var pts []geom.Vec3
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			pts = append(pts, geom.Vec3{X: float64(i), Y: float64(j), Z: 0.5})
		}
	}
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	checkDelaunay(t, tr)
}

func TestDelaunayFewPoints(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		pts := randPoints(rand.New(rand.NewSource(int64(n))), n)
		tr, err := New(pts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkDelaunay(t, tr)
	}
	if _, err := New(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestInterpolatePartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 60)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for trial := 0; trial < 200; trial++ {
		// Query points inside the convex hull: random convex combinations.
		a := pts[rng.Intn(len(pts))]
		b := pts[rng.Intn(len(pts))]
		s := rng.Float64()
		q := a.Scale(s).Add(b.Scale(1 - s))
		verts, w, ok := tr.Interpolate(q)
		if !ok {
			continue // may fall in a box-attached sliver near the hull
		}
		found++
		sum := 0.0
		rec := geom.Vec3{}
		for i := 0; i < 4; i++ {
			sum += w[i]
			rec = rec.Add(tr.Point(verts[i]).Scale(w[i]))
			if w[i] < -1e-6 {
				t.Fatalf("containing tet gave negative weight %v", w)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
		if rec.Dist(q) > 1e-9 {
			t.Fatalf("reconstruction off by %v", rec.Dist(q))
		}
	}
	if found < 100 {
		t.Fatalf("only %d/200 interior queries located", found)
	}
}

func TestInterpolateAtVertices(t *testing.T) {
	pts := gridPoints(3)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Interior grid vertices must be located with weight ≈ 1 on themselves.
	for i, p := range pts {
		if p.X == 0 || p.X == 1 || p.Y == 0 || p.Y == 1 || p.Z == 0 || p.Z == 1 {
			continue // hull vertices may land in box-attached tets
		}
		verts, w, ok := tr.Interpolate(p)
		if !ok {
			t.Fatalf("vertex %d not located", i)
		}
		maxw, arg := -1.0, -1
		for k := 0; k < 4; k++ {
			if w[k] > maxw {
				maxw, arg = w[k], verts[k]
			}
		}
		if arg != i || maxw < 0.999 {
			t.Fatalf("vertex %d interpolates to %d with weight %v", i, arg, maxw)
		}
	}
}

func TestNearestFallback(t *testing.T) {
	pts := gridPoints(2)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	// A point slightly outside the hull: Nearest must return a real tet
	// with weights summing to 1 (possibly slightly negative entries).
	q := geom.Vec3{X: 1.05, Y: 0.5, Z: 0.5}
	verts, w, ok := tr.Nearest(q)
	if !ok {
		t.Fatal("no nearest element")
	}
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += w[i]
		if tr.IsBoxVertex(verts[i]) {
			t.Fatal("Nearest returned a box vertex")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestTetsExcludeBox(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(5)), 25)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tet := range tr.Tets() {
		for _, v := range tet {
			if tr.IsBoxVertex(v) {
				t.Fatal("Tets returned a box-attached tet")
			}
		}
	}
	if len(tr.AllTets()) <= len(tr.Tets()) {
		t.Fatal("box-attached tets should exist")
	}
}

func TestDelaunayLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(rng, 500)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check Delaunay property on a sample (full check is O(n·t)).
	tets := tr.AllTets()
	for s := 0; s < 200; s++ {
		tet := tets[rng.Intn(len(tets))]
		a, b, c, d := tr.ppts[tet[0]], tr.ppts[tet[1]], tr.ppts[tet[2]], tr.ppts[tet[3]]
		p := rng.Intn(tr.NumUserPoints())
		if p == tet[0] || p == tet[1] || p == tet[2] || p == tet[3] {
			continue
		}
		if -geom.InSphere(a, b, c, d, tr.ppts[p]) > 0 {
			t.Fatalf("Delaunay violation at sample %d", s)
		}
	}
}

func TestDelaunayCoincidentPoints(t *testing.T) {
	// Many coincident points: the symbolic perturbation separates them;
	// construction must either succeed with valid tets or fail cleanly.
	pts := make([]geom.Vec3, 12)
	for i := range pts {
		pts[i] = geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	}
	tr, err := New(pts)
	if err != nil {
		t.Logf("coincident points rejected cleanly: %v", err)
		return
	}
	for _, tet := range tr.AllTets() {
		if geom.TetVolume(tr.ppts[tet[0]], tr.ppts[tet[1]], tr.ppts[tet[2]], tr.ppts[tet[3]]) <= 0 {
			t.Fatal("invalid tet from coincident input")
		}
	}
}

func TestDelaunayCollinearPoints(t *testing.T) {
	var pts []geom.Vec3
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Vec3{X: float64(i), Y: 2 * float64(i), Z: -float64(i)})
	}
	tr, err := New(pts)
	if err != nil {
		t.Logf("collinear points rejected cleanly: %v", err)
		return
	}
	checkDelaunay(t, tr)
}

func TestNearestOnDegenerateTriangulation(t *testing.T) {
	// A triangulation whose non-box tets are all slivers: Nearest must not
	// return box vertices and must report ok=false when nothing usable
	// exists.
	pts := []geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}}
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ok := tr.Nearest(geom.Vec3{X: 0.5, Y: 0.1, Z: 0})
	// Two points cannot form a non-box tetrahedron.
	if ok {
		t.Fatal("Nearest fabricated an element from two points")
	}
	if got := len(tr.Tets()); got != 0 {
		t.Fatalf("expected no interior tets, got %d", got)
	}
}

func TestInterpolateOutsideDomain(t *testing.T) {
	pts := gridPoints(2)
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Far outside the bounding box: the walk exits; ok must be false.
	if _, _, ok := tr.Interpolate(geom.Vec3{X: 100, Y: 100, Z: 100}); ok {
		t.Fatal("interpolated a point outside the box")
	}
}
