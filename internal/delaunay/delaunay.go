// Package delaunay implements the incremental Bowyer-Watson 3D Delaunay
// tetrahedralization used to remesh the coarse vertex sets (section 4.8):
// a bounding box is placed around the points and meshed, the points are
// inserted one at a time, and the caller removes the tetrahedra attached to
// the bounding box afterwards — fine-grid vertices falling in removed
// tetrahedra become the paper's "lost" vertices and are interpolated from a
// nearby element.
//
// Exact predicates are replaced by float64 predicates evaluated on
// deterministically perturbed copies of the points (symbolic perturbation),
// which resolves the massive cosphericality of structured point sets; see
// the geom package.
package delaunay

import (
	"errors"
	"fmt"

	"prometheus/internal/geom"
	"prometheus/internal/sortutil"
)

// ErrDegenerate is returned when the point set cannot be tetrahedralized
// (all points coincident).
var ErrDegenerate = errors.New("delaunay: degenerate point set")

// tet is one tetrahedron of the triangulation. Vertices are indices into
// the internal point array (user points first, then the 8 box corners).
// adj[i] is the tetrahedron sharing the face opposite vertex i, or -1.
type tet struct {
	v     [4]int
	adj   [4]int
	alive bool
}

// Triangulation is an incremental Delaunay tetrahedralization.
type Triangulation struct {
	pts     []geom.Vec3 // user points then 8 box corners
	ppts    []geom.Vec3 // perturbed copies used by all predicates
	nUser   int
	tets    []tet
	free    []int // recycled tet slots
	lastHit int   // walk start hint
}

// faceOf returns the vertices of face i (opposite vertex i) of t, oriented
// so that the face normal points away from vertex i for a positive-volume
// tetrahedron.
func (t *tet) faceOf(i int) [3]int {
	// For tet (v0,v1,v2,v3) with positive volume, the outward-oriented
	// faces are: opp 0: (1,3,2), opp 1: (0,2,3), opp 2: (0,3,1), opp 3: (0,1,2).
	switch i {
	case 0:
		return [3]int{t.v[1], t.v[3], t.v[2]}
	case 1:
		return [3]int{t.v[0], t.v[2], t.v[3]}
	case 2:
		return [3]int{t.v[0], t.v[3], t.v[1]}
	default:
		return [3]int{t.v[0], t.v[1], t.v[2]}
	}
}

// New builds the Delaunay tetrahedralization of pts. Points are perturbed
// symbolically for the predicates only; reported tetrahedra reference the
// original indices.
func New(pts []geom.Vec3) (*Triangulation, error) {
	if len(pts) == 0 {
		return nil, ErrDegenerate
	}
	box := geom.NewAABB(pts)
	diag := box.Diagonal()
	if diag == 0 {
		diag = 1
	}
	box = box.Expand(0.75*diag + 1e-9)

	tr := &Triangulation{nUser: len(pts)}
	tr.pts = append(tr.pts, pts...)
	// Box corners.
	c := [8]geom.Vec3{
		{X: box.Min.X, Y: box.Min.Y, Z: box.Min.Z},
		{X: box.Max.X, Y: box.Min.Y, Z: box.Min.Z},
		{X: box.Max.X, Y: box.Max.Y, Z: box.Min.Z},
		{X: box.Min.X, Y: box.Max.Y, Z: box.Min.Z},
		{X: box.Min.X, Y: box.Min.Y, Z: box.Max.Z},
		{X: box.Max.X, Y: box.Min.Y, Z: box.Max.Z},
		{X: box.Max.X, Y: box.Max.Y, Z: box.Max.Z},
		{X: box.Min.X, Y: box.Max.Y, Z: box.Max.Z},
	}
	tr.pts = append(tr.pts, c[:]...)
	scale := 1e-7 * diag
	tr.ppts = make([]geom.Vec3, len(tr.pts))
	for i, p := range tr.pts {
		if i < tr.nUser {
			tr.ppts[i] = p.Add(geom.Perturb(i+1, scale))
		} else {
			tr.ppts[i] = p // box corners stay exact (far from everything)
		}
	}

	// Split the box into 6 tetrahedra around the diagonal 0-6.
	n := tr.nUser
	hexTets := [6][4]int{
		{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
		{0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6},
	}
	for _, ht := range hexTets {
		v := [4]int{n + ht[0], n + ht[1], n + ht[2], n + ht[3]}
		if geom.TetVolume(tr.ppts[v[0]], tr.ppts[v[1]], tr.ppts[v[2]], tr.ppts[v[3]]) < 0 {
			v[0], v[1] = v[1], v[0]
		}
		tr.addTet(v)
	}
	tr.rebuildAdjacency()

	for i := 0; i < tr.nUser; i++ {
		if err := tr.insert(i); err != nil {
			return nil, fmt.Errorf("delaunay: inserting point %d: %w", i, err)
		}
	}
	return tr, nil
}

// addTet appends (or recycles) a tet slot and returns its index.
func (tr *Triangulation) addTet(v [4]int) int {
	t := tet{v: v, adj: [4]int{-1, -1, -1, -1}, alive: true}
	if len(tr.free) > 0 {
		id := tr.free[len(tr.free)-1]
		tr.free = tr.free[:len(tr.free)-1]
		tr.tets[id] = t
		return id
	}
	tr.tets = append(tr.tets, t)
	return len(tr.tets) - 1
}

type faceKey [3]int

func sortedFace(f [3]int) faceKey {
	a, b, c := f[0], f[1], f[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return faceKey{a, b, c}
}

// rebuildAdjacency recomputes all adjacency links (used once at startup).
func (tr *Triangulation) rebuildAdjacency() {
	type ref struct{ t, f int }
	m := make(map[faceKey]ref)
	for ti := range tr.tets {
		if !tr.tets[ti].alive {
			continue
		}
		for f := 0; f < 4; f++ {
			k := sortedFace(tr.tets[ti].faceOf(f))
			if r, ok := m[k]; ok {
				tr.tets[ti].adj[f] = r.t
				tr.tets[r.t].adj[r.f] = ti
			} else {
				m[k] = ref{ti, f}
			}
		}
	}
}

// orientP evaluates Orient3D on the perturbed points; positive means the
// tetrahedron (a,b,c,d) has positive volume.
func (tr *Triangulation) orientP(a, b, c, d int) float64 {
	// TetVolume > 0 corresponds to Orient3D < 0 (Shewchuk sign), so flip.
	return -geom.Orient3D(tr.ppts[a], tr.ppts[b], tr.ppts[c], tr.ppts[d])
}

// inSphereP reports whether point p lies inside the circumsphere of the
// (positive-volume) tet t, using the perturbed coordinates.
func (tr *Triangulation) inSphereP(t *tet, p int) bool {
	s := geom.InSphere(tr.ppts[t.v[0]], tr.ppts[t.v[1]], tr.ppts[t.v[2]], tr.ppts[t.v[3]], tr.ppts[p])
	// Our tets have TetVolume > 0, i.e. Shewchuk orientation negative, so
	// the InSphere sign is flipped.
	return -s > 0
}

// locate walks from the hint tet to a tet containing point p (by perturbed
// coordinates). Returns the tet index or -1.
func (tr *Triangulation) locate(p int) int {
	cur := tr.lastHit
	if cur < 0 || cur >= len(tr.tets) || !tr.tets[cur].alive {
		cur = tr.anyAlive()
		if cur < 0 {
			return -1
		}
	}
	maxSteps := 4 * (len(tr.tets) + 16)
	for step := 0; step < maxSteps; step++ {
		t := &tr.tets[cur]
		moved := false
		for f := 0; f < 4; f++ {
			fc := t.faceOf(f)
			// p strictly outside face f (face oriented outward): volume of
			// (face, p) negative.
			if tr.orientP(fc[0], fc[1], fc[2], p) > 0 {
				continue
			}
			if tr.orientP(fc[0], fc[1], fc[2], p) < 0 {
				nb := t.adj[f]
				if nb < 0 || !tr.tets[nb].alive {
					return -1 // outside hull: cannot happen inside the box
				}
				cur = nb
				moved = true
				break
			}
		}
		if !moved {
			tr.lastHit = cur
			return cur
		}
	}
	// Walk cycled (degenerate); fall back to a linear scan.
	for ti := range tr.tets {
		t := &tr.tets[ti]
		if !t.alive {
			continue
		}
		inside := true
		for f := 0; f < 4; f++ {
			fc := t.faceOf(f)
			if tr.orientP(fc[0], fc[1], fc[2], p) < 0 {
				inside = false
				break
			}
		}
		if inside {
			tr.lastHit = ti
			return ti
		}
	}
	return -1
}

func (tr *Triangulation) anyAlive() int {
	for i := range tr.tets {
		if tr.tets[i].alive {
			return i
		}
	}
	return -1
}

// insert adds user point p via Bowyer-Watson.
func (tr *Triangulation) insert(p int) error {
	start := tr.locate(p)
	if start < 0 {
		return errors.New("containing tetrahedron not found")
	}
	// Cavity: BFS over tets whose circumsphere contains p.
	inCavity := map[int]bool{start: true}
	stack := []int{start}
	var cavity []int
	for len(stack) > 0 {
		ti := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cavity = append(cavity, ti)
		for f := 0; f < 4; f++ {
			nb := tr.tets[ti].adj[f]
			if nb < 0 || inCavity[nb] || !tr.tets[nb].alive {
				continue
			}
			if tr.inSphereP(&tr.tets[nb], p) {
				inCavity[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	// Boundary faces of the cavity with their external neighbours. Every
	// boundary face (oriented outward from its cavity tet) must see p on
	// its inner side — the cavity must be star-shaped from p. Inconsistent
	// predicate roundings can violate this; the standard repair is to
	// shrink the cavity by evicting the tetrahedra owning offending faces
	// and re-deriving the boundary, which always terminates because the
	// single containing tetrahedron is star-shaped by construction.
	type bface struct {
		verts [3]int
		ext   int // external tet or -1
	}
	var boundary []bface
	for repair := 0; ; repair++ {
		// Keep only the cavity component still face-connected to start
		// (evictions can strand tetrahedra, which would create an annulus).
		reach := map[int]bool{start: true}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			ti := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for f := 0; f < 4; f++ {
				nb := tr.tets[ti].adj[f]
				if nb >= 0 && inCavity[nb] && !reach[nb] {
					reach[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if len(reach) != len(inCavity) {
			inCavity = reach
			// Sorted keys keep the construction deterministic.
			cavity = sortutil.KeysInto(cavity, reach)
		}
		boundary = boundary[:0]
		evict := -1
		for _, ti := range cavity {
			for f := 0; f < 4; f++ {
				nb := tr.tets[ti].adj[f]
				if nb >= 0 && inCavity[nb] {
					continue
				}
				fc := tr.tets[ti].faceOf(f)
				if tr.orientP(fc[0], fc[1], fc[2], p) <= 0 && ti != start {
					evict = ti
					break
				}
				boundary = append(boundary, bface{fc, nb})
			}
			if evict >= 0 {
				break
			}
		}
		if evict < 0 {
			break
		}
		if repair > len(tr.tets) {
			return errors.New("cavity repair did not terminate")
		}
		delete(inCavity, evict)
		for k, ti := range cavity {
			if ti == evict {
				cavity = append(cavity[:k], cavity[k+1:]...)
				break
			}
		}
	}
	// After repair the start tet's own faces may still be violated only in
	// truly degenerate inputs.
	for _, bf := range boundary {
		if tr.orientP(bf.verts[0], bf.verts[1], bf.verts[2], p) <= 0 {
			return errors.New("cavity not star-shaped (degenerate input)")
		}
	}
	// Remove cavity tets.
	for _, ti := range cavity {
		tr.tets[ti].alive = false
		tr.free = append(tr.free, ti)
	}
	// Create a new tet per boundary face: (face, p) has positive volume
	// because p is on the inner side of the outward-oriented face.
	newTets := make([]int, 0, len(boundary))
	edgeMap := make(map[faceKey]int, 3*len(boundary)) // internal face -> new tet
	for _, bf := range boundary {
		v := [4]int{bf.verts[0], bf.verts[1], bf.verts[2], p}
		nt := tr.addTet(v)
		newTets = append(newTets, nt)
		// Link across the boundary face: in the new tet, p is vertex 3, so
		// the face opposite p (face 3) is the boundary face.
		tr.tets[nt].adj[3] = bf.ext
		if bf.ext >= 0 {
			// Find which face of ext matches.
			k := sortedFace(bf.verts)
			for f := 0; f < 4; f++ {
				if sortedFace(tr.tets[bf.ext].faceOf(f)) == k {
					tr.tets[bf.ext].adj[f] = nt
					break
				}
			}
		}
		// Internal faces (those containing p): register and link pairwise.
		for f := 0; f < 3; f++ {
			k := sortedFace(tr.tets[nt].faceOf(f))
			if other, ok := edgeMap[k]; ok {
				// Find matching face index on other.
				for g := 0; g < 4; g++ {
					if sortedFace(tr.tets[other].faceOf(g)) == k {
						tr.tets[other].adj[g] = nt
						break
					}
				}
				tr.tets[nt].adj[f] = other
			} else {
				edgeMap[k] = nt
			}
		}
	}
	tr.lastHit = newTets[0]
	return nil
}

// Tets returns the alive tetrahedra that do not touch the bounding box
// corners (the paper removes the tetrahedra attached to the bounding box
// vertices). Vertex indices refer to the user's point array.
func (tr *Triangulation) Tets() [][4]int {
	var out [][4]int
	for i := range tr.tets {
		t := &tr.tets[i]
		if !t.alive {
			continue
		}
		boxTouch := false
		for _, v := range t.v {
			if v >= tr.nUser {
				boxTouch = true
				break
			}
		}
		if !boxTouch {
			out = append(out, t.v)
		}
	}
	return out
}

// AllTets returns every alive tetrahedron including those attached to the
// bounding box (used by tests).
func (tr *Triangulation) AllTets() [][4]int {
	var out [][4]int
	for i := range tr.tets {
		if tr.tets[i].alive {
			out = append(out, tr.tets[i].v)
		}
	}
	return out
}

// NumUserPoints returns the number of points supplied to New.
func (tr *Triangulation) NumUserPoints() int { return tr.nUser }

// Point returns user point i's original coordinates.
func (tr *Triangulation) Point(i int) geom.Vec3 { return tr.pts[i] }

// IsBoxVertex reports whether vertex id v is a bounding-box corner.
func (tr *Triangulation) IsBoxVertex(v int) bool { return v >= tr.nUser }
