// Package check is the runtime invariant layer of the solver. Its
// assertions are compiled in only under the "promdebug" build tag
// (go build -tags promdebug); the default build gets no-op stubs and a
// false Enabled constant, so guarded call sites
//
//	if check.Enabled {
//	    check.Assert(cond, "pkg.Func: message %d", n)
//	}
//
// are eliminated as dead code and cost nothing in release builds.
//
// The package deliberately imports nothing but the standard library
// (fmt/sort), so every numeric package — sparse, par, core, multigrid —
// can call into it without import cycles: invariants over CSR matrices,
// index sets, and partitions are expressed on raw slices rather than on
// the packages' own types.
//
// Failed assertions panic with a "check: "-prefixed message naming the
// call site context; they are programming errors, not recoverable
// conditions.
package check
