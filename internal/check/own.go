//go:build promdebug

package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Owners is the runtime write-ownership sanitizer behind the promdebug
// tag: the dynamic counterpart of the shared-write / range-partition lint
// rules. Each worker claims the half-open index range of the shared slice
// it is about to write; a claim that overlaps another worker's active
// claim on the same backing array panics with both workers' stacks, so a
// bad partition is caught at the first racy dispatch instead of
// corrupting results silently.
//
// The discipline mirrors internal/obs: storage is preallocated by Init,
// Claim fills a fixed per-worker stack buffer with runtime.Stack (no
// allocation), and when checking is disabled every entry point is a
// single atomic load. In release builds (no promdebug) Owners is an
// empty struct and all methods are no-ops compiled away behind
// check.Enabled guards.
type Owners struct {
	on     atomic.Bool
	mu     sync.Mutex
	claims []ownClaim
}

// Claims are expressed in the coordinates of the slice header passed to
// Claim: two claims collide when their index ranges intersect and the
// headers address the same element at a common index. Callers must
// therefore claim in the coordinates of the shared vector itself (as the
// pool does); differently-based subslice views of one array are distinct
// coordinate systems the table does not unify.

// ownClaim is one worker's active range on one shared backing array. The
// slice header is retained so overlap detection can compare element
// addresses — two claims collide only when their index ranges intersect
// on the same backing array.
type ownClaim struct {
	y      []float64
	lo, hi int
	// idx, when non-nil, makes this a set claim: the worker owns exactly
	// the listed indices of y instead of a contiguous range. Set claims
	// are how colored element scatters (disjoint but non-contiguous write
	// sets) register with the sanitizer. The slice is retained, not
	// copied — callers pass precomputed immutable write sets.
	idx    []int32
	active bool
	stack  []byte // filled at claim time; preallocated by Init
	stackN int
}

// ownStackCap sizes the per-worker stack capture buffer.
const ownStackCap = 8 << 10

// Init sizes the table for nw workers and enables checking. It
// allocates; call it at pool construction, never per dispatch.
func (o *Owners) Init(nw int) {
	o.mu.Lock()
	if len(o.claims) != nw {
		o.claims = make([]ownClaim, nw)
		for w := range o.claims {
			o.claims[w].stack = make([]byte, ownStackCap)
		}
	}
	for w := range o.claims {
		o.claims[w].active = false
	}
	o.mu.Unlock()
	o.on.Store(true)
}

// Enable turns checking on (Init must have run).
func (o *Owners) Enable() { o.on.Store(true) }

// Disable turns checking off; Claim and Release become a single atomic
// load, so instrumented kernels can be benchmarked with the sanitizer
// compiled in but inert.
func (o *Owners) Disable() { o.on.Store(false) }

// Claim records that worker w is about to write y[lo:hi]. It panics if
// the range overlaps another worker's active claim on the same backing
// array, printing both claims and both workers' stacks.
func (o *Owners) Claim(w int, y []float64, lo, hi int) {
	if !o.on.Load() {
		return
	}
	if lo >= hi || lo < 0 || hi > len(y) {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if w < 0 || w >= len(o.claims) {
		panic(fmt.Sprintf("check: Owners.Claim worker %d out of range [0,%d)", w, len(o.claims)))
	}
	c := &o.claims[w]
	c.y = y
	c.lo, c.hi = lo, hi
	c.idx = nil
	c.stackN = runtime.Stack(c.stack, false)
	c.active = true
	o.collide(w)
}

// ClaimIndices records that worker w is about to write exactly the listed
// indices of y (a set claim — the colored-scatter counterpart of Claim).
// It panics if any listed index lies inside another worker's active range
// claim, or is shared with another worker's active set claim, on the same
// backing array. The index slice is retained until Release; callers pass
// precomputed immutable write sets, never per-call temporaries they
// mutate.
func (o *Owners) ClaimIndices(w int, y []float64, idx []int32) {
	if !o.on.Load() {
		return
	}
	if len(idx) == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if w < 0 || w >= len(o.claims) {
		panic(fmt.Sprintf("check: Owners.ClaimIndices worker %d out of range [0,%d)", w, len(o.claims)))
	}
	c := &o.claims[w]
	c.y = y
	c.lo, c.hi = 0, 0
	c.idx = idx
	c.stackN = runtime.Stack(c.stack, false)
	c.active = true
	o.collide(w)
}

// collide panics if worker w's just-recorded claim overlaps any other
// worker's active claim. Callers hold o.mu.
func (o *Owners) collide(w int) {
	c := &o.claims[w]
	for v := range o.claims {
		if v == w || !o.claims[v].active {
			continue
		}
		d := &o.claims[v]
		if claimsOverlap(c, d) {
			panic(fmt.Sprintf(
				"check: cross-worker write overlap: worker %d claims %s overlapping worker %d's %s\n\n-- worker %d stack --\n%s\n-- worker %d stack --\n%s",
				w, claimDesc(c), v, claimDesc(d),
				w, c.stack[:c.stackN], v, d.stack[:d.stackN]))
		}
	}
}

// claimDesc formats a claim for the overlap panic.
func claimDesc(c *ownClaim) string {
	if c.idx != nil {
		return fmt.Sprintf("%d indices %v…", len(c.idx), c.idx[:min(len(c.idx), 8)])
	}
	return fmt.Sprintf("[%d,%d)", c.lo, c.hi)
}

// claimsOverlap reports whether two active claims cover a common element
// of the same backing array: the claimed coordinates intersect and, at a
// common index, both slice headers address the same element. Set claims
// compare index by index (write sets are element-sized, so the quadratic
// set-set comparison stays cheap).
func claimsOverlap(a, b *ownClaim) bool {
	switch {
	case a.idx == nil && b.idx == nil:
		if a.lo >= b.hi || b.lo >= a.hi {
			return false
		}
		m := a.lo
		if b.lo > m {
			m = b.lo
		}
		return &a.y[m] == &b.y[m]
	case a.idx != nil && b.idx == nil:
		return setRangeOverlap(a, b)
	case a.idx == nil:
		return setRangeOverlap(b, a)
	default:
		for _, i := range a.idx {
			ii := int(i)
			if ii < 0 || ii >= len(a.y) {
				continue
			}
			for _, j := range b.idx {
				if i == j && &a.y[ii] == &b.y[ii] {
					return true
				}
			}
		}
		return false
	}
}

// setRangeOverlap reports whether set claim s shares an element with
// range claim r on the same backing array.
func setRangeOverlap(s, r *ownClaim) bool {
	for _, i := range s.idx {
		ii := int(i)
		if ii < r.lo || ii >= r.hi || ii >= len(s.y) {
			continue
		}
		if &s.y[ii] == &r.y[ii] {
			return true
		}
	}
	return false
}

// Release clears worker w's active claim.
func (o *Owners) Release(w int) {
	if !o.on.Load() {
		return
	}
	o.mu.Lock()
	if w >= 0 && w < len(o.claims) {
		o.claims[w].active = false
		o.claims[w].y = nil
		o.claims[w].idx = nil
	}
	o.mu.Unlock()
}
