//go:build !promdebug

package check

// Enabled reports whether invariant checking is compiled in. It is a
// constant so that "if check.Enabled { ... }" blocks vanish entirely from
// release builds.
const Enabled = false

// Assert is a no-op in release builds.
func Assert(cond bool, format string, args ...interface{}) {}

// CSRWellFormed is a no-op in release builds.
func CSRWellFormed(nRows, nCols int, rowPtr, colIdx []int, nVal int, ctx string) {}

// F32Representable is a no-op in release builds.
func F32Representable(vals []float64, ctx string) {}

// SortedUnique is a no-op in release builds.
func SortedUnique(idx []int, n int, ctx string) {}

// StrictlyDecreasing is a no-op in release builds.
func StrictlyDecreasing(dims []int, ctx string) {}

// IndependentSet is a no-op in release builds.
func IndependentSet(mis []int, n int, neighbors func(int) []int, immortal []bool, ctx string) {}

// Partition is a no-op in release builds.
func Partition(owner []int, nRanks int, ctx string) {}
