//go:build promdebug

package check

import (
	"strings"
	"testing"
)

// TestOwnersCatchesOverlap seeds the exact bug the sanitizer exists for:
// two workers claiming intersecting ranges of the same vector. The panic
// must name both workers and carry both stacks.
func TestOwnersCatchesOverlap(t *testing.T) {
	var o Owners
	o.Init(4)
	y := make([]float64, 100)
	o.Claim(0, y, 0, 60)
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("overlapping claim did not panic")
		}
		msg, ok := e.(string)
		if !ok {
			t.Fatalf("panic payload is %T, want string", e)
		}
		for _, want := range []string{"worker 1 claims [50,80)", "worker 0's [0,60)", "-- worker 1 stack --", "-- worker 0 stack --", "goroutine"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message missing %q:\n%s", want, msg)
			}
		}
	}()
	o.Claim(1, y, 50, 80)
}

// TestOwnersDistinctArraysNoFalsePositive: identical index ranges on
// different vectors must not collide (two dispatch phases writing two
// different vectors would otherwise trip the table).
func TestOwnersDistinctArraysNoFalsePositive(t *testing.T) {
	var o Owners
	o.Init(2)
	a := make([]float64, 50)
	b := make([]float64, 50)
	o.Claim(0, a, 0, 50)
	o.Claim(1, b, 0, 50) // must not panic
	o.Release(0)
	o.Release(1)
}

// TestOwnersDisjointRangesNoFalsePositive: the healthy dispatch shape.
func TestOwnersDisjointRangesNoFalsePositive(t *testing.T) {
	var o Owners
	o.Init(3)
	y := make([]float64, 90)
	o.Claim(0, y, 0, 30)
	o.Claim(1, y, 30, 60)
	o.Claim(2, y, 60, 90)
	for w := 0; w < 3; w++ {
		o.Release(w)
	}
	// Released ranges are reclaimable by anyone.
	o.Claim(1, y, 0, 90)
	o.Release(1)
}

// TestOwnersDisableStopsChecking: with checking off, even an
// overlapping claim must be ignored (the inert fast path).
func TestOwnersDisableStopsChecking(t *testing.T) {
	var o Owners
	o.Init(2)
	y := make([]float64, 10)
	o.Claim(0, y, 0, 10)
	o.Disable()
	o.Claim(1, y, 0, 10) // must not panic
	o.Enable()
	o.Release(0)
	o.Release(1)
}
