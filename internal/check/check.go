//go:build promdebug

package check

import (
	"fmt"
	"math"
)

// Enabled reports whether invariant checking is compiled in. It is a
// constant so that "if check.Enabled { ... }" blocks vanish entirely from
// release builds.
const Enabled = true

// Assert panics with the formatted message when cond is false.
func Assert(cond bool, format string, args ...interface{}) {
	if !cond {
		panic("check: " + fmt.Sprintf(format, args...))
	}
}

// CSRWellFormed validates the structural invariants of a CSR matrix given
// its raw storage: RowPtr has length nRows+1, starts at 0, is monotone
// non-decreasing and ends at len(colIdx); column indices are strictly
// increasing within each row and in [0, nCols); and the value array
// matches the index array in length. ctx names the call site in the
// panic message.
func CSRWellFormed(nRows, nCols int, rowPtr, colIdx []int, nVal int, ctx string) {
	Assert(nRows >= 0 && nCols >= 0, "%s: negative dimensions %dx%d", ctx, nRows, nCols)
	Assert(len(rowPtr) == nRows+1, "%s: RowPtr length %d, want %d", ctx, len(rowPtr), nRows+1)
	Assert(rowPtr[0] == 0, "%s: RowPtr[0] = %d, want 0", ctx, rowPtr[0])
	Assert(rowPtr[nRows] == len(colIdx), "%s: RowPtr[last] = %d, want nnz %d", ctx, rowPtr[nRows], len(colIdx))
	Assert(nVal == len(colIdx), "%s: %d values for %d column indices", ctx, nVal, len(colIdx))
	for i := 0; i < nRows; i++ {
		Assert(rowPtr[i] <= rowPtr[i+1], "%s: RowPtr not monotone at row %d (%d > %d)", ctx, i, rowPtr[i], rowPtr[i+1])
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			j := colIdx[k]
			Assert(j >= 0 && j < nCols, "%s: row %d column %d out of range [0,%d)", ctx, i, j, nCols)
			if k > rowPtr[i] {
				Assert(colIdx[k-1] < j, "%s: row %d columns not strictly increasing (%d then %d)", ctx, i, colIdx[k-1], j)
			}
		}
	}
}

// F32Representable asserts that every value survives narrowing to float32:
// finite and within ±math.MaxFloat32. Called at the mixed-precision storage
// boundaries (sparse.ToCSR32/ToBSR32) so a coarse-level matrix that would
// overflow or produce NaN in f32 storage fails loudly at build time rather
// than corrupting the smoother silently.
func F32Representable(vals []float64, ctx string) {
	for i, v := range vals {
		Assert(!math.IsNaN(v), "%s: value %d is NaN, not representable in float32", ctx, i)
		Assert(math.Abs(v) <= math.MaxFloat32,
			"%s: value %d (%g) overflows float32 range", ctx, i, v)
	}
}

// SortedUnique asserts that idx is strictly increasing with every entry in
// [0, n).
func SortedUnique(idx []int, n int, ctx string) {
	for k, v := range idx {
		Assert(v >= 0 && v < n, "%s: index %d out of range [0,%d)", ctx, v, n)
		if k > 0 {
			Assert(idx[k-1] < v, "%s: indices not strictly increasing (%d then %d)", ctx, idx[k-1], v)
		}
	}
}

// StrictlyDecreasing asserts that dims is a strictly decreasing sequence —
// the level-dimension monotonicity of a multigrid hierarchy (every coarse
// grid must be smaller than its parent).
func StrictlyDecreasing(dims []int, ctx string) {
	for i := 1; i < len(dims); i++ {
		Assert(dims[i] < dims[i-1], "%s: level %d has %d dofs, not below parent's %d", ctx, i, dims[i], dims[i-1])
	}
}

// IndependentSet asserts the MIS invariants on a selected vertex set:
// every vertex is in [0, n) and listed once, and no two selected mortal
// vertices are adjacent (immortal vertices are exempt from independence
// by the paper's corner rule). The set may be in any order — the serial
// MIS reports vertices in traversal order. neighbors(v) returns the
// adjacency of v.
func IndependentSet(mis []int, n int, neighbors func(int) []int, immortal []bool, ctx string) {
	in := make([]bool, n)
	for _, v := range mis {
		Assert(v >= 0 && v < n, "%s: vertex %d out of range [0,%d)", ctx, v, n)
		Assert(!in[v], "%s: vertex %d selected twice", ctx, v)
		in[v] = true
	}
	imm := func(v int) bool { return immortal != nil && immortal[v] }
	for _, v := range mis {
		if imm(v) {
			continue
		}
		for _, w := range neighbors(v) {
			Assert(!in[w] || imm(w), "%s: selected mortal vertices %d and %d are adjacent", ctx, v, w)
		}
	}
}

// Partition asserts that owner assigns every element to a rank in
// [0, nRanks).
func Partition(owner []int, nRanks int, ctx string) {
	for i, o := range owner {
		Assert(o >= 0 && o < nRanks, "%s: element %d owned by rank %d, want [0,%d)", ctx, i, o, nRanks)
	}
}
