package check

import "testing"

// mustPanic runs fn and reports whether it panicked.
func mustPanic(fn func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	fn()
	return false
}

func TestAssert(t *testing.T) {
	if mustPanic(func() { Assert(true, "fine") }) {
		t.Fatal("Assert(true) must never panic")
	}
	if got := mustPanic(func() { Assert(false, "boom %d", 7) }); got != Enabled {
		t.Fatalf("Assert(false) panicked=%v, want %v (Enabled=%v)", got, Enabled, Enabled)
	}
}

func TestCSRWellFormed(t *testing.T) {
	good := func() {
		CSRWellFormed(2, 3, []int{0, 2, 3}, []int{0, 2, 1}, 3, "test")
	}
	if mustPanic(good) {
		t.Fatal("well-formed CSR must pass")
	}
	bad := []struct {
		name string
		fn   func()
	}{
		{"rowptr length", func() { CSRWellFormed(2, 3, []int{0, 2}, []int{0, 2}, 2, "test") }},
		{"rowptr start", func() { CSRWellFormed(1, 3, []int{1, 2}, []int{0, 1}, 2, "test") }},
		{"rowptr end", func() { CSRWellFormed(1, 3, []int{0, 1}, []int{0, 1}, 2, "test") }},
		{"rowptr monotone", func() { CSRWellFormed(2, 3, []int{0, 2, 1}, []int{0}, 1, "test") }},
		{"col out of range", func() { CSRWellFormed(1, 2, []int{0, 1}, []int{5}, 1, "test") }},
		{"col unsorted", func() { CSRWellFormed(1, 3, []int{0, 2}, []int{2, 0}, 2, "test") }},
		{"col duplicate", func() { CSRWellFormed(1, 3, []int{0, 2}, []int{1, 1}, 2, "test") }},
		{"val length", func() { CSRWellFormed(1, 3, []int{0, 2}, []int{0, 1}, 3, "test") }},
	}
	for _, tc := range bad {
		if got := mustPanic(tc.fn); got != Enabled {
			t.Errorf("%s: panicked=%v, want %v", tc.name, got, Enabled)
		}
	}
}

func TestSortedUnique(t *testing.T) {
	if mustPanic(func() { SortedUnique([]int{0, 3, 7}, 8, "test") }) {
		t.Fatal("sorted unique slice must pass")
	}
	if got := mustPanic(func() { SortedUnique([]int{0, 3, 3}, 8, "test") }); got != Enabled {
		t.Errorf("duplicate: panicked=%v, want %v", got, Enabled)
	}
	if got := mustPanic(func() { SortedUnique([]int{0, 9}, 8, "test") }); got != Enabled {
		t.Errorf("out of range: panicked=%v, want %v", got, Enabled)
	}
}

func TestStrictlyDecreasing(t *testing.T) {
	if mustPanic(func() { StrictlyDecreasing([]int{100, 40, 9}, "test") }) {
		t.Fatal("decreasing dims must pass")
	}
	if got := mustPanic(func() { StrictlyDecreasing([]int{100, 100}, "test") }); got != Enabled {
		t.Errorf("stalled dims: panicked=%v, want %v", got, Enabled)
	}
}

func TestIndependentSet(t *testing.T) {
	// Path graph 0-1-2-3.
	nbr := func(v int) []int {
		switch v {
		case 0:
			return []int{1}
		case 3:
			return []int{2}
		default:
			return []int{v - 1, v + 1}
		}
	}
	if mustPanic(func() { IndependentSet([]int{0, 2}, 4, nbr, nil, "test") }) {
		t.Fatal("independent set must pass")
	}
	if got := mustPanic(func() { IndependentSet([]int{0, 1}, 4, nbr, nil, "test") }); got != Enabled {
		t.Errorf("adjacent pair: panicked=%v, want %v", got, Enabled)
	}
	// Immortal vertices are exempt from independence.
	imm := []bool{false, true, false, false}
	if mustPanic(func() { IndependentSet([]int{0, 1}, 4, nbr, imm, "test") }) {
		t.Fatal("immortal neighbour must be allowed")
	}
	if mustPanic(func() { IndependentSet([]int{2, 0}, 4, nbr, nil, "test") }) {
		t.Fatal("unsorted but independent set must pass")
	}
	if got := mustPanic(func() { IndependentSet([]int{0, 0}, 4, nbr, nil, "test") }); got != Enabled {
		t.Errorf("duplicate vertex: panicked=%v, want %v", got, Enabled)
	}
}

func TestPartition(t *testing.T) {
	if mustPanic(func() { Partition([]int{0, 1, 1, 0}, 2, "test") }) {
		t.Fatal("valid partition must pass")
	}
	if got := mustPanic(func() { Partition([]int{0, 2}, 2, "test") }); got != Enabled {
		t.Errorf("rank out of range: panicked=%v, want %v", got, Enabled)
	}
}
