//go:build !promdebug

package check

// Owners is the write-ownership sanitizer stub for release builds: an
// empty struct with no-op methods. All call sites sit under
// "if check.Enabled" so the hooks vanish entirely (locked in by
// TestOwnersInertWithoutPromdebug).
type Owners struct{}

// Init is a no-op in release builds.
func (o *Owners) Init(nw int) {}

// Enable is a no-op in release builds.
func (o *Owners) Enable() {}

// Disable is a no-op in release builds.
func (o *Owners) Disable() {}

// Claim is a no-op in release builds.
func (o *Owners) Claim(w int, y []float64, lo, hi int) {}

// ClaimIndices is a no-op in release builds.
func (o *Owners) ClaimIndices(w int, y []float64, idx []int32) {}

// Release is a no-op in release builds.
func (o *Owners) Release(w int) {}
