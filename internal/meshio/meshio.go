// Package meshio reads and writes meshes in a simple "flat" text format
// modelled on the paper's Athena input path: "Athena reads a large 'flat'
// finite element mesh input file in parallel (ie, each processor seeks and
// reads only the part of the input file that it, and it alone, is
// responsible for)". ReadParallel reproduces that access pattern on the
// simulated communicator: each rank parses only its contiguous slice of
// the vertex and element records, and the slices are stitched together.
//
// Format (whitespace separated, '#' comments):
//
//	mesh <hex8|tet4> <numVerts> <numElems>
//	v <x> <y> <z>            (numVerts lines)
//	e <mat> <v0> <v1> ...    (numElems lines, 8 or 4 vertex ids)
package meshio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prometheus/internal/geom"
	"prometheus/internal/mesh"
	"prometheus/internal/par"
)

// Write serializes the mesh.
func Write(w io.Writer, m *mesh.Mesh) error {
	bw := bufio.NewWriter(w)
	kind := "hex8"
	if m.Type == mesh.Tet4 {
		kind = "tet4"
	}
	fmt.Fprintf(bw, "mesh %s %d %d\n", kind, m.NumVerts(), m.NumElems())
	for _, p := range m.Coords {
		fmt.Fprintf(bw, "v %.17g %.17g %.17g\n", p.X, p.Y, p.Z)
	}
	for e, conn := range m.Elems {
		fmt.Fprintf(bw, "e %d", m.Mat[e])
		for _, v := range conn {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// header holds the parsed first line.
type header struct {
	typ            mesh.ElemType
	nVerts, nElems int
}

func parseHeader(line string) (header, error) {
	f := strings.Fields(line)
	if len(f) != 4 || f[0] != "mesh" {
		return header{}, fmt.Errorf("meshio: bad header %q", line)
	}
	var h header
	switch f[1] {
	case "hex8":
		h.typ = mesh.Hex8
	case "tet4":
		h.typ = mesh.Tet4
	default:
		return header{}, fmt.Errorf("meshio: unknown element type %q", f[1])
	}
	var err error
	if h.nVerts, err = strconv.Atoi(f[2]); err != nil {
		return header{}, fmt.Errorf("meshio: bad vertex count: %w", err)
	}
	if h.nElems, err = strconv.Atoi(f[3]); err != nil {
		return header{}, fmt.Errorf("meshio: bad element count: %w", err)
	}
	if h.nVerts < 0 || h.nElems < 0 {
		return header{}, fmt.Errorf("meshio: negative counts in header")
	}
	return h, nil
}

// records splits the input into the header line and the data lines,
// skipping blanks and comments.
func records(data string) ([]string, error) {
	var lines []string
	for _, ln := range strings.Split(data, "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		lines = append(lines, ln)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("meshio: empty input")
	}
	return lines, nil
}

func parseVertex(ln string) (geom.Vec3, error) {
	f := strings.Fields(ln)
	if len(f) != 4 || f[0] != "v" {
		return geom.Vec3{}, fmt.Errorf("meshio: bad vertex record %q", ln)
	}
	var p geom.Vec3
	var err error
	if p.X, err = strconv.ParseFloat(f[1], 64); err != nil {
		return p, err
	}
	if p.Y, err = strconv.ParseFloat(f[2], 64); err != nil {
		return p, err
	}
	if p.Z, err = strconv.ParseFloat(f[3], 64); err != nil {
		return p, err
	}
	return p, nil
}

func parseElem(ln string, npe int) (int, []int, error) {
	f := strings.Fields(ln)
	if len(f) != npe+2 || f[0] != "e" {
		return 0, nil, fmt.Errorf("meshio: bad element record %q", ln)
	}
	mat, err := strconv.Atoi(f[1])
	if err != nil {
		return 0, nil, err
	}
	conn := make([]int, npe)
	for i := 0; i < npe; i++ {
		if conn[i], err = strconv.Atoi(f[2+i]); err != nil {
			return 0, nil, err
		}
	}
	return mat, conn, nil
}

// Read parses a mesh serially.
func Read(r io.Reader) (*mesh.Mesh, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines, err := records(string(data))
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(lines[0])
	if err != nil {
		return nil, err
	}
	if len(lines) != 1+h.nVerts+h.nElems {
		return nil, fmt.Errorf("meshio: expected %d records, found %d", 1+h.nVerts+h.nElems, len(lines))
	}
	m := &mesh.Mesh{Type: h.typ}
	for i := 0; i < h.nVerts; i++ {
		p, err := parseVertex(lines[1+i])
		if err != nil {
			return nil, err
		}
		m.Coords = append(m.Coords, p)
	}
	npe := h.typ.NodesPerElem()
	for i := 0; i < h.nElems; i++ {
		mat, conn, err := parseElem(lines[1+h.nVerts+i], npe)
		if err != nil {
			return nil, err
		}
		m.Mat = append(m.Mat, mat)
		m.Elems = append(m.Elems, conn)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadParallel parses the mesh with the Athena access pattern: every rank
// of comm parses only its contiguous share of the vertex and element
// records (each rank "seeks and reads only the part of the input file that
// it, and it alone, is responsible for"); rank results are concatenated in
// rank order. The outcome is identical to Read.
func ReadParallel(comm *par.Comm, data string) (*mesh.Mesh, error) {
	lines, err := records(data)
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(lines[0])
	if err != nil {
		return nil, err
	}
	if len(lines) != 1+h.nVerts+h.nElems {
		return nil, fmt.Errorf("meshio: expected %d records, found %d", 1+h.nVerts+h.nElems, len(lines))
	}
	p := comm.Size()
	npe := h.typ.NodesPerElem()

	type slice struct {
		coords []geom.Vec3
		mats   []int
		elems  [][]int
		err    error
	}
	parts := make([]slice, p)

	// share returns the [lo, hi) range of n records owned by rank r.
	share := func(n, r int) (int, int) {
		lo := n * r / p
		hi := n * (r + 1) / p
		return lo, hi
	}
	comm.Run(func(rk *par.Rank) {
		me := rk.ID()
		var s slice
		vlo, vhi := share(h.nVerts, me)
		for i := vlo; i < vhi; i++ {
			pt, err := parseVertex(lines[1+i])
			if err != nil {
				s.err = err
				break
			}
			s.coords = append(s.coords, pt)
		}
		elo, ehi := share(h.nElems, me)
		for i := elo; i < ehi && s.err == nil; i++ {
			mat, conn, err := parseElem(lines[1+h.nVerts+i], npe)
			if err != nil {
				s.err = err
				break
			}
			s.mats = append(s.mats, mat)
			s.elems = append(s.elems, conn)
		}
		parts[me] = s
		rk.Barrier()
	})
	m := &mesh.Mesh{Type: h.typ}
	for _, s := range parts {
		if s.err != nil {
			return nil, s.err
		}
		m.Coords = append(m.Coords, s.coords...)
		m.Mat = append(m.Mat, s.mats...)
		m.Elems = append(m.Elems, s.elems...)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
