package meshio

import (
	"bufio"
	"fmt"
	"io"

	"prometheus/internal/mesh"
)

// VTK legacy cell type codes.
const (
	vtkTetra        = 10
	vtkHexahedron   = 12
	vtkQuadraticHex = 25
)

// WriteVTK serializes the mesh as a legacy-format VTK unstructured grid
// with the material id as a cell scalar and optional per-vertex scalar
// fields (e.g. vertex classification ranks or displacement magnitudes) —
// the Figure 7 coarse grids and Figure 9 model problem render directly in
// ParaView from this output.
func WriteVTK(w io.Writer, m *mesh.Mesh, pointData map[string][]float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "prometheus mesh")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")

	fmt.Fprintf(bw, "POINTS %d double\n", m.NumVerts())
	for _, p := range m.Coords {
		fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z)
	}

	npe := m.Type.NodesPerElem()
	fmt.Fprintf(bw, "CELLS %d %d\n", m.NumElems(), m.NumElems()*(npe+1))
	for _, conn := range m.Elems {
		fmt.Fprintf(bw, "%d", npe)
		for _, v := range conn {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw)
	}
	cellType := vtkHexahedron
	switch m.Type {
	case mesh.Tet4:
		cellType = vtkTetra
	case mesh.Hex20:
		cellType = vtkQuadraticHex
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", m.NumElems())
	for range m.Elems {
		fmt.Fprintln(bw, cellType)
	}

	fmt.Fprintf(bw, "CELL_DATA %d\n", m.NumElems())
	fmt.Fprintln(bw, "SCALARS material int 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for _, mat := range m.Mat {
		fmt.Fprintln(bw, mat)
	}

	if len(pointData) > 0 {
		fmt.Fprintf(bw, "POINT_DATA %d\n", m.NumVerts())
		for name, vals := range pointData {
			if len(vals) != m.NumVerts() {
				return fmt.Errorf("meshio: point field %q has %d values for %d vertices",
					name, len(vals), m.NumVerts())
			}
			fmt.Fprintf(bw, "SCALARS %s double 1\n", name)
			fmt.Fprintln(bw, "LOOKUP_TABLE default")
			for _, v := range vals {
				fmt.Fprintf(bw, "%g\n", v)
			}
		}
	}
	return bw.Flush()
}
