package meshio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"prometheus/internal/geom"
	"prometheus/internal/mesh"
	"prometheus/internal/par"
	"prometheus/internal/problems"
)

func TestRoundTripHex(t *testing.T) {
	m := mesh.StructuredHex(3, 2, 2, 1, 1, 1, func(c geom.Vec3) int {
		if c.X < 0.5 {
			return 0
		}
		return 1
	})
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || !reflect.DeepEqual(got.Coords, m.Coords) ||
		!reflect.DeepEqual(got.Elems, m.Elems) || !reflect.DeepEqual(got.Mat, m.Mat) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripTet(t *testing.T) {
	m := &mesh.Mesh{
		Type:   mesh.Tet4,
		Coords: []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}, {X: 1, Y: 1, Z: 1}},
		Elems:  [][]int{{0, 1, 2, 3}, {1, 2, 3, 4}},
		Mat:    []int{0, 3},
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
mesh tet4 4 1

v 0 0 0
v 1 0 0
# interior comment
v 0 1 0
v 0 0 1
e 2 0 1 2 3
`
	m, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() != 4 || m.NumElems() != 1 || m.Mat[0] != 2 {
		t.Fatalf("parsed %d verts %d elems", m.NumVerts(), m.NumElems())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"mash hex8 1 1",
		"mesh hex9 1 1",
		"mesh hex8 x 1",
		"mesh tet4 1 0\nv 1 2",                // bad vertex record
		"mesh tet4 1 1\nv 0 0 0\ne 0 0",       // bad element record
		"mesh tet4 2 0\nv 0 0 0",              // missing records
		"mesh tet4 1 1\nv 0 0 0\ne 0 0 0 0 9", // vertex id out of range
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestReadParallelMatchesSerial(t *testing.T) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	var buf bytes.Buffer
	if err := Write(&buf, s.Mesh); err != nil {
		t.Fatal(err)
	}
	data := buf.String()
	serial, err := Read(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7} {
		got, err := ReadParallel(par.NewComm(p), data)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("p=%d: parallel read differs from serial", p)
		}
	}
}

func TestReadParallelErrors(t *testing.T) {
	if _, err := ReadParallel(par.NewComm(2), "mesh tet4 1 1\nv 0 0 0\ne 0 bad 0 0 0"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadParallel(par.NewComm(2), ""); err == nil {
		t.Fatal("expected empty-input error")
	}
}

func TestWriteVTK(t *testing.T) {
	m := mesh.StructuredHex(2, 1, 1, 2, 1, 1, func(c geom.Vec3) int {
		if c.X < 1 {
			return 0
		}
		return 1
	})
	rank := make([]float64, m.NumVerts())
	for i := range rank {
		rank[i] = float64(i % 4)
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, map[string][]float64{"rank": rank}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DATASET UNSTRUCTURED_GRID",
		"POINTS 12 double",
		"CELLS 2 18",
		"CELL_TYPES 2",
		"SCALARS material int 1",
		"POINT_DATA 12",
		"SCALARS rank double 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VTK output missing %q", want)
		}
	}
	// Tet and Hex20 cell codes.
	tm := mesh.HexToTets(mesh.StructuredHex(1, 1, 1, 1, 1, 1, nil))
	buf.Reset()
	if err := WriteVTK(&buf, tm, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n10\n") {
		t.Fatal("tet cell type missing")
	}
	qm := mesh.StructuredHex20(1, 1, 1, 1, 1, 1, nil)
	buf.Reset()
	if err := WriteVTK(&buf, qm, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n25\n") {
		t.Fatal("quadratic hex cell type missing")
	}
	// Bad point field length.
	if err := WriteVTK(&buf, m, map[string][]float64{"bad": {1}}); err == nil {
		t.Fatal("expected length error")
	}
}
