// Package geom provides the small geometric toolkit used throughout the
// solver: 3-vectors, axis-aligned bounding boxes, and the orientation and
// in-sphere predicates needed by the Delaunay remesher and the face
// identification algorithm.
//
// The paper uses Shewchuk's adaptive-precision predicates; we substitute
// float64 arithmetic with a deterministic symbolic perturbation (see
// predicates.go), which is sufficient for the regularly structured and
// randomly jittered point sets exercised here. Fine vertices for which
// point location nonetheless fails are handled by the coarsening layer's
// "lost vertex" fallback, exactly as in the paper (section 4.8).
package geom

import "math"

// ApproxEq reports whether a and b agree to within the absolute tolerance
// tol. It is the project's canonical float comparison: the promlint
// float-equality rule rejects naked ==/!= between floating-point values,
// and call sites route through this helper (or compare against the exact
// literal 0) instead.
func ApproxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Vec3 is a point or vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// NewAABB returns the bounding box of the given points. An empty point set
// yields an inverted (empty) box.
func NewAABB(pts []Vec3) AABB {
	b := AABB{
		Min: Vec3{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: Vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
	for _, p := range pts {
		b.Include(p)
	}
	return b
}

// Include grows the box to contain p.
func (b *AABB) Include(p Vec3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Contains reports whether p lies inside the (closed) box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the midpoint of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Diagonal returns the length of the box diagonal.
func (b AABB) Diagonal() float64 { return b.Max.Sub(b.Min).Norm() }

// Expand returns the box grown by margin in every direction.
func (b AABB) Expand(margin float64) AABB {
	m := Vec3{margin, margin, margin}
	return AABB{Min: b.Min.Sub(m), Max: b.Max.Add(m)}
}
