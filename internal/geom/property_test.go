package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Property: Orient3D flips sign under odd permutations and keeps it under
// even permutations.
func TestOrient3DPermutationParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		o := Orient3D(a, b, c, d)
		if o == 0 {
			continue
		}
		// Swap two points: odd permutation, sign must flip.
		if s := Orient3D(b, a, c, d); s*o >= 0 {
			t.Fatalf("odd permutation kept sign: %v vs %v", o, s)
		}
		// 3-cycle: even permutation, sign preserved.
		if s := Orient3D(b, c, a, d); s*o <= 0 {
			t.Fatalf("even permutation flipped sign: %v vs %v", o, s)
		}
	}
}

// Property: TetVolume is translation invariant.
func TestTetVolumeTranslationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		shift := randVec(rng).Scale(10)
		v1 := TetVolume(a, b, c, d)
		v2 := TetVolume(a.Add(shift), b.Add(shift), c.Add(shift), d.Add(shift))
		if math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
			t.Fatalf("volume changed under translation: %v vs %v", v1, v2)
		}
	}
}

// Property: InSphere is negative for points far outside any circumsphere.
func TestInSphereFarPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		if Orient3D(a, b, c, d) <= 0 {
			a, b = b, a
		}
		if Orient3D(a, b, c, d) <= 0 {
			continue
		}
		// Compare against the actual circumsphere: near-degenerate slivers
		// have enormous circumspheres, so "far" must be measured from the
		// circumcenter. (Extremely distant probes are also avoided: the
		// InSphere rows then all degenerate towards -e and the filtered
		// determinant rightly reports uncertainty.)
		ctr, ok := Circumcenter(a, b, c, d)
		if !ok {
			continue
		}
		r := ctr.Dist(a)
		if r > 50 {
			continue // sliver: probe distances become unreliable
		}
		far := ctr.Add(Vec3{X: 3 * r, Y: -4 * r, Z: 5 * r})
		if InSphere(a, b, c, d, far) >= 0 {
			t.Fatalf("point at %v×r from circumcenter reported inside", far.Dist(ctr)/r)
		}
	}
}
