package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{2*6 - 3*(-5), 3*4 - 1*6, 1*(-5) - 2*4}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{0, 0, 0}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize zero = %v", got)
	}
	if got := (Vec3{0, 0, 2}).Normalize(); got != (Vec3{0, 0, 1}) {
		t.Errorf("Normalize = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAABB(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {1, 2, 3}, {-1, 5, 2}}
	b := NewAABB(pts)
	if b.Min != (Vec3{-1, 0, 0}) || b.Max != (Vec3{1, 5, 3}) {
		t.Fatalf("box = %+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(Vec3{2, 0, 0}) {
		t.Error("box should not contain (2,0,0)")
	}
	e := b.Expand(1)
	if !e.Contains(Vec3{1.5, -0.5, 3.5}) {
		t.Error("expanded box missing point")
	}
	if c := b.Center(); c != (Vec3{0, 2.5, 1.5}) {
		t.Errorf("center = %v", c)
	}
}

func TestOrient3D(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	// Shewchuk convention: d above the plane (a,b,c counterclockwise from
	// above) gives a negative determinant, d below gives positive.
	if got := Orient3D(a, b, c, Vec3{0, 0, 1}); got >= 0 {
		t.Errorf("Orient3D above plane = %v, want < 0", got)
	}
	if got := Orient3D(a, b, c, Vec3{0, 0, -1}); got <= 0 {
		t.Errorf("Orient3D below plane = %v, want > 0", got)
	}
	if got := Orient3D(a, b, c, Vec3{0.25, 0.25, 0}); got != 0 {
		t.Errorf("coplanar Orient3D = %v, want 0", got)
	}
}

func TestOrient3DConsistentWithVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := randVec(rng)
		b := randVec(rng)
		c := randVec(rng)
		d := randVec(rng)
		o := Orient3D(a, b, c, d)
		v := TetVolume(a, b, c, d)
		// Orient3D(a,b,c,d) > 0 <=> d below plane(a,b,c) <=> signed volume < 0.
		if o > 0 && v >= 0 || o < 0 && v <= 0 {
			t.Fatalf("sign mismatch: orient=%v vol=%v", o, v)
		}
	}
}

func TestInSphere(t *testing.T) {
	// Regular tetrahedron-ish: unit tet with positive Orient3D ordering.
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, -1} // below plane so Orient3D(a,b,c,d) > 0
	if Orient3D(a, b, c, d) <= 0 {
		t.Fatal("test setup: tetrahedron not positively oriented")
	}
	center, ok := Circumcenter(a, b, c, d)
	if !ok {
		t.Fatal("degenerate circumcenter")
	}
	if got := InSphere(a, b, c, d, center); got <= 0 {
		t.Errorf("InSphere(center) = %v, want > 0", got)
	}
	far := Vec3{100, 100, 100}
	if got := InSphere(a, b, c, d, far); got >= 0 {
		t.Errorf("InSphere(far) = %v, want < 0", got)
	}
	// A vertex of the tetrahedron is on the sphere: filter returns 0.
	if got := InSphere(a, b, c, d, a); got != 0 {
		t.Errorf("InSphere(vertex) = %v, want 0", got)
	}
}

func TestInSphereRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		if Orient3D(a, b, c, d) <= 0 {
			a, b = b, a
		}
		if Orient3D(a, b, c, d) <= 0 {
			continue // degenerate
		}
		ctr, ok := Circumcenter(a, b, c, d)
		if !ok {
			continue
		}
		r := ctr.Dist(a)
		// A point clearly inside.
		if got := InSphere(a, b, c, d, ctr); got <= 0 {
			t.Fatalf("center not inside: %v", got)
		}
		// A point clearly outside along +x.
		out := ctr.Add(Vec3{2 * r, 0, 0})
		if got := InSphere(a, b, c, d, out); got >= 0 {
			t.Fatalf("outside point reported inside: %v", got)
		}
	}
}

func TestBarycentric(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	c := Vec3{0, 1, 0}
	d := Vec3{0, 0, 1}
	w, ok := Barycentric(a, b, c, d, Vec3{0.25, 0.25, 0.25})
	if !ok {
		t.Fatal("degenerate")
	}
	sum := 0.0
	for _, wi := range w {
		sum += wi
		if wi < 0 || wi > 1 {
			t.Errorf("weight out of range: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
	// At a vertex the weight is 1 for that vertex.
	w, _ = Barycentric(a, b, c, d, b)
	if math.Abs(w[1]-1) > 1e-12 {
		t.Errorf("vertex weight = %v", w)
	}
	// Degenerate tetrahedron.
	if _, ok := Barycentric(a, b, c, a.Add(b).Scale(0.5), Vec3{}); ok {
		t.Error("expected failure on flat tetrahedron")
	}
}

func TestBarycentricPartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		p := randVec(rng)
		w, ok := Barycentric(a, b, c, d, p)
		if !ok {
			return true
		}
		sum := w[0] + w[1] + w[2] + w[3]
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		// Reconstruction: sum w_i * v_i == p.
		rec := a.Scale(w[0]).Add(b.Scale(w[1])).Add(c.Scale(w[2])).Add(d.Scale(w[3]))
		return rec.Dist(p) < 1e-6*(1+p.Norm())
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatal("barycentric reconstruction failed")
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	p1 := Perturb(42, 1e-9)
	p2 := Perturb(42, 1e-9)
	if p1 != p2 {
		t.Error("Perturb is not deterministic")
	}
	if p1 == Perturb(43, 1e-9) {
		t.Error("Perturb collision for adjacent ids")
	}
	if math.Abs(p1.X) > 1e-9 || math.Abs(p1.Y) > 1e-9 || math.Abs(p1.Z) > 1e-9 {
		t.Errorf("Perturb out of range: %v", p1)
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		ctr, ok := Circumcenter(a, b, c, d)
		if !ok {
			continue
		}
		r := ctr.Dist(a)
		for _, p := range []Vec3{b, c, d} {
			if math.Abs(ctr.Dist(p)-r) > 1e-6*(1+r) {
				t.Fatalf("circumcenter not equidistant: %v vs %v", ctr.Dist(p), r)
			}
		}
	}
}

func randVec(rng *rand.Rand) Vec3 {
	return Vec3{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
}
