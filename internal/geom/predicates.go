package geom

import (
	"math"
)

// The predicates below follow the standard determinant formulations.
// Exact arithmetic (the paper links Shewchuk's predicates) is replaced by
// float64 evaluation with an error-bound filter: results whose magnitude
// falls below a permanence bound derived from the operand magnitudes are
// treated as degenerate and resolved by a deterministic symbolic
// perturbation keyed on the vertex indices. This keeps the Delaunay
// construction deterministic and watertight on the structured point sets
// (which are exactly cospherical in large groups) without multiprecision
// arithmetic.

// epsilon is the unit roundoff for float64.
const epsilon = 2.220446049250313e-16

// Orient3D returns a positive value when d lies below the plane through
// a, b, c (so that (a,b,c,d) is positively oriented), negative above, and
// zero when the four points are coplanar to within the arithmetic filter.
func Orient3D(a, b, c, d Vec3) float64 {
	adx, ady, adz := a.X-d.X, a.Y-d.Y, a.Z-d.Z
	bdx, bdy, bdz := b.X-d.X, b.Y-d.Y, b.Z-d.Z
	cdx, cdy, cdz := c.X-d.X, c.Y-d.Y, c.Z-d.Z

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	cdxady := cdx * ady
	adxcdy := adx * cdy
	adxbdy := adx * bdy
	bdxady := bdx * ady

	det := adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*math.Abs(adz) +
		(math.Abs(cdxady)+math.Abs(adxcdy))*math.Abs(bdz) +
		(math.Abs(adxbdy)+math.Abs(bdxady))*math.Abs(cdz)
	errBound := 8 * epsilon * permanent
	if det > errBound || -det > errBound {
		return det
	}
	return 0
}

// InSphere returns a positive value when e lies strictly inside the
// circumsphere of the positively oriented tetrahedron (a, b, c, d),
// negative when outside, and zero when the five points are cospherical to
// within the arithmetic filter. The caller must ensure
// Orient3D(a,b,c,d) > 0; for a negatively oriented tetrahedron the sign is
// flipped.
func InSphere(a, b, c, d, e Vec3) float64 {
	aex, aey, aez := a.X-e.X, a.Y-e.Y, a.Z-e.Z
	bex, bey, bez := b.X-e.X, b.Y-e.Y, b.Z-e.Z
	cex, cey, cez := c.X-e.X, c.Y-e.Y, c.Z-e.Z
	dex, dey, dez := d.X-e.X, d.Y-e.Y, d.Z-e.Z

	ab := aex*bey - bex*aey
	bc := bex*cey - cex*bey
	cd := cex*dey - dex*cey
	da := dex*aey - aex*dey
	ac := aex*cey - cex*aey
	bd := bex*dey - dex*bey

	abc := aez*bc - bez*ac + cez*ab
	bcd := bez*cd - cez*bd + dez*bc
	cda := cez*da + dez*ac + aez*cd
	dab := dez*ab + aez*bd + bez*da

	alift := aex*aex + aey*aey + aez*aez
	blift := bex*bex + bey*bey + bez*bez
	clift := cex*cex + cey*cey + cez*cez
	dlift := dex*dex + dey*dey + dez*dez

	det := (dlift*abc - clift*dab) + (blift*cda - alift*bcd)

	aezplus := math.Abs(aez)
	bezplus := math.Abs(bez)
	cezplus := math.Abs(cez)
	dezplus := math.Abs(dez)
	aexbeyplus := math.Abs(aex * bey)
	bexaeyplus := math.Abs(bex * aey)
	bexceyplus := math.Abs(bex * cey)
	cexbeyplus := math.Abs(cex * bey)
	cexdeyplus := math.Abs(cex * dey)
	dexceyplus := math.Abs(dex * cey)
	dexaeyplus := math.Abs(dex * aey)
	aexdeyplus := math.Abs(aex * dey)
	aexceyplus := math.Abs(aex * cey)
	cexaeyplus := math.Abs(cex * aey)
	bexdeyplus := math.Abs(bex * dey)
	dexbeyplus := math.Abs(dex * bey)
	permanent := ((cexdeyplus+dexceyplus)*bezplus+
		(dexbeyplus+bexdeyplus)*cezplus+
		(bexceyplus+cexbeyplus)*dezplus)*alift +
		((dexaeyplus+aexdeyplus)*cezplus+
			(aexceyplus+cexaeyplus)*dezplus+
			(cexdeyplus+dexceyplus)*aezplus)*blift +
		((aexbeyplus+bexaeyplus)*dezplus+
			(bexdeyplus+dexbeyplus)*aezplus+
			(dexaeyplus+aexdeyplus)*bezplus)*clift +
		((bexceyplus+cexbeyplus)*aezplus+
			(cexaeyplus+aexceyplus)*bezplus+
			(aexbeyplus+bexaeyplus)*cezplus)*dlift

	errBound := 16 * epsilon * permanent
	if det > errBound || -det > errBound {
		return det
	}
	return 0
}

// Perturb returns a deterministic pseudo-random offset in [-scale, scale]^3
// keyed on the integer id. It is used to break exact degeneracies (large
// cospherical groups on structured grids) in a reproducible way: the same
// id always receives the same offset.
func Perturb(id int, scale float64) Vec3 {
	h := uint64(id)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func() float64 {
		h ^= h >> 32
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 29
		// Map the top 53 bits to [0,1).
		return float64(h>>11) / (1 << 53)
	}
	return Vec3{
		(2*next() - 1) * scale,
		(2*next() - 1) * scale,
		(2*next() - 1) * scale,
	}
}

// TetVolume returns the signed volume of tetrahedron (a, b, c, d); positive
// when the tetrahedron is positively oriented.
func TetVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// Barycentric returns the barycentric coordinates (w0, w1, w2, w3) of point
// p with respect to tetrahedron (a, b, c, d), and ok=false when the
// tetrahedron is degenerate. The weights sum to one; a point inside the
// tetrahedron has all weights in [0, 1].
func Barycentric(a, b, c, d, p Vec3) (w [4]float64, ok bool) {
	vol := TetVolume(a, b, c, d)
	if vol == 0 {
		return w, false
	}
	w[0] = TetVolume(p, b, c, d) / vol
	w[1] = TetVolume(a, p, c, d) / vol
	w[2] = TetVolume(a, b, p, d) / vol
	w[3] = TetVolume(a, b, c, p) / vol
	return w, true
}

// Circumcenter returns the circumcenter of tetrahedron (a, b, c, d) and
// ok=false when the tetrahedron is degenerate.
func Circumcenter(a, b, c, d Vec3) (Vec3, bool) {
	ba := b.Sub(a)
	ca := c.Sub(a)
	da := d.Sub(a)
	den := 2 * ba.Cross(ca).Dot(da)
	if den == 0 {
		return Vec3{}, false
	}
	n := ca.Cross(da).Scale(ba.Norm2()).
		Add(da.Cross(ba).Scale(ca.Norm2())).
		Add(ba.Cross(ca).Scale(da.Norm2()))
	return a.Add(n.Scale(1 / den)), true
}
