package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSPD(rng *rand.Rand, n int) *Dense {
	// A = Bᵀ·B + n·I is SPD with probability 1.
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.Float64()*2 - 1
	}
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestDenseBasics(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 2, 2)
	a.Set(1, 1, 3)
	a.Add(1, 1, 1)
	if a.At(1, 1) != 4 {
		t.Fatalf("At = %v", a.At(1, 1))
	}
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	a.MulVec(x, y)
	if y[0] != 3 || y[1] != 4 {
		t.Fatalf("MulVec = %v", y)
	}
	tt := a.Transpose()
	if tt.Rows != 3 || tt.Cols != 2 || tt.At(2, 0) != 2 {
		t.Fatalf("Transpose wrong: %v", tt)
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone aliases original")
	}
	c.Zero()
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
	if s := a.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
}

func TestMulAssociatesWithMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewDense(4, 5)
	b := NewDense(5, 3)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	x := make([]float64, 3)
	for i := range x {
		x[i] = rng.Float64()
	}
	// (A·B)·x == A·(B·x)
	ab := a.Mul(b)
	y1 := make([]float64, 4)
	ab.MulVec(x, y1)
	tmp := make([]float64, 5)
	b.MulVec(x, tmp)
	y2 := make([]float64, 4)
	a.MulVec(tmp, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("Mul/MulVec mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(rng, n)
		chol, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.Float64()*2 - 1
		}
		b := make([]float64, n)
		a.MulVec(xTrue, b)
		x := make([]float64, n)
		chol.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d]=%v want %v", n, i, x[i], xTrue[i])
			}
		}
		// In-place solve.
		chol.Solve(b, b)
		for i := range b {
			if math.Abs(b[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("in-place solve wrong at %d", i)
			}
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 10, 40} {
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // diagonally dominant => nonsingular
		}
		lu, err := NewLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.Float64()
		}
		b := make([]float64, n)
		a.MulVec(xTrue, b)
		x := make([]float64, n)
		lu.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d]=%v want %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero on the initial pivot forces a row swap.
	a := NewDense(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	lu.Solve([]float64{3, 5}, x)
	if math.Abs(x[0]-5) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
	if d := lu.Det(); math.Abs(d+1) > 1e-14 {
		t.Fatalf("Det = %v, want -1", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatal("Dot")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2")
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	if z[0] != 6 || z[2] != 12 {
		t.Fatalf("Axpy = %v", z)
	}
	Scal(0.5, z)
	if z[0] != 3 {
		t.Fatalf("Scal = %v", z)
	}
	d := make([]float64, 3)
	Copy(d, x)
	if d[2] != 3 {
		t.Fatal("Copy")
	}
	if MaxAbs([]float64{-7, 2}) != 7 {
		t.Fatal("MaxAbs")
	}
}

func TestCholeskyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		n := 1 + int(seed%7+7)%7 // 1..7
		a := randSPD(rng, n)
		chol, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		x := make([]float64, n)
		chol.Solve(b, x)
		// Residual check: A·x ≈ b.
		r := make([]float64, n)
		a.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
