package la

// This file holds the sanctioned precision boundaries of the solver. The
// promlint precision-flow rules (narrowing-discipline, accumulation-width,
// krylov-precision) treat these four functions as the only legal places
// where solver data may change width:
//
//   - To32 / Narrow32 narrow float64 data into float32 storage. They are
//     the designated storage boundaries — the multigrid hierarchy narrows
//     coarse-level matrices here and nowhere else, so a reviewer (or the
//     linter) can enumerate every narrowing site in the tree.
//   - Wide64 / W64 widen float32 storage back to float64 compute. A value
//     returned by either is precision-clean by definition: widening is
//     exact, so the f32 taint tracked by krylov-precision stops here.
//
// W64 compiles to a single CVTSS2SD — it exists so the f32 kernels can
// widen inside register-blocked loops without the linter (or a reader)
// mistaking the conversion for an accidental one.

// To32 narrows src into dst entry-wise. It is the sanctioned slice-level
// float64→float32 storage boundary; callers are responsible for checking
// representability first (check.F32Representable under promdebug).
func To32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("la: To32 length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Narrow32 narrows one value. It is the sanctioned scalar float64→float32
// storage boundary.
func Narrow32(v float64) float32 { return float32(v) }

// Wide64 widens src into dst entry-wise (exact).
func Wide64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("la: Wide64 length mismatch")
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// W64 widens one value (exact). Inlines to a bare conversion, so the f32
// SpMV and smoother kernels pay one register instruction per operand and
// keep their float64 accumulators.
func W64(v float32) float64 { return float64(v) }
