// Package la provides the small dense linear-algebra kernels used by the
// element routines, the block-Jacobi smoother, and the coarsest-grid
// solver: column-major-free row-major dense matrices with Cholesky and
// partially pivoted LU factorizations, plus BLAS-1 style vector helpers.
package la

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = A(i,j)
}

// NewDense returns a zero r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("la: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns A(i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns A(i,j) = v.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates A(i,j) += v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every entry to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = A*x. y must have length Rows and x length Cols.
func (m *Dense) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("la: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// Mul returns C = A*B.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic("la: Mul dimension mismatch")
	}
	c := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			crow := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j, bv := range brow {
				crow[j] += a * bv
			}
		}
	}
	return c
}

// Transpose returns Aᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// String formats the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%12.5g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite (to within roundoff).
var ErrNotSPD = errors.New("la: matrix is not positive definite")

// ErrSingular is returned by LU when a zero pivot is encountered.
var ErrSingular = errors.New("la: matrix is singular")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ. The
// transpose is stored explicitly so both triangular solves stream through
// memory contiguously.
type Cholesky struct {
	N  int
	L  []float64 // row-major lower triangle, full storage
	Lt []float64 // row-major upper triangle (Lᵀ)
}

// NewCholesky factors the symmetric positive definite matrix A (only the
// lower triangle is referenced).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("la: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		li := l[i*n : i*n+i+1]
		for j := 0; j <= i; j++ {
			lj := l[j*n : j*n+j]
			s := a.Data[i*n+j]
			for k, lv := range lj {
				s -= li[k] * lv
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				li[i] = math.Sqrt(s)
			} else {
				li[j] = s / l[j*n+j]
			}
		}
	}
	lt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			lt[j*n+i] = l[i*n+j]
		}
	}
	return &Cholesky{N: n, L: l, Lt: lt}, nil
}

// Solve computes x with A·x = b, overwriting x. b and x may alias.
func (c *Cholesky) Solve(b, x []float64) {
	n := c.N
	if len(b) != n || len(x) != n {
		panic("la: Cholesky.Solve dimension mismatch")
	}
	if &b[0] != &x[0] {
		copy(x, b)
	}
	// Forward substitution L·y = b (row-contiguous).
	for i := 0; i < n; i++ {
		s := x[i]
		row := c.L[i*n : i*n+i]
		for k, lv := range row {
			s -= lv * x[k]
		}
		x[i] = s / c.L[i*n+i]
	}
	// Back substitution Lᵀ·x = y using the contiguous transpose rows.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := c.Lt[i*n+i+1 : i*n+n]
		xs := x[i+1 : n]
		for k, lv := range row {
			s -= lv * xs[k]
		}
		x[i] = s / c.Lt[i*n+i]
	}
}

// LU holds a partially pivoted LU factorization P·A = L·U.
type LU struct {
	N    int
	LU   []float64
	Piv  []int
	sign int
}

// NewLU factors A with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		panic("la: LU of non-square matrix")
	}
	n := a.Rows
	lu := make([]float64, n*n)
	copy(lu, a.Data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search.
		p := k
		maxv := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &LU{N: n, LU: lu, Piv: piv, sign: sign}, nil
}

// Solve computes x with A·x = b. b and x may alias.
func (f *LU) Solve(b, x []float64) {
	n := f.N
	if len(b) != n || len(x) != n {
		panic("la: LU.Solve dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.Piv[i]]
	}
	// L·z = P·b (unit diagonal).
	for i := 0; i < n; i++ {
		s := y[i]
		for k := 0; k < i; k++ {
			s -= f.LU[i*n+k] * y[k]
		}
		y[i] = s
	}
	// U·x = z.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= f.LU[i*n+k] * y[k]
		}
		y[i] = s / f.LU[i*n+i]
	}
	copy(x, y)
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.N; i++ {
		d *= f.LU[i*f.N+i]
	}
	return d
}

// Dot returns xᵀ·y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("la: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal scales x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("la: Copy length mismatch")
	}
	copy(dst, src)
}

// MaxAbs returns the infinity norm of x.
func MaxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
