package la

import (
	"math"
	"math/rand"
	"testing"
)

// TestNarrowWidenRoundTrip checks the defining property of the sanctioned
// boundary: narrowing and widening back perturbs a value by at most half
// a float32 ULP (round-to-nearest), and widening is exact.
func TestNarrowWidenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(13)-6))
		w := W64(Narrow32(v))
		// Half-ULP bound for round-to-nearest: |w - v| <= eps32/2 * |v|,
		// with eps32 = 2^-23.
		if math.Abs(w-v) > math.Abs(v)/(1<<24) {
			t.Fatalf("round trip of %g moved by %g, beyond half a float32 ULP", v, w-v)
		}
	}
	// Widening an exact f32 value and narrowing back is the identity.
	for i := 0; i < 1000; i++ {
		v := float32(rng.NormFloat64())
		if Narrow32(W64(v)) != v {
			t.Fatalf("W64 -> Narrow32 is not the identity on float32 %v", v)
		}
	}
}

// TestSliceConversions checks To32/Wide64 element mapping and their
// length-mismatch panics.
func TestSliceConversions(t *testing.T) {
	src := []float64{1, -2.5, 1e-30, 3.14159265358979, 1e30}
	dst := make([]float32, len(src))
	To32(dst, src)
	for i, v := range src {
		if dst[i] != float32(v) {
			t.Fatalf("To32[%d] = %v, want %v", i, dst[i], float32(v))
		}
	}
	back := make([]float64, len(src))
	Wide64(back, dst)
	for i := range back {
		if back[i] != float64(dst[i]) {
			t.Fatalf("Wide64[%d] = %v, want %v", i, back[i], float64(dst[i]))
		}
	}
	mustPanic(t, "To32", func() { To32(make([]float32, 2), src) })
	mustPanic(t, "Wide64", func() { Wide64(make([]float64, 2), dst) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s with mismatched lengths must panic", name)
		}
	}()
	f()
}
