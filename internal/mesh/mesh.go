// Package mesh provides the unstructured finite element meshes the solver
// operates on: vertex coordinates, Hex8/Tet4 element connectivity with
// per-element material ids, the vertex adjacency ("node") graph used by the
// MIS coarsening, and boundary facet extraction including material
// interfaces ("these include boundaries between material types",
// section 4.4).
package mesh

import (
	"fmt"
	"sort"

	"prometheus/internal/geom"
	"prometheus/internal/graph"
)

// ElemType distinguishes the supported element topologies.
type ElemType int

const (
	// Hex8 is an 8-node trilinear hexahedron with the usual node order:
	// nodes 0-3 on the bottom face (counterclockwise seen from above),
	// nodes 4-7 above them.
	Hex8 ElemType = iota
	// Tet4 is a 4-node linear tetrahedron, positively oriented.
	Tet4
	// Hex20 is the 20-node serendipity hexahedron (the paper's "higher
	// order elements" future work): nodes 0-7 are the Hex8 corners, nodes
	// 8-11 the bottom edge midsides (01,12,23,30), 12-15 the top edge
	// midsides (45,56,67,74), and 16-19 the vertical edge midsides
	// (04,15,26,37).
	Hex20
)

// NodesPerElem returns the connectivity length of the element type.
func (t ElemType) NodesPerElem() int {
	switch t {
	case Hex8:
		return 8
	case Hex20:
		return 20
	default:
		return 4
	}
}

// Mesh is an unstructured mesh with a homogeneous element type.
type Mesh struct {
	Type   ElemType
	Coords []geom.Vec3
	Elems  [][]int // element connectivity, len NodesPerElem each
	Mat    []int   // material id per element (len == len(Elems))
}

// NumVerts returns the number of vertices.
func (m *Mesh) NumVerts() int { return len(m.Coords) }

// NumElems returns the number of elements.
func (m *Mesh) NumElems() int { return len(m.Elems) }

// NumDOF returns the number of displacement degrees of freedom (3/vertex).
func (m *Mesh) NumDOF() int { return 3 * len(m.Coords) }

// Validate checks structural invariants and returns a descriptive error.
func (m *Mesh) Validate() error {
	npe := m.Type.NodesPerElem()
	if len(m.Mat) != len(m.Elems) {
		return fmt.Errorf("mesh: %d elements but %d material ids", len(m.Elems), len(m.Mat))
	}
	for e, conn := range m.Elems {
		if len(conn) != npe {
			return fmt.Errorf("mesh: element %d has %d nodes, want %d", e, len(conn), npe)
		}
		for _, v := range conn {
			if v < 0 || v >= len(m.Coords) {
				return fmt.Errorf("mesh: element %d references vertex %d out of %d", e, v, len(m.Coords))
			}
		}
	}
	return nil
}

// NodeGraph returns the vertex adjacency graph: two vertices are adjacent
// when they share an element. This is the graph the MIS coarsening runs on.
func (m *Mesh) NodeGraph() *graph.Graph {
	var edges [][2]int
	for _, conn := range m.Elems {
		for i := 0; i < len(conn); i++ {
			for j := i + 1; j < len(conn); j++ {
				edges = append(edges, [2]int{conn[i], conn[j]})
			}
		}
	}
	return graph.NewGraph(len(m.Coords), edges)
}

// hexFaces lists the local quad faces of a Hex8 with outward orientation.
var hexFaces = [6][4]int{
	{0, 3, 2, 1}, // zeta = -1 (bottom)
	{4, 5, 6, 7}, // zeta = +1 (top)
	{0, 1, 5, 4}, // eta = -1
	{1, 2, 6, 5}, // xi = +1
	{2, 3, 7, 6}, // eta = +1
	{3, 0, 4, 7}, // xi = -1
}

// hex20Faces lists the local faces of a Hex20: the Hex8 corner loop
// followed by the four midside nodes of the loop's edges.
var hex20Faces = [6][8]int{
	{0, 3, 2, 1, 11, 10, 9, 8},   // zeta = -1
	{4, 5, 6, 7, 12, 13, 14, 15}, // zeta = +1
	{0, 1, 5, 4, 8, 17, 12, 16},  // eta = -1
	{1, 2, 6, 5, 9, 18, 13, 17},  // xi = +1
	{2, 3, 7, 6, 10, 19, 14, 18}, // eta = +1
	{3, 0, 4, 7, 11, 16, 15, 19}, // xi = -1
}

// tetFaces lists the local triangular faces of a positively oriented Tet4
// with outward orientation.
var tetFaces = [4][3]int{
	{0, 2, 1},
	{0, 1, 3},
	{1, 2, 3},
	{0, 3, 2},
}

// Facet is one boundary facet (a quad or triangle) of the mesh.
type Facet struct {
	Verts  []int     // vertex ids, outward-oriented
	Elem   int       // owning element
	Mat    int       // material of the owning element
	Normal geom.Vec3 // unit outward normal
}

// facetKey is the sorted vertex tuple identifying a facet regardless of
// orientation.
type facetKey [4]int

// keyOf identifies a facet by its (up to four) corner vertices; midside
// nodes of quadratic facets are excluded, so matching faces of adjacent
// elements collide as intended.
func keyOf(verts []int) facetKey {
	var k facetKey
	for i := range k {
		k[i] = -1
	}
	n := len(verts)
	if n > 4 {
		n = 4 // corners lead the facet vertex lists
	}
	copy(k[:], verts[:n])
	for i := 1; i < n; i++ {
		for j := i; j > 0 && k[j-1] > k[j]; j-- {
			k[j-1], k[j] = k[j], k[j-1]
		}
	}
	return k
}

// facetNormal returns the unit outward normal of the facet vertex loop.
func (m *Mesh) facetNormal(verts []int) geom.Vec3 {
	a := m.Coords[verts[0]]
	b := m.Coords[verts[1]]
	c := m.Coords[verts[2]]
	n := b.Sub(a).Cross(c.Sub(a))
	if len(verts) >= 4 {
		// Average the two triangle normals for a (possibly warped) quad
		// (quadratic facets list their corners first).
		d := m.Coords[verts[3]]
		n = n.Add(c.Sub(a).Cross(d.Sub(a)))
	}
	return n.Normalize()
}

// elemFacets yields the facets of element e as vertex id slices (corners
// first for quadratic facets).
func (m *Mesh) elemFacets(e int) [][]int {
	conn := m.Elems[e]
	switch m.Type {
	case Hex8:
		out := make([][]int, 6)
		for f, loc := range hexFaces {
			out[f] = []int{conn[loc[0]], conn[loc[1]], conn[loc[2]], conn[loc[3]]}
		}
		return out
	case Hex20:
		out := make([][]int, 6)
		for f, loc := range hex20Faces {
			fv := make([]int, 8)
			for i, l := range loc {
				fv[i] = conn[l]
			}
			out[f] = fv
		}
		return out
	default:
		out := make([][]int, 4)
		for f, loc := range tetFaces {
			out[f] = []int{conn[loc[0]], conn[loc[1]], conn[loc[2]]}
		}
		return out
	}
}

// BoundaryFacets extracts the facets on the domain boundary plus the facets
// on interfaces between different materials (both sides are kept for
// interfaces, one per adjoining element).
func (m *Mesh) BoundaryFacets() []Facet {
	type side struct {
		elem  int
		verts []int
	}
	sides := make(map[facetKey][]side)
	var order []facetKey // first-seen order, for deterministic output
	for e := range m.Elems {
		for _, fv := range m.elemFacets(e) {
			k := keyOf(fv)
			if _, ok := sides[k]; !ok {
				order = append(order, k)
			}
			sides[k] = append(sides[k], side{elem: e, verts: fv})
		}
	}
	var out []Facet
	for _, k := range order {
		ss := sides[k]
		keep := false
		switch len(ss) {
		case 1:
			keep = true // exterior boundary
		case 2:
			keep = m.Mat[ss[0].elem] != m.Mat[ss[1].elem] // material interface
		default:
			// Non-manifold: treat as boundary of each side.
			keep = true
		}
		if !keep {
			continue
		}
		for _, s := range ss {
			out = append(out, Facet{
				Verts:  s.verts,
				Elem:   s.elem,
				Mat:    m.Mat[s.elem],
				Normal: m.facetNormal(s.verts),
			})
		}
	}
	return out
}

// FacetAdjacency returns, for each facet, the indices of facets sharing an
// edge (two vertices) with it and belonging to the same material side. This
// is the f.adjac list of the face identification algorithm (Figure 3).
func FacetAdjacency(facets []Facet) [][]int {
	type edge [2]int
	edgeMap := make(map[edge][]int)
	edgesOf := func(f Facet) []edge {
		// The geometric edge loop runs over the facet corners; quadratic
		// facets list midside nodes after the corners.
		n := len(f.Verts)
		if n > 4 {
			n = 4
		}
		out := make([]edge, n)
		for i := 0; i < n; i++ {
			a, b := f.Verts[i], f.Verts[(i+1)%n]
			if a > b {
				a, b = b, a
			}
			out[i] = edge{a, b}
		}
		return out
	}
	for i, f := range facets {
		for _, e := range edgesOf(f) {
			edgeMap[e] = append(edgeMap[e], i)
		}
	}
	adj := make([][]int, len(facets))
	seen := make([]map[int]bool, len(facets))
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	for _, list := range edgeMap {
		for _, i := range list {
			for _, j := range list {
				if i == j || facets[i].Mat != facets[j].Mat || seen[i][j] {
					continue
				}
				seen[i][j] = true
				adj[i] = append(adj[i], j)
			}
		}
	}
	// Sort for determinism: edgeMap iteration order varies between runs,
	// and the face identification BFS is sensitive to adjacency order.
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// ExteriorVerts returns the set of vertices lying on any boundary facet
// (section 4.3's "exterior vertices"; continuum elements make this trivial).
func ExteriorVerts(n int, facets []Facet) []bool {
	ext := make([]bool, n)
	for _, f := range facets {
		for _, v := range f.Verts {
			ext[v] = true
		}
	}
	return ext
}

// Quality returns the minimum and mean scaled Jacobian (Hex8) or the
// minimum and mean volume ratio (Tet4) across elements — a cheap mesh
// sanity metric used by tests and the hierarchy report.
func (m *Mesh) Quality() (min, mean float64) {
	min = 1e300
	if m.NumElems() == 0 {
		return 0, 0
	}
	for _, conn := range m.Elems {
		var q float64
		if m.Type == Tet4 {
			q = geom.TetVolume(m.Coords[conn[0]], m.Coords[conn[1]], m.Coords[conn[2]], m.Coords[conn[3]])
		} else {
			// Volume via the 8-corner tetrakis decomposition proxy: use the
			// scalar triple product at node 0.
			q = geom.TetVolume(m.Coords[conn[0]], m.Coords[conn[1]], m.Coords[conn[3]], m.Coords[conn[4]])
		}
		mean += q
		if q < min {
			min = q
		}
	}
	mean /= float64(m.NumElems())
	return min, mean
}
