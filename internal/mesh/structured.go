package mesh

import "prometheus/internal/geom"

// StructuredHex builds an nx×ny×nz element hexahedral mesh of the box
// [0,lx]×[0,ly]×[0,lz]. matFn assigns a material id given the element
// centroid; pass nil for a single material 0. Vertex (i,j,k) has id
// i*(ny+1)*(nz+1) + j*(nz+1) + k.
func StructuredHex(nx, ny, nz int, lx, ly, lz float64, matFn func(c geom.Vec3) int) *Mesh {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("mesh: StructuredHex needs at least one element per direction")
	}
	nvy := ny + 1
	nvz := nz + 1
	vid := func(i, j, k int) int { return (i*nvy+j)*nvz + k }
	coords := make([]geom.Vec3, (nx+1)*nvy*nvz)
	for i := 0; i <= nx; i++ {
		for j := 0; j <= ny; j++ {
			for k := 0; k <= nz; k++ {
				coords[vid(i, j, k)] = geom.Vec3{
					X: lx * float64(i) / float64(nx),
					Y: ly * float64(j) / float64(ny),
					Z: lz * float64(k) / float64(nz),
				}
			}
		}
	}
	var elems [][]int
	var mats []int
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				// Hex8 node order: bottom quad CCW (viewed from +z), then top.
				conn := []int{
					vid(i, j, k), vid(i+1, j, k), vid(i+1, j+1, k), vid(i, j+1, k),
					vid(i, j, k+1), vid(i+1, j, k+1), vid(i+1, j+1, k+1), vid(i, j+1, k+1),
				}
				elems = append(elems, conn)
				mat := 0
				if matFn != nil {
					c := geom.Vec3{}
					for _, v := range conn {
						c = c.Add(coords[v])
					}
					mat = matFn(c.Scale(1.0 / 8))
				}
				mats = append(mats, mat)
			}
		}
	}
	return &Mesh{Type: Hex8, Coords: coords, Elems: elems, Mat: mats}
}

// VertsWhere returns the ids of vertices satisfying pred.
func (m *Mesh) VertsWhere(pred func(p geom.Vec3) bool) []int {
	var out []int
	for v, p := range m.Coords {
		if pred(p) {
			out = append(out, v)
		}
	}
	return out
}

// hexEdges lists the 12 edges of a hexahedron as corner pairs, in the
// Hex20 midside node order (nodes 8..19).
var hexEdges = [12][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 0}, // bottom: nodes 8-11
	{4, 5}, {5, 6}, {6, 7}, {7, 4}, // top: nodes 12-15
	{0, 4}, {1, 5}, {2, 6}, {3, 7}, // vertical: nodes 16-19
}

// StructuredHex20 builds an nx×ny×nz element 20-node serendipity
// hexahedral mesh of the box [0,lx]×[0,ly]×[0,lz]. Midside nodes are
// shared between adjacent elements. matFn assigns material ids by element
// centroid (nil for all zero).
func StructuredHex20(nx, ny, nz int, lx, ly, lz float64, matFn func(c geom.Vec3) int) *Mesh {
	base := StructuredHex(nx, ny, nz, lx, ly, lz, matFn)
	m := &Mesh{Type: Hex20, Coords: append([]geom.Vec3(nil), base.Coords...), Mat: base.Mat}
	mid := make(map[[2]int]int) // sorted corner pair -> midside node id
	midOf := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if id, ok := mid[key]; ok {
			return id
		}
		id := len(m.Coords)
		m.Coords = append(m.Coords, m.Coords[a].Add(m.Coords[b]).Scale(0.5))
		mid[key] = id
		return id
	}
	for _, conn := range base.Elems {
		full := make([]int, 20)
		copy(full, conn)
		for e, pair := range hexEdges {
			full[8+e] = midOf(conn[pair[0]], conn[pair[1]])
		}
		m.Elems = append(m.Elems, full)
	}
	return m
}

// hexToTets is the 6-tetrahedra decomposition of a hexahedron around the
// 0-6 diagonal; every tetrahedron is positively oriented for a convex hex
// in the standard node order.
var hexToTets = [6][4]int{
	{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
	{0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6},
}

// HexToTets converts a Hex8 mesh into a Tet4 mesh by splitting every
// hexahedron into six tetrahedra around its 0-6 diagonal (materials are
// inherited). It provides genuinely simplicial fine grids for the solver
// — the paper's method takes any unstructured mesh as input.
func HexToTets(m *Mesh) *Mesh {
	if m.Type != Hex8 {
		panic("mesh: HexToTets wants a Hex8 mesh")
	}
	out := &Mesh{Type: Tet4, Coords: append([]geom.Vec3(nil), m.Coords...)}
	for e, conn := range m.Elems {
		for _, t := range hexToTets {
			tet := []int{conn[t[0]], conn[t[1]], conn[t[2]], conn[t[3]]}
			// Enforce positive orientation (warped hexes can flip a tet).
			if geom.TetVolume(out.Coords[tet[0]], out.Coords[tet[1]], out.Coords[tet[2]], out.Coords[tet[3]]) < 0 {
				tet[0], tet[1] = tet[1], tet[0]
			}
			out.Elems = append(out.Elems, tet)
			out.Mat = append(out.Mat, m.Mat[e])
		}
	}
	return out
}
