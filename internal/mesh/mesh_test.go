package mesh

import (
	"math"
	"testing"

	"prometheus/internal/geom"
)

func TestStructuredHexCounts(t *testing.T) {
	m := StructuredHex(3, 2, 4, 3, 2, 4, nil)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumVerts() != 4*3*5 {
		t.Fatalf("verts = %d", m.NumVerts())
	}
	if m.NumElems() != 3*2*4 {
		t.Fatalf("elems = %d", m.NumElems())
	}
	if m.NumDOF() != 3*m.NumVerts() {
		t.Fatal("NumDOF")
	}
}

func TestStructuredHexGeometry(t *testing.T) {
	m := StructuredHex(2, 2, 2, 2, 2, 2, nil)
	// All elements should be unit cubes: positive volume proxy.
	min, mean := m.Quality()
	if min <= 0 {
		t.Fatalf("min quality %v", min)
	}
	if math.Abs(mean-min) > 1e-12 {
		t.Fatalf("uniform mesh should have uniform quality: %v vs %v", min, mean)
	}
	box := geom.NewAABB(m.Coords)
	if box.Min != (geom.Vec3{}) || box.Max != (geom.Vec3{X: 2, Y: 2, Z: 2}) {
		t.Fatalf("box = %+v", box)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	m := StructuredHex(1, 1, 1, 1, 1, 1, nil)
	m.Elems[0][0] = 99
	if m.Validate() == nil {
		t.Fatal("expected out-of-range error")
	}
	m = StructuredHex(1, 1, 1, 1, 1, 1, nil)
	m.Mat = nil
	if m.Validate() == nil {
		t.Fatal("expected material count error")
	}
	m = StructuredHex(1, 1, 1, 1, 1, 1, nil)
	m.Elems[0] = m.Elems[0][:5]
	if m.Validate() == nil {
		t.Fatal("expected connectivity length error")
	}
}

func TestNodeGraph(t *testing.T) {
	m := StructuredHex(2, 1, 1, 2, 1, 1, nil)
	g := m.NodeGraph()
	if g.N != m.NumVerts() {
		t.Fatal("graph size")
	}
	// Corner vertex 0 shares an element with exactly 7 others.
	if g.Degree(0) != 7 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	// A vertex on the shared face of both elements touches all 11 others.
	shared := m.VertsWhere(func(p geom.Vec3) bool { return p.X == 1 })
	if len(shared) != 4 {
		t.Fatalf("shared verts = %d", len(shared))
	}
	if g.Degree(shared[0]) != 11 {
		t.Fatalf("shared face degree = %d", g.Degree(shared[0]))
	}
}

func TestBoundaryFacetsCube(t *testing.T) {
	m := StructuredHex(2, 2, 2, 1, 1, 1, nil)
	facets := m.BoundaryFacets()
	// 6 faces × 4 facets each.
	if len(facets) != 24 {
		t.Fatalf("boundary facets = %d, want 24", len(facets))
	}
	// All normals must be ± axis unit vectors and point outward.
	for _, f := range facets {
		n := f.Normal
		ax := math.Abs(n.X) + math.Abs(n.Y) + math.Abs(n.Z)
		if math.Abs(ax-1) > 1e-12 {
			t.Fatalf("normal %v not axis-aligned", n)
		}
		// Outward: centroid + normal must leave the unit cube.
		c := geom.Vec3{}
		for _, v := range f.Verts {
			c = c.Add(m.Coords[v])
		}
		c = c.Scale(1.0 / float64(len(f.Verts)))
		out := c.Add(n.Scale(0.25))
		inside := out.X > 0 && out.X < 1 && out.Y > 0 && out.Y < 1 && out.Z > 0 && out.Z < 1
		if inside {
			t.Fatalf("normal %v at centroid %v points inward", n, c)
		}
	}
}

func TestMaterialInterfaceFacets(t *testing.T) {
	// Two materials split at x=1 in a 2x1x1 mesh: the interface contributes
	// one facet per side.
	m := StructuredHex(2, 1, 1, 2, 1, 1, func(c geom.Vec3) int {
		if c.X < 1 {
			return 0
		}
		return 1
	})
	facets := m.BoundaryFacets()
	// Exterior: 2 ends + 2*2 sides * 2 + ... total exterior quads = 2*(1)+2*(2)+2*(2) = 10.
	// Interface adds 2 (one per side).
	if len(facets) != 12 {
		t.Fatalf("facets = %d, want 12", len(facets))
	}
	nInterface := 0
	for _, f := range facets {
		c := geom.Vec3{}
		for _, v := range f.Verts {
			c = c.Add(m.Coords[v])
		}
		c = c.Scale(0.25)
		if math.Abs(c.X-1) < 1e-12 {
			nInterface++
		}
	}
	if nInterface != 2 {
		t.Fatalf("interface facets = %d, want 2", nInterface)
	}
}

func TestFacetAdjacency(t *testing.T) {
	m := StructuredHex(2, 2, 1, 1, 1, 1, nil)
	facets := m.BoundaryFacets()
	adj := FacetAdjacency(facets)
	if len(adj) != len(facets) {
		t.Fatal("adjacency length")
	}
	for i, f := range facets {
		// Every boundary facet of a closed surface has at least one
		// edge-neighbour; quads on this mesh have 4 edges each shared.
		if len(adj[i]) < 2 {
			t.Fatalf("facet %d (%v) has %d neighbours", i, f.Verts, len(adj[i]))
		}
		for _, j := range adj[i] {
			if facets[j].Mat != f.Mat {
				t.Fatal("adjacency crosses material sides")
			}
		}
	}
}

func TestExteriorVerts(t *testing.T) {
	m := StructuredHex(3, 3, 3, 1, 1, 1, nil)
	facets := m.BoundaryFacets()
	ext := ExteriorVerts(m.NumVerts(), facets)
	nExt := 0
	for _, e := range ext {
		if e {
			nExt++
		}
	}
	// 4^3 lattice: interior is 2^3 = 8, exterior 64-8 = 56.
	if nExt != 56 {
		t.Fatalf("exterior verts = %d, want 56", nExt)
	}
	// The interior vertex must not be exterior.
	interior := m.VertsWhere(func(p geom.Vec3) bool {
		return p.X > 0.2 && p.X < 0.8 && p.Y > 0.2 && p.Y < 0.8 && p.Z > 0.2 && p.Z < 0.8
	})
	for _, v := range interior {
		if ext[v] {
			t.Fatalf("interior vertex %d marked exterior", v)
		}
	}
}

func TestTet4Facets(t *testing.T) {
	// A single positively oriented tetrahedron.
	m := &Mesh{
		Type: Tet4,
		Coords: []geom.Vec3{
			{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}, {X: 0, Y: 0, Z: 1},
		},
		Elems: [][]int{{0, 1, 2, 3}},
		Mat:   []int{0},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := geom.TetVolume(m.Coords[0], m.Coords[1], m.Coords[2], m.Coords[3]); v <= 0 {
		t.Fatalf("setup: negative volume %v", v)
	}
	facets := m.BoundaryFacets()
	if len(facets) != 4 {
		t.Fatalf("facets = %d", len(facets))
	}
	// Outward normals: centroid of tet is inside; facet centroid + normal
	// must increase distance from the tet centroid.
	tc := geom.Vec3{X: 0.25, Y: 0.25, Z: 0.25}
	for _, f := range facets {
		c := geom.Vec3{}
		for _, v := range f.Verts {
			c = c.Add(m.Coords[v])
		}
		c = c.Scale(1.0 / 3)
		if c.Add(f.Normal.Scale(0.1)).Dist(tc) <= c.Dist(tc) {
			t.Fatalf("facet %v normal %v not outward", f.Verts, f.Normal)
		}
	}
}

func TestQualityTet(t *testing.T) {
	m := &Mesh{
		Type: Tet4,
		Coords: []geom.Vec3{
			{}, {X: 1}, {Y: 1}, {Z: 1},
		},
		Elems: [][]int{{0, 1, 2, 3}},
		Mat:   []int{0},
	}
	min, mean := m.Quality()
	if math.Abs(min-1.0/6) > 1e-12 || math.Abs(mean-1.0/6) > 1e-12 {
		t.Fatalf("quality = %v %v", min, mean)
	}
}

func TestHexToTets(t *testing.T) {
	m := StructuredHex(2, 2, 2, 1, 1, 1, func(c geom.Vec3) int {
		if c.X < 0.5 {
			return 0
		}
		return 1
	})
	tm := HexToTets(m)
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.NumElems() != 6*m.NumElems() {
		t.Fatalf("tets = %d", tm.NumElems())
	}
	// Volume is preserved exactly.
	vol := 0.0
	for _, conn := range tm.Elems {
		v := geom.TetVolume(tm.Coords[conn[0]], tm.Coords[conn[1]], tm.Coords[conn[2]], tm.Coords[conn[3]])
		if v <= 0 {
			t.Fatalf("non-positive tet volume %v", v)
		}
		vol += v
	}
	if math.Abs(vol-1) > 1e-12 {
		t.Fatalf("total volume = %v", vol)
	}
	// Materials inherited.
	for e, conn := range m.Elems {
		_ = conn
		for i := 0; i < 6; i++ {
			if tm.Mat[6*e+i] != m.Mat[e] {
				t.Fatal("material not inherited")
			}
		}
	}
	// Boundary facets exist and are triangles.
	facets := tm.BoundaryFacets()
	if len(facets) == 0 {
		t.Fatal("no boundary")
	}
	for _, f := range facets {
		if len(f.Verts) != 3 {
			t.Fatalf("facet has %d verts", len(f.Verts))
		}
	}
}
