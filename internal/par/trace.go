//go:build promdebug

package par

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the runtime counterpart of the static SPMD protocol
// verifier in internal/lint: where the collective-uniformity rule proves
// at analysis time that every rank executes the same collective sequence,
// the tracer records the sequence each rank actually executed, and the
// deadlock watchdog turns a silent hang — the symptom of a protocol bug
// that slipped past the static rules — into a diagnostic dump naming each
// rank's last completed protocol event and the operation it is blocked on.
//
// The per-event hooks are allocation-free (fixed rings, per-rank mutexes,
// one atomic progress counter); all formatting happens at dump time. This
// matters because the steady-state allocation tests run under this build
// tag too.

// traceRing is the per-rank collective-history depth kept for dumps.
const traceRing = 64

// defaultStall is the watchdog stall threshold when neither
// SetWatchdogStall nor PROMETHEUS_WATCHDOG_STALL overrides it. It is
// generous because ranks legitimately go quiet during long local compute
// phases between collectives.
const defaultStall = 30 * time.Second

var (
	watchdogMu    sync.Mutex
	watchdogStall time.Duration // 0 = unset; see stallSetting
	watchdogHook  func(dump string)
)

// SetWatchdogStall overrides the deadlock watchdog's stall threshold for
// communicators created afterwards. It takes precedence over the
// PROMETHEUS_WATCHDOG_STALL environment variable; d <= 0 restores the
// default. Tests use a short stall so protocol bugs dump within
// milliseconds instead of hanging for the full default.
func SetWatchdogStall(d time.Duration) {
	watchdogMu.Lock()
	if d <= 0 {
		watchdogStall = 0
	} else {
		watchdogStall = d
	}
	watchdogMu.Unlock()
}

// SetWatchdogHook installs fn to receive the watchdog's diagnostic dump
// instead of the default behaviour (write to stderr, optionally to the
// PROMETHEUS_WATCHDOG_DUMP file, then panic). A nil fn restores the
// default. The hook runs on the watchdog goroutine while the deadlocked
// ranks are still blocked.
func SetWatchdogHook(fn func(dump string)) {
	watchdogMu.Lock()
	watchdogHook = fn
	watchdogMu.Unlock()
}

// stallSetting resolves the effective stall threshold: SetWatchdogStall
// beats PROMETHEUS_WATCHDOG_STALL beats the default.
func stallSetting() time.Duration {
	watchdogMu.Lock()
	d := watchdogStall
	watchdogMu.Unlock()
	if d > 0 {
		return d
	}
	if s := os.Getenv("PROMETHEUS_WATCHDOG_STALL"); s != "" {
		if v, err := time.ParseDuration(s); err == nil && v > 0 {
			return v
		}
	}
	return defaultStall
}

// traceOp identifies one protocol operation: its kind and, for
// point-to-point operations, the peer rank and message tag (-1 for
// collectives).
type traceOp struct {
	kind eventKind
	peer int
	tag  int
}

func (op traceOp) describe() string {
	if op.kind == evNone {
		return "none"
	}
	if op.peer < 0 {
		return op.kind.String()
	}
	return fmt.Sprintf("%s(peer=%d, tag=%d)", op.kind, op.peer, op.tag)
}

// rankTrace is the per-rank protocol state. Each rank mutates only its own
// entry, so the mutex is uncontended except when the watchdog snapshots.
type rankTrace struct {
	mu        sync.Mutex
	last      traceOp // last completed protocol event
	nEvents   uint64  // completed protocol events
	blocked   traceOp // operation the rank entered but has not completed
	isBlocked bool
	ring      [traceRing]eventKind // circular collective history
	nColl     uint64               // total collectives completed
}

// tracer records per-rank protocol sequences and runs the deadlock
// watchdog while a Comm.Run is in flight.
type tracer struct {
	ranks    []rankTrace
	progress atomic.Uint64
	stall    time.Duration
	stop     chan struct{}
	done     chan struct{}
}

func (t *tracer) init(p int) {
	t.ranks = make([]rankTrace, p)
	t.stall = stallSetting()
}

// event records completion of a protocol operation on rank.
func (t *tracer) event(rank int, k eventKind, peer, tag int) {
	rt := &t.ranks[rank]
	rt.mu.Lock()
	rt.last = traceOp{kind: k, peer: peer, tag: tag}
	rt.nEvents++
	rt.isBlocked = false
	if k.isCollective() {
		rt.ring[rt.nColl%traceRing] = k
		rt.nColl++
	}
	rt.mu.Unlock()
	t.progress.Add(1)
}

// block records that rank entered a potentially blocking operation; the
// matching event call clears it.
func (t *tracer) block(rank int, k eventKind, peer, tag int) {
	rt := &t.ranks[rank]
	rt.mu.Lock()
	rt.blocked = traceOp{kind: k, peer: peer, tag: tag}
	rt.isBlocked = true
	rt.mu.Unlock()
}

func (t *tracer) runStart(c *Comm) {
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.watch()
}

func (t *tracer) runEnd() {
	close(t.stop)
	<-t.done
}

// watch polls the progress counter and fires once no protocol event has
// completed for the stall threshold while at least one rank sits inside a
// blocking operation.
func (t *tracer) watch() {
	defer close(t.done)
	tick := t.stall / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := t.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
		}
		if p := t.progress.Load(); p != last {
			last = p
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) < t.stall || !t.anyBlocked() {
			continue
		}
		t.fire()
		return
	}
}

func (t *tracer) anyBlocked() bool {
	for i := range t.ranks {
		rt := &t.ranks[i]
		rt.mu.Lock()
		b := rt.isBlocked
		rt.mu.Unlock()
		if b {
			return true
		}
	}
	return false
}

// fire emits the diagnostic dump. With a hook installed the hook consumes
// it; otherwise the dump goes to stderr (and to the file named by
// PROMETHEUS_WATCHDOG_DUMP, for CI artifact collection) and the watchdog
// panics so the hang becomes a crash with a cause attached.
func (t *tracer) fire() {
	dump := t.dump()
	if path := os.Getenv("PROMETHEUS_WATCHDOG_DUMP"); path != "" {
		if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "par: watchdog could not write dump file: %v\n", err)
		}
	}
	watchdogMu.Lock()
	hook := watchdogHook
	watchdogMu.Unlock()
	if hook != nil {
		hook(dump)
		return
	}
	fmt.Fprint(os.Stderr, dump)
	panic("par: deadlock watchdog: no protocol progress for " + t.stall.String())
}

// dump renders every rank's protocol state: the blocked operation (if
// any), the last completed event, and the tail of its collective
// sequence. Ranks whose collective tails differ point straight at the
// uniformity violation.
func (t *tracer) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "par: deadlock watchdog fired after %v without protocol progress\n", t.stall)
	for i := range t.ranks {
		rt := &t.ranks[i]
		rt.mu.Lock()
		state := "running"
		if rt.isBlocked {
			state = "blocked on " + rt.blocked.describe()
		}
		fmt.Fprintf(&b, "  rank %d: %s; last event %s; %d events, %d collectives\n",
			i, state, rt.last.describe(), rt.nEvents, rt.nColl)
		n := rt.nColl
		depth := uint64(traceRing)
		if n < depth {
			depth = n
		}
		if depth > 0 {
			b.WriteString("    collective tail:")
			for j := n - depth; j < n; j++ {
				b.WriteByte(' ')
				b.WriteString(rt.ring[j%traceRing].String())
			}
			b.WriteByte('\n')
		}
		rt.mu.Unlock()
	}
	return b.String()
}

// CollectiveTrace returns the recorded collective-event names of one rank,
// oldest first, up to the trace ring depth. It lets tests assert the
// uniform-sequence oracle: after a correct run every rank reports the same
// sequence.
func (c *Comm) CollectiveTrace(rank int) []string {
	rt := &c.trace.ranks[rank]
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := rt.nColl
	depth := uint64(traceRing)
	if n < depth {
		depth = n
	}
	out := make([]string, 0, depth)
	for j := n - depth; j < n; j++ {
		out = append(out, rt.ring[j%traceRing].String())
	}
	return out
}
