package par

import (
	"prometheus/internal/check"
	"prometheus/internal/graph"
)

// ParallelMIS runs the partition-based parallel maximal independent set
// algorithm of section 4.2 (and [Adams 1998]). Vertices are assigned to
// ranks by owner; each rank sweeps its local vertices in the given global
// traversal order, selecting a vertex v only when every neighbour v1 is
// deleted, or v outranks v1, or they have equal rank and v's processor
// number does not exceed v1's (the paper's tie-break), with the immortal
// (corner) rule layered on top: immortal vertices are always selectable and
// can never be deleted, and an undone immortal neighbour blocks everyone
// else. Ghost vertex states are exchanged between rounds; the loop ends
// when a global reduction finds no undone vertices.
//
// The returned slice is the sorted selected set; it satisfies the MIS
// invariants (independence among mortals, maximality) for any number of
// ranks and any owner assignment, and matches the heuristic structure of
// the serial algorithm.
func ParallelMIS(comm *Comm, g *graph.Graph, owner []int, order []int, rank []int, immortal []bool) []int {
	if len(owner) != g.N {
		panic("par: owner must assign every vertex")
	}
	if len(order) != g.N {
		panic("par: order must be a permutation of the vertices")
	}
	p := comm.Size()

	rk := func(v int) int {
		if rank == nil {
			return 0
		}
		return rank[v]
	}
	imm := func(v int) bool { return immortal != nil && immortal[v] }

	// Per rank: local vertices in traversal order, and neighbouring ranks.
	localOrder := make([][]int, p)
	for _, v := range order {
		localOrder[owner[v]] = append(localOrder[owner[v]], v)
	}
	neighbours := make([]map[int]bool, p)
	for i := range neighbours {
		neighbours[i] = make(map[int]bool)
	}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if owner[v] != owner[w] {
				neighbours[owner[v]][owner[w]] = true
			}
		}
	}

	selected := make([]bool, g.N)
	merge := make(chan struct{}, 1)
	merge <- struct{}{}

	type update struct {
		v int
		s int8
	}

	// Message tags of the two exchange sub-phases.
	const (
		pmisDelTag   = 1
		pmisStateTag = 2
	)

	// Owned boundary vertices per rank: those with a cross-rank edge. Their
	// authoritative state is re-broadcast every round so that third-party
	// deletions reach every rank that ghosts them.
	boundary := make([][]int, p)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if owner[w] != owner[v] {
				boundary[owner[v]] = append(boundary[owner[v]], v)
				break
			}
		}
	}

	comm.Run(func(r *Rank) {
		me := r.ID()
		state := make([]int8, g.N) // local view: Undone/Selected/Deleted
		mine := localOrder[me]

		// Reusable message buffers, hoisted out of the round loop and
		// passed by pointer so the steady state neither allocates nor
		// boxes. Resetting them at the top of a round is safe: the
		// all-reduce that ended the previous round is a barrier, so every
		// receiver has already consumed them.
		ghostDel := make(map[int]*[]int, len(neighbours[me]))
		for nb := range neighbours[me] {
			var buf []int
			ghostDel[nb] = &buf
		}
		out := make([]update, 0, len(boundary[me]))

		// exchange runs the two sub-phases: (1) deletions of ghost vertices
		// are reported to their owners; (2) owners broadcast the states of
		// their boundary vertices to every neighbouring rank. State views
		// only advance (states are facts: Undone -> Selected/Deleted).
		exchange := func() {
			for nb := range neighbours[me] {
				r.Send(nb, pmisDelTag, ghostDel[nb], 8*len(*ghostDel[nb])+8)
			}
			for nb := range neighbours[me] {
				for _, v := range *RecvAs[*[]int](r, nb, pmisDelTag) {
					if state[v] == graph.Undone {
						state[v] = graph.Deleted
					}
				}
			}
			out = out[:0]
			for _, v := range boundary[me] {
				out = append(out, update{v, state[v]})
			}
			for nb := range neighbours[me] {
				r.Send(nb, pmisStateTag, &out, 9*len(out)+8)
			}
			for nb := range neighbours[me] {
				for _, u := range *RecvAs[*[]update](r, nb, pmisStateTag) {
					if state[u.v] == graph.Undone {
						state[u.v] = u.s
					}
				}
			}
		}

		// canSelect implements the paper's test: all neighbours deleted, or
		// outranked, or rank tie broken by processor number (local ties are
		// resolved by the sweep order itself).
		canSelect := func(v int) bool {
			if imm(v) {
				return true
			}
			for _, w := range g.Neighbors(v) {
				if state[w] != graph.Undone {
					continue
				}
				if imm(w) {
					return false
				}
				switch {
				case rk(v) > rk(w):
					// outranks w: fine
				case rk(v) == rk(w) && me <= owner[w]:
					// tie broken in our favour (same rank: local order)
				default:
					return false
				}
			}
			return true
		}

		for {
			for nb := range ghostDel {
				*ghostDel[nb] = (*ghostDel[nb])[:0]
			}
			changed := 0
			for _, v := range mine {
				if state[v] != graph.Undone {
					continue
				}
				// A selected neighbour covers v.
				if !imm(v) {
					covered := false
					for _, w := range g.Neighbors(v) {
						if state[w] == graph.Selected {
							covered = true
							break
						}
					}
					if covered {
						state[v] = graph.Deleted
						changed++
						continue
					}
				}
				if !canSelect(v) {
					continue
				}
				state[v] = graph.Selected
				changed++
				for _, w := range g.Neighbors(v) {
					if state[w] == graph.Undone && !imm(w) {
						state[w] = graph.Deleted
						changed++
						if owner[w] != me {
							lst := ghostDel[owner[w]]
							*lst = append(*lst, w)
						}
					}
				}
			}
			exchange()
			undone := 0
			for _, v := range mine {
				if state[v] == graph.Undone {
					undone++
				}
			}
			if r.AllReduceIntSum(undone) == 0 {
				break
			}
			// The algorithm provably makes global progress each round (the
			// globally best-ranked undone vertex is always selectable); a
			// stalled round would be a bug, not a livelock to spin on.
			if r.AllReduceIntSum(changed) == 0 {
				panic("par: ParallelMIS stalled")
			}
		}

		<-merge
		for _, v := range mine {
			if state[v] == graph.Selected {
				selected[v] = true
			}
		}
		merge <- struct{}{}
	})

	var mis []int
	for v, s := range selected {
		if s {
			mis = append(mis, v)
		}
	}
	if check.Enabled {
		check.SortedUnique(mis, g.N, "par.ParallelMIS mis")
		check.IndependentSet(mis, g.N, g.Neighbors, immortal, "par.ParallelMIS")
	}
	return mis
}
