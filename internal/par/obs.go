package par

import "prometheus/internal/obs"

// Observability events. "par.rank" accumulates each rank's measured
// flop/message/byte counters (the slices Profile.PerRank hands to
// internal/perf's efficiency decomposition); "par.halo.exchange" times
// the ghost exchanges and counts their traffic separately. The names
// are distinct from the eventKind tracer constants in comm.go, which
// belong to the promdebug protocol watchdog, not to obs.
var (
	obsRankEv  = obs.Register("par.rank")
	obsHaloEv  = obs.Register("par.halo.exchange")
	obsMsgSize = obs.NewHistogram("par.msg_bytes")
)
