package par

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"prometheus/internal/graph"
	"prometheus/internal/sparse"
)

func TestBarrierAndReduce(t *testing.T) {
	c := NewComm(8)
	c.Run(func(r *Rank) {
		for iter := 0; iter < 50; iter++ {
			s := r.AllReduceSum(float64(r.ID()))
			if s != 28 {
				t.Errorf("sum = %v", s)
			}
			m := r.AllReduceMax(float64(r.ID()))
			if m != 7 {
				t.Errorf("max = %v", m)
			}
			n := r.AllReduceIntSum(1)
			if n != 8 {
				t.Errorf("count = %v", n)
			}
			r.Barrier()
		}
	})
}

func TestSendRecvTags(t *testing.T) {
	c := NewComm(2)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			// Send tag 5 then tag 3; receiver asks for 3 first.
			r.Send(1, 5, "five", 4)
			r.Send(1, 3, "three", 5)
		} else {
			if got := r.Recv(0, 3); got != "three" {
				t.Errorf("tag 3 = %v", got)
			}
			if got := r.Recv(0, 5); got != "five" {
				t.Errorf("tag 5 = %v", got)
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	c := NewComm(1)
	c.Run(func(r *Rank) {
		r.Send(0, 7, 42, 8)
		if got := r.Recv(0, 7); got != 42 {
			t.Errorf("self recv = %v", got)
		}
	})
}

func TestAllGather(t *testing.T) {
	c := NewComm(5)
	c.Run(func(r *Rank) {
		vals := AllGatherAs(r, r.ID()*10)
		for i, v := range vals {
			if v != i*10 {
				t.Errorf("gather[%d] = %v", i, v)
			}
		}
	})
}

func TestAllGatherDeprecatedBoxing(t *testing.T) {
	// The deprecated interface{} wrapper must stay behaviourally identical
	// to AllGatherAs while it remains in the API.
	c := NewComm(3)
	c.Run(func(r *Rank) {
		vals := r.AllGather(r.ID() + 1)
		for i, v := range vals {
			if v != i+1 {
				t.Errorf("gather[%d] = %v", i, v)
			}
		}
	})
}

func TestRunCounted(t *testing.T) {
	c := NewComm(3)
	counters := c.RunCounted(func(r *Rank) {
		r.CountFlops(int64(100 * (r.ID() + 1)))
		if r.ID() == 0 {
			r.Send(1, 1, "x", 16)
		}
		if r.ID() == 1 {
			r.Recv(0, 1)
		}
	})
	if counters.Flops[2] != 300 {
		t.Errorf("flops = %v", counters.Flops)
	}
	if counters.BytesSent[0] != 16 || counters.MsgsSent[0] != 1 {
		t.Errorf("traffic = %v %v", counters.BytesSent, counters.MsgsSent)
	}
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewComm(2).Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	})
}

// gridGraph3D builds an n³ 6-connected lattice.
func gridGraph3D(n int) *graph.Graph {
	id := func(i, j, k int) int { return (i*n+j)*n + k }
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if i+1 < n {
					edges = append(edges, [2]int{id(i, j, k), id(i+1, j, k)})
				}
				if j+1 < n {
					edges = append(edges, [2]int{id(i, j, k), id(i, j+1, k)})
				}
				if k+1 < n {
					edges = append(edges, [2]int{id(i, j, k), id(i, j, k+1)})
				}
			}
		}
	}
	return graph.NewGraph(n*n*n, edges)
}

func TestParallelMISInvariants(t *testing.T) {
	g := gridGraph3D(6)
	order := graph.RandomOrder(g.N, 11)
	rank := make([]int, g.N)
	for v := range rank {
		rank[v] = v % 3
	}
	for _, p := range []int{1, 2, 3, 4, 8} {
		owner := make([]int, g.N)
		for v := range owner {
			owner[v] = v % p
		}
		mis := ParallelMIS(NewComm(p), g, owner, order, rank, nil)
		if !graph.IsMaximal(g, mis) {
			t.Fatalf("p=%d: parallel MIS not maximal independent", p)
		}
	}
}

func TestParallelMISDeterministic(t *testing.T) {
	g := gridGraph3D(5)
	order := graph.RandomOrder(g.N, 3)
	owner := make([]int, g.N)
	for v := range owner {
		owner[v] = v % 4
	}
	a := ParallelMIS(NewComm(4), g, owner, order, nil, nil)
	b := ParallelMIS(NewComm(4), g, owner, order, nil, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel MIS not deterministic for fixed inputs")
	}
}

func TestParallelMISSingleRankMatchesInvariants(t *testing.T) {
	// With one rank the algorithm degenerates to the serial greedy sweep.
	g := gridGraph3D(4)
	order := graph.NaturalOrder(g.N)
	serial := graph.MIS(g, order, nil, nil)
	par1 := ParallelMIS(NewComm(1), g, make([]int, g.N), order, nil, nil)
	if !reflect.DeepEqual(serial, sortedCopy(par1)) {
		t.Fatalf("1-rank parallel MIS (%d) != serial MIS (%d)", len(par1), len(serial))
	}
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j-1] > c[j]; j-- {
			c[j-1], c[j] = c[j], c[j-1]
		}
	}
	return c
}

func TestParallelMISImmortals(t *testing.T) {
	g := gridGraph3D(4)
	imm := make([]bool, g.N)
	imm[0] = true
	imm[g.N-1] = true
	owner := make([]int, g.N)
	for v := range owner {
		owner[v] = v % 3
	}
	mis := ParallelMIS(NewComm(3), g, owner, graph.NaturalOrder(g.N), nil, imm)
	has := func(v int) bool {
		for _, m := range mis {
			if m == v {
				return true
			}
		}
		return false
	}
	if !has(0) || !has(g.N-1) {
		t.Fatal("immortal vertices must be selected")
	}
	if !graph.IsMaximal(g, mis) {
		t.Fatal("not maximal")
	}
}

func TestHaloMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
		b.Add(i, (i+17)%n, 0.5)
	}
	a := b.Build()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := make([]float64, n)
	a.MulVec(x, want)

	for _, p := range []int{1, 2, 3, 5} {
		owner := make([]int, n)
		for i := range owner {
			owner[i] = i * p / n
		}
		h := NewHalo(a, owner, p)
		got := make([]float64, n)
		// Each rank gets its own copy of x valid only on owned entries to
		// prove the exchange works, but shares got.
		comm := NewComm(p)
		counters := comm.RunCounted(func(r *Rank) {
			xl := make([]float64, n)
			for i := range xl {
				if owner[i] == r.ID() {
					xl[i] = x[i]
				}
			}
			h.MulVec(r, a, xl, got)
		})
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("p=%d: y[%d] = %v want %v", p, i, got[i], want[i])
			}
		}
		// Total flops must equal 2·nnz regardless of p.
		var total int64
		for _, f := range counters.Flops {
			total += f
		}
		if total != a.MulVecFlops() {
			t.Fatalf("p=%d: flops %d want %d", p, total, a.MulVecFlops())
		}
		if p > 1 && counters.BytesSent[0] == 0 {
			t.Fatalf("p=%d: expected halo traffic", p)
		}
	}
}

// blockTestMatrix builds an nb-node block tridiagonal test operator with a
// long-range band, 3x3 blocks.
func blockTestMatrix(nb int, rng *rand.Rand) *sparse.BSR {
	bb := sparse.NewBlockBuilder(nb, nb, 3)
	blk := make([]float64, 9)
	fill := func(diag float64) []float64 {
		for i := range blk {
			blk[i] = rng.Float64() - 0.5
		}
		blk[0] += diag
		blk[4] += diag
		blk[8] += diag
		return blk
	}
	for i := 0; i < nb; i++ {
		bb.AddBlock(i, i, fill(6))
		if i+1 < nb {
			bb.AddBlock(i, i+1, fill(0))
			bb.AddBlock(i+1, i, fill(0))
		}
		bb.AddBlock(i, (i+11)%nb, fill(0))
	}
	return bb.Build()
}

// TestBlockHaloMulVec checks the node-granular halo: the distributed
// blocked product must be bitwise identical to the serial BSR product on
// every rank count, with the same total flop count, and the blocked
// exchange must move fewer messages than a scalar halo over the expanded
// matrix (one index + 3 values per ghost node).
func TestBlockHaloMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nb := 40
	a := blockTestMatrix(nb, rng)
	n := a.Rows()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := make([]float64, n)
	a.MulVec(x, want)

	for _, p := range []int{1, 2, 3, 5} {
		nodeOwner := make([]int, nb)
		for i := range nodeOwner {
			nodeOwner[i] = i * p / nb
		}
		h := NewBlockHalo(a, nodeOwner, p)
		got := make([]float64, n)
		comm := NewComm(p)
		counters := comm.RunCounted(func(r *Rank) {
			xl := make([]float64, n)
			for ib := 0; ib < nb; ib++ {
				if nodeOwner[ib] == r.ID() {
					copy(xl[3*ib:3*ib+3], x[3*ib:3*ib+3])
				}
			}
			h.MulVecBSR(r, a, xl, got)
		})
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("p=%d: y[%d] = %v want %v (not bitwise)", p, i, got[i], want[i])
			}
		}
		var total int64
		for _, f := range counters.Flops {
			total += f
		}
		if total != a.MulVecFlops() {
			t.Fatalf("p=%d: flops %d want %d", p, total, a.MulVecFlops())
		}
		if p > 1 {
			// Same ghost volume as the scalar halo on the expanded matrix,
			// from one third of the messages' index entries.
			hs := NewHalo(a.ToCSR(), expandOwner(nodeOwner, 3), p)
			for rk := 0; rk < p; rk++ {
				if h.GhostCount(rk) != hs.GhostCount(rk) {
					t.Fatalf("p=%d rank %d: blocked ghosts %d vs scalar %d", p, rk, h.GhostCount(rk), hs.GhostCount(rk))
				}
			}
		}
	}
}

func expandOwner(nodeOwner []int, b int) []int {
	out := make([]int, b*len(nodeOwner))
	for i, o := range nodeOwner {
		for d := 0; d < b; d++ {
			out[b*i+d] = o
		}
	}
	return out
}

// TestBlockHaloDot checks the blocked distributed inner product covers
// every scalar entry exactly once.
func TestBlockHaloDot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nb := 24
	a := blockTestMatrix(nb, rng)
	nodeOwner := make([]int, nb)
	for i := range nodeOwner {
		nodeOwner[i] = i % 4
	}
	h := NewBlockHalo(a, nodeOwner, 4)
	n := a.Rows()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
		y[i] = 2
	}
	comm := NewComm(4)
	comm.Run(func(r *Rank) {
		if d := h.Dot(r, x, y); d != float64(2*n) {
			t.Errorf("dot = %v want %v", d, float64(2*n))
		}
	})
}

func TestHaloDot(t *testing.T) {
	n := 40
	a := sparse.Identity(n)
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i % 4
	}
	h := NewHalo(a, owner, 4)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
		y[i] = 2
	}
	comm := NewComm(4)
	comm.Run(func(r *Rank) {
		d := h.Dot(r, x, y)
		if d != float64(2*n) {
			t.Errorf("dot = %v", d)
		}
	})
	if h.GhostCount(0) != 0 {
		t.Error("identity matrix should need no ghosts")
	}
}
