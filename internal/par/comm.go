// Package par is the message-passing substrate of the reproduction: the
// paper runs on MPI over a 960-processor IBM SMP cluster, which we simulate
// with P goroutine "ranks" communicating over channels. The parallel
// algorithms of the paper (the rank-based parallel MIS of section 4.2, the
// seeded parallel face identification of section 4.5, and row-partitioned
// matrix-vector products with halo exchange) run unchanged on this runtime.
//
// Every rank carries flop and traffic counters; the perf package converts
// the measured counts into the paper's efficiency metrics using a machine
// model calibrated to the paper's hardware.
package par

import (
	"fmt"
	"sync"
)

// message is one point-to-point payload.
type message struct {
	tag  int
	data interface{}
}

// Comm is a communicator over a fixed number of ranks.
type Comm struct {
	size  int
	chans [][]chan message // chans[from][to]

	barrierMu    sync.Mutex
	barrierCount int
	barrierGen   int
	barrierCond  *sync.Cond

	reduceMu    sync.Mutex
	reduceBuf   []interface{}
	reduceGen   int
	reduceSlots map[int]*reduceSlot
	reduceCnd   *sync.Cond
}

// reduceSlot holds one completed reduction until every rank has read it.
type reduceSlot struct {
	out     interface{}
	readers int
}

// NewComm returns a communicator with p ranks.
func NewComm(p int) *Comm {
	if p < 1 {
		panic("par: communicator needs at least one rank")
	}
	c := &Comm{size: p}
	c.chans = make([][]chan message, p)
	for i := range c.chans {
		c.chans[i] = make([]chan message, p)
		for j := range c.chans[i] {
			c.chans[i][j] = make(chan message, 1024)
		}
	}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	c.reduceCnd = sync.NewCond(&c.reduceMu)
	c.reduceSlots = make(map[int]*reduceSlot)
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Run executes fn concurrently on every rank and waits for all to finish.
// A panic in any rank is re-raised in the caller.
func (c *Comm) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make([]interface{}, c.size)
	ranks := make([]*Rank, c.size)
	for id := 0; id < c.size; id++ {
		ranks[id] = &Rank{comm: c, id: id, pending: make([][]message, c.size)}
	}
	for id := 0; id < c.size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[id] = e
				}
			}()
			fn(ranks[id])
		}(id)
	}
	wg.Wait()
	for id, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: rank %d panicked: %v", id, p))
		}
	}
}

// Rank is one simulated processor inside a Comm.Run call.
type Rank struct {
	comm    *Comm
	id      int
	pending [][]message // out-of-order receives, per source

	// Counters accumulated during the run; read them after Run returns.
	Flops     int64
	BytesSent int64
	MsgsSent  int64
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// CountFlops adds n to the rank's flop counter.
func (r *Rank) CountFlops(n int64) { r.Flops += n }

// Send delivers data to rank "to" with the given tag. Sends are buffered
// and non-blocking up to a large channel capacity.
func (r *Rank) Send(to, tag int, data interface{}, bytes int) {
	if to == r.id {
		r.pending[r.id] = append(r.pending[r.id], message{tag: tag, data: data})
		return
	}
	r.MsgsSent++
	r.BytesSent += int64(bytes)
	r.comm.chans[r.id][to] <- message{tag: tag, data: data}
}

// Recv blocks until a message with the given tag arrives from rank "from"
// and returns its payload. Messages with other tags from the same source
// are queued.
func (r *Rank) Recv(from, tag int) interface{} {
	q := r.pending[from]
	for i, m := range q {
		if m.tag == tag {
			r.pending[from] = append(q[:i], q[i+1:]...)
			return m.data
		}
	}
	for {
		m := <-r.comm.chans[from][r.id]
		if m.tag == tag {
			return m.data
		}
		r.pending[from] = append(r.pending[from], m)
	}
}

// Barrier blocks until every rank has reached it.
func (r *Rank) Barrier() {
	c := r.comm
	c.barrierMu.Lock()
	gen := c.barrierGen
	c.barrierCount++
	if c.barrierCount == c.size {
		c.barrierCount = 0
		c.barrierGen++
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen {
			c.barrierCond.Wait()
		}
	}
	c.barrierMu.Unlock()
}

// allReduce gathers one contribution per rank, applies combine on rank
// order, and returns the result to every rank.
func (r *Rank) allReduce(v interface{}, combine func(acc, v interface{}) interface{}) interface{} {
	c := r.comm
	c.reduceMu.Lock()
	gen := c.reduceGen
	if c.reduceBuf == nil {
		c.reduceBuf = make([]interface{}, 0, c.size)
	}
	c.reduceBuf = append(c.reduceBuf, v)
	if len(c.reduceBuf) == c.size {
		acc := c.reduceBuf[0]
		for _, x := range c.reduceBuf[1:] {
			acc = combine(acc, x)
		}
		c.reduceSlots[gen] = &reduceSlot{out: acc, readers: c.size}
		c.reduceBuf = c.reduceBuf[:0]
		c.reduceGen++
		c.reduceCnd.Broadcast()
	} else {
		for c.reduceSlots[gen] == nil {
			c.reduceCnd.Wait()
		}
	}
	slot := c.reduceSlots[gen]
	out := slot.out
	slot.readers--
	if slot.readers == 0 {
		delete(c.reduceSlots, gen)
	}
	c.reduceMu.Unlock()
	return out
}

// AllReduceSum returns the sum of v over all ranks.
func (r *Rank) AllReduceSum(v float64) float64 {
	return r.allReduce(v, func(a, b interface{}) interface{} {
		return a.(float64) + b.(float64)
	}).(float64)
}

// AllReduceIntSum returns the integer sum of v over all ranks.
func (r *Rank) AllReduceIntSum(v int) int {
	return r.allReduce(v, func(a, b interface{}) interface{} {
		return a.(int) + b.(int)
	}).(int)
}

// AllReduceMax returns the maximum of v over all ranks.
func (r *Rank) AllReduceMax(v float64) float64 {
	return r.allReduce(v, func(a, b interface{}) interface{} {
		if a.(float64) > b.(float64) {
			return a
		}
		return b
	}).(float64)
}

// AllGather collects one value from each rank into a slice indexed by rank.
// Every rank receives the same slice contents.
func (r *Rank) AllGather(v interface{}) []interface{} {
	type tagged struct {
		id int
		v  interface{}
	}
	res := r.allReduce(tagged{r.id, v}, func(a, b interface{}) interface{} {
		var list []tagged
		switch x := a.(type) {
		case tagged:
			list = []tagged{x}
		case []tagged:
			list = x
		}
		switch x := b.(type) {
		case tagged:
			list = append(list, x)
		case []tagged:
			list = append(list, x...)
		}
		return list
	})
	out := make([]interface{}, r.comm.size)
	switch x := res.(type) {
	case tagged:
		out[x.id] = x.v
	case []tagged:
		for _, t := range x {
			out[t.id] = t.v
		}
	}
	return out
}

// Counters holds the per-rank instrumentation gathered by RunCounted.
type Counters struct {
	Flops     []int64
	BytesSent []int64
	MsgsSent  []int64
}

// RunCounted is like Run but returns the per-rank counters.
func (c *Comm) RunCounted(fn func(r *Rank)) Counters {
	out := Counters{
		Flops:     make([]int64, c.size),
		BytesSent: make([]int64, c.size),
		MsgsSent:  make([]int64, c.size),
	}
	var mu sync.Mutex
	c.Run(func(r *Rank) {
		fn(r)
		mu.Lock()
		out.Flops[r.id] = r.Flops
		out.BytesSent[r.id] = r.BytesSent
		out.MsgsSent[r.id] = r.MsgsSent
		mu.Unlock()
	})
	return out
}
