// Package par is the message-passing substrate of the reproduction: the
// paper runs on MPI over a 960-processor IBM SMP cluster, which we simulate
// with P goroutine "ranks" communicating over channels. The parallel
// algorithms of the paper (the rank-based parallel MIS of section 4.2, the
// seeded parallel face identification of section 4.5, and row-partitioned
// matrix-vector products with halo exchange) run unchanged on this runtime.
//
// Every rank carries flop and traffic counters; the perf package converts
// the measured counts into the paper's efficiency metrics using a machine
// model calibrated to the paper's hardware.
package par

import (
	"context"
	"fmt"
	"sync"

	"prometheus/internal/check"
	"prometheus/internal/obs"
)

// message is one point-to-point payload.
type message struct {
	tag  int
	data interface{}
}

// eventKind classifies one protocol event for the promdebug tracer. The
// kinds double as the alphabet of the per-rank collective sequences that
// the deadlock watchdog dumps — the runtime counterpart of the static
// collective-uniformity rule, which proves every rank executes the same
// kind sequence.
type eventKind uint8

const (
	evNone eventKind = iota
	evSend
	evRecv
	evBarrier
	evAllReduceSum
	evAllReduceIntSum
	evAllReduceMax
	evAllReduce
	evAllGather
)

// String returns the event name used in watchdog dumps and traces.
func (k eventKind) String() string {
	switch k {
	case evSend:
		return "send"
	case evRecv:
		return "recv"
	case evBarrier:
		return "barrier"
	case evAllReduceSum:
		return "allreduce-sum"
	case evAllReduceIntSum:
		return "allreduce-intsum"
	case evAllReduceMax:
		return "allreduce-max"
	case evAllReduce:
		return "allreduce"
	case evAllGather:
		return "allgather"
	}
	return "idle"
}

// isCollective reports whether the event is a collective operation (one
// that every rank must execute uniformly).
func (k eventKind) isCollective() bool {
	switch k {
	case evBarrier, evAllReduceSum, evAllReduceIntSum, evAllReduceMax, evAllReduce, evAllGather:
		return true
	}
	return false
}

// Comm is a communicator over a fixed number of ranks.
type Comm struct {
	size  int
	chans [][]chan message // chans[from][to]

	barrierMu    sync.Mutex
	barrierCount int
	barrierGen   int
	barrierCond  *sync.Cond

	reduceMu    sync.Mutex
	reduceBuf   []interface{}
	reduceGen   int
	reduceSlots map[int]*reduceSlot
	reduceCnd   *sync.Cond

	// Typed reducers back the per-iteration collectives
	// (AllReduceSum/AllReduceIntSum/AllReduceMax) without boxing or
	// per-round allocation; the interface-based allReduce remains for
	// the generic setup-path collectives (AllReduce/AllGather).
	redSum    *reducer[float64]
	redMax    *reducer[float64]
	redIntSum *reducer[int]

	// trace is the promdebug protocol tracer and deadlock watchdog
	// (trace.go); in release builds it is an empty struct with no-op
	// methods, and every call site sits under if check.Enabled so the
	// hooks vanish entirely.
	trace tracer
}

// reducer is an allocation-free all-reduce over one value type and one
// fixed combine function. Results are published through a two-slot
// generation-parity ring: slot g&1 holds generation g's result, and it
// cannot be overwritten before generation g+2 completes, which requires
// every rank to have contributed to g+1, which requires every rank to
// have read g first — so a reader always finds its generation intact.
type reducer[T any] struct {
	mu      sync.Mutex
	cnd     *sync.Cond
	combine func(a, b T) T
	size    int
	count   int
	gen     int
	acc     T
	slots   [2]T
}

// newReducer builds a reducer for size ranks.
func newReducer[T any](size int, combine func(a, b T) T) *reducer[T] {
	rd := &reducer[T]{combine: combine, size: size}
	rd.cnd = sync.NewCond(&rd.mu)
	return rd
}

// all contributes v and returns the combined value once every rank has
// contributed. Contributions are combined in arrival order (matching
// the interface-based allReduce, whose rank order is also arrival
// order under the scheduler).
func (rd *reducer[T]) all(v T) T {
	rd.mu.Lock()
	gen := rd.gen
	if rd.count == 0 {
		rd.acc = v
	} else {
		rd.acc = rd.combine(rd.acc, v)
	}
	rd.count++
	if rd.count == rd.size {
		rd.slots[gen&1] = rd.acc
		rd.count = 0
		rd.gen++
		rd.cnd.Broadcast()
	} else {
		for rd.gen == gen {
			rd.cnd.Wait()
		}
	}
	out := rd.slots[gen&1]
	rd.mu.Unlock()
	return out
}

func addFloat64(a, b float64) float64 { return a + b }
func addInt(a, b int) int             { return a + b }
func maxFloat64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// reduceSlot holds one completed reduction until every rank has read it.
type reduceSlot struct {
	out     interface{}
	readers int
}

// NewComm returns a communicator with p ranks.
func NewComm(p int) *Comm {
	if p < 1 {
		panic("par: communicator needs at least one rank")
	}
	c := &Comm{size: p}
	c.chans = make([][]chan message, p)
	for i := range c.chans {
		c.chans[i] = make([]chan message, p)
		for j := range c.chans[i] {
			c.chans[i][j] = make(chan message, 1024)
		}
	}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	c.reduceCnd = sync.NewCond(&c.reduceMu)
	c.reduceSlots = make(map[int]*reduceSlot)
	c.reduceBuf = make([]interface{}, 0, p)
	c.redSum = newReducer(p, addFloat64)
	c.redMax = newReducer(p, maxFloat64)
	c.redIntSum = newReducer(p, addInt)
	c.trace.init(p)
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Run executes fn concurrently on every rank and waits for all to finish.
// A panic in any rank is re-raised in the caller.
func (c *Comm) Run(fn func(r *Rank)) { c.runTask(nil, fn) }

// RunCtx is Run with request-scoped observability: the obs task carried
// by ctx (if any) is credited with every rank's counted flops and sent
// message traffic, at the same call sites that feed the process-global
// per-rank stats. A ctx without a task is exactly Run.
func (c *Comm) RunCtx(ctx context.Context, fn func(r *Rank)) {
	c.runTask(obs.FromContext(ctx), fn)
}

func (c *Comm) runTask(t *obs.Task, fn func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make([]interface{}, c.size)
	ranks := make([]*Rank, c.size)
	for id := 0; id < c.size; id++ {
		ranks[id] = &Rank{comm: c, id: id, pending: make([][]message, c.size), task: t}
	}
	c.trace.runStart(c)
	for id := 0; id < c.size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[id] = e
				}
			}()
			fn(ranks[id])
		}(id)
	}
	wg.Wait()
	c.trace.runEnd()
	for id, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: rank %d panicked: %v", id, p))
		}
	}
}

// Rank is one simulated processor inside a Comm.Run call.
type Rank struct {
	comm    *Comm
	id      int
	pending [][]message // out-of-order receives, per source
	task    *obs.Task   // request scope for this run's attribution (may be nil)

	// Counters accumulated during the run; read them after Run returns.
	Flops     int64
	BytesSent int64
	MsgsSent  int64
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// CountFlops adds n to the rank's flop counter.
func (r *Rank) CountFlops(n int64) {
	r.Flops += n
	obs.AddFlops(obsRankEv, r.id, n)
	r.task.AddFlops(n)
}

// Send delivers data to rank "to" with the given tag. Sends are buffered
// and non-blocking up to a large channel capacity.
func (r *Rank) Send(to, tag int, data interface{}, bytes int) {
	if check.Enabled {
		r.comm.trace.event(r.id, evSend, to, tag)
	}
	if to == r.id {
		r.pending[r.id] = append(r.pending[r.id], message{tag: tag, data: data})
		return
	}
	r.MsgsSent++
	r.BytesSent += int64(bytes)
	obs.AddComm(obsRankEv, r.id, 1, int64(bytes))
	obsMsgSize.Observe(int64(bytes))
	r.task.AddComm(1, int64(bytes))
	r.comm.chans[r.id][to] <- message{tag: tag, data: data}
}

// RecvAs receives a message from rank "from" with the given tag and
// asserts its payload type, panicking with a diagnostic (rather than a
// bare type-assertion failure) on a protocol mismatch. It is the typed
// receive used on the hot communication paths.
func RecvAs[T any](r *Rank, from, tag int) T {
	raw := r.Recv(from, tag)
	v, ok := raw.(T)
	if !ok {
		panic(fmt.Sprintf("par: Recv(from=%d, tag=%d) on rank %d: payload is %T, want %T", from, tag, r.id, raw, v))
	}
	return v
}

// Recv blocks until a message with the given tag arrives from rank "from"
// and returns its payload. Messages with other tags from the same source
// are queued.
func (r *Rank) Recv(from, tag int) interface{} {
	if check.Enabled {
		r.comm.trace.block(r.id, evRecv, from, tag)
	}
	q := r.pending[from]
	for i, m := range q {
		if m.tag == tag {
			r.pending[from] = append(q[:i], q[i+1:]...)
			if check.Enabled {
				r.comm.trace.event(r.id, evRecv, from, tag)
			}
			return m.data
		}
	}
	for {
		m := <-r.comm.chans[from][r.id]
		if m.tag == tag {
			if check.Enabled {
				r.comm.trace.event(r.id, evRecv, from, tag)
			}
			return m.data
		}
		r.pending[from] = append(r.pending[from], m)
	}
}

// Barrier blocks until every rank has reached it.
func (r *Rank) Barrier() {
	if check.Enabled {
		r.comm.trace.block(r.id, evBarrier, -1, -1)
		defer r.comm.trace.event(r.id, evBarrier, -1, -1)
	}
	c := r.comm
	c.barrierMu.Lock()
	gen := c.barrierGen
	c.barrierCount++
	if c.barrierCount == c.size {
		c.barrierCount = 0
		c.barrierGen++
		c.barrierCond.Broadcast()
	} else {
		for gen == c.barrierGen {
			c.barrierCond.Wait()
		}
	}
	c.barrierMu.Unlock()
}

// allReduce gathers one contribution per rank, applies combine on rank
// order, and returns the result to every rank.
func (r *Rank) allReduce(v interface{}, combine func(acc, v interface{}) interface{}) interface{} {
	c := r.comm
	c.reduceMu.Lock()
	gen := c.reduceGen
	c.reduceBuf = append(c.reduceBuf, v)
	if len(c.reduceBuf) == c.size {
		acc := c.reduceBuf[0]
		for _, x := range c.reduceBuf[1:] {
			acc = combine(acc, x)
		}
		c.reduceSlots[gen] = &reduceSlot{out: acc, readers: c.size}
		c.reduceBuf = c.reduceBuf[:0]
		c.reduceGen++
		c.reduceCnd.Broadcast()
	} else {
		for c.reduceSlots[gen] == nil {
			c.reduceCnd.Wait()
		}
	}
	slot := c.reduceSlots[gen]
	out := slot.out
	slot.readers--
	if slot.readers == 0 {
		delete(c.reduceSlots, gen)
	}
	c.reduceMu.Unlock()
	return out
}

// AllReduce gathers one value of type T per rank, combines them in rank
// order, and returns the result to every rank. It is a package function
// rather than a method because Go methods cannot have type parameters;
// the typed combine keeps the collective hot paths free of naked
// interface assertions.
func AllReduce[T any](r *Rank, v T, combine func(a, b T) T) T {
	if check.Enabled {
		r.comm.trace.block(r.id, evAllReduce, -1, -1)
		defer r.comm.trace.event(r.id, evAllReduce, -1, -1)
	}
	return allReduceT(r, v, combine)
}

// allReduceT is AllReduce without the protocol-trace hook, so collectives
// built on top of it (AllGatherAs) record a single event of their own kind
// rather than a nested allreduce.
func allReduceT[T any](r *Rank, v T, combine func(a, b T) T) T {
	raw := r.allReduce(v, func(a, b interface{}) interface{} {
		av, aok := a.(T)
		bv, bok := b.(T)
		if !aok || !bok {
			panic(fmt.Sprintf("par: AllReduce on rank %d: mixed payload types %T and %T", r.id, a, b))
		}
		return combine(av, bv)
	})
	out, ok := raw.(T)
	if !ok {
		panic(fmt.Sprintf("par: AllReduce on rank %d: combined payload is %T, want %T", r.id, raw, out))
	}
	return out
}

// AllReduceSum returns the sum of v over all ranks. It is the
// per-iteration collective (global dot products), so it runs on a typed
// reducer: no boxing, no per-round allocation.
func (r *Rank) AllReduceSum(v float64) float64 {
	if check.Enabled {
		r.comm.trace.block(r.id, evAllReduceSum, -1, -1)
		defer r.comm.trace.event(r.id, evAllReduceSum, -1, -1)
	}
	return r.comm.redSum.all(v)
}

// AllReduceIntSum returns the integer sum of v over all ranks on the
// allocation-free typed path.
func (r *Rank) AllReduceIntSum(v int) int {
	if check.Enabled {
		r.comm.trace.block(r.id, evAllReduceIntSum, -1, -1)
		defer r.comm.trace.event(r.id, evAllReduceIntSum, -1, -1)
	}
	return r.comm.redIntSum.all(v)
}

// AllReduceMax returns the maximum of v over all ranks on the
// allocation-free typed path.
func (r *Rank) AllReduceMax(v float64) float64 {
	if check.Enabled {
		r.comm.trace.block(r.id, evAllReduceMax, -1, -1)
		defer r.comm.trace.event(r.id, evAllReduceMax, -1, -1)
	}
	return r.comm.redMax.all(v)
}

// gathered carries one rank's contribution through the gather reduction.
// It is declared at package level because Go does not allow type
// declarations that reference a function's type parameters inside the
// function body.
type gathered[T any] struct {
	id int
	v  T
}

// AllGatherAs collects one value of type T from each rank into a slice
// indexed by rank; every rank receives equal contents. It is the typed
// replacement for the interface{}-returning AllGather: no boxing on the
// contribution path and no per-element type assertions at the call site.
func AllGatherAs[T any](r *Rank, v T) []T {
	if check.Enabled {
		r.comm.trace.block(r.id, evAllGather, -1, -1)
		defer r.comm.trace.event(r.id, evAllGather, -1, -1)
	}
	res := allReduceT(r, []gathered[T]{{r.id, v}}, func(a, b []gathered[T]) []gathered[T] {
		// Copy before appending: contributions are shared across ranks, so
		// the combine must never mutate its operands' backing arrays.
		merged := make([]gathered[T], 0, len(a)+len(b))
		merged = append(merged, a...)
		return append(merged, b...)
	})
	out := make([]T, r.comm.size)
	for _, t := range res {
		out[t.id] = t.v
	}
	return out
}

// AllGather collects one value from each rank into a slice indexed by rank.
// Every rank receives the same slice contents.
//
// Deprecated: AllGather boxes every element and forces naked type
// assertions at each call site; use AllGatherAs instead. The hotloop-alloc
// lint flags callers outside this package.
func (r *Rank) AllGather(v interface{}) []interface{} {
	return AllGatherAs[interface{}](r, v)
}

// Counters holds the per-rank instrumentation gathered by RunCounted.
type Counters struct {
	Flops     []int64
	BytesSent []int64
	MsgsSent  []int64
}

// RunCounted is like Run but returns the per-rank counters.
func (c *Comm) RunCounted(fn func(r *Rank)) Counters {
	out := Counters{
		Flops:     make([]int64, c.size),
		BytesSent: make([]int64, c.size),
		MsgsSent:  make([]int64, c.size),
	}
	var mu sync.Mutex
	c.Run(func(r *Rank) {
		fn(r)
		mu.Lock()
		out.Flops[r.id] = r.Flops
		out.BytesSent[r.id] = r.BytesSent
		out.MsgsSent[r.id] = r.MsgsSent
		mu.Unlock()
	})
	return out
}
