package par

import (
	"runtime"
	"testing"

	"prometheus/internal/obs"
	"prometheus/internal/sparse"
)

// TestSteadyStateAllocs measures the allocation rate of the full
// per-iteration communication pattern — halo exchange, distributed dot,
// and the typed reductions — after warmup. The halo credit buffers and
// reducer slots are preallocated, so steady-state rounds should be
// essentially allocation-free; the budget below only tolerates runtime
// incidentals (sudog pool refills and similar), not per-round buffers.
func TestSteadyStateAllocs(t *testing.T) {
	const (
		n      = 96
		p      = 4
		warmup = 5
		rounds = 200
		budget = 100 // total extra mallocs tolerated across all rounds
	)
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
		b.Add(i, (i+29)%n, 0.5)
	}
	a := b.Build()
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i * p / n
	}
	h := NewHalo(a, owner, p)
	comm := NewComm(p)

	var before, after runtime.MemStats
	comm.Run(func(r *Rank) {
		x := make([]float64, n)
		for i := range x {
			if owner[i] == r.ID() {
				x[i] = float64(i%7) - 3
			}
		}
		round := func(k int) {
			h.Exchange(r, x)
			_ = h.Dot(r, x, x)
			_ = r.AllReduceSum(float64(r.ID()))
			_ = r.AllReduceMax(float64(k))
			_ = r.AllReduceIntSum(k)
		}
		for k := 0; k < warmup; k++ {
			round(k)
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		r.Barrier()
		for k := 0; k < rounds; k++ {
			round(k)
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&after)
		}
		r.Barrier()
	})
	if got := after.Mallocs - before.Mallocs; got > budget {
		t.Errorf("steady-state communication allocated %d objects over %d rounds (budget %d): buffers are not being reused",
			got, rounds, budget)
	}
}

// TestBlockHaloSteadyStateAllocs is the blocked analogue of
// TestSteadyStateAllocs: node-granular exchange, blocked MulVec and
// blocked Dot recycle the same credit buffers and never allocate per
// round.
func TestBlockHaloSteadyStateAllocs(t *testing.T) {
	const (
		nb     = 32
		p      = 4
		warmup = 5
		rounds = 200
		budget = 100
	)
	bb := sparse.NewBlockBuilder(nb, nb, 3)
	blk := make([]float64, 9)
	for i := 0; i < nb; i++ {
		for d := range blk {
			blk[d] = 0
		}
		blk[0], blk[4], blk[8] = 6, 6, 6
		bb.AddBlock(i, i, blk)
		blk[0], blk[4], blk[8] = -1, -1, -1
		if i+1 < nb {
			bb.AddBlock(i, i+1, blk)
			bb.AddBlock(i+1, i, blk)
		}
		bb.AddBlock(i, (i+13)%nb, blk)
	}
	a := bb.Build()
	nodeOwner := make([]int, nb)
	for i := range nodeOwner {
		nodeOwner[i] = i * p / nb
	}
	h := NewBlockHalo(a, nodeOwner, p)
	comm := NewComm(p)
	n := a.Rows()

	var before, after runtime.MemStats
	comm.Run(func(r *Rank) {
		x := make([]float64, n)
		y := make([]float64, n)
		for ib := 0; ib < nb; ib++ {
			if nodeOwner[ib] == r.ID() {
				for d := 0; d < 3; d++ {
					x[3*ib+d] = float64((3*ib+d)%7) - 3
				}
			}
		}
		round := func() {
			h.MulVecBSR(r, a, x, y)
			_ = h.Dot(r, x, y)
		}
		for k := 0; k < warmup; k++ {
			round()
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		r.Barrier()
		for k := 0; k < rounds; k++ {
			round()
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&after)
		}
		r.Barrier()
	})
	if got := after.Mallocs - before.Mallocs; got > budget {
		t.Errorf("blocked steady-state communication allocated %d objects over %d rounds (budget %d): buffers are not being reused",
			got, rounds, budget)
	}
}

// TestSteadyStateAllocsObsEnabled repeats the steady-state exchange
// measurement with observability recording on. The halo exchange span,
// the per-send comm counters and the message-size histogram all write
// preallocated atomics, so the allocation budget is the same as with
// obs off.
func TestSteadyStateAllocsObsEnabled(t *testing.T) {
	const (
		n      = 96
		p      = 4
		warmup = 5
		rounds = 200
		budget = 100
	)
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
		b.Add(i, (i+29)%n, 0.5)
	}
	a := b.Build()
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i * p / n
	}
	h := NewHalo(a, owner, p)
	comm := NewComm(p)

	// The ring is sized for the full round count so the measurement
	// covers the record path, not just the counted-drop path.
	obs.EnableWith(obs.Config{Ranks: p, RingCap: 1 << 12})
	defer obs.Disable()

	var before, after runtime.MemStats
	comm.Run(func(r *Rank) {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			if owner[i] == r.ID() {
				x[i] = float64(i%7) - 3
			}
		}
		round := func() {
			h.MulVec(r, a, x, y)
			_ = h.Dot(r, x, x)
		}
		for k := 0; k < warmup; k++ {
			round()
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&before)
		}
		r.Barrier()
		for k := 0; k < rounds; k++ {
			round()
		}
		r.Barrier()
		if r.ID() == 0 {
			runtime.ReadMemStats(&after)
		}
		r.Barrier()
	})
	if got := after.Mallocs - before.Mallocs; got > budget {
		t.Errorf("obs-enabled steady-state communication allocated %d objects over %d rounds (budget %d)",
			got, rounds, budget)
	}
	// The instrumentation must actually have measured the traffic.
	prof := obs.Snapshot()
	flops, msgs, bytes, ok := prof.PerRank("par.rank")
	if !ok {
		t.Fatal("par.rank counters missing from obs snapshot")
	}
	var tf, tm, tb int64
	for i := range flops {
		tf += flops[i]
		tm += msgs[i]
		tb += bytes[i]
	}
	if tf == 0 || tm == 0 || tb == 0 {
		t.Fatalf("measured counters flops=%d msgs=%d bytes=%d, want all non-zero", tf, tm, tb)
	}
}

// TestTypedReduceManyRounds stresses the two-slot reducer ring: many
// back-to-back generations with no interleaved barrier, checking every
// rank reads its own generation's slot, never a recycled one.
func TestTypedReduceManyRounds(t *testing.T) {
	const p = 6
	comm := NewComm(p)
	comm.Run(func(r *Rank) {
		for k := 0; k < 500; k++ {
			if got, want := r.AllReduceIntSum(r.ID()+k), p*k+p*(p-1)/2; got != want {
				t.Errorf("round %d: int sum = %d, want %d", k, got, want)
				return
			}
			if got, want := r.AllReduceMax(float64(r.ID()*k)), float64((p-1)*k); got != want {
				t.Errorf("round %d: max = %v, want %v", k, got, want)
				return
			}
			if got, want := r.AllReduceSum(1), float64(p); got != want {
				t.Errorf("round %d: sum = %v, want %v", k, got, want)
				return
			}
		}
	})
}
