//go:build promdebug

package par

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// watchdogDump arms the watchdog with a short stall and a capturing hook,
// launches the (deliberately deadlocking) rank body on its own goroutine,
// and returns the diagnostic dump. The Run goroutine stays blocked in the
// broken protocol for the life of the test binary — exactly the hang the
// watchdog exists to diagnose — so it is never joined.
func watchdogDump(t *testing.T, p int, body func(r *Rank)) string {
	t.Helper()
	SetWatchdogStall(50 * time.Millisecond)
	t.Cleanup(func() { SetWatchdogStall(0) })
	fired := make(chan string, 1)
	SetWatchdogHook(func(dump string) { fired <- dump })
	t.Cleanup(func() { SetWatchdogHook(nil) })

	c := NewComm(p)
	go c.Run(body)
	select {
	case dump := <-fired:
		return dump
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog did not fire on a deadlocked protocol")
		return ""
	}
}

// TestWatchdogMismatchedRecv deadlocks a rank on a receive whose tag is
// never sent — the runtime shape of a sendrecv-match violation — and
// asserts the dump names the blocked operation instead of hanging.
func TestWatchdogMismatchedRecv(t *testing.T) {
	dump := watchdogDump(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 99)
		}
	})
	if !strings.Contains(dump, "deadlock watchdog fired") {
		t.Fatalf("dump missing header:\n%s", dump)
	}
	if !strings.Contains(dump, "rank 0: blocked on recv(peer=1, tag=99)") {
		t.Fatalf("dump does not name the blocked receive:\n%s", dump)
	}
}

// TestWatchdogDivergentCollective deadlocks via a rank-dependent barrier —
// the runtime shape of a collective-uniformity violation — and asserts the
// dump shows the divergent rank states.
func TestWatchdogDivergentCollective(t *testing.T) {
	dump := watchdogDump(t, 2, func(r *Rank) {
		r.AllReduceIntSum(1) // both ranks: completes
		if r.ID() == 0 {
			r.Barrier() // rank 1 never joins
		}
	})
	if !strings.Contains(dump, "rank 0: blocked on barrier") {
		t.Fatalf("dump does not show rank 0 stuck in the barrier:\n%s", dump)
	}
	if !strings.Contains(dump, "collective tail: allreduce-intsum") {
		t.Fatalf("dump does not show the collective history:\n%s", dump)
	}
}

// TestWatchdogDumpFile checks the CI artifact path: with
// PROMETHEUS_WATCHDOG_DUMP set, the dump is also written to that file.
func TestWatchdogDumpFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "watchdog.txt")
	t.Setenv("PROMETHEUS_WATCHDOG_DUMP", path)
	watchdogDump(t, 2, func(r *Rank) {
		if r.ID() == 1 {
			r.Recv(0, 42)
		}
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("watchdog dump file not written: %v", err)
	}
	if !strings.Contains(string(data), "rank 1: blocked on recv(peer=0, tag=42)") {
		t.Fatalf("dump file content wrong:\n%s", data)
	}
}

// TestCollectiveTraceUniform is the runtime uniform-sequence oracle: after
// a correct run every rank reports the identical collective sequence, in
// order.
func TestCollectiveTraceUniform(t *testing.T) {
	c := NewComm(4)
	c.Run(func(r *Rank) {
		r.Barrier()
		r.AllReduceIntSum(r.ID())
		AllGatherAs(r, r.ID())
		r.AllReduceSum(float64(r.ID()))
		r.AllReduceMax(float64(r.ID()))
	})
	want := []string{"barrier", "allreduce-intsum", "allgather", "allreduce-sum", "allreduce-max"}
	for rank := 0; rank < 4; rank++ {
		got := c.CollectiveTrace(rank)
		if len(got) != len(want) {
			t.Fatalf("rank %d trace %v, want %v", rank, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d trace %v, want %v", rank, got, want)
			}
		}
	}
}

// TestWatchdogStallSetting checks the knob precedence: SetWatchdogStall
// beats the PROMETHEUS_WATCHDOG_STALL environment variable, which beats
// the default.
func TestWatchdogStallSetting(t *testing.T) {
	t.Setenv("PROMETHEUS_WATCHDOG_STALL", "45ms")
	if c := NewComm(1); c.trace.stall != 45*time.Millisecond {
		t.Fatalf("env stall not honoured: %v", c.trace.stall)
	}
	SetWatchdogStall(2 * time.Second)
	defer SetWatchdogStall(0)
	if c := NewComm(1); c.trace.stall != 2*time.Second {
		t.Fatalf("SetWatchdogStall must beat the env: %v", c.trace.stall)
	}
	SetWatchdogStall(0)
	t.Setenv("PROMETHEUS_WATCHDOG_STALL", "")
	if c := NewComm(1); c.trace.stall != defaultStall {
		t.Fatalf("default stall not restored: %v", c.trace.stall)
	}
}
