package par

import (
	"sort"

	"prometheus/internal/check"
	"prometheus/internal/obs"
	"prometheus/internal/sparse"
)

// Halo describes the communication pattern of a row-partitioned sparse
// matrix-vector product: which x-entries each rank must receive from (and
// send to) each neighbouring rank before computing its rows. It mirrors the
// vector scatter setup of PETSc used by the paper's numerical kernels.
type Halo struct {
	NRanks int
	// BS is the number of scalar values carried per exchanged index: 1 for
	// scalar (CSR) halos, the block size for node-granular (BSR) halos
	// built by NewBlockHalo. Blocked messages ship one index plus BS
	// values per node, cutting the index traffic of the exchange by BS.
	BS    int
	Owner []int   // column/row (node) index -> owning rank
	Rows  [][]int // rank -> rows (block rows when BS > 1) it owns, ascending
	// send[r][nb] = indices owned by r that neighbour nb needs.
	send []map[int][]int
	// recv[r][nb] = indices owned by nb that r needs.
	recv []map[int][]int
	// credits[r][nb] recycles the packing buffers of the directed edge
	// r→nb: the sender draws a buffer, the receiver returns it after
	// unpacking. Two prefilled credits per edge keep Exchange both
	// allocation-free and deadlock-free: a sender entering round k has
	// finished round k-1, so its neighbour has finished round k-2 and
	// returned that round's buffer.
	credits []map[int]chan *[]float64
}

// haloTag is the message tag of ghost-value exchanges. Tags are unique
// across the package (see pmis.go) so each tag names exactly one payload
// type — the invariant the sendrecv-match lint checks.
const haloTag = 3

// NewHalo builds the halo pattern for matrix a with the given row/column
// ownership (square matrices: rows and columns share the partition).
func NewHalo(a *sparse.CSR, owner []int, nranks int) *Halo {
	if len(owner) != a.NRows || a.NRows != a.NCols {
		panic("par: NewHalo wants a square matrix with one owner per row")
	}
	return buildHalo(a.NRows, func(i int) []int {
		cols, _ := a.Row(i)
		return cols
	}, owner, nranks, 1)
}

// NewBlockHalo builds the node-granular halo pattern for a blocked matrix:
// nodeOwner assigns each block row/column to a rank, and every exchanged
// message carries one node index plus a.B scalar values per ghost node —
// the blocked analogue of PETSc's BAIJ vector scatter. The tag discipline
// is shared with the scalar halo (one tag, one payload type).
func NewBlockHalo(a *sparse.BSR, nodeOwner []int, nranks int) *Halo {
	if len(nodeOwner) != a.NBRows || a.NBRows != a.NBCols {
		panic("par: NewBlockHalo wants a square block matrix with one owner per node")
	}
	return buildHalo(a.NBRows, func(i int) []int {
		return a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]]
	}, nodeOwner, nranks, a.B)
}

// buildHalo constructs the send/recv pattern over an n-row adjacency (rowCols
// yields the column indices of row i) with bs scalar values per index.
func buildHalo(n int, rowCols func(i int) []int, owner []int, nranks, bs int) *Halo {
	h := &Halo{
		NRanks: nranks,
		BS:     bs,
		Owner:  owner,
		Rows:   make([][]int, nranks),
		send:   make([]map[int][]int, nranks),
		recv:   make([]map[int][]int, nranks),
	}
	for r := 0; r < nranks; r++ {
		h.send[r] = make(map[int][]int)
		h.recv[r] = make(map[int][]int)
	}
	for i, o := range owner {
		h.Rows[o] = append(h.Rows[o], i)
	}
	// Collect needed ghost columns per rank.
	needed := make([]map[int]bool, nranks)
	for r := range needed {
		needed[r] = make(map[int]bool)
	}
	for i := 0; i < n; i++ {
		r := owner[i]
		for _, j := range rowCols(i) {
			if owner[j] != r {
				needed[r][j] = true
			}
		}
	}
	for r := 0; r < nranks; r++ {
		for j := range needed[r] {
			o := owner[j]
			h.recv[r][o] = append(h.recv[r][o], j)
		}
		for o := range h.recv[r] {
			sort.Ints(h.recv[r][o])
		}
	}
	for r := 0; r < nranks; r++ {
		for o, list := range h.recv[r] {
			h.send[o][r] = list
		}
	}
	h.credits = make([]map[int]chan *[]float64, nranks)
	for r := 0; r < nranks; r++ {
		h.credits[r] = make(map[int]chan *[]float64, len(h.send[r]))
		for nb, idx := range h.send[r] {
			ch := make(chan *[]float64, 2)
			for k := 0; k < cap(ch); k++ {
				buf := make([]float64, bs*len(idx))
				ch <- &buf
			}
			h.credits[r][nb] = ch
		}
	}
	if check.Enabled {
		check.Partition(owner, nranks, "par.NewHalo")
		for r := 0; r < nranks; r++ {
			check.SortedUnique(h.Rows[r], n, "par.NewHalo rows")
			for nb, list := range h.recv[r] {
				check.Assert(nb != r, "par.NewHalo: rank %d receives ghosts from itself", r)
				check.SortedUnique(list, n, "par.NewHalo recv list")
				for _, j := range list {
					check.Assert(owner[j] == nb, "par.NewHalo: rank %d expects index %d from rank %d, but it is owned by %d", r, j, nb, owner[j])
				}
				// The mirrored send list must be the identical index set.
				check.Assert(len(h.send[nb][r]) == len(list), "par.NewHalo: send/recv mismatch between ranks %d and %d", nb, r)
			}
		}
	}
	return h
}

// GhostCount returns the number of ghost scalar values rank r receives per
// product — the paper's per-processor communication volume. For blocked
// halos each ghost node contributes BS values.
func (h *Halo) GhostCount(r int) int {
	n := 0
	for _, l := range h.recv[r] {
		n += len(l)
	}
	return h.BS * n
}

// Exchange updates the ghost entries of x visible to rank r. x is the
// globally indexed vector replicated on all ranks; only entries owned by r
// are assumed valid on entry, and on return the ghost entries r needs are
// valid too. Counts message traffic on the rank.
func (h *Halo) Exchange(r *Rank, x []float64) {
	sp := obs.StartRank(obsHaloEv, r.ID())
	h.exchange(r, x)
	sp.End()
}

// exchange is the span-free body of Exchange.
func (h *Halo) exchange(r *Rank, x []float64) {
	me := r.ID()
	bs := h.BS
	for nb, idx := range h.send[me] {
		bp := <-h.credits[me][nb] // recycled packing buffer for this edge
		vals := *bp
		if bs == 1 {
			for k, j := range idx {
				vals[k] = x[j]
			}
		} else {
			for k, j := range idx {
				copy(vals[bs*k:bs*k+bs], x[bs*j:bs*j+bs])
			}
		}
		obs.AddComm(obsHaloEv, me, 1, int64(8*len(vals)))
		r.Send(nb, haloTag, bp, 8*len(vals))
	}
	for nb, idx := range h.recv[me] {
		bp := RecvAs[*[]float64](r, nb, haloTag)
		vals := *bp
		if check.Enabled {
			check.Assert(len(vals) == bs*len(idx), "par.Halo.Exchange: rank %d received %d ghost values from %d, want %d", me, len(vals), nb, bs*len(idx))
		}
		if bs == 1 {
			for k, j := range idx {
				x[j] = vals[k]
			}
		} else {
			for k, j := range idx {
				copy(x[bs*j:bs*j+bs], vals[bs*k:bs*k+bs])
			}
		}
		h.credits[nb][me] <- bp // return the buffer to the sender's pool
	}
}

// MulVec computes y = A·x for the rows owned by rank r, after a ghost
// exchange. Rows owned by other ranks are left untouched in y, so a shared
// y across ranks is written without conflicts. Flops are counted.
func (h *Halo) MulVec(r *Rank, a *sparse.CSR, x, y []float64) {
	h.Exchange(r, x)
	me := r.ID()
	nnz := 0
	for _, i := range h.Rows[me] {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi:hi]
		vals = vals[:len(cols)] // equal lengths let the compiler drop bounds checks
		s := 0.0
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] = s
		nnz += hi - lo
	}
	r.CountFlops(2 * int64(nnz))
}

// MulVecBSR computes y = A·x for the block rows owned by rank r, after a
// node-granular ghost exchange. Requires a halo built by NewBlockHalo with
// the same block size as a. The per-node kernel is the same register-blocked
// micro-kernel as BSR.MulVec, so the owned rows come out bitwise identical
// to the serial product.
func (h *Halo) MulVecBSR(r *Rank, a *sparse.BSR, x, y []float64) {
	if check.Enabled {
		check.Assert(h.BS == a.B, "par.Halo.MulVecBSR: halo block size %d vs matrix %d", h.BS, a.B)
	}
	h.Exchange(r, x)
	me := r.ID()
	b := a.B
	nnzb := 0
	for _, ib := range h.Rows[me] {
		a.MulVecRange(x, y, b*ib, b*ib+b)
		nnzb += a.RowPtr[ib+1] - a.RowPtr[ib]
	}
	r.CountFlops(2 * int64(nnzb*b*b))
}

// Dot returns the global inner product of x and y, each rank contributing
// its owned entries (BS scalars per owned node on blocked halos), via an
// all-reduce.
func (h *Halo) Dot(r *Rank, x, y []float64) float64 {
	me := r.ID()
	s := 0.0
	if h.BS == 1 {
		for _, i := range h.Rows[me] {
			s += x[i] * y[i]
		}
	} else {
		bs := h.BS
		for _, ib := range h.Rows[me] {
			for d := bs * ib; d < bs*ib+bs; d++ {
				s += x[d] * y[d]
			}
		}
	}
	r.CountFlops(2 * int64(h.BS*len(h.Rows[me])))
	return r.AllReduceSum(s)
}
