package par

import (
	"sort"

	"prometheus/internal/check"
	"prometheus/internal/sparse"
)

// Halo describes the communication pattern of a row-partitioned sparse
// matrix-vector product: which x-entries each rank must receive from (and
// send to) each neighbouring rank before computing its rows. It mirrors the
// vector scatter setup of PETSc used by the paper's numerical kernels.
type Halo struct {
	NRanks int
	Owner  []int   // column/row index -> owning rank
	Rows   [][]int // rank -> rows it owns (ascending)
	// send[r][nb] = indices owned by r that neighbour nb needs.
	send []map[int][]int
	// recv[r][nb] = indices owned by nb that r needs.
	recv []map[int][]int
	// credits[r][nb] recycles the packing buffers of the directed edge
	// r→nb: the sender draws a buffer, the receiver returns it after
	// unpacking. Two prefilled credits per edge keep Exchange both
	// allocation-free and deadlock-free: a sender entering round k has
	// finished round k-1, so its neighbour has finished round k-2 and
	// returned that round's buffer.
	credits []map[int]chan *[]float64
}

// haloTag is the message tag of ghost-value exchanges. Tags are unique
// across the package (see pmis.go) so each tag names exactly one payload
// type — the invariant the sendrecv-match lint checks.
const haloTag = 3

// NewHalo builds the halo pattern for matrix a with the given row/column
// ownership (square matrices: rows and columns share the partition).
func NewHalo(a *sparse.CSR, owner []int, nranks int) *Halo {
	if len(owner) != a.NRows || a.NRows != a.NCols {
		panic("par: NewHalo wants a square matrix with one owner per row")
	}
	h := &Halo{
		NRanks: nranks,
		Owner:  owner,
		Rows:   make([][]int, nranks),
		send:   make([]map[int][]int, nranks),
		recv:   make([]map[int][]int, nranks),
	}
	for r := 0; r < nranks; r++ {
		h.send[r] = make(map[int][]int)
		h.recv[r] = make(map[int][]int)
	}
	for i, o := range owner {
		h.Rows[o] = append(h.Rows[o], i)
	}
	// Collect needed ghost columns per rank.
	needed := make([]map[int]bool, nranks)
	for r := range needed {
		needed[r] = make(map[int]bool)
	}
	for i := 0; i < a.NRows; i++ {
		r := owner[i]
		cols, _ := a.Row(i)
		for _, j := range cols {
			if owner[j] != r {
				needed[r][j] = true
			}
		}
	}
	for r := 0; r < nranks; r++ {
		for j := range needed[r] {
			o := owner[j]
			h.recv[r][o] = append(h.recv[r][o], j)
		}
		for o := range h.recv[r] {
			sort.Ints(h.recv[r][o])
		}
	}
	for r := 0; r < nranks; r++ {
		for o, list := range h.recv[r] {
			h.send[o][r] = list
		}
	}
	h.credits = make([]map[int]chan *[]float64, nranks)
	for r := 0; r < nranks; r++ {
		h.credits[r] = make(map[int]chan *[]float64, len(h.send[r]))
		for nb, idx := range h.send[r] {
			ch := make(chan *[]float64, 2)
			for k := 0; k < cap(ch); k++ {
				buf := make([]float64, len(idx))
				ch <- &buf
			}
			h.credits[r][nb] = ch
		}
	}
	if check.Enabled {
		check.Partition(owner, nranks, "par.NewHalo")
		for r := 0; r < nranks; r++ {
			check.SortedUnique(h.Rows[r], a.NRows, "par.NewHalo rows")
			for nb, list := range h.recv[r] {
				check.Assert(nb != r, "par.NewHalo: rank %d receives ghosts from itself", r)
				check.SortedUnique(list, a.NRows, "par.NewHalo recv list")
				for _, j := range list {
					check.Assert(owner[j] == nb, "par.NewHalo: rank %d expects index %d from rank %d, but it is owned by %d", r, j, nb, owner[j])
				}
				// The mirrored send list must be the identical index set.
				check.Assert(len(h.send[nb][r]) == len(list), "par.NewHalo: send/recv mismatch between ranks %d and %d", nb, r)
			}
		}
	}
	return h
}

// GhostCount returns the number of ghost entries rank r receives per
// product — the paper's per-processor communication volume.
func (h *Halo) GhostCount(r int) int {
	n := 0
	for _, l := range h.recv[r] {
		n += len(l)
	}
	return n
}

// Exchange updates the ghost entries of x visible to rank r. x is the
// globally indexed vector replicated on all ranks; only entries owned by r
// are assumed valid on entry, and on return the ghost entries r needs are
// valid too. Counts message traffic on the rank.
func (h *Halo) Exchange(r *Rank, x []float64) {
	me := r.ID()
	for nb, idx := range h.send[me] {
		bp := <-h.credits[me][nb] // recycled packing buffer for this edge
		vals := *bp
		for k, j := range idx {
			vals[k] = x[j]
		}
		r.Send(nb, haloTag, bp, 8*len(vals))
	}
	for nb, idx := range h.recv[me] {
		bp := RecvAs[*[]float64](r, nb, haloTag)
		vals := *bp
		if check.Enabled {
			check.Assert(len(vals) == len(idx), "par.Halo.Exchange: rank %d received %d ghost values from %d, want %d", me, len(vals), nb, len(idx))
		}
		for k, j := range idx {
			x[j] = vals[k]
		}
		h.credits[nb][me] <- bp // return the buffer to the sender's pool
	}
}

// MulVec computes y = A·x for the rows owned by rank r, after a ghost
// exchange. Rows owned by other ranks are left untouched in y, so a shared
// y across ranks is written without conflicts. Flops are counted.
func (h *Halo) MulVec(r *Rank, a *sparse.CSR, x, y []float64) {
	h.Exchange(r, x)
	me := r.ID()
	nnz := 0
	for _, i := range h.Rows[me] {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi:hi]
		vals = vals[:len(cols)] // equal lengths let the compiler drop bounds checks
		s := 0.0
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] = s
		nnz += hi - lo
	}
	r.CountFlops(2 * int64(nnz))
}

// Dot returns the global inner product of x and y, each rank contributing
// its owned entries, via an all-reduce.
func (h *Halo) Dot(r *Rank, x, y []float64) float64 {
	me := r.ID()
	s := 0.0
	for _, i := range h.Rows[me] {
		s += x[i] * y[i]
	}
	r.CountFlops(2 * int64(len(h.Rows[me])))
	return r.AllReduceSum(s)
}
