package par

import (
	"context"
	"testing"

	"prometheus/internal/obs"
)

// TestRunCtxAttribution checks that RunCtx credits rank flops and
// modeled traffic to the context task, matching the per-rank counters
// the run itself reports: with a single tasked run, task totals equal
// the sum over ranks.
func TestRunCtxAttribution(t *testing.T) {
	obs.EnableWith(obs.Config{})
	defer obs.Disable()

	task := obs.NewTask("")
	ctx := obs.WithTask(context.Background(), task)

	c := NewComm(4)
	c.RunCtx(ctx, func(r *Rank) {
		r.CountFlops(int64(10 * (r.ID() + 1)))
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		r.Send(next, 7, r.ID(), 8)
		r.Recv(prev, 7)
	})

	if got, want := task.Flops(), int64(10+20+30+40); got != want {
		t.Fatalf("task flops = %d, want %d", got, want)
	}
	if got, want := task.Msgs(), int64(4); got != want {
		t.Fatalf("task msgs = %d, want %d", got, want)
	}
	if got, want := task.Bytes(), int64(4*8); got != want {
		t.Fatalf("task bytes = %d, want %d", got, want)
	}
}

// TestRunCtxNoTask checks that a context without a task behaves exactly
// like Run: no panic, no attribution.
func TestRunCtxNoTask(t *testing.T) {
	c := NewComm(2)
	sum := int64(0)
	c.RunCtx(context.Background(), func(r *Rank) {
		r.CountFlops(5)
		if r.ID() == 0 {
			sum = 1
		}
	})
	if sum != 1 {
		t.Fatalf("RunCtx body did not run")
	}
}
