package par

import "prometheus/internal/check"

// MFOperator is the node-granular surface a matrix-free operator exposes
// to the distributed product: block-row applies over listed nodes plus
// the node adjacency the halo pattern is built from. fem.EBEOperator
// implements it; par depends only on this interface, so the communicator
// layer stays ignorant of element storage.
type MFOperator interface {
	// NumNodes returns the number of block rows (nodes).
	NumNodes() int
	// BlockSize returns the scalars per node (3 for elasticity).
	BlockSize() int
	// NodeAdjacency returns, per node, the ascending list of nodes it
	// couples to (self included) — the sparsity graph of the product.
	NodeAdjacency() ([][]int, error)
	// MulVecNodes computes the block rows of the listed nodes into y,
	// reading x at the adjacent nodes' dofs, and returns the flop count.
	MulVecNodes(x, y []float64, nodes []int) int64
}

// NewMFHalo builds the node-granular halo pattern for a matrix-free
// operator: the same blocked exchange as NewBlockHalo (one index plus
// BlockSize values per ghost node), with the sparsity graph supplied by
// the operator's node adjacency instead of assembled block rows.
func NewMFHalo(a MFOperator, nodeOwner []int, nranks int) (*Halo, error) {
	adj, err := a.NodeAdjacency()
	if err != nil {
		return nil, err
	}
	if len(nodeOwner) != a.NumNodes() {
		panic("par: NewMFHalo wants one owner per node")
	}
	return buildHalo(a.NumNodes(), func(i int) []int {
		return adj[i]
	}, nodeOwner, nranks, a.BlockSize()), nil
}

// MulVecMF computes y = A·x for the block rows owned by rank r, after a
// node-granular ghost exchange, without any assembled matrix. Requires a
// halo built by NewMFHalo for the same operator. Rows owned by other
// ranks are left untouched in y, so a shared y across ranks is written
// without conflicts; each owned row is the operator's own row gather, so
// the distributed product is bitwise identical to the serial one on
// every rank count.
func (h *Halo) MulVecMF(r *Rank, a MFOperator, x, y []float64) {
	if check.Enabled {
		check.Assert(h.BS == a.BlockSize(), "par.Halo.MulVecMF: halo block size %d vs operator %d", h.BS, a.BlockSize())
	}
	h.Exchange(r, x)
	r.CountFlops(a.MulVecNodes(x, y, h.Rows[r.ID()]))
}
