//go:build !promdebug

package par

// tracer is the release-build stand-in for the promdebug protocol tracer
// (trace.go): an empty struct whose methods compile to nothing. The
// per-event hooks additionally sit under if check.Enabled, so in release
// builds the compiler removes them entirely.
type tracer struct{}

func (*tracer) init(p int)                                 {}
func (*tracer) runStart(c *Comm)                           {}
func (*tracer) runEnd()                                    {}
func (*tracer) event(rank int, k eventKind, peer, tag int) {}
func (*tracer) block(rank int, k eventKind, peer, tag int) {}
