package par

import (
	"runtime"
	"testing"
)

// TestCommStress hammers every collective and the point-to-point paths
// from many ranks at once. It exists to run under the race detector
// (go test -race ./internal/par/...): the barrier and reduce paths are
// built on hand-rolled sync.Cond generation counters, and this test is
// the regression net that keeps them honest. Ranks deliberately skew
// their arrival times so that consecutive collectives overlap — the
// historically race-prone interleaving, where a fast rank enters
// generation g+1 of a barrier or reduction while slow ranks are still
// draining generation g.
func TestCommStress(t *testing.T) {
	const p = 8
	iters := 300
	if testing.Short() {
		iters = 50
	}
	c := NewComm(p)
	c.Run(func(r *Rank) {
		me := r.ID()
		next := (me + 1) % p
		prev := (me + p - 1) % p
		for it := 0; it < iters; it++ {
			// Skew: make ranks arrive at each collective out of phase.
			for spin := 0; spin < (me*7+it)%13; spin++ {
				runtime.Gosched()
			}

			// Back-to-back reductions with no barrier in between: a fast
			// rank's generation g+1 contribution must not corrupt a slow
			// rank's generation g read.
			s := r.AllReduceSum(float64(me + it))
			if want := float64(p*(p-1)/2 + p*it); s != want {
				t.Errorf("iter %d rank %d: sum = %v, want %v", it, me, s, want)
			}
			n := r.AllReduceIntSum(1)
			if n != p {
				t.Errorf("iter %d rank %d: count = %d, want %d", it, me, n, p)
			}
			m := r.AllReduceMax(float64(me))
			if m != float64(p-1) {
				t.Errorf("iter %d rank %d: max = %v, want %v", it, me, m, float64(p-1))
			}

			// Ring point-to-point interleaved with the collectives; a fresh
			// tag per iteration proves out-of-order queuing.
			r.Send(next, 100+it, me*1000+it, 8)
			got := RecvAs[int](r, prev, 100+it)
			if want := prev*1000 + it; got != want {
				t.Errorf("iter %d rank %d: ring recv = %d, want %d", it, me, got, want)
			}

			if it%3 == 0 {
				vals := AllGatherAs(r, me*2)
				for i, v := range vals {
					if v != i*2 {
						t.Errorf("iter %d rank %d: gather[%d] = %v", it, me, i, v)
					}
				}
			}
			if it%5 == 0 {
				r.Barrier()
			}
		}
	})
}

// TestCommStressConcurrentComms runs several independent communicators at
// once: Comm state must never leak across instances.
func TestCommStressConcurrentComms(t *testing.T) {
	const nComms = 4
	done := make(chan struct{}, nComms)
	for k := 0; k < nComms; k++ {
		go func(k int) {
			defer func() { done <- struct{}{} }()
			p := 2 + k
			c := NewComm(p)
			c.Run(func(r *Rank) {
				for it := 0; it < 100; it++ {
					if got := r.AllReduceIntSum(1); got != p {
						t.Errorf("comm %d: count = %d, want %d", k, got, p)
					}
					r.Barrier()
				}
			})
		}(k)
	}
	for k := 0; k < nComms; k++ {
		<-done
	}
}

// TestRecvAsMismatchPanics pins the diagnostic on a protocol type error.
func TestRecvAsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from mismatched RecvAs")
		}
	}()
	NewComm(2).Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, "not an int", 8)
		} else {
			RecvAs[int](r, 0, 1)
		}
	})
}
