package par

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
)

// buildMFOperator assembles a small elasticity cube (bottom face fixed,
// node-aligned constraints) as a matrix-free EBE operator.
func buildMFOperator(t *testing.T) *fem.EBEOperator {
	t.Helper()
	m := mesh.StructuredHex(3, 3, 3, 1, 1, 1, nil)
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	c := fem.NewConstraints()
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return q.Z == 0 }) {
		c.FixVert(v, 0, 0, 0)
	}
	dm := c.NewDofMap(m.NumDOF())
	op, err := fem.NewEBEOperator(p, make([]float64, m.NumDOF()), c, dm)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestMFHaloMulVec checks the matrix-free distributed product: with the
// halo built from the operator's node adjacency, the owned rows of every
// rank must be bitwise identical to the serial product at every rank
// count, the total flop count must be partition-invariant, and ghosts
// must actually flow.
func TestMFHaloMulVec(t *testing.T) {
	a := buildMFOperator(t)
	nb := a.NumNodes()
	n := a.Rows()
	rng := rand.New(rand.NewSource(17))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	want := make([]float64, n)
	a.MulVec(x, want)

	var flopsAt1 int64
	for _, p := range []int{1, 2, 3, 5} {
		nodeOwner := make([]int, nb)
		for i := range nodeOwner {
			nodeOwner[i] = i * p / nb
		}
		h, err := NewMFHalo(a, nodeOwner, p)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		comm := NewComm(p)
		counters := comm.RunCounted(func(r *Rank) {
			xl := make([]float64, n)
			for ib := 0; ib < nb; ib++ {
				if nodeOwner[ib] == r.ID() {
					copy(xl[3*ib:3*ib+3], x[3*ib:3*ib+3])
				}
			}
			h.MulVecMF(r, a, xl, got)
		})
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("p=%d: y[%d] = %v want %v (not bitwise)", p, i, got[i], want[i])
			}
		}
		var total int64
		for _, f := range counters.Flops {
			total += f
		}
		if p == 1 {
			flopsAt1 = total
			if total <= 0 {
				t.Fatal("no flops counted")
			}
		} else if total != flopsAt1 {
			t.Fatalf("p=%d: flops %d, want partition-invariant %d", p, total, flopsAt1)
		}
		if p > 1 && counters.BytesSent[0] == 0 {
			t.Fatalf("p=%d: expected halo traffic", p)
		}
	}
}
