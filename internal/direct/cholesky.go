// Package direct provides the coarsest-grid direct solver: a profile
// (skyline) Cholesky factorization preceded by a reverse Cuthill-McKee
// reordering to compress the profile. The paper solves its coarsest grid
// directly ("solve coarsest problem directly", Figure 1); coarse operators
// here are small (a few hundred to a few thousand dofs), where profile
// Cholesky is simple and entirely adequate.
package direct

import (
	"errors"
	"math"

	"prometheus/internal/graph"
	"prometheus/internal/sparse"
)

// ErrNotSPD is returned when a non-positive pivot arises.
var ErrNotSPD = errors.New("direct: matrix is not positive definite")

// Cholesky is a profile Cholesky factorization P·A·Pᵀ = L·Lᵀ.
type Cholesky struct {
	n     int
	perm  []int // new -> old
	iperm []int // old -> new
	first []int // first stored column of each row
	rows  [][]float64
	// FactorFlops is the flop count of the factorization.
	FactorFlops int64
}

// New factors the SPD matrix a.
func New(a *sparse.CSR) (*Cholesky, error) {
	if a.NRows != a.NCols {
		return nil, errors.New("direct: matrix must be square")
	}
	n := a.NRows
	// RCM on the matrix graph.
	var edges [][2]int
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j != i {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g := graph.NewGraph(n, edges)
	perm := graph.ReverseCuthillMcKee(g)
	iperm := make([]int, n)
	for newI, old := range perm {
		iperm[old] = newI
	}

	// Profile: first[i] = min over stored columns (in new order).
	first := make([]int, n)
	for i := range first {
		first[i] = i
	}
	for oldI := 0; oldI < n; oldI++ {
		i := iperm[oldI]
		cols, _ := a.Row(oldI)
		for _, oldJ := range cols {
			j := iperm[oldJ]
			if j < first[i] {
				first[i] = j
			}
			if i < first[j] {
				first[j] = i
			}
		}
	}
	c := &Cholesky{n: n, perm: perm, iperm: iperm, first: first}
	c.rows = make([][]float64, n)
	for i := 0; i < n; i++ {
		c.rows[i] = make([]float64, i-first[i]+1)
	}
	// Scatter A into the profile (lower triangle, permuted).
	for oldI := 0; oldI < n; oldI++ {
		i := iperm[oldI]
		cols, vals := a.Row(oldI)
		for k, oldJ := range cols {
			j := iperm[oldJ]
			if j > i {
				continue
			}
			c.rows[i][j-first[i]] += vals[k]
		}
	}
	// Profile Cholesky: for each row i, for j in [first[i], i]:
	// L(i,j) = (A(i,j) - sum_k L(i,k) L(j,k)) / L(j,j), k from
	// max(first[i], first[j]) to j-1.
	for i := 0; i < n; i++ {
		fi := c.first[i]
		ri := c.rows[i]
		for j := fi; j <= i; j++ {
			fj := c.first[j]
			lo := fi
			if fj > lo {
				lo = fj
			}
			s := ri[j-fi]
			rj := c.rows[j]
			for k := lo; k < j; k++ {
				s -= ri[k-fi] * rj[k-fj]
			}
			c.FactorFlops += 2 * int64(j-lo)
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				ri[j-fi] = math.Sqrt(s)
			} else {
				ri[j-fi] = s / rj[j-fj]
			}
		}
	}
	return c, nil
}

// Solve computes x = A⁻¹·b. b and x may alias.
func (c *Cholesky) Solve(b, x []float64) {
	n := c.n
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[c.perm[i]]
	}
	// Forward: L·z = P·b.
	for i := 0; i < n; i++ {
		fi := c.first[i]
		ri := c.rows[i]
		s := y[i]
		for k := fi; k < i; k++ {
			s -= ri[k-fi] * y[k]
		}
		y[i] = s / ri[i-fi]
	}
	// Backward: Lᵀ·w = z.
	for i := n - 1; i >= 0; i-- {
		fi := c.first[i]
		ri := c.rows[i]
		y[i] /= ri[i-fi]
		v := y[i]
		for k := fi; k < i; k++ {
			y[k] -= ri[k-fi] * v
		}
	}
	for i := 0; i < n; i++ {
		x[c.perm[i]] = y[i]
	}
}

// SolveFlops returns the flop count of one Solve call.
func (c *Cholesky) SolveFlops() int64 {
	var nnz int64
	for i := range c.rows {
		nnz += int64(len(c.rows[i]))
	}
	return 4 * nnz
}

// N returns the system size.
func (c *Cholesky) N() int { return c.n }
