package direct

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/la"
	"prometheus/internal/sparse"
)

func laplace2D(n int) *sparse.CSR {
	id := func(i, j int) int { return i*n + j }
	b := sparse.NewBuilder(n*n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			me := id(i, j)
			b.Add(me, me, 4)
			if i > 0 {
				b.Add(me, id(i-1, j), -1)
			}
			if i < n-1 {
				b.Add(me, id(i+1, j), -1)
			}
			if j > 0 {
				b.Add(me, id(i, j-1), -1)
			}
			if j < n-1 {
				b.Add(me, id(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

func TestCholeskySolvesLaplace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 5, 12} {
		a := laplace2D(n)
		c, err := New(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xTrue := make([]float64, a.NRows)
		for i := range xTrue {
			xTrue[i] = rng.Float64()*2 - 1
		}
		b := make([]float64, a.NRows)
		a.MulVec(xTrue, b)
		x := make([]float64, a.NRows)
		c.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9 {
				t.Fatalf("n=%d: x[%d] = %v want %v", n, i, x[i], xTrue[i])
			}
		}
		if c.FactorFlops <= 0 || c.SolveFlops() <= 0 {
			t.Fatal("flops not counted")
		}
		if c.N() != a.NRows {
			t.Fatal("N mismatch")
		}
	}
}

func TestCholeskySolveAliasing(t *testing.T) {
	a := laplace2D(4)
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.NRows)
	for i := range b {
		b[i] = float64(i)
	}
	want := make([]float64, a.NRows)
	c.Solve(b, want)
	c.Solve(b, b)
	for i := range b {
		if b[i] != want[i] {
			t.Fatal("aliased solve differs")
		}
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 40
	// Random sparse SPD: A = Laplacian + random symmetric positive addition.
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 5)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
	for k := 0; k < 30; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64() * 0.1
		b.Add(i, j, v)
		b.Add(j, i, v)
	}
	a := b.Build()
	c, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	x := make([]float64, n)
	c.Solve(rhs, x)
	r := make([]float64, n)
	a.Residual(rhs, x, r)
	if la.Norm2(r) > 1e-10*la.Norm2(rhs) {
		t.Fatalf("residual = %v", la.Norm2(r))
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -2)
	if _, err := New(b.Build()); err != ErrNotSPD {
		t.Fatalf("err = %v", err)
	}
	b2 := sparse.NewBuilder(2, 3)
	b2.Add(0, 0, 1)
	if _, err := New(b2.Build()); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestRCMReducesFactorWork(t *testing.T) {
	// Factor the same matrix with a scrambled numbering: RCM inside New
	// should make the profile (and flops) comparable regardless of input
	// order.
	n := 14
	a := laplace2D(n)
	c1, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble.
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(a.NRows)
	b := sparse.NewBuilder(a.NRows, a.NRows)
	for i := 0; i < a.NRows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			b.Add(perm[i], perm[j], vals[k])
		}
	}
	c2, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(c2.FactorFlops) / float64(c1.FactorFlops)
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("RCM should normalize factor work; ratio = %v", ratio)
	}
}
