// Package pool is the real-core shared-memory substrate of the solver:
// a fixed set of long-lived worker goroutines that execute row-partitioned
// kernels over disjoint index ranges. It is the first step of the
// ROADMAP's "real wall-clock scaling mode" — where internal/par models
// the paper's MPI ranks with message passing, pool runs actual
// runtime.NumCPU-wide data parallelism over shared vectors.
//
// Safety is enforced on three levels:
//
//   - statically, the promlint shared-write / range-partition rules prove
//     that Dispatch hands out a disjoint cover of [0, n) and that every
//     kernel writes only inside its assigned range;
//   - dynamically (promdebug builds), each worker claims its range in the
//     check.Owners shadow table before writing, so an overlapping claim
//     panics with both workers' stacks;
//   - operationally, dispatch is allocation-free in steady state: jobs
//     travel by value through a buffered channel, workers never die, and
//     there is no per-call goroutine churn.
package pool

import (
	"runtime"
	"sync"

	"prometheus/internal/check"
	"prometheus/internal/obs"
)

// Kernel is a row-partitioned compute kernel. MulVecRange must write
// exactly the rows y[lo:hi] and must not write x — the contract every
// sparse matrix type and smoother update kernel implements, and the one
// the shared-write lint rule verifies at each implementation.
type Kernel interface {
	MulVecRange(x, y []float64, lo, hi int)
}

// IndexedKernel is an item-partitioned compute kernel for work whose
// writes are disjoint but not contiguous: colored element batches, where
// item granularity is one element and the scatter touches the element's
// scattered dofs. ApplyOne must write y only at the indices WriteSet
// returns for the same item, and must not write x. Items dispatched in
// one DispatchIndexed call must have pairwise-disjoint write sets — the
// caller's coloring invariant; under promdebug every item's set is
// claimed in the ownership table, so a coloring bug panics with both
// workers' stacks at the first overlapping scatter.
type IndexedKernel interface {
	// ApplyOne processes item (accumulating into y at WriteSet(item)).
	ApplyOne(x, y []float64, item int)
	// WriteSet returns the y-indices ApplyOne(_, _, item) writes. The
	// returned slice must be immutable for the duration of the dispatch
	// (precomputed subslices, not per-call temporaries).
	WriteSet(item int) []int32
}

// job is one dispatched row range (k) or item range (ik). Jobs travel by
// value so a dispatch allocates nothing.
type job struct {
	k      Kernel
	ik     IndexedKernel
	x, y   []float64
	lo, hi int
	// task is the request scope the chunk's work is attributed to (nil
	// outside a served request). Jobs still travel by value.
	task *obs.Task
}

// Pool is a fixed-size set of long-lived workers. The zero value is not
// usable; construct with New. A Pool is safe for concurrent use —
// dispatches are serialized internally.
type Pool struct {
	mu   sync.Mutex
	jobs chan job
	done chan struct{}
	nw   int
	// own is the promdebug write-ownership sanitizer; in release builds
	// it is an empty struct and every call site sits under check.Enabled.
	own check.Owners
}

// New starts a pool of nw workers; nw < 1 means runtime.NumCPU().
func New(nw int) *Pool {
	if nw < 1 {
		nw = runtime.NumCPU()
	}
	p := &Pool{
		nw:   nw,
		jobs: make(chan job, nw),
		done: make(chan struct{}, nw),
	}
	if check.Enabled {
		p.own.Init(nw)
	}
	for w := 0; w < nw; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the number of workers.
func (p *Pool) Workers() int { return p.nw }

// Sanitizer returns the pool's write-ownership table (promdebug builds;
// an inert empty struct otherwise), for tests and benchmarks that toggle
// the runtime checking.
func (p *Pool) Sanitizer() *check.Owners { return &p.own }

// Close shuts the workers down. The pool must be idle.
func (p *Pool) Close() { close(p.jobs) }

// worker executes jobs until the pool is closed. Worker w's writes are
// confined to y[lo:hi] of each job it receives: the kernel honors the
// Kernel contract (statically verified), and under promdebug the range is
// claimed in the ownership table so overlap panics at the first racy
// dispatch rather than corrupting data silently.
func (p *Pool) worker(w int) {
	for j := range p.jobs {
		if j.ik != nil {
			p.runItems(w, j)
			p.done <- struct{}{}
			continue
		}
		if check.Enabled {
			p.own.Claim(w, j.y, j.lo, j.hi)
		}
		sp := obs.StartRankTask(evPoolTask, w, j.task)
		j.k.MulVecRange(j.x, j.y, j.lo, j.hi)
		sp.End()
		obs.AddCount(evPoolRows, w, int64(j.hi-j.lo))
		j.task.AddRows(int64(j.hi - j.lo))
		if check.Enabled {
			p.own.Release(w)
		}
		p.done <- struct{}{}
	}
}

// runItems executes one indexed job: items [lo, hi) in ascending order.
// Worker w's writes are confined to the union of the items' write sets —
// the IndexedKernel contract — and under promdebug each item's set is
// claimed in the ownership table around its apply, so two workers
// scattering to a shared index panic instead of racing.
func (p *Pool) runItems(w int, j job) {
	sp := obs.StartRankTask(evPoolTask, w, j.task)
	for e := j.lo; e < j.hi; e++ {
		if check.Enabled {
			p.own.ClaimIndices(w, j.y, j.ik.WriteSet(e))
			j.ik.ApplyOne(j.x, j.y, e)
			p.own.Release(w)
			continue
		}
		j.ik.ApplyOne(j.x, j.y, e)
	}
	sp.End()
	obs.AddCount(evPoolItems, w, int64(j.hi-j.lo))
	j.task.AddRows(int64(j.hi - j.lo))
}

// Dispatch partitions [0, n) into contiguous chunks aligned to align
// (block size for BSR kernels, 1 otherwise), runs k over the chunks on
// the workers, and returns when every row is written. The partition
// telescopes — each chunk starts where the previous ended, the first
// starts at 0, and the last is clamped to n — so the chunks are pairwise
// disjoint and cover [0, n) exactly; the range-partition lint rule proves
// this shape at compile time. Small or misaligned problems fall back to
// a single serial call, which keeps results bitwise identical to the
// serial kernel for every pool size.
func (p *Pool) Dispatch(k Kernel, x, y []float64, n, align int) {
	p.DispatchTask(nil, k, x, y, n, align)
}

// DispatchTask is Dispatch with request-scoped attribution: the rows
// each worker executes are additionally credited to the task (nil t is
// exactly Dispatch). The partition, execution order and results are
// identical — the task only observes.
func (p *Pool) DispatchTask(t *obs.Task, k Kernel, x, y []float64, n, align int) {
	if n <= 0 {
		return
	}
	if align < 1 {
		align = 1
	}
	units := n / align
	nw := p.nw
	if nw > units {
		nw = units
	}
	if nw <= 1 {
		k.MulVecRange(x, y, 0, n)
		return
	}
	p.mu.Lock()
	q := units / nw
	r := units % nw
	lo := 0
	for w := 0; w < nw; w++ {
		u := q
		if w < r {
			u++
		}
		hi := lo + u*align
		if w == nw-1 {
			hi = n
		}
		p.jobs <- job{k: k, x: x, y: y, lo: lo, hi: hi, task: t}
		lo = hi
	}
	for w := 0; w < nw; w++ {
		<-p.done
	}
	p.mu.Unlock()
}

// DispatchIndexed partitions the items [0, m) into contiguous chunks,
// runs k over the chunks on the workers, and returns when every item is
// applied. The partition telescopes exactly like Dispatch's, so chunks
// are pairwise disjoint and cover [0, m); within a chunk items run in
// ascending order, and the single-worker fallback applies every item in
// the same ascending order, which keeps results bitwise identical to the
// serial kernel for every pool size when the caller's write sets are
// disjoint (each y index is written by at most one item, so the partition
// cannot reorder any index's accumulation).
func (p *Pool) DispatchIndexed(k IndexedKernel, x, y []float64, m int) {
	p.DispatchIndexedTask(nil, k, x, y, m)
}

// DispatchIndexedTask is DispatchIndexed with request-scoped
// attribution (see DispatchTask).
func (p *Pool) DispatchIndexedTask(t *obs.Task, k IndexedKernel, x, y []float64, m int) {
	if m <= 0 {
		return
	}
	nw := p.nw
	if nw > m {
		nw = m
	}
	if nw <= 1 {
		for e := 0; e < m; e++ {
			k.ApplyOne(x, y, e)
		}
		return
	}
	p.mu.Lock()
	q := m / nw
	r := m % nw
	lo := 0
	for w := 0; w < nw; w++ {
		u := q
		if w < r {
			u++
		}
		hi := lo + u
		if w == nw-1 {
			hi = m
		}
		p.jobs <- job{ik: k, x: x, y: y, lo: lo, hi: hi, task: t}
		lo = hi
	}
	for w := 0; w < nw; w++ {
		<-p.done
	}
	p.mu.Unlock()
}
