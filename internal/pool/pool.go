// Package pool is the real-core shared-memory substrate of the solver:
// a fixed set of long-lived worker goroutines that execute row-partitioned
// kernels over disjoint index ranges. It is the first step of the
// ROADMAP's "real wall-clock scaling mode" — where internal/par models
// the paper's MPI ranks with message passing, pool runs actual
// runtime.NumCPU-wide data parallelism over shared vectors.
//
// Safety is enforced on three levels:
//
//   - statically, the promlint shared-write / range-partition rules prove
//     that Dispatch hands out a disjoint cover of [0, n) and that every
//     kernel writes only inside its assigned range;
//   - dynamically (promdebug builds), each worker claims its range in the
//     check.Owners shadow table before writing, so an overlapping claim
//     panics with both workers' stacks;
//   - operationally, dispatch is allocation-free in steady state: jobs
//     travel by value through a buffered channel, workers never die, and
//     there is no per-call goroutine churn.
package pool

import (
	"runtime"
	"sync"

	"prometheus/internal/check"
	"prometheus/internal/obs"
)

// Kernel is a row-partitioned compute kernel. MulVecRange must write
// exactly the rows y[lo:hi] and must not write x — the contract every
// sparse matrix type and smoother update kernel implements, and the one
// the shared-write lint rule verifies at each implementation.
type Kernel interface {
	MulVecRange(x, y []float64, lo, hi int)
}

// job is one dispatched row range. Jobs travel by value so a dispatch
// allocates nothing.
type job struct {
	k      Kernel
	x, y   []float64
	lo, hi int
}

// Pool is a fixed-size set of long-lived workers. The zero value is not
// usable; construct with New. A Pool is safe for concurrent use —
// dispatches are serialized internally.
type Pool struct {
	mu   sync.Mutex
	jobs chan job
	done chan struct{}
	nw   int
	// own is the promdebug write-ownership sanitizer; in release builds
	// it is an empty struct and every call site sits under check.Enabled.
	own check.Owners
}

// New starts a pool of nw workers; nw < 1 means runtime.NumCPU().
func New(nw int) *Pool {
	if nw < 1 {
		nw = runtime.NumCPU()
	}
	p := &Pool{
		nw:   nw,
		jobs: make(chan job, nw),
		done: make(chan struct{}, nw),
	}
	if check.Enabled {
		p.own.Init(nw)
	}
	for w := 0; w < nw; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the number of workers.
func (p *Pool) Workers() int { return p.nw }

// Sanitizer returns the pool's write-ownership table (promdebug builds;
// an inert empty struct otherwise), for tests and benchmarks that toggle
// the runtime checking.
func (p *Pool) Sanitizer() *check.Owners { return &p.own }

// Close shuts the workers down. The pool must be idle.
func (p *Pool) Close() { close(p.jobs) }

// worker executes jobs until the pool is closed. Worker w's writes are
// confined to y[lo:hi] of each job it receives: the kernel honors the
// Kernel contract (statically verified), and under promdebug the range is
// claimed in the ownership table so overlap panics at the first racy
// dispatch rather than corrupting data silently.
func (p *Pool) worker(w int) {
	for j := range p.jobs {
		if check.Enabled {
			p.own.Claim(w, j.y, j.lo, j.hi)
		}
		sp := obs.StartRank(evPoolTask, w)
		j.k.MulVecRange(j.x, j.y, j.lo, j.hi)
		sp.End()
		obs.AddCount(evPoolRows, w, int64(j.hi-j.lo))
		if check.Enabled {
			p.own.Release(w)
		}
		p.done <- struct{}{}
	}
}

// Dispatch partitions [0, n) into contiguous chunks aligned to align
// (block size for BSR kernels, 1 otherwise), runs k over the chunks on
// the workers, and returns when every row is written. The partition
// telescopes — each chunk starts where the previous ended, the first
// starts at 0, and the last is clamped to n — so the chunks are pairwise
// disjoint and cover [0, n) exactly; the range-partition lint rule proves
// this shape at compile time. Small or misaligned problems fall back to
// a single serial call, which keeps results bitwise identical to the
// serial kernel for every pool size.
func (p *Pool) Dispatch(k Kernel, x, y []float64, n, align int) {
	if n <= 0 {
		return
	}
	if align < 1 {
		align = 1
	}
	units := n / align
	nw := p.nw
	if nw > units {
		nw = units
	}
	if nw <= 1 {
		k.MulVecRange(x, y, 0, n)
		return
	}
	p.mu.Lock()
	q := units / nw
	r := units % nw
	lo := 0
	for w := 0; w < nw; w++ {
		u := q
		if w < r {
			u++
		}
		hi := lo + u*align
		if w == nw-1 {
			hi = n
		}
		p.jobs <- job{k: k, x: x, y: y, lo: lo, hi: hi}
		lo = hi
	}
	for w := 0; w < nw; w++ {
		<-p.done
	}
	p.mu.Unlock()
}
