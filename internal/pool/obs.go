package pool

import "prometheus/internal/obs"

// Observability events. pool.task spans one executed job on its worker's
// rank row; pool.rows counts the rows each worker was assigned, so the
// log view exposes partition balance directly; pool.items counts the
// items of indexed (colored-batch) dispatches the same way.
var (
	evPoolTask  = obs.Register("pool.task")
	evPoolRows  = obs.Register("pool.rows")
	evPoolItems = obs.Register("pool.items")
)
