package pool

import (
	"math"
	"runtime"
	"testing"

	"prometheus/internal/check"
)

// scaleKernel writes y[i] = 2*x[i] for i in [lo, hi).
type scaleKernel struct{}

func (scaleKernel) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] = 2 * x[i]
	}
}

// markKernel records which rows were written and how often, for
// partition coverage checks. Counts are safe without synchronization
// because the dispatch partition is disjoint — which is exactly what the
// test asserts.
type markKernel struct{ hits []int32 }

func (m *markKernel) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		m.hits[i]++
		y[i] = x[i]
	}
}

func TestDispatchCoversDomainOnce(t *testing.T) {
	for _, nw := range []int{1, 2, 3, 4, 7, 8} {
		p := New(nw)
		for _, n := range []int{1, 2, 3, 5, 16, 97, 1024} {
			for _, align := range []int{1, 3, 5} {
				m := &markKernel{hits: make([]int32, n)}
				x := make([]float64, n)
				y := make([]float64, n)
				p.Dispatch(m, x, y, n, align)
				for i, h := range m.hits {
					if h != 1 {
						t.Fatalf("nw=%d n=%d align=%d: row %d written %d times", nw, n, align, i, h)
					}
				}
			}
		}
		p.Close()
	}
}

func TestDispatchMatchesSerial(t *testing.T) {
	p := New(4)
	defer p.Close()
	n := 1001
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := make([]float64, n)
	scaleKernel{}.MulVecRange(x, want, 0, n)
	got := make([]float64, n)
	p.Dispatch(scaleKernel{}, x, got, n, 1)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}
}

func TestDispatchZeroAndNegativeN(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Dispatch(scaleKernel{}, nil, nil, 0, 1)
	p.Dispatch(scaleKernel{}, nil, nil, -3, 1)
	x := make([]float64, 5)
	y := make([]float64, 5)
	p.Dispatch(scaleKernel{}, x, y, 5, 0) // align < 1 is clamped to 1
	for i := range y {
		if y[i] != 2*x[i] {
			t.Fatalf("row %d not written", i)
		}
	}
}

// TestDispatchSteadyStateZeroAlloc locks in the satellite requirement:
// after warm-up, a Dispatch must not allocate (jobs travel by value,
// kernels convert to the interface without boxing because they are
// pointer-shaped or empty).
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	p := New(runtime.NumCPU())
	defer p.Close()
	if check.Enabled {
		// Claim bookkeeping is preallocated too, but stack capture cost
		// is not the point of this test; measure the release-shape path.
		p.Sanitizer().Disable()
	}
	n := 4096
	x := make([]float64, n)
	y := make([]float64, n)
	m := &markKernel{hits: make([]int32, n)}
	p.Dispatch(m, x, y, n, 1) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		p.Dispatch(m, x, y, n, 1)
	})
	if allocs != 0 {
		t.Fatalf("Dispatch allocates %.1f per call, want 0", allocs)
	}
}

// TestOwnersInertAlloc locks in that the ownership sanitizer costs a
// single atomic load and zero allocations when disabled — in both
// builds: the promdebug Owners with checking off, and the release stub.
func TestOwnersInertAlloc(t *testing.T) {
	var o check.Owners
	o.Init(4)
	o.Disable()
	y := make([]float64, 128)
	allocs := testing.AllocsPerRun(100, func() {
		o.Claim(1, y, 0, 64)
		o.Release(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled Owners allocates %.1f per claim/release, want 0", allocs)
	}
}
