package material

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tangentMatchesFD checks the consistent tangent against a central finite
// difference of the stress at the given strain.
func tangentMatchesFD(t *testing.T, m Model, s State, eps Voigt, tol float64) {
	t.Helper()
	_, d, _ := m.Update(s, eps)
	h := 1e-7
	for j := 0; j < 6; j++ {
		ep, em := eps, eps
		ep[j] += h
		em[j] -= h
		sp, _, _ := m.Update(s, ep)
		sm, _, _ := m.Update(s, em)
		for i := 0; i < 6; i++ {
			fd := (sp[i] - sm[i]) / (2 * h)
			if math.Abs(fd-d[i][j]) > tol*(1+math.Abs(fd)) {
				t.Fatalf("%s: tangent[%d][%d] = %v, FD = %v", m.Name(), i, j, d[i][j], fd)
			}
		}
	}
}

func TestLinearElasticUniaxial(t *testing.T) {
	m := LinearElastic{E: 200, Nu: 0.3}
	// Uniaxial stress state: eps_xx = e, eps_yy = eps_zz = -nu e gives
	// sigma_xx = E e, sigma_yy = sigma_zz = 0.
	e := 0.001
	eps := Voigt{e, -0.3 * e, -0.3 * e}
	sig, _, _ := m.Update(State{}, eps)
	if math.Abs(sig[0]-200*e) > 1e-12 {
		t.Fatalf("sigma_xx = %v, want %v", sig[0], 200*e)
	}
	if math.Abs(sig[1]) > 1e-12 || math.Abs(sig[2]) > 1e-12 {
		t.Fatalf("lateral stress nonzero: %v %v", sig[1], sig[2])
	}
	// Pure shear: sigma_xy = G * gamma.
	g := 200.0 / (2 * 1.3)
	sig, _, _ = m.Update(State{}, Voigt{0, 0, 0, 0.002, 0, 0})
	if math.Abs(sig[3]-g*0.002) > 1e-12 {
		t.Fatalf("shear stress = %v, want %v", sig[3], g*0.002)
	}
}

func TestLinearElasticTangentFD(t *testing.T) {
	m := LinearElastic{E: 10, Nu: 0.25}
	tangentMatchesFD(t, m, State{}, Voigt{0.001, -0.002, 0.0005, 0.001, -0.001, 0.002}, 1e-5)
}

func TestNeoHookeanLinearizesToElastic(t *testing.T) {
	nh := NeoHookean{E: 1e-4, Nu: 0.49}
	le := LinearElastic{E: 1e-4, Nu: 0.49}
	eps := Voigt{1e-8, -2e-8, 1e-8, 2e-8, 0, -1e-8}
	s1, d1, _ := nh.Update(State{}, eps)
	s2, d2, _ := le.Update(State{}, eps)
	for i := 0; i < 6; i++ {
		if math.Abs(s1[i]-s2[i]) > 1e-12+1e-4*math.Abs(s2[i]) {
			t.Fatalf("stress[%d]: %v vs %v", i, s1[i], s2[i])
		}
		for j := 0; j < 6; j++ {
			if math.Abs(d1[i][j]-d2[i][j]) > 1e-7*(1+math.Abs(d2[i][j])) {
				t.Fatalf("tangent[%d][%d]: %v vs %v", i, j, d1[i][j], d2[i][j])
			}
		}
	}
}

func TestNeoHookeanVolumetricHardening(t *testing.T) {
	m := NeoHookean{E: 1, Nu: 0.3}
	// Compression must stiffen: |p| at tr(eps) = -0.3 exceeds linear
	// prediction.
	epsC := Voigt{-0.1, -0.1, -0.1}
	sig, _, _ := m.Update(State{}, epsC)
	lambda, mu := lame(1, 0.3)
	kappa := lambda + 2*mu/3
	pLinear := kappa * -0.3
	if sig[0] >= 0 {
		t.Fatal("compression should give negative stress")
	}
	// Neo-Hookean pressure: kappa/2 (J^2-1)/J at J=0.7.
	pNH := kappa / 2 * (0.7*0.7 - 1) / 0.7
	if pNH >= pLinear {
		t.Fatalf("volumetric response should harden in compression: %v vs %v", pNH, pLinear)
	}
	if math.Abs(sig[0]-pNH) > 1e-12 {
		t.Fatalf("pressure = %v, want %v", sig[0], pNH)
	}
	tangentMatchesFD(t, m, State{}, epsC, 1e-4)
	tangentMatchesFD(t, m, State{}, Voigt{0.05, 0.02, -0.01, 0.04, 0.01, 0}, 1e-4)
}

func TestJ2ElasticBelowYield(t *testing.T) {
	m := J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002}
	eps := Voigt{1e-5, 0, 0, 0, 0, 0} // well below yield
	sig, d, next := m.Update(State{}, eps)
	if next.Plastic {
		t.Fatal("should be elastic")
	}
	le := LinearElastic{E: 1, Nu: 0.3}
	sigE, dE, _ := le.Update(State{}, eps)
	for i := 0; i < 6; i++ {
		if math.Abs(sig[i]-sigE[i]) > 1e-15 {
			t.Fatalf("elastic branch stress mismatch at %d", i)
		}
		for j := 0; j < 6; j++ {
			if math.Abs(d[i][j]-dE[i][j]) > 1e-12 {
				t.Fatalf("elastic branch tangent mismatch")
			}
		}
	}
}

func TestJ2YieldAndReturn(t *testing.T) {
	m := J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002}
	// Large shear strain forces yielding.
	eps := Voigt{0, 0, 0, 0.01, 0, 0}
	sig, _, next := m.Update(State{}, eps)
	if !next.Plastic {
		t.Fatal("should yield")
	}
	// Stress must lie on the (translated) yield surface:
	// |dev(sigma) - beta| = sqrt(2/3) sigma_y.
	xi := dev(sig)
	for i := 0; i < 6; i++ {
		xi[i] -= next.Beta[i]
	}
	want := math.Sqrt(2.0/3.0) * m.SigmaY
	if got := normStress(xi); math.Abs(got-want) > 1e-12 {
		t.Fatalf("|xi| = %v, want %v", got, want)
	}
	// Plastic strain must be deviatoric (incompressible flow).
	if math.Abs(trace(next.EpsP)) > 1e-15 {
		t.Fatalf("plastic strain not deviatoric: tr = %v", trace(next.EpsP))
	}
}

func TestJ2ConsistencyProperty(t *testing.T) {
	// Property: for any strain, the returned stress never lies outside the
	// translated yield surface (by more than roundoff).
	m := J2Plasticity{E: 2, Nu: 0.25, SigmaY: 0.01, H: 0.05}
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		var eps Voigt
		for i := range eps {
			eps[i] = (rng.Float64()*2 - 1) * 0.05
		}
		sig, _, next := m.Update(State{}, eps)
		xi := dev(sig)
		for i := 0; i < 6; i++ {
			xi[i] -= next.Beta[i]
		}
		return normStress(xi) <= math.Sqrt(2.0/3.0)*m.SigmaY*(1+1e-9)
	}
	for i := 0; i < 500; i++ {
		if !f() {
			t.Fatal("stress outside yield surface")
		}
	}
}

func TestJ2TangentFD(t *testing.T) {
	m := J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002}
	// Plastic branch tangent: FD of the return-mapped stress.
	tangentMatchesFD(t, m, State{}, Voigt{0, 0, 0, 0.01, 0, 0}, 1e-3)
	tangentMatchesFD(t, m, State{}, Voigt{0.004, -0.001, 0, 0.003, 0.002, -0.001}, 1e-3)
}

func TestJ2KinematicHardeningShakedown(t *testing.T) {
	// Cyclic shear: with kinematic hardening the backstress translates the
	// surface; reversing the strain re-yields earlier (Bauschinger).
	m := J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.01}
	s := State{}
	var sig Voigt
	sig, _, s = m.Update(s, Voigt{0, 0, 0, 0.01, 0, 0})
	fwd := sig[3]
	// Unload to zero strain from the committed plastic state.
	sig, _, s2 := m.Update(s, Voigt{})
	if s2.Plastic && math.Abs(sig[3]) > math.Abs(fwd) {
		t.Fatal("unloading should not increase stress")
	}
	if normStress(s.Beta) == 0 {
		t.Fatal("kinematic hardening should move the backstress")
	}
}

func TestStateCommitSemantics(t *testing.T) {
	// Update must not mutate the passed state.
	m := J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002}
	s := State{}
	m.Update(s, Voigt{0, 0, 0, 0.01, 0, 0})
	if s.Plastic || normStress(s.EpsP) != 0 {
		t.Fatal("Update mutated its input state")
	}
}

func TestDatabase(t *testing.T) {
	db := Database()
	if len(db) != 2 {
		t.Fatal("want 2 materials")
	}
	if db[MatSoft].Name() != "neo-hookean" || db[MatHard].Name() != "j2-plasticity" {
		t.Fatalf("db = %v %v", db[MatSoft].Name(), db[MatHard].Name())
	}
	// Table 1 stiffness jump: hard/soft = 1e4.
	soft := db[MatSoft].(NeoHookean)
	hard := db[MatHard].(J2Plasticity)
	if hard.E/soft.E != 1e4 {
		t.Fatalf("stiffness jump = %v", hard.E/soft.E)
	}
}

func TestElasticTangentSPDQuick(t *testing.T) {
	// Property: the elastic tangent is positive definite for admissible
	// (E > 0, 0 < nu < 0.5) parameters: check xᵀDx > 0.
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		e := 0.1 + rng.Float64()*10
		nu := rng.Float64() * 0.49
		m := LinearElastic{E: e, Nu: nu}
		_, d, _ := m.Update(State{}, Voigt{})
		var x Voigt
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		q := 0.0
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				q += x[i] * d[i][j] * x[j]
			}
		}
		return q > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
