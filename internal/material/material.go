// Package material implements the constitutive models of the paper's model
// problem (Table 1): linear elasticity, a compressible Neo-Hookean
// hyperelastic model (the "soft" material, E = 1e-4, nu = 0.49), and J2
// plasticity with kinematic hardening via radial return (the "hard"
// material, sigma_y = 1e-3, H = 0.002E). The paper evaluates these at large
// deformation with mixed elements; we evaluate them in an incremental
// small-strain setting with B-bar elements, which preserves the
// solver-relevant structure (near-incompressibility, 1e4 stiffness jumps,
// progressive yielding) — see DESIGN.md, substitution 3 and 4.
//
// Stress and strain use Voigt notation with engineering shear strains:
// (xx, yy, zz, xy, yz, zx), gamma_ij = 2*eps_ij.
package material

import "math"

// Voigt is a symmetric tensor in Voigt notation.
type Voigt = [6]float64

// Tangent is a 6x6 consistent tangent in Voigt notation.
type Tangent = [6][6]float64

// State carries the history variables of one integration point.
type State struct {
	EpsP    Voigt // plastic strain (engineering shear components)
	Beta    Voigt // back stress (kinematic hardening)
	Plastic bool  // reached the yield surface in the last update
}

// Model is a constitutive model: given the committed state and the total
// strain, it returns the stress, the consistent tangent, and the candidate
// new state (committed by the caller once the load step converges).
type Model interface {
	Update(s State, eps Voigt) (sig Voigt, d Tangent, next State)
	// Name identifies the model in reports.
	Name() string
}

// lame returns the Lamé constants for (E, nu).
func lame(e, nu float64) (lambda, mu float64) {
	lambda = e * nu / ((1 + nu) * (1 - 2*nu))
	mu = e / (2 * (1 + nu))
	return
}

// elasticTangent returns the isotropic linear elastic tangent.
func elasticTangent(lambda, mu float64) Tangent {
	var d Tangent
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d[i][j] = lambda
		}
		d[i][i] += 2 * mu
	}
	for i := 3; i < 6; i++ {
		d[i][i] = mu // engineering shear: tau = mu * gamma
	}
	return d
}

// trace returns eps_xx + eps_yy + eps_zz.
func trace(v Voigt) float64 { return v[0] + v[1] + v[2] }

// dev returns the deviatoric part of a stress-like Voigt tensor.
func dev(v Voigt) Voigt {
	p := trace(v) / 3
	return Voigt{v[0] - p, v[1] - p, v[2] - p, v[3], v[4], v[5]}
}

// normStress returns the tensor norm sqrt(s:s) of a stress-like Voigt
// tensor (off-diagonals stored once, counted twice).
func normStress(s Voigt) float64 {
	return math.Sqrt(s[0]*s[0] + s[1]*s[1] + s[2]*s[2] +
		2*(s[3]*s[3]+s[4]*s[4]+s[5]*s[5]))
}

// LinearElastic is isotropic linear elasticity.
type LinearElastic struct {
	E, Nu float64
}

// Name implements Model.
func (m LinearElastic) Name() string { return "linear-elastic" }

// Update implements Model.
func (m LinearElastic) Update(s State, eps Voigt) (Voigt, Tangent, State) {
	lambda, mu := lame(m.E, m.Nu)
	d := elasticTangent(lambda, mu)
	var sig Voigt
	tr := trace(eps)
	for i := 0; i < 3; i++ {
		sig[i] = lambda*tr + 2*mu*eps[i]
	}
	for i := 3; i < 6; i++ {
		sig[i] = mu * eps[i]
	}
	return sig, d, s
}

// NeoHookean is a compressible Neo-Hookean model evaluated on the small
// strain kinematics: deviatoric response 2*mu*dev(eps), volumetric response
// p = U'(J) = kappa/2 (J^2-1)/J with J = 1 + tr(eps) and kappa the bulk
// modulus. For tr(eps) -> 0 it linearizes exactly to isotropic elasticity;
// for finite compression/extension the volumetric stiffness hardens,
// mimicking the paper's large-deformation hyperelasticity.
type NeoHookean struct {
	E, Nu float64
}

// Name implements Model.
func (m NeoHookean) Name() string { return "neo-hookean" }

// Update implements Model.
func (m NeoHookean) Update(s State, eps Voigt) (Voigt, Tangent, State) {
	lambda, mu := lame(m.E, m.Nu)
	kappa := lambda + 2*mu/3
	j := 1 + trace(eps)
	if j < 0.05 {
		j = 0.05 // guard against element inversion during bad Newton steps
	}
	var sig Voigt
	de := dev(eps)
	p := kappa / 2 * (j*j - 1) / j
	for i := 0; i < 3; i++ {
		sig[i] = p + 2*mu*de[i]
	}
	for i := 3; i < 6; i++ {
		sig[i] = mu * eps[i]
	}
	// dp/dJ = kappa/2 (1 + 1/J^2); volumetric tangent dp/d(tr eps) same.
	dpdtr := kappa / 2 * (1 + 1/(j*j))
	var d Tangent
	for i := 0; i < 3; i++ {
		for k := 0; k < 3; k++ {
			d[i][k] = dpdtr - 2.0/3.0*mu
		}
		d[i][i] += 2 * mu
	}
	for i := 3; i < 6; i++ {
		d[i][i] = mu
	}
	return sig, d, s
}

// J2Plasticity is small-strain J2 plasticity with linear kinematic
// hardening, integrated by radial return (Simo & Hughes, Box 3.1 — the
// paper cites Computational Inelasticity [22]).
type J2Plasticity struct {
	E, Nu  float64
	SigmaY float64 // initial yield stress
	H      float64 // kinematic hardening modulus
}

// Name implements Model.
func (m J2Plasticity) Name() string { return "j2-plasticity" }

// Update implements Model.
func (m J2Plasticity) Update(s State, eps Voigt) (Voigt, Tangent, State) {
	lambda, mu := lame(m.E, m.Nu)
	kappa := lambda + 2*mu/3

	// Elastic trial: strain minus committed plastic strain. Engineering
	// shears: eps_e[i>=3] is gamma; deviatoric stress s = 2 mu eps_dev
	// (tensor components), so shear stress = mu * gamma.
	var epsE Voigt
	for i := 0; i < 6; i++ {
		epsE[i] = eps[i] - s.EpsP[i]
	}
	tr := trace(epsE)
	de := dev(epsE)
	var sTrial Voigt
	for i := 0; i < 3; i++ {
		sTrial[i] = 2 * mu * de[i]
	}
	for i := 3; i < 6; i++ {
		sTrial[i] = mu * epsE[i]
	}
	var xi Voigt
	for i := 0; i < 6; i++ {
		xi[i] = sTrial[i] - s.Beta[i]
	}
	xiNorm := normStress(xi)
	f := xiNorm - math.Sqrt(2.0/3.0)*m.SigmaY

	next := s
	if f <= 0 || xiNorm == 0 {
		// Elastic step.
		next.Plastic = false
		var sig Voigt
		p := kappa * tr
		for i := 0; i < 3; i++ {
			sig[i] = p + sTrial[i]
		}
		for i := 3; i < 6; i++ {
			sig[i] = sTrial[i]
		}
		return sig, elasticTangent(lambda, mu), next
	}

	// Radial return.
	dgamma := f / (2*mu + 2.0/3.0*m.H)
	var n Voigt
	for i := 0; i < 6; i++ {
		n[i] = xi[i] / xiNorm
	}
	var sig Voigt
	p := kappa * tr
	for i := 0; i < 6; i++ {
		sig[i] = sTrial[i] - 2*mu*dgamma*n[i]
		if i < 3 {
			sig[i] += p
		}
		next.Beta[i] = s.Beta[i] + 2.0/3.0*m.H*dgamma*n[i]
	}
	// Plastic strain update: tensor components; engineering shear strains
	// accumulate 2 * dgamma * n for the off-diagonals.
	for i := 0; i < 3; i++ {
		next.EpsP[i] = s.EpsP[i] + dgamma*n[i]
	}
	for i := 3; i < 6; i++ {
		next.EpsP[i] = s.EpsP[i] + 2*dgamma*n[i]
	}
	next.Plastic = true

	// Consistent tangent (Simo & Hughes 3.3.6): C = kappa I⊗I +
	// 2 mu theta (I_dev) - 2 mu thetaBar n⊗n.
	theta := 1 - 2*mu*dgamma/xiNorm
	thetaBar := 1/(1+m.H/(3*mu)) - (1 - theta)
	var d Tangent
	// Volumetric + deviatoric identity part.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d[i][j] = kappa - 2.0/3.0*mu*theta
		}
		d[i][i] += 2 * mu * theta
	}
	for i := 3; i < 6; i++ {
		d[i][i] = mu * theta // engineering shear
	}
	// -2 mu thetaBar n⊗n; shear columns/rows pick up factors consistent
	// with engineering shear strain work conjugacy.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			fac := 2 * mu * thetaBar
			d[i][j] -= fac * n[i] * n[j]
		}
	}
	return sig, d, next
}

// Database is the Table 1 material set: index 0 = soft, 1 = hard.
func Database() []Model {
	return []Model{
		NeoHookean{E: 1e-4, Nu: 0.49},
		J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002},
	}
}

// MatSoft and MatHard are the element material ids of the Table 1 database.
const (
	MatSoft = 0
	MatHard = 1
)
