package lint

import "testing"

// sparseSeamSrc is a miniature of internal/sparse: the operator
// interface, one capability interface, and the four concrete storage
// types the seam protects.
const sparseSeamSrc = `package sparse

type Operator interface {
	Rows() int
}

type Labeler interface {
	StorageLabel() string
}

type CSR struct{ n int }

func (a *CSR) Rows() int { return a.n }

type BSR struct{ n int }

func (a *BSR) Rows() int { return a.n }

type CSR32 struct{ n int }

func (a *CSR32) Rows() int { return a.n }

type BSR32 struct{ n int }

func (a *BSR32) Rows() int { return a.n }
`

func sparseSeamDep() fixtureDep { return fixtureDep{path: "sparse", src: sparseSeamSrc} }

func TestOperatorSeam(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{sparseSeamDep()}, `package fixture

import "sparse"

func consume(a sparse.Operator) int {
	if _, ok := a.(*sparse.CSR); ok { // line 6: comma-ok still inspects storage: flagged
		return 1
	}
	b := a.(*sparse.BSR) // line 9: flagged
	_ = b
	switch a.(type) {
	case *sparse.CSR32: // line 12: flagged
		return 2
	case *sparse.BSR32: // line 14: flagged
		return 3
	case sparse.Labeler: // capability interface: fine
		return 4
	}
	if l, ok := a.(sparse.Labeler); ok { // capability interface: fine
		_ = l.StorageLabel()
		return 5
	}
	return 0
}
`)
	got := OperatorSeam{SparsePath: "sparse"}.Check(pkg)
	if !sameLines(got, 6, 9, 12, 14) {
		t.Errorf("operator-seam lines = %v, want [6 9 12 14]", lines(got))
	}
}

func TestOperatorSeamExemptsSeamPackages(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{sparseSeamDep()}, `package fixture

import "sparse"

func narrow(a sparse.Operator) bool {
	_, ok := a.(*sparse.CSR)
	return ok
}
`)
	if got := (OperatorSeam{SparsePath: "sparse", Allowed: []string{"fixture"}}).Check(pkg); len(got) != 0 {
		t.Errorf("seam package flagged: %v", got)
	}
	// Sub-packages of an allowed path are covered too.
	if got := (OperatorSeam{SparsePath: "sparse", Allowed: []string{"fix"}}).Check(pkg); len(got) == 0 {
		t.Error("unrelated prefix exempted the package (want prefix match on path segments only)")
	}
}
