package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// LibraryPanic enforces the project's panic convention in library (non-main)
// packages: a panic is only acceptable for argument/invariant validation,
// and must be diagnosable — its message must be a compile-time string
// (optionally built with fmt.Sprintf or string concatenation) prefixed
// with the package name, e.g. panic("sparse: MulVec dimension mismatch").
// Dynamic panics (panic(err), panic(v)) hide the failing subsystem from
// the crash report and are flagged.
type LibraryPanic struct{}

// Name implements Rule.
func (LibraryPanic) Name() string { return "library-panic" }

// Check implements Rule.
func (r LibraryPanic) Check(pkg *Package) []Issue {
	if pkg.IsMain() {
		return nil
	}
	prefix := pkg.Types.Name() + ": "
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinPanic(pkg, call.Fun) || len(call.Args) != 1 {
				return true
			}
			if !hasConstPrefix(pkg, call.Args[0], prefix) {
				out = append(out, issue(pkg, call, r.Name(), Error,
					"panic in library package must carry a constant message prefixed %q (argument/invariant validation only)", prefix))
			}
			return true
		})
	}
	return out
}

// isBuiltinPanic reports whether fun resolves to the predeclared panic.
func isBuiltinPanic(pkg *Package, fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := pkg.Info.Uses[id]
	_, builtin := obj.(*types.Builtin)
	return builtin
}

// hasConstPrefix reports whether e is a message expression whose leading
// compile-time string starts with prefix: a constant string, a fmt.Sprintf
// call with such a format, or a + concatenation whose left spine leads to
// one.
func hasConstPrefix(pkg *Package, e ast.Expr, prefix string) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		return hasConstPrefix(pkg, x.X, prefix)
	case *ast.CallExpr:
		if isFmtFunc(pkg, x.Fun, "Sprintf") && len(x.Args) > 0 {
			return hasConstPrefix(pkg, x.Args[0], prefix)
		}
	}
	v := constValue(pkg, e)
	if v == nil || v.Kind() != constant.String {
		return false
	}
	return strings.HasPrefix(constant.StringVal(v), prefix)
}

// isFmtFunc reports whether fun resolves to fmt.<name>.
func isFmtFunc(pkg *Package, fun ast.Expr, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "fmt" && fn.Name() == name
}
