package lint

import (
	"go/ast"
)

// CheckGuard requires every call into the invariant package to sit
// under an `if check.Enabled` guard. The check stubs fold away in
// release builds, but their *arguments* are evaluated at the call site
// regardless — an unguarded check.CSRWellFormed(a, ...) pays the
// argument computation even when checking is compiled out. The guard
// makes the debug-only cost structurally obvious and lets the compiler
// delete the whole block when Enabled is the false constant.
type CheckGuard struct {
	// CheckPath is the invariant package's import path
	// (default prometheus/internal/check).
	CheckPath string
}

// Name implements Rule.
func (CheckGuard) Name() string { return "check-guard" }

// Check implements Rule.
func (r CheckGuard) Check(pkg *Package) []Issue {
	checkPath := r.CheckPath
	if checkPath == "" {
		checkPath = "prometheus/internal/check"
	}
	if pkg.Path == checkPath {
		return nil // the package may call itself freely
	}
	var out []Issue
	var visit func(n ast.Node, guarded bool)
	visit = func(n ast.Node, guarded bool) {
		if n == nil {
			return
		}
		if ifst, ok := n.(*ast.IfStmt); ok && isEnabledGuard(pkg, ifst.Cond, checkPath) {
			// Everything under the guard — including short-circuited
			// conjuncts of the condition itself — is debug-only.
			visit(ifst.Init, guarded)
			visit(ifst.Cond, true)
			visitChildren(ifst.Body, true, visit)
			visit(ifst.Else, guarded)
			return
		}
		if call, ok := n.(*ast.CallExpr); ok && !guarded {
			if fn := resolvedCallee(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == checkPath {
				out = append(out, issue(pkg, call, r.Name(), Error,
					"check.%s called outside an `if check.Enabled` guard; invariant computation must be gated so release builds pay nothing", fn.Name()))
			}
		}
		visitChildren(n, guarded, visit)
	}
	for _, f := range pkg.Files {
		visitChildren(f, false, visit)
	}
	return out
}
