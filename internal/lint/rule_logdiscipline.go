package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// LogDiscipline enforces the structured-logging contract in the service
// packages, where log lines are an operational API: scrapers and trace
// correlation depend on stable keys and on every request-path record
// carrying the request context.
//
//   - no fmt.Print/Printf/Println and no "log" package output (Print*,
//     Fatal*, Panic*, and their *log.Logger method forms): ad-hoc
//     prints bypass the handler chain, so they carry no level, no
//     structure and no trace id;
//   - no context-free slog emission (slog.Info/Warn/Error/Debug and the
//     same methods on *slog.Logger): the trace id reaches a record only
//     through the context, so request-path code must use the *Context
//     variants or Log/LogAttrs, which all take a ctx;
//   - slog attribute keys must be compile-time string constants — both
//     the Attr constructors (slog.String, slog.Int, ...) and the
//     alternating key-value form of Log and the *Context variants.
//     Computed keys make series cardinality unbounded and grepping
//     unreliable. A spread (kvs...) is the caller's composition point
//     and is left to the site that built the slice.
type LogDiscipline struct {
	// Services overrides the service-package list (defaults to the
	// tree's serve/promserve layer); fixtures point it at themselves.
	Services []string
}

// Name returns the rule identifier.
func (LogDiscipline) Name() string { return "log-discipline" }

// logBannedStdlog is the "log" package output surface (functions and
// the identical *log.Logger methods).
var logBannedStdlog = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// logCtxFreeSlog is the slog emission surface that drops the context.
var logCtxFreeSlog = map[string]bool{
	"Info": true, "Warn": true, "Error": true, "Debug": true,
}

// logAttrCtors is the slog.Attr constructor set whose first argument is
// the attribute key.
var logAttrCtors = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Time": true, "Duration": true,
	"Any": true, "Group": true,
}

// logAlternating is the slog call surface taking ...any key-value pairs
// after a ctx (and level/message) prefix.
var logAlternating = map[string]bool{
	"Log": true, "InfoContext": true, "WarnContext": true,
	"ErrorContext": true, "DebugContext": true,
}

// Check analyzes one package.
func (r LogDiscipline) Check(pkg *Package) []Issue {
	if !pathInSet(pkg.Path, serviceSet(r.Services)) {
		return nil
	}
	var issues []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			name := obj.Name()
			switch obj.Pkg().Path() {
			case "fmt":
				if name == "Print" || name == "Printf" || name == "Println" {
					issues = append(issues, issue(pkg, call, r.Name(), Error,
						"fmt.%s bypasses the structured logger; log through slog with a ctx", name))
				}
			case "log":
				if logBannedStdlog[name] {
					issues = append(issues, issue(pkg, call, r.Name(), Error,
						"log.%s bypasses the structured logger; log through slog with a ctx", name))
				}
			case "log/slog":
				switch {
				case logCtxFreeSlog[name]:
					issues = append(issues, issue(pkg, call, r.Name(), Error,
						"slog %s drops the request context (and with it the trace id); use %sContext or LogAttrs", name, name))
				case logAttrCtors[name]:
					if len(call.Args) >= 1 && !isConstString(pkg, call.Args[0]) {
						issues = append(issues, issue(pkg, call.Args[0], r.Name(), Error,
							"slog.%s key must be a compile-time constant string", name))
					}
				case logAlternating[name]:
					issues = append(issues, r.checkAlternating(pkg, call, obj)...)
				}
			}
			return true
		})
	}
	sortIssues(issues)
	return issues
}

// checkAlternating verifies the ...any tail of an alternating key-value
// slog call: even positions must be constant-string keys unless they are
// already slog.Attr values.
func (r LogDiscipline) checkAlternating(pkg *Package, call *ast.CallExpr, obj types.Object) []Issue {
	if call.Ellipsis.IsValid() {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || !sig.Variadic() {
		return nil
	}
	fixed := sig.Params().Len() - 1
	if len(call.Args) <= fixed {
		return nil
	}
	var issues []Issue
	pos := 0
	for _, arg := range call.Args[fixed:] {
		if isSlogAttr(pkg, arg) {
			// An Attr consumes one slot without advancing the key/value
			// alternation, matching slog's own argument parsing.
			continue
		}
		if pos%2 == 0 && !isConstString(pkg, arg) {
			issues = append(issues, issue(pkg, arg, r.Name(), Error,
				"slog key in alternating form must be a compile-time constant string"))
		}
		pos++
	}
	return issues
}

// isConstString reports whether e is a compile-time string constant.
func isConstString(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.String
}

// isSlogAttr reports whether e's static type is log/slog.Attr.
func isSlogAttr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o != nil && o.Name() == "Attr" && o.Pkg() != nil && o.Pkg().Path() == "log/slog"
}
