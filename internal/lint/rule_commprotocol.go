package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CommProtocol enforces the message-passing discipline of the par
// runtime:
//
//   - every tag argument of a par call (Send/Recv/RecvAs and friends)
//     must be a compile-time constant — tags are the protocol, and a
//     computed tag makes send/recv matching unauditable;
//   - a `go` statement must not capture a loop variable in its function
//     literal — rank bodies and per-neighbour workers must take the
//     variable as an argument so each goroutine owns its value.
type CommProtocol struct {
	// ParPath is the import path of the message-passing package
	// (default prometheus/internal/par).
	ParPath string
}

// Name implements Rule.
func (CommProtocol) Name() string { return "comm-protocol" }

// Check implements Rule.
func (r CommProtocol) Check(pkg *Package) []Issue {
	parPath := r.ParPath
	if parPath == "" {
		parPath = "prometheus/internal/par"
	}
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				// Inside the par package itself tags are forwarded as
				// data (RecvAs hands its tag to Recv); the constant-tag
				// discipline binds the API's users.
				if pkg.Path != parPath {
					out = append(out, r.checkTags(pkg, parPath, x)...)
				}
			case *ast.ForStmt, *ast.RangeStmt:
				out = append(out, r.checkLoopCapture(pkg, n.(ast.Stmt))...)
			}
			return true
		})
	}
	return out
}

// checkTags flags non-constant tag arguments in calls into the par
// package. Detection is by parameter name: any parameter literally
// named "tag" of a par function or method is a protocol tag.
func (r CommProtocol) checkTags(pkg *Package, parPath string, call *ast.CallExpr) []Issue {
	fn := resolvedCallee(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPath {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []Issue
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if params.At(i).Name() != "tag" {
			continue
		}
		if pkg.Info.Types[call.Args[i]].Value != nil {
			continue // constant-folded: named const or literal
		}
		out = append(out, issue(pkg, call.Args[i], r.Name(), Error,
			"%s called with a non-constant tag; message tags must be named constants so the protocol is auditable", fn.Name()))
	}
	return out
}

// checkLoopCapture flags go statements inside the loop whose function
// literal captures one of the loop's iteration variables.
func (r CommProtocol) checkLoopCapture(pkg *Package, loop ast.Stmt) []Issue {
	vars := make(map[types.Object]string)
	record := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				vars[obj] = id.Name
			}
		}
	}
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.RangeStmt:
		record(l.Key)
		record(l.Value)
		body = l.Body
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				record(lhs)
			}
		}
		body = l.Body
	}
	if len(vars) == 0 || body == nil {
		return nil
	}
	var out []Issue
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		seen := make(map[types.Object]bool) // one finding per variable per goroutine
		ast.Inspect(lit.Body, func(c ast.Node) bool {
			id, ok := c.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if name, captured := vars[obj]; captured && !seen[obj] {
				seen[obj] = true
				out = append(out, issue(pkg, id, r.Name(), Error,
					"go statement captures loop variable %s; pass it as an argument to the goroutine", name))
			}
			return true
		})
		return true
	})
	return out
}

// resolvedCallee resolves the statically-known called function,
// including generic instantiations like RecvAs[T](...).
func resolvedCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			fn, _ := pkg.Info.Uses[x].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := pkg.Info.Uses[x.Sel].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			fn, _ := pkg.Info.Uses[x].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := pkg.Info.Uses[x.Sel].(*types.Func)
			return fn
		}
	}
	return nil
}
