package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns with the go tool and returns
// the matched packages parsed (with comments) and fully type-checked.
// Dependencies — standard library and module-internal alike — are
// imported from the compiler export data that `go list -export` produces,
// so the loader needs nothing beyond the standard library and the go
// command itself. tags is an optional build-tag list forwarded to go list.
func Load(dir string, patterns []string, tags string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, tags, false, patterns)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, tags, true, patterns)
	if err != nil {
		return nil, err
	}
	meta := make(map[string]*listPkg, len(deps))
	for _, p := range deps {
		meta[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	exportImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		m := meta[path]
		if m == nil || m.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(m.Export)
	})

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typeCheck(fset, t, exportImp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs the go list command and decodes its JSON package stream.
func goList(dir, tags string, deps bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-json"}
	if deps {
		args = append(args, "-deps", "-export")
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}
	var out []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// typeCheck parses and type-checks one target package from source.
func typeCheck(fset *token.FileSet, m *listPkg, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(m.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", m.ImportPath, err)
	}
	return &Package{
		Path:  m.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
