package lint

import "testing"

func fixtureSyncCompute() *SyncDiscipline {
	return &SyncDiscipline{Compute: []string{"fixture"}, Substrate: []string{"none"}}
}

func fixtureSyncSubstrate() *SyncDiscipline {
	return &SyncDiscipline{Compute: []string{"none"}, Substrate: []string{"fixture"}}
}

func TestSyncDisciplineComputeBansRawOps(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{syncDep}, `package fixture

import "sync"

var mu sync.Mutex

// Smooth is a hot root: everything below runs per iteration.
func Smooth(x []float64, done chan int, n int) {
	for i := 0; i < n; i++ {
		mu.Lock() // line 10: sync call in compute
		x[i] = 0
		mu.Unlock() // line 12: sync call in compute
	}
	done <- n // line 14: channel send in compute
	<-done    // line 15: channel receive in compute
}

// cold is never reached from a hot root: raw ops are tolerated here.
func cold(done chan int) {
	done <- 1
}
`)
	got := fixtureSyncCompute().Check(pkg)
	if !sameLines(got, 10, 12, 14, 15) {
		t.Fatalf("got %v (lines %v), want lines [10 12 14 15]", got, lines(got))
	}
}

func TestSyncDisciplineSubstrateSanctions(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type Pool struct {
	jobs chan int
	done chan struct{}
}

// Dispatch is a hot root and a method of a package-local type: its
// synchronization is the audited protocol surface.
func (p *Pool) Dispatch(n int) {
	for w := 0; w < n; w++ {
		p.jobs <- w // ok: method of local type
	}
	for w := 0; w < n; w++ {
		<-p.done // ok: method of local type
	}
}

// credit is a package-local bounded-token channel: its constant buffer
// is the synchronization budget, so hot ops on it are sanctioned.
var credit = make(chan struct{}, 4)

// Smooth is hot but a plain function: its ops need a credit channel.
func Smooth(p *Pool, raw chan int, n int) {
	for i := 0; i < n; i++ {
		credit <- struct{}{} // ok: buffered credit channel
		raw <- i             // line 27: unbuffered, not a method
		<-credit             // ok: buffered credit channel
	}
}
`)
	got := fixtureSyncSubstrate().Check(pkg)
	if !sameLines(got, 27) {
		t.Fatalf("got %v (lines %v), want line [27]", got, lines(got))
	}
}

func TestSyncDisciplineCheckGuardExempt(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{
		{path: "prometheus/internal/check", src: `package check

const Enabled = true
`},
	}, `package fixture

import "prometheus/internal/check"

func Smooth(x []float64, trace chan int, n int) {
	for i := 0; i < n; i++ {
		if check.Enabled {
			trace <- i // ok: sanitizer bookkeeping is cold by definition
		}
		x[i] = 0
	}
}
`)
	got := fixtureSyncCompute().Check(pkg)
	if len(got) != 0 {
		t.Fatalf("check.Enabled block flagged: %v", got)
	}
}

func TestSyncDisciplineGoSpawnInCompute(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func Smooth(x []float64, n int) {
	for i := 0; i < n; i++ {
		go step(x, i) // line 5: per-iteration goroutine spawn
	}
}

func step(x []float64, i int) { x[i] = 0 }
`)
	got := fixtureSyncCompute().Check(pkg)
	if !sameLines(got, 5) {
		t.Fatalf("got %v (lines %v), want line [5]", got, lines(got))
	}
}
