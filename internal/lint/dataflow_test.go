package lint

import (
	"strings"
	"testing"
)

// fakeCheck is the fixture stand-in for prometheus/internal/check, so
// fixtures can exercise the check.Enabled guard logic.
var fakeCheck = fixtureDep{path: "prometheus/internal/check", src: `package check

// Enabled gates the assertions.
const Enabled = true

// Assert asserts.
func Assert(cond bool, msg string, args ...interface{}) {}

// Sorted checks ordering.
func Sorted(xs []int, what string) {}
`}

// fakePar is the fixture stand-in for the message-passing package, used
// by the comm-protocol fixtures under ParPath "fixture/par".
var fakePar = fixtureDep{path: "fixture/par", src: `package par

// Rank is a fixture communicator rank.
type Rank struct{}

// Send sends data.
func (r *Rank) Send(to, tag int, data interface{}, bytes int) {}

// Recv receives a payload.
func (r *Rank) Recv(from, tag int) interface{} { return nil }

// RecvAs receives a typed payload.
func RecvAs[T any](r *Rank, from, tag int) T {
	var zero T
	return zero
}

// Comm is a fixture communicator.
type Comm struct{}

// NewComm builds a fixture communicator.
func NewComm(p int) *Comm { return &Comm{} }

// Run runs a rank body on every rank.
func (c *Comm) Run(fn func(r *Rank)) {}

// RunCounted runs a rank body and reports a flop count.
func (c *Comm) RunCounted(fn func(r *Rank)) int { return 0 }

// ID returns the rank id.
func (r *Rank) ID() int { return 0 }

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() {}

// AllReduceSum reduces a float sum.
func (r *Rank) AllReduceSum(v float64) float64 { return v }

// AllReduceIntSum reduces an int sum.
func (r *Rank) AllReduceIntSum(v int) int { return v }

// AllGather gathers boxed values.
func (r *Rank) AllGather(v interface{}) []interface{} { return nil }

// AllGatherAs gathers typed values.
func AllGatherAs[T any](r *Rank, v T) []T { return nil }
`}

func TestHotLoopAllocRegions(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeCheck}, `package fixture

import "prometheus/internal/check"

type op struct {
	buf []float64
}

func (o *op) MulVec(x, y []float64) {
	t := make([]float64, len(x)) // line 10: flagged (alloc in a hot root)
	copy(y, t)
	o.helper(y)
	if check.Enabled {
		dbg := make([]float64, 1) // debug guard: exempt
		_ = dbg
	}
	//promlint:ignore hotloop-alloc fixture shows a justified suppression
	s := make([]float64, 1)
	_ = s
}

func (o *op) helper(y []float64) {
	o.buf = append(o.buf, y[0]) // append into hoisted state: fine
	m := map[int]int{}          // line 24: flagged (hot via same-package call)
	_ = m
}

func setup(n int) []float64 {
	return make([]float64, n) // constructor: cold, fine
}

func driver(o *op, x, y []float64) {
	w := setup(len(x)) // cold: fine
	for i := 0; i < 3; i++ {
		o.MulVec(x, y)
		z := make([]float64, 1) // line 36: flagged (loop promoted hot)
		_ = z
	}
	_ = w
}
`)
	rule := HotLoopAlloc{Kernels: []string{"fixture"}}
	kept, suppressed := RunAll([]*Package{pkg}, []Rule{rule})
	if !sameLines(kept, 10, 24, 36) {
		t.Fatalf("hotloop-alloc fired on lines %v, want [10 24 36]\n%v", lines(kept), kept)
	}
	if len(suppressed) != 1 || suppressed[0].Pos.Line != 18 {
		t.Fatalf("suppression accounting: got %v, want one suppressed finding on line 18", suppressed)
	}
}

func TestHotLoopAllocBoxingAndClosures(t *testing.T) {
	src := `package fixture

func sink(v interface{}) {}

type pair struct{ a, b int }

func Smooth(x []float64, p *pair, name string) {
	sink(x)        // line 8: flagged (slice boxed into interface)
	sink(p)        // pointer payload: fine
	sink(3)        // constant: staticized, fine
	f := func() {} // line 11: flagged (closure creation)
	f()
	msg := name + "!" // line 13: flagged (string concatenation)
	_ = msg
	y := &pair{1, 2} // line 15: flagged (escaping composite literal)
	_ = y
	sink(y) // pointer: fine
}
`
	pkg := checkFixture(t, src)
	rule := HotLoopAlloc{Kernels: []string{"fixture"}}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 8, 11, 13, 15) {
		t.Fatalf("hotloop-alloc fired on lines %v, want [8 11 13 15]\n%v", lines(got), got)
	}

	// The same package outside the kernel set is exempt.
	cold := HotLoopAlloc{Kernels: []string{"elsewhere"}}
	if got := Run([]*Package{pkg}, []Rule{cold}); len(got) != 0 {
		t.Fatalf("rule must not fire outside the kernel set, got %v", got)
	}
}

func TestHotLoopAllocRankClosure(t *testing.T) {
	// A hot loop inside an anonymous rank body (the comm.Run pattern):
	// the loop is promoted because it calls a hot root, and buffers
	// hoisted to just outside the loop stay legal.
	pkg := checkFixture(t, `package fixture

func Barrier() {}

func run(fn func(id int)) { fn(0) }

func drive() {
	run(func(id int) {
		buf := make([]int, 0, 8) // outside the loop: cold, fine
		for {
			Barrier()
			buf = append(buf, id)        // append into cold-declared buffer: fine
			tmp := make([]int, 1)        // line 13: flagged
			local := append(tmp, id)     // line 14: flagged (grows hot-declared tmp)
			_ = local
			if id > len(buf) {
				break
			}
		}
	})
}
`)
	rule := HotLoopAlloc{Kernels: []string{"fixture"}}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 13, 14) {
		t.Fatalf("hotloop-alloc fired on lines %v, want [13 14]\n%v", lines(got), got)
	}
}

func TestCommProtocolTags(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakePar}, `package fixture

import "fixture/par"

const okTag = 7

func talk(r *par.Rank, tags []int) {
	r.Send(1, okTag, nil, 8) // named constant: fine
	r.Send(1, 3, nil, 8)     // literal: fine
	t := tags[0]
	r.Send(1, t, nil, 8)                // line 11: flagged
	_ = r.Recv(0, t+1)                  // line 12: flagged
	v := par.RecvAs[int](r, 0, tags[1]) // line 13: flagged
	_ = v
	w := par.RecvAs[int](r, 0, okTag) // fine
	_ = w
	//promlint:ignore comm-protocol fixture shows a justified suppression
	r.Send(1, t, nil, 8)
}
`)
	rule := CommProtocol{ParPath: "fixture/par"}
	kept, suppressed := RunAll([]*Package{pkg}, []Rule{rule})
	if !sameLines(kept, 11, 12, 13) {
		t.Fatalf("comm-protocol fired on lines %v, want [11 12 13]\n%v", lines(kept), kept)
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppression accounting: got %v, want one suppressed finding", suppressed)
	}
}

func TestCommProtocolLoopCapture(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakePar}, `package fixture

import "fixture/par"

func spawn(r *par.Rank, n int, vs []int) {
	for i := 0; i < n; i++ {
		go func() {
			r.Send(i, 1, nil, 8) // line 8: flagged (captures i)
		}()
		go func(i int) {
			r.Send(i, 2, nil, 8) // argument copy: fine
		}(i)
	}
	for _, v := range vs {
		go func() { println(v) }() // line 15: flagged (captures v)
	}
}
`)
	rule := CommProtocol{ParPath: "fixture/par"}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 8, 15) {
		t.Fatalf("comm-protocol fired on lines %v, want [8 15]\n%v", lines(got), got)
	}
}

func TestCheckGuard(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeCheck}, `package fixture

import "prometheus/internal/check"

func g(xs []int) {
	if check.Enabled {
		check.Assert(len(xs) > 0, "fixture: empty") // guarded: fine
	}
	if check.Enabled && len(xs) > 1 {
		check.Sorted(xs, "fixture") // conjoined guard: fine
	}
	check.Assert(true, "fixture: unguarded") // line 12: flagged
	if len(xs) > 0 {
		check.Sorted(xs, "fixture") // line 14: flagged (wrong guard)
	}
	//promlint:ignore check-guard fixture shows a justified suppression
	check.Sorted(xs, "fixture")
	_ = check.Enabled // bare constant reference: fine
}
`)
	kept, suppressed := RunAll([]*Package{pkg}, []Rule{CheckGuard{}})
	if !sameLines(kept, 12, 14) {
		t.Fatalf("check-guard fired on lines %v, want [12 14]\n%v", lines(kept), kept)
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppression accounting: got %v, want one suppressed finding", suppressed)
	}
}

func TestUncheckedErrorDeferGo(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import "fmt"

func mayFail() error { return nil }
func pure() int      { return 0 }

func caller() {
	defer mayFail()                  // line 9: flagged
	go mayFail()                     // line 10: flagged
	defer func() { _ = mayFail() }() // wrapper handles it: fine
	go func() { _ = mayFail() }()    // wrapper handles it: fine
	defer fmt.Println("x")           // print family: excluded
	go pure()                        // no error result: fine
}
`)
	got := Run([]*Package{pkg}, []Rule{UncheckedError{}})
	if !sameLines(got, 9, 10) {
		t.Fatalf("unchecked-error fired on lines %v, want [9 10]\n%v", lines(got), got)
	}
}

// TestSelfLintTree asserts the whole module is clean under the full rule
// set with zero suppressions — the acceptance bar of the analyzer work.
func TestSelfLintTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped in -short mode")
	}
	pkgs, err := Load("../..", []string{"./..."}, "")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load ./... returned only %d packages", len(pkgs))
	}
	kept, suppressed := RunAll(pkgs, DefaultRules())
	if len(kept) != 0 {
		msgs := make([]string, len(kept))
		for i, iss := range kept {
			msgs[i] = iss.String()
		}
		t.Errorf("tree is not lint-clean:\n%s", strings.Join(msgs, "\n"))
	}
	if len(suppressed) != 0 {
		msgs := make([]string, len(suppressed))
		for i, iss := range suppressed {
			msgs[i] = iss.String()
		}
		t.Errorf("tree must need zero suppressions, found %d:\n%s", len(suppressed), strings.Join(msgs, "\n"))
	}
}

func TestJSONReport(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func cmp(a, b float64) bool {
	//promlint:ignore float-equality fixture shows a justified suppression
	x := a == b
	return x || a != b // line 6: kept
}
`)
	kept, suppressed := RunAll([]*Package{pkg}, []Rule{FloatEquality{}})
	rep := NewJSONReport(kept, suppressed)
	if len(rep.Findings) != 1 || rep.Findings[0].Line != 6 || rep.Findings[0].Rule != "float-equality" {
		t.Fatalf("bad findings: %+v", rep.Findings)
	}
	if rep.Suppressed != 1 || rep.SuppressedByRule["float-equality"] != 1 {
		t.Fatalf("bad suppression accounting: %+v", rep)
	}
	if rep.Findings[0].Severity != "error" || rep.Findings[0].File != "fixture.go" {
		t.Fatalf("bad issue serialization: %+v", rep.Findings[0])
	}
}
