package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file implements the interprocedural ownership analysis behind the
// shared-write rule: a symbolic executor over function bodies that
// computes, for every function, the set of index intervals it writes in
// each slice reachable from its parameters and receiver. Arithmetic is
// the affine engine of affine.go; facts flow in from dominating guards;
// loop-carried writes are projected to closed intervals at loop exit.
//
// The headline theorem is the Kernel contract (pool.Kernel): a method
//
//	MulVecRange(x, y []float64, lo, hi int)
//
// must write y only inside [lo, hi), must not write x, and must not
// write shared state (receiver fields, globals, escaping slices). Worker
// goroutines then compose safely from any disjoint partition of rows —
// which the range-partition rule proves at the dispatch site.
//
// Soundness boundaries (see DESIGN.md §9 for the full discussion):
//
//   - writes through a subslice view land inside the view's base range
//     unconditionally: Go's bounds checking is part of the proof system —
//     an out-of-range index panics, and a panic is not a write;
//   - blocks guarded by check.Enabled are exempt: they are the runtime
//     sanitizer's own bookkeeping (promdebug builds only);
//   - a call into another package with a tracked slice argument is
//     assumed to write that whole slice (top), never to prove a range;
//   - anything the walker cannot model havocs to an anonymous unknown,
//     which summary sanitization then widens to top. Widening is always
//     toward "writes more", so a clean bill of health is trustworthy.

// refKind classifies the root a slice value aliases.
type refKind uint8

const (
	refLocal     refKind = iota // allocated in this function: private
	refParam                    // one of the function's slice parameters
	refRecvField                // a slice field of the receiver
	refShared                   // global, captured, or unknowable alias
)

// ownView is a slice value: a window [off, off+ln) into some root.
// A nil off means the window's position in the root is unknown.
type ownView struct {
	kind  refKind
	param int          // refParam: flattened parameter index
	owner types.Object // refRecvField: the receiver object
	field string       // refRecvField
	off   *aform
	ln    *aform
}

// writeRec is one write effect in a function summary: an interval of a
// root. A top (nil-endpoint) interval means "somewhere in this root".
type writeRec struct {
	view ownView
	iv   ivl
	pos  token.Pos
	why  string
}

// fnSummary is the memoized effect summary of one function.
type fnSummary struct {
	params []types.Object
	recv   types.Object
	writes []writeRec
}

// binding is the abstract value of an integer variable: the value lies
// in [f, f+slack]. nonneg records "provably >= 0" for values whose form
// was widened away (products of slack-carrying factors).
type binding struct {
	f      *aform
	slack  int64
	nonneg bool
}

func (w *ownWalk) bindingNonneg(b binding) bool {
	return b.nonneg || (b.f != nil && w.cx.provableNonneg(b.f))
}

// ownScope is the mutable variable environment, cloned at branches.
type ownScope struct {
	vars  map[types.Object]binding
	views map[types.Object]ownView
}

func (s *ownScope) clone() *ownScope {
	out := &ownScope{
		vars:  make(map[types.Object]binding, len(s.vars)),
		views: make(map[types.Object]ownView, len(s.views)),
	}
	for k, v := range s.vars {
		out.vars[k] = v
	}
	for k, v := range s.views {
		out.views[k] = v
	}
	return out
}

// ownEngine owns the per-package symbol table and summary cache.
type ownEngine struct {
	pkg       *Package
	ix        *funcIndex
	tab       *symtab
	checkPath string
	summaries map[types.Object]*fnSummary
	inprog    map[types.Object]bool
}

func newOwnEngine(pkg *Package, checkPath string) *ownEngine {
	return &ownEngine{
		pkg:       pkg,
		ix:        indexFuncs(pkg),
		tab:       newSymtab(),
		checkPath: checkPath,
		summaries: make(map[types.Object]*fnSummary),
		inprog:    make(map[types.Object]bool),
	}
}

// ownWalk is one symbolic execution of one function body.
type ownWalk struct {
	e      *ownEngine
	cx     *actx
	scope  *ownScope
	writes []writeRec
	recv   types.Object
	params []types.Object
	span   [2]token.Pos // body extent, for is-local-by-position
	// onLoop lets the range-partition rule observe each for statement
	// with the environment as of loop entry.
	onLoop func(*ast.ForStmt, *ownWalk)
}

// summarizeDecl computes (and memoizes) the write summary of a declared
// function.
func (e *ownEngine) summarizeDecl(d *ast.FuncDecl) *fnSummary {
	obj := e.pkg.Info.Defs[d.Name]
	if obj == nil {
		return &fnSummary{writes: []writeRec{{view: ownView{kind: refShared}, pos: d.Pos(), why: "unresolved function"}}}
	}
	if s, ok := e.summaries[obj]; ok {
		return s
	}
	if e.inprog[obj] {
		// Recursion: assume the worst for the cycle member.
		return &fnSummary{writes: []writeRec{{view: ownView{kind: refShared}, pos: d.Pos(), why: "recursive call cycle"}}}
	}
	e.inprog[obj] = true
	w := e.newWalk(d)
	w.exec(d.Body)
	sum := w.finalize()
	delete(e.inprog, obj)
	e.summaries[obj] = sum
	return sum
}

// newWalk seeds a walk environment from a function declaration: integer
// parameters bind to their own symbols, slice parameters to whole-root
// views.
func (e *ownEngine) newWalk(d *ast.FuncDecl) *ownWalk {
	w := &ownWalk{
		e:     e,
		cx:    &actx{tab: e.tab, facts: &factSet{}},
		scope: &ownScope{vars: make(map[types.Object]binding), views: make(map[types.Object]ownView)},
		span:  [2]token.Pos{d.Pos(), d.End()},
	}
	if d.Recv != nil && len(d.Recv.List) == 1 && len(d.Recv.List[0].Names) == 1 {
		w.recv = e.pkg.Info.Defs[d.Recv.List[0].Names[0]]
	}
	idx := 0
	for _, field := range d.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // unnamed parameter still occupies a position
			continue
		}
		for _, name := range names {
			obj := e.pkg.Info.Defs[name]
			if obj != nil {
				if isSliceType(obj.Type()) {
					w.scope.views[obj] = ownView{kind: refParam, param: idx, off: aConst(0), ln: aSym(e.lenSym(obj))}
				} else if isIntType(obj.Type()) {
					w.scope.vars[obj] = binding{f: aSym(e.tab.objSym(obj))}
				}
				w.params = append(w.params, obj)
			} else {
				w.params = append(w.params, nil)
			}
			idx++
		}
	}
	return w
}

// lenSym interns the length symbol of a slice-valued object (len >= 0
// by construction).
func (e *ownEngine) lenSym(obj types.Object) symID {
	return e.tab.intern("len%"+objKey(obj), symInfo{kind: symField, obj: obj, field: "$len", nonneg: true})
}

func objKey(obj types.Object) string {
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// finalize drops private writes and widens any interval that mentions a
// symbol not expressible in the caller's vocabulary (parameters and
// receiver fields) to top.
func (w *ownWalk) finalize() *fnSummary {
	sum := &fnSummary{params: w.params, recv: w.recv}
	for _, wr := range w.writes {
		if wr.view.kind == refLocal {
			continue
		}
		if !w.exportableForm(wr.iv.lo) || !w.exportableForm(wr.iv.hi) {
			wr.iv = ivl{}
		}
		sum.writes = append(sum.writes, wr)
	}
	return sum
}

// exportableForm reports whether every symbol in f denotes a parameter,
// a receiver field, a parameter length, or arithmetic over those.
func (w *ownWalk) exportableForm(f *aform) bool {
	if f == nil {
		return false
	}
	ok := true
	for m := range f.t {
		if !w.exportableSym(m.x) || (m.y >= 0 && !w.exportableSym(m.y)) {
			ok = false
		}
	}
	return ok
}

func (w *ownWalk) exportableSym(s symID) bool {
	info := w.e.tab.syms[s]
	switch info.kind {
	case symObj, symField:
		if info.obj == nil {
			return false
		}
		if w.recv != nil && info.obj == w.recv {
			return true
		}
		for _, p := range w.params {
			if p != nil && info.obj == p {
				return true
			}
		}
		return false
	case symDiv, symMod:
		return w.exportableForm(info.a) && w.exportableForm(info.b)
	}
	return false
}

// obj resolves an identifier to its object (use or definition).
func (w *ownWalk) obj(id *ast.Ident) types.Object {
	if o := w.e.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return w.e.pkg.Info.Defs[id]
}

// localObj reports whether the object is declared inside the walked
// function (parameters and receiver included).
func (w *ownWalk) localObj(obj types.Object) bool {
	return obj != nil && obj.Pos() >= w.span[0] && obj.Pos() < w.span[1]
}

func (w *ownWalk) anon(nonneg bool) binding {
	return binding{f: aSym(w.e.tab.anonSym(nonneg)), nonneg: nonneg}
}

// evalInt computes the abstract value of an integer expression.
func (w *ownWalk) evalInt(e ast.Expr) binding {
	e = ast.Unparen(e)
	if tv, ok := w.e.pkg.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return binding{f: aConst(v)}
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.obj(x)
		if obj == nil {
			return w.anon(false)
		}
		if b, ok := w.scope.vars[obj]; ok {
			return b
		}
		if isIntType(obj.Type()) {
			b := binding{f: aSym(w.e.tab.objSym(obj))}
			w.scope.vars[obj] = b
			return b
		}
		return w.anon(false)
	case *ast.BinaryExpr:
		return w.evalBinary(x)
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			b := w.evalInt(x.X)
			if b.slack != 0 {
				return w.anon(false)
			}
			return binding{f: w.cx.scale(b.f, -1)}
		}
		if x.Op == token.ADD {
			return w.evalInt(x.X)
		}
		return w.anon(false)
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			base := w.obj(id)
			if base != nil && (base == w.recv || w.isParamObj(base)) {
				return binding{f: aSym(w.e.tab.fieldSym(base, x.Sel.Name))}
			}
		}
		return w.anon(false)
	case *ast.CallExpr:
		return w.evalCallInt(x)
	}
	return w.anon(false)
}

func (w *ownWalk) isParamObj(obj types.Object) bool {
	for _, p := range w.params {
		if p != nil && p == obj {
			return true
		}
	}
	return false
}

func (w *ownWalk) evalBinary(x *ast.BinaryExpr) binding {
	a, b := w.evalInt(x.X), w.evalInt(x.Y)
	switch x.Op {
	case token.ADD:
		if a.f == nil || b.f == nil {
			return binding{nonneg: w.bindingNonneg(a) && w.bindingNonneg(b)}
		}
		return binding{f: w.cx.add(a.f, b.f), slack: a.slack + b.slack}
	case token.SUB:
		if a.f == nil || b.f == nil || b.slack != 0 {
			return w.anon(false)
		}
		return binding{f: w.cx.sub(a.f, b.f), slack: a.slack}
	case token.MUL:
		nn := w.bindingNonneg(a) && w.bindingNonneg(b)
		if a.f == nil || b.f == nil || a.slack != 0 || b.slack != 0 {
			return binding{nonneg: nn}
		}
		f := w.cx.mul(a.f, b.f)
		if f == nil {
			return binding{nonneg: nn}
		}
		return binding{f: f}
	case token.QUO:
		nn := w.bindingNonneg(a) && w.bindingNonneg(b)
		if a.f == nil || b.f == nil || a.slack != 0 || b.slack != 0 {
			return binding{nonneg: nn}
		}
		return binding{f: w.cx.div(a.f, b.f)}
	case token.REM:
		nn := w.bindingNonneg(a) && w.bindingNonneg(b)
		if a.f == nil || b.f == nil || a.slack != 0 || b.slack != 0 {
			return binding{nonneg: nn}
		}
		return binding{f: w.cx.mod(a.f, b.f)}
	}
	return w.anon(false)
}

// evalCallInt models len (exactly) and integer conversions; every other
// call yields an unknown.
func (w *ownWalk) evalCallInt(call *ast.CallExpr) binding {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := w.e.pkg.Info.Uses[id].(*types.Builtin); builtin && len(call.Args) >= 1 {
			switch id.Name {
			case "len":
				return binding{f: w.lenForm(call.Args[0]), nonneg: true}
			case "cap":
				return w.anon(true)
			}
		}
	}
	if tv, ok := w.e.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.evalInt(call.Args[0]) // integer conversion keeps the value
	}
	return w.anon(false)
}

// lenForm returns the symbolic length of a slice expression.
func (w *ownWalk) lenForm(e ast.Expr) *aform {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.obj(x)
		if obj == nil {
			return aSym(w.e.tab.anonSym(true))
		}
		if v, ok := w.scope.views[obj]; ok && v.ln != nil {
			return v.ln
		}
		if isSliceType(obj.Type()) {
			return aSym(w.e.lenSym(obj))
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			base := w.obj(id)
			if base != nil && (base == w.recv || w.isParamObj(base)) {
				return aSym(w.e.tab.intern("len%"+objKey(base)+"."+x.Sel.Name,
					symInfo{kind: symField, obj: base, field: x.Sel.Name + ".$len", nonneg: true}))
			}
		}
	}
	return aSym(w.e.tab.anonSym(true))
}

// evalView resolves a slice-typed expression to its root and window.
func (w *ownWalk) evalView(e ast.Expr) ownView {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.obj(x)
		if obj == nil {
			return ownView{kind: refShared}
		}
		if v, ok := w.scope.views[obj]; ok {
			return v
		}
		if w.localObj(obj) {
			return ownView{kind: refLocal}
		}
		return ownView{kind: refShared}
	case *ast.SliceExpr:
		base := w.evalView(x.X)
		lo := binding{f: aConst(0)}
		if x.Low != nil {
			lo = w.evalInt(x.Low)
		}
		out := base
		out.off, out.ln = nil, nil
		if lo.slack == 0 && lo.f != nil && base.off != nil {
			out.off = w.cx.add(base.off, lo.f)
			if x.High != nil {
				hi := w.evalInt(x.High)
				if hi.slack == 0 && hi.f != nil {
					out.ln = w.cx.sub(hi.f, lo.f)
				}
			} else if base.ln != nil {
				out.ln = w.cx.sub(base.ln, lo.f)
			}
		}
		return out
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			base := w.obj(id)
			if base == nil {
				return ownView{kind: refShared}
			}
			if base == w.recv {
				return ownView{kind: refRecvField, owner: base, field: x.Sel.Name, off: aConst(0), ln: w.lenForm(x)}
			}
			if w.localObj(base) && !w.isParamObj(base) {
				return ownView{kind: refLocal}
			}
		}
		return ownView{kind: refShared}
	case *ast.CallExpr:
		if tv, ok := w.e.pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return w.evalView(x.Args[0])
		}
		// Call results are fresh values as far as this function's own
		// write obligations go; the callee's writes were charged at the
		// call site.
		return ownView{kind: refLocal}
	case *ast.CompositeLit:
		return ownView{kind: refLocal}
	}
	return ownView{kind: refShared}
}

// record charges a write of [iv) against the view's root, canonicalizing
// under the facts in force at the write site.
func (w *ownWalk) record(v ownView, iv ivl, pos token.Pos, why string) {
	if v.kind == refLocal {
		return
	}
	if iv.lo != nil {
		iv.lo = w.cx.canon(iv.lo.clone())
	}
	if iv.hi != nil {
		iv.hi = w.cx.canon(iv.hi.clone())
	}
	if iv.lo == nil || iv.hi == nil {
		iv = ivl{}
	}
	rootView := ownView{kind: v.kind, param: v.param, owner: v.owner, field: v.field}
	w.writes = append(w.writes, writeRec{view: rootView, iv: iv, pos: pos, why: why})
}

// recordIndexWrite charges y[i] = ... (and y[i] op= ...).
func (w *ownWalk) recordIndexWrite(ix *ast.IndexExpr) {
	v := w.evalView(ix.X)
	if v.kind == refLocal {
		return
	}
	iv := ivl{}
	idx := w.evalInt(ix.Index)
	if v.off != nil && idx.f != nil {
		iv.lo = w.cx.add(v.off, idx.f)
		iv.hi = w.cx.add(iv.lo, aConst(idx.slack+1))
	}
	w.record(v, iv, ix.Pos(), "indexed write")
}

// exec runs one statement, returning true when control provably leaves
// the enclosing block (return, panic, break, continue, goto).
func (w *ownWalk) exec(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.List {
			if w.exec(st) {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		w.callEffects(x)
		return w.execAssign(x)
	case *ast.IncDecStmt:
		w.callEffects(x)
		switch lhs := ast.Unparen(x.X).(type) {
		case *ast.Ident:
			obj := w.obj(lhs)
			if obj == nil {
				return false
			}
			b := w.evalInt(lhs)
			delta := int64(1)
			if x.Tok == token.DEC {
				delta = -1
			}
			if b.f != nil {
				b.f = w.cx.add(b.f, aConst(delta))
			}
			b.nonneg = false
			w.scope.vars[obj] = b
		case *ast.IndexExpr:
			w.recordIndexWrite(lhs)
		case *ast.SelectorExpr:
			w.recordFieldWrite(lhs)
		case *ast.StarExpr:
			w.record(ownView{kind: refShared}, ivl{}, lhs.Pos(), "pointer-target increment")
		}
		return false
	case *ast.DeclStmt:
		w.callEffects(x)
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := w.e.pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					switch {
					case len(vs.Values) > i:
						w.bindValue(obj, vs.Values[i])
					case isIntType(obj.Type()):
						w.scope.vars[obj] = binding{f: aConst(0)} // zero value
					case isSliceType(obj.Type()):
						w.scope.views[obj] = ownView{kind: refLocal} // nil slice
					}
				}
			}
		}
		return false
	case *ast.ExprStmt:
		w.callEffects(x)
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && w.isPanic(call) {
			return true
		}
		return false
	case *ast.SendStmt:
		w.callEffects(x)
		return false
	case *ast.ReturnStmt:
		w.callEffects(x)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		return w.execIf(x)
	case *ast.ForStmt:
		w.execFor(x)
		return false
	case *ast.RangeStmt:
		w.execRange(x)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.execBranchy(x)
		return false
	case *ast.DeferStmt:
		w.execCall(x.Call) // runs eventually: charge its effects now
		return false
	case *ast.GoStmt:
		// Spawned goroutines are the shared-write goroutine scan's
		// domain (rule_sharedwrite.go), not part of this function's own
		// sequential effects.
		return false
	case *ast.LabeledStmt:
		return w.exec(x.Stmt)
	}
	return false
}

// bindValue assigns the abstract value of rhs to obj.
func (w *ownWalk) bindValue(obj types.Object, rhs ast.Expr) {
	if isSliceType(obj.Type()) {
		w.scope.views[obj] = w.evalView(rhs)
		delete(w.scope.vars, obj)
		return
	}
	if isIntType(obj.Type()) {
		w.scope.vars[obj] = w.evalInt(rhs)
	}
}

func (w *ownWalk) execAssign(x *ast.AssignStmt) bool {
	if len(x.Lhs) != len(x.Rhs) {
		// Multi-value call or comma-ok: havoc every target.
		for _, lhs := range x.Lhs {
			w.havocTarget(lhs)
		}
		return false
	}
	for i, lhs := range x.Lhs {
		w.assignOne(lhs, x.Rhs[i], x.Tok)
	}
	return false
}

func (w *ownWalk) assignOne(lhs, rhs ast.Expr, tok token.Token) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := w.obj(l)
		if obj == nil {
			return
		}
		if !w.localObj(obj) {
			// Package-level or captured variable: a write to state that
			// outlives (or is shared with) this frame.
			w.record(ownView{kind: refShared}, ivl{}, l.Pos(), "assignment to non-local variable "+l.Name)
		}
		if isSliceType(obj.Type()) {
			if tok == token.ASSIGN || tok == token.DEFINE {
				w.scope.views[obj] = w.evalView(rhs)
			} else {
				w.scope.views[obj] = ownView{kind: refShared}
			}
			delete(w.scope.vars, obj)
			return
		}
		if !isIntType(obj.Type()) {
			return
		}
		nb := w.evalInt(rhs)
		switch tok {
		case token.ASSIGN, token.DEFINE:
		case token.ADD_ASSIGN:
			cur := w.evalInt(l)
			if cur.f != nil && nb.f != nil {
				nb = binding{f: w.cx.add(cur.f, nb.f), slack: cur.slack + nb.slack}
			} else {
				nb = binding{nonneg: w.bindingNonneg(cur) && w.bindingNonneg(nb)}
			}
		case token.SUB_ASSIGN:
			cur := w.evalInt(l)
			if cur.f != nil && nb.f != nil && nb.slack == 0 {
				nb = binding{f: w.cx.sub(cur.f, nb.f), slack: cur.slack}
			} else {
				nb = w.anon(false)
			}
		default:
			nb = w.anon(false)
		}
		w.scope.vars[obj] = nb
	case *ast.IndexExpr:
		if _, isMap := w.e.pkg.Info.Types[l.X].Type.Underlying().(*types.Map); isMap {
			v := w.evalView(l.X)
			if v.kind != refLocal {
				w.record(v, ivl{}, l.Pos(), "map write")
			}
			return
		}
		w.recordIndexWrite(l)
	case *ast.SelectorExpr:
		w.recordFieldWrite(l)
	case *ast.StarExpr:
		w.record(ownView{kind: refShared}, ivl{}, l.Pos(), "write through pointer")
	}
}

// recordFieldWrite charges x.f = v: private for local structs, a shared
// write for receiver fields, parameters, and everything else.
func (w *ownWalk) recordFieldWrite(sel *ast.SelectorExpr) {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		base := w.obj(id)
		if base != nil {
			if base == w.recv {
				w.record(ownView{kind: refRecvField, owner: base, field: sel.Sel.Name}, ivl{}, sel.Pos(), "receiver field write")
				return
			}
			if w.localObj(base) && !w.isParamObj(base) {
				return // field of a local value: private
			}
		}
	}
	w.record(ownView{kind: refShared}, ivl{}, sel.Pos(), "field write to shared value")
}

func (w *ownWalk) havocTarget(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := w.obj(l)
		if obj == nil {
			return
		}
		if isSliceType(obj.Type()) {
			w.scope.views[obj] = ownView{kind: refLocal}
			return
		}
		if isIntType(obj.Type()) {
			w.scope.vars[obj] = w.anon(false)
		}
	case *ast.IndexExpr:
		w.recordIndexWrite(l)
	case *ast.SelectorExpr:
		w.recordFieldWrite(l)
	case *ast.StarExpr:
		w.record(ownView{kind: refShared}, ivl{}, l.Pos(), "write through pointer")
	}
}

func (w *ownWalk) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := w.e.pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}

// isCheckGuard matches the check.Enabled debug gate.
func (w *ownWalk) isCheckGuard(cond ast.Expr) bool {
	return isEnabledGuard(w.e.pkg, cond, w.e.checkPath)
}

// execIf walks both branches with the condition's facts in force, then
// joins the environments. A terminating then-branch leaves the negated
// condition as a persistent fact (the guard-return idiom).
func (w *ownWalk) execIf(x *ast.IfStmt) bool {
	if x.Init != nil {
		w.exec(x.Init)
	}
	if w.isCheckGuard(x.Cond) {
		// The debug-sanitizer gate: its block is the runtime checker's
		// own bookkeeping, exempt by design. The else branch (if any)
		// keeps normal treatment.
		if x.Else != nil {
			return w.exec(x.Else)
		}
		return false
	}
	preFacts := w.cx.facts
	preScope := w.scope

	w.cx.facts = preFacts.clone()
	w.applyCond(x.Cond, true)
	thenFacts := w.cx.facts
	w.scope = preScope.clone()
	thenTerm := w.exec(x.Body)
	thenScope := w.scope

	// The negated condition must be evaluated in the PRE-branch scope:
	// the then-branch may have rebound the very variables the condition
	// mentions.
	w.scope = preScope.clone()
	w.cx.facts = preFacts.clone()
	w.applyCond(x.Cond, false)
	elseFacts := w.cx.facts
	elseTerm := false
	if x.Else != nil {
		elseTerm = w.exec(x.Else)
	}
	elseScope := w.scope

	switch {
	case thenTerm && elseTerm:
		w.cx.facts = preFacts
		w.scope = preScope
		return true
	case thenTerm:
		w.cx.facts = elseFacts
		w.scope = elseScope
	case elseTerm:
		w.cx.facts = thenFacts
		w.scope = thenScope
	default:
		// Restore the pre-branch facts first: joinScopes records lower
		// bounds for its fresh join symbols into the live fact set, and
		// those must survive the join.
		w.cx.facts = preFacts
		w.scope = w.joinScopes(thenScope, thenFacts, elseScope, elseFacts)
	}
	return false
}

// joinScopes merges two branch environments. Bindings that differ by a
// provable constant join with slack (the clamp idiom `u := q; if w < r
// { u++ }` yields u in [q, q+1]); anything else rebinds to a fresh
// unknown that keeps whatever small lower bounds both branches prove.
func (w *ownWalk) joinScopes(a *ownScope, fa *factSet, b *ownScope, fb *factSet) *ownScope {
	out := &ownScope{vars: make(map[types.Object]binding), views: make(map[types.Object]ownView)}
	for obj, va := range a.views {
		if vb, ok := b.views[obj]; ok && sameRoot(va, vb) && w.sameWindow(va, vb) {
			out.views[obj] = va
		} else if ok {
			root := va
			root.off, root.ln = nil, nil
			if !sameRoot(va, vb) {
				root = ownView{kind: refShared}
			}
			out.views[obj] = root
		}
	}
	cxA := &actx{tab: w.e.tab, facts: fa}
	cxB := &actx{tab: w.e.tab, facts: fb}
	for obj, ba := range a.vars {
		bb, ok := b.vars[obj]
		if !ok {
			continue
		}
		if joined, ok := joinBindings(w.cx, ba, bb); ok {
			out.vars[obj] = joined
			continue
		}
		nn := (ba.nonneg || (ba.f != nil && cxA.provableNonneg(ba.f))) &&
			(bb.nonneg || (bb.f != nil && cxB.provableNonneg(bb.f)))
		fresh := w.anon(nn)
		for _, k := range []int64{1, 2} {
			if ba.f != nil && bb.f != nil &&
				cxA.provableNonneg(cxA.sub(ba.f, aConst(k))) &&
				cxB.provableNonneg(cxB.sub(bb.f, aConst(k))) {
				w.cx.addLB(fresh.f, k)
			}
		}
		out.vars[obj] = fresh
	}
	return out
}

func sameRoot(a, b ownView) bool {
	return a.kind == b.kind && a.param == b.param && a.owner == b.owner && a.field == b.field
}

func (w *ownWalk) sameWindow(a, b ownView) bool {
	if a.off == nil || b.off == nil || !w.cx.equal(a.off, b.off) {
		return false
	}
	if a.ln == nil && b.ln == nil {
		return true
	}
	return a.ln != nil && b.ln != nil && w.cx.equal(a.ln, b.ln)
}

// joinBindings merges values differing by a provable constant offset.
func joinBindings(cx *actx, a, b binding) (binding, bool) {
	if a.f == nil || b.f == nil {
		if a.f == nil && b.f == nil {
			return binding{nonneg: a.nonneg && b.nonneg}, true
		}
		return binding{}, false
	}
	d := cx.sub(b.f, a.f)
	if d == nil || !d.isConst() {
		return binding{}, false
	}
	if d.c >= 0 {
		return binding{f: a.f, slack: maxI64(a.slack, d.c+b.slack)}, true
	}
	return binding{f: b.f, slack: maxI64(b.slack, -d.c+a.slack)}, true
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// applyCond records the facts implied by observing cond == val.
func (w *ownWalk) applyCond(cond ast.Expr, val bool) {
	cond = ast.Unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.applyCond(x.X, !val)
		}
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if val {
				w.applyCond(x.X, true)
				w.applyCond(x.Y, true)
			}
			return
		case token.LOR:
			if !val {
				w.applyCond(x.X, false)
				w.applyCond(x.Y, false)
			}
			return
		}
		if !isIntType(w.e.pkg.Info.Types[x.X].Type) {
			return
		}
		w.applyCompare(x, val)
	}
}

// applyCompare turns an integer comparison into lower-bound, equality
// and divisibility facts.
func (w *ownWalk) applyCompare(x *ast.BinaryExpr, val bool) {
	op := x.Op
	if !val {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		}
	}
	a, b := w.evalInt(x.X), w.evalInt(x.Y)
	if a.f == nil || b.f == nil {
		return
	}
	// Values: X in [a.f, a.f+a.slack], Y likewise. An observed X < Y
	// guarantees (b.f + b.slack) - a.f >= 1: the largest Y dominates the
	// smallest X's successor.
	switch op {
	case token.LSS: // X < Y  =>  Y_max - X_min >= 1
		w.cx.addLB(w.cx.sub(w.cx.add(b.f, aConst(b.slack)), a.f), 1)
	case token.LEQ:
		w.cx.addLB(w.cx.sub(w.cx.add(b.f, aConst(b.slack)), a.f), 0)
	case token.GTR:
		w.cx.addLB(w.cx.sub(w.cx.add(a.f, aConst(a.slack)), b.f), 1)
	case token.GEQ:
		w.cx.addLB(w.cx.sub(w.cx.add(a.f, aConst(a.slack)), b.f), 0)
	case token.EQL:
		if a.slack != 0 || b.slack != 0 {
			return
		}
		// x % y == 0 is the alignment guard: record divisibility.
		if rem, ok := ast.Unparen(x.X).(*ast.BinaryExpr); ok && rem.Op == token.REM && b.f.isZero() {
			ra, rb := w.evalInt(rem.X), w.evalInt(rem.Y)
			if ra.slack == 0 && rb.slack == 0 {
				w.cx.addModZero(ra.f, rb.f)
			}
		}
		if s, ok := soleSym(a.f); ok {
			w.cx.addEq(s, b.f)
		} else if s, ok := soleSym(b.f); ok {
			w.cx.addEq(s, a.f)
		}
		w.cx.addLB(w.cx.sub(a.f, b.f), 0)
		w.cx.addLB(w.cx.sub(b.f, a.f), 0)
	}
}

// soleSym matches a form that is exactly one symbol.
func soleSym(f *aform) (symID, bool) {
	if f == nil || f.c != 0 || len(f.t) != 1 {
		return 0, false
	}
	for m, c := range f.t {
		if m.y < 0 && c == 1 {
			return m.x, true
		}
	}
	return 0, false
}

// assignedOuter collects objects assigned anywhere under n that were
// declared outside n (loop-carried state; havocked around loop bodies).
func (w *ownWalk) assignedOuter(n ast.Node) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := w.e.pkg.Info.Uses[id] // Uses only: a Defs hit is scoped inside n
		if obj == nil || seen[obj] {
			return
		}
		if obj.Pos() >= n.Pos() && obj.Pos() < n.End() {
			return
		}
		seen[obj] = true
		out = append(out, obj)
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(x.X)
		}
		return true
	})
	return out
}

func (w *ownWalk) havocObjs(objs []types.Object) {
	for _, obj := range objs {
		if isSliceType(obj.Type()) {
			if v, ok := w.scope.views[obj]; ok {
				v.off, v.ln = nil, nil
				w.scope.views[obj] = v
			}
			continue
		}
		if isIntType(obj.Type()) {
			w.scope.vars[obj] = w.anon(false)
		}
	}
}

// execFor walks a for statement. The canonical counting loop
// `for i := L; i < H; i++` gets a loop symbol with bounds [L, H) and its
// body's writes projected through projectLoop at exit; anything else is
// walked once with loop-carried variables havocked (sound: havocked
// symbols are never exportable, so affected writes widen to top).
func (w *ownWalk) execFor(x *ast.ForStmt) {
	if w.onLoop != nil {
		w.onLoop(x, w)
	}
	carried := w.assignedOuter(x.Body)
	w.havocObjs(carried)
	defer w.havocObjs(carried)

	ivar, loF, hiF := w.countingLoop(x)
	preFacts := w.cx.facts
	w.cx.facts = preFacts.clone()
	defer func() { w.cx.facts = preFacts }()

	mark := len(w.writes)
	var ls symID = -1
	if ivar != nil {
		ls = w.e.tab.loopSym(loF, hiF, w.cx.provableNonneg(loF))
		w.scope.vars[ivar] = binding{f: aSym(ls)}
		w.cx.addLB(w.cx.sub(aSym(ls), loF), 0)
		if hiF != nil {
			w.cx.addLB(w.cx.sub(w.cx.sub(hiF, aConst(1)), aSym(ls)), 0)
		}
	} else {
		if x.Init != nil {
			w.exec(x.Init)
		}
		if x.Cond != nil {
			w.callEffects(x.Cond)
			w.applyCond(x.Cond, true)
		}
	}
	w.exec(x.Body)
	if ivar != nil {
		w.projectWrites(mark, ls)
		delete(w.scope.vars, ivar)
	}
}

// countingLoop matches `for i := L; i < H; i++` (also `<=`, bumping the
// bound), returning the induction object and symbolic [L, H) bounds.
func (w *ownWalk) countingLoop(x *ast.ForStmt) (types.Object, *aform, *aform) {
	init, ok := x.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, nil, nil
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil, nil
	}
	obj := w.e.pkg.Info.Defs[id]
	if obj == nil || !isIntType(obj.Type()) {
		return nil, nil, nil
	}
	inc, ok := x.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC {
		return nil, nil, nil
	}
	if pid, ok := ast.Unparen(inc.X).(*ast.Ident); !ok || w.obj(pid) != obj {
		return nil, nil, nil
	}
	cond, ok := ast.Unparen(x.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return nil, nil, nil
	}
	if cid, ok := ast.Unparen(cond.X).(*ast.Ident); !ok || w.obj(cid) != obj {
		return nil, nil, nil
	}
	lo := w.evalInt(init.Rhs[0])
	if lo.slack != 0 || lo.f == nil {
		return nil, nil, nil
	}
	w.callEffects(cond.Y)
	hi := w.evalInt(cond.Y)
	if hi.slack != 0 || hi.f == nil {
		return obj, lo.f, nil
	}
	hiF := hi.f
	if cond.Op == token.LEQ {
		hiF = w.cx.add(hiF, aConst(1))
	}
	return obj, lo.f, hiF
}

// projectWrites eliminates a loop symbol from every write recorded since
// mark, replacing each interval with its union over the iteration space.
func (w *ownWalk) projectWrites(mark int, s symID) {
	if s < 0 {
		return
	}
	for i := mark; i < len(w.writes); i++ {
		iv := w.writes[i].iv
		if iv.lo == nil || (!iv.lo.mentions(s) && !iv.hi.mentions(s)) {
			continue
		}
		w.writes[i].iv = projectLoop(w.cx, iv, s)
	}
}

// execRange walks a range statement. Ranges over slices and integers get
// a loop symbol over [0, len) for the key; map, channel and other ranges
// treat the bindings as unknowns.
func (w *ownWalk) execRange(x *ast.RangeStmt) {
	w.callEffects(x.X)
	carried := w.assignedOuter(x.Body)
	w.havocObjs(carried)
	defer w.havocObjs(carried)

	preFacts := w.cx.facts
	w.cx.facts = preFacts.clone()
	defer func() { w.cx.facts = preFacts }()

	var ls symID = -1
	var keyObj types.Object
	t := w.e.pkg.Info.Types[x.X].Type
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Basic: // basic: range over int
			var n *aform
			if isIntType(t) {
				b := w.evalInt(x.X)
				if b.slack == 0 {
					n = b.f
				}
			} else {
				n = w.lenForm(x.X)
			}
			if id, ok := x.Key.(*ast.Ident); ok && id.Name != "_" {
				keyObj = w.e.pkg.Info.Defs[id]
				if keyObj == nil {
					keyObj = w.e.pkg.Info.Uses[id]
				}
			}
			if keyObj != nil {
				ls = w.e.tab.loopSym(aConst(0), n, true)
				w.scope.vars[keyObj] = binding{f: aSym(ls)}
				w.cx.addLB(aSym(ls), 0)
				if n != nil {
					w.cx.addLB(w.cx.sub(w.cx.sub(n, aConst(1)), aSym(ls)), 0)
				}
			}
		}
	}
	if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := w.e.pkg.Info.Defs[id]; obj != nil {
			if isSliceType(obj.Type()) {
				w.scope.views[obj] = ownView{kind: refShared} // element aliases the ranged value
			} else if isIntType(obj.Type()) {
				w.scope.vars[obj] = w.anon(false)
			}
		}
	}
	mark := len(w.writes)
	w.exec(x.Body)
	if keyObj != nil {
		w.projectWrites(mark, ls)
		delete(w.scope.vars, keyObj)
	}
}

// execBranchy walks switch/type-switch/select conservatively: every case
// body runs under cloned facts, then loop-carried state havocs.
func (w *ownWalk) execBranchy(s ast.Stmt) {
	carried := w.assignedOuter(s)
	preFacts := w.cx.facts
	preScope := w.scope
	var bodies []*ast.BlockStmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.exec(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.callEffects(cc.Comm)
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		}
	}
	for _, b := range bodies {
		w.cx.facts = preFacts.clone()
		w.scope = preScope.clone()
		w.exec(b)
	}
	w.cx.facts = preFacts
	w.scope = preScope
	w.havocObjs(carried)
}

// callEffects charges the write effects of every call syntactically
// nested in n (excluding closure bodies, which execute elsewhere).
func (w *ownWalk) callEffects(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.execCall(x)
		}
		return true
	})
}

// execCall charges one call's effects against the current environment.
func (w *ownWalk) execCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := w.e.pkg.Info.Uses[id].(*types.Builtin); builtin {
			w.execBuiltin(id.Name, call)
			return
		}
	}
	if tv, ok := w.e.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	obj := calleeObject(w.e.pkg, call)
	fn, _ := obj.(*types.Func)
	if fn != nil {
		if node, ok := w.e.ix.objToUnit[obj]; ok {
			if decl, ok := node.(*ast.FuncDecl); ok {
				w.applySummary(call, w.e.summarizeDecl(decl))
				return
			}
		}
		if fn.Name() == "MulVecRange" {
			if sig, ok := fn.Type().(*types.Signature); ok && isContractSig(sig) {
				w.applyContractCall(call)
				return
			}
		}
	}
	// Unknown callee (another package, an interface method, a func
	// value): assume it writes every tracked slice it can reach.
	w.poisonArgs(call)
}

func (w *ownWalk) execBuiltin(name string, call *ast.CallExpr) {
	switch name {
	case "copy":
		if len(call.Args) != 2 {
			return
		}
		dst := w.evalView(call.Args[0])
		if dst.kind == refLocal {
			return
		}
		iv := ivl{}
		if dst.off != nil && dst.ln != nil {
			iv.lo = dst.off
			iv.hi = w.cx.add(dst.off, dst.ln)
		}
		w.record(dst, iv, call.Pos(), "copy into view")
	case "append":
		if len(call.Args) == 0 {
			return
		}
		v := w.evalView(call.Args[0])
		if v.kind != refLocal {
			w.record(v, ivl{}, call.Pos(), "append to tracked slice")
		}
	case "clear":
		if len(call.Args) == 1 {
			v := w.evalView(call.Args[0])
			if v.kind != refLocal {
				w.record(v, ivl{}, call.Pos(), "clear of tracked slice")
			}
		}
	}
}

// isContractSig matches func(x, y []float64, lo, hi int).
func isContractSig(sig *types.Signature) bool {
	p := sig.Params()
	if p.Len() != 4 || sig.Results().Len() != 0 {
		return false
	}
	f64 := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Float64
	}
	return f64(p.At(0).Type()) && f64(p.At(1).Type()) &&
		isIntType(p.At(2).Type()) && isIntType(p.At(3).Type())
}

// applyContractCall charges a MulVecRange interface call with the
// contract's effect: writes args[1] exactly on [args[2], args[3]).
func (w *ownWalk) applyContractCall(call *ast.CallExpr) {
	if len(call.Args) != 4 {
		return
	}
	y := w.evalView(call.Args[1])
	if y.kind == refLocal {
		return
	}
	lo, hi := w.evalInt(call.Args[2]), w.evalInt(call.Args[3])
	iv := ivl{}
	if y.off != nil && lo.f != nil && hi.f != nil && lo.slack == 0 && hi.slack == 0 {
		iv.lo = w.cx.add(y.off, lo.f)
		iv.hi = w.cx.add(y.off, hi.f)
	}
	w.record(y, iv, call.Pos(), "kernel contract call")
}

// poisonArgs charges a top write against every tracked slice argument of
// an unresolvable call.
func (w *ownWalk) poisonArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		t := w.e.pkg.Info.Types[arg].Type
		if t == nil || !isSliceType(t) {
			continue
		}
		v := w.evalView(arg)
		if v.kind == refLocal {
			continue
		}
		w.record(v, ivl{}, call.Pos(), "slice passed to unresolved call")
	}
}

// applySummary instantiates a same-package callee's write summary at the
// call site, substituting argument forms for parameter symbols.
func (w *ownWalk) applySummary(call *ast.CallExpr, sum *fnSummary) {
	if len(sum.writes) == 0 {
		return
	}
	// Receiver mapping: callee recv fields translate only when the call
	// receiver is this function's own receiver identifier.
	var callerRecv types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if o := w.obj(id); o != nil && o == w.recv {
				callerRecv = o
			}
		}
	}
	argForm := make(map[types.Object]*aform)
	for i, p := range sum.params {
		if p == nil || i >= len(call.Args) || !isIntType(p.Type()) {
			continue
		}
		b := w.evalInt(call.Args[i])
		if b.slack == 0 && b.f != nil {
			argForm[p] = b.f
		}
	}
	mapSym := func(s symID) *aform {
		info := w.e.tab.syms[s]
		if info.kind != symObj && info.kind != symField {
			return nil
		}
		if info.kind == symObj {
			return argForm[info.obj]
		}
		if sum.recv != nil && info.obj == sum.recv && callerRecv != nil {
			if info.field == "$len" || len(info.field) > 5 && info.field[len(info.field)-5:] == ".$len" {
				return aSym(w.e.tab.intern("len%"+objKey(callerRecv)+"."+info.field,
					symInfo{kind: symField, obj: callerRecv, field: info.field, nonneg: true}))
			}
			return aSym(w.e.tab.fieldSym(callerRecv, info.field))
		}
		if w.isSummaryParam(sum, info.obj) {
			// Length (or field) of a parameter slice: translate through
			// the corresponding argument when it is a whole identifier.
			i := indexOfParam(sum, info.obj)
			if i >= 0 && i < len(call.Args) {
				if info.field == "$len" {
					return w.lenForm(call.Args[i])
				}
			}
		}
		return nil
	}
	// keyed per-call so two identical fields intern to one symbol
	for _, wr := range sum.writes {
		w.applyOneWrite(call, wr, mapSym, callerRecv)
	}
}

func (w *ownWalk) isSummaryParam(sum *fnSummary, obj types.Object) bool {
	for _, p := range sum.params {
		if p != nil && p == obj {
			return true
		}
	}
	return false
}

func indexOfParam(sum *fnSummary, obj types.Object) int {
	for i, p := range sum.params {
		if p != nil && p == obj {
			return i
		}
	}
	return -1
}

func (w *ownWalk) applyOneWrite(call *ast.CallExpr, wr writeRec, mapSym func(symID) *aform, callerRecv types.Object) {
	switch wr.view.kind {
	case refParam:
		if wr.view.param >= len(call.Args) {
			return
		}
		arg := w.evalView(call.Args[wr.view.param])
		if arg.kind == refLocal {
			return
		}
		iv := ivl{}
		if wr.iv.lo != nil && arg.off != nil {
			lo := w.rewriteForm(wr.iv.lo, mapSym)
			hi := w.rewriteForm(wr.iv.hi, mapSym)
			if lo != nil && hi != nil {
				iv.lo = w.cx.add(arg.off, lo)
				iv.hi = w.cx.add(arg.off, hi)
			}
		} else if wr.iv.lo == nil && arg.off != nil && arg.ln != nil {
			// Callee writes somewhere in its whole parameter: within the
			// caller that is the view's extent.
			iv.lo = arg.off
			iv.hi = w.cx.add(arg.off, arg.ln)
		}
		w.record(arg, iv, call.Pos(), wr.why)
	case refRecvField:
		if callerRecv != nil {
			w.record(ownView{kind: refRecvField, owner: callerRecv, field: wr.view.field}, ivl{}, call.Pos(), wr.why)
			return
		}
		w.record(ownView{kind: refShared}, ivl{}, call.Pos(), wr.why)
	default:
		w.record(ownView{kind: refShared}, ivl{}, call.Pos(), wr.why)
	}
}

// rewriteForm translates a callee-vocabulary form into the caller's,
// rebuilding derived quotient/remainder symbols so the caller's
// divisibility facts can collapse them (the (lo/b)*b -> lo step that
// proves blocked kernels).
func (w *ownWalk) rewriteForm(f *aform, mapSym func(symID) *aform) *aform {
	if f == nil {
		return nil
	}
	var resolve func(s symID) *aform
	resolve = func(s symID) *aform {
		if g := mapSym(s); g != nil {
			return g
		}
		info := w.e.tab.syms[s]
		if info.kind == symDiv || info.kind == symMod {
			a := w.rewriteForm(info.a, mapSym)
			b := w.rewriteForm(info.b, mapSym)
			if a == nil || b == nil {
				return nil
			}
			if info.kind == symDiv {
				return w.cx.div(a, b)
			}
			return w.cx.mod(a, b)
		}
		return nil
	}
	out := aConst(f.c)
	for m, c := range f.t {
		xf := resolve(m.x)
		if xf == nil {
			return nil
		}
		term := xf
		if m.y >= 0 {
			yf := resolve(m.y)
			if yf == nil {
				return nil
			}
			term = w.cx.mul(xf, yf)
			if term == nil {
				return nil
			}
		}
		out = w.cx.addRaw(out, w.cx.scale(term, c))
		if out == nil {
			return nil
		}
	}
	return w.cx.normalize(out)
}
