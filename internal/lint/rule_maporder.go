package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder enforces determinism in the coarsening pipeline: ranging over
// a map while writing output slices or matrices makes the result depend
// on Go's randomized map iteration order, so two runs of the same solve
// produce different coarse grids, different operator orderings and
// different residual histories. The rule flags, inside the configured
// packages, every `range` over a map whose body indexes into or appends
// to a slice/array variable declared outside the loop body — the outputs
// that survive the loop. The sanctioned fix is sortutil.Keys /
// sortutil.KeysInto: ranging the sorted key slice is order-deterministic
// and passes this rule by construction. Map ranges that only read, or
// that fold into order-insensitive accumulators, are left alone.
type MapOrder struct {
	// Packages is the package set whose determinism the rule protects
	// (default: the coarsening pipeline — core, graph, topo, delaunay).
	Packages []string
}

// Name implements Rule.
func (MapOrder) Name() string { return "map-order" }

// DeterministicPackages is the default package set for MapOrder: the
// serial coarsening pipeline, whose outputs seed every parallel run and
// must be bitwise reproducible.
func DeterministicPackages() []string {
	return []string{
		"prometheus/internal/core",
		"prometheus/internal/graph",
		"prometheus/internal/topo",
		"prometheus/internal/delaunay",
	}
}

// Check implements Rule.
func (r MapOrder) Check(pkg *Package) []Issue {
	pkgs := r.Packages
	if pkgs == nil {
		pkgs = DeterministicPackages()
	}
	if !pathInSet(pkg.Path, pkgs) {
		return nil
	}
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			out = append(out, r.checkBody(pkg, rng)...)
			return true
		})
	}
	return out
}

// checkBody flags order-dependent writes inside one map-range body:
// indexed assignments into, and appends onto, slice/array variables that
// outlive the loop.
func (r MapOrder) checkBody(pkg *Package, rng *ast.RangeStmt) []Issue {
	var out []Issue
	body := rng.Body
	outlives := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < body.Pos() || obj.Pos() > body.End())
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range asg.Lhs {
			// dst[i] = ... where dst is an outside slice/array.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				obj, name := rootObject(pkg, ix.X)
				if !outlives(obj) || !sliceOrArray(pkg.Info.Types[ix.X].Type) {
					continue
				}
				out = append(out, issue(pkg, asg, r.Name(), Error,
					"map iteration order leaks into %s; range over sortutil.Keys of the map instead", name))
				continue
			}
			// dst = append(dst, ...) where dst is an outside slice.
			obj, name := rootObject(pkg, lhs)
			if !outlives(obj) || i >= len(asg.Rhs) {
				continue
			}
			call, ok := ast.Unparen(asg.Rhs[i]).(*ast.CallExpr)
			if !ok || !isAppendCall(pkg, call) {
				continue
			}
			if !sliceOrArray(pkg.Info.Types[lhs].Type) {
				continue
			}
			out = append(out, issue(pkg, asg, r.Name(), Error,
				"append into %s under map iteration makes its element order nondeterministic; range over sortutil.Keys of the map instead", name))
		}
		return true
	})
	return out
}

// rootObject resolves the base variable of an lvalue expression,
// unwrapping indexing and field selection, and returns it with its
// spelled name.
func rootObject(pkg *Package, e ast.Expr) (types.Object, string) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// m.Field: attribute writes to the selected field's root.
			if obj := pkg.Info.Uses[x.Sel]; obj != nil {
				return obj, x.Sel.Name
			}
			e = x.X
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			return obj, x.Name
		default:
			return nil, ""
		}
	}
}

// sliceOrArray reports whether the type is a slice or array (the
// order-sensitive output shapes; map-into-map writes commute).
func sliceOrArray(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// isAppendCall reports the append builtin.
func isAppendCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}
