package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AccumulationWidth flags reductions carried in float32. A blocked f32
// SpMV or dot product loses accuracy not in the stored operands but in
// the accumulator: summing n terms in f32 costs O(n·eps32) while f64
// accumulation over f32 operands keeps the error at the storage level.
// The mixed-precision kernels therefore widen each operand (la.W64) and
// accumulate in float64; an `s += x*y` with an f32-typed s inside a loop
// defeats that design silently. The rule reports:
//
//   - any float32-typed `s += e`, `s -= e`, or self-referential
//     `s = s + e` inside a for/range loop body;
//   - calls inside a loop to same-package functions that (transitively)
//     accumulate into a float32-containing parameter — the helper's
//     single `*acc += x` is fine in isolation and becomes a hidden f32
//     reduction only at a looping call site, so that is where the
//     finding lands.
type AccumulationWidth struct {
	// LaPath is the import path of the sanctioned precision-boundary
	// package (internal/la), exempt from the rule.
	LaPath string
}

// Name implements Rule.
func (r AccumulationWidth) Name() string { return "accumulation-width" }

// accUnit is one function body with its f32-accumulation summary.
type accUnit struct {
	body        *ast.BlockStmt
	name        string
	params      map[types.Object]bool // parameters whose type contains float32
	accumulates bool                  // accumulates into an f32 param, directly or transitively
}

// Check implements Rule.
func (r AccumulationWidth) Check(pkg *Package) []Issue {
	if pkg.Path == r.LaPath {
		return nil
	}
	ix := indexFuncs(pkg)
	units := make(map[ast.Node]*accUnit)
	for node, body := range ix.bodies {
		u := &accUnit{body: body, name: "function literal", params: make(map[types.Object]bool)}
		var ft *ast.FuncType
		switch d := node.(type) {
		case *ast.FuncDecl:
			ft = d.Type
			u.name = d.Name.Name
		case *ast.FuncLit:
			ft = d.Type
		}
		if ft != nil && ft.Params != nil {
			for _, field := range ft.Params.List {
				for _, id := range field.Names {
					if obj := pkg.Info.Defs[id]; obj != nil && typeContainsF32(obj.Type()) {
						u.params[obj] = true
					}
				}
			}
		}
		units[node] = u
	}
	calleeAcc := func(call *ast.CallExpr) *accUnit {
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			return units[lit]
		}
		obj := calleeObject(pkg, call)
		if obj == nil {
			return nil
		}
		if node, ok := ix.objToUnit[obj]; ok {
			return units[node]
		}
		return nil
	}
	// rootsOwnParam reports whether the expression is rooted at one of the
	// unit's float32-carrying parameters.
	rootsOwnParam := func(u *accUnit, e ast.Expr) bool {
		id := precisionRootIdent(e)
		if id == nil {
			return false
		}
		obj := pkg.Info.Uses[id]
		return obj != nil && u.params[obj]
	}
	// Summary fixpoint: direct f32-param accumulation, plus handing an own
	// f32 param to an already-accumulating same-package callee.
	for {
		changed := false
		for _, u := range units {
			if u.accumulates {
				continue
			}
			found := false
			ast.Inspect(u.body, func(n ast.Node) bool {
				if found {
					return false
				}
				switch x := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt:
					if lhs, ok := f32Accumulation(pkg, x); ok && rootsOwnParam(u, lhs) {
						found = true
						return false
					}
				case *ast.CallExpr:
					if cu := calleeAcc(x); cu != nil && cu.accumulates {
						for _, arg := range x.Args {
							if rootsOwnParam(u, arg) {
								found = true
								return false
							}
						}
					}
				}
				return true
			})
			if found {
				u.accumulates = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Findings: f32 accumulation statements and accumulating calls inside
	// loop bodies, per unit (nested function literals are their own units
	// and start outside any loop).
	var out []Issue
	for _, u := range units {
		loops := loopBodyRanges(u.body)
		if len(loops) == 0 {
			continue
		}
		ast.Inspect(u.body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if _, ok := f32Accumulation(pkg, x); ok && inRanges(loops, x.Pos()) {
					out = append(out, issue(pkg, x, r.Name(), Error,
						"float32 accumulator in a loop loses O(n·eps32) accuracy; carry the reduction in float64 (widen operands with la.W64) and narrow once at the end"))
				}
			case *ast.CallExpr:
				if cu := calleeAcc(x); cu != nil && cu.accumulates && inRanges(loops, x.Pos()) {
					out = append(out, issue(pkg, x, r.Name(), Error,
						"call to %s accumulates into float32 storage inside a loop; carry the reduction in float64 and narrow once through la.Narrow32/la.To32", cu.name))
				}
			}
			return true
		})
	}
	// Units come from a map; sort so direct Check calls are deterministic.
	sortIssues(out)
	return out
}

// f32Accumulation reports whether the assignment accumulates into a
// float32-typed target: `s += e`, `s -= e`, or the spelled-out
// `s = s + e` / `s = e + s` / `s = s - e` forms. It returns the target.
func f32Accumulation(pkg *Package, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := as.Lhs[0]
	tv, ok := pkg.Info.Types[lhs]
	if !ok || !isBasicKind(tv.Type, types.Float32) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return nil, false
		}
		ls := types.ExprString(ast.Unparen(lhs))
		if types.ExprString(ast.Unparen(bin.X)) == ls {
			return lhs, true
		}
		if bin.Op == token.ADD && types.ExprString(ast.Unparen(bin.Y)) == ls {
			return lhs, true
		}
	}
	return nil, false
}

// posRange is a half-open source position interval.
type posRange struct{ lo, hi token.Pos }

// loopBodyRanges collects the position ranges of for/range loop bodies in
// the unit body, excluding nested function literals.
func loopBodyRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			out = append(out, posRange{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			out = append(out, posRange{x.Body.Pos(), x.Body.End()})
		}
		return true
	})
	return out
}

// inRanges reports whether the position falls inside any of the ranges.
func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}
