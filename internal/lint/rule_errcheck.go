package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedError flags statements that silently discard an error
// result: bare call statements, `defer f.Close()`-style deferred calls
// (the error vanishes when the function returns), and `go f()`
// statements (the error vanishes with the goroutine). Discarding must
// be explicit (`_ = f()`, or a wrapper closure that handles the error).
// The fmt.Print/Fprint family and the never-failing in-memory writers
// (*strings.Builder, *bytes.Buffer) are excluded, matching their
// universal usage convention.
type UncheckedError struct{}

// Name implements Rule.
func (UncheckedError) Name() string { return "unchecked-error" }

// Check implements Rule.
func (r UncheckedError) Check(pkg *Package) []Issue {
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var what string
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
				what = "call"
			case *ast.DeferStmt:
				call = stmt.Call
				what = "deferred call"
			case *ast.GoStmt:
				call = stmt.Call
				what = "go statement"
			default:
				return true
			}
			if call == nil || !returnsError(pkg, call) || isExcludedCall(pkg, call) {
				return true
			}
			out = append(out, issue(pkg, n, r.Name(), Error,
				"%s discards an error result; handle it or assign to _ explicitly", what))
			return true
		})
	}
	return out
}

// returnsError reports whether any result of the call has type error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.IsType() { // conversions are not calls
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return t != nil && types.Identical(t, errType)
	}
}

// isExcludedCall applies the conventional exclusions.
func isExcludedCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type().String()
	return recv == "*strings.Builder" || recv == "*bytes.Buffer"
}

// calleeFunc resolves the called function object when statically known.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
