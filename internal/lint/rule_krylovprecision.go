package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KrylovPrecision enforces the float64-only contract of internal/krylov.
// The Krylov solvers' convergence theory and their recurrences (residual
// updates, Gram-Schmidt, the CG three-term recurrence) assume one uniform
// working precision; f32-sourced values entering a solve silently degrade
// the achievable tolerance and break the bitwise reproducibility the
// determinism suite pins down. Mixed precision belongs in the
// *preconditioner* (the multigrid coarse levels), behind the f64
// residual/correction transfers, never in the Krylov iteration itself.
// Two obligations:
//
//   - inside the krylov package, no declared variable, parameter, field
//     or named type may structurally contain float32 at all;
//   - in packages importing krylov, no f32-tainted value may flow into a
//     krylov call argument. Taint seeds at every expression whose static
//     type contains float32 and survives bare float64(x) widening — only
//     the sanctioned la.W64/la.Wide64 boundaries launder it (see
//     precision.go for the interprocedural fixpoint).
type KrylovPrecision struct {
	// KrylovPath is the import path of the protected solver package.
	KrylovPath string
	// LaPath is the import path of the sanctioned precision-boundary
	// package whose W64/Wide64 helpers launder f32 taint.
	LaPath string
}

// Name implements Rule.
func (r KrylovPrecision) Name() string { return "krylov-precision" }

// Check implements Rule.
func (r KrylovPrecision) Check(pkg *Package) []Issue {
	if pkg.Path == r.KrylovPath {
		return r.checkInside(pkg)
	}
	if !usesPackage(pkg, r.KrylovPath) {
		return nil
	}
	return r.checkCallers(pkg)
}

// checkInside flags any float32-containing declaration inside the krylov
// package itself: the contract is structural, so the package cannot even
// hold f32 storage, let alone compute with it.
func (r KrylovPrecision) checkInside(pkg *Package) []Issue {
	var out []Issue
	seen := make(map[token.Pos]bool)
	for id, obj := range pkg.Info.Defs {
		if obj == nil || id.Name == "_" || seen[id.Pos()] {
			continue
		}
		switch obj.(type) {
		case *types.Var, *types.TypeName:
		default:
			continue
		}
		if typeContainsF32(obj.Type()) {
			seen[id.Pos()] = true
			out = append(out, issue(pkg, id, r.Name(), Error,
				"float32 storage (%s) inside the krylov package; the Krylov solvers are float64-only by contract — widen at a la boundary before entering", id.Name))
		}
	}
	// Defs is a map; sort so direct Check calls are deterministic.
	sortIssues(out)
	return out
}

// checkCallers runs the f32 taint fixpoint over the importing package and
// reports every tainted argument of a call into krylov.
func (r KrylovPrecision) checkCallers(pkg *Package) []Issue {
	a := newF32Taint(pkg, r.LaPath)
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedCallee(pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != r.KrylovPath {
				return true
			}
			for _, arg := range call.Args {
				if a.exprTainted(arg) {
					out = append(out, issue(pkg, arg, r.Name(), Error,
						"float32-tainted value reaches krylov.%s; the Krylov solvers are float64-only — widen through la.W64/la.Wide64 at a sanctioned boundary", fn.Name()))
				}
			}
			return true
		})
	}
	return out
}
