package lint

// CollectiveUniformity is the static SPMD protocol verifier: rooted at
// rank bodies (function literals handed to Comm.Run/RunCounted) and at
// functions operating on a par.Rank, it proves that no collective —
// Barrier, the AllReduce family, AllGather/AllGatherAs, or the typed
// reducer's all — is reachable under rank-dependent control flow: a
// branch on an r.ID()-derived value, or a loop whose trip count is
// rank-dependent. A rank that skips (or repeats) a collective the others
// execute deadlocks the whole communicator; this rule turns that hang
// into a compile-time finding. Collective results themselves are uniform
// across ranks, so `if r.AllReduceIntSum(n) == 0 { break }` is the
// sanctioned uniform loop exit. See spmd.go for the underlying analysis.
type CollectiveUniformity struct {
	// ParPath is the import path of the message-passing package
	// (default prometheus/internal/par).
	ParPath string
	// CheckPath is the invariant package whose Enabled guard exempts a
	// block (default prometheus/internal/check).
	CheckPath string
}

// Name implements Rule.
func (CollectiveUniformity) Name() string { return "collective-uniformity" }

// Check implements Rule.
func (r CollectiveUniformity) Check(pkg *Package) []Issue {
	parPath := r.ParPath
	if parPath == "" {
		parPath = "prometheus/internal/par"
	}
	checkPath := r.CheckPath
	if checkPath == "" {
		checkPath = "prometheus/internal/check"
	}
	var out []Issue
	analyzeSPMD(pkg, parPath, checkPath, spmdIssuef(pkg, r.Name(), &out))
	return out
}
