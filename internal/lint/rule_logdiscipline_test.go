package lint

import "testing"

func TestLogDisciplineViolations(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import (
	"context"
	"fmt"
	"log"
	"log/slog"
)

func prints(key string) {
	fmt.Println("hello")                 // line 11: flagged - ad-hoc print
	fmt.Printf("x=%d\n", 1)              // line 12: flagged - ad-hoc print
	log.Printf("x=%d", 1)                // line 13: flagged - stdlog
	log.Fatalf("dead: %d", 1)            // line 14: flagged - stdlog
	slog.Info("msg")                     // line 15: flagged - ctx-free
	slog.Error("msg")                    // line 16: flagged - ctx-free
	ctx := context.Background()
	slog.InfoContext(ctx, "m", slog.String(key, "v")) // line 18: flagged - computed key
	slog.InfoContext(ctx, "m", key, 1)                // line 19: flagged - computed key
	slog.Default().Warn("msg")                        // line 20: flagged - ctx-free method
	lg := log.New(nil, "", 0)
	lg.Println("x") // line 22: flagged - stdlog method
}
`)
	got := LogDiscipline{Services: []string{"fixture"}}.Check(pkg)
	if !sameLines(got, 11, 12, 13, 14, 15, 16, 18, 19, 20, 22) {
		t.Errorf("log-discipline lines = %v, want [11 12 13 14 15 16 18 19 20 22]", lines(got))
	}
}

func TestLogDisciplineCleanShapes(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import (
	"context"
	"fmt"
	"log/slog"
)

const sizeKey = "size"

func clean(ctx context.Context, lg *slog.Logger, attrs []any) string {
	lg.LogAttrs(ctx, slog.LevelInfo, "solve",
		slog.String("problem", "cube"),
		slog.Int(sizeKey, 3),
	)
	slog.InfoContext(ctx, "warm", "hits", 1, slog.Int("misses", 0), "evictions", 2)
	slog.WarnContext(ctx, "spread", attrs...)
	lg.Log(ctx, slog.LevelDebug, "detail", "key", "value")
	return fmt.Sprintf("x=%d", 1)
}
`)
	if got := (LogDiscipline{Services: []string{"fixture"}}).Check(pkg); len(got) != 0 {
		t.Errorf("clean fixture flagged: %v", got)
	}
}

func TestLogDisciplineScope(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import "fmt"

func anywhere() {
	fmt.Println("fine outside the service packages")
}
`)
	if got := (LogDiscipline{}).Check(pkg); len(got) != 0 {
		t.Errorf("non-service package flagged: %v", got)
	}
}
