package lint

import (
	"go/ast"
	"go/types"
)

// BlockShape protects the node-block discipline of the assembly and
// solver-setup code: once a function holds a sparse.BlockBuilder, every
// matrix entry it emits should go through AddBlock as a whole BxB node
// block. A scalar Builder.Add in the same scope almost always means a
// stray per-dof triplet snuck back into a blocked path — it breaks the
// uniform-block invariant the BSR kernels and the node-granular halo rely
// on (blocks with partial fill still store all BxB entries, but mixing
// the two builders produces two matrices that must then be merged by
// hand). The rule flags every call to the scalar Add method of
// sparse.Builder inside a function that also has a BlockBuilder in scope
// (parameter, local, or method receiver).
type BlockShape struct {
	// SparsePath is the import path of the sparse package (default
	// prometheus/internal/sparse; fixtures override it).
	SparsePath string
}

// Name implements Rule.
func (BlockShape) Name() string { return "block-shape" }

// Check implements Rule.
func (r BlockShape) Check(pkg *Package) []Issue {
	spath := r.SparsePath
	if spath == "" {
		spath = "prometheus/internal/sparse"
	}
	var out []Issue
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bbName := blockBuilderInScope(pkg, fd, spath)
			if bbName == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				if !isNamedFrom(pkg.Info.Types[sel.X].Type, spath, "Builder") {
					return true
				}
				out = append(out, issue(pkg, call, r.Name(), Error,
					"scalar Builder.Add with BlockBuilder %s in scope; emit the whole node block with AddBlock", bbName))
				return true
			})
		}
	}
	return out
}

// blockBuilderInScope returns the name of a BlockBuilder-typed parameter,
// receiver or local of the function, or "" if none is declared.
func blockBuilderInScope(pkg *Package, fd *ast.FuncDecl, spath string) string {
	name := ""
	ast.Inspect(fd, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if isNamedFrom(obj.Type(), spath, "BlockBuilder") {
			name = id.Name
		}
		return true
	})
	return name
}

// isNamedFrom reports whether t (possibly behind a pointer) is the named
// type path.name.
func isNamedFrom(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
