package lint

import (
	"go/ast"
	"strings"
)

// NakedTypeAssert flags single-value interface type assertions (x.(T))
// in the configured hot-path packages. A failed naked assertion panics
// with an anonymous runtime error deep inside a goroutine rank; the
// two-value comma-ok form (or a typed helper such as par.RecvAs) turns
// the same failure into a diagnosable protocol error. Type switches are
// fine — they never panic.
type NakedTypeAssert struct {
	// HotPaths lists package import paths (exact, or as a prefix of
	// sub-packages) the rule applies to. Empty means every package.
	HotPaths []string
}

// Name implements Rule.
func (NakedTypeAssert) Name() string { return "naked-type-assert" }

// Check implements Rule.
func (r NakedTypeAssert) Check(pkg *Package) []Issue {
	if !r.applies(pkg.Path) {
		return nil
	}
	var out []Issue
	for _, f := range pkg.Files {
		okForm := commaOkAsserts(f)
		ast.Inspect(f, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok {
				return true
			}
			if ta.Type == nil { // x.(type) inside a type switch
				return true
			}
			if okForm[ta] {
				return true
			}
			out = append(out, issue(pkg, ta, r.Name(), Error,
				"single-value type assertion on a hot path; use the two-value form v, ok := x.(T) (or a typed helper like par.RecvAs)"))
			return true
		})
	}
	return out
}

// applies reports whether the rule covers the package path.
func (r NakedTypeAssert) applies(path string) bool {
	if len(r.HotPaths) == 0 {
		return true
	}
	for _, p := range r.HotPaths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// commaOkAsserts collects the type assertions appearing as the single
// right-hand side of a two-value assignment or declaration — the
// comma-ok form.
func commaOkAsserts(f *ast.File) map[*ast.TypeAssertExpr]bool {
	out := make(map[*ast.TypeAssertExpr]bool)
	mark := func(rhs []ast.Expr, nLHS int) {
		if nLHS == 2 && len(rhs) == 1 {
			if ta, ok := ast.Unparen(rhs[0]).(*ast.TypeAssertExpr); ok {
				out[ta] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			mark(x.Rhs, len(x.Lhs))
		case *ast.ValueSpec:
			mark(x.Values, len(x.Names))
		}
		return true
	})
	return out
}
