package lint

import (
	"go/ast"
	"go/types"
)

// This file implements the precision-flow analysis shared by the
// narrowing-discipline, accumulation-width and krylov-precision rules.
// The model is a two-element precision lattice, f64 ⊑ f32: a value is
// f32-tainted when float32 storage participated in producing it, and the
// taint survives bare widening — float64(x32) has the accuracy of its
// float32 source, not of a float64. The only edges allowed to cross the
// lattice are the sanctioned boundaries in internal/la:
//
//   - la.Narrow32 / la.To32 narrow f64 -> f32 (auditable, asserted
//     finite+in-range under promdebug at the call sites that matter);
//   - la.W64 / la.Wide64 widen f32 -> f64 and launder the taint — they
//     mark a reviewed spot where f32-sourced data is allowed to enter
//     f64 arithmetic (coarse-level smoothing, storage round-trips).
//
// The taint engine mirrors the SPMD analysis in spmd.go: per-package
// object taint propagated to a fixpoint over assignments, range bindings,
// value specs and same-package call arguments, plus a returns-tainted
// function summary so taint crosses same-package call results. Package
// boundaries are the engine's approximation limit: a value returned by
// another package starts clean unless its static type itself contains
// float32. That is the right cut for the krylov contract — the mixed-
// precision multigrid preconditioner is *supposed* to cross the boundary
// as a clean f64 operator, because its fine level and its residual and
// correction transfers are all f64.

// typeContainsF32 reports whether the static type structurally contains
// float32: the basic type itself, or elements/fields reachable through
// pointers, slices, arrays, maps, channels and struct fields. Interfaces
// and function signatures are treated as opaque boundaries — a value
// behind an interface carries whatever contract the interface documents,
// not its dynamic storage type.
func typeContainsF32(t types.Type) bool {
	return f32InType(t, make(map[types.Type]bool))
}

func f32InType(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Basic:
		return u.Kind() == types.Float32
	case *types.Named:
		return f32InType(u.Underlying(), seen)
	case *types.Alias:
		return f32InType(types.Unalias(u), seen)
	case *types.Pointer:
		return f32InType(u.Elem(), seen)
	case *types.Slice:
		return f32InType(u.Elem(), seen)
	case *types.Array:
		return f32InType(u.Elem(), seen)
	case *types.Map:
		return f32InType(u.Key(), seen) || f32InType(u.Elem(), seen)
	case *types.Chan:
		return f32InType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if f32InType(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// isBasicKind reports whether t's underlying type is the given basic kind.
func isBasicKind(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// isSanctionedWiden reports whether the call is one of the la widening
// helpers (W64, Wide64) that launder f32 taint at a reviewed boundary.
func isSanctionedWiden(pkg *Package, call *ast.CallExpr, laPath string) bool {
	fn := resolvedCallee(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != laPath {
		return false
	}
	return fn.Name() == "W64" || fn.Name() == "Wide64"
}

// conversionToF32 reports whether the call expression is a conversion to a
// float32-underlying type of a non-constant float64 operand, returning the
// operand. Constant operands are excluded: float32(0.5) is configuration,
// not solver data, and its rounding is visible at the literal.
func conversionToF32(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isBasicKind(tv.Type, types.Float32) {
		return nil, false
	}
	arg := ast.Unparen(call.Args[0])
	atv, ok := pkg.Info.Types[arg]
	if !ok || atv.Value != nil {
		return nil, false
	}
	if !isBasicKind(atv.Type, types.Float64) {
		return nil, false
	}
	return arg, true
}

// precisionRootIdent peels index, selector, star and paren layers off an
// lvalue and returns the root identifier, or nil for non-identifier roots
// (calls, composite literals). Writing through an element or field taints
// the whole container object, matching the storage-granular model.
func precisionRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// taintUnit is one function body in the f32-taint call graph.
type taintUnit struct {
	body           *ast.BlockStmt
	params         []types.Object
	returnsTainted bool
}

// f32Taint is the per-package f32 taint analysis state.
type f32Taint struct {
	pkg    *Package
	laPath string

	units     map[ast.Node]*taintUnit
	objToUnit map[types.Object]ast.Node
	tainted   map[types.Object]bool
	changed   bool
}

// newF32Taint indexes the package's function bodies and runs the taint
// fixpoint; the returned analysis answers exprTainted queries.
func newF32Taint(pkg *Package, laPath string) *f32Taint {
	a := &f32Taint{
		pkg:     pkg,
		laPath:  laPath,
		units:   make(map[ast.Node]*taintUnit),
		tainted: make(map[types.Object]bool),
	}
	ix := indexFuncs(pkg)
	a.objToUnit = ix.objToUnit
	for node, body := range ix.bodies {
		u := &taintUnit{body: body}
		var ft *ast.FuncType
		switch d := node.(type) {
		case *ast.FuncDecl:
			ft = d.Type
		case *ast.FuncLit:
			ft = d.Type
		}
		if ft != nil && ft.Params != nil {
			for _, field := range ft.Params.List {
				for _, id := range field.Names {
					u.params = append(u.params, pkg.Info.Defs[id])
				}
			}
		}
		a.units[node] = u
	}
	a.propagate()
	return a
}

// calleeUnit resolves a call to a same-package unit, or nil.
func (a *f32Taint) calleeUnit(call *ast.CallExpr) *taintUnit {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return a.units[lit]
	}
	obj := calleeObject(a.pkg, call)
	if obj == nil {
		return nil
	}
	if node, ok := a.objToUnit[obj]; ok {
		return a.units[node]
	}
	return nil
}

// exprTainted reports whether the expression carries f32 taint: any
// subexpression whose static type contains float32, any mention of a
// tainted object, or a same-package call with a returns-tainted summary.
// Bare conversions (float64(x32)) do not launder; subtrees under the
// sanctioned la widening helpers do.
func (a *f32Taint) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSanctionedWiden(a.pkg, x, a.laPath) {
				return false
			}
			if u := a.calleeUnit(x); u != nil && u.returnsTainted {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := a.pkg.Info.Uses[x]; obj != nil && a.tainted[obj] {
				found = true
				return false
			}
		}
		if ex, ok := n.(ast.Expr); ok {
			if tv, ok := a.pkg.Info.Types[ex]; ok && tv.IsValue() && typeContainsF32(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// markObj adds an object to the taint set.
func (a *f32Taint) markObj(obj types.Object) {
	if obj != nil && !a.tainted[obj] {
		a.tainted[obj] = true
		a.changed = true
	}
}

// markLhs taints the root object behind an assignment target.
func (a *f32Taint) markLhs(e ast.Expr) {
	id := precisionRootIdent(e)
	if id == nil {
		return
	}
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	a.markObj(obj)
}

// propagate runs the package-wide taint fixpoint over assignments, range
// bindings, value specs, same-package call arguments, and the
// returns-tainted summaries.
func (a *f32Taint) propagate() {
	for {
		a.changed = false
		for _, f := range a.pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					// One-to-one assignments taint per position; a
					// multi-value rhs (call, map read) taints every target.
					if len(x.Lhs) == len(x.Rhs) {
						for i, r := range x.Rhs {
							if a.exprTainted(r) {
								a.markLhs(x.Lhs[i])
							}
						}
					} else if len(x.Rhs) == 1 && a.exprTainted(x.Rhs[0]) {
						for _, l := range x.Lhs {
							a.markLhs(l)
						}
					}
				case *ast.RangeStmt:
					if a.exprTainted(x.X) {
						a.markLhs(x.Key)
						a.markLhs(x.Value)
					}
				case *ast.ValueSpec:
					anyTainted := false
					for _, v := range x.Values {
						if a.exprTainted(v) {
							anyTainted = true
							break
						}
					}
					if anyTainted {
						for _, id := range x.Names {
							a.markObj(a.pkg.Info.Defs[id])
						}
					}
				case *ast.CallExpr:
					if u := a.calleeUnit(x); u != nil {
						for i, arg := range x.Args {
							if i >= len(u.params) {
								break
							}
							if a.exprTainted(arg) {
								a.markObj(u.params[i])
							}
						}
					}
				}
				return true
			})
		}
		// Returns-tainted summaries: a unit whose return statement yields
		// a tainted expression taints its call results next round.
		for _, u := range a.units {
			if u.returnsTainted {
				continue
			}
			found := false
			ast.Inspect(u.body, func(n ast.Node) bool {
				if found {
					return false
				}
				switch x := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ReturnStmt:
					for _, res := range x.Results {
						if a.exprTainted(res) {
							found = true
							return false
						}
					}
				}
				return true
			})
			if found {
				u.returnsTainted = true
				a.changed = true
			}
		}
		if !a.changed {
			break
		}
	}
}
