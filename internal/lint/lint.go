// Package lint implements promlint, the project's custom static analyzer.
// It is built purely on the standard library's go/parser, go/ast and
// go/types — no golang.org/x/tools dependency — and enforces the
// project-specific correctness rules that generic linters cannot know
// about:
//
//   - float-equality: no naked ==/!= between floating-point operands
//     (compare against literal zero, or use a tolerance);
//   - library-panic: panics in library packages must be diagnosable —
//     a constant message prefixed with the package name ("sparse: ...");
//   - unchecked-error: error results must not be silently discarded;
//   - naked-type-assert: interface type assertions on the par hot paths
//     must use the two-value comma-ok form;
//   - exported-doc: exported solver API needs doc comments;
//   - hotloop-alloc: no per-iteration heap allocation in the kernel
//     packages' hot regions (see dataflow.go for the region analysis);
//   - comm-protocol: par message tags must be constants, and go
//     statements must not capture loop variables;
//   - check-guard: invariant computation must sit under if check.Enabled;
//   - collective-uniformity: no collective (Barrier, AllReduce family,
//     AllGather) may be reachable under rank-dependent control flow — a
//     rank that skips a collective deadlocks the communicator (see
//     spmd.go for the interprocedural taint analysis);
//   - sendrecv-match: per constant message tag, Send payload types must
//     match Recv/RecvAs payload types, every sent tag must be received
//     (and vice versa), and self-sends are flagged;
//   - map-order: the coarsening pipeline must not range over maps while
//     writing output slices; iterate sortutil.Keys instead so runs are
//     bitwise reproducible;
//   - block-shape: a function holding a sparse.BlockBuilder must emit
//     whole node blocks via AddBlock — scalar Builder.Add calls in the
//     same scope break the uniform-block invariant the BSR kernels and
//     the node-granular halo rely on;
//   - obs-discipline: obs event/metric names must be tree-unique string
//     constants (never fmt.Sprintf), and every obs.Start span must be
//     ended on all paths (End/EndFlops, deferred End, or the balanced
//     obs.Start(id).End() chain);
//   - shared-write: the ownership verifier — every MulVecRange contract
//     implementation must provably confine its writes to y[lo:hi]
//     (symbolic interval arithmetic over index expressions, see
//     affine.go and ownership.go), and every goroutine spawned in a
//     kernel package may write only spawn-distinct or received state;
//   - sync-discipline: raw synchronization (channels, sync, atomic,
//     go) is banned from compute-kernel hot paths and confined, in the
//     substrate, to methods of package-local types or credit channels;
//   - range-partition: fan-out loops handing row ranges to workers must
//     match the telescoping partition shape (hi := lo + width; optional
//     last-iteration clamp; lo = hi) with provably nonnegative width,
//     so chunks are disjoint and cover [0, n) by construction;
//   - narrowing-discipline: every float64 -> float32 narrowing must go
//     through the sanctioned la.Narrow32/la.To32 boundary — a bare
//     float32(x) on solver data is an unaudited precision cut;
//   - accumulation-width: reductions must be carried in float64 even
//     over f32 operands — float32-typed `s += e` accumulators in loops,
//     and looping calls to functions that (transitively) accumulate
//     into float32 parameters, are flagged (see precision.go);
//   - krylov-precision: internal/krylov is a float64-only zone — no
//     float32 storage inside the package, and no f32-tainted value may
//     reach a krylov call from importing packages without passing a
//     sanctioned la.W64/la.Wide64 widening (interprocedural taint
//     fixpoint, see precision.go);
//   - goroutine-lifecycle: every goroutine spawned in a service package
//     (internal/serve, cmd/promserve) must have a provable termination
//     path — blocking channel operations reachable from a go statement
//     (traced through the package call graph) must be select-guarded by
//     a default or a done/ctx case, and infinite loops must carry a
//     done-guarded exit (see lifecycle.go);
//   - ctx-flow: cancellation must flow through service signatures —
//     ctx is the first parameter, never minted via context.Background
//     outside package main, never stored in a struct field, and a
//     ctx-holding function must not block in ways its ctx cannot
//     cancel;
//   - resource-release: every service acquire (admission slots, session
//     checkouts, cache references, preconditioner leases) must be
//     released on all paths — deferred, or with no return between
//     acquire and release outside the acquire's own error guard
//     (generalizes obs-discipline's Start/End pairing);
//   - log-discipline: service-package logging is structured and
//     request-scoped — no fmt/log prints, no context-free slog calls,
//     and slog attribute keys are compile-time string constants;
//   - bounded-queue: service channels must have compile-time-constant
//     capacity, and every send must be seated in a select with a
//     default or done/ctx case, so backpressure is a 503 rather than a
//     stuck request;
//   - operator-seam: type assertions and type switches on the concrete
//     storage types (*sparse.CSR, *sparse.BSR and their f32 variants)
//     are confined to the storage seam (internal/sparse and
//     internal/multigrid) — everywhere else must use the sparse
//     capability interfaces or the sanctioned TryCSR/AutoBlockOp
//     helpers, so the matrix-free operator flows through every layer.
//
// A finding can be suppressed in place with a directive comment on the
// same line or the line above:
//
//	//promlint:ignore <rule> <reason>
//
// The reason is free text but required, so every suppression documents
// why the code is intentionally exempt.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies a finding.
type Severity int

const (
	// Warning findings are reported but describe style-level debt.
	Warning Severity = iota
	// Error findings are correctness hazards.
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one finding at a source position.
type Issue struct {
	Pos      token.Position
	Rule     string
	Severity Severity
	Msg      string
}

// String formats the issue in the conventional file:line:col style.
func (i Issue) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s", i.Pos.Filename, i.Pos.Line, i.Pos.Column, i.Severity, i.Rule, i.Msg)
}

// Package is one type-checked package presented to the rules.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsMain reports whether the package is a command (package main).
func (p *Package) IsMain() bool { return p.Types != nil && p.Types.Name() == "main" }

// Rule is one pluggable check. Check returns raw findings; suppression
// filtering is applied by Run.
type Rule interface {
	// Name is the rule identifier used in output and ignore directives.
	Name() string
	// Check inspects one package and returns its findings.
	Check(pkg *Package) []Issue
}

// DefaultRules returns the project rule set.
func DefaultRules() []Rule {
	return []Rule{
		FloatEquality{},
		LibraryPanic{},
		UncheckedError{},
		NakedTypeAssert{HotPaths: []string{"prometheus/internal/par"}},
		ExportedDoc{},
		HotLoopAlloc{},
		CommProtocol{},
		CheckGuard{},
		CollectiveUniformity{},
		SendRecvMatch{},
		MapOrder{},
		BlockShape{},
		&ObsDiscipline{},
		SharedWrite{},
		&SyncDiscipline{},
		RangePartition{},
		NarrowingDiscipline{LaPath: "prometheus/internal/la"},
		AccumulationWidth{LaPath: "prometheus/internal/la"},
		KrylovPrecision{
			KrylovPath: "prometheus/internal/krylov",
			LaPath:     "prometheus/internal/la",
		},
		GoroutineLifecycle{},
		CtxFlow{},
		LogDiscipline{},
		ResourceRelease{},
		BoundedQueue{},
		OperatorSeam{},
	}
}

// Run applies every rule to every package, filters suppressed findings,
// and returns the remainder sorted by position.
func Run(pkgs []*Package, rules []Rule) []Issue {
	kept, _ := RunAll(pkgs, rules)
	return kept
}

// RunAll is Run with suppression accounting: it returns both the kept
// findings and the findings silenced by promlint:ignore directives (also
// sorted), so callers can report how much debt the suppressions hide.
func RunAll(pkgs []*Package, rules []Rule) (kept, suppressed []Issue) {
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, r := range rules {
			for _, iss := range r.Check(pkg) {
				if sup.matches(iss) {
					suppressed = append(suppressed, iss)
					continue
				}
				kept = append(kept, iss)
			}
		}
	}
	sortIssues(kept)
	sortIssues(suppressed)
	return kept, suppressed
}

// sortIssues orders findings by position, then rule name, then message,
// so repeated runs (and runs over differently-ordered package maps)
// produce byte-identical reports.
func sortIssues(out []Issue) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// suppressions maps file -> line -> rule names ignored there.
type suppressions map[string]map[int]map[string]bool

// matches reports whether the issue is covered by a directive on its own
// line or the line directly above it.
func (s suppressions) matches(iss Issue) bool {
	lines := s[iss.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range []int{iss.Pos.Line, iss.Pos.Line - 1} {
		if rules := lines[ln]; rules != nil && (rules[iss.Rule] || rules["all"]) {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment for promlint:ignore directives.
func collectSuppressions(pkg *Package) suppressions {
	out := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "promlint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "promlint:ignore"))
				if len(fields) < 2 {
					// A directive without both rule name and reason is
					// ineffective by design: suppressions must be justified.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]map[string]bool)
				}
				if out[pos.Filename][pos.Line] == nil {
					out[pos.Filename][pos.Line] = make(map[string]bool)
				}
				out[pos.Filename][pos.Line][fields[0]] = true
			}
		}
	}
	return out
}

// issue builds an Issue at the node's position.
func issue(pkg *Package, n ast.Node, rule string, sev Severity, format string, args ...interface{}) Issue {
	return Issue{
		Pos:      pkg.Fset.Position(n.Pos()),
		Rule:     rule,
		Severity: sev,
		Msg:      fmt.Sprintf(format, args...),
	}
}
