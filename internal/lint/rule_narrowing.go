package lint

import "go/ast"

// NarrowingDiscipline flags bare float32(x) conversions of non-constant
// float64 values. Every narrowing of solver data must go through the
// sanctioned la boundary — la.Narrow32 for scalars, la.To32 for slices —
// so that precision cuts are few, named, greppable, and asserted
// finite+in-f32-range under the promdebug build. A silent float32(...)
// in the middle of an expression is exactly the kind of precision leak
// the mixed-precision coarse-level path must not allow: it rounds
// without an audit trail. Constant conversions are exempt (the rounding
// of float32(0.5) is visible at the literal), as is the la package
// itself, where the helpers necessarily perform the raw conversion.
type NarrowingDiscipline struct {
	// LaPath is the import path of the sanctioned precision-boundary
	// package (internal/la), exempt from the rule.
	LaPath string
}

// Name implements Rule.
func (r NarrowingDiscipline) Name() string { return "narrowing-discipline" }

// Check implements Rule.
func (r NarrowingDiscipline) Check(pkg *Package) []Issue {
	if pkg.Path == r.LaPath {
		return nil
	}
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := conversionToF32(pkg, call); ok {
				out = append(out, issue(pkg, call, r.Name(), Error,
					"bare float32(...) narrows a float64 value outside the sanctioned boundary; use la.Narrow32 (scalar) or la.To32 (slice) so every precision cut is auditable"))
			}
			return true
		})
	}
	return out
}
