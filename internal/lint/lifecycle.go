package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the shared machinery of the four service-lifecycle
// rules (goroutine-lifecycle, ctx-flow, resource-release, bounded-queue).
// The rules certify the long-running service layer (internal/serve,
// cmd/promserve): goroutines must have provable termination paths,
// cancellation must flow through contexts, acquired resources must be
// released on all paths, and every queue must be bounded by construction.
//
// The common vocabulary:
//
//   - a DONE SOURCE is a cancellation signal: a call to a method named
//     Done returning a receive-only struct{} channel (context.Context's
//     Done), or a chan struct{} object that is never the target of a
//     send statement anywhere in the package — a channel only ever
//     closed, which is the broadcast-close idiom;
//   - a select statement is GUARDED when it has a default clause (it
//     cannot block) or at least one done-source receive case (it
//     unblocks on cancellation);
//   - a BLOCKING OP is a channel operation that can block forever
//     without a cancellation path: a send or non-done receive outside a
//     guarded select, a range over a channel, an unguarded select, or
//     an infinite for loop with no done-guarded exit.
//
// defaultServicePackages is the tree's service layer; the rule structs
// take the list as configuration so fixtures can point them at the
// fixture package.
var defaultServicePackages = []string{
	"prometheus/internal/serve",
	"prometheus/cmd/promserve",
}

// serviceSet resolves a rule's configured service-package list.
func serviceSet(configured []string) []string {
	if configured != nil {
		return configured
	}
	return defaultServicePackages
}

// isEmptyStructChan reports whether t is a (possibly directional)
// channel of struct{} — the shape of done channels.
func isEmptyStructChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// chanObject resolves the object a channel expression names: a variable
// for identifiers, the field/method object for selector expressions.
func chanObject(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel]
	}
	return nil
}

// collectSentTo walks the package and records every object that appears
// as the channel of a send statement (in any form, including inside
// selects). A chan struct{} absent from this set is only ever closed —
// a done source.
func collectSentTo(pkg *Package) map[types.Object]bool {
	sent := make(map[types.Object]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if s, ok := n.(*ast.SendStmt); ok {
				if obj := chanObject(pkg, s.Chan); obj != nil {
					sent[obj] = true
				}
			}
			return true
		})
	}
	return sent
}

// isDoneSource reports whether the receive operand e is a cancellation
// signal: ctx.Done()-shaped calls, or a never-sent-to chan struct{}.
func isDoneSource(pkg *Package, e ast.Expr, sentTo map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		obj := calleeObject(pkg, call)
		if obj == nil || obj.Name() != "Done" {
			return false
		}
		tv, ok := pkg.Info.Types[e]
		return ok && isEmptyStructChan(tv.Type)
	}
	obj := chanObject(pkg, e)
	if obj == nil || !isEmptyStructChan(obj.Type()) {
		return false
	}
	return !sentTo[obj]
}

// commRecvOperand extracts the channel operand of a select case's
// communication when it is a receive (v := <-ch, <-ch), or nil for
// sends.
func commRecvOperand(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// selectShape classifies one select statement for the lifecycle rules.
type selectShape struct {
	hasDefault bool
	doneCases  []*ast.CommClause
}

// classifySelect inspects a select's clauses for defaults and
// done-source receive cases.
func classifySelect(pkg *Package, sel *ast.SelectStmt, sentTo map[types.Object]bool) selectShape {
	var shape selectShape
	for _, stmt := range sel.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			shape.hasDefault = true
			continue
		}
		if op := commRecvOperand(cc.Comm); op != nil && isDoneSource(pkg, op, sentTo) {
			shape.doneCases = append(shape.doneCases, cc)
		}
	}
	return shape
}

// guarded reports whether the select cannot block forever: it either
// never blocks (default) or unblocks on cancellation (done case).
func (s selectShape) guarded() bool { return s.hasDefault || len(s.doneCases) > 0 }

// hasDoneExit reports whether a done-source select case within body
// (not crossing into nested function literals) exits via return or
// break — the provable termination path of an infinite loop.
func hasDoneExit(pkg *Package, body *ast.BlockStmt, sentTo map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, stmt := range sel.Body.List {
			cc, ok := stmt.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			op := commRecvOperand(cc.Comm)
			if op == nil || !isDoneSource(pkg, op, sentTo) {
				continue
			}
			for _, s := range cc.Body {
				if stmtExits(s) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// blockingOp kinds. The collector classifies each potentially-forever
// channel operation so each rule can report the subset it owns.
const (
	opSend       = "send"       // bare send outside any select
	opSelectSend = "selectsend" // send comm of an unguarded select
	opRecv       = "recv"       // bare receive from a non-done source
	opRange      = "range"      // range over a channel
	opSelect     = "select"     // select with no default and no done case
	opForever    = "forever"    // infinite for with no done-guarded exit
)

// blockingOp is one channel operation (or loop) that can block forever.
type blockingOp struct {
	n    ast.Node
	kind string
}

// collectBlockingOps walks one function unit's body (stopping at nested
// function literals, which are separate units) and returns every
// operation that can block without a cancellation path. Receives inside
// guarded selects and sends seated as guarded-select comms are fine and
// not reported; bounded for loops (any with a condition or range over a
// slice) are assumed terminating.
func collectBlockingOps(pkg *Package, body *ast.BlockStmt, sentTo map[types.Object]bool) []blockingOp {
	var ops []blockingOp
	var scan func(root ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				shape := classifySelect(pkg, x, sentTo)
				if !shape.guarded() {
					ops = append(ops, blockingOp{x, opSelect})
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CommClause)
					if !ok {
						continue
					}
					if !shape.guarded() {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							ops = append(ops, blockingOp{send, opSelectSend})
						}
					}
					for _, s := range cc.Body {
						scan(s)
					}
				}
				return false
			case *ast.SendStmt:
				ops = append(ops, blockingOp{x, opSend})
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !isDoneSource(pkg, x.X, sentTo) {
					ops = append(ops, blockingOp{x, opRecv})
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[x.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						ops = append(ops, blockingOp{x, opRange})
					}
				}
			case *ast.ForStmt:
				if x.Cond == nil && !hasDoneExit(pkg, x.Body, sentTo) {
					ops = append(ops, blockingOp{x, opForever})
				}
			}
			return true
		})
	}
	scan(body)
	return ops
}

// stmtExits reports whether the statement (shallowly) leaves the
// enclosing loop: a return, break, or a panic/os.Exit-style terminator
// is out of scope — the done case of a janitor loop returns or breaks.
func stmtExits(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return x.Tok == token.BREAK
	case *ast.BlockStmt:
		for _, inner := range x.List {
			if stmtExits(inner) {
				return true
			}
		}
	case *ast.IfStmt:
		// An exit under a condition still proves a path out once the
		// done case fires; require it unconditionally in the then/else
		// arms to stay sound.
		return false
	}
	return false
}
