package lint

import (
	"go/ast"
	"go/types"
)

// ResourceRelease generalizes obs-discipline's Start/End must-pair
// analysis to the service layer's acquire/release protocols: admission
// slots (Acquire/Release), session checkouts (Checkout/Checkin), cache
// references (Acquire/Release) and leased preconditioners
// (Checkout/Checkin). Within each function:
//
//   - every call to a method named Acquire, TryAcquire or Checkout
//     creates an obligation keyed by the receiver expression;
//   - the obligation is met by a call to Release, Checkin or Close on
//     the same receiver. A deferred release (directly, or inside a
//     deferred closure) covers every path including panics and is
//     always accepted;
//   - a non-deferred release is accepted only when no return statement
//     sits between the acquire and the last release — except returns
//     inside an if-block testing the acquire's own error result, which
//     are the failure path where nothing was acquired;
//   - an acquire whose result is returned to the caller or stored into
//     a field transfers ownership out of the function and is exempt —
//     the obligation moves to the caller;
//   - an acquire whose non-error result is discarded (expression
//     statement) leaks by construction and is always flagged.
type ResourceRelease struct {
	// Services overrides the service-package list (defaults to the
	// tree's serve/promserve layer); fixtures point it at themselves.
	Services []string
}

// Name returns the rule identifier.
func (ResourceRelease) Name() string { return "resource-release" }

// acquire/release method-name protocol.
var (
	acquireNames = map[string]bool{"Acquire": true, "TryAcquire": true, "Checkout": true}
	releaseNames = map[string]bool{"Release": true, "Checkin": true, "Close": true}
)

// Check analyzes one package.
func (r ResourceRelease) Check(pkg *Package) []Issue {
	if !pathInSet(pkg.Path, serviceSet(r.Services)) {
		return nil
	}
	var issues []Issue
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			issues = append(issues, r.checkFunc(pkg, fd)...)
		}
	}
	sortIssues(issues)
	return issues
}

// acqSite is one acquire call and its tracking state.
type acqSite struct {
	call    *ast.CallExpr
	recv    string         // rendered receiver expression — the pairing key
	name    string         // Acquire / TryAcquire / Checkout
	errObj  types.Object   // the error variable it assigns, if any
	results []types.Object // non-error result variables it assigns
	expr    bool           // call sits in an expression statement (results discarded)
}

// relSite is one release call.
type relSite struct {
	call     *ast.CallExpr
	recv     string
	deferred bool
}

// checkFunc runs the obligation analysis over one function declaration.
func (r ResourceRelease) checkFunc(pkg *Package, fd *ast.FuncDecl) []Issue {
	deferred := deferredCalls(fd.Body)

	var acquires []*acqSite
	var releases []relSite
	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, x)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if site := r.acquireSite(pkg, call); site != nil {
					site.expr = true
					acquires = append(acquires, site)
				}
			}
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
					if site := r.acquireSite(pkg, call); site != nil {
						bindResults(pkg, x.Lhs, site)
						acquires = append(acquires, site)
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if ok && releaseNames[sel.Sel.Name] {
				releases = append(releases, relSite{
					call:     x,
					recv:     types.ExprString(sel.X),
					deferred: deferred[x],
				})
			}
		}
		return true
	})
	if len(acquires) == 0 {
		return nil
	}

	// Ownership transfers: result returned or stored into a field.
	escaped := escapedObjects(pkg, fd.Body)
	// Error-guard bodies: returns inside them are the failure path.
	exempt := errGuardRanges(pkg, fd.Body, acquires)

	var issues []Issue
	for _, acq := range acquires {
		if acq.expr && len(acq.results) == 0 && callHasNonErrorResult(pkg, acq.call) {
			issues = append(issues, issue(pkg, acq.call, r.Name(), Error,
				"%s result discarded: the acquired resource can never be released", acq.name))
			continue
		}
		transfers := false
		for _, obj := range acq.results {
			if escaped[obj] {
				transfers = true
			}
		}
		if transfers {
			continue
		}
		var matched []relSite
		anyDeferred := false
		for _, rel := range releases {
			if rel.recv != acq.recv {
				continue
			}
			matched = append(matched, rel)
			if rel.deferred {
				anyDeferred = true
			}
		}
		if anyDeferred {
			continue
		}
		if len(matched) == 0 {
			issues = append(issues, issue(pkg, acq.call, r.Name(), Error,
				"%s on %q is never released in this function; defer the release immediately after a successful acquire", acq.name, acq.recv))
			continue
		}
		lastEnd := matched[0].call.End()
		for _, rel := range matched[1:] {
			if rel.call.End() > lastEnd {
				lastEnd = rel.call.End()
			}
		}
		for _, ret := range returns {
			if ret.Pos() <= acq.call.End() || ret.Pos() >= lastEnd {
				continue
			}
			if inRanges(exempt[acq], ret.Pos()) {
				continue
			}
			issues = append(issues, issue(pkg, ret, r.Name(), Error,
				"return between %s on %q and its release leaks the resource on this path; defer the release instead", acq.name, acq.recv))
		}
	}
	return issues
}

// acquireSite classifies a call as an acquire, or returns nil.
func (ResourceRelease) acquireSite(pkg *Package, call *ast.CallExpr) *acqSite {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !acquireNames[sel.Sel.Name] {
		return nil
	}
	// Require a method call (receiver has a value); package-qualified
	// functions like ctx.Acquire-less shapes resolve the same way, and
	// a package qualifier is fine to track too — the pairing key is the
	// rendered expression either way.
	return &acqSite{call: call, recv: types.ExprString(sel.X), name: sel.Sel.Name}
}

// bindResults records which variables the acquire assigns: the error
// result (for guard exemptions) and the non-error results (for escape
// analysis).
func bindResults(pkg *Package, lhs []ast.Expr, site *acqSite) {
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if isErrorType(obj.Type()) {
			site.errObj = obj
		} else {
			site.results = append(site.results, obj)
		}
	}
}

// callHasNonErrorResult reports whether the call returns any value that
// is not an error — i.e. discarding its results loses a resource, not
// just a status.
func callHasNonErrorResult(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if !isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		if t == nil || t.String() == "()" {
			return false
		}
		return !isErrorType(tv.Type)
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// deferredCalls maps every call that runs under a defer: the deferred
// call itself, and every call inside a deferred closure body.
func deferredCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		out[d.Call] = true
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if call, ok := inner.(*ast.CallExpr); ok {
					out[call] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// escapedObjects finds result variables whose ownership leaves the
// function: returned to the caller, or stored into a selector/index
// target (a field, map or global slot).
func escapedObjects(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	use := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return pkg.Info.Uses[id]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if obj := use(res); obj != nil {
					out[obj] = true
				}
			}
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				switch ast.Unparen(l).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					if i < len(x.Rhs) {
						if obj := use(x.Rhs[i]); obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// errGuardRanges maps each acquire to the bodies of if-statements that
// test its error result — the failure paths where the acquire did not
// happen, so returning without a release is correct there.
func errGuardRanges(pkg *Package, body *ast.BlockStmt, acquires []*acqSite) map[*acqSite][]posRange {
	out := make(map[*acqSite][]posRange)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Body == nil {
			return true
		}
		for _, acq := range acquires {
			if acq.errObj == nil {
				continue
			}
			if condUses(pkg, ifs.Cond, acq.errObj) {
				out[acq] = append(out[acq], posRange{ifs.Body.Pos(), ifs.Body.End()})
			}
		}
		return true
	})
	return out
}

// condUses reports whether the condition expression mentions obj.
func condUses(pkg *Package, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
