package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// This file implements the symbolic affine arithmetic behind the
// ownership analysis (ownership.go) and the shared-write /
// range-partition rules. The value domain is
//
//	form = c + Σ coeff·m
//
// where each monomial m is one symbol or a product of two symbols
// (degree ≤ 2 — enough for block arithmetic like ib*b while keeping
// equality decidable), and symbols are interned names for
//
//   - program variables (parameters and pinned locals),
//   - fields read off a receiver or parameter (a.B),
//   - loop induction variables with their iteration range,
//   - derived quotients and remainders (lo/b, lo%b), keyed by the
//     canonical encoding of their operand forms so the same division
//     appearing twice resolves to the same symbol,
//   - anonymous unknowns (slice element reads, joined branches).
//
// A fact set carries what the analysis learned from dominating guards:
// lower bounds (n >= 1 after `if n <= 0 { return }`), divisibility
// (lo ≡ 0 mod b after `if lo%b == 0 {`), and equalities (b == 3 inside
// that branch). Facts license the two rewrite rules that make blocked
// kernels provable: k*(e/k) = e and b*(e/b) = e when e ≡ 0 (mod the
// divisor). All queries reduce to provableNonneg, a structural check
// over the fact set — no LP solver, no iteration.

// symID indexes the analysis symbol table.
type symID int32

// symKind classifies a symbol.
type symKind uint8

const (
	symObj   symKind = iota // a program variable
	symField                // field read: owner.field
	symLoop                 // loop induction variable over [lo, hi)
	symDiv                  // quotient a / b
	symMod                  // remainder a % b
	symAnon                 // anonymous unknown
)

// symInfo is one interned symbol.
type symInfo struct {
	kind   symKind
	obj    types.Object // symObj: the variable; symField: the owner
	field  string       // symField
	a, b   *aform       // symDiv/symMod operands (canonicalized at creation)
	lo, hi *aform       // symLoop: iteration range [lo, hi); nil = unknown
	nonneg bool         // known ≥ 0 by construction (e.g. range-loop index)
}

// symtab interns symbols. Derived div/mod symbols are keyed by the
// canonical serialization of their operands, so equal divisions unify.
type symtab struct {
	syms  []symInfo
	byKey map[string]symID
}

func newSymtab() *symtab {
	return &symtab{byKey: make(map[string]symID)}
}

func (t *symtab) intern(key string, info symInfo) symID {
	if id, ok := t.byKey[key]; ok {
		return id
	}
	id := symID(len(t.syms))
	t.syms = append(t.syms, info)
	t.byKey[key] = id
	return id
}

// objSym interns the symbol for a program variable.
func (t *symtab) objSym(obj types.Object) symID {
	return t.intern(fmt.Sprintf("o%p", obj), symInfo{kind: symObj, obj: obj})
}

// fieldSym interns the symbol for owner.field, where owner is the
// variable (usually a receiver) whose field is read.
func (t *symtab) fieldSym(owner types.Object, field string) symID {
	return t.intern(fmt.Sprintf("f%p.%s", owner, field), symInfo{kind: symField, obj: owner, field: field})
}

// anonSym creates a fresh unknown. Anonymous symbols are never interned:
// two unknown values are never assumed equal.
func (t *symtab) anonSym(nonneg bool) symID {
	id := symID(len(t.syms))
	t.syms = append(t.syms, symInfo{kind: symAnon, nonneg: nonneg})
	return id
}

// loopSym creates a fresh induction variable over [lo, hi).
func (t *symtab) loopSym(lo, hi *aform, nonneg bool) symID {
	id := symID(len(t.syms))
	t.syms = append(t.syms, symInfo{kind: symLoop, lo: lo, hi: hi, nonneg: nonneg})
	return id
}

func (t *symtab) divSym(a, b *aform) symID {
	return t.intern("d("+formKey(a)+")/("+formKey(b)+")", symInfo{kind: symDiv, a: a, b: b})
}

func (t *symtab) modSym(a, b *aform) symID {
	return t.intern("m("+formKey(a)+")%("+formKey(b)+")", symInfo{kind: symMod, a: a, b: b})
}

// mono is one monomial: a single symbol (y == -1) or a product x*y with
// x <= y.
type mono struct{ x, y symID }

func mono1(s symID) mono { return mono{x: s, y: -1} }

func mono2(a, b symID) mono {
	if a > b {
		a, b = b, a
	}
	return mono{x: a, y: b}
}

func (m mono) degree() int {
	if m.y < 0 {
		return 1
	}
	return 2
}

func (m mono) mentions(s symID) bool { return m.x == s || m.y == s }

// aform is an affine-ish form c + Σ coeff·mono. The nil *aform is ⊤
// (unknown value).
type aform struct {
	c int64
	t map[mono]int64
}

func aConst(c int64) *aform { return &aform{c: c} }

func aSym(s symID) *aform { return &aform{t: map[mono]int64{mono1(s): 1}} }

func (f *aform) clone() *aform {
	g := &aform{c: f.c}
	if len(f.t) > 0 {
		g.t = make(map[mono]int64, len(f.t))
		for m, c := range f.t {
			g.t[m] = c
		}
	}
	return g
}

func (f *aform) isConst() bool { return f != nil && len(f.t) == 0 }

func (f *aform) isZero() bool { return f.isConst() && f.c == 0 }

// mentions reports whether the form references the symbol.
func (f *aform) mentions(s symID) bool {
	if f == nil {
		return false
	}
	for m := range f.t {
		if m.mentions(s) {
			return true
		}
	}
	return false
}

// addTerm accumulates coeff·m into the form in place.
func (f *aform) addTerm(m mono, coeff int64) {
	if coeff == 0 {
		return
	}
	if f.t == nil {
		f.t = make(map[mono]int64)
	}
	f.t[m] += coeff
	if f.t[m] == 0 {
		delete(f.t, m)
	}
}

// formKey serializes a form deterministically (terms sorted by symbol
// ids), for interning derived symbols and matching facts.
func formKey(f *aform) string {
	if f == nil {
		return "T"
	}
	keys := make([]mono, 0, len(f.t))
	for m := range f.t {
		keys = append(keys, m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].y < keys[j].y
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%d", f.c)
	for _, m := range keys {
		fmt.Fprintf(&b, "+%d*s%d", f.t[m], m.x)
		if m.y >= 0 {
			fmt.Fprintf(&b, "*s%d", m.y)
		}
	}
	return b.String()
}

// lbFact records form >= min.
type lbFact struct {
	f   *aform
	min int64
}

// modFact records a ≡ 0 (mod b).
type modFact struct{ a, b *aform }

// eqFact records sym == f, applied by substitution at canonicalization.
type eqFact struct {
	s symID
	f *aform
}

// factSet is the branch-scoped knowledge base. Facts are stored as
// small slices and matched by canonical form equality; clone isolates
// branches.
type factSet struct {
	lb   []lbFact
	modZ []modFact
	eq   []eqFact
}

func (fs *factSet) clone() *factSet {
	out := &factSet{
		lb:   make([]lbFact, len(fs.lb)),
		modZ: make([]modFact, len(fs.modZ)),
		eq:   make([]eqFact, len(fs.eq)),
	}
	copy(out.lb, fs.lb)
	copy(out.modZ, fs.modZ)
	copy(out.eq, fs.eq)
	return out
}

// actx bundles the symbol table with the fact set in scope, so every
// arithmetic operation can normalize against the current facts.
type actx struct {
	tab   *symtab
	facts *factSet
}

// canon applies equality facts by substitution until fixpoint (bounded;
// equality chains in real guards are one or two deep).
func (cx *actx) canon(f *aform) *aform {
	if f == nil {
		return nil
	}
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, eq := range cx.facts.eq {
			if f.mentions(eq.s) {
				f = cx.subst(f, eq.s, eq.f)
				if f == nil {
					return nil
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cx.normalize(f)
}

// add returns f + g.
func (cx *actx) add(f, g *aform) *aform {
	if f == nil || g == nil {
		return nil
	}
	out := f.clone()
	out.c += g.c
	for m, c := range g.t {
		out.addTerm(m, c)
	}
	return cx.normalize(out)
}

// sub returns f - g.
func (cx *actx) sub(f, g *aform) *aform {
	if f == nil || g == nil {
		return nil
	}
	return cx.add(f, cx.scale(g, -1))
}

// scale returns k·f.
func (cx *actx) scale(f *aform, k int64) *aform {
	if f == nil {
		return nil
	}
	if k == 0 {
		return aConst(0)
	}
	out := &aform{c: f.c * k}
	for m, c := range f.t {
		out.addTerm(m, c*k)
	}
	return cx.normalize(out)
}

// mul returns f·g, or nil when the product exceeds degree 2.
func (cx *actx) mul(f, g *aform) *aform {
	if f == nil || g == nil {
		return nil
	}
	out := aConst(f.c * g.c)
	for m, c := range f.t {
		out.addTerm(m, c*g.c)
	}
	for m, c := range g.t {
		out.addTerm(m, c*f.c)
	}
	for mf, cf := range f.t {
		for mg, cg := range g.t {
			if mf.degree()+mg.degree() > 2 {
				return nil
			}
			out.addTerm(mono2(mf.x, mg.x), cf*cg)
		}
	}
	return cx.normalize(out)
}

// subst replaces every occurrence of symbol s in f by g.
func (cx *actx) subst(f *aform, s symID, g *aform) *aform {
	if f == nil {
		return nil
	}
	out := aConst(f.c)
	for m, c := range f.t {
		switch {
		case !m.mentions(s):
			out.addTerm(m, c)
		case m.y < 0: // c·s
			out = cx.addRaw(out, cx.scale(g, c))
		case m.x == s && m.y == s: // c·s²
			out = cx.addRaw(out, cx.scale(cx.mul(g, g), c))
		default: // c·s·t
			t := m.x
			if t == s {
				t = m.y
			}
			out = cx.addRaw(out, cx.scale(cx.mul(g, aSym(t)), c))
		}
		if out == nil {
			return nil
		}
	}
	return cx.normalize(out)
}

// addRaw adds without re-normalizing (used inside subst loops).
func (cx *actx) addRaw(f, g *aform) *aform {
	if f == nil || g == nil {
		return nil
	}
	out := f.clone()
	out.c += g.c
	for m, c := range g.t {
		out.addTerm(m, c)
	}
	return out
}

// div returns f / g under Go's truncated integer division: exact when
// every coefficient divides, a derived quotient symbol otherwise.
func (cx *actx) div(f, g *aform) *aform {
	if f == nil || g == nil {
		return nil
	}
	f, g = cx.canon(f), cx.canon(g)
	if f == nil || g == nil {
		return nil
	}
	if g.isConst() {
		k := g.c
		if k == 0 {
			return nil
		}
		if exact := cx.exactDiv(f, k); exact != nil {
			return exact
		}
	}
	return aSym(cx.tab.divSym(f, g))
}

// exactDiv returns f/k when the division is exact term by term, nil
// otherwise.
func (cx *actx) exactDiv(f *aform, k int64) *aform {
	if f.c%k != 0 {
		return nil
	}
	for _, c := range f.t {
		if c%k != 0 {
			return nil
		}
	}
	out := aConst(f.c / k)
	for m, c := range f.t {
		out.addTerm(m, c/k)
	}
	return out
}

// mod returns f % g: zero when the fact set proves divisibility or the
// division is exact, a derived remainder symbol otherwise.
func (cx *actx) mod(f, g *aform) *aform {
	if f == nil || g == nil {
		return nil
	}
	f, g = cx.canon(f), cx.canon(g)
	if f == nil || g == nil {
		return nil
	}
	if g.isConst() && g.c != 0 && cx.exactDiv(f, g.c) != nil {
		return aConst(0)
	}
	if cx.modZero(f, g) {
		return aConst(0)
	}
	return aSym(cx.tab.modSym(f, g))
}

// modZero reports whether the fact set proves f ≡ 0 (mod g).
func (cx *actx) modZero(f, g *aform) bool {
	for _, mf := range cx.facts.modZ {
		if cx.equal(f, cx.canon(mf.a.clone())) && cx.equal(g, cx.canon(mf.b.clone())) {
			return true
		}
	}
	return false
}

// normalize applies the quotient rewrites licensed by divisibility
// facts: a term k·q with q = e/d collapses to (k/d)·e when d is a
// constant dividing k and e ≡ 0 (mod d); a product q·s with q = e/s
// collapses to e when e ≡ 0 (mod s). These are exactly the shapes
// produced by block-aligned kernels (3*(lo/3), (lo/b)*b).
func (cx *actx) normalize(f *aform) *aform {
	if f == nil {
		return nil
	}
	for iter := 0; iter < 8; iter++ {
		rewrote := false
		for m, c := range f.t {
			if m.y < 0 {
				s := cx.tab.syms[m.x]
				if s.kind != symDiv || !s.b.isConst() || s.b.c == 0 || c%s.b.c != 0 {
					continue
				}
				if !cx.modZeroStored(s.a, s.b) {
					continue
				}
				f.addTerm(m, -c)
				f = cx.addRaw(f, cx.scale(s.a.clone(), c/s.b.c))
				rewrote = true
				break
			}
			// Quadratic: quotient times its own (symbolic) divisor.
			for _, pair := range [2][2]symID{{m.x, m.y}, {m.y, m.x}} {
				q, other := cx.tab.syms[pair[0]], pair[1]
				if q.kind != symDiv || !cx.equal(q.b, aSym(other)) || !cx.modZeroStored(q.a, q.b) {
					continue
				}
				f.addTerm(m, -c)
				f = cx.addRaw(f, cx.scale(q.a.clone(), c))
				rewrote = true
				break
			}
			if rewrote {
				break
			}
		}
		if !rewrote {
			break
		}
	}
	return f
}

// modZeroStored matches a divisibility fact against stored (already
// canonical at creation time) operand forms, additionally canonicalizing
// both sides so later equality facts (b == 3) connect.
func (cx *actx) modZeroStored(a, b *aform) bool {
	for _, mf := range cx.facts.modZ {
		am := cx.canonNoNorm(mf.a)
		bm := cx.canonNoNorm(mf.b)
		if sameForm(cx.canonNoNorm(a), am) && sameForm(cx.canonNoNorm(b), bm) {
			return true
		}
	}
	return false
}

// canonNoNorm applies equality substitution without the quotient
// rewrites (which would recurse through normalize).
func (cx *actx) canonNoNorm(f *aform) *aform {
	if f == nil {
		return nil
	}
	out := f.clone()
	for iter := 0; iter < 8; iter++ {
		changed := false
		for _, eq := range cx.facts.eq {
			if out.mentions(eq.s) {
				next := aConst(out.c)
				for m, c := range out.t {
					switch {
					case !m.mentions(eq.s):
						next.addTerm(m, c)
					case m.y < 0:
						next = cx.addRaw(next, rawScale(eq.f, c))
					default:
						return out // quadratic eq-substitution: give up, match as-is
					}
					if next == nil {
						return out
					}
				}
				out = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

func rawScale(f *aform, k int64) *aform {
	out := &aform{c: f.c * k}
	for m, c := range f.t {
		out.addTerm(m, c*k)
	}
	return out
}

// sameForm is structural equality of two (already canonical) forms.
func sameForm(f, g *aform) bool {
	if f == nil || g == nil {
		return false
	}
	if f.c != g.c || len(f.t) != len(g.t) {
		return false
	}
	for m, c := range f.t {
		if g.t[m] != c {
			return false
		}
	}
	return true
}

// equal reports whether f and g denote the same value under the facts.
func (cx *actx) equal(f, g *aform) bool {
	if f == nil || g == nil {
		return false
	}
	d := cx.sub(cx.canon(f.clone()), cx.canon(g.clone()))
	return d != nil && d.isZero()
}

// provableNonneg reports whether the facts prove f >= 0: constant sign,
// a matching lower-bound fact (up to a constant offset), or a positive
// combination of symbols that are nonnegative by construction or by
// fact.
func (cx *actx) provableNonneg(f *aform) bool {
	if f == nil {
		return false
	}
	f = cx.canon(f.clone())
	if f == nil {
		return false
	}
	if f.isConst() {
		return f.c >= 0
	}
	for _, lb := range cx.facts.lb {
		d := cx.sub(f, cx.canon(lb.f.clone()))
		if d != nil && d.isConst() && lb.min+d.c >= 0 {
			return true
		}
	}
	if f.c < 0 {
		return false
	}
	for m, c := range f.t {
		if c < 0 || !cx.monoNonneg(m) {
			return false
		}
	}
	return true
}

func (cx *actx) monoNonneg(m mono) bool {
	if !cx.symNonneg(m.x) {
		return false
	}
	return m.y < 0 || cx.symNonneg(m.y)
}

// symNonneg reports whether a single symbol is provably >= 0.
func (cx *actx) symNonneg(s symID) bool {
	info := cx.tab.syms[s]
	if info.nonneg {
		return true
	}
	switch info.kind {
	case symDiv, symMod:
		// Go truncated division: both operands nonnegative makes the
		// quotient and remainder nonnegative (division by zero panics,
		// which yields no value at all).
		return cx.provableNonneg(info.a) && cx.provableNonneg(info.b)
	case symLoop:
		return info.lo != nil && cx.provableNonneg(info.lo)
	}
	for _, lb := range cx.facts.lb {
		d := cx.sub(aSym(s), cx.canon(lb.f.clone()))
		if d != nil && d.isConst() && lb.min+d.c >= 0 {
			return true
		}
	}
	return false
}

// addLB records f >= min.
func (cx *actx) addLB(f *aform, min int64) {
	if f == nil {
		return
	}
	cx.facts.lb = append(cx.facts.lb, lbFact{f: f.clone(), min: min})
}

// addModZero records a ≡ 0 (mod b).
func (cx *actx) addModZero(a, b *aform) {
	if a == nil || b == nil {
		return
	}
	cx.facts.modZ = append(cx.facts.modZ, modFact{a: a.clone(), b: b.clone()})
}

// addEq records s == f.
func (cx *actx) addEq(s symID, f *aform) {
	if f == nil || f.mentions(s) {
		return
	}
	cx.facts.eq = append(cx.facts.eq, eqFact{s: s, f: f.clone()})
}

// ivl is a half-open symbolic interval [lo, hi).
type ivl struct {
	lo, hi *aform
}

// linCoeff returns the linear coefficient of symbol s in f, and whether
// s appears only linearly (not inside any degree-2 monomial).
func linCoeff(f *aform, s symID) (int64, bool) {
	var coeff int64
	for m, c := range f.t {
		if !m.mentions(s) {
			continue
		}
		if m.y >= 0 {
			return 0, false
		}
		coeff = c
	}
	return coeff, true
}

// projectLoop eliminates a loop symbol from a write interval, returning
// the union of [lo(i), hi(i)) over i in [L, H) as one interval — or an
// invalid interval (nils) when no sound projection applies.
//
// Two projections are sound:
//
//   - telescoping: when the per-iteration stride lo(i+1)-lo(i) equals
//     the width hi(i)-lo(i), successive intervals tile, and the union is
//     contained in [lo(L), hi(H-1)) for ANY sign of the symbolic stride:
//     a nonempty contribution forces the width positive, which orders
//     the endpoints; empty contributions add nothing. This is the shape
//     of block-panel writes (y[ib*b : ib*b+b]).
//
//   - constant coefficient: when the loop symbol appears only linearly
//     with constant coefficients, both endpoints are monotone in i and
//     substituting the extreme iterations bounds the union. This is the
//     shape of strided scalar writes (y[3*ib+d]).
func projectLoop(cx *actx, v ivl, s symID) ivl {
	top := ivl{}
	info := cx.tab.syms[s]
	if !v.lo.mentions(s) && !v.hi.mentions(s) {
		return v
	}
	if info.lo == nil || info.hi == nil {
		return top
	}
	last := cx.sub(info.hi, aConst(1))

	width := cx.sub(v.hi, v.lo)
	loNext := cx.subst(v.lo, s, cx.add(aSym(s), aConst(1)))
	if stride := cx.sub(loNext, v.lo); stride != nil && width != nil && cx.equal(stride, width) {
		return ivl{lo: cx.subst(v.lo, s, info.lo), hi: cx.subst(v.hi, s, last)}
	}

	cLo, okLo := linCoeff(v.lo, s)
	cHi, okHi := linCoeff(v.hi, s)
	if !okLo || !okHi {
		return top
	}
	out := ivl{}
	if cLo >= 0 {
		out.lo = cx.subst(v.lo, s, info.lo)
	} else {
		out.lo = cx.subst(v.lo, s, last)
	}
	if cHi >= 0 {
		out.hi = cx.subst(v.hi, s, last)
	} else {
		out.hi = cx.subst(v.hi, s, info.lo)
	}
	return out
}

// contains reports whether the facts prove inner ⊆ [lo, hi).
func (cx *actx) contains(inner ivl, lo, hi *aform) bool {
	if inner.lo == nil || inner.hi == nil {
		return false
	}
	return cx.provableNonneg(cx.sub(inner.lo, lo)) &&
		cx.provableNonneg(cx.sub(hi, inner.hi))
}

// evalForm evaluates a form concretely given base-variable values,
// resolving derived quotient/remainder symbols recursively. It is the
// oracle the FuzzOwnedRange harness checks the symbolic engine against.
// The second result is false on division by zero or an unbound symbol.
func (cx *actx) evalForm(f *aform, val func(symID) (int64, bool)) (int64, bool) {
	if f == nil {
		return 0, false
	}
	var evalSym func(s symID) (int64, bool)
	evalSym = func(s symID) (int64, bool) {
		info := cx.tab.syms[s]
		switch info.kind {
		case symDiv, symMod:
			a, okA := cx.evalWith(info.a, evalSym)
			b, okB := cx.evalWith(info.b, evalSym)
			if !okA || !okB || b == 0 {
				return 0, false
			}
			if info.kind == symDiv {
				return a / b, true
			}
			return a % b, true
		default:
			return val(s)
		}
	}
	return cx.evalWith(f, evalSym)
}

func (cx *actx) evalWith(f *aform, evalSym func(symID) (int64, bool)) (int64, bool) {
	if f == nil {
		return 0, false
	}
	total := f.c
	for m, c := range f.t {
		x, ok := evalSym(m.x)
		if !ok {
			return 0, false
		}
		v := x
		if m.y >= 0 {
			y, ok := evalSym(m.y)
			if !ok {
				return 0, false
			}
			v *= y
		}
		total += c * v
	}
	return total, true
}

// describe renders a form for diagnostics: parameter and field symbols
// by name, everything else structurally.
func (cx *actx) describe(f *aform) string {
	if f == nil {
		return "?"
	}
	var parts []string
	if f.c != 0 || len(f.t) == 0 {
		parts = append(parts, fmt.Sprintf("%d", f.c))
	}
	keys := make([]mono, 0, len(f.t))
	for m := range f.t {
		keys = append(keys, m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].y < keys[j].y
	})
	for _, m := range keys {
		c := f.t[m]
		term := cx.symName(m.x)
		if m.y >= 0 {
			term += "*" + cx.symName(m.y)
		}
		if c != 1 {
			term = fmt.Sprintf("%d*%s", c, term)
		}
		parts = append(parts, term)
	}
	return strings.Join(parts, "+")
}

func (cx *actx) symName(s symID) string {
	info := cx.tab.syms[s]
	switch info.kind {
	case symObj:
		return info.obj.Name()
	case symField:
		return info.obj.Name() + "." + info.field
	case symLoop:
		return fmt.Sprintf("i%d", s)
	case symDiv:
		return "(" + cx.describe(info.a) + ")/(" + cx.describe(info.b) + ")"
	case symMod:
		return "(" + cx.describe(info.a) + ")%(" + cx.describe(info.b) + ")"
	}
	return fmt.Sprintf("u%d", s)
}
