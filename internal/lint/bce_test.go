package lint

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestParseBCEOutput(t *testing.T) {
	out := `# prometheus/internal/sparse
internal/sparse/csr.go:10:5: Found IsInBounds
internal/sparse/csr.go:11:5: Found IsInBounds
internal/sparse/csr.go:12:5: Found IsSliceInBounds
# prometheus/internal/par
internal/par/halo.go:7:3: Found IsInBounds
some unrelated compiler chatter
`
	got := ParseBCEOutput(out)
	want := BCECounts{
		"internal/sparse/csr.go": {"IsInBounds": 2, "IsSliceInBounds": 1},
		"internal/par/halo.go":   {"IsInBounds": 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseBCEOutput = %v, want %v", got, want)
	}
}

func TestBCEBaselineRoundTrip(t *testing.T) {
	counts := BCECounts{
		"b.go": {"IsInBounds": 3},
		"a.go": {"IsSliceInBounds": 1, "IsInBounds": 7},
	}
	text := FormatBCEBaseline(counts)
	if !strings.HasPrefix(text, "#") {
		t.Fatalf("baseline must carry a header comment:\n%s", text)
	}
	// Deterministic ordering: a.go lines before b.go.
	if strings.Index(text, "a.go") > strings.Index(text, "b.go") {
		t.Fatalf("baseline not sorted:\n%s", text)
	}
	back, err := ParseBCEBaseline(text)
	if err != nil {
		t.Fatalf("ParseBCEBaseline: %v", err)
	}
	if !reflect.DeepEqual(back, counts) {
		t.Fatalf("round trip = %v, want %v", back, counts)
	}
}

func TestParseBCEBaselineRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"a.go IsInBounds", "a.go IsInBounds many"} {
		if _, err := ParseBCEBaseline(bad); err == nil {
			t.Fatalf("ParseBCEBaseline(%q) must fail", bad)
		}
	}
}

func TestDiffBCEBaseline(t *testing.T) {
	base := BCECounts{
		"a.go": {"IsInBounds": 2},
		"b.go": {"IsInBounds": 1, "IsSliceInBounds": 2},
	}
	cur := BCECounts{
		"a.go": {"IsInBounds": 3},      // regression
		"b.go": {"IsSliceInBounds": 2}, // IsInBounds improved to 0
		"c.go": {"IsInBounds": 1},      // new file: regression
	}
	regressions, improvements := DiffBCEBaseline(base, cur)
	if len(regressions) != 2 ||
		!strings.Contains(regressions[0], "a.go") || !strings.Contains(regressions[0], "2 -> 3") ||
		!strings.Contains(regressions[1], "c.go") || !strings.Contains(regressions[1], "0 -> 1") {
		t.Fatalf("regressions = %v", regressions)
	}
	if len(improvements) != 1 || !strings.Contains(improvements[0], "b.go") {
		t.Fatalf("improvements = %v", improvements)
	}
	if r, i := diffEmpty(base); r != 0 || i != 0 {
		t.Fatalf("identical counts must diff clean, got %d regressions %d improvements", r, i)
	}
}

func diffEmpty(c BCECounts) (int, int) {
	r, i := DiffBCEBaseline(c, c)
	return len(r), len(i)
}

// TestBCEReportSelf runs the real compiler pass on the kernel packages
// and checks the committed baseline is in sync (no regressions AND no
// stale improvements — the baseline must be exact).
func TestBCEReportSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("compiler invocation skipped in -short mode")
	}
	current, err := BCEReport("../..", nil, "")
	if err != nil {
		t.Fatalf("BCEReport: %v", err)
	}
	if len(current) == 0 {
		t.Fatal("BCEReport found no bounds checks at all; parsing is likely broken")
	}
	data, err := os.ReadFile("testdata/bce_baseline.txt")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	baseline, err := ParseBCEBaseline(string(data))
	if err != nil {
		t.Fatalf("ParseBCEBaseline: %v", err)
	}
	regressions, improvements := DiffBCEBaseline(baseline, current)
	if len(regressions) > 0 {
		t.Errorf("bounds-check regressions vs committed baseline:\n%s", strings.Join(regressions, "\n"))
	}
	if len(improvements) > 0 {
		t.Errorf("baseline is stale (improvements not locked in; run promlint -bce-update):\n%s", strings.Join(improvements, "\n"))
	}
}
