package lint

import "testing"

func TestCollectiveUniformityRankFunctions(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeCheck, fakePar}, `package fixture

import (
	"fixture/par"
	"prometheus/internal/check"
)

func ranked(r *par.Rank, parts [][]int) {
	if r.ID() == 0 {
		r.Barrier() // line 10: flagged (collective under a rank-dependent branch)
	}
	for i := 0; i < r.ID(); i++ {
		r.Barrier() // line 13: flagged (rank-dependent trip count)
	}
	me := r.ID()
	if me%2 == 0 {
		helper(r) // line 17: flagged (call reaches a collective)
	}
	mine := parts[me]
	for range mine {
		r.Barrier() // line 21: flagged (range over rank-dependent data)
	}
	for {
		n := localWork(me)
		if r.AllReduceIntSum(n) == 0 {
			break // uniform exit: reduction results agree on every rank
		}
		r.Barrier() // uniform loop body: fine
	}
	if check.Enabled {
		r.Barrier() // debug guard: exempt
	}
	r.Barrier() // top level: fine
	if me == 0 {
		return
	}
	r.Barrier() // line 37: flagged (ranks that returned above are gone)
}

func helper(r *par.Rank) {
	r.Barrier() // unconditional inside a rank function: fine
}

func localWork(me int) int { return me }
`)
	rule := CollectiveUniformity{ParPath: "fixture/par"}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 10, 13, 17, 21, 37) {
		t.Fatalf("collective-uniformity fired on lines %v, want [10 13 17 21 37]\n%v", lines(got), got)
	}
}

func TestCollectiveUniformityRankBody(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakePar}, `package fixture

import "fixture/par"

func drive(n int, parts [][]float64) {
	c := par.NewComm(n)
	c.Run(func(r *par.Rank) {
		if r.ID() > 0 {
			r.AllReduceSum(1) // line 9: flagged (rank 0 skips the reduction)
		}
		sum := 0.0
		for _, v := range parts[r.ID()] {
			sum += v // local work over the rank's own slice: fine
		}
		total := r.AllReduceSum(sum) // unconditional: fine
		_ = total
	})
}
`)
	rule := CollectiveUniformity{ParPath: "fixture/par"}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 9) {
		t.Fatalf("collective-uniformity fired on lines %v, want [9]\n%v", lines(got), got)
	}
}

func TestSendRecvMatch(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakePar}, `package fixture

import "fixture/par"

const (
	okTag    = 1
	lostTag  = 2
	ghostTag = 3
	typoTag  = 4
	wildTag  = 5
)

func exchange(r *par.Rank, nbrs []int) {
	for _, to := range nbrs {
		r.Send(to, okTag, &nbrs, 8) // matched pair: fine
	}
	got := par.RecvAs[*[]int](r, 0, okTag)
	_ = got
	r.Send(0, lostTag, &nbrs, 8)         // line 19: flagged (sent, never received)
	v := par.RecvAs[int](r, 0, ghostTag) // line 20: flagged (received, never sent)
	_ = v
	r.Send(1, typoTag, 3.5, 8)          // line 22: flagged (no receive takes float64)
	w := par.RecvAs[int](r, 0, typoTag) // line 23: flagged (received as int, sent as float64)
	_ = w
	r.Send(r.ID(), okTag, &nbrs, 8) // line 25: flagged (self-send)
	me := r.ID()
	r.Send(me, okTag, &nbrs, 8) // line 27: flagged (self-send through a variable)
	r.Send(2, wildTag, 1, 8)
	_ = r.Recv(0, wildTag) // untyped wildcard consumes anything: fine
}
`)
	rule := SendRecvMatch{ParPath: "fixture/par"}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 19, 20, 22, 23, 25, 27) {
		t.Fatalf("sendrecv-match fired on lines %v, want [19 20 22 23 25 27]\n%v", lines(got), got)
	}
}

func TestMapOrder(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func flatten(sets map[int]bool, out []int) {
	k := 0
	for v := range sets {
		out[k] = v // line 6: flagged (map order leaks into the output slice)
		k++
	}
}

func gather(m map[string]int) []string {
	keys := []string{}
	for k := range m {
		keys = append(keys, k) // line 14: flagged (nondeterministic element order)
	}
	return keys
}

func fold(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v // order-insensitive accumulator: fine
	}
	return s
}

func invert(m map[string]int) map[int]string {
	inv := make(map[int]string)
	for k, v := range m {
		inv[v] = k // map writes commute: fine
	}
	return inv
}

func local(m map[string]int) {
	for k := range m {
		buf := make([]byte, 0, 8)
		buf = append(buf, k...) // buffer scoped to the body: fine
		_ = buf
	}
}

func sorted(m map[string]int, keys []string, out []int) {
	for i, k := range keys {
		out[i] = m[k] // range over the sorted key slice: fine
	}
}
`)
	rule := MapOrder{Packages: []string{"fixture"}}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 6, 14) {
		t.Fatalf("map-order fired on lines %v, want [6 14]\n%v", lines(got), got)
	}

	// Outside the protected package set the rule is silent.
	cold := MapOrder{Packages: []string{"elsewhere"}}
	if got := Run([]*Package{pkg}, []Rule{cold}); len(got) != 0 {
		t.Fatalf("map-order must not fire outside its package set, got %v", got)
	}
}

func TestHotLoopAllocDeprecatedAllGather(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakePar}, `package fixture

import "fixture/par"

func gatherIDs(r *par.Rank) {
	vs := r.AllGather(r.ID()) // line 6: flagged even outside the kernel set
	_ = vs
	ws := par.AllGatherAs(r, r.ID()) // typed replacement: fine
	_ = ws
}
`)
	rule := HotLoopAlloc{Kernels: []string{"elsewhere"}, ParPath: "fixture/par"}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 6) {
		t.Fatalf("hotloop-alloc deprecated AllGather fired on lines %v, want [6]\n%v", lines(got), got)
	}

	// The par package itself keeps the deprecated wrapper for migration.
	exempt := HotLoopAlloc{Kernels: []string{"elsewhere"}, ParPath: "fixture"}
	if got := Run([]*Package{pkg}, []Rule{exempt}); len(got) != 0 {
		t.Fatalf("deprecated-AllGather check must skip the par package itself, got %v", got)
	}
}
