package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SyncDiscipline enforces where raw synchronization may appear on the
// per-iteration path. Raw synchronization is any channel operation
// (send, receive, range-over-channel, close, select), goroutine spawn,
// or call into sync / sync/atomic.
//
// The discipline has two tiers:
//
//   - Compute packages (sparse, smooth, krylov, multigrid) must contain
//     no raw synchronization in hot regions at all. Kernels express
//     parallelism by calling the substrate (pool.Dispatch, par
//     collectives); a mutex or channel inside an SpMV row loop is a
//     design error regardless of correctness.
//
//   - Substrate packages (par, pool) may synchronize on the hot path,
//     but only inside methods of package-local types — the audited
//     protocol surface — or on a credit channel (a package-local
//     channel created with `make(chan T, N)` for a constant N >= 1,
//     whose buffer bounds the outstanding tokens).
//
// Hotness comes from the same loop-nesting dataflow as hotloop-alloc,
// so blocks guarded by check.Enabled are exempt by construction.
type SyncDiscipline struct {
	// Compute is the zero-synchronization package set; nil means the
	// solver compute kernels (sparse, smooth, krylov, multigrid).
	Compute []string
	// Substrate is the sanctioned-synchronization package set; nil
	// means the communication substrate (par, pool).
	Substrate []string
	// Roots adds hot entry-point names beyond DefaultHotRoots.
	Roots []string
	// CheckPath names the debug-gate package; empty means
	// prometheus/internal/check.
	CheckPath string
}

func defaultComputePackages() []string {
	return []string{
		"prometheus/internal/sparse",
		"prometheus/internal/smooth",
		"prometheus/internal/krylov",
		"prometheus/internal/multigrid",
	}
}

func defaultSubstratePackages() []string {
	return []string{
		"prometheus/internal/par",
		"prometheus/internal/pool",
	}
}

// Name implements Rule.
func (*SyncDiscipline) Name() string { return "sync-discipline" }

// Check implements Rule.
func (r *SyncDiscipline) Check(pkg *Package) []Issue {
	compute := r.Compute
	if compute == nil {
		compute = defaultComputePackages()
	}
	substrate := r.Substrate
	if substrate == nil {
		substrate = defaultSubstratePackages()
	}
	inCompute := pathInSet(pkg.Path, compute)
	inSubstrate := pathInSet(pkg.Path, substrate)
	if !inCompute && !inSubstrate {
		return nil
	}
	checkPath := r.CheckPath
	if checkPath == "" {
		checkPath = "prometheus/internal/check"
	}
	kernels := append(append([]string{}, compute...), substrate...)
	roots := append(DefaultHotRoots(), r.Roots...)
	h := analyzeHot(pkg, kernels, roots, checkPath)

	hot := make(map[ast.Node]bool)
	h.HotRegions(func(n ast.Node) { hot[n] = true })

	var ops []syncOp
	for _, f := range pkg.Files {
		ops = append(ops, r.collectOps(pkg, h, f, hot)...)
	}

	// A flagged select already covers the sends and receives of its comm
	// clauses; reporting those too would double-count one decision.
	var selects []*ast.SelectStmt
	for _, op := range ops {
		if s, ok := op.node.(*ast.SelectStmt); ok {
			selects = append(selects, s)
		}
	}
	var out []Issue
	for _, op := range ops {
		inSelect := false
		for _, s := range selects {
			if op.node != ast.Node(s) && s.Pos() <= op.node.Pos() && op.node.End() <= s.End() {
				inSelect = true
			}
		}
		if inSelect {
			continue
		}
		if inCompute {
			out = append(out, issueAt(pkg, op.node.Pos(), r.Name(), Error,
				"%s on the hot path of compute package %s; kernels must express parallelism through the substrate (pool.Dispatch, par collectives), not synchronize themselves", op.what, pkg.Path))
			continue
		}
		if r.sanctioned(pkg, op) {
			continue
		}
		out = append(out, issueAt(pkg, op.node.Pos(), r.Name(), Error,
			"hot-path %s is outside any method of a package-local type and not on a buffered credit channel; substrate synchronization must stay on the audited protocol surface", op.what))
	}
	return out
}

// syncOp is one raw synchronization site found in a hot region.
type syncOp struct {
	node ast.Node
	what string   // human description: "channel send", "sync.Mutex.Lock call", ...
	ch   ast.Expr // the channel operand for send/receive/range/close, else nil
	fd   *ast.FuncDecl
}

// collectOps scans one file for raw synchronization whose node lies in a
// hot region. Loop statements are never emitted by the hot traversal,
// so range-over-channel is detected through its promoted body
// (hotLoops) or its hot channel operand instead.
func (r *SyncDiscipline) collectOps(pkg *Package, h *hotAnalysis, f *ast.File, hot map[ast.Node]bool) []syncOp {
	var ops []syncOp
	var fds []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fds = append(fds, fd)
		}
	}
	enclosing := func(n ast.Node) *ast.FuncDecl {
		for _, fd := range fds {
			if fd.Pos() <= n.Pos() && n.End() <= fd.End() {
				return fd
			}
		}
		return nil
	}
	add := func(n ast.Node, what string, ch ast.Expr) {
		ops = append(ops, syncOp{node: n, what: what, ch: ch, fd: enclosing(n)})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if hot[n] {
				add(n, "channel send", x.Chan)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && hot[n] {
				add(n, "channel receive", x.X)
			}
		case *ast.SelectStmt:
			if hot[n] {
				add(n, "select statement", nil)
			}
		case *ast.GoStmt:
			if hot[n] {
				add(n, "goroutine spawn", nil)
			}
		case *ast.RangeStmt:
			if _, isChan := pkg.Info.TypeOf(x.X).Underlying().(*types.Chan); isChan {
				if h.hotLoops[ast.Stmt(x)] || hot[x.X] {
					add(n, "range over channel", x.X)
				}
			}
		case *ast.CallExpr:
			if !hot[n] {
				return true
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(x.Args) == 1 {
					add(n, "channel close", x.Args[0])
				}
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				obj := pkg.Info.Uses[sel.Sel]
				if obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "sync", "sync/atomic":
						add(n, obj.Pkg().Name()+"."+syncCallName(pkg, sel)+" call", nil)
					}
				}
			}
		}
		return true
	})
	return ops
}

// syncCallName renders Mutex.Lock-style names for sync package calls.
func syncCallName(pkg *Package, sel *ast.SelectorExpr) string {
	obj := pkg.Info.Uses[sel.Sel]
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return sel.Sel.Name
}

// sanctioned reports whether a substrate synchronization site is on the
// audited surface: inside a method of a package-local type, or a
// send/receive on a credit channel.
func (r *SyncDiscipline) sanctioned(pkg *Package, op syncOp) bool {
	if fd := op.fd; fd != nil && fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == pkg.Types {
			return true
		}
	}
	if op.ch != nil && isCreditChannel(pkg, op.ch) {
		return true
	}
	return false
}

// isCreditChannel reports whether the channel operand resolves to a
// package-local variable or field that is somewhere assigned
// `make(chan T, N)` with a constant capacity N >= 1 — the bounded-token
// idiom whose buffer is the synchronization budget.
func isCreditChannel(pkg *Package, ch ast.Expr) bool {
	var obj types.Object
	switch x := ast.Unparen(ch).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[x.Sel]
	}
	if obj == nil {
		return false
	}
	found := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					if chanExprObj(pkg, lhs) == obj && makeChanCapOK(pkg, x.Rhs[i]) {
						found = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i >= len(x.Values) {
						break
					}
					if objOf(pkg, name) == obj && makeChanCapOK(pkg, x.Values[i]) {
						found = true
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := x.Key.(*ast.Ident); ok {
					if pkg.Info.Uses[id] == obj && makeChanCapOK(pkg, x.Value) {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}

func chanExprObj(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(pkg, x)
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel]
	}
	return nil
}

// makeChanCapOK matches make(chan T, N) with constant N >= 1.
func makeChanCapOK(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if _, ok := pkg.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
		return false
	}
	tv, ok := pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	capN, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && capN >= 1
}
