package lint

import "testing"

// fixtureRule instantiates SharedWrite scoped to the fixture package.
func fixtureSharedWrite() SharedWrite {
	return SharedWrite{Kernels: []string{"fixture"}}
}

// syncDep is a minimal source-level stand-in for the sync package so
// fixtures can exercise mutex spans without export data.
var syncDep = fixtureDep{path: "sync", src: `package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}
`}

func TestSharedWriteContractClean(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type CSR struct {
	RowPtr []int
	Col    []int
	Val    []float64
}

// MulVecRange writes exactly y[lo:hi]: certified clean.
func (a *CSR) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
}

// reslicing narrows the window first; writes stay inside [lo, hi).
type Update struct {
	B []float64
}

func (u *Update) MulVecRange(r, x []float64, lo, hi int) {
	r = r[lo:hi]
	x = x[lo:hi]
	b := u.B[lo:hi]
	for i := range r {
		x[i] += b[i] - r[i]
	}
}
`)
	if got := fixtureSharedWrite().Check(pkg); len(got) != 0 {
		t.Fatalf("clean kernels flagged: %v", got)
	}
}

func TestSharedWriteContractViolations(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type OffByOne struct{}

func (OffByOne) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i+1] = x[i] // line 7: write escapes [lo, hi)
	}
}

type WritesX struct{}

func (WritesX) MulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		x[i] = y[i] // line 15: writes the input vector
	}
}

type WholeVector struct{}

func (WholeVector) MulVecRange(x, y []float64, lo, hi int) {
	for i := range y {
		y[i] = 0 // line 23: ignores the assigned range
	}
}

type Stateful struct{ calls int }

func (s *Stateful) MulVecRange(x, y []float64, lo, hi int) {
	s.calls++ // line 30: receiver write races across workers
	for i := lo; i < hi; i++ {
		y[i] = x[i]
	}
}
`)
	got := fixtureSharedWrite().Check(pkg)
	if !sameLines(got, 7, 15, 23, 30) {
		t.Fatalf("got %v (lines %v), want lines [7 15 23 30]", got, lines(got))
	}
}

func TestSharedWriteGoroutineProvenance(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func fanOut(n int) {
	res := make([]float64, n)
	var total float64
	for id := 0; id < n; id++ {
		go func(id int) {
			res[id] = 1        // ok: spawn-distinct slot
			res[id+1] = 2      // line 9: not the spawn-distinct id
			total += res[id]   // line 10: captured write, no lock
		}(id)
	}
}
`)
	got := fixtureSharedWrite().Check(pkg)
	if !sameLines(got, 9, 10) {
		t.Fatalf("got %v (lines %v), want lines [9 10]", got, lines(got))
	}
}

func TestSharedWriteMutexSpans(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{syncDep}, `package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) work() {
	go func() {
		c.mu.Lock()
		c.n++ // ok: lock held
		c.mu.Unlock()
		c.n++ // line 15: lock released
	}()
}
`)
	got := fixtureSharedWrite().Check(pkg)
	if !sameLines(got, 15) {
		t.Fatalf("got %v (lines %v), want line [15]", got, lines(got))
	}
}

func TestSharedWriteReceivedRanges(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type Kern interface {
	MulVecRange(x, y []float64, lo, hi int)
}

type job struct {
	y      []float64
	lo, hi int
}

// worker owns only what it receives: direct element writes are flagged,
// the contract call is the sanctioned write path.
func worker(jobs chan job, x []float64, k Kern) {
	for j := range jobs {
		j.y[j.lo] = 0                     // line 16: raw write to received slice
		k.MulVecRange(x, j.y, j.lo, j.hi) // ok: verified contract bounds apply
	}
}

func start(jobs chan job, x []float64, k Kern) {
	go worker(jobs, x, k)
}

// dispatcher hands its own shared slice to the contract: the bounds are
// verified, but nothing makes this goroutine the range's owner.
func dispatcher(k Kern, y []float64) {
	go func() {
		k.MulVecRange(y, y, 0, 8) // line 29: shared slice, unowned range
	}()
}
`)
	got := fixtureSharedWrite().Check(pkg)
	if !sameLines(got, 16, 29) {
		t.Fatalf("got %v (lines %v), want lines [16 29]", got, lines(got))
	}
}
