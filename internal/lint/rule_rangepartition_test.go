package lint

import "testing"

func fixtureRangePartition() RangePartition {
	return RangePartition{Kernels: []string{"fixture"}}
}

// dispatchPrologue is the Pool-style scaffolding shared by the fixtures:
// jobs carries (lo, hi) ranges to workers.
const dispatchPrologue = `package fixture

type job struct{ lo, hi int }

type Pool struct {
	jobs chan job
	nw   int
}
`

func TestRangePartitionCleanTelescope(t *testing.T) {
	pkg := checkFixture(t, dispatchPrologue+`
// Dispatch is the canonical telescoping partition, clamp included.
func (p *Pool) Dispatch(n, align int) {
	if n <= 0 {
		return
	}
	if align < 1 {
		align = 1
	}
	units := n / align
	nw := p.nw
	if nw > units {
		nw = units
	}
	if nw <= 1 {
		return
	}
	q := units / nw
	r := units % nw
	lo := 0
	for w := 0; w < nw; w++ {
		u := q
		if w < r {
			u++
		}
		hi := lo + u*align
		if w == nw-1 {
			hi = n
		}
		p.jobs <- job{lo, hi}
		lo = hi
	}
}
`)
	if got := fixtureRangePartition().Check(pkg); len(got) != 0 {
		t.Fatalf("clean telescope flagged: %v", got)
	}
}

func TestRangePartitionMissingClamp(t *testing.T) {
	pkg := checkFixture(t, dispatchPrologue+`
// Dispatch never clamps the last chunk: when nw does not divide n the
// tail rows [nw*(n/nw), n) are handed to no worker.
func (p *Pool) Dispatch(n int) {
	if n <= 0 {
		return
	}
	nw := p.nw
	if nw <= 1 {
		return
	}
	q := n / nw
	lo := 0
	for w := 0; w < nw; w++ { // line 22
		hi := lo + q
		p.jobs <- job{lo, hi}
		lo = hi
	}
}
`)
	got := fixtureRangePartition().Check(pkg)
	if !sameLines(got, 22) {
		t.Fatalf("got %v (lines %v), want line [22]", got, lines(got))
	}
}

func TestRangePartitionConditionalHandoff(t *testing.T) {
	pkg := checkFixture(t, dispatchPrologue+`
// Dispatch skips empty chunks: the drain side expects one job per
// worker, and the skipped worker's rows are never re-covered... the
// accounting breaks either way.
func (p *Pool) Dispatch(n int) {
	if n <= 0 {
		return
	}
	nw := p.nw
	if nw <= 1 {
		return
	}
	q := n / nw
	lo := 0
	for w := 0; w < nw; w++ {
		hi := lo + q
		if w == nw-1 {
			hi = n
		}
		if hi > lo {
			p.jobs <- job{lo, hi} // line 29: conditional handoff
		}
		lo = hi
	}
}
`)
	got := fixtureRangePartition().Check(pkg)
	if !sameLines(got, 29) {
		t.Fatalf("got %v (lines %v), want line [29]", got, lines(got))
	}
}

func TestRangePartitionSeam(t *testing.T) {
	pkg := checkFixture(t, dispatchPrologue+`
// Dispatch advances lo past hi: rows between chunks are skipped.
func (p *Pool) Dispatch(n int) {
	if n <= 0 {
		return
	}
	nw := p.nw
	if nw <= 1 {
		return
	}
	q := n / nw
	lo := 0
	for w := 0; w < nw; w++ {
		hi := lo + q
		if w == nw-1 {
			hi = n
		}
		p.jobs <- job{lo, hi}
		lo = hi + 1 // line 27: opens a one-row gap between chunks
	}
}
`)
	got := fixtureRangePartition().Check(pkg)
	if !sameLines(got, 27) {
		t.Fatalf("got %v (lines %v), want line [27]", got, lines(got))
	}
}

func TestRangePartitionNegativeWidth(t *testing.T) {
	pkg := checkFixture(t, dispatchPrologue+`
// Dispatch never guards q's sign: with n < 0 the chunks walk backwards
// and overlap.
func (p *Pool) Dispatch(n int) {
	nw := p.nw
	if nw <= 1 {
		return
	}
	q := n / nw
	lo := 0
	for w := 0; w < nw; w++ {
		hi := lo + q // line 20: q may be negative
		p.jobs <- job{lo, hi}
		lo = hi
	}
}
`)
	got := fixtureRangePartition().Check(pkg)
	if !sameLines(got, 20) {
		t.Fatalf("got %v (lines %v), want line [20]", got, lines(got))
	}
}

func TestRangePartitionMidLoopClamp(t *testing.T) {
	pkg := checkFixture(t, dispatchPrologue+`
// Dispatch clamps every chunk, not just the last: mid-loop clamps
// truncate chunks and the following lo = hi re-covers nothing.
func (p *Pool) Dispatch(n, cap int) {
	if n <= 0 {
		return
	}
	nw := p.nw
	if nw <= 1 {
		return
	}
	q := n / nw
	lo := 0
	for w := 0; w < nw; w++ {
		hi := lo + q
		if hi > cap { // line 24: not the last-iteration clamp
			hi = cap
		}
		p.jobs <- job{lo, hi}
		lo = hi
	}
}
`)
	got := fixtureRangePartition().Check(pkg)
	if !sameLines(got, 24) {
		t.Fatalf("got %v (lines %v), want line [24]", got, lines(got))
	}
}
