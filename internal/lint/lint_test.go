package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fakeFmt builds a minimal stand-in for the fmt package so fixtures can
// exercise the fmt-aware rule logic without depending on export data.
func fakeFmt() *types.Package {
	pkg := types.NewPackage("fmt", "fmt")
	scope := pkg.Scope()
	anySlice := types.NewSlice(types.Universe.Lookup("any").Type())
	str := types.Typ[types.String]
	errType := types.Universe.Lookup("error").Type()
	intType := types.Typ[types.Int]

	sig := func(params *types.Tuple, results *types.Tuple, variadic bool) *types.Signature {
		return types.NewSignatureType(nil, nil, nil, params, results, variadic)
	}
	param := func(t types.Type) *types.Var { return types.NewParam(token.NoPos, pkg, "", t) }

	scope.Insert(types.NewFunc(token.NoPos, pkg, "Sprintf",
		sig(types.NewTuple(param(str), param(anySlice)), types.NewTuple(param(str)), true)))
	scope.Insert(types.NewFunc(token.NoPos, pkg, "Errorf",
		sig(types.NewTuple(param(str), param(anySlice)), types.NewTuple(param(errType)), true)))
	scope.Insert(types.NewFunc(token.NoPos, pkg, "Println",
		sig(types.NewTuple(param(anySlice)), types.NewTuple(param(intType), param(errType)), true)))
	scope.Insert(types.NewFunc(token.NoPos, pkg, "Printf",
		sig(types.NewTuple(param(str), param(anySlice)), types.NewTuple(param(intType), param(errType)), true)))
	pkg.MarkComplete()
	return pkg
}

// fixtureImporter serves the fake fmt plus any fixture dependency
// packages, falling back to the default importer.
type fixtureImporter struct{ pkgs map[string]*types.Package }

// stdImporter is shared across all fixture type-checks so stdlib
// packages resolve to one *types.Package each (two importer instances
// would otherwise yield e.g. two distinct "context" packages, breaking
// cross-package assignability in fixtures).
var stdImporter = importer.Default()

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return stdImporter.Import(path)
}

// fixtureDep is one source-level dependency package of a fixture,
// type-checked under the given import path before the fixture itself.
type fixtureDep struct {
	path string
	src  string
}

// checkFixture parses and type-checks one fixture source string.
func checkFixture(t *testing.T, src string) *Package {
	t.Helper()
	return checkFixtureWith(t, nil, src)
}

// checkFixtureWith type-checks the dependency packages in order (later
// ones may import earlier ones), then the fixture itself.
func checkFixtureWith(t *testing.T, deps []fixtureDep, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	imp := fixtureImporter{pkgs: map[string]*types.Package{"fmt": fakeFmt()}}
	conf := types.Config{Importer: imp}
	for _, dep := range deps {
		f, err := parser.ParseFile(fset, dep.path+"/dep.go", dep.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture dep %s: %v", dep.path, err)
		}
		p, err := conf.Check(dep.path, fset, []*ast.File{f}, nil)
		if err != nil {
			t.Fatalf("type-check fixture dep %s: %v", dep.path, err)
		}
		imp.pkgs[dep.path] = p
	}
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Path: "fixture", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// lines extracts the line numbers of the issues, in order.
func lines(issues []Issue) []int {
	out := make([]int, len(issues))
	for i, iss := range issues {
		out[i] = iss.Pos.Line
	}
	return out
}

func sameLines(got []Issue, want ...int) bool {
	g := lines(got)
	if len(g) != len(want) {
		return false
	}
	for i := range g {
		if g[i] != want[i] {
			return false
		}
	}
	return true
}

func TestFloatEquality(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func cmp(a, b float64, i, j int, s, u string) bool {
	if a == b { // line 4: flagged
		return true
	}
	if a != b { // line 7: flagged
		return true
	}
	if a == 0 { // zero sentinel: allowed
		return true
	}
	if 0.0 != b { // zero on the left: allowed
		return true
	}
	if a != a { // NaN idiom: allowed
		return true
	}
	if a == 0.5 { // line 19: nonzero constant: flagged
		return true
	}
	if i == j { // ints: not this rule's business
		return true
	}
	return s == u // strings: fine
}
`)
	got := Run([]*Package{pkg}, []Rule{FloatEquality{}})
	if !sameLines(got, 4, 7, 19) {
		t.Fatalf("float-equality fired on lines %v, want [4 7 19]\n%v", lines(got), got)
	}
	for _, iss := range got {
		if iss.Rule != "float-equality" || iss.Severity != Error {
			t.Fatalf("bad issue metadata: %+v", iss)
		}
	}
}

func TestLibraryPanic(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import "fmt"

func validate(n int, err error) {
	if n < 0 {
		panic("fixture: negative size") // convention: allowed
	}
	panic(fmt.Sprintf("fixture: bad n %d", n)) // Sprintf with prefix: allowed
	panic("fixture: " + fmt.Sprintf("%d", n))  // concat with prefix: allowed
	panic("wrong prefix")                      // line 11: flagged
	panic(err)                                 // line 12: flagged
	panic(fmt.Sprintf("no prefix %d", n))      // line 13: flagged
}
`)
	got := Run([]*Package{pkg}, []Rule{LibraryPanic{}})
	if !sameLines(got, 11, 12, 13) {
		t.Fatalf("library-panic fired on lines %v, want [11 12 13]\n%v", lines(got), got)
	}
}

func TestLibraryPanicSkipsMain(t *testing.T) {
	pkg := checkFixture(t, `package main

func main() {
	panic("anything goes in a command")
}
`)
	if got := Run([]*Package{pkg}, []Rule{LibraryPanic{}}); len(got) != 0 {
		t.Fatalf("library-panic must skip package main, got %v", got)
	}
}

func TestUncheckedError(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import (
	"fmt"
	"strings"
)

func mayFail() error { return nil }
func pair() (int, error) { return 0, nil }
func pure() int { return 0 }

func caller() {
	mayFail()        // line 13: flagged
	pair()           // line 14: flagged (tuple containing error)
	pure()           // no error result: fine
	_ = mayFail()    // explicit discard: fine
	if err := mayFail(); err != nil {
		panic(err)
	}
	fmt.Println("x") // fmt print family: excluded
	var sb strings.Builder
	sb.WriteString("y") // in-memory writer: excluded
	_ = sb.String()
}
`)
	got := Run([]*Package{pkg}, []Rule{UncheckedError{}})
	if !sameLines(got, 13, 14) {
		t.Fatalf("unchecked-error fired on lines %v, want [13 14]\n%v", lines(got), got)
	}
}

func TestNakedTypeAssert(t *testing.T) {
	src := `package fixture

func handle(v interface{}) int {
	n := v.(int) // line 4: flagged
	if m, ok := v.(int); ok { // comma-ok: fine
		n += m
	}
	switch x := v.(type) { // type switch: fine
	case int:
		n += x
	}
	return n
}
`
	pkg := checkFixture(t, src)
	rule := NakedTypeAssert{HotPaths: []string{"fixture"}}
	got := Run([]*Package{pkg}, []Rule{rule})
	if !sameLines(got, 4) {
		t.Fatalf("naked-type-assert fired on lines %v, want [4]\n%v", lines(got), got)
	}

	// A package outside the hot-path list is exempt.
	cold := NakedTypeAssert{HotPaths: []string{"somewhere/else"}}
	if got := Run([]*Package{pkg}, []Rule{cold}); len(got) != 0 {
		t.Fatalf("rule must not fire outside its hot paths, got %v", got)
	}
}

func TestExportedDoc(t *testing.T) {
	pkg := checkFixture(t, `package fixture

// Documented is fine.
type Documented struct{}

type Bare struct{}

// Good has a doc comment.
func Good() {}

func Missing() {}

func unexported() {}

// Grouped constants satisfy the rule with one block comment.
const (
	A = iota
	B
)

var Loose int

// Trailing has a trailing doc, which the rule accepts.
type Trailing struct{} // accepted via spec comment

// DoDoc is documented; its method below is not.
type DoDoc struct{}

func (DoDoc) Method() {}

type hidden struct{}

func (hidden) Exported() {}
`)
	// Bare (6), Missing (11), Loose (21), Method (29); the method on the
	// unexported type and everything documented stay quiet.
	got := Run([]*Package{pkg}, []Rule{ExportedDoc{}})
	if !sameLines(got, 6, 11, 21, 29) {
		t.Fatalf("exported-doc fired on lines %v, want [6 11 21 29]\n%v", lines(got), got)
	}
	for _, iss := range got {
		if iss.Severity != Warning {
			t.Fatalf("exported-doc must be a warning: %+v", iss)
		}
	}
}

func TestSuppression(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func cmp(a, b float64) bool {
	//promlint:ignore float-equality exact bit test is intentional here
	if a == b {
		return true
	}
	x := a != b //promlint:ignore float-equality same-line directive
	//promlint:ignore float-equality
	y := a == b // directive above lacks a reason: still flagged (line 10)
	return x || y
}
`)
	got := Run([]*Package{pkg}, []Rule{FloatEquality{}})
	if !sameLines(got, 10) {
		t.Fatalf("suppression failed: issues on lines %v, want [10]\n%v", lines(got), got)
	}
}

func TestIssueString(t *testing.T) {
	iss := Issue{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Rule:     "float-equality",
		Severity: Error,
		Msg:      "bad",
	}
	want := "x.go:3:7: error: [float-equality] bad"
	if iss.String() != want {
		t.Fatalf("Issue.String() = %q, want %q", iss.String(), want)
	}
}

func TestRunSortsIssues(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func f(v interface{}, a, b float64) {
	_ = a == b
	_ = v.(int)
}
`)
	rules := []Rule{NakedTypeAssert{}, FloatEquality{}}
	got := Run([]*Package{pkg}, rules)
	if len(got) != 2 || got[0].Pos.Line > got[1].Pos.Line {
		t.Fatalf("issues not sorted by position: %v", got)
	}
}

// fakeSparse is the fixture stand-in for the sparse package, so
// block-shape fixtures can declare Builder and BlockBuilder values under
// the real import path.
var fakeSparse = fixtureDep{path: "prometheus/internal/sparse", src: `package sparse

// Builder accumulates scalar triplets.
type Builder struct{}

// Add adds one scalar entry.
func (b *Builder) Add(i, j int, v float64) {}

// Build builds.
func (b *Builder) Build() int { return 0 }

// NewBuilder returns a scalar builder.
func NewBuilder(r, c int) *Builder { return &Builder{} }

// BlockBuilder accumulates dense node blocks.
type BlockBuilder struct{}

// AddBlock adds one dense block.
func (bb *BlockBuilder) AddBlock(i, j int, blk []float64) {}

// NewBlockBuilder returns a block builder.
func NewBlockBuilder(r, c, b int) *BlockBuilder { return &BlockBuilder{} }
`}

func TestBlockShape(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeSparse}, `package fixture

import "prometheus/internal/sparse"

func mixed() {
	bb := sparse.NewBlockBuilder(4, 4, 3)
	kb := sparse.NewBuilder(12, 12)
	kb.Add(0, 0, 1.0) // flagged: block builder in scope
	bb.AddBlock(0, 0, nil)
}

func scalarOnly() {
	kb := sparse.NewBuilder(12, 12)
	kb.Add(0, 0, 1.0) // fine: no block builder here
}

func blockedOnly(bb *sparse.BlockBuilder) {
	bb.AddBlock(1, 1, nil) // fine: no scalar adds
}
`)
	got := BlockShape{}.Check(pkg)
	if len(got) != 1 {
		t.Fatalf("issues = %v, want exactly 1", got)
	}
	if got[0].Rule != "block-shape" || got[0].Pos.Line != 8 {
		t.Fatalf("wrong finding: %+v", got[0])
	}
	if !strings.Contains(got[0].Msg, "AddBlock") {
		t.Fatalf("message should point at AddBlock: %s", got[0].Msg)
	}
}

// TestBlockShapeSuppression checks the rule participates in the standard
// promlint:ignore machinery.
func TestBlockShapeSuppression(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeSparse}, `package fixture

import "prometheus/internal/sparse"

func mixed(bb *sparse.BlockBuilder, kb *sparse.Builder) {
	//promlint:ignore block-shape boundary rows are genuinely scalar here
	kb.Add(0, 0, 1.0)
}
`)
	kept, suppressed := RunAll([]*Package{pkg}, []Rule{BlockShape{}})
	if len(kept) != 0 || len(suppressed) != 1 {
		t.Fatalf("kept %v suppressed %v, want 0/1", kept, suppressed)
	}
}

func TestDefaultRulesComplete(t *testing.T) {
	want := map[string]bool{
		"float-equality":        true,
		"library-panic":         true,
		"unchecked-error":       true,
		"naked-type-assert":     true,
		"exported-doc":          true,
		"hotloop-alloc":         true,
		"comm-protocol":         true,
		"check-guard":           true,
		"collective-uniformity": true,
		"sendrecv-match":        true,
		"map-order":             true,
		"block-shape":           true,
		"obs-discipline":        true,
		"shared-write":          true,
		"sync-discipline":       true,
		"range-partition":       true,
		"narrowing-discipline":  true,
		"accumulation-width":    true,
		"krylov-precision":      true,
		"goroutine-lifecycle":   true,
		"ctx-flow":              true,
		"log-discipline":        true,
		"resource-release":      true,
		"bounded-queue":         true,
		"operator-seam":         true,
	}
	names := make([]string, 0, len(want))
	for _, r := range DefaultRules() {
		if !want[r.Name()] {
			t.Fatalf("unexpected rule %q", r.Name())
		}
		names = append(names, r.Name())
	}
	if len(names) != len(want) {
		t.Fatalf("DefaultRules has %d rules (%s), want %d", len(names), strings.Join(names, ", "), len(want))
	}
}

// TestLoadSelf smoke-tests the go list loader against this package itself.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load(".", []string{"."}, "")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "prometheus/internal/lint" {
		t.Fatalf("Load returned %v", pkgs)
	}
	if pkgs[0].IsMain() {
		t.Fatal("internal/lint must not be a main package")
	}
	// The package must lint itself clean with the default rules.
	if issues := Run(pkgs, DefaultRules()); len(issues) != 0 {
		msgs := make([]string, len(issues))
		for i, iss := range issues {
			msgs[i] = iss.String()
		}
		t.Fatalf("internal/lint is not lint-clean:\n%s", strings.Join(msgs, "\n"))
	}
}

// TestFixtureHelperRejectsBadSource keeps the harness honest.
func TestFixtureHelperRejectsBadSource(t *testing.T) {
	defer func() { _ = recover() }()
	bad := "package fixture\nfunc ("
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "bad.go", bad, 0); err == nil {
		t.Fatal("expected parse error")
	}
	_ = fmt.Sprintf // keep fmt linked for the fake importer
}
