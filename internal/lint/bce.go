package lint

import (
	"bufio"
	"fmt"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// This file implements the bounds-check-elimination (BCE) baseline: the
// compiler's -d=ssa/check_bce debug output lists every array/slice
// access it could NOT prove in-bounds, and promlint -bce diffs those
// counts per file against a committed baseline. A kernel edit that
// reintroduces bounds checks in an inner loop fails the diff before it
// costs throughput. Counts only — line numbers shift on every edit, but
// a count increase in a kernel file is exactly the regression signal.

// DefaultBCEBaselinePath is the committed baseline, relative to the
// module root.
const DefaultBCEBaselinePath = "internal/lint/testdata/bce_baseline.txt"

// BCECounts maps file -> check kind ("IsInBounds"/"IsSliceInBounds") ->
// number of compiler-reported unproven accesses.
type BCECounts map[string]map[string]int

// BCEReport compiles the kernel packages with the check_bce debug flag
// and returns the parsed counts. dir is the module root; pkgs defaults
// to KernelPackages(). The Go build cache replays compiler diagnostics,
// so repeated runs are cheap and still complete.
func BCEReport(dir string, pkgs []string, tags string) (BCECounts, error) {
	if pkgs == nil {
		pkgs = KernelPackages()
	}
	args := []string{"build"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	for _, p := range pkgs {
		args = append(args, fmt.Sprintf("-gcflags=%s=-d=ssa/check_bce/debug=1", p))
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build for BCE report failed: %v\n%s", err, out)
	}
	return ParseBCEOutput(string(out)), nil
}

// ParseBCEOutput extracts per-file bounds-check counts from the
// compiler's check_bce diagnostic stream, whose payload lines look like
//
//	internal/sparse/csr.go:107:12: Found IsInBounds
//
// interleaved with "# package" headers.
func ParseBCEOutput(out string) BCECounts {
	counts := make(BCECounts)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		kindIdx := strings.Index(line, ": Found ")
		if kindIdx < 0 || strings.HasPrefix(line, "#") {
			continue
		}
		kind := strings.TrimSpace(line[kindIdx+len(": Found "):])
		if kind != "IsInBounds" && kind != "IsSliceInBounds" {
			continue
		}
		file := line[:strings.IndexByte(line, ':')]
		if counts[file] == nil {
			counts[file] = make(map[string]int)
		}
		counts[file][kind]++
	}
	return counts
}

// FormatBCEBaseline renders counts in the committed baseline format:
// one "file kind count" triple per line, sorted, with a header comment.
func FormatBCEBaseline(counts BCECounts) string {
	var b strings.Builder
	b.WriteString("# promlint -bce baseline: unproven bounds checks per kernel file.\n")
	b.WriteString("# Regenerate with: go run ./cmd/promlint -bce-update\n")
	var files []string
	for f := range counts {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		var kinds []string
		for k := range counts[f] {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "%s %s %d\n", f, k, counts[f][k])
		}
	}
	return b.String()
}

// ParseBCEBaseline parses the committed baseline format.
func ParseBCEBaseline(data string) (BCECounts, error) {
	counts := make(BCECounts)
	sc := bufio.NewScanner(strings.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("lint: BCE baseline line %d: want \"file kind count\", got %q", lineNo, line)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("lint: BCE baseline line %d: bad count %q", lineNo, fields[2])
		}
		if counts[fields[0]] == nil {
			counts[fields[0]] = make(map[string]int)
		}
		counts[fields[0]][fields[1]] = n
	}
	return counts, nil
}

// DiffBCEBaseline compares current counts against the baseline and
// returns human-readable regressions (new checks) and improvements
// (eliminated checks). The tree is acceptable iff regressions is empty;
// improvements mean the baseline should be regenerated to lock them in.
func DiffBCEBaseline(baseline, current BCECounts) (regressions, improvements []string) {
	keys := func(c BCECounts) []string {
		var out []string
		for f, kinds := range c {
			for k := range kinds {
				out = append(out, f+"\x00"+k)
			}
		}
		return out
	}
	seen := make(map[string]bool)
	for _, key := range append(keys(baseline), keys(current)...) {
		if seen[key] {
			continue
		}
		seen[key] = true
		parts := strings.SplitN(key, "\x00", 2)
		f, k := parts[0], parts[1]
		was, now := baseline[f][k], current[f][k]
		switch {
		case now > was:
			regressions = append(regressions, fmt.Sprintf("%s: %s %d -> %d", f, k, was, now))
		case now < was:
			improvements = append(improvements, fmt.Sprintf("%s: %s %d -> %d", f, k, was, now))
		}
	}
	sort.Strings(regressions)
	sort.Strings(improvements)
	return regressions, improvements
}
