package lint

import (
	"go/ast"
)

// GoroutineLifecycle flags goroutines in service packages without a
// provable termination path. A long-running service leaks goroutines
// exactly one way: a spawned function (or anything it calls inside the
// package) blocks forever on a channel operation with no cancellation
// path. The rule therefore:
//
//   - collects every go statement in a service package and resolves the
//     spawned function through the shared function index (declared
//     functions, methods, closure-bound locals, and direct literals);
//   - walks the spawned call graph within the package (calls into other
//     packages are assumed to manage their own lifecycle — the stdlib
//     does, and the kernel substrate has its own ownership rules);
//   - reports, at the offending operation, every blocking op reachable
//     from a go statement: bare sends and non-done receives outside a
//     guarded select, selects with neither a default nor a done/ctx
//     case, ranges over channels, and infinite for loops with no
//     done-guarded exit (a select case on a done source that returns
//     or breaks).
//
// The sanctioned shapes this leaves are exactly the service idioms:
// janitor loops of the form for { select { <-done: return; ... } },
// token-pool operations select-guarded with a default, and shutdown
// bridges that receive from ctx.Done().
type GoroutineLifecycle struct {
	// Services overrides the service-package list (defaults to the
	// tree's serve/promserve layer); fixtures point it at themselves.
	Services []string
}

// Name returns the rule identifier.
func (GoroutineLifecycle) Name() string { return "goroutine-lifecycle" }

// opMessage renders the finding text for one blocking-op kind.
func opMessage(kind string) string {
	switch kind {
	case opSend:
		return "channel send in a spawned goroutine can block forever; send inside a select with a default or done/ctx case"
	case opSelectSend:
		return "send seated in a select with no default and no done/ctx case can block forever"
	case opRecv:
		return "channel receive in a spawned goroutine can block forever; receive inside a select with a default or done/ctx case"
	case opRange:
		return "range over a channel in a spawned goroutine blocks until the channel closes; select on a done channel instead"
	case opSelect:
		return "select in a spawned goroutine has no default and no done/ctx case and can block forever"
	default: // opForever
		return "infinite for loop in a spawned goroutine has no done/ctx-guarded exit (select case on a done source that returns or breaks)"
	}
}

// Check analyzes one package.
func (r GoroutineLifecycle) Check(pkg *Package) []Issue {
	if !pathInSet(pkg.Path, serviceSet(r.Services)) {
		return nil
	}
	ix := indexFuncs(pkg)
	sentTo := collectSentTo(pkg)

	// Roots: the unit spawned by each go statement, wherever it sits.
	var roots []ast.Node
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if unit := r.resolveUnit(pkg, ix, g.Call); unit != nil {
				roots = append(roots, unit)
			}
			return true
		})
	}

	// Walk the spawned subgraph, reporting each unit's direct blocking
	// ops once.
	var issues []Issue
	visited := make(map[ast.Node]bool)
	var visit func(unit ast.Node)
	visit = func(unit ast.Node) {
		if visited[unit] {
			return
		}
		visited[unit] = true
		body := ix.bodies[unit]
		if body == nil {
			return
		}
		for _, op := range collectBlockingOps(pkg, body, sentTo) {
			issues = append(issues, issue(pkg, op.n, r.Name(), Error, "%s", opMessage(op.kind)))
		}
		for _, callee := range r.callEdges(pkg, ix, body) {
			visit(callee)
		}
	}
	for _, root := range roots {
		visit(root)
	}
	sortIssues(issues)
	return issues
}

// resolveUnit maps a spawned or invoked call to its same-package
// function unit, or nil for calls into other packages.
func (GoroutineLifecycle) resolveUnit(pkg *Package, ix *funcIndex, call *ast.CallExpr) ast.Node {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit
	}
	if obj := calleeObject(pkg, call); obj != nil {
		return ix.objToUnit[obj]
	}
	return nil
}

// callEdges lists the same-package units a body invokes directly
// (not crossing into nested literals, which are their own units and
// reached through their own call edges).
func (r GoroutineLifecycle) callEdges(pkg *Package, ix *funcIndex, body *ast.BlockStmt) []ast.Node {
	var out []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if unit := r.resolveUnit(pkg, ix, call); unit != nil {
				out = append(out, unit)
			}
		}
		return true
	})
	return out
}
