package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SendRecvMatch abstractly pairs point-to-point sends with receives. The
// par protocol discipline (enforced by comm-protocol) keeps every message
// tag a compile-time constant, which makes the pairing decidable per
// package: for each constant tag value, the set of Send payload types
// must line up with the set of Recv/RecvAs payload types.
//
//   - a tag that is sent but never received (or received but never sent)
//     in the package is an unmatched protocol edge — with tags constant
//     and protocols package-local, that message can only pile up in the
//     pending queue or block a rank forever;
//   - RecvAs[T] against a tag whose sends carry a different payload type
//     is a guaranteed runtime panic;
//   - a send whose payload type no typed receive accepts (and no untyped
//     Recv wildcard exists) can never be consumed as sent;
//   - sending to the rank's own ID (r.Send(r.ID(), ...) or through a
//     variable bound to it) is flagged: self-messages silently bypass the
//     network path and are almost always a neighbour-list bug.
//
// Calls whose tag argument is not constant (only legal inside par itself,
// where RecvAs forwards its tag to Recv) are ignored.
type SendRecvMatch struct {
	// ParPath is the import path of the message-passing package
	// (default prometheus/internal/par).
	ParPath string
}

// Name implements Rule.
func (SendRecvMatch) Name() string { return "sendrecv-match" }

// sendSite is one constant-tag Send call.
type sendSite struct {
	call    *ast.CallExpr
	payload types.Type
	self    bool
}

// recvSite is one constant-tag Recv/RecvAs call; payload is nil for the
// untyped Recv wildcard.
type recvSite struct {
	call    *ast.CallExpr
	payload types.Type
}

// Check implements Rule.
func (r SendRecvMatch) Check(pkg *Package) []Issue {
	parPath := r.ParPath
	if parPath == "" {
		parPath = "prometheus/internal/par"
	}
	if !usesPackage(pkg, parPath) {
		return nil
	}

	// me := r.ID() bindings, for self-send detection through a variable.
	ownID := collectOwnIDs(pkg, parPath)

	sends := make(map[int64][]sendSite)
	recvs := make(map[int64][]recvSite)
	var tags []int64 // first-seen order, for deterministic reporting
	seenTag := func(tag int64) {
		if _, ok := sends[tag]; ok {
			return
		}
		if _, ok := recvs[tag]; ok {
			return
		}
		tags = append(tags, tag)
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedCallee(pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPath {
				return true
			}
			switch fn.Name() {
			case "Send": // (to, tag, data, bytes)
				if len(call.Args) < 3 {
					return true
				}
				tag, ok := constIntArg(pkg, call.Args[1])
				if !ok {
					return true
				}
				seenTag(tag)
				sends[tag] = append(sends[tag], sendSite{
					call:    call,
					payload: payloadType(pkg, call.Args[2]),
					self:    isSelfSend(pkg, call, ownID),
				})
			case "Recv": // (from, tag)
				if len(call.Args) < 2 {
					return true
				}
				tag, ok := constIntArg(pkg, call.Args[1])
				if !ok {
					return true
				}
				seenTag(tag)
				recvs[tag] = append(recvs[tag], recvSite{call: call})
			case "RecvAs": // RecvAs[T](r, from, tag)
				if len(call.Args) < 3 {
					return true
				}
				tag, ok := constIntArg(pkg, call.Args[2])
				if !ok {
					return true
				}
				seenTag(tag)
				recvs[tag] = append(recvs[tag], recvSite{
					call:    call,
					payload: pkg.Info.Types[call].Type,
				})
			}
			return true
		})
	}

	var out []Issue
	for _, tag := range tags {
		ss, rs := sends[tag], recvs[tag]
		for _, s := range ss {
			if s.self {
				out = append(out, issue(pkg, s.call, r.Name(), Error,
					"rank sends tag %d to its own ID; self-messages bypass the network and usually indicate a neighbour-list bug", tag))
			}
		}
		switch {
		case len(rs) == 0:
			for _, s := range ss {
				out = append(out, issue(pkg, s.call, r.Name(), Error,
					"tag %d is sent but never received in this package; the message can only block a rank or leak into the pending queue", tag))
			}
		case len(ss) == 0:
			for _, rv := range rs {
				out = append(out, issue(pkg, rv.call, r.Name(), Error,
					"tag %d is received but never sent in this package; the receive blocks forever", tag))
			}
		default:
			hasWild := false
			for _, rv := range rs {
				if rv.payload == nil {
					hasWild = true
				}
			}
			for _, rv := range rs {
				if rv.payload == nil {
					continue
				}
				if !anyIdentical(rv.payload, sendTypes(ss)) {
					out = append(out, issue(pkg, rv.call, r.Name(), Error,
						"tag %d is received as %s but sent as %s; RecvAs panics on the payload mismatch",
						tag, typeName(pkg, rv.payload), typeNames(pkg, sendTypes(ss))))
				}
			}
			if !hasWild {
				for _, s := range ss {
					if s.payload != nil && !anyIdentical(s.payload, recvTypes(rs)) {
						out = append(out, issue(pkg, s.call, r.Name(), Error,
							"tag %d sends %s but it is only received as %s; no receive can consume this payload",
							tag, typeName(pkg, s.payload), typeNames(pkg, recvTypes(rs))))
					}
				}
			}
		}
	}
	return out
}

// collectOwnIDs maps variables bound directly from a Rank.ID() call to
// the Rank object whose ID they hold (me := r.ID()).
func collectOwnIDs(pkg *Package, parPath string) map[types.Object]types.Object {
	out := make(map[types.Object]types.Object)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		rank := rankIDReceiver(pkg, parPath, call)
		if rank == nil {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out[obj] = rank
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Rhs {
						record(x.Lhs[i], x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Values {
						record(x.Names[i], x.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// rankIDReceiver returns the receiver object of an r.ID() call on the par
// Rank type, or nil.
func rankIDReceiver(pkg *Package, parPath string, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ID" {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != parPath {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return pkg.Info.Uses[id]
	}
	return nil
}

// isSelfSend reports whether the Send call's destination is the sending
// rank's own ID: r.Send(r.ID(), ...) or me := r.ID(); r.Send(me, ...).
func isSelfSend(pkg *Package, call *ast.CallExpr, ownID map[types.Object]types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	sender := pkg.Info.Uses[recvID]
	if sender == nil {
		return false
	}
	to := ast.Unparen(call.Args[0])
	if idCall, ok := to.(*ast.CallExpr); ok {
		if rank := rankIDReceiverAny(pkg, idCall); rank != nil && rank == sender {
			return true
		}
	}
	if id, ok := to.(*ast.Ident); ok {
		if rank, ok := ownID[pkg.Info.Uses[id]]; ok && rank == sender {
			return true
		}
	}
	return false
}

// rankIDReceiverAny is rankIDReceiver without the package filter; the
// caller has already established the Send belongs to the par API.
func rankIDReceiverAny(pkg *Package, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ID" {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return pkg.Info.Uses[id]
	}
	return nil
}

// constIntArg extracts a constant integer argument value.
func constIntArg(pkg *Package, arg ast.Expr) (int64, bool) {
	tv := pkg.Info.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// payloadType returns the defaulted static type of the payload argument;
// nil payloads (untyped nil) return nil and match anything.
func payloadType(pkg *Package, arg ast.Expr) types.Type {
	t := pkg.Info.Types[arg].Type
	if t == nil || isUntypedNil(t) {
		return nil
	}
	return types.Default(t)
}

// sendTypes returns the distinct non-nil payload types of a send set.
func sendTypes(ss []sendSite) []types.Type {
	var out []types.Type
	for _, s := range ss {
		if s.payload != nil && !containsType(s.payload, out) {
			out = append(out, s.payload)
		}
	}
	return out
}

// recvTypes returns the distinct typed-receive payload types.
func recvTypes(rs []recvSite) []types.Type {
	var out []types.Type
	for _, r := range rs {
		if r.payload != nil && !containsType(r.payload, out) {
			out = append(out, r.payload)
		}
	}
	return out
}

// containsType reports whether t is identical to a member of set.
func containsType(t types.Type, set []types.Type) bool {
	for _, s := range set {
		if types.Identical(t, s) {
			return true
		}
	}
	return false
}

// anyIdentical is containsType with empty-set match: an empty set records
// no constraint from the other side (all payloads there were untyped).
func anyIdentical(t types.Type, set []types.Type) bool {
	return len(set) == 0 || containsType(t, set)
}

// typeName renders a type relative to the package.
func typeName(pkg *Package, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}

// typeNames renders a type list for diagnostics.
func typeNames(pkg *Package, ts []types.Type) string {
	if len(ts) == 0 {
		return "(unknown)"
	}
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ", "
		}
		out += typeName(pkg, t)
	}
	return out
}
