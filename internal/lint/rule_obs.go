package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// obsPath is the import path of the observability package the rule
// guards.
const obsPath = "prometheus/internal/obs"

// ObsDiscipline enforces the observability instrumentation contract:
//
//   - every obs.Register / NewCounter / NewGauge / NewHistogram call
//     takes a constant string name — recording must never format names
//     (no fmt.Sprintf), and constant names keep the registry allocation
//     free;
//   - names are unique across the whole tree, so every event row in a
//     report names exactly one call site family;
//   - a span returned by obs.Start/StartRank must be ended: the result
//     must not be discarded (except the balanced obs.Start(x).End()
//     chain), a span variable needs a matching End/EndFlops or a
//     deferred End, and a return between a non-deferred Start/End pair
//     leaves the span open on that path — use defer, or the
//     wrapper-function pattern for bodies with early returns.
//
// The rule keeps cross-package state for the uniqueness check, so one
// instance must see every package of a run (Run handles this). The obs
// package itself is exempt: its internals and tests exercise the edge
// cases deliberately.
type ObsDiscipline struct {
	seen map[string]token.Position // name -> first registration site
}

// Name implements Rule.
func (r *ObsDiscipline) Name() string { return "obs-discipline" }

// Check implements Rule.
func (r *ObsDiscipline) Check(pkg *Package) []Issue {
	if pkg.Path == obsPath {
		return nil
	}
	if r.seen == nil {
		r.seen = make(map[string]token.Position)
	}
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := obsCallee(pkg, call)
			switch fn {
			case "Register", "NewCounter", "NewGauge", "NewHistogram",
				"NewCounterVec", "NewHistogramVec":
			default:
				return true
			}
			if len(call.Args) < 1 {
				return true
			}
			tv := pkg.Info.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				out = append(out, issue(pkg, call.Args[0], r.Name(), Error,
					"obs.%s name must be a constant string, not a computed value", fn))
				return true
			}
			name := constant.StringVal(tv.Value)
			if first, dup := r.seen[name]; dup {
				out = append(out, issue(pkg, call, r.Name(), Error,
					"obs name %q already registered at %s; names must be unique across the tree", name, first))
			} else {
				r.seen[name] = pkg.Fset.Position(call.Pos())
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, r.checkSpans(pkg, fd)...)
			}
		}
	}
	return out
}

// spanState tracks one span variable's Start/End sites in a function.
type spanState struct {
	ident    *ast.Ident
	start    token.Pos
	ends     int
	deferred bool
	lastEnd  token.Pos
}

// checkSpans verifies every span opened in the function is closed on
// all paths.
func (r *ObsDiscipline) checkSpans(pkg *Package, fd *ast.FuncDecl) []Issue {
	var out []Issue

	// Calls that appear directly under a defer statement.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	spans := make(map[*types.Var]*spanState)
	var returns []token.Pos

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, st.Pos())

		case *ast.ExprStmt:
			// A bare obs.Start(...) statement discards the span.
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(pkg, call) {
				out = append(out, issue(pkg, call, r.Name(), Error,
					"obs.Start result discarded; assign the span and End it (or chain obs.Start(id).End())"))
			}

		case *ast.AssignStmt:
			if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !isSpanStart(pkg, call) {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				out = append(out, issue(pkg, st, r.Name(), Error,
					"obs span must be a local variable so its End is checkable"))
				return true
			}
			var v *types.Var
			if obj := pkg.Info.Defs[id]; obj != nil {
				v, _ = obj.(*types.Var)
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				v, _ = obj.(*types.Var)
			}
			if v == nil {
				out = append(out, issue(pkg, st, r.Name(), Error,
					"obs.Start result discarded; assign the span to a variable and End it"))
				return true
			}
			if sp, ok := spans[v]; ok {
				// Reassignment reuses the variable; keep the first start.
				sp.ident = id
				return true
			}
			spans[v] = &spanState{ident: id, start: st.Pos()}

		case *ast.CallExpr:
			fn := obsCallee(pkg, st)
			if fn != "End" && fn != "EndFlops" {
				return true
			}
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				// obs.Start(id).End() chains are balanced by construction.
				return true
			}
			v, _ := pkg.Info.Uses[recv].(*types.Var)
			if v == nil {
				return true
			}
			sp, ok := spans[v]
			if !ok {
				return true
			}
			sp.ends++
			if deferred[st] {
				sp.deferred = true
			}
			if st.End() > sp.lastEnd {
				sp.lastEnd = st.End()
			}
		}
		return true
	})

	for _, sp := range spans {
		if sp.ends == 0 {
			out = append(out, issue(pkg, sp.ident, r.Name(), Error,
				"obs span %s is never ended; call %s.End()/EndFlops or defer it", sp.ident.Name, sp.ident.Name))
			continue
		}
		if sp.deferred {
			continue
		}
		for _, ret := range returns {
			if ret > sp.start && ret < sp.lastEnd {
				out = append(out, issue(pkg, sp.ident, r.Name(), Error,
					"return between obs.Start and %s.End leaves the span open on that path; defer the End or use a span-free body function", sp.ident.Name))
				break
			}
		}
	}
	sortIssues(out)
	return out
}

// obsCallee returns the name of the obs package function or method a
// call invokes, or "" when the callee is not from the obs package.
func obsCallee(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
		return ""
	}
	if _, ok := obj.(*types.Func); !ok {
		return ""
	}
	return obj.Name()
}

// isSpanStart reports whether the call is obs.Start or obs.StartRank.
func isSpanStart(pkg *Package, call *ast.CallExpr) bool {
	fn := obsCallee(pkg, call)
	return fn == "Start" || fn == "StartRank"
}
