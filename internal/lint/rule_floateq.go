package lint

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// FloatEquality flags naked ==/!= comparisons between floating-point
// operands. Exact equality on floats is almost always a rounding bug in a
// solver; comparisons must either go through a tolerance (math.Abs(a-b)
// <= tol) or compare against the literal constant 0, which is the one
// well-defined sentinel this codebase uses deliberately (absent CSR
// entries, unset options, exact zero vectors). The NaN idiom x != x is
// also permitted.
type FloatEquality struct{}

// Name implements Rule.
func (FloatEquality) Name() string { return "float-equality" }

// Check implements Rule.
func (r FloatEquality) Check(pkg *Package) []Issue {
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg, be.X) && !isFloat(pkg, be.Y) {
				return true
			}
			// Comparing to the exact constant zero is the sanctioned
			// sentinel check; two constants fold at compile time.
			xc, yc := constValue(pkg, be.X), constValue(pkg, be.Y)
			if xc != nil && yc != nil {
				return true
			}
			if isZeroConst(xc) || isZeroConst(yc) {
				return true
			}
			// x != x is the portable NaN test.
			if be.Op == token.NEQ && exprString(pkg, be.X) == exprString(pkg, be.Y) {
				return true
			}
			out = append(out, issue(pkg, be, r.Name(), Error,
				"floating-point %s comparison; use a tolerance (math.Abs(a-b) <= tol) or compare against literal 0", be.Op))
			return true
		})
	}
	return out
}

// isFloat reports whether the expression has floating-point type.
func isFloat(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// constValue returns the expression's compile-time value, or nil.
func constValue(pkg *Package, e ast.Expr) constant.Value {
	return pkg.Info.Types[e].Value
}

// isZeroConst reports whether v is a numeric constant equal to zero.
func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}

// exprString renders an expression for structural comparison.
func exprString(pkg *Package, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, pkg.Fset, e); err != nil {
		return ""
	}
	return sb.String()
}
