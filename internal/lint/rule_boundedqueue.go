package lint

import (
	"go/ast"
	"go/types"
)

// BoundedQueue keeps every queue in the service layer bounded by
// construction, so load shedding is a type-level property instead of an
// operational hope:
//
//   - every buffered channel made in a service package must have a
//     compile-time-constant capacity — a capacity computed from config
//     or request data lets a runtime knob grow the queue unboundedly
//     (unbuffered channels are rendezvous points and are fine);
//   - every channel send must be seated in a select with a default
//     clause (shed/drop when full) or a done/ctx case (give up on
//     cancellation). A bare send is an unbounded wait on queue space —
//     backpressure felt as a stuck request instead of a 503.
//
// Together with goroutine-lifecycle this pins the token-pool semaphore
// idiom: a const-capacity channel seeded with select-default sends,
// drained by select-guarded receives.
type BoundedQueue struct {
	// Services overrides the service-package list (defaults to the
	// tree's serve/promserve layer); fixtures point it at themselves.
	Services []string
}

// Name returns the rule identifier.
func (BoundedQueue) Name() string { return "bounded-queue" }

// Check analyzes one package.
func (r BoundedQueue) Check(pkg *Package) []Issue {
	if !pathInSet(pkg.Path, serviceSet(r.Services)) {
		return nil
	}
	var issues []Issue
	sentTo := collectSentTo(pkg)

	// Channel construction: capacity must be a constant.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			tv, ok := pkg.Info.Types[call.Args[0]]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			capArg := call.Args[1]
			if ctv, ok := pkg.Info.Types[capArg]; !ok || ctv.Value == nil {
				issues = append(issues, issue(pkg, capArg, r.Name(), Error,
					"channel capacity in a service package must be a compile-time constant; seed a const-capacity token pool instead of sizing the channel from config"))
			}
			return true
		})
	}

	// Sends: must be select-guarded.
	ix := indexFuncs(pkg)
	for _, body := range ix.bodies {
		for _, op := range collectBlockingOps(pkg, body, sentTo) {
			switch op.kind {
			case opSend:
				issues = append(issues, issue(pkg, op.n, r.Name(), Error,
					"bare channel send in a service package waits unboundedly for queue space; send inside a select with a default or done/ctx case"))
			case opSelectSend:
				issues = append(issues, issue(pkg, op.n, r.Name(), Error,
					"send seated in a select with no default and no done/ctx case still waits unboundedly; add a default or done/ctx case"))
			}
		}
	}
	sortIssues(issues)
	return issues
}
