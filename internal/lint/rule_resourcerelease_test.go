package lint

import "testing"

func TestResourceReleaseViolations(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type sem struct{ n int }

func (s *sem) Acquire() error { return nil }
func (s *sem) Release()       {}

type entry struct{ n int }

type cache struct{ e entry }

func (c *cache) Checkout() *entry { return &c.e }
func (c *cache) Checkin(e *entry) {}

func leakNoRelease(s *sem) error {
	if err := s.Acquire(); err != nil { // line 16: flagged - never released
		return err
	}
	return nil
}

func leakOnPath(s *sem, fail bool) error {
	if err := s.Acquire(); err != nil {
		return err
	}
	if fail {
		return nil // line 27: flagged - leaks the slot on this path
	}
	s.Release()
	return nil
}

func discard(c *cache) {
	c.Checkout() // line 34: flagged - acquired resource discarded
}
`)
	got := ResourceRelease{Services: []string{"fixture"}}.Check(pkg)
	if !sameLines(got, 16, 27, 34) {
		t.Errorf("resource-release lines = %v, want [16 27 34]", lines(got))
	}
}

func TestResourceReleaseCleanShapes(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type sem struct{ n int }

func (s *sem) Acquire() error { return nil }
func (s *sem) Release()       {}

type entry struct{ n int }

type cache struct{ e entry }

func (c *cache) Checkout() *entry { return &c.e }
func (c *cache) Checkin(e *entry) {}

type box struct{ e *entry }

func deferredPair(s *sem, c *cache) error {
	if err := s.Acquire(); err != nil {
		return err
	}
	defer s.Release()
	e := c.Checkout()
	defer c.Checkin(e)
	return nil
}

func deferredClosure(s *sem) error {
	if err := s.Acquire(); err != nil {
		return err
	}
	defer func() { s.Release() }()
	return nil
}

func straightLine(s *sem) error {
	if err := s.Acquire(); err != nil {
		return err
	}
	s.Release()
	return nil
}

func transfer(c *cache) *entry {
	e := c.Checkout()
	return e
}

func stash(c *cache, b *box) {
	e := c.Checkout()
	b.e = e
}
`)
	got := ResourceRelease{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("clean acquire/release shapes flagged: %v", got)
	}
}

func TestResourceReleaseDistinctReceivers(t *testing.T) {
	// A release on one receiver must not satisfy another receiver's
	// obligation.
	pkg := checkFixture(t, `package fixture

type sem struct{ n int }

func (s *sem) Acquire() error { return nil }
func (s *sem) Release()       {}

func crossed(a, b *sem) error {
	if err := a.Acquire(); err != nil { // line 9: flagged - b's release does not pay a's debt
		return err
	}
	defer b.Release()
	return nil
}
`)
	got := ResourceRelease{Services: []string{"fixture"}}.Check(pkg)
	if !sameLines(got, 9) {
		t.Errorf("resource-release lines = %v, want [9]", lines(got))
	}
}
