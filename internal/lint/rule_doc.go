package lint

import (
	"go/ast"
	"go/token"
)

// ExportedDoc requires doc comments on the exported API of library
// packages: functions, methods on exported types, and type/var/const
// declarations. A grouped declaration is satisfied by a single comment on
// the group (the idiom for enum blocks); individual specs may also carry
// their own doc or trailing line comment.
type ExportedDoc struct{}

// Name implements Rule.
func (ExportedDoc) Name() string { return "exported-doc" }

// Check implements Rule.
func (r ExportedDoc) Check(pkg *Package) []Issue {
	if pkg.IsMain() {
		return nil
	}
	var out []Issue
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil || !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				out = append(out, issue(pkg, d, r.Name(), Warning,
					"exported %s %s has no doc comment", kind, d.Name.Name))
			case *ast.GenDecl:
				if d.Tok == token.IMPORT || d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					out = append(out, r.checkSpec(pkg, spec)...)
				}
			}
		}
	}
	return out
}

// checkSpec reports undocumented exported names in one spec of an
// undocumented declaration group.
func (r ExportedDoc) checkSpec(pkg *Package, spec ast.Spec) []Issue {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
			return []Issue{issue(pkg, s, r.Name(), Warning,
				"exported type %s has no doc comment", s.Name.Name)}
		}
	case *ast.ValueSpec:
		if s.Doc != nil || s.Comment != nil {
			return nil
		}
		for _, name := range s.Names {
			if name.IsExported() {
				return []Issue{issue(pkg, s, r.Name(), Warning,
					"exported name %s has no doc comment", name.Name)}
			}
		}
	}
	return nil
}

// exportedReceiver reports whether the method's receiver base type is
// exported (methods on unexported types are internal API). Plain
// functions trivially pass.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
