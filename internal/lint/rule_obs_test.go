package lint

import (
	"strings"
	"testing"
)

// fakeObs is the fixture stand-in for the obs package, type-checked
// under the real import path so obs-discipline fixtures exercise the
// rule's callee resolution.
var fakeObs = fixtureDep{path: "prometheus/internal/obs", src: `package obs

// EventID identifies a registered event.
type EventID int32

// Span is an open interval.
type Span struct{ rank int32 }

// End closes the span.
func (s Span) End() {}

// EndFlops closes the span, crediting flops.
func (s Span) EndFlops(flops int64) {}

// Register interns an event name.
func Register(name string) EventID { return 0 }

// Start opens a span on rank 0.
func Start(id EventID) Span { return Span{} }

// StartRank opens a span on a rank.
func StartRank(id EventID, rank int) Span { return Span{} }

// Counter is a monotonic metric.
type Counter struct{}

// Add increments.
func (c *Counter) Add(n int64) {}

// NewCounter registers a counter.
func NewCounter(name string) *Counter { return &Counter{} }

// Gauge is a last-value metric.
type Gauge struct{}

// NewGauge registers a gauge.
func NewGauge(name string) *Gauge { return &Gauge{} }

// Histogram is a distribution metric.
type Histogram struct{}

// NewHistogram registers a histogram.
func NewHistogram(name string) *Histogram { return &Histogram{} }
`}

func TestObsDisciplineNames(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeObs}, `package fixture

import (
	"fmt"

	"prometheus/internal/obs"
)

const suffix = "spmv"

var (
	evGood  = obs.Register("fixture.good")      // constant: fine
	evConst = obs.Register("fixture." + suffix) // constant expression: fine
	cGood   = obs.NewCounter("fixture.counter") // fine
	evDup   = obs.Register("fixture.good")      // line 15: duplicate name
)

func dynamic(i int) obs.EventID {
	id := obs.Register(fmt.Sprintf("fixture.ev%d", i)) // line 19: computed name
	name := "fixture.var"
	_ = obs.NewGauge(name + fmt.Sprintf("%d", i)) // line 21: computed name
	return id
}
`)
	got := Run([]*Package{pkg}, []Rule{&ObsDiscipline{}})
	if !sameLines(got, 15, 19, 21) {
		t.Fatalf("obs-discipline fired on lines %v, want [15 19 21]\n%v", lines(got), got)
	}
	if !strings.Contains(got[0].Msg, "already registered") {
		t.Fatalf("duplicate finding should name the first site: %s", got[0].Msg)
	}
	for _, iss := range got {
		if iss.Rule != "obs-discipline" || iss.Severity != Error {
			t.Fatalf("bad issue metadata: %+v", iss)
		}
	}
}

func TestObsDisciplineCrossPackageNames(t *testing.T) {
	// Two packages registering the same name: the second is flagged
	// because one rule instance carries the registry across packages.
	rule := &ObsDiscipline{}
	first := checkFixtureWith(t, []fixtureDep{fakeObs}, `package fixture

import "prometheus/internal/obs"

var evA = obs.Register("shared.name")
`)
	if got := Run([]*Package{first}, []Rule{rule}); len(got) != 0 {
		t.Fatalf("first registration flagged: %v", got)
	}
	second := checkFixtureWith(t, []fixtureDep{fakeObs}, `package fixture

import "prometheus/internal/obs"

var evB = obs.Register("shared.name") // line 5: duplicate across packages
`)
	got := Run([]*Package{second}, []Rule{rule})
	if !sameLines(got, 5) {
		t.Fatalf("cross-package duplicate not flagged: %v", got)
	}
}

func TestObsDisciplineSpans(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeObs}, `package fixture

import "prometheus/internal/obs"

var ev = obs.Register("fixture.span")

func balanced() {
	sp := obs.Start(ev)
	sp.EndFlops(10) // matching end: fine
}

func chained() {
	obs.Start(ev).End() // balanced chain: fine
}

func deferred() (int, error) {
	sp := obs.Start(ev)
	defer sp.End() // deferred: fine with any returns
	if true {
		return 1, nil
	}
	return 0, nil
}

func deferredChain() {
	defer obs.Start(ev).End() // fine
}

func discarded() {
	obs.Start(ev) // line 30: span discarded
}

func leaked() {
	sp := obs.Start(ev) // line 34: never ended
	_ = sp
}

func escapes(fail bool) error {
	sp := obs.Start(ev) // line 39: return escapes the open span
	if fail {
		return nil
	}
	sp.End()
	return nil
}

func wrapper() int {
	sp := obs.Start(ev)
	n := body()
	sp.End()
	return n // return after End: fine
}

func body() int {
	if true {
		return 1
	}
	return 0
}

func ranked(r int) {
	sp := obs.StartRank(ev, r)
	sp.End()
}
`)
	got := Run([]*Package{pkg}, []Rule{&ObsDiscipline{}})
	if !sameLines(got, 30, 34, 39) {
		t.Fatalf("obs-discipline fired on lines %v, want [30 34 39]\n%v", lines(got), got)
	}
}

// TestObsDisciplineSuppression checks the rule participates in the
// standard promlint:ignore machinery.
func TestObsDisciplineSuppression(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{fakeObs}, `package fixture

import "prometheus/internal/obs"

var ev = obs.Register("fixture.sup")

func leaky() {
	//promlint:ignore obs-discipline span handed to test harness deliberately
	obs.Start(ev)
}
`)
	kept, suppressed := RunAll([]*Package{pkg}, []Rule{&ObsDiscipline{}})
	if len(kept) != 0 || len(suppressed) != 1 {
		t.Fatalf("kept %v suppressed %v, want 0/1", kept, suppressed)
	}
}
