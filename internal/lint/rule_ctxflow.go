package lint

import (
	"go/ast"
)

// CtxFlow enforces the cancellation-flow discipline in service packages:
// context.Context is how a request's lifetime reaches the code doing its
// work, so it must flow through call signatures, never be minted
// mid-stack or frozen into state.
//
//   - no context.Background()/context.TODO() outside package main: a
//     library-side Background detaches work from the request that asked
//     for it, so cancellation can never reach it. Commands own the root
//     context, so main packages are exempt;
//   - no context.Context struct fields: a stored ctx outlives the
//     request it belongs to and silently rebinds later work to a dead
//     (or worse, unrelated) lifetime. Pass it as an argument;
//   - a context.Context parameter must be the first parameter, the
//     signature convention every caller can rely on;
//   - a function that receives a ctx must honor it at its blocking
//     points: a select with no default and no done/ctx case, a bare
//     receive from a non-done source, or a range over a channel inside
//     a ctx-holding function blocks in a way its own ctx cannot cancel.
type CtxFlow struct {
	// Services overrides the service-package list (defaults to the
	// tree's serve/promserve layer); fixtures point it at themselves.
	Services []string
}

// Name returns the rule identifier.
func (CtxFlow) Name() string { return "ctx-flow" }

// Check analyzes one package.
func (r CtxFlow) Check(pkg *Package) []Issue {
	if !pathInSet(pkg.Path, serviceSet(r.Services)) {
		return nil
	}
	var issues []Issue
	sentTo := collectSentTo(pkg)

	// Background/TODO calls and ctx struct fields, anywhere in the file.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if pkg.IsMain() {
					return true
				}
				obj := calleeObject(pkg, x)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
					return true
				}
				if name := obj.Name(); name == "Background" || name == "TODO" {
					issues = append(issues, issue(pkg, x, r.Name(), Error,
						"context.%s() outside package main detaches work from its request; accept a ctx parameter instead", name))
				}
			case *ast.StructType:
				for _, field := range x.Fields.List {
					tv, ok := pkg.Info.Types[field.Type]
					if ok && isContextType(tv.Type) {
						issues = append(issues, issue(pkg, field, r.Name(), Error,
							"context.Context stored in a struct field outlives its request; pass ctx as a parameter"))
					}
				}
			}
			return true
		})
	}

	// Per function unit: parameter position and blocking-point checks.
	ix := indexFuncs(pkg)
	for unit, body := range ix.bodies {
		params := unitParams(unit)
		if params == nil {
			continue
		}
		hasCtx := false
		idx := 0
		for _, field := range params.List {
			width := len(field.Names)
			if width == 0 {
				width = 1
			}
			tv, ok := pkg.Info.Types[field.Type]
			if ok && isContextType(tv.Type) {
				hasCtx = true
				if idx != 0 {
					issues = append(issues, issue(pkg, field, r.Name(), Error,
						"context.Context must be the first parameter"))
				}
			}
			idx += width
		}
		if !hasCtx {
			continue
		}
		for _, op := range collectBlockingOps(pkg, body, sentTo) {
			switch op.kind {
			case opSelect:
				issues = append(issues, issue(pkg, op.n, r.Name(), Error,
					"function holds a ctx but this select has no default and no done/ctx case; its own ctx cannot cancel it"))
			case opRecv:
				issues = append(issues, issue(pkg, op.n, r.Name(), Error,
					"function holds a ctx but this receive cannot be cancelled; select on the channel and ctx.Done()"))
			case opRange:
				issues = append(issues, issue(pkg, op.n, r.Name(), Error,
					"function holds a ctx but this range over a channel cannot be cancelled; select on the channel and ctx.Done()"))
			}
		}
	}
	sortIssues(issues)
	return issues
}

// unitParams returns the parameter list of a function unit (declaration
// or literal).
func unitParams(unit ast.Node) *ast.FieldList {
	switch x := unit.(type) {
	case *ast.FuncDecl:
		return x.Type.Params
	case *ast.FuncLit:
		return x.Type.Params
	}
	return nil
}
