package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotLoopAlloc flags per-iteration heap allocations in the solver's
// kernel packages. An expression is a finding when it both allocates
// (make/new, map or slice literals, &T{} escapes, closure creation,
// string concatenation, allocating string conversions, appends into
// per-iteration buffers, or concrete→interface boxing at call sites)
// and sits in a hot region as computed by the loop-nesting dataflow in
// dataflow.go — code reached once per solver iteration from a kernel
// entry point. Setup and constructor code may allocate freely; the
// steady-state SpMV/smoother/halo paths may not.
type HotLoopAlloc struct {
	// Kernels is the package set to analyze (default KernelPackages).
	Kernels []string
	// Roots names the per-iteration entry points (default DefaultHotRoots).
	Roots []string
	// CheckPath is the invariant package whose Enabled guard exempts a
	// block (default prometheus/internal/check).
	CheckPath string
	// ParPath is the message-passing package (default
	// prometheus/internal/par); calls to its deprecated boxing AllGather
	// are flagged in every package, hot or not.
	ParPath string
}

// Name implements Rule.
func (HotLoopAlloc) Name() string { return "hotloop-alloc" }

// Check implements Rule.
func (r HotLoopAlloc) Check(pkg *Package) []Issue {
	kernels := r.Kernels
	if kernels == nil {
		kernels = KernelPackages()
	}
	roots := r.Roots
	if roots == nil {
		roots = DefaultHotRoots()
	}
	checkPath := r.CheckPath
	if checkPath == "" {
		checkPath = "prometheus/internal/check"
	}
	parPath := r.ParPath
	if parPath == "" {
		parPath = "prometheus/internal/par"
	}
	var out []Issue
	report := func(n ast.Node, format string, args ...interface{}) {
		out = append(out, issue(pkg, n, r.Name(), Error, format, args...))
	}
	// The deprecated AllGather boxes every value through interface{}; the
	// check applies tree-wide (not just hot regions) so the typed
	// replacement actually displaces the old API.
	if pkg.Path != parPath {
		r.checkDeprecatedGather(pkg, parPath, report)
	}
	if !pathInSet(pkg.Path, kernels) {
		return out
	}
	h := analyzeHot(pkg, kernels, roots, checkPath)
	h.HotRegions(func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			r.checkCall(pkg, h, x, report)
		case *ast.CompositeLit:
			switch pkg.Info.Types[x].Type.Underlying().(type) {
			case *types.Slice:
				report(x, "hot path allocates: slice literal built per iteration; hoist the buffer into solver state")
			case *types.Map:
				report(x, "hot path allocates: map literal built per iteration; hoist it into solver state")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "hot path allocates: &composite literal escapes per iteration; reuse a hoisted value")
				}
			}
		case *ast.FuncLit:
			report(x, "hot path allocates: closure created per iteration; hoist it or use a named function")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(pkg, x) && pkg.Info.Types[x].Value == nil {
				report(x, "hot path allocates: string concatenation per iteration; precompute or use a builder outside the kernel")
			}
		}
	})
	return out
}

// checkDeprecatedGather flags calls to par's interface{}-returning
// AllGather outside par itself.
func (r HotLoopAlloc) checkDeprecatedGather(pkg *Package, parPath string, report func(ast.Node, string, ...interface{})) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := resolvedCallee(pkg, call)
			if fn != nil && fn.Name() == "AllGather" && fn.Pkg() != nil && fn.Pkg().Path() == parPath {
				report(call, "deprecated interface{}-returning AllGather boxes every rank's value; use the typed par.AllGatherAs")
			}
			return true
		})
	}
}

// checkCall flags allocating calls: make/new builtins, appends that grow
// per-iteration buffers, allocating string conversions, and interface
// boxing of concrete arguments.
func (r HotLoopAlloc) checkCall(pkg *Package, h *hotAnalysis, call *ast.CallExpr, report func(ast.Node, string, ...interface{})) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				report(call, "hot path allocates: make(...) runs per iteration; hoist the buffer into solver/smoother state")
			case "new":
				report(call, "hot path allocates: new(...) runs per iteration; hoist the value into solver/smoother state")
			case "append":
				if len(call.Args) > 0 {
					if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						obj := pkg.Info.Uses[dst]
						if obj == nil {
							obj = pkg.Info.Defs[dst]
						}
						if obj != nil && h.hotDecl[obj] {
							report(call, "hot path allocates: append grows %s, which is declared per iteration; hoist the buffer and reset it with [:0]", dst.Name)
						}
					}
				}
			}
			return
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Allocating conversions: string <-> []byte/[]rune copy the data.
		if pkg.Info.Types[call.Args[0]].Value == nil && isAllocatingConversion(tv.Type, pkg.Info.Types[call.Args[0]].Type) {
			report(call, "hot path allocates: string/byte-slice conversion copies per iteration; keep one representation in the kernel")
		}
		return
	}
	for _, arg := range boxedArgs(pkg, call) {
		report(arg, "hot path allocates: %s value boxed into interface at call; pass a pointer payload or use a typed API",
			types.TypeString(pkg.Info.Types[arg].Type, types.RelativeTo(pkg.Types)))
	}
}

// boxedArgs returns the call arguments that undergo an allocating
// concrete→interface conversion: the parameter is an interface, the
// argument is a concrete non-constant value, and its representation is
// not pointer-shaped (pointers, channels, maps and funcs store directly
// in the interface word without allocating).
func boxedArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []ast.Expr
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				// s... passes the slice itself; its type matches and
				// nothing is boxed per element.
				continue
			}
			if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.Types[arg]
		if at.Type == nil || at.Value != nil {
			continue // constants are staticized by the compiler
		}
		if types.IsInterface(at.Type) || isUntypedNil(at.Type) || pointerShaped(at.Type) {
			continue
		}
		out = append(out, arg)
	}
	return out
}

// pointerShaped reports whether values of the type occupy exactly one
// pointer word, so interface conversion stores them without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isUntypedNil reports the untyped nil type.
func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isStringExpr reports whether the expression has string type.
func isStringExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isAllocatingConversion reports string<->[]byte/[]rune conversions.
func isAllocatingConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pathInSet reports whether path is one of (or below) the set entries.
func pathInSet(path string, set []string) bool {
	for _, k := range set {
		if path == k || (len(path) > len(k) && path[:len(k)] == k && path[len(k)] == '/') {
			return true
		}
	}
	return false
}
