package lint

import (
	"os"
	"path/filepath"
	"strings"
)

// JSONIssue is the machine-readable form of one finding.
type JSONIssue struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// JSONReport is the promlint -json document: the kept findings plus the
// suppression accounting, so automation sees both the debt reported and
// the debt silenced by promlint:ignore directives.
type JSONReport struct {
	Findings []JSONIssue `json:"findings"`
	// Suppressed is the total number of findings silenced by ignore
	// directives; SuppressedByRule breaks it down per rule.
	Suppressed       int            `json:"suppressed"`
	SuppressedByRule map[string]int `json:"suppressed_by_rule,omitempty"`
}

// NewJSONReport converts RunAll's results into the -json document. File
// paths are reported relative to the working directory when possible, so
// reports diff cleanly across checkouts and CI workspaces.
func NewJSONReport(kept, suppressed []Issue) JSONReport {
	rep := JSONReport{Findings: make([]JSONIssue, 0, len(kept)), Suppressed: len(suppressed)}
	for _, iss := range kept {
		rep.Findings = append(rep.Findings, JSONIssue{
			File:     relPath(iss.Pos.Filename),
			Line:     iss.Pos.Line,
			Column:   iss.Pos.Column,
			Rule:     iss.Rule,
			Severity: iss.Severity.String(),
			Message:  iss.Msg,
		})
	}
	if len(suppressed) > 0 {
		rep.SuppressedByRule = make(map[string]int)
		for _, iss := range suppressed {
			rep.SuppressedByRule[iss.Rule]++
		}
	}
	return rep
}

// relPath rewrites an absolute finding path relative to the working
// directory when the file lies under it; other paths pass through.
func relPath(p string) string {
	if !filepath.IsAbs(p) {
		return p
	}
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return rel
}
