package lint

import "testing"

func TestBoundedQueueViolations(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type q struct {
	done chan struct{}
	ch   chan int
}

func sized(n int) {
	a := make(chan int, n) // line 9: flagged - capacity from a variable
	_ = a
}

func (s *q) enqueue(v int) {
	s.ch <- v // line 14: flagged - bare send waits unboundedly
}

func (s *q) sendNoGuard(v int) {
	select {
	case s.ch <- v: // line 19: flagged - unguarded select send
	}
}
`)
	got := BoundedQueue{Services: []string{"fixture"}}.Check(pkg)
	if !sameLines(got, 9, 14, 19) {
		t.Errorf("bounded-queue lines = %v, want [9 14 19]", lines(got))
	}
}

func TestBoundedQueueCleanShapes(t *testing.T) {
	pkg := checkFixture(t, `package fixture

const qcap = 8

type q2 struct {
	done chan struct{}
	ch   chan int
}

func build() {
	a := make(chan int, qcap)
	_ = a
	b := make(chan int)
	_ = b
}

func (s *q2) offer(v int) bool {
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

func (s *q2) sendOrDone(v int) {
	select {
	case s.ch <- v:
	case <-s.done:
	}
}

func sliceOK(n int) {
	v := make([]int, n)
	_ = v
}
`)
	got := BoundedQueue{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("clean bounded-queue shapes flagged: %v", got)
	}
}
