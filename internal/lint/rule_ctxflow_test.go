package lint

import "testing"

func TestCtxFlowViolations(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import "context"

type holder struct {
	ctx context.Context // line 6: flagged - ctx frozen into state
}

func detach() {
	ctx := context.Background() // line 10: flagged
	_ = ctx
	ctx2 := context.TODO() // line 12: flagged
	_ = ctx2
}

func wrongPos(name string, ctx context.Context) {} // line 16: flagged - ctx not first

func blocks(ctx context.Context, ch chan int) {
	<-ch // line 19: flagged - receive its own ctx cannot cancel
	select { // line 20: flagged - select its own ctx cannot cancel
	case v := <-ch:
		_ = v
	}
	for v := range ch { // line 24: flagged - range its own ctx cannot cancel
		_ = v
	}
}
`)
	got := CtxFlow{Services: []string{"fixture"}}.Check(pkg)
	if !sameLines(got, 6, 10, 12, 16, 19, 20, 24) {
		t.Errorf("ctx-flow lines = %v, want [6 10 12 16 19 20 24]", lines(got))
	}
}

func TestCtxFlowCleanShapes(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import "context"

func first(ctx context.Context, n int) {
	_ = n
}

func guarded(ctx context.Context, ch chan int) {
	select {
	case v := <-ch:
		_ = v
	case <-ctx.Done():
		return
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
}
`)
	got := CtxFlow{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("clean ctx shapes flagged: %v", got)
	}
}

func TestCtxFlowMainPackageMayMintRoots(t *testing.T) {
	pkg := checkFixture(t, `package main

import "context"

func run() {
	ctx := context.Background()
	_ = ctx
}

func main() { run() }
`)
	got := CtxFlow{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("context.Background in package main flagged: %v", got)
	}
}

func TestCtxFlowNoCtxNoBlockingCheck(t *testing.T) {
	// A function without a ctx parameter is not held to the
	// blocking-point check by this rule (goroutine-lifecycle covers the
	// spawned side).
	pkg := checkFixture(t, `package fixture

func wait(ch chan int) int {
	return <-ch
}
`)
	got := CtxFlow{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("ctx-less function held to ctx blocking check: %v", got)
	}
}
