package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SharedWrite proves disjoint writes for the real-core shared-memory
// path. It has two halves:
//
//  1. Kernel contract verification: every method named MulVecRange with
//     the pool.Kernel signature (x, y []float64, lo, hi int) is run
//     through the symbolic ownership executor (ownership.go), which must
//     prove it writes y only inside [lo, hi), never writes x, and never
//     writes shared state. Workers executing such kernels over disjoint
//     ranges are then race-free by construction.
//
//  2. Goroutine body scan: every `go` statement in a kernel package
//     spawns a body that is checked against a provenance discipline —
//     each written location must be goroutine-private, indexed by a
//     spawn-distinct identifier (one goroutine per loop iteration), a
//     value received from a channel and routed through a contract kernel
//     call, or protected by a held mutex. Blocks under check.Enabled are
//     the runtime sanitizer's own bookkeeping and are exempt.
//
// check.Owners (internal/check, promdebug builds) is the runtime half of
// the same property: what this rule proves at compile time, the shadow
// ownership table re-checks per dispatch with worker stacks on failure.
type SharedWrite struct {
	// Kernels is the package set to verify; nil means KernelPackages().
	Kernels []string
	// CheckPath names the debug-gate package; empty means
	// prometheus/internal/check.
	CheckPath string
}

// Name implements Rule.
func (SharedWrite) Name() string { return "shared-write" }

// Check implements Rule.
func (r SharedWrite) Check(pkg *Package) []Issue {
	kernels := r.Kernels
	if kernels == nil {
		kernels = KernelPackages()
	}
	checkPath := r.CheckPath
	if checkPath == "" {
		checkPath = "prometheus/internal/check"
	}
	if !pathInSet(pkg.Path, kernels) {
		return nil
	}
	eng := newOwnEngine(pkg, checkPath)
	var out []Issue
	out = append(out, r.checkContracts(pkg, eng)...)
	out = append(out, r.checkGoroutines(pkg, eng)...)
	return out
}

// checkContracts verifies the Kernel contract on every MulVecRange
// implementation in the package.
func (r SharedWrite) checkContracts(pkg *Package, eng *ownEngine) []Issue {
	var out []Issue
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "MulVecRange" || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || !isContractSig(sig) {
				continue
			}
			out = append(out, r.verifyContract(pkg, eng, fd)...)
		}
	}
	return out
}

// verifyContract checks one summary against writes(y) ⊆ [lo, hi),
// writes(x) = ∅, no shared writes.
func (r SharedWrite) verifyContract(pkg *Package, eng *ownEngine, fd *ast.FuncDecl) []Issue {
	sum := eng.summarizeDecl(fd)
	cx := &actx{tab: eng.tab, facts: &factSet{}}
	var loF, hiF *aform
	if len(sum.params) == 4 && sum.params[2] != nil && sum.params[3] != nil {
		loF = aSym(eng.tab.objSym(sum.params[2]))
		hiF = aSym(eng.tab.objSym(sum.params[3]))
	}
	var out []Issue
	for _, wr := range sum.writes {
		switch wr.view.kind {
		case refParam:
			switch wr.view.param {
			case 0:
				out = append(out, issueAt(pkg, wr.pos, r.Name(), Error,
					"MulVecRange writes its input vector x (%s); the kernel contract allows writes only to y[lo:hi]", wr.why))
			case 1:
				if loF == nil || !cx.contains(wr.iv, loF, hiF) {
					out = append(out, issueAt(pkg, wr.pos, r.Name(), Error,
						"MulVecRange write to y[%s:%s] is not provably inside [lo, hi); "+
							"concurrent workers on adjacent ranges may race (%s)",
						cx.describe(wr.iv.lo), cx.describe(wr.iv.hi), wr.why))
				}
			default:
				out = append(out, issueAt(pkg, wr.pos, r.Name(), Error,
					"MulVecRange writes parameter %d (%s); the kernel contract allows writes only to y[lo:hi]", wr.view.param, wr.why))
			}
		case refRecvField:
			out = append(out, issueAt(pkg, wr.pos, r.Name(), Error,
				"MulVecRange writes receiver field %s (%s); the kernel value is shared by every worker, so receiver writes race", wr.view.field, wr.why))
		default:
			out = append(out, issueAt(pkg, wr.pos, r.Name(), Error,
				"MulVecRange may write shared memory: %s; the kernel contract confines writes to y[lo:hi]", wr.why))
		}
	}
	return out
}

// --- goroutine body scan -------------------------------------------------

// wprov is the provenance lattice of the goroutine scan.
type wprov uint8

const (
	provPrivate wprov = iota // declared inside the goroutine, or a by-value copy
	provSpawn                // spawn-distinct: a per-goroutine loop index
	provRecv                 // received from a channel inside the goroutine
	provShared               // captured from the spawning frame, or global
)

func (p wprov) String() string {
	switch p {
	case provPrivate:
		return "goroutine-private"
	case provSpawn:
		return "spawn-distinct"
	case provRecv:
		return "channel-received"
	}
	return "shared"
}

// checkGoroutines finds every go statement and scans the spawned body.
func (r SharedWrite) checkGoroutines(pkg *Package, eng *ownEngine) []Issue {
	var out []Issue
	seen := make(map[token.Pos]bool)
	for _, f := range pkg.Files {
		// Track enclosing loop induction objects so spawn arguments that
		// are per-iteration indices classify as spawn-distinct.
		var inductionStack []map[types.Object]bool
		induction := func() map[types.Object]bool {
			m := make(map[types.Object]bool)
			for _, s := range inductionStack {
				for o := range s {
					m[o] = true
				}
			}
			return m
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ForStmt:
				vars := make(map[types.Object]bool)
				if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lhs := range init.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pkg.Info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
				}
				inductionStack = append(inductionStack, vars)
				ast.Inspect(x.Body, visit)
				inductionStack = inductionStack[:len(inductionStack)-1]
				return false
			case *ast.RangeStmt:
				vars := make(map[types.Object]bool)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
				inductionStack = append(inductionStack, vars)
				ast.Inspect(x.Body, visit)
				inductionStack = inductionStack[:len(inductionStack)-1]
				return false
			case *ast.GoStmt:
				if !seen[x.Pos()] {
					seen[x.Pos()] = true
					out = append(out, r.scanSpawn(pkg, eng, x, induction())...)
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return out
}

// scanSpawn classifies the spawn's parameters and walks the body.
func (r SharedWrite) scanSpawn(pkg *Package, eng *ownEngine, g *ast.GoStmt, induction map[types.Object]bool) []Issue {
	call := g.Call
	argProv := func(i int) wprov {
		if i >= len(call.Args) {
			return provShared
		}
		arg := ast.Unparen(call.Args[i])
		if id, ok := arg.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && induction[obj] {
				return provSpawn
			}
		}
		t := pkg.Info.Types[call.Args[i]].Type
		if t != nil && valueCopied(t) {
			return provPrivate // a by-value copy, though not distinct per spawn
		}
		return provShared // slices/pointers alias the spawner's memory
	}
	sc := &spawnScan{pkg: pkg, eng: eng, rule: r.Name(), visited: make(map[types.Object]int)}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		env := make(map[types.Object]wprov)
		idx := 0
		for _, field := range fun.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					env[obj] = argProv(idx)
				}
				idx++
			}
		}
		sc.walkBody(fun.Body, fun, env)
	case *ast.Ident, *ast.SelectorExpr:
		obj := calleeObject(pkg, call)
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() != pkg.Types {
			return nil // external spawn target: out of scope
		}
		node, ok := eng.ix.objToUnit[obj]
		if !ok {
			return nil
		}
		decl, ok := node.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			return nil
		}
		env := make(map[types.Object]wprov)
		if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
			if robj := pkg.Info.Defs[decl.Recv.List[0].Names[0]]; robj != nil {
				env[robj] = provShared
			}
		}
		idx := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					env[obj] = argProv(idx)
				}
				idx++
			}
		}
		sc.walkBody(decl.Body, decl, env)
	}
	return sc.issues
}

// valueCopied reports whether passing t copies the value (no aliasing of
// spawner memory through it).
func valueCopied(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !valueCopied(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return valueCopied(u.Elem())
	}
	return false
}

// spawnScan walks one spawned body (and same-package callees) enforcing
// the write-provenance discipline.
type spawnScan struct {
	pkg     *Package
	eng     *ownEngine
	rule    string
	issues  []Issue
	visited map[types.Object]int // same-package descent guard
	depth   int
}

const maxSpawnDepth = 4

// frame is one walked body's state.
type frame struct {
	scan  *spawnScan
	body  ast.Node // span for declared-inside tests
	env   map[types.Object]wprov
	mutex int // >0: lexically inside a Lock/Unlock span (or after defer Unlock)
}

func (sc *spawnScan) walkBody(body *ast.BlockStmt, span ast.Node, env map[types.Object]wprov) {
	fr := &frame{scan: sc, body: span, env: env}
	fr.walk(body)
}

func (fr *frame) prov(e ast.Expr) wprov {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := fr.scan.pkg.Info.Uses[x]
		if obj == nil {
			obj = fr.scan.pkg.Info.Defs[x]
		}
		if obj == nil {
			return provShared
		}
		if p, ok := fr.env[obj]; ok {
			return p
		}
		if obj.Pos() >= fr.body.Pos() && obj.Pos() < fr.body.End() {
			return provPrivate
		}
		return provShared
	case *ast.SelectorExpr:
		return fr.prov(x.X) // field of a received struct is received, etc.
	case *ast.IndexExpr:
		base := fr.prov(x.X)
		if base == provShared && fr.indexIsSpawn(x.Index) {
			// A shared slice indexed by the spawn-distinct id: the
			// element is this goroutine's private slot.
			return provPrivate
		}
		return base
	case *ast.SliceExpr:
		return fr.prov(x.X)
	case *ast.StarExpr:
		return fr.prov(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return fr.prov(x.X)
		}
		if x.Op == token.ARROW {
			return provRecv
		}
		return provPrivate
	case *ast.CallExpr, *ast.BasicLit, *ast.CompositeLit, *ast.FuncLit:
		return provPrivate
	}
	return provShared
}

func (fr *frame) indexIsSpawn(idx ast.Expr) bool {
	id, ok := ast.Unparen(idx).(*ast.Ident)
	if !ok {
		return false
	}
	obj := fr.scan.pkg.Info.Uses[id]
	return obj != nil && fr.env[obj] == provSpawn
}

func (fr *frame) report(n ast.Node, format string, args ...interface{}) {
	fr.scan.issues = append(fr.scan.issues, issue(fr.scan.pkg, n, fr.scan.rule, Error, format, args...))
}

// walk processes statements in order, tracking mutex spans lexically.
func (fr *frame) walk(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		entry := fr.mutex
		for _, st := range x.List {
			fr.walk(st)
		}
		fr.mutex = entry
	case *ast.AssignStmt:
		fr.scanCalls(x.Rhs...)
		for _, lhs := range x.Lhs {
			fr.checkWrite(lhs)
		}
	case *ast.IncDecStmt:
		fr.checkWrite(x.X)
	case *ast.ExprStmt:
		fr.scanCalls(x.X)
	case *ast.SendStmt:
		fr.scanCalls(x.Value) // the send itself is communication, not a write
	case *ast.DeferStmt:
		if fr.isMutexCall(x.Call, "Unlock", "RUnlock") {
			fr.mutex++ // held for the remainder of the function
			return
		}
		if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
			fr.walk(lit.Body) // deferred closure runs in this goroutine
			return
		}
		fr.scanCalls(x.Call)
	case *ast.GoStmt:
		// A nested spawn starts a new goroutine: everything reachable
		// from here is shared with it; scan its body in a fresh frame
		// with no spawn-distinct bindings.
		if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
			fr.scan.walkBody(lit.Body, lit, make(map[types.Object]wprov))
		}
	case *ast.IfStmt:
		if x.Init != nil {
			fr.walk(x.Init)
		}
		if isEnabledGuard(fr.scan.pkg, x.Cond, fr.scan.eng.checkPath) {
			// Runtime-sanitizer bookkeeping: exempt by design.
			if x.Else != nil {
				fr.walk(x.Else)
			}
			return
		}
		fr.scanCalls(x.Cond)
		fr.walk(x.Body)
		if x.Else != nil {
			fr.walk(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			fr.walk(x.Init)
		}
		if x.Cond != nil {
			fr.scanCalls(x.Cond)
		}
		fr.walk(x.Body)
		if x.Post != nil {
			fr.walk(x.Post)
		}
	case *ast.RangeStmt:
		fr.scanCalls(x.X)
		// Range over a channel: the bindings are received values.
		if t := fr.scan.pkg.Info.Types[x.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := fr.scan.pkg.Info.Defs[id]; obj != nil {
							fr.env[obj] = provRecv
						}
					}
				}
			}
		}
		fr.walk(x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			fr.walk(x.Init)
		}
		fr.walk(x.Body)
	case *ast.TypeSwitchStmt:
		fr.walk(x.Body)
	case *ast.SelectStmt:
		fr.walk(x.Body)
	case *ast.CaseClause:
		for _, st := range x.Body {
			fr.walk(st)
		}
	case *ast.CommClause:
		if x.Comm != nil {
			fr.walk(x.Comm)
		}
		for _, st := range x.Body {
			fr.walk(st)
		}
	case *ast.LabeledStmt:
		fr.walk(x.Stmt)
	case *ast.ReturnStmt:
		fr.scanCalls(x.Results...)
	case *ast.DeclStmt:
		ast.Inspect(x, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fr.checkCall(call)
			}
			return true
		})
	}
}

// checkWrite enforces the provenance discipline on one write target.
func (fr *frame) checkWrite(lhs ast.Expr) {
	if fr.mutex > 0 {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := fr.scan.pkg.Info.Uses[l]
		if obj == nil {
			return // a := definition: private by construction
		}
		if p, ok := fr.env[obj]; ok && p != provShared {
			return
		}
		if obj.Pos() >= fr.body.Pos() && obj.Pos() < fr.body.End() {
			return
		}
		fr.report(l, "goroutine writes captured variable %s without holding a lock; every spawned body may run this store concurrently", l.Name)
	case *ast.IndexExpr:
		base := fr.prov(l.X)
		switch base {
		case provPrivate, provSpawn:
			return
		case provShared:
			if fr.indexIsSpawn(l.Index) {
				return // the spawn-distinct slot idiom: panics[id] = e
			}
			fr.report(l, "goroutine writes shared slice at an index that is not the spawn-distinct id; prove ownership by indexing with the goroutine's own id or routing the write through a Kernel contract call")
		case provRecv:
			fr.report(l, "goroutine writes directly into a channel-received slice; received ranges must be written through a MulVecRange contract call so the verified kernel bounds apply")
		}
	case *ast.SelectorExpr:
		if fr.prov(l.X) == provShared {
			fr.report(l, "goroutine writes field %s of shared state without holding a lock", l.Sel.Name)
		}
	case *ast.StarExpr:
		if fr.prov(l.X) == provShared {
			fr.report(l, "goroutine writes through a shared pointer without holding a lock")
		}
	}
}

// scanCalls visits calls nested in expressions (excluding closure
// bodies) and checks each.
func (fr *frame) scanCalls(exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				fr.checkCall(x)
			}
			return true
		})
	}
}

// checkCall sanctions or flags one call made by the goroutine.
func (fr *frame) checkCall(call *ast.CallExpr) {
	pkg := fr.scan.pkg
	if fr.isMutexCall(call, "Lock", "RLock") {
		fr.mutex++
		return
	}
	if fr.isMutexCall(call, "Unlock", "RUnlock") {
		if fr.mutex > 0 {
			fr.mutex--
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
			return
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	obj := calleeObject(pkg, call)
	fn, _ := obj.(*types.Func)
	if fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "sync" || path == "sync/atomic" {
			return // synchronization primitives order their own memory
		}
		// The Kernel contract call: verified (or assumed for interface
		// dispatch) to write only y[lo:hi]; safe on any non-shared args.
		if fn.Name() == "MulVecRange" {
			if sig, ok := fn.Type().(*types.Signature); ok && isContractSig(sig) {
				// Only the output vector needs ownership: the contract
				// proves x is never written, and writes land in y[lo:hi]
				// — which localizes the race only if this goroutine owns
				// that range (received it, or it is spawn-distinct).
				if len(call.Args) == 4 && fr.argAliases(call.Args[1]) && fr.prov(call.Args[1]) == provShared {
					fr.report(call, "goroutine passes a shared slice as MulVecRange's output; the contract only localizes writes for ranges the goroutine owns (received or spawn-distinct)")
				}
				return
			}
		}
		// Same-package callee: descend with mapped provenances.
		if fn.Pkg() == pkg.Types {
			if node, ok := fr.scan.eng.ix.objToUnit[obj]; ok {
				if decl, ok := node.(*ast.FuncDecl); ok && decl.Body != nil {
					fr.descend(call, decl)
					return
				}
			}
		}
	}
	// Unknown callee (other package, interface, func value): flag only
	// aliasing arguments with shared provenance — by-value arguments are
	// copies, and receivers are the callee package's own responsibility.
	for _, arg := range call.Args {
		if fr.argAliases(arg) && fr.prov(arg) == provShared && !externalRooted(pkg, arg) {
			fr.report(call, "goroutine passes shared memory to an unverified call; the callee may write it concurrently with other goroutines")
			return
		}
	}
}

// externalRooted reports whether the expression is rooted at a variable
// declared in another package (os.Stderr and friends). Such state is
// outside the spawner's race domain: the owning package is responsible
// for synchronizing access to its own exported variables.
func externalRooted(pkg *Package, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		return obj != nil && obj.Pkg() != nil && obj.Pkg() != pkg.Types
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				obj := pkg.Info.Uses[x.Sel]
				return obj != nil && obj.Pkg() != nil && obj.Pkg() != pkg.Types
			}
		}
		return externalRooted(pkg, x.X)
	}
	return false
}

// argAliases reports whether the argument type can alias spawner memory.
func (fr *frame) argAliases(arg ast.Expr) bool {
	t := fr.scan.pkg.Info.Types[arg].Type
	return t != nil && !valueCopied(t)
}

// descend walks a same-package callee with argument provenances mapped
// onto its parameters.
func (fr *frame) descend(call *ast.CallExpr, decl *ast.FuncDecl) {
	sc := fr.scan
	obj := sc.pkg.Info.Defs[decl.Name]
	if sc.depth >= maxSpawnDepth || sc.visited[obj] > 0 {
		return
	}
	sc.visited[obj]++
	sc.depth++
	defer func() { sc.visited[obj]--; sc.depth-- }()

	env := make(map[types.Object]wprov)
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if robj := sc.pkg.Info.Defs[decl.Recv.List[0].Names[0]]; robj != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				env[robj] = fr.prov(sel.X)
			} else {
				env[robj] = provShared
			}
		}
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			pobj := sc.pkg.Info.Defs[name]
			if pobj != nil && idx < len(call.Args) {
				if fr.argAliases(call.Args[idx]) {
					env[pobj] = fr.prov(call.Args[idx])
				} else {
					env[pobj] = provPrivate
				}
			}
			idx++
		}
	}
	nf := &frame{scan: sc, body: decl, env: env, mutex: fr.mutex}
	nf.walk(decl.Body)
}

// isMutexCall matches <expr>.Lock() / <expr>.Unlock() style calls on
// sync package types.
func (fr *frame) isMutexCall(call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return false
	}
	fn, ok := fr.scan.pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "sync")
}

// issueAt builds an Issue at a raw token position.
func issueAt(pkg *Package, pos token.Pos, rule string, sev Severity, format string, args ...interface{}) Issue {
	return Issue{
		Pos:      pkg.Fset.Position(pos),
		Rule:     rule,
		Severity: sev,
		Msg:      fmt.Sprintf(format, args...),
	}
}
