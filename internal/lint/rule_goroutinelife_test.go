package lint

import "testing"

func TestGoroutineLifecycleViolations(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type svc struct {
	done chan struct{}
	work chan int
}

func (s *svc) loopForever() {
	for { // line 9: flagged - infinite loop without done-guarded exit
	}
}

func (s *svc) drain() {
	for v := range s.work { // line 14: flagged - range over channel
		_ = v
	}
}

func (s *svc) blockingHelper() {
	<-s.work // line 20: flagged - bare receive, reached transitively
}

func (s *svc) callsHelper() {
	s.blockingHelper()
}

func (s *svc) run() {
	go s.loopForever()
	go s.drain()
	go s.callsHelper()
	worker := func() {
		s.work <- 1 // line 32: flagged - bare send in spawned closure
	}
	go worker()
	go func() {
		select { // line 36: flagged - select without default or done case
		case v := <-s.work:
			_ = v
		}
	}()
}
`)
	got := GoroutineLifecycle{Services: []string{"fixture"}}.Check(pkg)
	if !sameLines(got, 9, 14, 20, 32, 36) {
		t.Errorf("goroutine-lifecycle lines = %v, want [9 14 20 32 36]", lines(got))
	}
}

func TestGoroutineLifecycleCleanIdioms(t *testing.T) {
	pkg := checkFixture(t, `package fixture

import "context"

type pool struct {
	done   chan struct{}
	tokens chan struct{}
}

func (p *pool) janitor() {
	for {
		select {
		case <-p.done:
			return
		case p.tokens <- struct{}{}:
		default:
		}
	}
}

func (p *pool) run(ctx context.Context) {
	go p.janitor()
	go func() {
		<-ctx.Done()
	}()
	go func() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}()
}
`)
	got := GoroutineLifecycle{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("clean service idioms flagged: %v", got)
	}
}

func TestGoroutineLifecycleBlockingNotSpawnedIsFine(t *testing.T) {
	// A blocking call on the synchronous path is ctx-flow's business;
	// goroutine-lifecycle only analyzes the spawned subgraph.
	pkg := checkFixture(t, `package fixture

type svc struct {
	work chan int
}

func (s *svc) waitSync() int {
	return <-s.work
}
`)
	got := GoroutineLifecycle{Services: []string{"fixture"}}.Check(pkg)
	if len(got) != 0 {
		t.Errorf("unspawned blocking receive flagged: %v", got)
	}
}

func TestGoroutineLifecycleScopedToServices(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type svc struct {
	work chan int
}

func (s *svc) spin() {
	go func() {
		<-s.work
	}()
}
`)
	// Default service set does not contain the fixture path.
	if got := (GoroutineLifecycle{}).Check(pkg); len(got) != 0 {
		t.Errorf("rule fired outside its service packages: %v", got)
	}
	if got := (GoroutineLifecycle{Services: []string{"fixture"}}).Check(pkg); len(got) != 1 {
		t.Errorf("rule missed the spawned bare receive: %v", got)
	}
}
